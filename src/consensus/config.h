// Cluster topology, failure bounds, role assignment and quorum arithmetic
// for every protocol in the repository.
//
// Replica identifiers follow the paper (§5): integers [0, N); trusted
// (private-cloud) replicas are [0, S), untrusted (public-cloud) replicas are
// [S, N). All replicas and clients know which ids are trusted.

#ifndef SEEMORE_CONSENSUS_CONFIG_H_
#define SEEMORE_CONSENSUS_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/keystore.h"
#include "net/transport.h"
#include "util/time.h"

namespace seemore {

enum class ProtocolKind : uint8_t {
  kCft = 1,       // Paxos-style crash fault tolerance (BFT-SMaRt "CFT")
  kBft = 2,       // PBFT
  kSUpRight = 3,  // simplified UpRight: PBFT over 3m+2c+1, quorum 2m+c+1
  kSeeMoRe = 4,
};

const char* ProtocolKindName(ProtocolKind kind);

/// SeeMoRe operating mode π (paper §5). Values match the paper's π ∈ {1,2,3}.
enum class SeeMoReMode : uint8_t {
  kLion = 1,     // trusted primary, all replicas participate
  kDog = 2,      // trusted primary, 3m+1 public proxies run agreement
  kPeacock = 3,  // untrusted primary, PBFT among 3m+1 public proxies
};

const char* SeeMoReModeName(SeeMoReMode mode);

struct ClusterConfig {
  ProtocolKind kind = ProtocolKind::kSeeMoRe;

  /// Hybrid topology (SeeMoRe / S-UpRight): S private replicas, P public.
  int s = 2;
  int p = 4;
  /// Failure bounds: c crashes in the private cloud, m Byzantine in the
  /// public cloud.
  int c = 1;
  int m = 1;
  /// Flat bound for CFT (crashes) and BFT (Byzantine): f.
  int f = 1;

  SeeMoReMode initial_mode = SeeMoReMode::kLion;

  /// Checkpoint period in sequence numbers (paper §6.3 uses 10000).
  int checkpoint_period = 128;
  /// Maximum requests folded into one consensus instance.
  int batch_max = 16;
  /// Maximum concurrently outstanding consensus instances at the primary.
  int pipeline_max = 8;
  /// Backup timer τ before suspecting the primary.
  SimTime view_change_timeout = Millis(20);
  /// Ablation knob: price Lion accepts as signed messages instead of the
  /// paper's unsigned accepts (§5.1 notes they need no signature because
  /// they flow only to the trusted primary). Protocol behaviour is
  /// unchanged; only CPU cost accounting differs.
  bool lion_sign_accepts = false;

  /// Reply-cache retention window in sequence numbers; 0 keeps every
  /// client's latest reply forever (the historical behaviour). When > 0,
  /// each replica evicts cache entries whose last execution fell more than
  /// this many seqs behind the committed frontier, bounding the cache for
  /// workloads with unbounded one-shot clients. The cache feeds checkpoint
  /// state digests, so the knob is cluster-wide consensus state: snapshots
  /// additionally carry per-entry last-execution seqs (so restored replicas
  /// evict on exactly the donor's schedule), and a client idle longer than
  /// the window loses retransmission dedup for its final request.
  uint64_t reply_cache_retention = 0;

  /// Total number of replicas.
  int n() const;
  /// Quorum of participants needed to commit (per protocol / mode).
  int CommitQuorum(SeeMoReMode mode) const;

  /// --- role predicates -------------------------------------------------
  bool IsTrusted(PrincipalId id) const { return id >= 0 && id < s; }
  Zone ReplicaZone(PrincipalId id) const;

  /// All replica ids [0, n).
  std::vector<PrincipalId> AllReplicas() const;
  /// Public-cloud replica ids [S, N).
  std::vector<PrincipalId> PublicReplicas() const;
  /// Private-cloud replica ids [0, S).
  std::vector<PrincipalId> PrivateReplicas() const;

  /// --- SeeMoRe role assignment (paper §5.1-§5.3) -----------------------
  /// Lion/Dog primary of view v: v mod S (trusted).
  PrincipalId TrustedPrimary(uint64_t view) const;
  /// Peacock primary of view v: S + (v mod P) (always a proxy).
  PrincipalId PeacockPrimary(uint64_t view) const;
  /// Primary under a given mode.
  PrincipalId PrimaryOf(SeeMoReMode mode, uint64_t view) const;
  /// Transferer of view v (Peacock view changes): v mod S.
  PrincipalId Transferer(uint64_t view) const;
  /// The 3m+1 public proxies of view v: {S + ((v + k) mod P) | k in [0,3m]}.
  std::vector<PrincipalId> ProxySet(uint64_t view) const;
  bool IsProxy(PrincipalId id, uint64_t view) const;

  /// --- flat-protocol roles ---------------------------------------------
  /// CFT leader / PBFT primary of view v: v mod N.
  PrincipalId FlatPrimary(uint64_t view) const { return static_cast<PrincipalId>(view % static_cast<uint64_t>(n())); }

  /// Validate internal consistency (sizes vs. bounds). Used by builders.
  Status Validate() const;

  std::string ToString() const;
};

/// --- public-cloud sizing (paper §4) -------------------------------------
/// These helpers answer "how many servers must I rent?".
struct SizingResult {
  bool feasible = false;
  int public_nodes = 0;     // P
  int network_size = 0;     // N = S + P
  std::string explanation;  // why infeasible / which rule produced P
};

/// Method 1 (Eq. 2): uniform malicious ratio α = m/P in the public cloud.
/// Requires c < S < 2c+1 to be useful and α < 1/3 to be satisfiable.
SizingResult PublicCloudSizeByRatio(int s, int c, double alpha);

/// Method 1 extended (Eq. 3): both malicious (α) and crash (β) ratios known.
SizingResult PublicCloudSizeByRatios(int s, int c, double alpha, double beta);

/// Method 2: explicit bound of M concurrent malicious failures in the rented
/// cluster: P = (3M + 2c + 1) - S.
SizingResult PublicCloudSizeByBound(int s, int c, int max_malicious);

/// Method 2 extended: explicit malicious (M) and crash (C) bounds in the
/// public cluster: P = (3M + 2C + 2c + 1) - S.
SizingResult PublicCloudSizeByBounds(int s, int c, int max_malicious,
                                     int max_crash);

/// §4 generalization to multiple public clouds: different providers offer
/// different malicious ratios and capacities; pick a per-cloud rental that
/// satisfies N = S + sum(P_i) >= 3*sum(m_i) + 2c + 1 with m_i = floor(a_i
/// P_i) while renting as few nodes as possible (greedy by ratio, which is
/// optimal because a node from a lower-alpha cloud never requires more
/// companions than one from a higher-alpha cloud).
struct CloudOffer {
  std::string name;
  double alpha = 0.0;  // malicious ratio in this provider's cluster
  int max_nodes = 0;   // rentable capacity
};

struct MultiCloudPlan {
  bool feasible = false;
  int total_rented = 0;
  int network_size = 0;
  /// Per-offer allocation, same order as the input offers.
  std::vector<int> rented;
  std::string explanation;
};

MultiCloudPlan PlanMultiCloud(int s, int c,
                              const std::vector<CloudOffer>& offers);

/// Hybrid minimum network size N = 3m + 2c + 1 (Eq. 1).
inline int HybridNetworkSize(int m, int c) { return 3 * m + 2 * c + 1; }
/// Hybrid quorum size 2m + c + 1 (§3.2).
inline int HybridQuorumSize(int m, int c) { return 2 * m + c + 1; }

}  // namespace seemore

#endif  // SEEMORE_CONSENSUS_CONFIG_H_
