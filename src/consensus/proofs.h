// Signed consensus-message headers and transferable "prepared" certificates.
//
// Every signed protocol message signs a domain-separated header so a
// signature for one message type (or one protocol phase) can never be
// replayed as another. PreparedProof is PBFT's prepared certificate —
// pre-prepare + quorum of matching prepares — carried inside view-change
// messages by PBFT, S-UpRight and SeeMoRe's Peacock mode.

#ifndef SEEMORE_CONSENSUS_PROOFS_H_
#define SEEMORE_CONSENSUS_PROOFS_H_

#include <functional>
#include <map>

#include "consensus/batch.h"
#include "crypto/digest.h"
#include "crypto/keystore.h"

namespace seemore {

/// Domain-separation tags for signed headers.
enum SigDomain : uint8_t {
  kDomainPrePrepare = 0xA1,  // also Lion/Dog PREPARE (primary proposal)
  kDomainPrepare = 0xA2,     // PBFT/Peacock prepare echo; Dog signed accept
  kDomainCommit = 0xA3,
  kDomainViewChange = 0xA4,
  kDomainNewView = 0xA5,
  kDomainInform = 0xA6,
  kDomainModeChange = 0xA7,
};

/// Header signed by a proposal's author: (domain, mode, view, seq, digest).
/// `mode` is the SeeMoRe mode π (0 for baselines) so a message from one mode
/// cannot be replayed into another.
Bytes ProposalHeader(SigDomain domain, uint8_t mode, uint64_t view,
                     uint64_t seq, const Digest& digest);

/// Header signed by a voter: ProposalHeader + the voter's id (PBFT's
/// <PREPARE, v, n, d, i>).
Bytes VoteHeader(SigDomain domain, uint8_t mode, uint64_t view, uint64_t seq,
                 const Digest& digest, PrincipalId voter);

/// PBFT "prepared" certificate for one sequence number.
struct PreparedProof {
  uint8_t mode = 0;
  uint64_t view = 0;
  uint64_t seq = 0;
  Digest digest;
  Batch batch;
  Signature primary_sig;  // over ProposalHeader(kDomainPrePrepare, ...)
  /// Voter id -> signature over VoteHeader(kDomainPrepare, ..., voter).
  std::map<PrincipalId, Signature> prepares;

  void EncodeTo(Encoder& enc) const;
  /// Exact size EncodeTo appends (Encoder::Reserve hints).
  size_t EncodedSize() const;
  static Result<PreparedProof> DecodeFrom(Decoder& dec);

  /// Checks: the batch matches `digest`; `primary_sig` is `primary`'s
  /// signature; at least `prepares_needed` distinct authorized voters signed
  /// matching prepare headers.
  bool Verify(const KeyStore& keystore, PrincipalId primary,
              size_t prepares_needed,
              const std::function<bool(PrincipalId)>& authorized) const;
};

}  // namespace seemore

#endif  // SEEMORE_CONSENSUS_PROOFS_H_
