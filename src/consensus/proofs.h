// Signed consensus-message headers and transferable "prepared" certificates.
//
// Every signed protocol message signs a domain-separated header so a
// signature for one message type (or one protocol phase) can never be
// replayed as another. PreparedProof is PBFT's prepared certificate —
// pre-prepare + quorum of matching prepares — carried inside view-change
// messages by PBFT, S-UpRight and SeeMoRe's Peacock mode.

#ifndef SEEMORE_CONSENSUS_PROOFS_H_
#define SEEMORE_CONSENSUS_PROOFS_H_

#include <cstring>
#include <functional>
#include <utility>
#include <vector>

#include "consensus/batch.h"
#include "crypto/digest.h"
#include "crypto/keystore.h"

namespace seemore {

/// Domain-separation tags for signed headers.
enum SigDomain : uint8_t {
  kDomainPrePrepare = 0xA1,  // also Lion/Dog PREPARE (primary proposal)
  kDomainPrepare = 0xA2,     // PBFT/Peacock prepare echo; Dog signed accept
  kDomainCommit = 0xA3,
  kDomainViewChange = 0xA4,
  kDomainNewView = 0xA5,
  kDomainInform = 0xA6,
  kDomainModeChange = 0xA7,
};

class HeaderBuf;
HeaderBuf ProposalHeader(SigDomain domain, uint8_t mode, uint64_t view,
                         uint64_t seq, const Digest& digest);
HeaderBuf VoteHeader(SigDomain domain, uint8_t mode, uint64_t view,
                     uint64_t seq, const Digest& digest, PrincipalId voter);

/// A signed header built on the stack. The hot path builds one or more of
/// these per message just to feed Sign/Verify and throw away — a Bytes
/// return would be a heap allocation each time. Byte layout is identical to
/// the old Encoder-built headers (little-endian fixed-width fields).
/// Implicitly converts to Bytes for cold call sites that store the header.
class HeaderBuf {
 public:
  static constexpr size_t kCapacity = 1 + 1 + 8 + 8 + Digest::kSize + 4;

  const uint8_t* data() const { return buf_; }
  size_t size() const { return len_; }
  operator Bytes() const { return Bytes(buf_, buf_ + len_); }

  friend bool operator==(const HeaderBuf& a, const HeaderBuf& b) {
    return a.len_ == b.len_ && std::memcmp(a.buf_, b.buf_, a.len_) == 0;
  }
  friend bool operator!=(const HeaderBuf& a, const HeaderBuf& b) {
    return !(a == b);
  }

 private:
  friend HeaderBuf ProposalHeader(SigDomain, uint8_t, uint64_t, uint64_t,
                                  const Digest&);
  friend HeaderBuf VoteHeader(SigDomain, uint8_t, uint64_t, uint64_t,
                              const Digest&, PrincipalId);
  uint8_t buf_[kCapacity];
  size_t len_ = 0;
};

/// Header signed by a proposal's author: (domain, mode, view, seq, digest).
/// `mode` is the SeeMoRe mode π (0 for baselines) so a message from one mode
/// cannot be replayed into another.
///
/// Header signed by a voter (VoteHeader): ProposalHeader + the voter's id
/// (PBFT's <PREPARE, v, n, d, i>).

/// PBFT "prepared" certificate for one sequence number.
struct PreparedProof {
  uint8_t mode = 0;
  uint64_t view = 0;
  uint64_t seq = 0;
  Digest digest;
  Batch batch;
  Signature primary_sig;  // over ProposalHeader(kDomainPrePrepare, ...)
  /// (voter id, signature over VoteHeader(kDomainPrepare, ..., voter)),
  /// sorted by voter id when locally built — QuorumTracker's
  /// SignatureView::SortedEntries() produces exactly this, keeping the
  /// encoded certificate bytes canonical. Decoded proofs preserve the
  /// sender's order; Verify() dedups, so duplicates can't inflate quorums.
  std::vector<std::pair<PrincipalId, Signature>> prepares;

  void EncodeTo(Encoder& enc) const;
  /// Exact size EncodeTo appends (Encoder::Reserve hints).
  size_t EncodedSize() const;
  static Result<PreparedProof> DecodeFrom(Decoder& dec);

  /// Checks: the batch matches `digest`; `primary_sig` is `primary`'s
  /// signature; at least `prepares_needed` distinct authorized voters signed
  /// matching prepare headers.
  bool Verify(const KeyStore& keystore, PrincipalId primary,
              size_t prepares_needed,
              const std::function<bool(PrincipalId)>& authorized) const;
};

}  // namespace seemore

#endif  // SEEMORE_CONSENSUS_PROOFS_H_
