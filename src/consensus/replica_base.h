// Common plumbing for every protocol replica: transport registration, CPU
// cost accounting, signing, timers that die with the replica, crash/recover
// fault injection, and Byzantine-behaviour flags consulted by the protocol
// logic.
//
// Replicas see the outside world only through the Transport / TimerService /
// CpuMeter interfaces (net/transport.h); no protocol code knows whether it
// runs on the simulator or a real backend.

#ifndef SEEMORE_CONSENSUS_REPLICA_BASE_H_
#define SEEMORE_CONSENSUS_REPLICA_BASE_H_

#include <functional>
#include <memory>
#include <utility>

#include "consensus/commit_queue.h"
#include "consensus/config.h"
#include "consensus/execution.h"
#include "consensus/quorum_tracker.h"
#include "crypto/memo.h"
#include "net/cost_model.h"
#include "net/transport.h"
#include "smr/command.h"
#include "util/arena.h"

namespace seemore {

/// Misbehaviours a (public-cloud) replica can be configured to exhibit.
/// kSilent is enforced by the base class; the rest are consulted by
/// protocol code at the relevant decision points.
enum ByzantineFlag : uint32_t {
  kByzNone = 0,
  /// Drop all incoming messages (fail-stop-looking Byzantine node).
  kByzSilent = 1u << 0,
  /// As primary, send conflicting proposals for the same sequence number to
  /// different replicas (equivocation).
  kByzEquivocate = 1u << 1,
  /// Vote (accept/prepare/commit) for a corrupted digest.
  kByzWrongVotes = 1u << 2,
  /// Send clients corrupted results.
  kByzLieToClients = 1u << 3,
};

class ReplicaBase : public MessageHandler {
 public:
  /// `memo` is the run's digest/verify memo (owned by the composition root,
  /// e.g. the Cluster); every replica of one run shares it, and runs on
  /// different threads each have their own.
  ReplicaBase(Transport* transport, TimerService* timers,
              const KeyStore* keystore, CryptoMemo* memo, PrincipalId id,
              const ClusterConfig& config,
              std::unique_ptr<StateMachine> state_machine,
              const CostModel& costs);
  ~ReplicaBase() override;

  ReplicaBase(const ReplicaBase&) = delete;
  ReplicaBase& operator=(const ReplicaBase&) = delete;

  PrincipalId id() const { return id_; }
  const ClusterConfig& config() const { return config_; }
  ExecutionEngine& exec() { return exec_; }
  const ExecutionEngine& exec() const { return exec_; }
  const ReplicaStats& stats() const { return stats_; }
  CpuMeter* cpu() { return cpu_; }
  bool crashed() const { return crashed_; }

  /// Fault injection: stop processing and detach from the network. State is
  /// retained in memory (a restart models a reboot with a durable log).
  void Crash();
  void Recover();

  /// --- durability (storage/durable_store.h) ------------------------------
  /// Attach a durable store (null restores the no-op default). Binds the
  /// replica's CPU meter so storage work is charged, and arms the commit
  /// funnel's WAL hook.
  void AttachDurable(DurableStore* store);
  DurableStore& durable() { return *durable_; }

  /// Rebuild in-memory state from a recovered disk image: execution restores
  /// from the newest snapshot, commit records replay above it (gap/dup
  /// tolerant, no CPU charged — recovery runs while the replica is down),
  /// then OnDurableRestore lets the protocol restore view/checkpoint state.
  /// Call exactly once, on a freshly constructed replica, before any
  /// message can arrive.
  void RestoreFromImage(const RecoveredImage& image);

  /// Fault injection: configure Byzantine behaviour (only meaningful for
  /// untrusted replicas; tests assert trusted replicas are never flagged).
  void SetByzantine(uint32_t flags) { byzantine_flags_ = flags; }
  bool HasByz(ByzantineFlag flag) const {
    return (byzantine_flags_ & flag) != 0;
  }

  /// MessageHandler: charges receive costs, filters crashed/silent states,
  /// then dispatches to HandleMessage.
  void OnMessage(PrincipalId from, Payload payload) final;

 protected:
  /// Protocol logic entry point. Runs on the replica's (virtual) CPU;
  /// charge crypto/execution work via the Charge* helpers. The frame is the
  /// shared immutable buffer the transport delivered (also available via
  /// current_frame() while handling).
  virtual void HandleMessage(PrincipalId from, const Payload& frame) = 0;

  /// The frame currently being dispatched by OnMessage (empty outside a
  /// delivery). Its buffer identity keys the digest/verify memo below.
  const Payload& current_frame() const { return current_frame_; }

  /// --- digest / verify memo ----------------------------------------------
  /// These helpers elide *host* CPU only: callers charge the full simulated
  /// cost (ChargeHash / ChargeVerify) exactly as if the work were done, so
  /// simulated time is bit-identical whether the memo hits or misses (the
  /// charge-vs-compute rule, DESIGN.md §"Engine internals").

  /// D(field) where `field` was decoded verbatim from the current frame at
  /// `offset_in_frame` (the decoder-recorded batch_offset). The first
  /// receiver of a multicast pays the real SHA-256; the rest reuse it.
  /// Falls back to a plain hash when the range cannot alias the frame.
  Digest FrameFieldDigest(const Bytes& field, size_t offset_in_frame) const {
    const uint64_t buffer_id =
        offset_in_frame + field.size() <= current_frame_.size()
            ? current_frame_.id()
            : 0;
    return memo_->DigestOf(buffer_id, offset_in_frame, field.data(),
                           field.size());
  }

  /// Batched FrameFieldDigest: resolve all `n` fields of the current frame
  /// through one CryptoMemo pass (DigestOfMany). Used by certificate-style
  /// frames (view-change NEW-VIEW entries) that embed many digestable
  /// batches; the batch digests land in `out[i]`.
  void FrameFieldDigests(const CryptoMemo::DigestSpan* spans, size_t n,
                         Digest* out) const {
    // Spans that cannot alias the frame fall back to unmemoized hashing.
    uint64_t buffer_id = current_frame_.id();
    for (size_t i = 0; i < n; ++i) {
      if (spans[i].offset + spans[i].len > current_frame_.size()) {
        buffer_id = 0;
        break;
      }
    }
    memo_->DigestOfMany(buffer_id, spans, n, out);
  }

  /// Memoized `verify()` keyed on (current frame, signer, slot). `signer`
  /// and `slot` must be derived purely from frame contents so every
  /// receiver of the frame asks the same question (use the message tag, or
  /// tag<<16|index for per-entry checks). Templated: bare lambdas, no
  /// std::function allocation on the hot path.
  template <typename F>
  bool FrameVerifyMemoized(PrincipalId signer, uint32_t slot,
                           F&& verify) const {
    return memo_->Verify(current_frame_.id(), signer, slot,
                         std::forward<F>(verify));
  }

  /// Decoder over `frame` carrying the run's memo — what every protocol's
  /// HandleMessage switch decodes from.
  Decoder FrameDecoder(const Payload& frame) const {
    return MakeDecoder(frame, memo_);
  }

  /// Hook invoked after Recover() re-attaches the replica.
  virtual void OnRecover() {}

  /// Hook invoked by RestoreFromImage after execution replay: protocols
  /// restore their view/mode and checkpoint tracker from the image here.
  virtual void OnDurableRestore(const RecoveredImage& /*image*/) {}

  /// True from RestoreFromImage until the protocol next enters a view. A
  /// restarted replica must not resume the primary/leader role in its
  /// restored view: the WAL records commits, not proposals, so the
  /// pre-crash incarnation may already have signed proposals for the next
  /// sequence numbers — re-proposing them with different batches would be
  /// self-equivocation. Propose paths check this; EnterView clears it
  /// (either the restored replica was never current primary, or the view
  /// change that its silence provokes hands leadership elsewhere).
  bool proposer_quiesced() const { return proposer_quiesced_; }
  void ClearProposerQuiescence() { proposer_quiesced_ = false; }

  /// --- scratch memory ---------------------------------------------------
  /// Per-replica bump arena for handler-local temporaries (span tables,
  /// sort scratch). Memory is reclaimed wholesale at checkpoint boundaries:
  /// protocols call NoteCheckpointGc() beside InstanceLog::Reclaim, and the
  /// arena rewinds at the next message boundary — never mid-handler, so
  /// scratch taken anywhere in the current dispatch stays valid until the
  /// handler returns. See util/arena.h for the lifetime contract.
  Arena& scratch_arena() { return scratch_; }
  void NoteCheckpointGc() { scratch_reset_pending_ = true; }

  /// --- voting -----------------------------------------------------------
  /// Offer a vote to a slot tracker, folding any equivocation flag into the
  /// replica's stats. Returns true when the vote was new and counts.
  bool RecordVote(QuorumTracker& tracker, const Digest& value,
                  PrincipalId voter, const Signature& sig) {
    const VoteOutcome outcome = tracker.Add(value, voter, sig);
    if (outcome.equivocation) ++stats_.equivocations_detected;
    return outcome.counted;
  }
  bool RecordVote(VoteTracker& tracker, const Digest& value,
                  PrincipalId voter) {
    const VoteOutcome outcome = tracker.Add(value, voter);
    if (outcome.equivocation) ++stats_.equivocations_detected;
    return outcome.counted;
  }

  /// The commit funnel feeding the execution engine (consensus/commit_queue.h).
  CommitQueue& commits() { return commits_; }

  /// --- time -------------------------------------------------------------
  SimTime now() const { return timers_->Now(); }
  /// CPU work charged but not yet drained. Failure detectors add this to
  /// their timeouts so a replica's own backlog never counts against a peer.
  SimTime CpuBacklog() const {
    const SimTime backlog = cpu_->AvailableAt() - now();
    return backlog > 0 ? backlog : 0;
  }

  /// --- CPU accounting ---------------------------------------------------
  void Charge(SimTime cost) { cpu_->Charge(cost); }
  void ChargeVerify(int count = 1) { cpu_->Charge(costs_.verify * count); }
  void ChargeSign(int count = 1) { cpu_->Charge(costs_.sign * count); }
  void ChargeMac(int count = 1) { cpu_->Charge(costs_.mac * count); }
  void ChargeHash(size_t bytes) { cpu_->Charge(costs_.HashCost(bytes)); }
  void ChargeExecute(int requests) { cpu_->Charge(costs_.execute * requests); }

  /// --- network ----------------------------------------------------------
  /// Send one message (charges the fixed + payload send cost). Accepts a
  /// Payload (or Bytes, implicitly wrapped once).
  void SendTo(PrincipalId to, const Payload& msg);
  /// Send `msg` to every target except this replica. The payload is
  /// encoded and allocated once; each receiver shares the buffer (the
  /// simulated per-target send cost is still charged).
  void SendToMany(const std::vector<PrincipalId>& targets, const Payload& msg);

  /// --- timers -----------------------------------------------------------
  /// Timers are invalidated by Crash(); callbacks never fire on a crashed
  /// replica or across a Crash()/Recover() cycle.
  EventId StartTimer(SimTime delay, std::function<void()> fn);
  void CancelTimer(EventId& id);

  Transport* transport_;
  TimerService* timers_;
  const KeyStore* keystore_;
  CryptoMemo* const memo_;  // the run's memo, owned by the composition root
  const PrincipalId id_;
  const ClusterConfig config_;
  const CostModel costs_;
  Signer signer_;
  CpuMeter* cpu_;  // owned by the transport
  ExecutionEngine exec_;
  ReplicaStats stats_;
  CommitQueue commits_;

 private:
  bool crashed_ = false;
  bool proposer_quiesced_ = false;
  uint32_t byzantine_flags_ = kByzNone;
  uint64_t epoch_ = 0;  // bumped by Crash(); stale timers are ignored
  /// Never null; DurableStore::Null() until AttachDurable. Not owned.
  DurableStore* durable_;
  /// Timer closures hold this token and bail once the replica is destroyed
  /// — a restart replaces the object while its timers may still be queued
  /// in the simulator.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  Payload current_frame_;  // frame being handled (empty when idle)
  Arena scratch_;  // handler-local scratch, reset at checkpoint boundaries
  bool scratch_reset_pending_ = false;
};

}  // namespace seemore

#endif  // SEEMORE_CONSENSUS_REPLICA_BASE_H_
