// Common plumbing for every protocol replica: transport registration, CPU
// cost accounting, signing, timers that die with the replica, crash/recover
// fault injection, and Byzantine-behaviour flags consulted by the protocol
// logic.
//
// Replicas see the outside world only through the Transport / TimerService /
// CpuMeter interfaces (net/transport.h); no protocol code knows whether it
// runs on the simulator or a real backend.

#ifndef SEEMORE_CONSENSUS_REPLICA_BASE_H_
#define SEEMORE_CONSENSUS_REPLICA_BASE_H_

#include <functional>
#include <memory>

#include "consensus/config.h"
#include "consensus/execution.h"
#include "net/cost_model.h"
#include "net/transport.h"
#include "smr/command.h"

namespace seemore {

/// Misbehaviours a (public-cloud) replica can be configured to exhibit.
/// kSilent is enforced by the base class; the rest are consulted by
/// protocol code at the relevant decision points.
enum ByzantineFlag : uint32_t {
  kByzNone = 0,
  /// Drop all incoming messages (fail-stop-looking Byzantine node).
  kByzSilent = 1u << 0,
  /// As primary, send conflicting proposals for the same sequence number to
  /// different replicas (equivocation).
  kByzEquivocate = 1u << 1,
  /// Vote (accept/prepare/commit) for a corrupted digest.
  kByzWrongVotes = 1u << 2,
  /// Send clients corrupted results.
  kByzLieToClients = 1u << 3,
};

struct ReplicaStats {
  uint64_t requests_executed = 0;
  uint64_t batches_committed = 0;
  uint64_t view_changes_started = 0;
  uint64_t view_changes_completed = 0;
  uint64_t mode_changes = 0;
  uint64_t messages_handled = 0;
  uint64_t state_transfers = 0;
};

class ReplicaBase : public MessageHandler {
 public:
  ReplicaBase(Transport* transport, TimerService* timers,
              const KeyStore* keystore, PrincipalId id,
              const ClusterConfig& config,
              std::unique_ptr<StateMachine> state_machine,
              const CostModel& costs);
  ~ReplicaBase() override;

  ReplicaBase(const ReplicaBase&) = delete;
  ReplicaBase& operator=(const ReplicaBase&) = delete;

  PrincipalId id() const { return id_; }
  const ClusterConfig& config() const { return config_; }
  ExecutionEngine& exec() { return exec_; }
  const ExecutionEngine& exec() const { return exec_; }
  const ReplicaStats& stats() const { return stats_; }
  CpuMeter* cpu() { return cpu_; }
  bool crashed() const { return crashed_; }

  /// Fault injection: stop processing and detach from the network. State is
  /// retained in memory (a restart models a reboot with a durable log).
  void Crash();
  void Recover();

  /// Fault injection: configure Byzantine behaviour (only meaningful for
  /// untrusted replicas; tests assert trusted replicas are never flagged).
  void SetByzantine(uint32_t flags) { byzantine_flags_ = flags; }
  bool HasByz(ByzantineFlag flag) const {
    return (byzantine_flags_ & flag) != 0;
  }

  /// MessageHandler: charges receive costs, filters crashed/silent states,
  /// then dispatches to HandleMessage.
  void OnMessage(PrincipalId from, Bytes bytes) final;

 protected:
  /// Protocol logic entry point. Runs on the replica's (virtual) CPU;
  /// charge crypto/execution work via the Charge* helpers.
  virtual void HandleMessage(PrincipalId from, const Bytes& bytes) = 0;

  /// Hook invoked after Recover() re-attaches the replica.
  virtual void OnRecover() {}

  /// --- time -------------------------------------------------------------
  SimTime now() const { return timers_->Now(); }
  /// CPU work charged but not yet drained. Failure detectors add this to
  /// their timeouts so a replica's own backlog never counts against a peer.
  SimTime CpuBacklog() const {
    const SimTime backlog = cpu_->AvailableAt() - now();
    return backlog > 0 ? backlog : 0;
  }

  /// --- CPU accounting ---------------------------------------------------
  void Charge(SimTime cost) { cpu_->Charge(cost); }
  void ChargeVerify(int count = 1) { cpu_->Charge(costs_.verify * count); }
  void ChargeSign(int count = 1) { cpu_->Charge(costs_.sign * count); }
  void ChargeMac(int count = 1) { cpu_->Charge(costs_.mac * count); }
  void ChargeHash(size_t bytes) { cpu_->Charge(costs_.HashCost(bytes)); }
  void ChargeExecute(int requests) { cpu_->Charge(costs_.execute * requests); }

  /// --- network ----------------------------------------------------------
  /// Send one message (charges the fixed + payload send cost).
  void SendTo(PrincipalId to, const Bytes& msg);
  /// Send `msg` to every target except this replica.
  void SendToMany(const std::vector<PrincipalId>& targets, const Bytes& msg);

  /// --- timers -----------------------------------------------------------
  /// Timers are invalidated by Crash(); callbacks never fire on a crashed
  /// replica or across a Crash()/Recover() cycle.
  EventId StartTimer(SimTime delay, std::function<void()> fn);
  void CancelTimer(EventId& id);

  Transport* transport_;
  TimerService* timers_;
  const KeyStore* keystore_;
  const PrincipalId id_;
  const ClusterConfig config_;
  const CostModel costs_;
  Signer signer_;
  CpuMeter* cpu_;  // owned by the transport
  ExecutionEngine exec_;
  ReplicaStats stats_;

 private:
  bool crashed_ = false;
  uint32_t byzantine_flags_ = kByzNone;
  uint64_t epoch_ = 0;  // bumped by Crash(); stale timers are ignored
};

}  // namespace seemore

#endif  // SEEMORE_CONSENSUS_REPLICA_BASE_H_
