#include "consensus/quorum_tracker.h"

namespace seemore {

namespace {

/// Shared binding/equivocation bookkeeping: returns the outcome and whether
/// the vote should be recorded.
VoteOutcome Bind(std::map<PrincipalId, Digest>& bound,
                 std::set<PrincipalId>& equivocators, const Digest& value,
                 PrincipalId voter, bool* record) {
  VoteOutcome outcome;
  auto [it, inserted] = bound.emplace(voter, value);
  if (!inserted && it->second != value) {
    // Conflicting vote: the first value stays binding; flag the voter once.
    outcome.equivocation = equivocators.insert(voter).second;
    *record = false;
    return outcome;
  }
  *record = true;
  return outcome;
}

}  // namespace

VoteOutcome VoteTracker::Add(const Digest& value, PrincipalId voter) {
  bool record = false;
  VoteOutcome outcome = Bind(bound_, equivocators_, value, voter, &record);
  if (record) outcome.counted = votes_[value].insert(voter).second;
  return outcome;
}

size_t VoteTracker::Count(const Digest& value) const {
  auto it = votes_.find(value);
  return it == votes_.end() ? 0 : it->second.size();
}

bool VoteTracker::HasVoted(const Digest& value, PrincipalId voter) const {
  auto it = votes_.find(value);
  return it != votes_.end() && it->second.count(voter) > 0;
}

void VoteTracker::Clear() {
  votes_.clear();
  bound_.clear();
  equivocators_.clear();
}

VoteOutcome QuorumTracker::Add(const Digest& value, PrincipalId voter,
                               const Signature& sig) {
  bool record = false;
  VoteOutcome outcome = Bind(bound_, equivocators_, value, voter, &record);
  if (record) outcome.counted = votes_[value].emplace(voter, sig).second;
  return outcome;
}

size_t QuorumTracker::Count(const Digest& value) const {
  auto it = votes_.find(value);
  return it == votes_.end() ? 0 : it->second.size();
}

const std::map<PrincipalId, Signature>* QuorumTracker::SignaturesFor(
    const Digest& value) const {
  auto it = votes_.find(value);
  return it == votes_.end() ? nullptr : &it->second;
}

void QuorumTracker::Clear() {
  votes_.clear();
  bound_.clear();
  equivocators_.clear();
}

}  // namespace seemore
