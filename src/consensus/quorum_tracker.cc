#include "consensus/quorum_tracker.h"

#include <algorithm>

namespace seemore {

namespace {

/// Shared binding/equivocation bookkeeping: returns the outcome and whether
/// the vote should be recorded.
VoteOutcome Bind(FlatHashMap<PrincipalId, Digest>& bound,
                 FlatHashSet<PrincipalId>& equivocators, const Digest& value,
                 PrincipalId voter, bool* record) {
  VoteOutcome outcome;
  auto [it, inserted] = bound.try_emplace(voter, value);
  if (!inserted && it->second != value) {
    // Conflicting vote: the first value stays binding; flag the voter once.
    outcome.equivocation = equivocators.insert(voter).second;
    *record = false;
    return outcome;
  }
  *record = true;
  return outcome;
}

}  // namespace

VoteOutcome VoteTracker::Add(const Digest& value, PrincipalId voter) {
  bool record = false;
  VoteOutcome outcome = Bind(bound_, equivocators_, value, voter, &record);
  if (record) outcome.counted = votes_[value].insert(voter).second;
  return outcome;
}

size_t VoteTracker::Count(const Digest& value) const {
  auto it = votes_.find(value);
  return it == votes_.end() ? 0 : it->second.size();
}

bool VoteTracker::HasVoted(const Digest& value, PrincipalId voter) const {
  auto it = votes_.find(value);
  return it != votes_.end() && it->second.count(voter) > 0;
}

void VoteTracker::Clear() {
  votes_.clear();
  bound_.clear();
  equivocators_.clear();
}

VoteOutcome QuorumTracker::Add(const Digest& value, PrincipalId voter,
                               const Signature& sig) {
  bool record = false;
  VoteOutcome outcome = Bind(bound_, equivocators_, value, voter, &record);
  if (record) {
    std::unique_ptr<SigTable>& table = votes_[value];
    if (table == nullptr) table = std::make_unique<SigTable>();
    outcome.counted = table->try_emplace(voter, sig).second;
  }
  return outcome;
}

size_t QuorumTracker::Count(const Digest& value) const {
  auto it = votes_.find(value);
  return it == votes_.end() ? 0 : it->second->size();
}

QuorumTracker::SignatureView QuorumTracker::SignaturesFor(
    const Digest& value) const {
  auto it = votes_.find(value);
  return it == votes_.end() ? SignatureView()
                            : SignatureView(it->second.get());
}

std::vector<std::pair<PrincipalId, Signature>>
QuorumTracker::SignatureView::SortedEntries() const {
  std::vector<std::pair<PrincipalId, Signature>> out;
  if (table_ == nullptr) return out;
  out.reserve(table_->size());
  for (const auto& [voter, sig] : *table_) out.emplace_back(voter, sig);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void QuorumTracker::Clear() {
  votes_.clear();
  bound_.clear();
  equivocators_.clear();
}

}  // namespace seemore
