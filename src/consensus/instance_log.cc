#include "consensus/instance_log.h"

#include <algorithm>

#include "util/logging.h"

namespace seemore {

namespace {

uint64_t NextPow2(uint64_t v) {
  uint64_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

void SlotCore::Reset(uint64_t owner_seq) {
  *this = SlotCore{};
  seq = owner_seq;
}

InstanceLog::InstanceLog(uint64_t window) {
  // The slab is an eager allocation (sizeof(SlotCore) per slot), so cap it:
  // a huge agreement window (e.g. a bench disabling checkpoints via
  // checkpoint_period = 1 << 20) must not cost gigabytes per replica —
  // especially now that RunMany keeps several clusters alive concurrently.
  // Seqs in the window but beyond the slab take the ordered overflow map,
  // which is exactly the lagging-replica cold path it already serves;
  // behaviour is identical, only host-side locality changes.
  constexpr uint64_t kMaxSlabSlots = uint64_t{1} << 14;
  slab_.resize(NextPow2(std::min(window + 1, kMaxSlabSlots)));
  mask_ = slab_.size() - 1;
}

uint64_t InstanceLog::SlabScanEnd() const {
  return std::min(slab_max_, stable_ + slab_.size());
}

SlotCore& InstanceLog::Slot(uint64_t seq) {
  if (InSlabRange(seq)) {
    SlotCore& slot = slab_[seq & mask_];
    if (slot.seq == seq) return slot;
    // Distinct in-window seqs map to distinct indices and Reclaim() frees
    // everything at or below the floor, so a mismatch means the slot is free.
    SEEMORE_CHECK(slot.seq == 0) << "instance-log slab collision";
    slot.Reset(seq);
    ++occupied_;
    slab_max_ = std::max(slab_max_, seq);
    return slot;
  }
  auto [it, inserted] = overflow_.try_emplace(seq);
  if (inserted) {
    it->second.Reset(seq);
    ++occupied_;
  }
  return it->second;
}

SlotCore& InstanceLog::ResetSlot(uint64_t seq) {
  SlotCore& slot = Slot(seq);
  slot.Reset(seq);
  return slot;
}

SlotCore* InstanceLog::Find(uint64_t seq) {
  if (InSlabRange(seq)) {
    SlotCore& slot = slab_[seq & mask_];
    return slot.seq == seq ? &slot : nullptr;
  }
  auto it = overflow_.find(seq);
  return it == overflow_.end() ? nullptr : &it->second;
}

const SlotCore* InstanceLog::Find(uint64_t seq) const {
  return const_cast<InstanceLog*>(this)->Find(seq);
}

void InstanceLog::Erase(uint64_t seq) {
  if (InSlabRange(seq)) {
    SlotCore& slot = slab_[seq & mask_];
    if (slot.seq == seq) {
      slot.Reset(0);
      --occupied_;
    }
    return;
  }
  if (overflow_.erase(seq) > 0) --occupied_;
}

void InstanceLog::Reclaim(uint64_t stable_seq) {
  // Free slab slots in (stable_, min(stable_seq, slab range end)].
  const uint64_t hi = std::min(stable_seq, stable_ + slab_.size());
  for (uint64_t seq = stable_ + 1; seq <= hi; ++seq) {
    SlotCore& slot = slab_[seq & mask_];
    if (slot.seq == seq) {
      slot.Reset(0);
      --occupied_;
    }
  }
  for (auto it = overflow_.begin(); it != overflow_.end();) {
    if (it->first <= stable_seq) {
      it = overflow_.erase(it);
      --occupied_;
    } else {
      ++it;
    }
  }
  if (stable_seq <= stable_) return;
  stable_ = stable_seq;
  // Side-map entries that fell into the new window move onto the slab.
  for (auto it = overflow_.begin(); it != overflow_.end();) {
    if (!InSlabRange(it->first)) {
      ++it;
      continue;
    }
    SlotCore& slot = slab_[it->first & mask_];
    SEEMORE_CHECK(slot.seq == 0) << "instance-log migration collision";
    slot = std::move(it->second);
    slab_max_ = std::max(slab_max_, slot.seq);
    it = overflow_.erase(it);
  }
}

void InstanceLog::EraseUncommitted() {
  const uint64_t hi = SlabScanEnd();
  for (uint64_t seq = stable_ + 1; seq <= hi; ++seq) {
    SlotCore& slot = slab_[seq & mask_];
    if (slot.seq == seq && !slot.committed) {
      slot.Reset(0);
      --occupied_;
    }
  }
  for (auto it = overflow_.begin(); it != overflow_.end();) {
    if (!it->second.committed) {
      it = overflow_.erase(it);
      --occupied_;
    } else {
      ++it;
    }
  }
}

int InstanceLog::UncommittedSlots() const {
  // Hot path (pipeline pacing consults this on every proposal/commit):
  // count directly instead of going through ForEachAscending, which would
  // sort the overflow keys just to produce an order counting doesn't need.
  int count = 0;
  const uint64_t hi = SlabScanEnd();
  for (uint64_t seq = stable_ + 1; seq <= hi; ++seq) {
    const SlotCore& slot = slab_[seq & mask_];
    if (slot.seq == seq && slot.has_batch && !slot.committed) ++count;
  }
  for (const auto& kv : overflow_) {
    if (kv.second.has_batch && !kv.second.committed) ++count;
  }
  return count;
}

}  // namespace seemore
