// Vote accounting. Byzantine senders may vote for different values, so every
// tracker keys votes by value (digest) and counts *distinct* signers per
// value — a node's second vote for the same value is ignored, and votes for
// conflicting values accumulate independently.

#ifndef SEEMORE_CONSENSUS_QUORUM_H_
#define SEEMORE_CONSENSUS_QUORUM_H_

#include <map>
#include <set>

#include "crypto/digest.h"
#include "crypto/keystore.h"

namespace seemore {

/// Counts distinct voters per candidate value.
template <typename Value = Digest>
class VoteSet {
 public:
  /// Record a vote. Returns true if it was new (voter had not yet voted for
  /// this value).
  bool Add(const Value& value, PrincipalId voter) {
    return votes_[value].insert(voter).second;
  }

  size_t Count(const Value& value) const {
    auto it = votes_.find(value);
    return it == votes_.end() ? 0 : it->second.size();
  }

  bool Reached(const Value& value, size_t quorum) const {
    return Count(value) >= quorum;
  }

  bool HasVoted(const Value& value, PrincipalId voter) const {
    auto it = votes_.find(value);
    return it != votes_.end() && it->second.count(voter) > 0;
  }

  const std::set<PrincipalId>* VotersFor(const Value& value) const {
    auto it = votes_.find(value);
    return it == votes_.end() ? nullptr : &it->second;
  }

  void Clear() { votes_.clear(); }

 private:
  std::map<Value, std::set<PrincipalId>> votes_;
};

/// Votes that must be remembered with their signatures (to later assemble a
/// transferable certificate, e.g. Peacock/PBFT prepared proofs).
template <typename Value = Digest>
class SignedVoteSet {
 public:
  bool Add(const Value& value, PrincipalId voter, const Signature& sig) {
    return votes_[value].emplace(voter, sig).second;
  }

  size_t Count(const Value& value) const {
    auto it = votes_.find(value);
    return it == votes_.end() ? 0 : it->second.size();
  }

  bool Reached(const Value& value, size_t quorum) const {
    return Count(value) >= quorum;
  }

  const std::map<PrincipalId, Signature>* SignaturesFor(
      const Value& value) const {
    auto it = votes_.find(value);
    return it == votes_.end() ? nullptr : &it->second;
  }

  void Clear() { votes_.clear(); }

 private:
  std::map<Value, std::map<PrincipalId, Signature>> votes_;
};

}  // namespace seemore

#endif  // SEEMORE_CONSENSUS_QUORUM_H_
