// In-order execution of committed batches on top of a StateMachine, with
// exactly-once reply caching and snapshot/restore for checkpointing.
//
// Shared by all four protocols: a protocol marks (seq, batch) committed and
// the engine executes batches strictly in sequence order, buffering gaps.

#ifndef SEEMORE_CONSENSUS_EXECUTION_H_
#define SEEMORE_CONSENSUS_EXECUTION_H_

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "consensus/batch.h"
#include "smr/state_machine.h"

namespace seemore {

/// One request's execution outcome, used by protocols to send replies.
struct ExecutedRequest {
  uint64_t seq = 0;
  Request request;
  Bytes result;
  /// True if the request had already executed under an earlier sequence
  /// number (duplicate from a retransmission); `result` is the cached reply.
  bool duplicate = false;
};

class ExecutionEngine {
 public:
  explicit ExecutionEngine(std::unique_ptr<StateMachine> state_machine);

  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  /// Record (seq, batch) as committed. Executes every batch that becomes
  /// in-order executable and returns the per-request outcomes (possibly from
  /// several sequence numbers). Re-commits of an already-executed or
  /// already-buffered seq are ignored (returns empty).
  std::vector<ExecutedRequest> Commit(uint64_t seq, Batch batch);

  uint64_t last_executed() const { return last_executed_; }

  /// True if a batch for `seq` is already executed or buffered.
  bool HasCommitted(uint64_t seq) const {
    return seq <= last_executed_ || pending_.count(seq) > 0;
  }

  /// Cached reply for a client's timestamp, if it is the client's most
  /// recent executed request (exactly-once retransmission support).
  std::optional<Bytes> CachedReply(PrincipalId client, uint64_t timestamp) const;

  /// True if `timestamp` from `client` has already been executed (i.e. is
  /// <= the client's latest executed timestamp).
  bool SeenTimestamp(PrincipalId client, uint64_t timestamp) const;

  /// --- checkpointing ----------------------------------------------------
  /// Serialize state machine + reply cache + last_executed.
  Bytes Snapshot() const;
  /// Install a snapshot taken at sequence number `seq`.
  Status Restore(const Bytes& snapshot, uint64_t seq);
  /// Digest over Snapshot() — the "digest of the state" d in CHECKPOINT
  /// messages.
  Digest StateDigest() const;

  StateMachine* state_machine() { return state_machine_.get(); }
  uint64_t batches_executed() const { return batches_executed_; }

  /// Digest of the batch executed at each sequence number (agreement audit
  /// trail; tests use it to check prefix consistency across replicas).
  /// Entries below a restored snapshot are absent.
  const std::map<uint64_t, Digest>& executed_digests() const {
    return executed_digests_;
  }

 private:
  struct CacheEntry {
    uint64_t timestamp = 0;
    Bytes reply;
  };

  std::vector<ExecutedRequest> ExecuteBatch(uint64_t seq, const Batch& batch);

  std::unique_ptr<StateMachine> state_machine_;
  uint64_t last_executed_ = 0;
  uint64_t batches_executed_ = 0;
  std::map<uint64_t, Batch> pending_;  // committed, waiting for lower seqs
  std::map<PrincipalId, CacheEntry> reply_cache_;
  std::map<uint64_t, Digest> executed_digests_;
};

}  // namespace seemore

#endif  // SEEMORE_CONSENSUS_EXECUTION_H_
