// In-order execution of committed batches on top of a StateMachine, with
// exactly-once reply caching and snapshot/restore for checkpointing.
//
// Shared by all four protocols: a protocol marks (seq, batch) committed and
// the engine executes batches strictly in sequence order, buffering gaps.
//
// Memory model (DESIGN.md §10): the reply cache is an open-addressing flat
// map (hot on every request/execute), bounded by opt-in retention-window
// eviction (ClusterConfig::reply_cache_retention);
// the executed-digest audit trail is a dense vector (seqs execute in order,
// so a base offset + vector replaces a std::map with zero per-entry nodes).
// Everything serialized into Snapshot() is emitted in sorted client order at
// write time, so snapshot bytes — and therefore checkpoint state digests —
// never depend on hash-table iteration order.

#ifndef SEEMORE_CONSENSUS_EXECUTION_H_
#define SEEMORE_CONSENSUS_EXECUTION_H_

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "consensus/batch.h"
#include "smr/state_machine.h"
#include "util/flat_hash_map.h"

namespace seemore {

/// One request's execution outcome, used by protocols to send replies.
struct ExecutedRequest {
  uint64_t seq = 0;
  Request request;
  Bytes result;
  /// True if the request had already executed under an earlier sequence
  /// number (duplicate from a retransmission); `result` is the cached reply.
  bool duplicate = false;
};

/// Dense audit trail of batch digests by sequence number: seqs execute
/// strictly in order, so storage is a base offset plus a vector (the old
/// std::map cost one tree node per committed batch for data that is never
/// queried out of order). Entries below a restored snapshot are absent.
class ExecutedDigestLog {
 public:
  /// First / last sequence number present (floor() > ceil() when empty).
  uint64_t floor() const { return base_; }
  uint64_t ceil() const { return base_ + digests_.size() - 1; }
  size_t size() const { return digests_.size(); }
  bool empty() const { return digests_.empty(); }

  const Digest* Find(uint64_t seq) const {
    if (seq < base_ || seq - base_ >= digests_.size()) return nullptr;
    return &digests_[seq - base_];
  }
  const Digest& at(uint64_t seq) const { return *Find(seq); }

  /// Append the digest for `seq`; must be exactly one past the last entry.
  void Append(uint64_t seq, const Digest& digest) {
    if (digests_.empty()) base_ = seq;
    digests_.push_back(digest);
  }

  /// Restore-time reset: everything at or below `snapshot_seq` is covered by
  /// the snapshot, so the trail restarts above it.
  void ResetAbove(uint64_t snapshot_seq) {
    digests_.clear();
    base_ = snapshot_seq + 1;
  }

 private:
  uint64_t base_ = 1;
  std::vector<Digest> digests_;
};

class ExecutionEngine {
 public:
  explicit ExecutionEngine(std::unique_ptr<StateMachine> state_machine);

  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  /// Record (seq, batch) as committed. Executes every batch that becomes
  /// in-order executable and returns the per-request outcomes (possibly from
  /// several sequence numbers). Re-commits of an already-executed or
  /// already-buffered seq are ignored (returns empty).
  std::vector<ExecutedRequest> Commit(uint64_t seq, Batch batch);

  uint64_t last_executed() const { return last_executed_; }

  /// True if a batch for `seq` is already executed or buffered.
  bool HasCommitted(uint64_t seq) const {
    return seq <= last_executed_ || pending_.count(seq) > 0;
  }

  /// Cached reply for a client's timestamp, if it is the client's most
  /// recent executed request (exactly-once retransmission support).
  std::optional<Bytes> CachedReply(PrincipalId client, uint64_t timestamp) const;

  /// True if `timestamp` from `client` has already been executed (i.e. is
  /// <= the client's latest executed timestamp).
  bool SeenTimestamp(PrincipalId client, uint64_t timestamp) const;

  /// --- reply-cache bounding ---------------------------------------------
  /// Retain a client's cached reply only while its last executed request is
  /// within `seqs` of the execution frontier; older entries are evicted as
  /// execution advances (a client idle for a full retention window can no
  /// longer be deduplicated — the PBFT last-reply-cache tradeoff). Eviction
  /// happens inside Commit(), so it is a pure function of the committed
  /// prefix: every correct replica evicts identically and snapshot bytes
  /// stay convergent. When enabled, snapshots additionally serialize each
  /// entry's last-execution seq so restored replicas inherit the donor's
  /// eviction schedule exactly; with retention off the snapshot layout is
  /// byte-identical to the historical format. The knob is therefore
  /// cluster-wide consensus state — set it identically on every replica
  /// (ClusterConfig::reply_cache_retention) and never mid-run. 0 (the
  /// default) disables eviction.
  void SetReplyRetention(uint64_t seqs) { reply_retention_ = seqs; }
  size_t reply_cache_size() const { return reply_cache_.size(); }

  /// --- checkpointing ----------------------------------------------------
  /// Serialize state machine + reply cache + last_executed.
  Bytes Snapshot() const;
  /// Install a snapshot taken at sequence number `seq`.
  Status Restore(const Bytes& snapshot, uint64_t seq);
  /// Digest over Snapshot() — the "digest of the state" d in CHECKPOINT
  /// messages.
  Digest StateDigest() const;

  StateMachine* state_machine() { return state_machine_.get(); }
  uint64_t batches_executed() const { return batches_executed_; }

  /// Digest of the batch executed at each sequence number (agreement audit
  /// trail; tests use it to check prefix consistency across replicas).
  const ExecutedDigestLog& executed_digests() const {
    return executed_digests_;
  }

 private:
  struct CacheEntry {
    uint64_t timestamp = 0;
    Bytes reply;
    /// Seq of the batch that produced `reply`; drives retention eviction.
    /// Serialized into snapshots iff retention is enabled (restored
    /// replicas must evict on exactly the donor's schedule).
    uint64_t last_seq = 0;
  };

  std::vector<ExecutedRequest> ExecuteBatch(uint64_t seq, const Batch& batch);
  void EvictStaleReplies();

  std::unique_ptr<StateMachine> state_machine_;
  uint64_t last_executed_ = 0;
  uint64_t batches_executed_ = 0;
  uint64_t reply_retention_ = 0;  // 0 = unbounded (tool/test default)
  std::map<uint64_t, Batch> pending_;  // committed, waiting for lower seqs
  FlatHashMap<PrincipalId, CacheEntry> reply_cache_;
  ExecutedDigestLog executed_digests_;
};

}  // namespace seemore

#endif  // SEEMORE_CONSENSUS_EXECUTION_H_
