#include "consensus/batch.h"

namespace seemore {

Bytes Batch::Encode() const {
  Encoder enc;
  enc.Reserve(EncodedSize());
  EncodeTo(enc);
  return enc.Take();
}

void Batch::EncodeTo(Encoder& enc) const {
  enc.PutVarint(requests.size());
  for (const Request& request : requests) request.EncodeTo(enc);
}

size_t Batch::EncodedSize() const {
  size_t total = VarintSize(requests.size());
  for (const Request& request : requests) total += request.EncodedSize();
  return total;
}

Result<Batch> Batch::Decode(const Bytes& bytes) {
  Decoder dec(bytes);
  SEEMORE_ASSIGN_OR_RETURN(Batch batch, DecodeFrom(dec));
  SEEMORE_RETURN_IF_ERROR(dec.Finish());
  return batch;
}

Result<Batch> Batch::DecodeFrom(Decoder& dec) {
  Batch batch;
  const uint64_t count = dec.GetVarint();
  if (!dec.ok()) return dec.status();
  // A count limit keeps a Byzantine primary from forcing huge allocations.
  constexpr uint64_t kMaxBatch = 1 << 16;
  if (count > kMaxBatch) return Status::Corruption("batch too large");
  batch.requests.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SEEMORE_ASSIGN_OR_RETURN(Request req, Request::DecodeFrom(dec));
    batch.requests.push_back(std::move(req));
  }
  return batch;
}

Digest Batch::ComputeDigest() const { return Digest::Of(Encode()); }

Batch Batch::Noop() { return Batch{}; }

}  // namespace seemore
