#include "consensus/replica_base.h"

#include <utility>

#include "util/logging.h"

namespace seemore {

ReplicaBase::ReplicaBase(Transport* transport, TimerService* timers,
                         const KeyStore* keystore, CryptoMemo* memo,
                         PrincipalId id, const ClusterConfig& config,
                         std::unique_ptr<StateMachine> state_machine,
                         const CostModel& costs)
    : transport_(transport),
      timers_(timers),
      keystore_(keystore),
      memo_(memo),
      id_(id),
      config_(config),
      costs_(costs),
      signer_(id, *keystore),
      cpu_(transport->Register(id, config.ReplicaZone(id), this,
                               /*metered=*/true)),
      exec_(std::move(state_machine)),
      commits_(exec_, stats_, cpu_, costs_),
      durable_(DurableStore::Null()) {
  SEEMORE_CHECK(cpu_ != nullptr) << "transport returned no CPU meter";
  SEEMORE_CHECK(memo_ != nullptr) << "replica needs the run's CryptoMemo";
  // Opt-in reply-cache bound (see ClusterConfig::reply_cache_retention).
  // Eviction keys off the committed prefix and last_seq travels inside
  // snapshots, so every correct replica's cache — and checkpoint digest —
  // stays identical, state transfers included.
  exec_.SetReplyRetention(config.reply_cache_retention);
}

ReplicaBase::~ReplicaBase() { *alive_ = false; }

void ReplicaBase::AttachDurable(DurableStore* store) {
  durable_ = store != nullptr ? store : DurableStore::Null();
  durable_->BindCpu(cpu_);
  commits_.SetDurable(durable_);
}

void ReplicaBase::RestoreFromImage(const RecoveredImage& image) {
  if (const storage::RecoveredSnapshot* snap = image.Latest()) {
    const Status st = exec_.Restore(snap->bytes, snap->seq);
    // The snapshot's CRC matched at recovery, so a decode failure here is a
    // writer/reader version bug, not injectable damage.
    SEEMORE_CHECK(st.ok()) << "snapshot restore failed: " << st.ToString();
  }
  // Replay through the engine directly: gap-tolerant, dedups overlap with
  // the snapshot, and sends no replies and charges no CPU — the work
  // happened while the replica was down.
  for (const auto& [seq, batch] : image.commits) {
    exec_.Commit(seq, batch);
  }
  // See proposer_quiesced(): no proposing in the restored view — the
  // pre-crash incarnation may have signed proposals this image lacks.
  proposer_quiesced_ = true;
  OnDurableRestore(image);
}

void ReplicaBase::Crash() {
  crashed_ = true;
  ++epoch_;  // invalidates all outstanding timers
  transport_->SetNodeUp(id_, false);
}

void ReplicaBase::Recover() {
  crashed_ = false;
  transport_->SetNodeUp(id_, true);
  OnRecover();
}

void ReplicaBase::OnMessage(PrincipalId from, Payload payload) {
  if (crashed_) return;
  if (HasByz(kByzSilent)) return;
  ++stats_.messages_handled;
  Charge(costs_.recv_fixed + costs_.PayloadCost(payload.size()));
  // Deferred checkpoint-GC rewind: only at a message boundary (and only at
  // the outermost dispatch), so scratch taken by an in-flight handler can
  // never be pulled out from under it.
  if (scratch_reset_pending_ && current_frame_.empty()) {
    scratch_.Reset();
    scratch_reset_pending_ = false;
  }
  // Save/restore keeps the frame alive (and the memo keyed correctly) even
  // if a transport ever delivers a nested message synchronously.
  Payload prev = std::exchange(current_frame_, std::move(payload));
  HandleMessage(from, current_frame_);
  current_frame_ = std::move(prev);
}

void ReplicaBase::SendTo(PrincipalId to, const Payload& msg) {
  if (crashed_) return;
  Charge(costs_.send_fixed + costs_.PayloadCost(msg.size()));
  transport_->Send(id_, to, msg);
}

void ReplicaBase::SendToMany(const std::vector<PrincipalId>& targets,
                             const Payload& msg) {
  if (crashed_) return;
  for (PrincipalId to : targets) {
    if (to == id_) continue;
    SendTo(to, msg);
  }
}

EventId ReplicaBase::StartTimer(SimTime delay, std::function<void()> fn) {
  const uint64_t epoch = epoch_;
  // The alive token guards against a restart destroying this replica while
  // the timer is still queued; it must be checked before any member read.
  return timers_->ScheduleAfter(
      delay, [this, alive = alive_, epoch, fn = std::move(fn)] {
        if (!*alive || crashed_ || epoch != epoch_) return;
        fn();
      });
}

void ReplicaBase::CancelTimer(EventId& id) {
  if (id != 0) {
    timers_->CancelEvent(id);
    id = 0;
  }
}

}  // namespace seemore
