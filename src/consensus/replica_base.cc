#include "consensus/replica_base.h"

#include "util/logging.h"

namespace seemore {

ReplicaBase::ReplicaBase(Simulator* sim, SimNetwork* net,
                         const KeyStore* keystore, PrincipalId id,
                         const ClusterConfig& config,
                         std::unique_ptr<StateMachine> state_machine,
                         const CostModel& costs)
    : sim_(sim),
      net_(net),
      keystore_(keystore),
      id_(id),
      config_(config),
      costs_(costs),
      signer_(id, *keystore),
      cpu_(sim),
      exec_(std::move(state_machine)) {
  net_->AddNode(id_, config_.ReplicaZone(id_), this, &cpu_);
}

ReplicaBase::~ReplicaBase() = default;

void ReplicaBase::Crash() {
  crashed_ = true;
  ++epoch_;  // invalidates all outstanding timers
  net_->SetNodeUp(id_, false);
}

void ReplicaBase::Recover() {
  crashed_ = false;
  net_->SetNodeUp(id_, true);
  OnRecover();
}

void ReplicaBase::OnMessage(PrincipalId from, Bytes bytes) {
  if (crashed_) return;
  if (HasByz(kByzSilent)) return;
  ++stats_.messages_handled;
  Charge(costs_.recv_fixed + costs_.PayloadCost(bytes.size()));
  HandleMessage(from, bytes);
}

void ReplicaBase::SendTo(PrincipalId to, const Bytes& msg) {
  if (crashed_) return;
  Charge(costs_.send_fixed + costs_.PayloadCost(msg.size()));
  net_->Send(id_, to, msg);
}

void ReplicaBase::SendToMany(const std::vector<PrincipalId>& targets,
                             const Bytes& msg) {
  if (crashed_) return;
  for (PrincipalId to : targets) {
    if (to == id_) continue;
    SendTo(to, msg);
  }
}

EventId ReplicaBase::StartTimer(SimTime delay, std::function<void()> fn) {
  const uint64_t epoch = epoch_;
  return sim_->Schedule(delay, [this, epoch, fn = std::move(fn)] {
    if (crashed_ || epoch != epoch_) return;
    fn();
  });
}

void ReplicaBase::CancelTimer(EventId& id) {
  if (id != 0) {
    sim_->Cancel(id);
    id = 0;
  }
}

}  // namespace seemore
