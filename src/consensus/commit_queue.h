// The ordered commit funnel between protocol agreement and execution: every
// protocol marks slots committed and hands batches over HERE, and the queue
// feeds the ExecutionEngine (which applies batches strictly in sequence
// order, buffering gaps), charges the simulated execution cost and keeps the
// replica's commit/execution counters. Centralising this keeps the
// charge-vs-compute rule and the stats in one place instead of four copies.
//
// Also home of ReplicaStats, the per-replica counter block the scenario
// reports aggregate.

#ifndef SEEMORE_CONSENSUS_COMMIT_QUEUE_H_
#define SEEMORE_CONSENSUS_COMMIT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "consensus/execution.h"
#include "consensus/instance_log.h"
#include "net/cost_model.h"
#include "net/transport.h"
#include "storage/durable_store.h"

namespace seemore {

struct ReplicaStats {
  uint64_t requests_executed = 0;
  uint64_t batches_committed = 0;
  uint64_t view_changes_started = 0;
  uint64_t view_changes_completed = 0;
  uint64_t mode_changes = 0;
  uint64_t messages_handled = 0;
  uint64_t state_transfers = 0;
  /// Conflicting votes for one slot/view from a single replica, flagged by
  /// the slot vote trackers (each faulty voter counts once per slot/phase).
  uint64_t equivocations_detected = 0;
};

class CommitQueue {
 public:
  CommitQueue(ExecutionEngine& exec, ReplicaStats& stats, CpuMeter* cpu,
              const CostModel& costs)
      : exec_(exec), stats_(stats), cpu_(cpu), costs_(costs) {}

  CommitQueue(const CommitQueue&) = delete;
  CommitQueue& operator=(const CommitQueue&) = delete;

  /// Phase 1: flag the slot committed and count the batch. Callers guard
  /// idempotence (a slot is marked at most once).
  void MarkCommitted(SlotCore& slot) {
    slot.committed = true;
    ++stats_.batches_committed;
  }

  /// The commit funnel is the WAL hook point: with a durable store set,
  /// every committed batch is logged before execution (write-ahead order).
  /// The default null pointer keeps the hot path to one predictable branch.
  void SetDurable(DurableStore* durable) {
    durable_ = durable != nullptr && durable->enabled() ? durable : nullptr;
  }

  /// Phase 2: enqueue (seq, batch) for in-order execution. Executes every
  /// batch that became in-order runnable, charges the execution cost and
  /// returns the per-request outcomes for the caller's reply policy.
  std::vector<ExecutedRequest> Execute(uint64_t seq, const Batch& batch) {
    if (durable_ != nullptr) durable_->AppendCommit(seq, batch);
    std::vector<ExecutedRequest> executed = exec_.Commit(seq, batch);
    cpu_->Charge(costs_.execute * static_cast<int64_t>(executed.size()));
    stats_.requests_executed += executed.size();
    return executed;
  }

  /// Both phases — the common case when nothing (e.g. an INFORM broadcast)
  /// has to happen between marking and execution.
  std::vector<ExecutedRequest> Commit(uint64_t seq, SlotCore& slot) {
    MarkCommitted(slot);
    return Execute(seq, slot.batch);
  }

 private:
  ExecutionEngine& exec_;
  ReplicaStats& stats_;
  CpuMeter* cpu_;
  const CostModel costs_;
  DurableStore* durable_ = nullptr;  // null = in-memory only (the default)
};

}  // namespace seemore

#endif  // SEEMORE_CONSENSUS_COMMIT_QUEUE_H_
