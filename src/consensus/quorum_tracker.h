// Vote accounting for one consensus slot phase: dedup, quorum thresholds
// and equivocation flagging, shared by every protocol (SeeMoRe's three
// modes, PBFT, S-UpRight and Paxos) through the SlotCore in instance_log.h.
//
// Byzantine senders may vote for conflicting values. A voter's FIRST value
// is binding: a later vote for a different value in the same tracker (= the
// same slot, view and phase) is rejected, and the voter is flagged as an
// equivocator exactly once so replicas can count the event in their stats.
// This guarantees one faulty node can never contribute to two conflicting
// quorums, and that re-delivered duplicates of the same vote stay idempotent.

#ifndef SEEMORE_CONSENSUS_QUORUM_TRACKER_H_
#define SEEMORE_CONSENSUS_QUORUM_TRACKER_H_

#include <map>
#include <set>

#include "crypto/digest.h"
#include "crypto/keystore.h"

namespace seemore {

/// Result of offering one vote to a tracker.
struct VoteOutcome {
  /// The vote was new and now counts toward its value's quorum.
  bool counted = false;
  /// First conflicting vote from a voter already bound to another value.
  /// True at most once per voter per tracker, so callers can bump an
  /// equivocation counter without double-counting the same faulty node.
  bool equivocation = false;
};

/// Counts distinct voters per candidate value (unsigned votes: Lion plain
/// accepts, Paxos ACKs, INFORM tallies at passive nodes).
class VoteTracker {
 public:
  VoteOutcome Add(const Digest& value, PrincipalId voter);

  size_t Count(const Digest& value) const;
  bool Reached(const Digest& value, size_t quorum) const {
    return Count(value) >= quorum;
  }
  bool HasVoted(const Digest& value, PrincipalId voter) const;
  /// Distinct voters caught voting for conflicting values.
  size_t equivocators() const { return equivocators_.size(); }

  void Clear();

 private:
  std::map<Digest, std::set<PrincipalId>> votes_;
  std::map<PrincipalId, Digest> bound_;  // voter -> first (binding) value
  std::set<PrincipalId> equivocators_;
};

/// VoteTracker that also remembers each vote's signature, so a reached
/// quorum can be assembled into a transferable certificate (PBFT/Peacock
/// prepared proofs carried by view-change messages).
class QuorumTracker {
 public:
  VoteOutcome Add(const Digest& value, PrincipalId voter,
                  const Signature& sig);

  size_t Count(const Digest& value) const;
  bool Reached(const Digest& value, size_t quorum) const {
    return Count(value) >= quorum;
  }
  /// Voter -> signature map for `value` (nullptr when nobody voted for it).
  const std::map<PrincipalId, Signature>* SignaturesFor(
      const Digest& value) const;
  size_t equivocators() const { return equivocators_.size(); }

  void Clear();

 private:
  std::map<Digest, std::map<PrincipalId, Signature>> votes_;
  std::map<PrincipalId, Digest> bound_;
  std::set<PrincipalId> equivocators_;
};

}  // namespace seemore

#endif  // SEEMORE_CONSENSUS_QUORUM_TRACKER_H_
