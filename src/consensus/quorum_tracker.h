// Vote accounting for one consensus slot phase: dedup, quorum thresholds
// and equivocation flagging, shared by every protocol (SeeMoRe's three
// modes, PBFT, S-UpRight and Paxos) through the SlotCore in instance_log.h.
//
// Byzantine senders may vote for conflicting values. A voter's FIRST value
// is binding: a later vote for a different value in the same tracker (= the
// same slot, view and phase) is rejected, and the voter is flagged as an
// equivocator exactly once so replicas can count the event in their stats.
// This guarantees one faulty node can never contribute to two conflicting
// quorums, and that re-delivered duplicates of the same vote stay idempotent.
//
// Storage is open-addressing (util/flat_hash_map.h): vote tables are the
// hottest per-message state a replica touches, and they never need ordered
// iteration internally. The one consumer that does need order — prepared
// certificates encoded onto the wire — gets it from
// SignatureView::SortedEntries(), which sorts by voter id at read time so
// wire bytes stay canonical no matter how the table is laid out.

#ifndef SEEMORE_CONSENSUS_QUORUM_TRACKER_H_
#define SEEMORE_CONSENSUS_QUORUM_TRACKER_H_

#include <memory>
#include <utility>
#include <vector>

#include "crypto/digest.h"
#include "crypto/keystore.h"
#include "util/flat_hash_map.h"

namespace seemore {

/// Result of offering one vote to a tracker.
struct VoteOutcome {
  /// The vote was new and now counts toward its value's quorum.
  bool counted = false;
  /// First conflicting vote from a voter already bound to another value.
  /// True at most once per voter per tracker, so callers can bump an
  /// equivocation counter without double-counting the same faulty node.
  bool equivocation = false;
};

/// Counts distinct voters per candidate value (unsigned votes: Lion plain
/// accepts, Paxos ACKs, INFORM tallies at passive nodes).
class VoteTracker {
 public:
  VoteOutcome Add(const Digest& value, PrincipalId voter);

  size_t Count(const Digest& value) const;
  bool Reached(const Digest& value, size_t quorum) const {
    return Count(value) >= quorum;
  }
  bool HasVoted(const Digest& value, PrincipalId voter) const;
  /// Distinct voters caught voting for conflicting values.
  size_t equivocators() const { return equivocators_.size(); }

  void Clear();

 private:
  FlatHashMap<Digest, FlatHashSet<PrincipalId>, Digest::Hasher> votes_;
  FlatHashMap<PrincipalId, Digest> bound_;  // voter -> first (binding) value
  FlatHashSet<PrincipalId> equivocators_;
};

/// VoteTracker that also remembers each vote's signature, so a reached
/// quorum can be assembled into a transferable certificate (PBFT/Peacock
/// prepared proofs carried by view-change messages).
class QuorumTracker {
 public:
  using SigTable = FlatHashMap<PrincipalId, Signature>;

  /// Read-only view of the signatures collected for one value — no copying
  /// of signature storage. The view stays valid across further Add() calls
  /// (each value's table is its own heap block, so outer-table rehashes
  /// never move it) until the tracker is cleared or destroyed.
  class SignatureView {
   public:
    SignatureView() = default;

    bool empty() const { return table_ == nullptr || table_->empty(); }
    size_t size() const { return table_ == nullptr ? 0 : table_->size(); }
    size_t count(PrincipalId voter) const {
      return table_ == nullptr ? 0 : table_->count(voter);
    }

    /// The (voter, signature) entries sorted by voter id — the canonical
    /// order certificates are encoded in (wire bytes must never depend on
    /// hash-table iteration order).
    std::vector<std::pair<PrincipalId, Signature>> SortedEntries() const;

   private:
    friend class QuorumTracker;
    explicit SignatureView(const SigTable* table) : table_(table) {}
    const SigTable* table_ = nullptr;
  };

  VoteOutcome Add(const Digest& value, PrincipalId voter,
                  const Signature& sig);

  size_t Count(const Digest& value) const;
  bool Reached(const Digest& value, size_t quorum) const {
    return Count(value) >= quorum;
  }
  /// View of the signatures for `value` (empty view when nobody voted for
  /// it). See SignatureView for lifetime rules.
  SignatureView SignaturesFor(const Digest& value) const;
  size_t equivocators() const { return equivocators_.size(); }

  void Clear();

 private:
  FlatHashMap<Digest, std::unique_ptr<SigTable>, Digest::Hasher> votes_;
  FlatHashMap<PrincipalId, Digest> bound_;
  FlatHashSet<PrincipalId> equivocators_;
};

}  // namespace seemore

#endif  // SEEMORE_CONSENSUS_QUORUM_TRACKER_H_
