#include "consensus/execution.h"

#include <algorithm>

#include "util/logging.h"

namespace seemore {

ExecutionEngine::ExecutionEngine(std::unique_ptr<StateMachine> state_machine)
    : state_machine_(std::move(state_machine)) {}

std::vector<ExecutedRequest> ExecutionEngine::Commit(uint64_t seq,
                                                     Batch batch) {
  std::vector<ExecutedRequest> out;
  if (seq <= last_executed_ || pending_.count(seq) > 0) return out;
  pending_.emplace(seq, std::move(batch));
  // Drain every batch that is now in order.
  while (true) {
    auto it = pending_.find(last_executed_ + 1);
    if (it == pending_.end()) break;
    std::vector<ExecutedRequest> executed = ExecuteBatch(it->first, it->second);
    out.insert(out.end(), std::make_move_iterator(executed.begin()),
               std::make_move_iterator(executed.end()));
    executed_digests_.Append(it->first, it->second.ComputeDigest());
    last_executed_ = it->first;
    ++batches_executed_;
    pending_.erase(it);
  }
  if (!out.empty()) EvictStaleReplies();
  return out;
}

std::vector<ExecutedRequest> ExecutionEngine::ExecuteBatch(uint64_t seq,
                                                           const Batch& batch) {
  std::vector<ExecutedRequest> out;
  out.reserve(batch.requests.size());
  for (const Request& request : batch.requests) {
    ExecutedRequest result;
    result.seq = seq;
    result.request = request;
    auto cache_it = reply_cache_.find(request.client);
    if (cache_it != reply_cache_.end() &&
        request.timestamp <= cache_it->second.timestamp) {
      // Duplicate of an already-executed request: never re-execute
      // (exactly-once semantics). Reply only reproducible for the latest
      // timestamp.
      result.duplicate = true;
      if (request.timestamp == cache_it->second.timestamp) {
        result.result = cache_it->second.reply;
      }
    } else {
      result.result = state_machine_->Execute(request.op);
      reply_cache_[request.client] =
          CacheEntry{request.timestamp, result.result, seq};
    }
    out.push_back(std::move(result));
  }
  return out;
}

void ExecutionEngine::EvictStaleReplies() {
  if (reply_retention_ == 0 || last_executed_ <= reply_retention_) return;
  const uint64_t evict_below = last_executed_ - reply_retention_;
  for (auto it = reply_cache_.begin(); it != reply_cache_.end();) {
    if (it->second.last_seq < evict_below) {
      it = reply_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<Bytes> ExecutionEngine::CachedReply(PrincipalId client,
                                                  uint64_t timestamp) const {
  auto it = reply_cache_.find(client);
  if (it == reply_cache_.end() || it->second.timestamp != timestamp) {
    return std::nullopt;
  }
  return it->second.reply;
}

bool ExecutionEngine::SeenTimestamp(PrincipalId client,
                                    uint64_t timestamp) const {
  auto it = reply_cache_.find(client);
  return it != reply_cache_.end() && timestamp <= it->second.timestamp;
}

Bytes ExecutionEngine::Snapshot() const {
  Encoder enc;
  enc.PutU64(last_executed_);
  enc.PutBytes(state_machine_->Snapshot());
  enc.PutVarint(reply_cache_.size());
  // Sort-at-read: snapshot bytes feed checkpoint digests that must match
  // across replicas, so the cache is serialized in client-id order rather
  // than hash-table order.
  std::vector<const std::pair<PrincipalId, CacheEntry>*> entries;
  entries.reserve(reply_cache_.size());
  for (const auto& kv : reply_cache_) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* kv : entries) {
    enc.PutU32(static_cast<uint32_t>(kv->first));
    enc.PutU64(kv->second.timestamp);
    enc.PutBytes(kv->second.reply);
    // With retention on, eviction keys off last_seq, so last_seq must travel
    // with the snapshot: a restored replica that guessed it (e.g. re-stamped
    // to the snapshot seq) would evict on a different schedule than replicas
    // that executed the prefix, and the caches — hence every later
    // checkpoint digest — would diverge. With retention off the field is
    // omitted and the byte layout is exactly the historical one.
    if (reply_retention_ > 0) enc.PutU64(kv->second.last_seq);
  }
  return enc.Take();
}

Status ExecutionEngine::Restore(const Bytes& snapshot, uint64_t seq) {
  Decoder dec(snapshot);
  const uint64_t snapshot_seq = dec.GetU64();
  Bytes sm_snapshot = dec.GetBytes();
  const uint64_t cache_size = dec.GetVarint();
  FlatHashMap<PrincipalId, CacheEntry> cache;
  cache.reserve(cache_size);
  for (uint64_t i = 0; i < cache_size && dec.ok(); ++i) {
    PrincipalId client = static_cast<PrincipalId>(dec.GetU32());
    CacheEntry entry;
    entry.timestamp = dec.GetU64();
    entry.reply = dec.GetBytes();
    // Symmetric with Snapshot(): retention is a cluster-wide config, so the
    // sender serialized last_seq iff this replica expects it.
    if (reply_retention_ > 0) entry.last_seq = dec.GetU64();
    cache.insert({client, std::move(entry)});
  }
  SEEMORE_RETURN_IF_ERROR(dec.Finish());
  if (snapshot_seq != seq) {
    return Status::Corruption("snapshot sequence number mismatch");
  }
  SEEMORE_RETURN_IF_ERROR(state_machine_->Restore(sm_snapshot));
  last_executed_ = snapshot_seq;
  reply_cache_ = std::move(cache);
  executed_digests_.ResetAbove(snapshot_seq);
  // Drop buffered batches at or below the restored point.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->first <= last_executed_) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::Ok();
}

Digest ExecutionEngine::StateDigest() const { return Digest::Of(Snapshot()); }

}  // namespace seemore
