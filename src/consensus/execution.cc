#include "consensus/execution.h"

#include "util/logging.h"

namespace seemore {

ExecutionEngine::ExecutionEngine(std::unique_ptr<StateMachine> state_machine)
    : state_machine_(std::move(state_machine)) {}

std::vector<ExecutedRequest> ExecutionEngine::Commit(uint64_t seq,
                                                     Batch batch) {
  std::vector<ExecutedRequest> out;
  if (seq <= last_executed_ || pending_.count(seq) > 0) return out;
  pending_.emplace(seq, std::move(batch));
  // Drain every batch that is now in order.
  while (true) {
    auto it = pending_.find(last_executed_ + 1);
    if (it == pending_.end()) break;
    std::vector<ExecutedRequest> executed = ExecuteBatch(it->first, it->second);
    out.insert(out.end(), std::make_move_iterator(executed.begin()),
               std::make_move_iterator(executed.end()));
    executed_digests_[it->first] = it->second.ComputeDigest();
    last_executed_ = it->first;
    ++batches_executed_;
    pending_.erase(it);
  }
  return out;
}

std::vector<ExecutedRequest> ExecutionEngine::ExecuteBatch(uint64_t seq,
                                                           const Batch& batch) {
  std::vector<ExecutedRequest> out;
  out.reserve(batch.requests.size());
  for (const Request& request : batch.requests) {
    ExecutedRequest result;
    result.seq = seq;
    result.request = request;
    auto cache_it = reply_cache_.find(request.client);
    if (cache_it != reply_cache_.end() &&
        request.timestamp <= cache_it->second.timestamp) {
      // Duplicate of an already-executed request: never re-execute
      // (exactly-once semantics). Reply only reproducible for the latest
      // timestamp.
      result.duplicate = true;
      if (request.timestamp == cache_it->second.timestamp) {
        result.result = cache_it->second.reply;
      }
    } else {
      result.result = state_machine_->Execute(request.op);
      reply_cache_[request.client] =
          CacheEntry{request.timestamp, result.result};
    }
    out.push_back(std::move(result));
  }
  return out;
}

std::optional<Bytes> ExecutionEngine::CachedReply(PrincipalId client,
                                                  uint64_t timestamp) const {
  auto it = reply_cache_.find(client);
  if (it == reply_cache_.end() || it->second.timestamp != timestamp) {
    return std::nullopt;
  }
  return it->second.reply;
}

bool ExecutionEngine::SeenTimestamp(PrincipalId client,
                                    uint64_t timestamp) const {
  auto it = reply_cache_.find(client);
  return it != reply_cache_.end() && timestamp <= it->second.timestamp;
}

Bytes ExecutionEngine::Snapshot() const {
  Encoder enc;
  enc.PutU64(last_executed_);
  enc.PutBytes(state_machine_->Snapshot());
  enc.PutVarint(reply_cache_.size());
  for (const auto& [client, entry] : reply_cache_) {
    enc.PutU32(static_cast<uint32_t>(client));
    enc.PutU64(entry.timestamp);
    enc.PutBytes(entry.reply);
  }
  return enc.Take();
}

Status ExecutionEngine::Restore(const Bytes& snapshot, uint64_t seq) {
  Decoder dec(snapshot);
  const uint64_t snapshot_seq = dec.GetU64();
  Bytes sm_snapshot = dec.GetBytes();
  const uint64_t cache_size = dec.GetVarint();
  std::map<PrincipalId, CacheEntry> cache;
  for (uint64_t i = 0; i < cache_size && dec.ok(); ++i) {
    PrincipalId client = static_cast<PrincipalId>(dec.GetU32());
    CacheEntry entry;
    entry.timestamp = dec.GetU64();
    entry.reply = dec.GetBytes();
    cache.emplace(client, std::move(entry));
  }
  SEEMORE_RETURN_IF_ERROR(dec.Finish());
  if (snapshot_seq != seq) {
    return Status::Corruption("snapshot sequence number mismatch");
  }
  SEEMORE_RETURN_IF_ERROR(state_machine_->Restore(sm_snapshot));
  last_executed_ = snapshot_seq;
  reply_cache_ = std::move(cache);
  // Drop buffered batches at or below the restored point.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->first <= last_executed_) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::Ok();
}

Digest ExecutionEngine::StateDigest() const { return Digest::Of(Snapshot()); }

}  // namespace seemore
