#include "consensus/checkpoint.h"

#include <set>

namespace seemore {

namespace {
// Domain-separation tag so a checkpoint signature can never be confused
// with any other signed payload.
constexpr uint8_t kCheckpointDomain = 0xC4;
}  // namespace

Bytes CheckpointMsg::SignedPayload() const {
  Encoder enc;
  enc.PutU8(kCheckpointDomain);
  enc.PutU64(seq);
  state_digest.EncodeTo(enc);
  enc.PutU32(static_cast<uint32_t>(replica));
  return enc.Take();
}

void CheckpointMsg::Sign(const Signer& signer) {
  sig = signer.Sign(SignedPayload());
}

bool CheckpointMsg::Verify(const KeyStore& keystore) const {
  return keystore.Verify(replica, SignedPayload(), sig);
}

void CheckpointMsg::EncodeTo(Encoder& enc) const {
  enc.PutU64(seq);
  state_digest.EncodeTo(enc);
  enc.PutU32(static_cast<uint32_t>(replica));
  sig.EncodeTo(enc);
}

Result<CheckpointMsg> CheckpointMsg::DecodeFrom(Decoder& dec) {
  CheckpointMsg msg;
  msg.seq = dec.GetU64();
  msg.state_digest = Digest::DecodeFrom(dec);
  msg.replica = static_cast<PrincipalId>(dec.GetU32());
  msg.sig = Signature::DecodeFrom(dec);
  if (!dec.ok()) return dec.status();
  return msg;
}

bool CheckpointCert::Verify(
    const KeyStore& keystore, size_t required,
    const std::function<bool(PrincipalId)>& authorized) const {
  if (msgs_.empty()) return true;  // genesis
  const uint64_t seq0 = msgs_.front().seq;
  const Digest digest0 = msgs_.front().state_digest;
  std::set<PrincipalId> signers;
  for (const CheckpointMsg& msg : msgs_) {
    if (msg.seq != seq0 || msg.state_digest != digest0) return false;
    if (!authorized(msg.replica)) return false;
    if (!msg.Verify(keystore)) return false;
    signers.insert(msg.replica);
  }
  return signers.size() >= required;
}

void CheckpointCert::EncodeTo(Encoder& enc) const {
  enc.PutVarint(msgs_.size());
  for (const CheckpointMsg& msg : msgs_) msg.EncodeTo(enc);
}

Result<CheckpointCert> CheckpointCert::DecodeFrom(Decoder& dec) {
  CheckpointCert cert;
  const uint64_t count = dec.GetVarint();
  if (!dec.ok()) return dec.status();
  constexpr uint64_t kMaxMsgs = 4096;
  if (count > kMaxMsgs) return Status::Corruption("oversized checkpoint cert");
  for (uint64_t i = 0; i < count; ++i) {
    SEEMORE_ASSIGN_OR_RETURN(CheckpointMsg msg, CheckpointMsg::DecodeFrom(dec));
    cert.Add(std::move(msg));
  }
  return cert;
}

}  // namespace seemore
