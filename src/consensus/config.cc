#include "consensus/config.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace seemore {

const char* ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kCft:
      return "CFT";
    case ProtocolKind::kBft:
      return "BFT";
    case ProtocolKind::kSUpRight:
      return "S-UpRight";
    case ProtocolKind::kSeeMoRe:
      return "SeeMoRe";
  }
  return "?";
}

const char* SeeMoReModeName(SeeMoReMode mode) {
  switch (mode) {
    case SeeMoReMode::kLion:
      return "Lion";
    case SeeMoReMode::kDog:
      return "Dog";
    case SeeMoReMode::kPeacock:
      return "Peacock";
  }
  return "?";
}

int ClusterConfig::n() const {
  switch (kind) {
    case ProtocolKind::kCft:
      return 2 * f + 1;
    case ProtocolKind::kBft:
      return 3 * f + 1;
    case ProtocolKind::kSUpRight:
    case ProtocolKind::kSeeMoRe:
      return s + p;
  }
  return 0;
}

int ClusterConfig::CommitQuorum(SeeMoReMode mode) const {
  switch (kind) {
    case ProtocolKind::kCft:
      return f + 1;
    case ProtocolKind::kBft:
      return 2 * f + 1;
    case ProtocolKind::kSUpRight:
      return 2 * m + c + 1;
    case ProtocolKind::kSeeMoRe:
      return mode == SeeMoReMode::kLion ? 2 * m + c + 1 : 2 * m + 1;
  }
  return 0;
}

Zone ClusterConfig::ReplicaZone(PrincipalId id) const {
  switch (kind) {
    case ProtocolKind::kCft:
    case ProtocolKind::kBft:
      // Flat protocols run inside one cloud; placement does not affect the
      // protocol and the default latency profiles are symmetric.
      return Zone::kPrivate;
    case ProtocolKind::kSUpRight:
    case ProtocolKind::kSeeMoRe:
      return IsTrusted(id) ? Zone::kPrivate : Zone::kPublic;
  }
  return Zone::kPrivate;
}

std::vector<PrincipalId> ClusterConfig::AllReplicas() const {
  std::vector<PrincipalId> out;
  out.reserve(n());
  for (int i = 0; i < n(); ++i) out.push_back(i);
  return out;
}

std::vector<PrincipalId> ClusterConfig::PublicReplicas() const {
  std::vector<PrincipalId> out;
  for (int i = s; i < n(); ++i) out.push_back(i);
  return out;
}

std::vector<PrincipalId> ClusterConfig::PrivateReplicas() const {
  std::vector<PrincipalId> out;
  for (int i = 0; i < s && i < n(); ++i) out.push_back(i);
  return out;
}

PrincipalId ClusterConfig::TrustedPrimary(uint64_t view) const {
  return static_cast<PrincipalId>(view % static_cast<uint64_t>(s));
}

PrincipalId ClusterConfig::PeacockPrimary(uint64_t view) const {
  return static_cast<PrincipalId>(s + view % static_cast<uint64_t>(p));
}

PrincipalId ClusterConfig::PrimaryOf(SeeMoReMode mode, uint64_t view) const {
  return mode == SeeMoReMode::kPeacock ? PeacockPrimary(view)
                                       : TrustedPrimary(view);
}

PrincipalId ClusterConfig::Transferer(uint64_t view) const {
  return TrustedPrimary(view);
}

std::vector<PrincipalId> ClusterConfig::ProxySet(uint64_t view) const {
  // {S + ((v + k) mod P) | k in [0, 3m]}: a rotating window of 3m+1 public
  // replicas; always contains the Peacock primary S + (v mod P).
  std::vector<PrincipalId> out;
  const int count = 3 * m + 1;
  out.reserve(count);
  for (int k = 0; k < count && k < p; ++k) {
    out.push_back(static_cast<PrincipalId>(
        s + (view + static_cast<uint64_t>(k)) % static_cast<uint64_t>(p)));
  }
  return out;
}

bool ClusterConfig::IsProxy(PrincipalId id, uint64_t view) const {
  if (id < s || id >= n()) return false;
  const uint64_t offset =
      (static_cast<uint64_t>(id - s) + static_cast<uint64_t>(p) -
       view % static_cast<uint64_t>(p)) %
      static_cast<uint64_t>(p);
  return offset <= static_cast<uint64_t>(3 * m);
}

Status ClusterConfig::Validate() const {
  switch (kind) {
    case ProtocolKind::kCft:
    case ProtocolKind::kBft:
      if (f < 1) return Status::InvalidArgument("f must be >= 1");
      return Status::Ok();
    case ProtocolKind::kSUpRight:
      if (m < 0 || c < 0 || m + c < 1) {
        return Status::InvalidArgument("need m + c >= 1");
      }
      if (s + p < HybridNetworkSize(m, c)) {
        return Status::InvalidArgument("network smaller than 3m+2c+1");
      }
      return Status::Ok();
    case ProtocolKind::kSeeMoRe:
      if (m < 0 || c < 0 || m + c < 1) {
        return Status::InvalidArgument("need m + c >= 1");
      }
      if (s < c + 1) {
        return Status::InvalidArgument(
            "private cloud must outlive its crashes (S >= c+1)");
      }
      if (p < 3 * m + 1) {
        return Status::InvalidArgument(
            "public cloud must hold 3m+1 proxies (P >= 3m+1)");
      }
      if (s + p < HybridNetworkSize(m, c)) {
        return Status::InvalidArgument("network smaller than 3m+2c+1");
      }
      return Status::Ok();
  }
  return Status::InvalidArgument("unknown protocol kind");
}

std::string ClusterConfig::ToString() const {
  char buf[160];
  if (kind == ProtocolKind::kCft || kind == ProtocolKind::kBft) {
    std::snprintf(buf, sizeof(buf), "%s{n=%d f=%d}", ProtocolKindName(kind),
                  n(), f);
  } else {
    std::snprintf(buf, sizeof(buf), "%s{n=%d s=%d p=%d c=%d m=%d%s%s}",
                  ProtocolKindName(kind), n(), s, p, c, m,
                  kind == ProtocolKind::kSeeMoRe ? " mode=" : "",
                  kind == ProtocolKind::kSeeMoRe
                      ? SeeMoReModeName(initial_mode)
                      : "");
  }
  return buf;
}

namespace {
SizingResult Infeasible(std::string why) {
  SizingResult r;
  r.feasible = false;
  r.explanation = std::move(why);
  return r;
}
}  // namespace

SizingResult PublicCloudSizeByRatio(int s, int c, double alpha) {
  return PublicCloudSizeByRatios(s, c, alpha, 0.0);
}

SizingResult PublicCloudSizeByRatios(int s, int c, double alpha, double beta) {
  if (s >= 2 * c + 1) {
    SizingResult r;
    r.feasible = true;
    r.public_nodes = 0;
    r.network_size = s;
    r.explanation =
        "S >= 2c+1: the private cloud can run a crash fault-tolerant "
        "protocol (e.g. Paxos) by itself";
    return r;
  }
  if (s <= c) {
    return Infeasible(
        "S <= c: the private cloud adds no value; rent everything and run a "
        "Byzantine fault-tolerant protocol in the public cloud");
  }
  const double denom = 3.0 * alpha + 2.0 * beta - 1.0;
  if (denom >= 0.0) {
    return Infeasible(
        "3*alpha + 2*beta >= 1: the public cloud cannot satisfy the "
        "Byzantine network-size constraint (need alpha < 1/3 when beta = 0)");
  }
  // Eq. 2 / Eq. 3: P = ceil((S - (2c+1)) / (3a + 2b - 1)). Numerator and
  // denominator are both negative in the feasible band c < S < 2c+1.
  const double numer = static_cast<double>(s) - (2.0 * c + 1.0);
  const double exact = numer / denom;
  SizingResult r;
  r.feasible = true;
  r.public_nodes = static_cast<int>(std::ceil(exact - 1e-9));
  r.network_size = s + r.public_nodes;
  r.explanation = beta > 0.0 ? "Eq. 3: P = ceil((S-(2c+1))/(3a+2b-1))"
                             : "Eq. 2: P = ceil((S-(2c+1))/(3a-1))";
  return r;
}

MultiCloudPlan PlanMultiCloud(int s, int c,
                              const std::vector<CloudOffer>& offers) {
  MultiCloudPlan plan;
  plan.rented.assign(offers.size(), 0);
  if (s >= 2 * c + 1) {
    plan.feasible = true;
    plan.network_size = s;
    plan.explanation = "private cloud is self-sufficient (S >= 2c+1)";
    return plan;
  }
  if (s <= c) {
    plan.explanation =
        "S <= c: run a Byzantine fault-tolerant protocol fully in public";
    return plan;
  }
  // Greedy: rent from the lowest-alpha provider first. Track the implied
  // malicious bound m_i = floor(alpha_i * p_i) and stop as soon as
  // s + sum(p) >= 3*sum(m) + 2c + 1.
  std::vector<size_t> order(offers.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&offers](size_t a, size_t b) {
    return offers[a].alpha < offers[b].alpha;
  });
  int rented_total = 0;
  // Conservative malicious bound: ceil(alpha_i * p_i). The paper's worked
  // example (S=2, c=1, alpha=0.3 -> P=10, m=3) satisfies this exactly, and
  // rounding down would let a single rented node from a 30%-malicious cloud
  // count as fully trustworthy.
  auto satisfied = [&]() {
    int malicious = 0;
    for (size_t i = 0; i < offers.size(); ++i) {
      malicious += static_cast<int>(
          std::ceil(offers[i].alpha * plan.rented[i] - 1e-9));
    }
    return s + rented_total >= 3 * malicious + 2 * c + 1;
  };
  while (!satisfied()) {
    bool progressed = false;
    for (size_t idx : order) {
      if (plan.rented[idx] >= offers[idx].max_nodes) continue;
      ++plan.rented[idx];
      ++rented_total;
      progressed = true;
      break;
    }
    if (!progressed) {
      plan.rented.assign(offers.size(), 0);
      plan.explanation =
          "offered capacity cannot satisfy N >= 3m + 2c + 1 at these ratios";
      return plan;
    }
  }
  plan.feasible = true;
  plan.total_rented = rented_total;
  plan.network_size = s + rented_total;
  plan.explanation = "greedy lowest-alpha-first allocation";
  return plan;
}

SizingResult PublicCloudSizeByBound(int s, int c, int max_malicious) {
  SizingResult r;
  r.feasible = true;
  r.public_nodes = (3 * max_malicious + 2 * c + 1) - s;
  if (r.public_nodes < 0) r.public_nodes = 0;
  r.network_size = s + r.public_nodes;
  r.explanation = "P = (3M + 2c + 1) - S";
  return r;
}

SizingResult PublicCloudSizeByBounds(int s, int c, int max_malicious,
                                     int max_crash) {
  SizingResult r;
  r.feasible = true;
  r.public_nodes = (3 * max_malicious + 2 * max_crash + 2 * c + 1) - s;
  if (r.public_nodes < 0) r.public_nodes = 0;
  r.network_size = s + r.public_nodes;
  r.explanation = "P = (3M + 2C + 2c + 1) - S";
  return r;
}

}  // namespace seemore
