// The per-replica consensus slot log shared by every protocol: a
// sequence-indexed slab of SlotCore instances holding one in-flight
// instance's batch, phase flags and vote trackers.
//
// Storage mirrors the simulator's event-slab design (DESIGN.md §6): live
// sequence numbers inside the agreement window (stable checkpoint + window)
// occupy a power-of-two slab addressed by `seq & mask` — distinct in-window
// seqs can never collide — and each slot carries its owning seq as a
// generation tag, so a lookup of a reclaimed or never-claimed seq misses
// instead of aliasing stale state. Sequence numbers outside the window
// (a lagging replica installing a far-ahead certificate, or far-future
// bookkeeping like Paxos' commit-raced-ahead markers) spill into a small
// unordered side map; the one consumer that needs ordered traversal
// (ForEachAscending, view-change set assembly) sorts the side map's keys at
// read time. Reclaim(stable) frees every slot <= stable and migrates
// side-map entries that fell into the new window back onto the slab.

#ifndef SEEMORE_CONSENSUS_INSTANCE_LOG_H_
#define SEEMORE_CONSENSUS_INSTANCE_LOG_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/flat_hash_map.h"

#include "consensus/batch.h"
#include "consensus/config.h"
#include "consensus/quorum_tracker.h"
#include "crypto/keystore.h"

namespace seemore {

/// Phase state of one consensus instance (the union of what SeeMoRe's three
/// modes, PBFT/S-UpRight and Paxos track per sequence number). Protocols use
/// the subset their phases need; unused trackers stay empty.
struct SlotCore {
  /// Owning sequence number (the slab's generation tag); 0 = free slot.
  uint64_t seq = 0;

  Batch batch;
  bool has_batch = false;
  Digest digest;
  uint64_t view = 0;
  /// SeeMoRe: mode under which the proposal was signed (signature domain).
  SeeMoReMode mode = SeeMoReMode::kLion;
  Signature primary_sig;  // over the proposal (prepare/pre-prepare) header

  /// Unsigned votes: Lion accepts counted by the trusted primary, Paxos ACKs
  /// counted by the leader.
  VoteTracker plain_votes;
  /// Signed first-phase echoes: Dog accepts, Peacock/PBFT prepares.
  QuorumTracker accept_votes;
  /// Signed commit votes (Dog/Peacock/PBFT).
  QuorumTracker commit_votes;
  /// INFORMs received by SeeMoRe passive nodes.
  VoteTracker inform_votes;

  bool accept_sent = false;
  bool prepared = false;     // Peacock/PBFT
  bool commit_sent = false;  // commit vote sent / Paxos COMMIT broadcast
  bool committed = false;
  bool commit_seen = false;  // Paxos: COMMIT raced ahead of the ACCEPT
  /// Lion: the primary's signed commit (view-change C-set evidence).
  bool has_commit_sig = false;
  Signature commit_sig;

  /// Reset to a fresh slot owning `owner_seq` (0 frees the slot).
  void Reset(uint64_t owner_seq);
};

class InstanceLog {
 public:
  /// `window` is the protocol's agreement window (seqs above the stable
  /// checkpoint a primary may propose); it sizes the slab.
  explicit InstanceLog(uint64_t window);

  /// Get-or-create (std::map operator[] semantics, any seq).
  SlotCore& Slot(uint64_t seq);
  /// Get-or-create, then reset to a fresh slot. View-change installs use
  /// this so stale votes never count toward the new view.
  SlotCore& ResetSlot(uint64_t seq);

  SlotCore* Find(uint64_t seq);
  const SlotCore* Find(uint64_t seq) const;

  void Erase(uint64_t seq);
  /// Free every slot <= stable_seq (checkpoint GC) and adopt it as the new
  /// reclamation floor. Lower-than-current floors still erase matching
  /// stragglers but never move the floor backwards.
  void Reclaim(uint64_t stable_seq);
  /// Free every uncommitted slot (EnterView: superseded by the NEW-VIEW).
  void EraseUncommitted();

  /// Reclamation floor (highest Reclaim() argument seen).
  uint64_t stable() const { return stable_; }
  /// Live slots (slab + side map) — the occupancy the property tests bound.
  size_t occupied() const { return occupied_; }
  size_t slab_capacity() const { return slab_.size(); }
  /// Slots proposed but not yet committed (primary pipeline pacing input).
  int UncommittedSlots() const;

  /// Visit live slots in ascending seq order (view-change set assembly).
  /// The overflow map is unordered, so its keys are collected and sorted
  /// here — a cold-path cost paid only when overflow is non-empty.
  template <typename F>
  void ForEachAscending(F&& fn) const {
    std::vector<uint64_t> cold;
    cold.reserve(overflow_.size());
    for (const auto& kv : overflow_) cold.push_back(kv.first);
    std::sort(cold.begin(), cold.end());
    size_t ci = 0;
    for (; ci < cold.size() && cold[ci] <= stable_; ++ci) {
      fn(cold[ci], overflow_.find(cold[ci])->second);
    }
    const uint64_t hi = SlabScanEnd();
    for (uint64_t seq = stable_ + 1; seq <= hi; ++seq) {
      const SlotCore& slot = slab_[seq & mask_];
      if (slot.seq == seq) fn(seq, slot);
    }
    for (; ci < cold.size(); ++ci) {
      fn(cold[ci], overflow_.find(cold[ci])->second);
    }
  }

 private:
  bool InSlabRange(uint64_t seq) const {
    return seq > stable_ && seq <= stable_ + slab_.size();
  }
  uint64_t SlabScanEnd() const;

  uint64_t stable_ = 0;
  uint64_t slab_max_ = 0;  // highest seq ever placed on the slab
  size_t occupied_ = 0;
  uint64_t mask_ = 0;            // slab_.size() - 1 (power of two)
  std::vector<SlotCore> slab_;  // seqs in (stable_, stable_ + size]
  FlatHashMap<uint64_t, SlotCore> overflow_;  // everything else (cold path)
};

}  // namespace seemore

#endif  // SEEMORE_CONSENSUS_INSTANCE_LOG_H_
