// A batch of client requests ordered as one consensus instance (the "µ" of
// one sequence number). Batching follows BFT-SMaRt practice: the primary
// folds requests that arrive while earlier instances are in flight into the
// next instance. batch_max = 1 degenerates to the paper's one-request-per-
// sequence-number presentation.

#ifndef SEEMORE_CONSENSUS_BATCH_H_
#define SEEMORE_CONSENSUS_BATCH_H_

#include <vector>

#include "crypto/digest.h"
#include "smr/command.h"
#include "util/status.h"

namespace seemore {

struct Batch {
  std::vector<Request> requests;

  bool empty() const { return requests.empty(); }
  size_t size() const { return requests.size(); }

  Bytes Encode() const;
  /// Append the canonical encoding (same bytes as Encode()) to `enc` —
  /// batch-carrying messages size-hint with EncodedSize() and encode in
  /// place instead of materializing a temporary.
  void EncodeTo(Encoder& enc) const;
  /// Exact size of the canonical encoding.
  size_t EncodedSize() const;
  static Result<Batch> Decode(const Bytes& bytes);
  static Result<Batch> DecodeFrom(Decoder& dec);

  /// D(µ) of the batch: digest over the canonical encoding.
  Digest ComputeDigest() const;

  /// A batch containing the special no-op command µ∅ used by view changes
  /// to fill sequence-number holes (paper §5.1 step 3).
  static Batch Noop();
  bool IsNoop() const { return requests.empty(); }
};

}  // namespace seemore

#endif  // SEEMORE_CONSENSUS_BATCH_H_
