// Checkpoint messages and transferable checkpoint certificates ξ.
//
// Two certificate shapes exist in the paper:
//   - Lion/Dog (§5.1, §5.2): the trusted primary's single signed
//     <CHECKPOINT, n, d>_σp message IS the certificate.
//   - Peacock / PBFT / S-UpRight: a quorum of matching signed checkpoint
//     messages from the participants (2m+1 proxies / 2f+1 replicas /
//     2m+c+1 replicas respectively).
// CheckpointCert covers both: a set of matching signed messages verified
// against a required count and an authorized-signer predicate.

#ifndef SEEMORE_CONSENSUS_CHECKPOINT_H_
#define SEEMORE_CONSENSUS_CHECKPOINT_H_

#include <algorithm>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "crypto/digest.h"
#include "crypto/keystore.h"
#include "util/status.h"
#include "wire/wire.h"

namespace seemore {

struct CheckpointMsg {
  uint64_t seq = 0;
  Digest state_digest;
  PrincipalId replica = 0;
  Signature sig;

  Bytes SignedPayload() const;
  void Sign(const Signer& signer);
  bool Verify(const KeyStore& keystore) const;

  void EncodeTo(Encoder& enc) const;
  static Result<CheckpointMsg> DecodeFrom(Decoder& dec);
};

class CheckpointCert {
 public:
  CheckpointCert() = default;

  /// The genesis certificate: sequence 0, no messages, always valid.
  static CheckpointCert Genesis() { return CheckpointCert(); }

  void Add(CheckpointMsg msg) { msgs_.push_back(std::move(msg)); }

  uint64_t seq() const { return msgs_.empty() ? 0 : msgs_.front().seq; }
  Digest state_digest() const {
    return msgs_.empty() ? Digest() : msgs_.front().state_digest;
  }
  bool IsGenesis() const { return msgs_.empty(); }
  const std::vector<CheckpointMsg>& msgs() const { return msgs_; }

  /// Valid iff: all messages agree on (seq, digest), every signature
  /// verifies, and at least `required` distinct signers satisfy
  /// `authorized`. A genesis cert is always valid.
  bool Verify(const KeyStore& keystore, size_t required,
              const std::function<bool(PrincipalId)>& authorized) const;

  void EncodeTo(Encoder& enc) const;
  static Result<CheckpointCert> DecodeFrom(Decoder& dec);

 private:
  std::vector<CheckpointMsg> msgs_;
};

/// Per-replica checkpoint state shared by every protocol: the period gate,
/// the buffer of snapshots taken but not yet stable, the per-(seq, digest)
/// vote tally, and the stable checkpoint itself (seq, digest, certificate,
/// snapshot). Stability POLICY stays in the protocols (one trusted signer
/// vs. 2m+1 public signers vs. f+1 voters); this class owns the storage,
/// the garbage collection and the floor arithmetic.
class CheckpointTracker {
 public:
  explicit CheckpointTracker(int period) : period_(period) {}

  /// --- cutting checkpoints ---------------------------------------------
  /// Has execution advanced a full period past the previous checkpoint?
  bool Due(uint64_t executed) const {
    return executed >=
           last_checkpoint_seq_ + static_cast<uint64_t>(period_);
  }
  void NoteTaken(uint64_t executed) { last_checkpoint_seq_ = executed; }
  uint64_t last_checkpoint_seq() const { return last_checkpoint_seq_; }
  int period() const { return period_; }

  /// --- snapshots awaiting stability -------------------------------------
  void Buffer(uint64_t seq, const Digest& digest, Bytes snapshot) {
    buffered_[seq] = {digest, std::move(snapshot)};
  }
  struct Buffered {
    uint64_t seq = 0;
    const Digest* digest = nullptr;
    const Bytes* snapshot = nullptr;
  };
  /// Newest buffered snapshot, if any (a crash-model replica may serve it
  /// when it is fresher than the stable one).
  bool LatestBuffered(Buffered* out) const {
    if (buffered_.empty()) return false;
    auto it = buffered_.rbegin();
    out->seq = it->first;
    out->digest = &it->second.first;
    out->snapshot = &it->second.second;
    return true;
  }

  /// --- vote tally --------------------------------------------------------
  /// Record `msg` (last write per signer wins) and return all votes for its
  /// (seq, digest); the caller applies its protocol's stability rule.
  const std::map<PrincipalId, CheckpointMsg>& AddVote(
      const CheckpointMsg& msg) {
    auto& signers = votes_[msg.seq][msg.state_digest];
    signers[msg.replica] = msg;
    return signers;
  }

  /// --- the stable checkpoint --------------------------------------------
  uint64_t stable_seq() const { return stable_seq_; }
  const Digest& stable_digest() const { return stable_digest_; }
  const CheckpointCert& stable_cert() const { return stable_cert_; }
  const Bytes& stable_snapshot() const { return stable_snapshot_; }
  bool has_stable_snapshot() const { return !stable_snapshot_.empty(); }

  /// Advance the stable checkpoint to (seq, digest, cert); callers ensure
  /// seq > stable_seq(). Installs the matching buffered snapshot when one
  /// exists (returns true), otherwise keeps the previous snapshot bytes —
  /// the caller is likely behind and should arrange a state transfer.
  /// Garbage-collects votes and buffered snapshots at or below `seq`.
  bool Advance(uint64_t seq, const Digest& digest, CheckpointCert cert) {
    stable_seq_ = seq;
    stable_digest_ = digest;
    stable_cert_ = std::move(cert);
    bool installed = false;
    auto it = buffered_.find(seq);
    if (it != buffered_.end() && it->second.first == digest) {
      stable_snapshot_ = std::move(it->second.second);
      installed = true;
    }
    for (auto b = buffered_.begin(); b != buffered_.end();) {
      b = b->first <= seq ? buffered_.erase(b) : std::next(b);
    }
    for (auto v = votes_.begin(); v != votes_.end();) {
      v = v->first <= seq ? votes_.erase(v) : std::next(v);
    }
    return installed;
  }

  /// Raise only the stable floor (a crash-model view change adopting the
  /// quorum's max stable seq). Digest/cert/snapshot and the buffers stay —
  /// the replica may still be fetching the matching state.
  void AdvanceFloor(uint64_t seq) {
    stable_seq_ = std::max(stable_seq_, seq);
  }

  /// Install a verified snapshot received by state transfer: the floor only
  /// moves forward, while cert/digest/snapshot are replaced outright.
  void InstallRestored(uint64_t seq, const Digest& digest,
                       CheckpointCert cert, Bytes snapshot) {
    stable_seq_ = std::max(stable_seq_, seq);
    stable_digest_ = digest;
    stable_cert_ = std::move(cert);
    stable_snapshot_ = std::move(snapshot);
    last_checkpoint_seq_ = std::max(last_checkpoint_seq_, seq);
  }

 private:
  const int period_;
  uint64_t last_checkpoint_seq_ = 0;
  uint64_t stable_seq_ = 0;
  Digest stable_digest_;
  CheckpointCert stable_cert_;
  Bytes stable_snapshot_;
  /// seq -> (state digest, snapshot bytes).
  std::map<uint64_t, std::pair<Digest, Bytes>> buffered_;
  /// seq -> digest -> signer -> message (certificate assembly).
  std::map<uint64_t, std::map<Digest, std::map<PrincipalId, CheckpointMsg>>>
      votes_;
};

}  // namespace seemore

#endif  // SEEMORE_CONSENSUS_CHECKPOINT_H_
