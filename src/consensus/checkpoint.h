// Checkpoint messages and transferable checkpoint certificates ξ.
//
// Two certificate shapes exist in the paper:
//   - Lion/Dog (§5.1, §5.2): the trusted primary's single signed
//     <CHECKPOINT, n, d>_σp message IS the certificate.
//   - Peacock / PBFT / S-UpRight: a quorum of matching signed checkpoint
//     messages from the participants (2m+1 proxies / 2f+1 replicas /
//     2m+c+1 replicas respectively).
// CheckpointCert covers both: a set of matching signed messages verified
// against a required count and an authorized-signer predicate.

#ifndef SEEMORE_CONSENSUS_CHECKPOINT_H_
#define SEEMORE_CONSENSUS_CHECKPOINT_H_

#include <functional>
#include <vector>

#include "crypto/digest.h"
#include "crypto/keystore.h"
#include "util/status.h"
#include "wire/wire.h"

namespace seemore {

struct CheckpointMsg {
  uint64_t seq = 0;
  Digest state_digest;
  PrincipalId replica = 0;
  Signature sig;

  Bytes SignedPayload() const;
  void Sign(const Signer& signer);
  bool Verify(const KeyStore& keystore) const;

  void EncodeTo(Encoder& enc) const;
  static Result<CheckpointMsg> DecodeFrom(Decoder& dec);
};

class CheckpointCert {
 public:
  CheckpointCert() = default;

  /// The genesis certificate: sequence 0, no messages, always valid.
  static CheckpointCert Genesis() { return CheckpointCert(); }

  void Add(CheckpointMsg msg) { msgs_.push_back(std::move(msg)); }

  uint64_t seq() const { return msgs_.empty() ? 0 : msgs_.front().seq; }
  Digest state_digest() const {
    return msgs_.empty() ? Digest() : msgs_.front().state_digest;
  }
  bool IsGenesis() const { return msgs_.empty(); }
  const std::vector<CheckpointMsg>& msgs() const { return msgs_; }

  /// Valid iff: all messages agree on (seq, digest), every signature
  /// verifies, and at least `required` distinct signers satisfy
  /// `authorized`. A genesis cert is always valid.
  bool Verify(const KeyStore& keystore, size_t required,
              const std::function<bool(PrincipalId)>& authorized) const;

  void EncodeTo(Encoder& enc) const;
  static Result<CheckpointCert> DecodeFrom(Decoder& dec);

 private:
  std::vector<CheckpointMsg> msgs_;
};

}  // namespace seemore

#endif  // SEEMORE_CONSENSUS_CHECKPOINT_H_
