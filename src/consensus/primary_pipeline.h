// The primary/leader's proposal pipeline, shared by every protocol: request
// admission (per-client timestamp dedup), the pending-request queue, batch
// formation (up to tuning.batch_max requests per instance, BFT-SMaRt style)
// and pipeline pacing (at most tuning.pipeline_max concurrently uncommitted
// instances in flight — the knob every protocol must honour, not just
// SeeMoRe). Also owns the non-primary relay table that detects client
// retransmissions which must be forwarded to the primary (the liveness
// path behind view changes).
//
// Sequence numbers are allocated here (Open() returns the next seq with its
// batch); view changes re-seat the counter via OverrideNextSeq/AdvanceNextSeq.

#ifndef SEEMORE_CONSENSUS_PRIMARY_PIPELINE_H_
#define SEEMORE_CONSENSUS_PRIMARY_PIPELINE_H_

#include <deque>
#include <utility>

#include "consensus/batch.h"
#include "smr/command.h"
#include "util/flat_hash_map.h"

namespace seemore {

class PrimaryPipeline {
 public:
  PrimaryPipeline(int batch_max, int pipeline_max)
      : batch_max_(batch_max), pipeline_max_(pipeline_max) {}

  /// Primary-side admission: false if the client's timestamp is not newer
  /// than the last admitted one (duplicate/stale); records it otherwise.
  bool Admit(const Request& request) {
    auto it = admitted_ts_.find(request.client);
    if (it != admitted_ts_.end() && request.timestamp <= it->second) {
      return false;
    }
    admitted_ts_[request.client] = request.timestamp;
    return true;
  }

  void Enqueue(Request request) { pending_.push_back(std::move(request)); }
  bool HasPending() const { return !pending_.empty(); }
  size_t pending_requests() const { return pending_.size(); }

  /// Non-primary relay dedup: true when this direct client delivery repeats
  /// a timestamp already seen (the client timed out — relay to the primary).
  bool NoteDirectDelivery(PrincipalId client, uint64_t timestamp) {
    auto it = relayed_ts_.find(client);
    const bool retransmission =
        it != relayed_ts_.end() && it->second >= timestamp;
    relayed_ts_[client] = timestamp;
    return retransmission;
  }

  /// Pacing: a new instance may open only while fewer than pipeline_max
  /// proposed-but-uncommitted instances are in flight.
  bool CanOpen(int uncommitted) const {
    return !pending_.empty() && uncommitted < pipeline_max_;
  }

  /// Form the next batch (up to batch_max pending requests) and allocate its
  /// sequence number.
  std::pair<uint64_t, Batch> Open() {
    Batch batch;
    while (!pending_.empty() &&
           batch.size() < static_cast<size_t>(batch_max_)) {
      batch.requests.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    return {next_seq_++, std::move(batch)};
  }

  uint64_t next_seq() const { return next_seq_; }
  /// View-change install: the new primary's log position.
  void OverrideNextSeq(uint64_t next) { next_seq_ = next; }
  void AdvanceNextSeq(uint64_t at_least) {
    if (next_seq_ < at_least) next_seq_ = at_least;
  }

  /// EnterView: a view change may have nooped requests the admission table
  /// says were handled; client retransmissions must be accepted afresh (the
  /// execution engine still deduplicates anything that really committed).
  void ForgetAdmissions() { admitted_ts_.clear(); }

  int batch_max() const { return batch_max_; }
  int pipeline_max() const { return pipeline_max_; }

 private:
  const int batch_max_;
  const int pipeline_max_;
  uint64_t next_seq_ = 1;
  std::deque<Request> pending_;
  // Per-client timestamp tables: touched on every request the primary (or a
  // relay) sees, never iterated in order — flat maps, not trees.
  FlatHashMap<PrincipalId, uint64_t> admitted_ts_;  // primary-side dedup
  FlatHashMap<PrincipalId, uint64_t> relayed_ts_;   // relay retransmit detection
};

}  // namespace seemore

#endif  // SEEMORE_CONSENSUS_PRIMARY_PIPELINE_H_
