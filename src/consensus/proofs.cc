#include "consensus/proofs.h"

#include <set>

namespace seemore {

Bytes ProposalHeader(SigDomain domain, uint8_t mode, uint64_t view,
                     uint64_t seq, const Digest& digest) {
  Encoder enc;
  enc.PutU8(domain);
  enc.PutU8(mode);
  enc.PutU64(view);
  enc.PutU64(seq);
  digest.EncodeTo(enc);
  return enc.Take();
}

Bytes VoteHeader(SigDomain domain, uint8_t mode, uint64_t view, uint64_t seq,
                 const Digest& digest, PrincipalId voter) {
  Encoder enc;
  enc.PutU8(domain);
  enc.PutU8(mode);
  enc.PutU64(view);
  enc.PutU64(seq);
  digest.EncodeTo(enc);
  enc.PutU32(static_cast<uint32_t>(voter));
  return enc.Take();
}

void PreparedProof::EncodeTo(Encoder& enc) const {
  enc.Reserve(EncodedSize());
  enc.PutU8(mode);
  enc.PutU64(view);
  enc.PutU64(seq);
  digest.EncodeTo(enc);
  // Size-hinted in-place batch encode: the length prefix is computed, not
  // discovered by materializing a temporary buffer.
  enc.PutVarint(batch.EncodedSize());
  batch.EncodeTo(enc);
  primary_sig.EncodeTo(enc);
  enc.PutVarint(prepares.size());
  for (const auto& [voter, sig] : prepares) {
    enc.PutU32(static_cast<uint32_t>(voter));
    sig.EncodeTo(enc);
  }
}

size_t PreparedProof::EncodedSize() const {
  const size_t batch_size = batch.EncodedSize();
  return 1 + 8 + 8 + Digest::kSize + VarintSize(batch_size) + batch_size +
         Signature::kSize + VarintSize(prepares.size()) +
         prepares.size() * (4 + Signature::kSize);
}

Result<PreparedProof> PreparedProof::DecodeFrom(Decoder& dec) {
  PreparedProof proof;
  proof.mode = dec.GetU8();
  proof.view = dec.GetU64();
  proof.seq = dec.GetU64();
  proof.digest = Digest::DecodeFrom(dec);
  Bytes batch_bytes = dec.GetBytes();
  if (!dec.ok()) return dec.status();
  SEEMORE_ASSIGN_OR_RETURN(proof.batch, Batch::Decode(batch_bytes));
  proof.primary_sig = Signature::DecodeFrom(dec);
  const uint64_t count = dec.GetVarint();
  if (!dec.ok()) return dec.status();
  constexpr uint64_t kMaxVotes = 4096;
  if (count > kMaxVotes) return Status::Corruption("oversized prepared proof");
  for (uint64_t i = 0; i < count; ++i) {
    PrincipalId voter = static_cast<PrincipalId>(dec.GetU32());
    Signature sig = Signature::DecodeFrom(dec);
    if (!dec.ok()) return dec.status();
    proof.prepares.emplace(voter, sig);
  }
  return proof;
}

bool PreparedProof::Verify(
    const KeyStore& keystore, PrincipalId primary, size_t prepares_needed,
    const std::function<bool(PrincipalId)>& authorized) const {
  if (batch.ComputeDigest() != digest) return false;
  const Bytes proposal =
      ProposalHeader(kDomainPrePrepare, mode, view, seq, digest);
  if (!keystore.Verify(primary, proposal, primary_sig)) return false;
  std::set<PrincipalId> valid;
  for (const auto& [voter, sig] : prepares) {
    if (!authorized(voter)) return false;
    const Bytes vote =
        VoteHeader(kDomainPrepare, mode, view, seq, digest, voter);
    if (!keystore.Verify(voter, vote, sig)) return false;
    valid.insert(voter);
  }
  return valid.size() >= prepares_needed;
}

}  // namespace seemore
