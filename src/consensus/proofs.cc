#include "consensus/proofs.h"

#include <set>

namespace seemore {

namespace {

// Little-endian fixed-width writes, byte-identical to Encoder::PutU64/PutU32.
void PutU64LE(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
void PutU32LE(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

}  // namespace

HeaderBuf ProposalHeader(SigDomain domain, uint8_t mode, uint64_t view,
                         uint64_t seq, const Digest& digest) {
  HeaderBuf h;
  h.buf_[0] = static_cast<uint8_t>(domain);
  h.buf_[1] = mode;
  PutU64LE(h.buf_ + 2, view);
  PutU64LE(h.buf_ + 10, seq);
  std::memcpy(h.buf_ + 18, digest.data(), Digest::kSize);
  h.len_ = 18 + Digest::kSize;
  return h;
}

HeaderBuf VoteHeader(SigDomain domain, uint8_t mode, uint64_t view,
                     uint64_t seq, const Digest& digest, PrincipalId voter) {
  HeaderBuf h = ProposalHeader(domain, mode, view, seq, digest);
  PutU32LE(h.buf_ + h.len_, static_cast<uint32_t>(voter));
  h.len_ += 4;
  return h;
}

void PreparedProof::EncodeTo(Encoder& enc) const {
  enc.Reserve(EncodedSize());
  enc.PutU8(mode);
  enc.PutU64(view);
  enc.PutU64(seq);
  digest.EncodeTo(enc);
  // Size-hinted in-place batch encode: the length prefix is computed, not
  // discovered by materializing a temporary buffer.
  enc.PutVarint(batch.EncodedSize());
  batch.EncodeTo(enc);
  primary_sig.EncodeTo(enc);
  enc.PutVarint(prepares.size());
  for (const auto& [voter, sig] : prepares) {
    enc.PutU32(static_cast<uint32_t>(voter));
    sig.EncodeTo(enc);
  }
}

size_t PreparedProof::EncodedSize() const {
  const size_t batch_size = batch.EncodedSize();
  return 1 + 8 + 8 + Digest::kSize + VarintSize(batch_size) + batch_size +
         Signature::kSize + VarintSize(prepares.size()) +
         prepares.size() * (4 + Signature::kSize);
}

Result<PreparedProof> PreparedProof::DecodeFrom(Decoder& dec) {
  PreparedProof proof;
  proof.mode = dec.GetU8();
  proof.view = dec.GetU64();
  proof.seq = dec.GetU64();
  proof.digest = Digest::DecodeFrom(dec);
  Bytes batch_bytes = dec.GetBytes();
  if (!dec.ok()) return dec.status();
  SEEMORE_ASSIGN_OR_RETURN(proof.batch, Batch::Decode(batch_bytes));
  proof.primary_sig = Signature::DecodeFrom(dec);
  const uint64_t count = dec.GetVarint();
  if (!dec.ok()) return dec.status();
  constexpr uint64_t kMaxVotes = 4096;
  if (count > kMaxVotes) return Status::Corruption("oversized prepared proof");
  for (uint64_t i = 0; i < count; ++i) {
    PrincipalId voter = static_cast<PrincipalId>(dec.GetU32());
    Signature sig = Signature::DecodeFrom(dec);
    if (!dec.ok()) return dec.status();
    proof.prepares.emplace_back(voter, sig);
  }
  return proof;
}

bool PreparedProof::Verify(
    const KeyStore& keystore, PrincipalId primary, size_t prepares_needed,
    const std::function<bool(PrincipalId)>& authorized) const {
  if (batch.ComputeDigest() != digest) return false;
  const HeaderBuf proposal =
      ProposalHeader(kDomainPrePrepare, mode, view, seq, digest);
  if (!keystore.Verify(primary, proposal, primary_sig)) return false;
  std::set<PrincipalId> valid;
  for (const auto& [voter, sig] : prepares) {
    if (!authorized(voter)) return false;
    const HeaderBuf vote =
        VoteHeader(kDomainPrepare, mode, view, seq, digest, voter);
    if (!keystore.Verify(voter, vote, sig)) return false;
    valid.insert(voter);
  }
  return valid.size() >= prepares_needed;
}

}  // namespace seemore
