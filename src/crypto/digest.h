// 32-byte message digest value type, D(µ) in the paper's notation.

#ifndef SEEMORE_CRYPTO_DIGEST_H_
#define SEEMORE_CRYPTO_DIGEST_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "wire/wire.h"

namespace seemore {

class Digest {
 public:
  static constexpr size_t kSize = Sha256::kDigestSize;

  Digest() { bytes_.fill(0); }
  explicit Digest(const std::array<uint8_t, kSize>& bytes) : bytes_(bytes) {}

  /// D(µ): SHA-256 of the message bytes.
  static Digest Of(const uint8_t* data, size_t len) {
    return Digest(Sha256::Hash(data, len));
  }
  static Digest Of(const std::vector<uint8_t>& data) {
    return Of(data.data(), data.size());
  }
  static Digest Of(const std::string& data) {
    return Of(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }

  const std::array<uint8_t, kSize>& bytes() const { return bytes_; }
  uint8_t* data() { return bytes_.data(); }
  const uint8_t* data() const { return bytes_.data(); }

  bool IsZero() const {
    for (uint8_t b : bytes_) {
      if (b != 0) return false;
    }
    return true;
  }

  /// First 8 hex characters, for logs.
  std::string ShortHex() const;
  std::string ToHex() const;

  void EncodeTo(Encoder& enc) const { enc.PutRaw(bytes_.data(), kSize); }
  static Digest DecodeFrom(Decoder& dec) {
    Digest d;
    dec.GetRawInto(d.bytes_.data(), kSize);
    return d;
  }

  friend bool operator==(const Digest& a, const Digest& b) {
    return a.bytes_ == b.bytes_;
  }
  friend bool operator!=(const Digest& a, const Digest& b) {
    return !(a == b);
  }
  friend bool operator<(const Digest& a, const Digest& b) {
    return std::memcmp(a.bytes_.data(), b.bytes_.data(), kSize) < 0;
  }

  struct Hasher {
    size_t operator()(const Digest& d) const {
      size_t h;
      std::memcpy(&h, d.bytes_.data(), sizeof(h));
      return h;
    }
  };

 private:
  std::array<uint8_t, kSize> bytes_;
};

}  // namespace seemore

#endif  // SEEMORE_CRYPTO_DIGEST_H_
