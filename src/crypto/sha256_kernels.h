// Internal interface between the SHA-256 front end (sha256.cc) and the
// SIMD block-compression kernels (sha256_simd.cc). Not for use outside
// src/crypto/ — the public surface is Sha256 in sha256.h.

#ifndef SEEMORE_CRYPTO_SHA256_KERNELS_H_
#define SEEMORE_CRYPTO_SHA256_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace seemore {
namespace sha256_internal {

/// Compress `nblocks` consecutive 64-byte blocks into `state`. Kernels are
/// pure functions of (state, data): no allocation, no globals, so every
/// implementation is interchangeable mid-stream.
using BlockFn = void (*)(uint32_t state[8], const uint8_t* data,
                         size_t nblocks);

/// Round constants (FIPS 180-4 §4.2.2), shared by all kernels.
extern const uint32_t kK[64];

/// The portable C++ kernel — always available.
void ProcessBlocksPortable(uint32_t state[8], const uint8_t* data,
                           size_t nblocks);

/// SHA-NI kernel, or nullptr when the build target or running CPU lacks
/// the SHA extensions.
BlockFn ShaNiBlockFn();

/// SSE/AVX2 vectorized-message-schedule kernel, or nullptr when
/// unsupported.
BlockFn Avx2BlockFn();

}  // namespace sha256_internal
}  // namespace seemore

#endif  // SEEMORE_CRYPTO_SHA256_KERNELS_H_
