// HMAC-SHA256 (RFC 2104), built on the local SHA-256. Used both for
// pairwise channel MACs and as the primitive behind the simulated signature
// scheme (see keystore.h). Verified against RFC 4231 vectors in tests.
//
// Re-keying is the hot cost in the replica receive path (every signature
// verify is an HMAC), so the key expansion is exposed as a reusable
// HmacKeySchedule: the SHA-256 chaining states after the ipad and opad
// blocks. One schedule costs two block compressions to build; every MAC
// computed from it skips both, which for the short headers the protocols
// sign roughly halves the compression count per signature.

#ifndef SEEMORE_CRYPTO_HMAC_SHA256_H_
#define SEEMORE_CRYPTO_HMAC_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.h"

namespace seemore {

class HmacSha256;

/// Precomputed HMAC key expansion (mid-states after the ipad/opad blocks).
/// Immutable once built; cheap to copy (96 bytes).
class HmacKeySchedule {
 public:
  HmacKeySchedule() = default;

  /// Expand `key` (any length; keys longer than the block size are hashed
  /// first, per RFC 2104).
  HmacKeySchedule(const uint8_t* key, size_t key_len);
  explicit HmacKeySchedule(const std::vector<uint8_t>& key)
      : HmacKeySchedule(key.data(), key.size()) {}

 private:
  friend class HmacSha256;
  Sha256::MidState inner_{};
  Sha256::MidState outer_{};
};

class HmacSha256 {
 public:
  static constexpr size_t kTagSize = Sha256::kDigestSize;

  /// Begin a MAC computation keyed with `key` (expands the key on the spot;
  /// use an HmacKeySchedule when the key is reused).
  HmacSha256(const uint8_t* key, size_t key_len)
      : HmacSha256(HmacKeySchedule(key, key_len)) {}
  explicit HmacSha256(const std::vector<uint8_t>& key)
      : HmacSha256(key.data(), key.size()) {}

  /// Begin a MAC computation from a precomputed key schedule.
  explicit HmacSha256(const HmacKeySchedule& schedule);

  void Update(const uint8_t* data, size_t len) { inner_.Update(data, len); }
  void Update(const std::vector<uint8_t>& data) {
    inner_.Update(data.data(), data.size());
  }

  void Final(uint8_t out[kTagSize]);

  /// One-shot convenience.
  static std::array<uint8_t, kTagSize> Mac(const uint8_t* key, size_t key_len,
                                           const uint8_t* data, size_t len);
  static std::array<uint8_t, kTagSize> Mac(const std::vector<uint8_t>& key,
                                           const std::vector<uint8_t>& data) {
    return Mac(key.data(), key.size(), data.data(), data.size());
  }
  static std::array<uint8_t, kTagSize> Mac(const HmacKeySchedule& schedule,
                                           const uint8_t* data, size_t len);

  /// Constant-time tag comparison.
  static bool Equal(const uint8_t* a, const uint8_t* b, size_t len);

 private:
  Sha256 inner_;
  Sha256::MidState outer_;
};

}  // namespace seemore

#endif  // SEEMORE_CRYPTO_HMAC_SHA256_H_
