// HMAC-SHA256 (RFC 2104), built on the local SHA-256. Used both for
// pairwise channel MACs and as the primitive behind the simulated signature
// scheme (see keystore.h). Verified against RFC 4231 vectors in tests.

#ifndef SEEMORE_CRYPTO_HMAC_SHA256_H_
#define SEEMORE_CRYPTO_HMAC_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.h"

namespace seemore {

class HmacSha256 {
 public:
  static constexpr size_t kTagSize = Sha256::kDigestSize;

  /// Begin a MAC computation keyed with `key` (any length; keys longer than
  /// the block size are hashed first, per RFC 2104).
  HmacSha256(const uint8_t* key, size_t key_len);
  explicit HmacSha256(const std::vector<uint8_t>& key)
      : HmacSha256(key.data(), key.size()) {}

  void Update(const uint8_t* data, size_t len) { inner_.Update(data, len); }
  void Update(const std::vector<uint8_t>& data) {
    inner_.Update(data.data(), data.size());
  }

  void Final(uint8_t out[kTagSize]);

  /// One-shot convenience.
  static std::array<uint8_t, kTagSize> Mac(const uint8_t* key, size_t key_len,
                                           const uint8_t* data, size_t len);
  static std::array<uint8_t, kTagSize> Mac(const std::vector<uint8_t>& key,
                                           const std::vector<uint8_t>& data) {
    return Mac(key.data(), key.size(), data.data(), data.size());
  }

  /// Constant-time tag comparison.
  static bool Equal(const uint8_t* a, const uint8_t* b, size_t len);

 private:
  Sha256 inner_;
  uint8_t opad_key_[Sha256::kBlockSize];
};

}  // namespace seemore

#endif  // SEEMORE_CRYPTO_HMAC_SHA256_H_
