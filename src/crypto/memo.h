// Per-run digest / signature-verification memo keyed on payload identity.
//
// A multicast delivers the *same* immutable buffer (wire/payload.h) to n
// receivers, and each receiver re-derives the same facts from it: the
// SHA-256 digest of an embedded batch, whether the proposer's signature
// checks out, whether the requests inside the batch carry valid client
// signatures. Those are pure functions of immutable bytes, so the first
// receiver computes them for real and everyone else reuses the answer.
//
// The charge-vs-compute contract (DESIGN.md §"Engine internals"): the memo
// only elides *host* CPU work. Every caller still charges the full
// simulated cost (ChargeHash / ChargeVerify) before consulting the memo, so
// simulated time, Stats and seeded runs are bit-identical with the memo on,
// off, hitting or missing. A memo entry may only be keyed by a nonzero
// buffer id, because (id, offset, length) names immutable bytes for the
// whole process; id 0 (plain, unshared bytes) always computes for real.
//
// Ownership (DESIGN.md §"Concurrency model"): one CryptoMemo per run,
// owned by the Cluster and threaded to its replicas and their decoders.
// There is deliberately NO process-wide instance: a memo is single-threaded
// like the simulator it serves, and giving each concurrently-executing run
// its own table is what lets scenario::RunMany fan runs out across cores
// with no locks on the crypto hot path. Payload ids stay process-unique
// (an atomic counter), so per-run tables are simply disjoint key spaces.
// Both tables are bounded: they are pure caches, so wholesale eviction is
// always correct.

#ifndef SEEMORE_CRYPTO_MEMO_H_
#define SEEMORE_CRYPTO_MEMO_H_

#include <cstdint>

#include "crypto/digest.h"
#include "crypto/keystore.h"
#include "util/flat_hash_map.h"

namespace seemore {

class CryptoMemo {
 public:
  CryptoMemo() = default;

  CryptoMemo(const CryptoMemo&) = delete;
  CryptoMemo& operator=(const CryptoMemo&) = delete;

  /// Digest of `len` bytes at `data`. PRECONDITION (caller's
  /// responsibility, not checked here): the bytes are the verbatim subrange
  /// [offset, offset+len) of the immutable buffer `buffer_id` — pass 0 when
  /// that cannot be guaranteed (e.g. bytes re-decoded from a nested copy),
  /// which computes without caching.
  Digest DigestOf(uint64_t buffer_id, size_t offset, const uint8_t* data,
                  size_t len);
  Digest DigestOf(uint64_t buffer_id, size_t offset, const Bytes& bytes) {
    return DigestOf(buffer_id, offset, bytes.data(), bytes.size());
  }

  /// One span of a frame for batched digesting: `data` must point at the
  /// verbatim subrange [offset, offset+len) of the buffer (same
  /// precondition as DigestOf).
  struct DigestSpan {
    size_t offset;
    const uint8_t* data;
    size_t len;
  };

  /// Batched digests: resolve all `n` spans of one frame in a single pass,
  /// computing only the ones no receiver has digested yet. Equivalent to n
  /// DigestOf calls; exists so multi-field frames (a proposal's batch plus
  /// the per-entry batches of a view-change certificate) are handled as one
  /// memo transaction per receiver rather than per-field re-entry.
  void DigestOfMany(uint64_t buffer_id, const DigestSpan* spans, size_t n,
                    Digest* out);

  /// Memoized signature verification: returns `verify()` for the first
  /// caller and the cached boolean afterwards. `signer` and `slot`
  /// disambiguate the (possibly several) signatures checked against one
  /// frame; callers must derive both purely from the frame contents so
  /// every receiver asks the same question. buffer_id 0 always verifies.
  /// Templated so hot-path call sites pass bare lambdas with no
  /// std::function allocation.
  template <typename F>
  bool Verify(uint64_t buffer_id, PrincipalId signer, uint32_t slot,
              F&& verify) {
    if (buffer_id == 0) return verify();
    const VerifyKey key{
        buffer_id,
        (static_cast<uint64_t>(static_cast<uint32_t>(signer)) << 32) | slot};
    if (const bool* cached = FindVerdict(key)) return *cached;
    return StoreVerdict(key, verify());
  }

  /// Cache-effectiveness counters (benchmarks and tests).
  uint64_t digest_hits() const { return digest_hits_; }
  uint64_t digest_misses() const { return digest_misses_; }
  uint64_t verify_hits() const { return verify_hits_; }
  uint64_t verify_misses() const { return verify_misses_; }

  void Clear();

 private:
  struct DigestKey {
    uint64_t buffer_id;
    uint64_t offset;
    uint64_t len;
    bool operator==(const DigestKey& o) const {
      return buffer_id == o.buffer_id && offset == o.offset && len == o.len;
    }
  };
  struct DigestKeyHash {
    size_t operator()(const DigestKey& k) const {
      uint64_t h = k.buffer_id * 0x9e3779b97f4a7c15ull;
      h ^= (k.offset + 0x100) * 0xff51afd7ed558ccdull;
      h ^= (k.len + 0x10000) * 0xc4ceb9fe1a85ec53ull;
      return static_cast<size_t>(h ^ (h >> 33));
    }
  };
  struct VerifyKey {
    uint64_t buffer_id;
    uint64_t signer_slot;  // (signer << 32) | slot
    bool operator==(const VerifyKey& o) const {
      return buffer_id == o.buffer_id && signer_slot == o.signer_slot;
    }
  };
  struct VerifyKeyHash {
    size_t operator()(const VerifyKey& k) const {
      uint64_t h = k.buffer_id * 0x9e3779b97f4a7c15ull;
      h ^= k.signer_slot * 0xff51afd7ed558ccdull;
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };

  /// Cached verdict for `key`, or nullptr on miss (counts the hit/miss).
  const bool* FindVerdict(const VerifyKey& key);
  /// Insert and return `verdict` (evicting wholesale when full).
  bool StoreVerdict(const VerifyKey& key, bool verdict);

  // Old buffer ids are never reissued, so stale entries are merely dead
  // weight; dropping everything when full is correct and keeps the worst
  // case O(1) amortized.
  static constexpr size_t kMaxEntries = 1 << 15;

  // Open-addressing tables (util/flat_hash_map.h): the memo is consulted
  // per received frame, so lookup cost matters more than anything else.
  FlatHashMap<DigestKey, Digest, DigestKeyHash> digests_;
  FlatHashMap<VerifyKey, bool, VerifyKeyHash> verdicts_;
  uint64_t digest_hits_ = 0;
  uint64_t digest_misses_ = 0;
  uint64_t verify_hits_ = 0;
  uint64_t verify_misses_ = 0;
};

}  // namespace seemore

#endif  // SEEMORE_CRYPTO_MEMO_H_
