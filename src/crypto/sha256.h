// SHA-256 (FIPS 180-4), implemented from scratch so the repository has no
// external crypto dependency. Incremental (Init/Update/Final) and one-shot
// interfaces. Verified against the NIST test vectors in the test suite.

#ifndef SEEMORE_CRYPTO_SHA256_H_
#define SEEMORE_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace seemore {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256() { Reset(); }

  /// Restart the hash computation.
  void Reset();

  /// Absorb `len` bytes.
  void Update(const uint8_t* data, size_t len);
  void Update(const std::vector<uint8_t>& data) {
    Update(data.data(), data.size());
  }
  void Update(const std::string& data) {
    Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }

  /// Finish and write the 32-byte digest. The object must be Reset() before
  /// reuse.
  void Final(uint8_t out[kDigestSize]);

  /// One-shot convenience.
  static std::array<uint8_t, kDigestSize> Hash(const uint8_t* data, size_t len);
  static std::array<uint8_t, kDigestSize> Hash(const std::vector<uint8_t>& d) {
    return Hash(d.data(), d.size());
  }
  static std::array<uint8_t, kDigestSize> Hash(const std::string& s) {
    return Hash(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

 private:
  void ProcessBlock(const uint8_t block[kBlockSize]);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_;
};

}  // namespace seemore

#endif  // SEEMORE_CRYPTO_SHA256_H_
