// SHA-256 (FIPS 180-4), implemented from scratch so the repository has no
// external crypto dependency. Incremental (Init/Update/Final) and one-shot
// interfaces. Verified against the NIST test vectors in the test suite.
//
// The block compression runs through a runtime-dispatched kernel: SHA-NI
// (x86 SHA extensions) when the CPU has them, an SSE/AVX2 vectorized message
// schedule otherwise, and the portable C++ as the universal fallback. All
// three produce identical digests (tests cross-check them on every input
// length class), so dispatch can never perturb the fixed-seed goldens — it
// only changes host CPU time, never simulated cost or wire bytes.

#ifndef SEEMORE_CRYPTO_SHA256_H_
#define SEEMORE_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace seemore {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  /// Which block-compression kernel is in use (see file comment).
  enum class Impl : uint8_t { kPortable = 0, kAvx2 = 1, kShaNi = 2 };

  /// The kernel currently selected (auto-detected at first use, or the one
  /// last forced via ForceImpl).
  static Impl ActiveImpl();

  /// True if this build + CPU can run the given kernel.
  static bool ImplSupported(Impl impl);

  /// Test hook: pin the dispatcher to one kernel so tests can cross-check
  /// the SIMD paths against the portable one. Returns false (and changes
  /// nothing) if the kernel is unsupported here. Not synchronized — call
  /// only from single-threaded test setup, and ResetImpl() when done.
  static bool ForceImpl(Impl impl);

  /// Undo ForceImpl: back to the best auto-detected kernel.
  static void ResetImpl();

  /// Chaining-state snapshot at a block boundary. Lets a keyed hash
  /// precompute the state after a fixed prefix (the HMAC ipad/opad blocks)
  /// once and restart from it per message instead of re-hashing the prefix
  /// every time.
  struct MidState {
    uint32_t h[8];
    uint64_t bit_count;
  };

  Sha256() { Reset(); }

  /// Restart the hash computation.
  void Reset();

  /// Capture the chaining state. Only valid when a whole number of blocks
  /// has been absorbed (no buffered partial block).
  MidState Save() const;

  /// Resume from a previously captured state, discarding current progress.
  void Restore(const MidState& s);

  /// Absorb `len` bytes.
  void Update(const uint8_t* data, size_t len);
  void Update(const std::vector<uint8_t>& data) {
    Update(data.data(), data.size());
  }
  void Update(const std::string& data) {
    Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }

  /// Finish and write the 32-byte digest. The object must be Reset() before
  /// reuse.
  void Final(uint8_t out[kDigestSize]);

  /// One-shot convenience.
  static std::array<uint8_t, kDigestSize> Hash(const uint8_t* data, size_t len);
  static std::array<uint8_t, kDigestSize> Hash(const std::vector<uint8_t>& d) {
    return Hash(d.data(), d.size());
  }
  static std::array<uint8_t, kDigestSize> Hash(const std::string& s) {
    return Hash(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

 private:
  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_;
};

}  // namespace seemore

#endif  // SEEMORE_CRYPTO_SHA256_H_
