#include "crypto/sha256.h"

#include "crypto/sha256_kernels.h"

namespace seemore {

namespace sha256_internal {

// First 32 bits of the fractional parts of the cube roots of the first 64
// primes (FIPS 180-4 §4.2.2).
const uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

namespace {

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }
inline uint32_t Ch(uint32_t x, uint32_t y, uint32_t z) {
  return (x & y) ^ (~x & z);
}
inline uint32_t Maj(uint32_t x, uint32_t y, uint32_t z) {
  return (x & y) ^ (x & z) ^ (y & z);
}
inline uint32_t BigSigma0(uint32_t x) {
  return Rotr(x, 2) ^ Rotr(x, 13) ^ Rotr(x, 22);
}
inline uint32_t BigSigma1(uint32_t x) {
  return Rotr(x, 6) ^ Rotr(x, 11) ^ Rotr(x, 25);
}
inline uint32_t SmallSigma0(uint32_t x) {
  return Rotr(x, 7) ^ Rotr(x, 18) ^ (x >> 3);
}
inline uint32_t SmallSigma1(uint32_t x) {
  return Rotr(x, 17) ^ Rotr(x, 19) ^ (x >> 10);
}

}  // namespace

void ProcessBlocksPortable(uint32_t state[8], const uint8_t* data,
                           size_t nblocks) {
  for (; nblocks > 0; --nblocks, data += Sha256::kBlockSize) {
    uint32_t w[64];
    for (int t = 0; t < 16; ++t) {
      w[t] = static_cast<uint32_t>(data[t * 4]) << 24 |
             static_cast<uint32_t>(data[t * 4 + 1]) << 16 |
             static_cast<uint32_t>(data[t * 4 + 2]) << 8 |
             static_cast<uint32_t>(data[t * 4 + 3]);
    }
    for (int t = 16; t < 64; ++t) {
      w[t] =
          SmallSigma1(w[t - 2]) + w[t - 7] + SmallSigma0(w[t - 15]) + w[t - 16];
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int t = 0; t < 64; ++t) {
      uint32_t t1 = h + BigSigma1(e) + Ch(e, f, g) + kK[t] + w[t];
      uint32_t t2 = BigSigma0(a) + Maj(a, b, c);
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

}  // namespace sha256_internal

namespace {

using sha256_internal::BlockFn;

BlockFn KernelFor(Sha256::Impl impl) {
  switch (impl) {
    case Sha256::Impl::kShaNi:
      return sha256_internal::ShaNiBlockFn();
    case Sha256::Impl::kAvx2:
      return sha256_internal::Avx2BlockFn();
    case Sha256::Impl::kPortable:
      return &sha256_internal::ProcessBlocksPortable;
  }
  return nullptr;
}

Sha256::Impl DetectBestImpl() {
  if (sha256_internal::ShaNiBlockFn() != nullptr) return Sha256::Impl::kShaNi;
  if (sha256_internal::Avx2BlockFn() != nullptr) return Sha256::Impl::kAvx2;
  return Sha256::Impl::kPortable;
}

// The selected kernel. Resolved once on first use (thread-safe magic
// static); ForceImpl/ResetImpl rebind it from single-threaded tests only.
struct Dispatch {
  Sha256::Impl impl;
  BlockFn fn;
};

Dispatch& ActiveDispatch() {
  static Dispatch d = {DetectBestImpl(), KernelFor(DetectBestImpl())};
  return d;
}

}  // namespace

Sha256::Impl Sha256::ActiveImpl() { return ActiveDispatch().impl; }

bool Sha256::ImplSupported(Impl impl) { return KernelFor(impl) != nullptr; }

bool Sha256::ForceImpl(Impl impl) {
  BlockFn fn = KernelFor(impl);
  if (fn == nullptr) return false;
  ActiveDispatch() = {impl, fn};
  return true;
}

void Sha256::ResetImpl() {
  ActiveDispatch() = {DetectBestImpl(), KernelFor(DetectBestImpl())};
}

void Sha256::Reset() {
  // Square-root constants (FIPS 180-4 §5.3.3).
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  bit_count_ = 0;
  buffer_len_ = 0;
}

Sha256::MidState Sha256::Save() const {
  MidState s;
  std::memcpy(s.h, state_, sizeof(state_));
  s.bit_count = bit_count_;
  return s;
}

void Sha256::Restore(const MidState& s) {
  std::memcpy(state_, s.h, sizeof(state_));
  bit_count_ = s.bit_count;
  buffer_len_ = 0;
}

void Sha256::Update(const uint8_t* data, size_t len) {
  BlockFn blocks = ActiveDispatch().fn;
  bit_count_ += static_cast<uint64_t>(len) * 8;

  // Drain a partially filled buffer first.
  if (buffer_len_ > 0) {
    size_t take = kBlockSize - buffer_len_;
    if (take > len) take = len;
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ < kBlockSize) return;
    blocks(state_, buffer_, 1);
    buffer_len_ = 0;
  }

  // Hash all whole blocks straight from the input in one kernel call —
  // multi-block messages (batches, snapshots) pay the dispatch and loop
  // overhead once, not per block.
  size_t nblocks = len / kBlockSize;
  if (nblocks > 0) {
    blocks(state_, data, nblocks);
    data += nblocks * kBlockSize;
    len -= nblocks * kBlockSize;
  }

  if (len > 0) {
    std::memcpy(buffer_, data, len);
    buffer_len_ = len;
  }
}

void Sha256::Final(uint8_t out[kDigestSize]) {
  // Padding: 0x80, zeros, then the 64-bit big-endian bit count. At most two
  // blocks, assembled in full and compressed with one kernel call.
  uint8_t final_blocks[kBlockSize * 2];
  std::memcpy(final_blocks, buffer_, buffer_len_);
  size_t pad_len = buffer_len_;
  final_blocks[pad_len++] = 0x80;
  size_t total = (pad_len + 8 > kBlockSize) ? kBlockSize * 2 : kBlockSize;
  std::memset(final_blocks + pad_len, 0, total - 8 - pad_len);
  uint64_t bits = bit_count_;
  for (int i = 0; i < 8; ++i) {
    final_blocks[total - 1 - i] = static_cast<uint8_t>(bits >> (8 * i));
  }
  ActiveDispatch().fn(state_, final_blocks, total / kBlockSize);
  buffer_len_ = 0;

  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
}

std::array<uint8_t, Sha256::kDigestSize> Sha256::Hash(const uint8_t* data,
                                                      size_t len) {
  Sha256 h;
  h.Update(data, len);
  std::array<uint8_t, kDigestSize> out;
  h.Final(out.data());
  return out;
}

}  // namespace seemore
