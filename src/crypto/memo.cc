#include "crypto/memo.h"

namespace seemore {

Digest CryptoMemo::DigestOf(uint64_t buffer_id, size_t offset,
                            const uint8_t* data, size_t len) {
  if (buffer_id == 0) return Digest::Of(data, len);
  const DigestKey key{buffer_id, offset, len};
  auto it = digests_.find(key);
  if (it != digests_.end()) {
    ++digest_hits_;
    return it->second;
  }
  ++digest_misses_;
  Digest digest = Digest::Of(data, len);
  if (digests_.size() >= kMaxEntries) digests_.clear();
  digests_.emplace(key, digest);
  return digest;
}

void CryptoMemo::DigestOfMany(uint64_t buffer_id, const DigestSpan* spans,
                              size_t n, Digest* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = DigestOf(buffer_id, spans[i].offset, spans[i].data, spans[i].len);
  }
}

const bool* CryptoMemo::FindVerdict(const VerifyKey& key) {
  auto it = verdicts_.find(key);
  if (it != verdicts_.end()) {
    ++verify_hits_;
    return &it->second;
  }
  ++verify_misses_;
  return nullptr;
}

bool CryptoMemo::StoreVerdict(const VerifyKey& key, bool verdict) {
  if (verdicts_.size() >= kMaxEntries) verdicts_.clear();
  verdicts_.emplace(key, verdict);
  return verdict;
}

void CryptoMemo::Clear() {
  digests_.clear();
  verdicts_.clear();
  digest_hits_ = digest_misses_ = verify_hits_ = verify_misses_ = 0;
}

}  // namespace seemore
