#include "crypto/keystore.h"

namespace seemore {

KeyStore::KeyStore(uint64_t master_seed) {
  master_.resize(8);
  for (int i = 0; i < 8; ++i) {
    master_[i] = static_cast<uint8_t>(master_seed >> (8 * i));
  }
}

std::vector<uint8_t> KeyStore::DeriveKey(PrincipalId id) const {
  uint8_t id_bytes[4];
  for (int i = 0; i < 4; ++i) {
    id_bytes[i] = static_cast<uint8_t>(static_cast<uint32_t>(id) >> (8 * i));
  }
  auto tag = HmacSha256::Mac(master_.data(), master_.size(), id_bytes,
                             sizeof(id_bytes));
  return std::vector<uint8_t>(tag.begin(), tag.end());
}

const HmacKeySchedule& KeyStore::ScheduleFor(PrincipalId id) const {
  auto it = schedules_.find(id);
  if (it == schedules_.end()) {
    it = schedules_.emplace(id, HmacKeySchedule(DeriveKey(id))).first;
  }
  return it->second;
}

bool KeyStore::Verify(PrincipalId signer, const uint8_t* msg, size_t len,
                      const Signature& sig) const {
  auto expected = HmacSha256::Mac(ScheduleFor(signer), msg, len);
  return HmacSha256::Equal(expected.data(), sig.data(), Signature::kSize);
}

}  // namespace seemore
