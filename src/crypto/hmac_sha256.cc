#include "crypto/hmac_sha256.h"

#include <cstring>

namespace seemore {

HmacKeySchedule::HmacKeySchedule(const uint8_t* key, size_t key_len) {
  uint8_t k0[Sha256::kBlockSize];
  std::memset(k0, 0, sizeof(k0));
  if (key_len > Sha256::kBlockSize) {
    auto hashed = Sha256::Hash(key, key_len);
    std::memcpy(k0, hashed.data(), hashed.size());
  } else {
    std::memcpy(k0, key, key_len);
  }

  uint8_t pad[Sha256::kBlockSize];
  Sha256 h;
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) pad[i] = k0[i] ^ 0x36;
  h.Update(pad, sizeof(pad));
  inner_ = h.Save();
  h.Reset();
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) pad[i] = k0[i] ^ 0x5c;
  h.Update(pad, sizeof(pad));
  outer_ = h.Save();
}

HmacSha256::HmacSha256(const HmacKeySchedule& schedule)
    : outer_(schedule.outer_) {
  inner_.Restore(schedule.inner_);
}

void HmacSha256::Final(uint8_t out[kTagSize]) {
  uint8_t inner_digest[Sha256::kDigestSize];
  inner_.Final(inner_digest);
  Sha256 outer;
  outer.Restore(outer_);
  outer.Update(inner_digest, sizeof(inner_digest));
  outer.Final(out);
}

std::array<uint8_t, HmacSha256::kTagSize> HmacSha256::Mac(const uint8_t* key,
                                                          size_t key_len,
                                                          const uint8_t* data,
                                                          size_t len) {
  HmacSha256 mac(key, key_len);
  mac.Update(data, len);
  std::array<uint8_t, kTagSize> out;
  mac.Final(out.data());
  return out;
}

std::array<uint8_t, HmacSha256::kTagSize> HmacSha256::Mac(
    const HmacKeySchedule& schedule, const uint8_t* data, size_t len) {
  HmacSha256 mac(schedule);
  mac.Update(data, len);
  std::array<uint8_t, kTagSize> out;
  mac.Final(out.data());
  return out;
}

bool HmacSha256::Equal(const uint8_t* a, const uint8_t* b, size_t len) {
  uint8_t diff = 0;
  for (size_t i = 0; i < len; ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace seemore
