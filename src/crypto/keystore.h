// Simulated digital-signature scheme.
//
// The paper assumes standard PKI: every machine holds the public keys of all
// other machines, and "the adversary cannot produce a valid signature of a
// non-faulty node" (§3.1). In a real deployment this would be Ed25519/ECDSA.
// Here we substitute an HMAC-based scheme mediated by a KeyStore:
//
//   key_p   = HMAC(master_seed, p)          -- per-principal secret
//   Sign    = HMAC(key_p, message)
//   Verify  = recompute and compare
//
// The trust model is preserved because each node only ever receives a Signer
// handle for its *own* principal id; the KeyStore (verification oracle) plays
// the role of the public-key directory. Byzantine replica implementations in
// this repo deviate in protocol logic but cannot mint other nodes'
// signatures, exactly matching the paper's adversary. The CPU cost of
// public-key sign/verify is charged separately by the network cost model
// (src/net/cost_model.h) so performance experiments still reflect
// asymmetric-crypto prices.

#ifndef SEEMORE_CRYPTO_KEYSTORE_H_
#define SEEMORE_CRYPTO_KEYSTORE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/hmac_sha256.h"
#include "wire/wire.h"

namespace seemore {

/// Identifies a replica (0..N-1) or a client (>= kClientIdBase).
using PrincipalId = int32_t;

/// Client principal ids start here so replica ids stay small and dense.
inline constexpr PrincipalId kClientIdBase = 1 << 20;

inline bool IsClientPrincipal(PrincipalId id) { return id >= kClientIdBase; }

/// Fixed-size signature value type.
class Signature {
 public:
  static constexpr size_t kSize = HmacSha256::kTagSize;

  Signature() { bytes_.fill(0); }
  explicit Signature(const std::array<uint8_t, kSize>& bytes)
      : bytes_(bytes) {}

  const std::array<uint8_t, kSize>& bytes() const { return bytes_; }
  uint8_t* data() { return bytes_.data(); }
  const uint8_t* data() const { return bytes_.data(); }

  void EncodeTo(Encoder& enc) const { enc.PutRaw(bytes_.data(), kSize); }
  static Signature DecodeFrom(Decoder& dec) {
    Signature s;
    dec.GetRawInto(s.bytes_.data(), kSize);
    return s;
  }

  friend bool operator==(const Signature& a, const Signature& b) {
    return HmacSha256::Equal(a.bytes_.data(), b.bytes_.data(), kSize);
  }

 private:
  std::array<uint8_t, kSize> bytes_;
};

/// Verification oracle shared by every node (stands in for the public-key
/// directory). Verify memoizes per-principal HMAC key schedules, so the
/// store is NOT thread-safe — but each run (Cluster) owns its own KeyStore
/// and runs on one thread (the parallel scenario engine builds one cluster
/// per worker), so no synchronization is needed.
class KeyStore {
 public:
  explicit KeyStore(uint64_t master_seed);

  /// Verify that `sig` is principal `signer`'s signature over `msg`.
  bool Verify(PrincipalId signer, const uint8_t* msg, size_t len,
              const Signature& sig) const;
  /// Span-like overload: Bytes, or a stack-built HeaderBuf (consensus/
  /// proofs.h) — anything exposing contiguous data()/size().
  template <typename B>
  bool Verify(PrincipalId signer, const B& msg, const Signature& sig) const {
    return Verify(signer, msg.data(), msg.size(), sig);
  }

  /// Derive the secret key for a principal. Only the Signer factory below
  /// should call this; protocol code never touches raw keys.
  std::vector<uint8_t> DeriveKey(PrincipalId id) const;

 private:
  /// The cached HMAC key schedule for a principal (key derivation plus pad
  /// expansion run once per principal per run, not once per Verify).
  const HmacKeySchedule& ScheduleFor(PrincipalId id) const;

  std::vector<uint8_t> master_;
  mutable std::unordered_map<PrincipalId, HmacKeySchedule> schedules_;
};

/// Per-principal signing handle. A node owns exactly one; the key schedule
/// is expanded once at construction and reused for every signature.
class Signer {
 public:
  Signer(PrincipalId id, const KeyStore& store)
      : id_(id), schedule_(store.DeriveKey(id)) {}

  PrincipalId id() const { return id_; }

  Signature Sign(const uint8_t* msg, size_t len) const {
    return Signature(HmacSha256::Mac(schedule_, msg, len));
  }
  /// Span-like overload (Bytes or a stack-built HeaderBuf).
  template <typename B>
  Signature Sign(const B& msg) const {
    return Sign(msg.data(), msg.size());
  }

 private:
  PrincipalId id_;
  HmacKeySchedule schedule_;
};

}  // namespace seemore

#endif  // SEEMORE_CRYPTO_KEYSTORE_H_
