// SIMD SHA-256 block-compression kernels (x86-64).
//
// Two kernels, both bit-identical to the portable one in sha256.cc:
//   - SHA-NI: the x86 SHA extensions do four rounds per _mm_sha256rnds2
//     instruction, with the message schedule built by sha256msg1/msg2.
//     Register layout follows the canonical ABEF/CDGH split the
//     instructions expect.
//   - AVX2: the 48 message-schedule words are computed four at a time with
//     vector σ0/σ1; the round function itself stays scalar. The schedule
//     recurrence W[t] needs W[t-2], so each group of four is produced in
//     two halves: the low pair from already-known words, the high pair
//     from the low pair just computed.
//
// Both are compiled with per-function target attributes so the rest of the
// binary stays baseline-ISA; runtime CPUID (via __builtin_cpu_supports)
// decides what actually runs. On non-x86 builds the lookups return nullptr
// and sha256.cc falls back to the portable kernel.

#include "crypto/sha256_kernels.h"

#include "crypto/sha256.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SEEMORE_SHA256_X86 1
#endif

namespace seemore {
namespace sha256_internal {

#ifdef SEEMORE_SHA256_X86

namespace {

// ---------------------------------------------------------------------------
// SHA-NI kernel.
// ---------------------------------------------------------------------------

// Four rounds: add the round constants for rounds [4k, 4k+4) to the
// scheduled words in `msg_words`, then two sha256rnds2 (each does two
// rounds; the high half of the constant-added words is fed via shuffle).
#define SHANI_QROUNDS(msg_words, k)                                   \
  do {                                                                \
    __m128i wk_ = _mm_add_epi32(                                      \
        (msg_words),                                                  \
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(kK + 4 * (k)))); \
    state1 = _mm_sha256rnds2_epu32(state1, state0, wk_);              \
    wk_ = _mm_shuffle_epi32(wk_, 0x0E);                               \
    state0 = _mm_sha256rnds2_epu32(state0, state1, wk_);              \
  } while (0)

// Schedule update shared by rounds 12..51: after the rounds on `mi`,
// fold mi into the next group (`mj`, via msg2 and the alignr carry from
// `ml`) and start the one after (`ml`, via msg1).
#define SHANI_QROUNDS_SCHED(mi, mj, ml, k)            \
  do {                                                \
    __m128i wk_ = _mm_add_epi32(                      \
        (mi),                                         \
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(kK + 4 * (k)))); \
    state1 = _mm_sha256rnds2_epu32(state1, state0, wk_);              \
    __m128i carry_ = _mm_alignr_epi8((mi), (ml), 4);  \
    (mj) = _mm_add_epi32((mj), carry_);               \
    (mj) = _mm_sha256msg2_epu32((mj), (mi));          \
    wk_ = _mm_shuffle_epi32(wk_, 0x0E);               \
    state0 = _mm_sha256rnds2_epu32(state0, state1, wk_); \
    (ml) = _mm_sha256msg1_epu32((ml), (mi));          \
  } while (0)

__attribute__((target("sha,sse4.1,ssse3"))) void ProcessBlocksShaNi(
    uint32_t state[8], const uint8_t* data, size_t nblocks) {
  const __m128i bswap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Repack {a..h} into the ABEF/CDGH lane order sha256rnds2 expects.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);                 // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);           // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);   // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);        // CDGH

  for (; nblocks > 0; --nblocks, data += Sha256::kBlockSize) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i m0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data)), bswap);
    __m128i m1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), bswap);
    __m128i m2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), bswap);
    __m128i m3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), bswap);

    SHANI_QROUNDS(m0, 0);                 // rounds 0-3
    SHANI_QROUNDS(m1, 1);                 // rounds 4-7
    m0 = _mm_sha256msg1_epu32(m0, m1);
    SHANI_QROUNDS(m2, 2);                 // rounds 8-11
    m1 = _mm_sha256msg1_epu32(m1, m2);
    SHANI_QROUNDS_SCHED(m3, m0, m2, 3);   // rounds 12-15
    SHANI_QROUNDS_SCHED(m0, m1, m3, 4);   // rounds 16-19
    SHANI_QROUNDS_SCHED(m1, m2, m0, 5);   // rounds 20-23
    SHANI_QROUNDS_SCHED(m2, m3, m1, 6);   // rounds 24-27
    SHANI_QROUNDS_SCHED(m3, m0, m2, 7);   // rounds 28-31
    SHANI_QROUNDS_SCHED(m0, m1, m3, 8);   // rounds 32-35
    SHANI_QROUNDS_SCHED(m1, m2, m0, 9);   // rounds 36-39
    SHANI_QROUNDS_SCHED(m2, m3, m1, 10);  // rounds 40-43
    SHANI_QROUNDS_SCHED(m3, m0, m2, 11);  // rounds 44-47
    SHANI_QROUNDS_SCHED(m0, m1, m3, 12);  // rounds 48-51

    // Rounds 52-55: m2 still needs its msg2 completion; no further msg1.
    {
      __m128i wk = _mm_add_epi32(
          m1, _mm_loadu_si128(reinterpret_cast<const __m128i*>(kK + 52)));
      state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
      __m128i carry = _mm_alignr_epi8(m1, m0, 4);
      m2 = _mm_add_epi32(m2, carry);
      m2 = _mm_sha256msg2_epu32(m2, m1);
      wk = _mm_shuffle_epi32(wk, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, wk);
    }
    // Rounds 56-59: complete m3.
    {
      __m128i wk = _mm_add_epi32(
          m2, _mm_loadu_si128(reinterpret_cast<const __m128i*>(kK + 56)));
      state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
      __m128i carry = _mm_alignr_epi8(m2, m1, 4);
      m3 = _mm_add_epi32(m3, carry);
      m3 = _mm_sha256msg2_epu32(m3, m2);
      wk = _mm_shuffle_epi32(wk, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, wk);
    }
    SHANI_QROUNDS(m3, 15);                // rounds 60-63

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
  }

  // Unpack ABEF/CDGH back to {a..h}.
  tmp = _mm_shuffle_epi32(state0, 0x1B);              // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);           // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);        // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);           // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), state1);
}

#undef SHANI_QROUNDS
#undef SHANI_QROUNDS_SCHED

// ---------------------------------------------------------------------------
// AVX2 kernel (vectorized message schedule, scalar rounds).
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m128i VecSigma0(__m128i x) {
  // rotr7 ^ rotr18 ^ shr3
  __m128i r7 = _mm_or_si128(_mm_srli_epi32(x, 7), _mm_slli_epi32(x, 25));
  __m128i r18 = _mm_or_si128(_mm_srli_epi32(x, 18), _mm_slli_epi32(x, 14));
  return _mm_xor_si128(_mm_xor_si128(r7, r18), _mm_srli_epi32(x, 3));
}

__attribute__((target("avx2"))) inline __m128i VecSigma1(__m128i x) {
  // rotr17 ^ rotr19 ^ shr10
  __m128i r17 = _mm_or_si128(_mm_srli_epi32(x, 17), _mm_slli_epi32(x, 15));
  __m128i r19 = _mm_or_si128(_mm_srli_epi32(x, 19), _mm_slli_epi32(x, 13));
  return _mm_xor_si128(_mm_xor_si128(r17, r19), _mm_srli_epi32(x, 10));
}

__attribute__((target("avx2"))) void ProcessBlocksAvx2(uint32_t state[8],
                                                       const uint8_t* data,
                                                       size_t nblocks) {
  const __m128i bswap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
  const __m128i lane_lo = _mm_set_epi32(0, 0, -1, -1);
  const __m128i lane_hi = _mm_set_epi32(-1, -1, 0, 0);

  for (; nblocks > 0; --nblocks, data += Sha256::kBlockSize) {
    alignas(16) uint32_t w[64];

    __m128i w0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data)), bswap);
    __m128i w1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), bswap);
    __m128i w2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), bswap);
    __m128i w3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), bswap);
    _mm_store_si128(reinterpret_cast<__m128i*>(w), w0);
    _mm_store_si128(reinterpret_cast<__m128i*>(w + 4), w1);
    _mm_store_si128(reinterpret_cast<__m128i*>(w + 8), w2);
    _mm_store_si128(reinterpret_cast<__m128i*>(w + 12), w3);

    // Schedule W[16..63], four words per iteration. With i = 4g:
    //   base  = W[i-16..] + σ0(W[i-15..]) + W[i-7..]        (all four lanes)
    //   low   = base + σ1(W[i-2], W[i-1]) in lanes 0,1       → W[i], W[i+1]
    //   high  = low  + σ1(W[i],   W[i+1]) in lanes 2,3       → W[i+2], W[i+3]
    for (int g = 4; g < 16; ++g) {
      __m128i wm15 = _mm_alignr_epi8(w1, w0, 4);
      __m128i wm7 = _mm_alignr_epi8(w3, w2, 4);
      __m128i base =
          _mm_add_epi32(_mm_add_epi32(w0, VecSigma0(wm15)), wm7);
      __m128i tail = _mm_shuffle_epi32(w3, 0xEE);  // [W-2, W-1, W-2, W-1]
      __m128i low =
          _mm_add_epi32(base, _mm_and_si128(VecSigma1(tail), lane_lo));
      __m128i head = _mm_shuffle_epi32(low, 0x44);  // [W0, W1, W0, W1]
      __m128i next =
          _mm_add_epi32(low, _mm_and_si128(VecSigma1(head), lane_hi));
      _mm_store_si128(reinterpret_cast<__m128i*>(w + g * 4), next);
      w0 = w1;
      w1 = w2;
      w2 = w3;
      w3 = next;
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g2 = state[6], h = state[7];
    for (int t = 0; t < 64; ++t) {
      uint32_t s1 = ((e >> 6) | (e << 26)) ^ ((e >> 11) | (e << 21)) ^
                    ((e >> 25) | (e << 7));
      uint32_t ch = (e & f) ^ (~e & g2);
      uint32_t t1 = h + s1 + ch + kK[t] + w[t];
      uint32_t s0 = ((a >> 2) | (a << 30)) ^ ((a >> 13) | (a << 19)) ^
                    ((a >> 22) | (a << 10));
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t t2 = s0 + maj;
      h = g2;
      g2 = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g2;
    state[7] += h;
  }
}

}  // namespace

BlockFn ShaNiBlockFn() {
  static const BlockFn fn =
      (__builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") &&
       __builtin_cpu_supports("ssse3"))
          ? &ProcessBlocksShaNi
          : nullptr;
  return fn;
}

BlockFn Avx2BlockFn() {
  static const BlockFn fn =
      __builtin_cpu_supports("avx2") ? &ProcessBlocksAvx2 : nullptr;
  return fn;
}

#else  // !SEEMORE_SHA256_X86

BlockFn ShaNiBlockFn() { return nullptr; }
BlockFn Avx2BlockFn() { return nullptr; }

#endif

}  // namespace sha256_internal
}  // namespace seemore
