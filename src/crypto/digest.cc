#include "crypto/digest.h"

#include "util/hex.h"

namespace seemore {

std::string Digest::ShortHex() const {
  return HexEncode(bytes_.data(), 4);
}

std::string Digest::ToHex() const {
  return HexEncode(bytes_.data(), kSize);
}

}  // namespace seemore
