#include "baselines/pbft/pbft_replica.h"

#include <algorithm>

#include "util/logging.h"

namespace seemore {

PbftCoreReplica::PbftCoreReplica(Simulator* sim, SimNetwork* net,
                                 const KeyStore* keystore, PrincipalId id,
                                 const ClusterConfig& config,
                                 std::unique_ptr<StateMachine> state_machine,
                                 const CostModel& costs,
                                 const PbftQuorums& quorums)
    : ReplicaBase(sim, net, keystore, id, config, std::move(state_machine),
                  costs),
      quorums_(quorums) {
  current_vc_timeout_ = config_.view_change_timeout;
  window_ = static_cast<uint64_t>(config_.checkpoint_period) * 2 +
            static_cast<uint64_t>(config_.pipeline_max);
}

void PbftCoreReplica::HandleMessage(PrincipalId from, const Bytes& bytes) {
  Decoder dec(bytes);
  const uint8_t tag = dec.GetU8();
  if (!dec.ok()) return;
  ChargeMac();  // channel authentication
  // Protocol-internal messages are only legitimate on replica channels.
  if (tag != kMsgRequest && (from < 0 || from >= config_.n())) return;
  switch (tag) {
    case kMsgRequest:
      HandleRequest(from, dec);
      break;
    case kPrePrepare:
      HandlePrePrepare(from, dec);
      break;
    case kPrepare:
      HandlePrepare(from, dec);
      break;
    case kCommit:
      HandleCommit(from, dec);
      break;
    case kCheckpoint:
      HandleCheckpoint(from, dec);
      break;
    case kViewChange:
      HandleViewChange(from, dec, bytes);
      break;
    case kNewView:
      HandleNewView(from, dec);
      break;
    case kStateRequest:
      HandleStateRequest(from, dec);
      break;
    case kStateResponse:
      HandleStateResponse(from, dec);
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Normal case
// ---------------------------------------------------------------------------

void PbftCoreReplica::HandleRequest(PrincipalId from, Decoder& dec) {
  Result<Request> request_or = Request::DecodeFrom(dec);
  if (!request_or.ok()) return;
  Request request = std::move(request_or).value();

  // Channel authentication (§3.1): a request arriving directly from a
  // client channel must name that client. Without this, a rogue client
  // could impersonate another and poison its timestamp sequence — the
  // crash-model baseline has no signatures to catch it otherwise.
  if (IsClientPrincipal(from) && from != request.client) return;

  if (exec_.SeenTimestamp(request.client, request.timestamp)) {
    auto cached = exec_.CachedReply(request.client, request.timestamp);
    if (cached.has_value()) {
      Reply reply;
      reply.view = view_;
      reply.timestamp = request.timestamp;
      reply.replica = id_;
      reply.result = *cached;
      reply.Sign(signer_);
      ChargeMac();
      SendTo(request.client, reply.ToMessage());
    }
    return;
  }

  ChargeVerify();  // client signature
  if (!request.VerifySignature(*keystore_)) return;

  if (IsPrimary() && !in_view_change_) {
    PrimaryEnqueue(std::move(request));
  } else if (!in_view_change_) {
    // Clients multicast to the whole receiving network, so the primary has
    // its own copy on the first transmission. Seeing the SAME timestamp
    // again means the client timed out: relay to the primary (its copy may
    // have been lost or the client cannot reach it) and arm the liveness
    // timer — if the request still never commits, a view change follows.
    if (from == request.client) {
      auto seen = relay_seen_ts_.find(request.client);
      const bool retransmission =
          seen != relay_seen_ts_.end() && seen->second >= request.timestamp;
      relay_seen_ts_[request.client] = request.timestamp;
      if (retransmission) {
        SendTo(config_.FlatPrimary(view_), request.ToMessage());
      }
    }
    ArmViewTimer();
  }
}

void PbftCoreReplica::PrimaryEnqueue(Request request) {
  auto it = primary_seen_ts_.find(request.client);
  if (it != primary_seen_ts_.end() && request.timestamp <= it->second) return;
  primary_seen_ts_[request.client] = request.timestamp;
  pending_.push_back(std::move(request));
  TryPropose();
}

int PbftCoreReplica::UncommittedSlots() const {
  int count = 0;
  for (const auto& [seq, slot] : slots_) {
    if (slot.has_batch && !slot.committed) ++count;
  }
  return count;
}

void PbftCoreReplica::TryPropose() {
  while (!pending_.empty() && UncommittedSlots() < config_.pipeline_max &&
         next_seq_ <= stable_seq_ + window_) {
    Batch batch;
    while (!pending_.empty() &&
           batch.size() < static_cast<size_t>(config_.batch_max)) {
      batch.requests.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    const uint64_t seq = next_seq_++;

    if (HasByz(kByzEquivocate) && batch.size() >= 1) {
      // Equivocating primary: propose different batches to different halves
      // of the cluster. Honest replicas will fail to assemble a prepare
      // quorum for either value; the view change recovers liveness.
      Batch alt;
      alt.requests.assign(batch.requests.rbegin() + (batch.size() > 1 ? 0 : 0),
                          batch.requests.rend());
      if (alt.size() == batch.size() && batch.size() == 1) {
        alt = Batch::Noop();
      }
      const Bytes enc_a = batch.Encode();
      const Bytes enc_b = alt.Encode();
      const Digest dig_a = Digest::Of(enc_a);
      const Digest dig_b = Digest::Of(enc_b);
      const Signature sig_a = signer_.Sign(
          ProposalHeader(kDomainPrePrepare, 0, view_, seq, dig_a));
      const Signature sig_b = signer_.Sign(
          ProposalHeader(kDomainPrePrepare, 0, view_, seq, dig_b));
      ChargeSign(2);
      const std::vector<PrincipalId> all = config_.AllReplicas();
      for (size_t i = 0; i < all.size(); ++i) {
        if (all[i] == id_) continue;
        const bool first_half = i < all.size() / 2;
        Encoder enc;
        enc.PutU8(kPrePrepare);
        enc.PutU64(view_);
        enc.PutU64(seq);
        (first_half ? dig_a : dig_b).EncodeTo(enc);
        (first_half ? sig_a : sig_b).EncodeTo(enc);
        enc.PutBytes(first_half ? enc_a : enc_b);
        SendTo(all[i], enc.bytes());
      }
      continue;  // keep no honest slot; we are lying anyway
    }

    const Bytes encoded = batch.Encode();
    EmitPrePrepare(seq, batch, encoded);
  }
}

void PbftCoreReplica::EmitPrePrepare(uint64_t seq, const Batch& batch,
                                     const Bytes& encoded) {
  ChargeHash(encoded.size());
  const Digest digest = Digest::Of(encoded);
  ChargeSign();
  const Signature sig =
      signer_.Sign(ProposalHeader(kDomainPrePrepare, 0, view_, seq, digest));

  Slot& slot = slots_[seq];
  slot.batch = batch;
  slot.has_batch = true;
  slot.digest = digest;
  slot.view = view_;
  slot.primary_sig = sig;

  Encoder enc;
  enc.PutU8(kPrePrepare);
  enc.PutU64(view_);
  enc.PutU64(seq);
  digest.EncodeTo(enc);
  sig.EncodeTo(enc);
  enc.PutBytes(encoded);
  SendToMany(config_.AllReplicas(), enc.bytes());
}

void PbftCoreReplica::HandlePrePrepare(PrincipalId from, Decoder& dec) {
  const uint64_t view = dec.GetU64();
  const uint64_t seq = dec.GetU64();
  const Digest digest = Digest::DecodeFrom(dec);
  const Signature sig = Signature::DecodeFrom(dec);
  Bytes batch_bytes = dec.GetBytes();
  if (!dec.ok()) return;
  if (view != view_ || in_view_change_) return;
  if (from != config_.FlatPrimary(view_)) return;
  if (seq <= stable_seq_ || seq > stable_seq_ + window_) return;

  ChargeVerify();
  if (!keystore_->Verify(from,
                         ProposalHeader(kDomainPrePrepare, 0, view, seq, digest),
                         sig)) {
    return;
  }
  ChargeHash(batch_bytes.size());
  if (Digest::Of(batch_bytes) != digest) return;
  Result<Batch> batch_or = Batch::Decode(batch_bytes);
  if (!batch_or.ok()) return;
  Batch batch = std::move(batch_or).value();
  // Authenticate every client request in the batch.
  ChargeVerify(static_cast<int>(batch.size()));
  for (const Request& request : batch.requests) {
    if (!request.VerifySignature(*keystore_)) return;
  }

  Slot& slot = slots_[seq];
  if (slot.has_batch) {
    // Equivocation defense: at most one pre-prepare per (view, seq).
    if (slot.view == view && slot.digest != digest) return;
    if (slot.digest == digest) return;  // duplicate
  }
  slot.batch = std::move(batch);
  slot.has_batch = true;
  slot.digest = digest;
  slot.view = view;
  slot.primary_sig = sig;

  SendPrepare(seq, slot);
  ArmViewTimer();
  CheckPrepared(seq, slot);
}

void PbftCoreReplica::SendPrepare(uint64_t seq, Slot& slot) {
  Digest vote_digest = slot.digest;
  if (HasByz(kByzWrongVotes)) vote_digest.data()[0] ^= 0xff;
  ChargeSign();
  const Signature sig = signer_.Sign(
      VoteHeader(kDomainPrepare, 0, view_, seq, vote_digest, id_));
  Encoder enc;
  enc.PutU8(kPrepare);
  enc.PutU64(view_);
  enc.PutU64(seq);
  vote_digest.EncodeTo(enc);
  enc.PutU32(static_cast<uint32_t>(id_));
  sig.EncodeTo(enc);
  SendToMany(config_.AllReplicas(), enc.bytes());
  slot.prepare_votes.Add(vote_digest, id_, sig);
}

void PbftCoreReplica::HandlePrepare(PrincipalId from, Decoder& dec) {
  const uint64_t view = dec.GetU64();
  const uint64_t seq = dec.GetU64();
  const Digest digest = Digest::DecodeFrom(dec);
  const PrincipalId voter = static_cast<PrincipalId>(dec.GetU32());
  const Signature sig = Signature::DecodeFrom(dec);
  if (!dec.ok()) return;
  if (view != view_ || in_view_change_) return;
  if (voter != from || !IsReplicaId(voter)) return;
  if (seq <= stable_seq_ || seq > stable_seq_ + window_) return;
  ChargeVerify();
  if (!keystore_->Verify(voter,
                         VoteHeader(kDomainPrepare, 0, view, seq, digest, voter),
                         sig)) {
    return;
  }
  Slot& slot = slots_[seq];
  slot.prepare_votes.Add(digest, voter, sig);
  CheckPrepared(seq, slot);
}

void PbftCoreReplica::CheckPrepared(uint64_t seq, Slot& slot) {
  if (slot.prepared || !slot.has_batch) return;
  if (static_cast<int>(slot.prepare_votes.Count(slot.digest)) <
      quorums_.agreement) {
    return;
  }
  slot.prepared = true;
  if (!slot.commit_sent) {
    slot.commit_sent = true;
    Digest vote_digest = slot.digest;
    if (HasByz(kByzWrongVotes)) vote_digest.data()[0] ^= 0xff;
    ChargeSign();
    const Signature sig = signer_.Sign(
        VoteHeader(kDomainCommit, 0, view_, seq, vote_digest, id_));
    Encoder enc;
    enc.PutU8(kCommit);
    enc.PutU64(view_);
    enc.PutU64(seq);
    vote_digest.EncodeTo(enc);
    enc.PutU32(static_cast<uint32_t>(id_));
    sig.EncodeTo(enc);
    SendToMany(config_.AllReplicas(), enc.bytes());
    slot.commit_votes.Add(vote_digest, id_, sig);
  }
  CheckCommitted(seq, slot);
}

void PbftCoreReplica::HandleCommit(PrincipalId from, Decoder& dec) {
  const uint64_t view = dec.GetU64();
  const uint64_t seq = dec.GetU64();
  const Digest digest = Digest::DecodeFrom(dec);
  const PrincipalId voter = static_cast<PrincipalId>(dec.GetU32());
  const Signature sig = Signature::DecodeFrom(dec);
  if (!dec.ok()) return;
  if (view != view_ || in_view_change_) return;
  if (voter != from || !IsReplicaId(voter)) return;
  if (seq <= stable_seq_ || seq > stable_seq_ + window_) return;
  ChargeVerify();
  if (!keystore_->Verify(voter,
                         VoteHeader(kDomainCommit, 0, view, seq, digest, voter),
                         sig)) {
    return;
  }
  Slot& slot = slots_[seq];
  slot.commit_votes.Add(digest, voter, sig);
  CheckCommitted(seq, slot);
}

void PbftCoreReplica::CheckCommitted(uint64_t seq, Slot& slot) {
  if (slot.committed || !slot.prepared) return;
  if (static_cast<int>(slot.commit_votes.Count(slot.digest)) <
      quorums_.commit) {
    return;
  }
  slot.committed = true;
  ++stats_.batches_committed;
  std::vector<ExecutedRequest> executed = exec_.Commit(seq, slot.batch);
  ChargeExecute(static_cast<int>(executed.size()));
  for (const ExecutedRequest& ex : executed) {
    ++stats_.requests_executed;
    if (!(ex.duplicate && ex.result.empty())) SendReply(ex);
  }
  MaybeCheckpoint();
  RestartOrDisarmViewTimer();
  if (IsPrimary() && !in_view_change_) TryPropose();
}

void PbftCoreReplica::SendReply(const ExecutedRequest& executed) {
  Reply reply;
  reply.view = view_;
  reply.timestamp = executed.request.timestamp;
  reply.replica = id_;
  reply.result = executed.result;
  if (HasByz(kByzLieToClients) && !reply.result.empty()) {
    reply.result[0] ^= 0xff;
  }
  reply.Sign(signer_);
  ChargeMac();
  SendTo(executed.request.client, reply.ToMessage());
}

// ---------------------------------------------------------------------------
// Checkpoints / state transfer
// ---------------------------------------------------------------------------

void PbftCoreReplica::MaybeCheckpoint() {
  const uint64_t executed = exec_.last_executed();
  if (executed < last_checkpoint_seq_ +
                     static_cast<uint64_t>(config_.checkpoint_period)) {
    return;
  }
  last_checkpoint_seq_ = executed;
  Bytes snapshot = exec_.Snapshot();
  ChargeHash(snapshot.size());
  const Digest digest = Digest::Of(snapshot);
  snapshot_buffer_[executed] = {digest, std::move(snapshot)};

  CheckpointMsg msg;
  msg.seq = executed;
  msg.state_digest = digest;
  msg.replica = id_;
  ChargeSign();
  msg.Sign(signer_);
  Encoder enc;
  enc.PutU8(kCheckpoint);
  msg.EncodeTo(enc);
  SendToMany(config_.AllReplicas(), enc.bytes());
  CountCheckpointVote(msg);
}

void PbftCoreReplica::HandleCheckpoint(PrincipalId from, Decoder& dec) {
  Result<CheckpointMsg> msg_or = CheckpointMsg::DecodeFrom(dec);
  if (!msg_or.ok()) return;
  const CheckpointMsg& msg = msg_or.value();
  if (msg.replica != from || !IsReplicaId(from)) return;
  if (msg.seq <= stable_seq_) return;
  ChargeVerify();
  if (!msg.Verify(*keystore_)) return;
  CountCheckpointVote(msg);
  // If many peers checkpoint far ahead of us we fell behind; the vote path
  // (quorum then AdvanceStable) normally handles it, but when our own vote
  // can never arrive (we are stuck), fetch once the gap exceeds a period.
  if (msg.seq > exec_.last_executed() +
                    static_cast<uint64_t>(config_.checkpoint_period)) {
    RequestStateFrom(msg.replica);
  }
}

void PbftCoreReplica::CountCheckpointVote(const CheckpointMsg& msg) {
  auto& signers = checkpoint_votes_[msg.seq][msg.state_digest];
  signers[msg.replica] = msg;
  if (static_cast<int>(signers.size()) >= quorums_.checkpoint) {
    CheckpointCert cert;
    PrincipalId helper = id_;
    for (const auto& [signer, m] : signers) {
      cert.Add(m);
      if (signer != id_) helper = signer;
    }
    AdvanceStable(msg.seq, msg.state_digest, std::move(cert), helper);
  }
}

void PbftCoreReplica::AdvanceStable(uint64_t seq, const Digest& digest,
                                    CheckpointCert cert, PrincipalId helper) {
  if (seq <= stable_seq_) return;
  stable_seq_ = seq;
  stable_cert_ = std::move(cert);
  auto it = snapshot_buffer_.find(seq);
  if (it != snapshot_buffer_.end() && it->second.first == digest) {
    stable_snapshot_ = std::move(it->second.second);
  } else if (exec_.last_executed() < seq && helper != id_) {
    RequestStateFrom(helper);
  }
  for (auto s = slots_.begin(); s != slots_.end();) {
    s = s->first <= seq ? slots_.erase(s) : std::next(s);
  }
  for (auto s = snapshot_buffer_.begin(); s != snapshot_buffer_.end();) {
    s = s->first <= seq ? snapshot_buffer_.erase(s) : std::next(s);
  }
  for (auto s = checkpoint_votes_.begin(); s != checkpoint_votes_.end();) {
    s = s->first <= seq ? checkpoint_votes_.erase(s) : std::next(s);
  }
  if (IsPrimary() && !in_view_change_) TryPropose();  // window may have moved
}

void PbftCoreReplica::RequestStateFrom(PrincipalId target) {
  if (target == id_) return;
  if (sim_->now() - last_state_request_ < Millis(20)) return;
  last_state_request_ = sim_->now();
  ++stats_.state_transfers;
  Encoder enc;
  enc.PutU8(kStateRequest);
  enc.PutU64(exec_.last_executed());
  SendTo(target, enc.bytes());
}

void PbftCoreReplica::HandleStateRequest(PrincipalId from, Decoder& dec) {
  const uint64_t their_executed = dec.GetU64();
  if (!dec.ok()) return;
  if (stable_snapshot_.empty() || stable_seq_ <= their_executed) return;
  Encoder enc;
  enc.PutU8(kStateResponse);
  stable_cert_.EncodeTo(enc);
  enc.PutBytes(stable_snapshot_);
  SendTo(from, enc.bytes());
}

void PbftCoreReplica::HandleStateResponse(PrincipalId from, Decoder& dec) {
  (void)from;
  Result<CheckpointCert> cert_or = CheckpointCert::DecodeFrom(dec);
  if (!cert_or.ok()) return;
  Bytes snapshot = dec.GetBytes();
  if (!dec.ok()) return;
  CheckpointCert cert = std::move(cert_or).value();
  if (cert.IsGenesis() || cert.seq() <= exec_.last_executed()) return;
  ChargeVerify(static_cast<int>(cert.msgs().size()));
  if (!cert.Verify(*keystore_, quorums_.checkpoint,
                   [this](PrincipalId r) { return IsReplicaId(r); })) {
    return;
  }
  ChargeHash(snapshot.size());
  if (Digest::Of(snapshot) != cert.state_digest()) return;
  const uint64_t seq = cert.seq();
  if (!exec_.Restore(snapshot, seq).ok()) return;
  stable_seq_ = std::max(stable_seq_, seq);
  stable_cert_ = std::move(cert);
  stable_snapshot_ = std::move(snapshot);
  last_checkpoint_seq_ = std::max(last_checkpoint_seq_, seq);
  for (auto s = slots_.begin(); s != slots_.end();) {
    s = s->first <= seq ? slots_.erase(s) : std::next(s);
  }
}

// ---------------------------------------------------------------------------
// View change
// ---------------------------------------------------------------------------

void PbftCoreReplica::ArmViewTimer() {
  if (view_timer_ != 0 || in_view_change_) return;
  // Do not count our own CPU backlog against the primary (see the SeeMoRe
  // replica for the full rationale: timers that ignore post-view-change
  // re-agreement work livelock the cluster).
  const SimTime backlog = cpu_.AvailableAt() - sim_->now();
  view_timer_ = StartTimer(current_vc_timeout_ + backlog, [this] {
    view_timer_ = 0;
    StartViewChange(view_ + 1);
  });
}

void PbftCoreReplica::RestartOrDisarmViewTimer() {
  CancelTimer(view_timer_);
  current_vc_timeout_ = config_.view_change_timeout;
  if (UncommittedSlots() > 0) ArmViewTimer();
}

void PbftCoreReplica::StartViewChange(uint64_t new_view) {
  if (new_view <= view_ || (in_view_change_ && new_view <= vc_target_)) return;
  in_view_change_ = true;
  vc_target_ = new_view;
  ++stats_.view_changes_started;
  CancelTimer(view_timer_);

  Encoder enc;
  enc.PutU8(kViewChange);
  enc.PutU64(new_view);
  enc.PutU64(stable_seq_);
  stable_cert_.EncodeTo(enc);
  uint64_t proof_count = 0;
  for (const auto& [seq, slot] : slots_) {
    if (slot.prepared && seq > stable_seq_) ++proof_count;
  }
  enc.PutVarint(proof_count);
  for (const auto& [seq, slot] : slots_) {
    if (!slot.prepared || seq <= stable_seq_) continue;
    PreparedProof proof;
    proof.view = slot.view;
    proof.seq = seq;
    proof.digest = slot.digest;
    proof.batch = slot.batch;
    proof.primary_sig = slot.primary_sig;
    const auto* sigs = slot.prepare_votes.SignaturesFor(slot.digest);
    if (sigs != nullptr) proof.prepares = *sigs;
    proof.EncodeTo(enc);
  }
  enc.PutU32(static_cast<uint32_t>(id_));
  // Sign the body (everything so far).
  ChargeSign();
  const Signature sig = signer_.Sign(enc.bytes());
  sig.EncodeTo(enc);
  const Bytes raw = enc.Take();
  SendToMany(config_.AllReplicas(), raw);

  Result<ViewChangeRecord> record = ParseViewChange(raw, id_);
  if (record.ok()) {
    vc_msgs_[new_view][id_] = std::move(record).value();
  }
  if (config_.FlatPrimary(new_view) == id_) MaybeFormNewView(new_view);

  current_vc_timeout_ = std::min<SimTime>(current_vc_timeout_ * 2, Seconds(2));
  const SimTime backlog = cpu_.AvailableAt() - sim_->now();
  view_timer_ = StartTimer(current_vc_timeout_ + backlog, [this] {
    view_timer_ = 0;
    if (in_view_change_) StartViewChange(vc_target_ + 1);
  });
}

Result<PbftCoreReplica::ViewChangeRecord> PbftCoreReplica::ParseViewChange(
    const Bytes& raw, PrincipalId from) {
  Decoder dec(raw);
  if (dec.GetU8() != kViewChange) return Status::Corruption("not a VC");
  const uint64_t new_view = dec.GetU64();
  (void)new_view;
  ViewChangeRecord record;
  record.raw = raw;
  record.stable_seq = dec.GetU64();
  SEEMORE_ASSIGN_OR_RETURN(record.cert, CheckpointCert::DecodeFrom(dec));
  const uint64_t proof_count = dec.GetVarint();
  if (!dec.ok()) return dec.status();
  if (proof_count > window_ + 1) return Status::Corruption("too many proofs");
  for (uint64_t i = 0; i < proof_count; ++i) {
    SEEMORE_ASSIGN_OR_RETURN(PreparedProof proof,
                             PreparedProof::DecodeFrom(dec));
    record.proofs.emplace(proof.seq, std::move(proof));
  }
  const PrincipalId sender = static_cast<PrincipalId>(dec.GetU32());
  if (!dec.ok()) return dec.status();
  const size_t body_len = raw.size() - dec.remaining();
  const Signature sig = Signature::DecodeFrom(dec);
  SEEMORE_RETURN_IF_ERROR(dec.Finish());
  if (sender != from) return Status::Corruption("sender mismatch");
  if (!keystore_->Verify(sender, raw.data(), body_len, sig)) {
    return Status::Corruption("bad VC signature");
  }
  // Validate the embedded certificates now so the new-view computation can
  // trust every stored record.
  if (!record.cert.Verify(*keystore_, quorums_.checkpoint,
                          [this](PrincipalId r) { return IsReplicaId(r); })) {
    return Status::Corruption("bad checkpoint cert in VC");
  }
  for (const auto& [seq, proof] : record.proofs) {
    if (proof.seq != seq || seq <= record.stable_seq) {
      return Status::Corruption("inconsistent proof seq");
    }
    if (!proof.Verify(*keystore_, config_.FlatPrimary(proof.view),
                      quorums_.agreement,
                      [this](PrincipalId r) { return IsReplicaId(r); })) {
      return Status::Corruption("invalid prepared proof");
    }
  }
  return record;
}

void PbftCoreReplica::HandleViewChange(PrincipalId from, Decoder& dec,
                                       const Bytes& raw) {
  const uint64_t new_view = dec.GetU64();
  if (!dec.ok() || new_view <= view_) return;
  // Full parse + signature + certificate verification.
  ChargeVerify(2);
  Result<ViewChangeRecord> record_or = ParseViewChange(raw, from);
  if (!record_or.ok()) return;
  vc_msgs_[new_view][from] = std::move(record_or).value();
  MaybeJoinViewChange();
  if (config_.FlatPrimary(new_view) == id_) MaybeFormNewView(new_view);
}

void PbftCoreReplica::MaybeJoinViewChange() {
  // Join the lowest view > view_ for which vc_join distinct replicas have
  // asked — prevents a lone Byzantine node from forcing view changes while
  // guaranteeing we follow the honest majority.
  for (const auto& [target, records] : vc_msgs_) {
    if (target <= view_) continue;
    if (static_cast<int>(records.size()) >= quorums_.vc_join &&
        (!in_view_change_ || target > vc_target_)) {
      StartViewChange(target);
      return;
    }
  }
}

std::pair<uint64_t, std::map<uint64_t, PbftCoreReplica::Proposal>>
PbftCoreReplica::ComputeNewViewProposals(
    const std::map<PrincipalId, ViewChangeRecord>& records) const {
  uint64_t max_stable = 0;
  uint64_t max_seq = 0;
  for (const auto& [sender, record] : records) {
    max_stable = std::max(max_stable, record.stable_seq);
    if (!record.proofs.empty()) {
      max_seq = std::max(max_seq, record.proofs.rbegin()->first);
    }
  }
  std::map<uint64_t, Proposal> proposals;
  std::map<uint64_t, uint64_t> proposal_views;
  for (const auto& [sender, record] : records) {
    for (const auto& [seq, proof] : record.proofs) {
      if (seq <= max_stable) continue;
      auto it = proposal_views.find(seq);
      if (it == proposal_views.end() || proof.view > it->second) {
        proposal_views[seq] = proof.view;
        proposals[seq] = Proposal{proof.digest, proof.batch};
      }
    }
  }
  // Fill holes with no-ops.
  for (uint64_t seq = max_stable + 1; seq <= max_seq; ++seq) {
    if (proposals.count(seq) == 0) {
      Batch noop = Batch::Noop();
      proposals[seq] = Proposal{noop.ComputeDigest(), std::move(noop)};
    }
  }
  return {max_stable, std::move(proposals)};
}

void PbftCoreReplica::MaybeFormNewView(uint64_t new_view) {
  if (view_ >= new_view) return;
  auto it = vc_msgs_.find(new_view);
  if (it == vc_msgs_.end()) return;
  const auto& records = it->second;
  if (static_cast<int>(records.size()) < quorums_.view_change) return;

  auto [max_stable, proposals] = ComputeNewViewProposals(records);

  Encoder enc;
  enc.PutU8(kNewView);
  enc.PutU64(new_view);
  enc.PutVarint(records.size());
  for (const auto& [sender, record] : records) {
    enc.PutBytes(record.raw);
  }
  enc.PutVarint(proposals.size());
  for (auto& [seq, proposal] : proposals) {
    ChargeSign();
    const Signature sig = signer_.Sign(
        ProposalHeader(kDomainPrePrepare, 0, new_view, seq, proposal.digest));
    enc.PutU64(seq);
    proposal.digest.EncodeTo(enc);
    sig.EncodeTo(enc);
  }
  SendToMany(config_.AllReplicas(), enc.bytes());

  // Install locally.
  PrincipalId helper = id_;
  for (const auto& [sender, record] : records) {
    if (record.stable_seq == max_stable && sender != id_) helper = sender;
  }
  EnterView(new_view);
  ++stats_.view_changes_completed;
  uint64_t max_seq = max_stable;
  for (auto& [seq, proposal] : proposals) {
    max_seq = std::max(max_seq, seq);
    Slot slot;  // fresh: stale votes must not count toward the new view
    slot.batch = std::move(proposal.batch);
    slot.has_batch = true;
    slot.digest = proposal.digest;
    slot.view = new_view;
    slot.primary_sig = signer_.Sign(
        ProposalHeader(kDomainPrePrepare, 0, new_view, seq, proposal.digest));
    slot.committed = slots_[seq].committed || exec_.HasCommitted(seq);
    slots_[seq] = std::move(slot);
  }
  if (max_stable > stable_seq_ && max_stable > exec_.last_executed() &&
      helper != id_) {
    RequestStateFrom(helper);
  }
  next_seq_ = max_seq + 1;
  if (UncommittedSlots() > 0) ArmViewTimer();
  TryPropose();
}

void PbftCoreReplica::HandleNewView(PrincipalId from, Decoder& dec) {
  const uint64_t new_view = dec.GetU64();
  if (!dec.ok()) return;
  if (config_.FlatPrimary(new_view) != from) return;
  if (new_view <= view_) return;

  // Re-validate the embedded view-change quorum.
  const uint64_t vc_count = dec.GetVarint();
  if (!dec.ok() || vc_count > static_cast<uint64_t>(config_.n())) return;
  std::map<PrincipalId, ViewChangeRecord> records;
  ChargeVerify(static_cast<int>(vc_count) * 2);
  for (uint64_t i = 0; i < vc_count; ++i) {
    Bytes raw = dec.GetBytes();
    if (!dec.ok()) return;
    // Determine the sender from the message body (second-to-last field).
    Decoder peek(raw);
    if (peek.GetU8() != kViewChange) return;
    if (peek.GetU64() != new_view) return;  // VC for a different view
    // Re-parse fully below; sender id sits before the trailing signature.
    if (raw.size() < Signature::kSize + 4) return;
    const size_t sender_off = raw.size() - Signature::kSize - 4;
    uint32_t sender_raw = 0;
    for (int b = 0; b < 4; ++b) {
      sender_raw |= static_cast<uint32_t>(raw[sender_off + b]) << (8 * b);
    }
    const PrincipalId sender = static_cast<PrincipalId>(sender_raw);
    Result<ViewChangeRecord> record_or = ParseViewChange(raw, sender);
    if (!record_or.ok()) return;
    records[sender] = std::move(record_or).value();
  }
  if (static_cast<int>(records.size()) < quorums_.view_change) return;

  auto [max_stable, proposals] = ComputeNewViewProposals(records);

  const uint64_t entry_count = dec.GetVarint();
  if (!dec.ok() || entry_count != proposals.size()) return;
  struct Entry {
    uint64_t seq;
    Digest digest;
    Signature sig;
  };
  std::vector<Entry> entries;
  entries.reserve(entry_count);
  for (uint64_t i = 0; i < entry_count; ++i) {
    Entry entry;
    entry.seq = dec.GetU64();
    entry.digest = Digest::DecodeFrom(dec);
    entry.sig = Signature::DecodeFrom(dec);
    if (!dec.ok()) return;
    auto expect = proposals.find(entry.seq);
    if (expect == proposals.end() || expect->second.digest != entry.digest) {
      return;  // primary diverged from the deterministic computation
    }
    ChargeVerify();
    if (!keystore_->Verify(from,
                           ProposalHeader(kDomainPrePrepare, 0, new_view,
                                          entry.seq, entry.digest),
                           entry.sig)) {
      return;
    }
    entries.push_back(std::move(entry));
  }

  EnterView(new_view);
  ++stats_.view_changes_completed;
  PrincipalId helper = from;
  if (max_stable > exec_.last_executed()) RequestStateFrom(helper);
  for (Entry& entry : entries) {
    if (entry.seq <= stable_seq_) continue;
    // Already-committed sequence numbers still run the prepare/commit vote
    // exchange so peers that missed them pre-view-change can assemble their
    // quorums; the committed flag prevents re-execution.
    Slot fresh;
    fresh.batch = std::move(proposals[entry.seq].batch);
    fresh.has_batch = true;
    fresh.digest = entry.digest;
    fresh.view = new_view;
    fresh.primary_sig = entry.sig;
    fresh.committed = slots_[entry.seq].committed ||
                      exec_.HasCommitted(entry.seq);
    slots_[entry.seq] = std::move(fresh);
    Slot& slot = slots_[entry.seq];
    SendPrepare(entry.seq, slot);
    CheckPrepared(entry.seq, slot);
  }
  if (UncommittedSlots() > 0) ArmViewTimer();
}

void PbftCoreReplica::EnterView(uint64_t view) {
  view_ = view;
  in_view_change_ = false;
  vc_target_ = 0;
  CancelTimer(view_timer_);
  // Grace period: the re-proposed log needs a full re-agreement round under
  // post-view-change backlog before anyone may suspect the new primary.
  current_vc_timeout_ = config_.view_change_timeout * 3;
  // A view change may have nooped requests this map says were handled;
  // client retransmissions must be accepted afresh (the execution engine
  // still deduplicates anything that really committed).
  primary_seen_ts_.clear();
  // Uncommitted slots are superseded by the NEW-VIEW the caller installs
  // next; keeping them would re-arm the view timer forever.
  for (auto it = slots_.begin(); it != slots_.end();) {
    it = !it->second.committed ? slots_.erase(it) : std::next(it);
  }
  for (auto it = vc_msgs_.begin(); it != vc_msgs_.end();) {
    it = it->first <= view ? vc_msgs_.erase(it) : std::next(it);
  }
}

}  // namespace seemore
