#include "baselines/pbft/pbft_replica.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/logging.h"

namespace seemore {

PbftCoreReplica::PbftCoreReplica(Transport* transport, TimerService* timers,
                                 const KeyStore* keystore, CryptoMemo* memo,
                                 PrincipalId id, const ClusterConfig& config,
                                 std::unique_ptr<StateMachine> state_machine,
                                 const CostModel& costs,
                                 const PbftQuorums& quorums)
    : ReplicaBase(transport, timers, keystore, memo, id, config,
                  std::move(state_machine), costs),
      quorums_(quorums),
      window_(static_cast<uint64_t>(config.checkpoint_period) * 2 +
              static_cast<uint64_t>(config.pipeline_max)),
      log_(window_),
      pipeline_(config.batch_max, config.pipeline_max),
      ckpt_(config.checkpoint_period) {
  current_vc_timeout_ = config_.view_change_timeout;
}

void PbftCoreReplica::HandleMessage(PrincipalId from, const Payload& frame) {
  Decoder dec = FrameDecoder(frame);
  const uint8_t tag = dec.GetU8();
  if (!dec.ok()) return;
  ChargeMac();  // channel authentication
  // Protocol-internal messages are only legitimate on replica channels.
  if (tag != kMsgRequest && !IsReplicaId(from)) return;
  switch (tag) {
    case kMsgRequest:
      DispatchTyped(this, from, dec, &PbftCoreReplica::HandleRequest);
      break;
    case kPbftPrePrepare:
      DispatchTyped(this, from, dec, &PbftCoreReplica::HandlePrePrepare);
      break;
    case kPbftPrepare:
      DispatchTyped(this, from, dec, &PbftCoreReplica::HandlePrepare);
      break;
    case kPbftCommit:
      DispatchTyped(this, from, dec, &PbftCoreReplica::HandleCommit);
      break;
    case kPbftCheckpoint:
      DispatchTyped(this, from, dec, &PbftCoreReplica::HandleCheckpoint);
      break;
    case kPbftViewChange:
      // The body signature covers the whole frame; validate from the raw
      // bytes (ParseViewChange runs the typed decode internally; the record
      // keeps an owned copy regardless, so copy out of the shared frame).
      HandleViewChange(from, frame.ToBytes());
      break;
    case kPbftNewView: {
      Result<PbftNewViewMsg> msg = PbftNewViewMsg::DecodeFrom(
          dec, static_cast<uint64_t>(config_.n()), window_ + 1);
      if (msg.ok()) HandleNewView(from, std::move(msg).value());
      break;
    }
    case kPbftStateRequest:
      DispatchTyped(this, from, dec, &PbftCoreReplica::HandleStateRequest);
      break;
    case kPbftStateResponse:
      DispatchTyped(this, from, dec, &PbftCoreReplica::HandleStateResponse);
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Normal case
// ---------------------------------------------------------------------------

void PbftCoreReplica::HandleRequest(PrincipalId from, Request request) {
  // Channel authentication (§3.1): a request arriving directly from a
  // client channel must name that client. Without this, a rogue client
  // could impersonate another and poison its timestamp sequence — the
  // crash-model baseline has no signatures to catch it otherwise.
  if (IsClientPrincipal(from) && from != request.client) return;

  if (exec_.SeenTimestamp(request.client, request.timestamp)) {
    auto cached = exec_.CachedReply(request.client, request.timestamp);
    if (cached.has_value()) {
      Reply reply;
      reply.view = view_;
      reply.timestamp = request.timestamp;
      reply.replica = id_;
      reply.result = *cached;
      reply.Sign(signer_);
      ChargeMac();
      SendTo(request.client, reply.ToMessage());
    }
    return;
  }

  ChargeVerify();  // client signature
  if (!request.VerifySignature(*keystore_)) return;

  if (IsPrimary() && !in_view_change_) {
    PrimaryEnqueue(std::move(request));
  } else if (!in_view_change_) {
    // Clients multicast to the whole receiving network, so the primary has
    // its own copy on the first transmission. Seeing the SAME timestamp
    // again means the client timed out: relay to the primary (its copy may
    // have been lost or the client cannot reach it) and arm the liveness
    // timer — if the request still never commits, a view change follows.
    if (from == request.client) {
      if (pipeline_.NoteDirectDelivery(request.client, request.timestamp)) {
        SendTo(config_.FlatPrimary(view_), request.ToMessage());
      }
    }
    ArmViewTimer();
  }
}

void PbftCoreReplica::PrimaryEnqueue(Request request) {
  if (!pipeline_.Admit(request)) return;
  pipeline_.Enqueue(std::move(request));
  TryPropose();
}

void PbftCoreReplica::TryPropose() {
  if (proposer_quiesced()) return;
  while (pipeline_.CanOpen(log_.UncommittedSlots()) &&
         pipeline_.next_seq() <= ckpt_.stable_seq() + window_) {
    auto [seq, batch] = pipeline_.Open();

    if (HasByz(kByzEquivocate) && batch.size() >= 1) {
      // Equivocating primary: propose different batches to different halves
      // of the cluster. Honest replicas will fail to assemble a prepare
      // quorum for either value; the view change recovers liveness.
      Batch alt;
      alt.requests.assign(batch.requests.rbegin(), batch.requests.rend());
      if (batch.size() == 1) alt = Batch::Noop();  // reversal is a no-op
      PbftPrePrepareMsg pp_a{view_, seq, Digest(), Signature(), batch.Encode()};
      PbftPrePrepareMsg pp_b{view_, seq, Digest(), Signature(), alt.Encode()};
      pp_a.digest = Digest::Of(pp_a.batch);
      pp_b.digest = Digest::Of(pp_b.batch);
      pp_a.sig = signer_.Sign(pp_a.Header());
      pp_b.sig = signer_.Sign(pp_b.Header());
      ChargeSign(2);
      const Bytes msg_a = pp_a.ToMessage();
      const Bytes msg_b = pp_b.ToMessage();
      const std::vector<PrincipalId> all = config_.AllReplicas();
      for (size_t i = 0; i < all.size(); ++i) {
        if (all[i] == id_) continue;
        SendTo(all[i], i < all.size() / 2 ? msg_a : msg_b);
      }
      continue;  // keep no honest slot; we are lying anyway
    }

    const Bytes encoded = batch.Encode();
    EmitPrePrepare(seq, batch, encoded);
  }
}

void PbftCoreReplica::EmitPrePrepare(uint64_t seq, const Batch& batch,
                                     const Bytes& encoded) {
  ChargeHash(encoded.size());
  PbftPrePrepareMsg pp{view_, seq, Digest::Of(encoded), Signature(), encoded};
  ChargeSign();
  pp.sig = signer_.Sign(pp.Header());

  SlotCore& slot = log_.Slot(seq);
  slot.batch = batch;
  slot.has_batch = true;
  slot.digest = pp.digest;
  slot.view = view_;
  slot.primary_sig = pp.sig;

  SendToMany(config_.AllReplicas(), pp.ToMessage());
}

void PbftCoreReplica::HandlePrePrepare(PrincipalId from, PbftPrePrepareMsg msg) {
  if (msg.view != view_ || in_view_change_) return;
  if (from != config_.FlatPrimary(view_)) return;
  if (msg.seq <= ckpt_.stable_seq() || msg.seq > ckpt_.stable_seq() + window_) {
    return;
  }

  // Primary signature, batch digest and per-request client signatures are
  // pure functions of the multicast frame: real crypto runs once per
  // process (memoized on buffer identity); every receiver still charges the
  // full simulated cost.
  ChargeVerify();
  if (!FrameVerifyMemoized(from, kPbftPrePrepare, [&] {
        return msg.VerifySignature(*keystore_, from);
      })) {
    return;
  }
  ChargeHash(msg.batch.size());
  if (FrameFieldDigest(msg.batch, msg.batch_offset) != msg.digest) return;
  Result<Batch> batch_or = Batch::Decode(msg.batch);
  if (!batch_or.ok()) return;
  Batch batch = std::move(batch_or).value();
  // Authenticate every client request in the batch.
  ChargeVerify(static_cast<int>(batch.size()));
  for (size_t i = 0; i < batch.requests.size(); ++i) {
    const Request& request = batch.requests[i];
    if (!FrameVerifyMemoized(
            request.client,
            (static_cast<uint32_t>(kPbftPrePrepare) << 16) |
                static_cast<uint32_t>(i),
            [&] { return request.VerifySignature(*keystore_); })) {
      return;
    }
  }

  SlotCore& slot = log_.Slot(msg.seq);
  if (slot.has_batch) {
    // Equivocation defense: at most one pre-prepare per (view, seq).
    if (slot.view == msg.view && slot.digest != msg.digest) return;
    if (slot.digest == msg.digest) return;  // duplicate
  }
  slot.batch = std::move(batch);
  slot.has_batch = true;
  slot.digest = msg.digest;
  slot.view = msg.view;
  slot.primary_sig = msg.sig;

  SendPrepare(msg.seq, slot);
  ArmViewTimer();
  CheckPrepared(msg.seq, slot);
}

void PbftCoreReplica::SendPrepare(uint64_t seq, SlotCore& slot) {
  Digest vote_digest = slot.digest;
  if (HasByz(kByzWrongVotes)) vote_digest.data()[0] ^= 0xff;
  ChargeSign();
  PbftPrepareMsg prepare;
  prepare.view = view_;
  prepare.seq = seq;
  prepare.digest = vote_digest;
  prepare.voter = id_;
  prepare.sig = signer_.Sign(prepare.Header(PbftPrepareMsg::kDomain));
  SendToMany(config_.AllReplicas(), prepare.ToMessage());
  RecordVote(slot.accept_votes, vote_digest, id_, prepare.sig);
}

void PbftCoreReplica::HandlePrepare(PrincipalId from, PbftPrepareMsg msg) {
  if (msg.view != view_ || in_view_change_) return;
  if (msg.voter != from || !IsReplicaId(msg.voter)) return;
  if (msg.seq <= ckpt_.stable_seq() || msg.seq > ckpt_.stable_seq() + window_) {
    return;
  }
  ChargeVerify();
  if (!FrameVerifyMemoized(msg.voter, kPbftPrepare,
                           [&] { return msg.Verify(*keystore_); })) {
    return;
  }
  SlotCore& slot = log_.Slot(msg.seq);
  RecordVote(slot.accept_votes, msg.digest, msg.voter, msg.sig);
  CheckPrepared(msg.seq, slot);
}

void PbftCoreReplica::CheckPrepared(uint64_t seq, SlotCore& slot) {
  if (slot.prepared || !slot.has_batch) return;
  if (static_cast<int>(slot.accept_votes.Count(slot.digest)) <
      quorums_.agreement) {
    return;
  }
  slot.prepared = true;
  if (!slot.commit_sent) {
    slot.commit_sent = true;
    Digest vote_digest = slot.digest;
    if (HasByz(kByzWrongVotes)) vote_digest.data()[0] ^= 0xff;
    ChargeSign();
    PbftCommitMsg commit;
    commit.view = view_;
    commit.seq = seq;
    commit.digest = vote_digest;
    commit.voter = id_;
    commit.sig = signer_.Sign(commit.Header(PbftCommitMsg::kDomain));
    SendToMany(config_.AllReplicas(), commit.ToMessage());
    RecordVote(slot.commit_votes, vote_digest, id_, commit.sig);
  }
  CheckCommitted(seq, slot);
}

void PbftCoreReplica::HandleCommit(PrincipalId from, PbftCommitMsg msg) {
  if (msg.view != view_ || in_view_change_) return;
  if (msg.voter != from || !IsReplicaId(msg.voter)) return;
  if (msg.seq <= ckpt_.stable_seq() || msg.seq > ckpt_.stable_seq() + window_) {
    return;
  }
  ChargeVerify();
  if (!FrameVerifyMemoized(msg.voter, kPbftCommit,
                           [&] { return msg.Verify(*keystore_); })) {
    return;
  }
  SlotCore& slot = log_.Slot(msg.seq);
  RecordVote(slot.commit_votes, msg.digest, msg.voter, msg.sig);
  CheckCommitted(msg.seq, slot);
}

void PbftCoreReplica::CheckCommitted(uint64_t seq, SlotCore& slot) {
  if (slot.committed || !slot.prepared) return;
  if (static_cast<int>(slot.commit_votes.Count(slot.digest)) <
      quorums_.commit) {
    return;
  }
  std::vector<ExecutedRequest> executed = commits().Commit(seq, slot);
  for (const ExecutedRequest& ex : executed) {
    if (!(ex.duplicate && ex.result.empty())) SendReply(ex);
  }
  MaybeCheckpoint();
  RestartOrDisarmViewTimer();
  if (IsPrimary() && !in_view_change_) TryPropose();
}

void PbftCoreReplica::SendReply(const ExecutedRequest& executed) {
  Reply reply;
  reply.view = view_;
  reply.timestamp = executed.request.timestamp;
  reply.replica = id_;
  reply.result = executed.result;
  if (HasByz(kByzLieToClients) && !reply.result.empty()) {
    reply.result[0] ^= 0xff;
  }
  reply.Sign(signer_);
  ChargeMac();
  SendTo(executed.request.client, reply.ToMessage());
}

// ---------------------------------------------------------------------------
// Checkpoints / state transfer
// ---------------------------------------------------------------------------

void PbftCoreReplica::MaybeCheckpoint() {
  const uint64_t executed = exec_.last_executed();
  if (!ckpt_.Due(executed)) return;
  ckpt_.NoteTaken(executed);
  Bytes snapshot = exec_.Snapshot();
  ChargeHash(snapshot.size());
  const Digest digest = Digest::Of(snapshot);
  durable().SaveSnapshot(executed, digest, snapshot);
  ckpt_.Buffer(executed, digest, std::move(snapshot));

  CheckpointMsg msg;
  msg.seq = executed;
  msg.state_digest = digest;
  msg.replica = id_;
  ChargeSign();
  msg.Sign(signer_);
  SendToMany(config_.AllReplicas(), FrameMessage(kPbftCheckpoint, msg));
  CountCheckpointVote(msg);
}

void PbftCoreReplica::HandleCheckpoint(PrincipalId from, CheckpointMsg msg) {
  if (msg.replica != from || !IsReplicaId(from)) return;
  if (msg.seq <= ckpt_.stable_seq()) return;
  ChargeVerify();
  if (!FrameVerifyMemoized(msg.replica, kPbftCheckpoint,
                           [&] { return msg.Verify(*keystore_); })) {
    return;
  }
  CountCheckpointVote(msg);
  // If many peers checkpoint far ahead of us we fell behind; the vote path
  // (quorum then AdvanceStable) normally handles it, but when our own vote
  // can never arrive (we are stuck), fetch once the gap exceeds a period.
  if (msg.seq > exec_.last_executed() +
                    static_cast<uint64_t>(config_.checkpoint_period)) {
    RequestStateFrom(msg.replica);
  }
}

void PbftCoreReplica::CountCheckpointVote(const CheckpointMsg& msg) {
  const auto& signers = ckpt_.AddVote(msg);
  if (static_cast<int>(signers.size()) >= quorums_.checkpoint) {
    CheckpointCert cert;
    PrincipalId helper = id_;
    for (const auto& [signer, m] : signers) {
      cert.Add(m);
      if (signer != id_) helper = signer;
    }
    AdvanceStable(msg.seq, msg.state_digest, std::move(cert), helper);
  }
}

void PbftCoreReplica::AdvanceStable(uint64_t seq, const Digest& digest,
                                    CheckpointCert cert, PrincipalId helper) {
  if (seq <= ckpt_.stable_seq()) return;
  durable().NoteStable(seq, cert);
  const bool installed = ckpt_.Advance(seq, digest, std::move(cert));
  if (!installed && exec_.last_executed() < seq && helper != id_) {
    RequestStateFrom(helper);
  }
  log_.Reclaim(seq);
  NoteCheckpointGc();  // scratch arena rewinds at the next message boundary
  if (IsPrimary() && !in_view_change_) TryPropose();  // window may have moved
}

void PbftCoreReplica::RequestStateFrom(PrincipalId target) {
  if (target == id_) return;
  if (now() - last_state_request_ < Millis(20)) return;
  last_state_request_ = now();
  ++stats_.state_transfers;
  StateRequestMsg request{exec_.last_executed()};
  SendTo(target, request.ToMessage(kPbftStateRequest));
}

void PbftCoreReplica::HandleStateRequest(PrincipalId from, StateRequestMsg msg) {
  if (!ckpt_.has_stable_snapshot() ||
      ckpt_.stable_seq() <= msg.last_executed) {
    return;
  }
  StateResponseMsg response;
  response.cert = ckpt_.stable_cert();
  response.snapshot = ckpt_.stable_snapshot();
  SendTo(from, response.ToMessage(kPbftStateResponse));
}

void PbftCoreReplica::HandleStateResponse(PrincipalId from,
                                          StateResponseMsg msg) {
  (void)from;
  CheckpointCert cert = std::move(msg.cert);
  Bytes snapshot = std::move(msg.snapshot);
  if (cert.IsGenesis() || cert.seq() <= exec_.last_executed()) return;
  ChargeVerify(static_cast<int>(cert.msgs().size()));
  if (!cert.Verify(*keystore_, quorums_.checkpoint,
                   [this](PrincipalId r) { return IsReplicaId(r); })) {
    return;
  }
  ChargeHash(snapshot.size());
  if (Digest::Of(snapshot) != cert.state_digest()) return;
  const uint64_t seq = cert.seq();
  if (!exec_.Restore(snapshot, seq).ok()) return;
  const Digest digest = cert.state_digest();
  // Persist the transferred checkpoint too: a restart must not come back
  // below a state the replica already executed past.
  durable().SaveSnapshot(seq, digest, snapshot);
  durable().NoteStable(seq, cert);
  ckpt_.InstallRestored(seq, digest, std::move(cert), std::move(snapshot));
  log_.Reclaim(seq);
  NoteCheckpointGc();  // scratch arena rewinds at the next message boundary
}

void PbftCoreReplica::OnDurableRestore(const RecoveredImage& image) {
  // Rejoin in the last durably-entered view: voting in an older view after
  // a restart could double-vote against the pre-crash incarnation.
  if (image.has_view) view_ = image.view;
  // The newest CERTIFIED checkpoint restores as stable; newer certless
  // snapshots re-enter the tracker as buffered, exactly as on the cutting
  // path, so the stability vote flow resumes where it stopped.
  if (const storage::RecoveredSnapshot* stable = image.LatestStable()) {
    ckpt_.InstallRestored(stable->seq, stable->digest, stable->cert,
                          stable->bytes);
    log_.Reclaim(stable->seq);
  }
  for (const auto& snap : image.snapshots) {
    if (snap.seq > ckpt_.stable_seq()) {
      ckpt_.Buffer(snap.seq, snap.digest, snap.bytes);
    }
  }
  if (const storage::RecoveredSnapshot* latest = image.Latest()) {
    if (latest->seq > ckpt_.last_checkpoint_seq()) {
      ckpt_.NoteTaken(latest->seq);
    }
  }
}

// ---------------------------------------------------------------------------
// View change
// ---------------------------------------------------------------------------

void PbftCoreReplica::ArmViewTimer() {
  if (view_timer_ != 0 || in_view_change_) return;
  // Do not count our own CPU backlog against the primary (see the SeeMoRe
  // replica for the full rationale: timers that ignore post-view-change
  // re-agreement work livelock the cluster).
  view_timer_ = StartTimer(current_vc_timeout_ + CpuBacklog(), [this] {
    view_timer_ = 0;
    StartViewChange(view_ + 1);
  });
}

void PbftCoreReplica::RestartOrDisarmViewTimer() {
  CancelTimer(view_timer_);
  current_vc_timeout_ = config_.view_change_timeout;
  if (log_.UncommittedSlots() > 0) ArmViewTimer();
}

void PbftCoreReplica::StartViewChange(uint64_t new_view) {
  if (new_view <= view_ || (in_view_change_ && new_view <= vc_target_)) return;
  in_view_change_ = true;
  vc_target_ = new_view;
  ++stats_.view_changes_started;
  CancelTimer(view_timer_);

  std::vector<PreparedProof> proofs;
  const uint64_t stable = ckpt_.stable_seq();
  log_.ForEachAscending([&](uint64_t seq, const SlotCore& slot) {
    if (!slot.prepared || seq <= stable) return;
    PreparedProof proof;
    proof.view = slot.view;
    proof.seq = seq;
    proof.digest = slot.digest;
    proof.batch = slot.batch;
    proof.primary_sig = slot.primary_sig;
    proof.prepares =
        slot.accept_votes.SignaturesFor(slot.digest).SortedEntries();
    proofs.push_back(std::move(proof));
  });
  ChargeSign();
  const Bytes raw = PbftViewChangeMsg::Build(new_view, stable,
                                             ckpt_.stable_cert(), proofs,
                                             signer_);
  SendToMany(config_.AllReplicas(), raw);

  Result<ViewChangeRecord> record = ParseViewChange(raw, id_);
  if (record.ok()) {
    vc_msgs_[new_view][id_] = std::move(record).value();
  }
  if (config_.FlatPrimary(new_view) == id_) MaybeFormNewView(new_view);

  current_vc_timeout_ = std::min<SimTime>(current_vc_timeout_ * 2, Seconds(2));
  view_timer_ = StartTimer(current_vc_timeout_ + CpuBacklog(), [this] {
    view_timer_ = 0;
    if (in_view_change_) StartViewChange(vc_target_ + 1);
  });
}

Result<PbftCoreReplica::ViewChangeRecord> PbftCoreReplica::ParseViewChange(
    const Bytes& raw, PrincipalId from) {
  SEEMORE_ASSIGN_OR_RETURN(PbftViewChangeMsg msg,
                           PbftViewChangeMsg::DecodeFrom(raw, window_ + 1));
  return ValidateViewChange(std::move(msg), raw, from);
}

Result<PbftCoreReplica::ViewChangeRecord> PbftCoreReplica::ValidateViewChange(
    PbftViewChangeMsg msg, const Bytes& raw, PrincipalId from) {
  if (msg.sender != from) return Status::Corruption("sender mismatch");
  if (!msg.VerifySignature(*keystore_, raw)) {
    return Status::Corruption("bad VC signature");
  }
  ViewChangeRecord record;
  record.raw = raw;
  record.stable_seq = msg.stable_seq;
  record.cert = std::move(msg.cert);
  // Validate the embedded certificates now so the new-view computation can
  // trust every stored record.
  if (!record.cert.Verify(*keystore_, quorums_.checkpoint,
                          [this](PrincipalId r) { return IsReplicaId(r); })) {
    return Status::Corruption("bad checkpoint cert in VC");
  }
  for (PreparedProof& proof : msg.proofs) {
    if (proof.seq <= record.stable_seq) {
      return Status::Corruption("inconsistent proof seq");
    }
    if (!proof.Verify(*keystore_, config_.FlatPrimary(proof.view),
                      quorums_.agreement,
                      [this](PrincipalId r) { return IsReplicaId(r); })) {
      return Status::Corruption("invalid prepared proof");
    }
    const uint64_t seq = proof.seq;
    if (!record.proofs.emplace(seq, std::move(proof)).second) {
      return Status::Corruption("duplicate proof seq");
    }
  }
  return record;
}

void PbftCoreReplica::HandleViewChange(PrincipalId from, const Bytes& raw) {
  // Peek the target view before paying full validation.
  const uint64_t new_view = PbftViewChangeMsg::PeekNewView(raw);
  if (new_view <= view_) return;
  // Full parse + signature + certificate verification.
  ChargeVerify(2);
  Result<ViewChangeRecord> record_or = ParseViewChange(raw, from);
  if (!record_or.ok()) return;
  vc_msgs_[new_view][from] = std::move(record_or).value();
  MaybeJoinViewChange();
  if (config_.FlatPrimary(new_view) == id_) MaybeFormNewView(new_view);
}

void PbftCoreReplica::MaybeJoinViewChange() {
  // Join the lowest view > view_ for which vc_join distinct replicas have
  // asked — prevents a lone Byzantine node from forcing view changes while
  // guaranteeing we follow the honest majority.
  for (const auto& [target, records] : vc_msgs_) {
    if (target <= view_) continue;
    if (static_cast<int>(records.size()) >= quorums_.vc_join &&
        (!in_view_change_ || target > vc_target_)) {
      StartViewChange(target);
      return;
    }
  }
}

std::pair<uint64_t, std::map<uint64_t, PbftCoreReplica::Proposal>>
PbftCoreReplica::ComputeNewViewProposals(
    const std::map<PrincipalId, ViewChangeRecord>& records) const {
  uint64_t max_stable = 0;
  uint64_t max_seq = 0;
  for (const auto& [sender, record] : records) {
    max_stable = std::max(max_stable, record.stable_seq);
    if (!record.proofs.empty()) {
      max_seq = std::max(max_seq, record.proofs.rbegin()->first);
    }
  }
  std::map<uint64_t, Proposal> proposals;
  std::map<uint64_t, uint64_t> proposal_views;
  for (const auto& [sender, record] : records) {
    for (const auto& [seq, proof] : record.proofs) {
      if (seq <= max_stable) continue;
      auto it = proposal_views.find(seq);
      if (it == proposal_views.end() || proof.view > it->second) {
        proposal_views[seq] = proof.view;
        proposals[seq] = Proposal{proof.digest, proof.batch};
      }
    }
  }
  // Fill holes with no-ops.
  for (uint64_t seq = max_stable + 1; seq <= max_seq; ++seq) {
    if (proposals.count(seq) == 0) {
      Batch noop = Batch::Noop();
      proposals[seq] = Proposal{noop.ComputeDigest(), std::move(noop)};
    }
  }
  return {max_stable, std::move(proposals)};
}

void PbftCoreReplica::MaybeFormNewView(uint64_t new_view) {
  if (view_ >= new_view) return;
  auto it = vc_msgs_.find(new_view);
  if (it == vc_msgs_.end()) return;
  const auto& records = it->second;
  if (static_cast<int>(records.size()) < quorums_.view_change) return;

  auto [max_stable, proposals] = ComputeNewViewProposals(records);

  PbftNewViewMsg nv;
  nv.new_view = new_view;
  for (const auto& [sender, record] : records) {
    nv.view_changes.push_back(record.raw);
  }
  for (auto& [seq, proposal] : proposals) {
    ChargeSign();
    PbftNewViewEntry entry;
    entry.seq = seq;
    entry.digest = proposal.digest;
    entry.sig = signer_.Sign(
        ProposalHeader(kDomainPrePrepare, 0, new_view, seq, proposal.digest));
    nv.entries.push_back(std::move(entry));
  }
  SendToMany(config_.AllReplicas(), nv.ToMessage());

  // Install locally.
  PrincipalId helper = id_;
  for (const auto& [sender, record] : records) {
    if (record.stable_seq == max_stable && sender != id_) helper = sender;
  }
  EnterView(new_view);
  ++stats_.view_changes_completed;
  uint64_t max_seq = max_stable;
  for (auto& [seq, proposal] : proposals) {
    max_seq = std::max(max_seq, seq);
    const SlotCore* prior = log_.Find(seq);
    const bool was_committed =
        (prior != nullptr && prior->committed) || exec_.HasCommitted(seq);
    // Fresh slot: stale votes must not count toward the new view.
    SlotCore& slot = log_.ResetSlot(seq);
    slot.batch = std::move(proposal.batch);
    slot.has_batch = true;
    slot.digest = proposal.digest;
    slot.view = new_view;
    slot.primary_sig = signer_.Sign(
        ProposalHeader(kDomainPrePrepare, 0, new_view, seq, proposal.digest));
    slot.committed = was_committed;
  }
  if (max_stable > ckpt_.stable_seq() && max_stable > exec_.last_executed() &&
      helper != id_) {
    RequestStateFrom(helper);
  }
  pipeline_.OverrideNextSeq(max_seq + 1);
  if (log_.UncommittedSlots() > 0) ArmViewTimer();
  TryPropose();
}

void PbftCoreReplica::HandleNewView(PrincipalId from, PbftNewViewMsg msg) {
  const uint64_t new_view = msg.new_view;
  if (config_.FlatPrimary(new_view) != from) return;
  if (new_view <= view_) return;

  // Re-validate the embedded view-change quorum.
  std::map<PrincipalId, ViewChangeRecord> records;
  ChargeVerify(static_cast<int>(msg.view_changes.size()) * 2);
  for (const Bytes& raw : msg.view_changes) {
    // The sender id is part of the signed body; decode it from the frame
    // itself instead of trusting the new primary.
    Result<PbftViewChangeMsg> vc_or =
        PbftViewChangeMsg::DecodeFrom(raw, window_ + 1);
    if (!vc_or.ok()) return;
    if (vc_or.value().new_view != new_view) return;  // VC for another view
    const PrincipalId sender = vc_or.value().sender;
    Result<ViewChangeRecord> record_or =
        ValidateViewChange(std::move(vc_or).value(), raw, sender);
    if (!record_or.ok()) return;
    records[sender] = std::move(record_or).value();
  }
  if (static_cast<int>(records.size()) < quorums_.view_change) return;

  auto [max_stable, proposals] = ComputeNewViewProposals(records);
  if (msg.entries.size() != proposals.size()) return;
  std::set<uint64_t> seen_seqs;
  for (PbftNewViewEntry& entry : msg.entries) {
    // Each proposal must be matched exactly once: a duplicated seq would
    // let a Byzantine primary silently omit a required re-proposal while
    // still passing the size check above.
    if (!seen_seqs.insert(entry.seq).second) return;
    auto expect = proposals.find(entry.seq);
    if (expect == proposals.end() || expect->second.digest != entry.digest) {
      return;  // primary diverged from the deterministic computation
    }
    ChargeVerify();
    if (!keystore_->Verify(from,
                           ProposalHeader(kDomainPrePrepare, 0, new_view,
                                          entry.seq, entry.digest),
                           entry.sig)) {
      return;
    }
  }

  EnterView(new_view);
  ++stats_.view_changes_completed;
  PrincipalId helper = from;
  if (max_stable > exec_.last_executed()) RequestStateFrom(helper);
  for (PbftNewViewEntry& entry : msg.entries) {
    if (entry.seq <= ckpt_.stable_seq()) continue;
    // Already-committed sequence numbers still run the prepare/commit vote
    // exchange so peers that missed them pre-view-change can assemble their
    // quorums; the committed flag prevents re-execution.
    const SlotCore* prior = log_.Find(entry.seq);
    const bool was_committed = (prior != nullptr && prior->committed) ||
                               exec_.HasCommitted(entry.seq);
    SlotCore& slot = log_.ResetSlot(entry.seq);
    slot.batch = std::move(proposals[entry.seq].batch);
    slot.has_batch = true;
    slot.digest = entry.digest;
    slot.view = new_view;
    slot.primary_sig = entry.sig;
    slot.committed = was_committed;
    SendPrepare(entry.seq, slot);
    CheckPrepared(entry.seq, slot);
  }
  if (log_.UncommittedSlots() > 0) ArmViewTimer();
}

void PbftCoreReplica::EnterView(uint64_t view) {
  view_ = view;
  ClearProposerQuiescence();
  durable().NoteView(view, 0);
  in_view_change_ = false;
  vc_target_ = 0;
  CancelTimer(view_timer_);
  // Grace period: the re-proposed log needs a full re-agreement round under
  // post-view-change backlog before anyone may suspect the new primary.
  current_vc_timeout_ = config_.view_change_timeout * 3;
  // A view change may have nooped requests the admission table says were
  // handled; client retransmissions must be accepted afresh (the execution
  // engine still deduplicates anything that really committed).
  pipeline_.ForgetAdmissions();
  // Uncommitted slots are superseded by the NEW-VIEW the caller installs
  // next; keeping them would re-arm the view timer forever.
  log_.EraseUncommitted();
  for (auto it = vc_msgs_.begin(); it != vc_msgs_.end();) {
    it = it->first <= view ? vc_msgs_.erase(it) : std::next(it);
  }
}

}  // namespace seemore
