// PBFT baseline (Castro & Liskov, OSDI'99), the paper's "BFT" comparator:
// 3 communication phases (pre-prepare, prepare, commit), O(n²) messages,
// network 3f+1, quorum 2f+1, full view change with prepared certificates,
// quorum checkpoints and state transfer.
//
// The implementation is written as a quorum-parameterized core
// (PbftCoreReplica) because the paper's S-UpRight comparator is "a PBFT-like
// protocol with fewer nodes": identical message flow over N = 3m+2c+1
// replicas with quorums of 2m+c+1 (see supright_replica.h).

#ifndef SEEMORE_BASELINES_PBFT_PBFT_REPLICA_H_
#define SEEMORE_BASELINES_PBFT_PBFT_REPLICA_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "consensus/checkpoint.h"
#include "consensus/instance_log.h"
#include "consensus/primary_pipeline.h"
#include "consensus/proofs.h"
#include "consensus/replica_base.h"
#include "wire/messages.h"

namespace seemore {

/// Quorum thresholds that differentiate PBFT from S-UpRight.
struct PbftQuorums {
  int agreement;   // matching PREPAREs to become prepared (PBFT: 2f)
  int commit;      // matching COMMITs to commit           (PBFT: 2f+1)
  int view_change; // VIEW-CHANGE messages for a new view  (PBFT: 2f+1)
  int checkpoint;  // matching CHECKPOINTs for stability   (PBFT: 2f+1)
  int vc_join;     // VCs for higher views that force us to join (PBFT: f+1)
};

class PbftCoreReplica : public ReplicaBase {
 public:
  PbftCoreReplica(Transport* transport, TimerService* timers,
                  const KeyStore* keystore, CryptoMemo* memo, PrincipalId id,
                  const ClusterConfig& config,
                  std::unique_ptr<StateMachine> state_machine,
                  const CostModel& costs, const PbftQuorums& quorums);

  uint64_t view() const { return view_; }
  bool IsPrimary() const { return config_.FlatPrimary(view_) == id_; }
  uint64_t last_executed() const { return exec_.last_executed(); }
  uint64_t stable_checkpoint() const { return ckpt_.stable_seq(); }
  bool in_view_change() const { return in_view_change_; }
  /// Diagnostics: slots proposed but not yet committed (tests, debugging).
  int uncommitted_slots() const { return log_.UncommittedSlots(); }
  /// Diagnostics: live instance-log slots (property tests bound this).
  size_t log_occupancy() const { return log_.occupied(); }

 protected:
  void HandleMessage(PrincipalId from, const Payload& frame) override;
  void OnDurableRestore(const RecoveredImage& image) override;

 private:
  struct ViewChangeRecord {
    Bytes raw;  // full message, embedded into NEW-VIEW as proof
    uint64_t stable_seq = 0;
    CheckpointCert cert;
    std::map<uint64_t, PreparedProof> proofs;
  };

  /// Chosen value for one re-proposed sequence number.
  struct Proposal {
    Digest digest;
    Batch batch;
  };

  // ----- normal case -----
  void HandleRequest(PrincipalId from, Request request);
  void PrimaryEnqueue(Request request);
  void TryPropose();
  void EmitPrePrepare(uint64_t seq, const Batch& batch, const Bytes& encoded);
  void HandlePrePrepare(PrincipalId from, PbftPrePrepareMsg msg);
  void HandlePrepare(PrincipalId from, PbftPrepareMsg msg);
  void HandleCommit(PrincipalId from, PbftCommitMsg msg);
  void SendPrepare(uint64_t seq, SlotCore& slot);
  void CheckPrepared(uint64_t seq, SlotCore& slot);
  void CheckCommitted(uint64_t seq, SlotCore& slot);
  void SendReply(const ExecutedRequest& executed);

  // ----- checkpoints / state transfer -----
  void MaybeCheckpoint();
  void HandleCheckpoint(PrincipalId from, CheckpointMsg msg);
  void CountCheckpointVote(const CheckpointMsg& msg);
  void AdvanceStable(uint64_t seq, const Digest& digest, CheckpointCert cert,
                     PrincipalId helper);
  void HandleStateRequest(PrincipalId from, StateRequestMsg msg);
  void HandleStateResponse(PrincipalId from, StateResponseMsg msg);
  void RequestStateFrom(PrincipalId target);

  // ----- view change -----
  void ArmViewTimer();
  void RestartOrDisarmViewTimer();
  void StartViewChange(uint64_t new_view);
  /// Structural decode (wire/messages.h) + semantic validation of a raw
  /// VIEW-CHANGE frame: body signature, checkpoint cert, prepared proofs.
  Result<ViewChangeRecord> ParseViewChange(const Bytes& raw, PrincipalId from);
  /// Semantic half of ParseViewChange for an already-decoded frame (avoids
  /// double decoding when NEW-VIEW processing has the typed message).
  Result<ViewChangeRecord> ValidateViewChange(PbftViewChangeMsg msg,
                                              const Bytes& raw,
                                              PrincipalId from);
  void HandleViewChange(PrincipalId from, const Bytes& raw);
  void MaybeJoinViewChange();
  void MaybeFormNewView(uint64_t new_view);
  /// Deterministic re-proposal computation shared by the new primary and by
  /// backups validating a NEW-VIEW: (max stable, proposals per seq).
  std::pair<uint64_t, std::map<uint64_t, Proposal>> ComputeNewViewProposals(
      const std::map<PrincipalId, ViewChangeRecord>& records) const;
  void HandleNewView(PrincipalId from, PbftNewViewMsg msg);
  void EnterView(uint64_t view);
  bool IsReplicaId(PrincipalId id) const { return id >= 0 && id < config_.n(); }

  const PbftQuorums quorums_;
  uint64_t view_ = 0;
  bool in_view_change_ = false;
  uint64_t vc_target_ = 0;
  uint64_t window_;  // max seqs above the stable checkpoint we accept

  /// The shared consensus core (consensus/): the slot log, the primary's
  /// proposal pipeline and the checkpoint state.
  InstanceLog log_;
  PrimaryPipeline pipeline_;
  CheckpointTracker ckpt_;

  std::map<uint64_t, std::map<PrincipalId, ViewChangeRecord>> vc_msgs_;

  EventId view_timer_ = 0;
  SimTime current_vc_timeout_ = 0;
  /// Last time we asked a peer for a snapshot (rate limit; a lost response
  /// must not wedge recovery).
  SimTime last_state_request_ = -Seconds(1);
};

/// PBFT proper: N = 3f+1, quorums per Castro & Liskov.
class PbftReplica : public PbftCoreReplica {
 public:
  PbftReplica(Transport* transport, TimerService* timers,
              const KeyStore* keystore, CryptoMemo* memo, PrincipalId id,
              const ClusterConfig& config,
              std::unique_ptr<StateMachine> state_machine,
              const CostModel& costs)
      : PbftCoreReplica(transport, timers, keystore, memo, id, config,
                        std::move(state_machine), costs,
                        PbftQuorums{/*agreement=*/2 * config.f,
                                    /*commit=*/2 * config.f + 1,
                                    /*view_change=*/2 * config.f + 1,
                                    /*checkpoint=*/2 * config.f + 1,
                                    /*vc_join=*/config.f + 1}) {}
};

}  // namespace seemore

#endif  // SEEMORE_BASELINES_PBFT_PBFT_REPLICA_H_
