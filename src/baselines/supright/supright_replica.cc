#include "baselines/supright/supright_replica.h"

// S-UpRight is PbftCoreReplica with hybrid-model quorums; all behaviour
// lives in the core. This translation unit exists so the class has a home
// for future S-UpRight-specific extensions (e.g. UpRight's separation of
// ordering and execution).
