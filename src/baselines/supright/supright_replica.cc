#include "baselines/supright/supright_replica.h"

#include <cstdio>

// S-UpRight is PbftCoreReplica with hybrid-model quorums; the agreement,
// checkpoint and view-change behaviour all live in the core. This
// translation unit pins down the quorum mapping and documents the parts of
// UpRight proper that the paper's comparator intentionally omits.

namespace seemore {

PbftQuorums SUpRightReplica::QuorumsFor(const ClusterConfig& config) {
  return PbftQuorums{/*agreement=*/2 * config.m + config.c,
                     /*commit=*/2 * config.m + config.c + 1,
                     /*view_change=*/2 * config.m + config.c + 1,
                     /*checkpoint=*/2 * config.m + config.c + 1,
                     /*vc_join=*/config.m + 1};
}

SUpRightReplica::SUpRightReplica(Transport* transport, TimerService* timers,
                                 const KeyStore* keystore, CryptoMemo* memo,
                                 PrincipalId id, const ClusterConfig& config,
                                 std::unique_ptr<StateMachine> state_machine,
                                 const CostModel& costs)
    : PbftCoreReplica(transport, timers, keystore, memo, id, config,
                      std::move(state_machine), costs, QuorumsFor(config)) {}

std::vector<std::string> SUpRightReplica::UnimplementedFeatures() {
  return {
      "speculative execution (UpRight's Zyzzyva-style fast path; the paper's "
      "comparator is explicitly pessimistic PBFT-like)",
      "separation of request-quorum, order and execution stages into "
      "independently sized node sets (all three run on every replica here)",
      "MAC-vector authenticators between clients and replicas (clients sign "
      "requests; the cost model prices the difference instead)",
      "batched state-digest checkpoints with incremental hashing (full "
      "snapshots are hashed at every checkpoint period)",
  };
}

std::string SUpRightReplica::Describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "S-UpRight: N=%d (S=%d private + P=%d public), quorum %d, "
                "PBFT message flow, %d UpRight features unmodeled",
                config_.n(), config_.s, config_.p,
                2 * config_.m + config_.c + 1,
                static_cast<int>(UnimplementedFeatures().size()));
  return buf;
}

}  // namespace seemore
