// S-UpRight: the paper's simplified UpRight comparator (§6).
//
// UpRight's *model* — tolerate c crash plus m Byzantine failures with
// N = 3m + 2c + 1 replicas and quorums of 2m + c + 1 — combined with a
// pessimistic PBFT-style agreement protocol instead of UpRight's speculative
// stack, exactly as the paper describes: "we use a PBFT-like protocol
// (i.e., PBFT protocol with less number of nodes)".
//
// Unlike SeeMoRe, S-UpRight does NOT know where crash or Byzantine faults
// can occur: any replica may be the primary, every phase runs over all
// N replicas, and all signatures/verifications of full PBFT are paid.

#ifndef SEEMORE_BASELINES_SUPRIGHT_SUPRIGHT_REPLICA_H_
#define SEEMORE_BASELINES_SUPRIGHT_SUPRIGHT_REPLICA_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/pbft/pbft_replica.h"

namespace seemore {

class SUpRightReplica : public PbftCoreReplica {
 public:
  SUpRightReplica(Transport* transport, TimerService* timers,
                  const KeyStore* keystore, CryptoMemo* memo, PrincipalId id,
                  const ClusterConfig& config,
                  std::unique_ptr<StateMachine> state_machine,
                  const CostModel& costs);

  /// The hybrid-model quorums this comparator runs with (all equal to
  /// 2m+c+1 except the prepare threshold 2m+c and the join bound m+1).
  static PbftQuorums QuorumsFor(const ClusterConfig& config);

  /// UpRight-proper features deliberately NOT modeled by this comparator,
  /// with the reason. Surfaced by tools/tests so nobody mistakes S-UpRight
  /// for a faithful UpRight implementation.
  static std::vector<std::string> UnimplementedFeatures();

  /// One-line description for reports: topology, quorums, caveat count.
  std::string Describe() const;
};

}  // namespace seemore

#endif  // SEEMORE_BASELINES_SUPRIGHT_SUPRIGHT_REPLICA_H_
