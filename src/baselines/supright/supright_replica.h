// S-UpRight: the paper's simplified UpRight comparator (§6).
//
// UpRight's *model* — tolerate c crash plus m Byzantine failures with
// N = 3m + 2c + 1 replicas and quorums of 2m + c + 1 — combined with a
// pessimistic PBFT-style agreement protocol instead of UpRight's speculative
// stack, exactly as the paper describes: "we use a PBFT-like protocol
// (i.e., PBFT protocol with less number of nodes)".
//
// Unlike SeeMoRe, S-UpRight does NOT know where crash or Byzantine faults
// can occur: any replica may be the primary, every phase runs over all
// N replicas, and all signatures/verifications of full PBFT are paid.

#ifndef SEEMORE_BASELINES_SUPRIGHT_SUPRIGHT_REPLICA_H_
#define SEEMORE_BASELINES_SUPRIGHT_SUPRIGHT_REPLICA_H_

#include <memory>
#include <utility>

#include "baselines/pbft/pbft_replica.h"

namespace seemore {

class SUpRightReplica : public PbftCoreReplica {
 public:
  SUpRightReplica(Simulator* sim, SimNetwork* net, const KeyStore* keystore,
                  PrincipalId id, const ClusterConfig& config,
                  std::unique_ptr<StateMachine> state_machine,
                  const CostModel& costs)
      : PbftCoreReplica(
            sim, net, keystore, id, config, std::move(state_machine), costs,
            PbftQuorums{/*agreement=*/2 * config.m + config.c,
                        /*commit=*/2 * config.m + config.c + 1,
                        /*view_change=*/2 * config.m + config.c + 1,
                        /*checkpoint=*/2 * config.m + config.c + 1,
                        /*vc_join=*/config.m + 1}) {}
};

}  // namespace seemore

#endif  // SEEMORE_BASELINES_SUPRIGHT_SUPRIGHT_REPLICA_H_
