#include "baselines/paxos/paxos_replica.h"

#include <algorithm>

#include "util/logging.h"

namespace seemore {

PaxosReplica::PaxosReplica(Transport* transport, TimerService* timers,
                           const KeyStore* keystore, CryptoMemo* memo,
                           PrincipalId id, const ClusterConfig& config,
                           std::unique_ptr<StateMachine> state_machine,
                           const CostModel& costs)
    : ReplicaBase(transport, timers, keystore, memo, id, config,
                  std::move(state_machine), costs),
      log_(Window()),
      pipeline_(config.batch_max, config.pipeline_max),
      ckpt_(config.checkpoint_period) {
  current_vc_timeout_ = config_.view_change_timeout;
}

void PaxosReplica::HandleMessage(PrincipalId from, const Payload& frame) {
  Decoder dec = FrameDecoder(frame);
  const uint8_t tag = dec.GetU8();
  if (!dec.ok()) return;
  // Channels are pairwise authenticated: protocol-internal messages are only
  // ever legitimate on replica-to-replica channels. (In the crash model this
  // is the ONLY defense — there are no signatures to reject forgeries.)
  if (tag != kMsgRequest && (from < 0 || from >= config_.n())) return;
  // Channel MAC check on every protocol message.
  ChargeMac();
  switch (tag) {
    case kMsgRequest:
      DispatchTyped(this, from, dec, &PaxosReplica::HandleRequest);
      break;
    case kPaxAccept:
      DispatchTyped(this, from, dec, &PaxosReplica::HandleAccept);
      break;
    case kPaxAck:
      DispatchTyped(this, from, dec, &PaxosReplica::HandleAck);
      break;
    case kPaxCommit:
      DispatchTyped(this, from, dec, &PaxosReplica::HandleCommit);
      break;
    case kPaxViewChange: {
      Result<PaxosViewChangeMsg> msg =
          PaxosViewChangeMsg::DecodeFrom(dec, Window());
      if (msg.ok()) HandleViewChange(from, std::move(msg).value());
      break;
    }
    case kPaxNewView: {
      Result<PaxosNewViewMsg> msg =
          PaxosNewViewMsg::DecodeFrom(dec, 1u << 20);
      if (msg.ok()) HandleNewView(from, std::move(msg).value());
      break;
    }
    case kPaxCheckpoint:
      DispatchTyped(this, from, dec, &PaxosReplica::HandleCheckpoint);
      break;
    case kPaxStateRequest:
      DispatchTyped(this, from, dec, &PaxosReplica::HandleStateRequest);
      break;
    case kPaxStateResponse:
      DispatchTyped(this, from, dec, &PaxosReplica::HandleStateResponse);
      break;
    default:
      break;  // unknown tag: ignore
  }
}

// ---------------------------------------------------------------------------
// Normal case
// ---------------------------------------------------------------------------

void PaxosReplica::HandleRequest(PrincipalId from, Request request) {
  // Channel authentication (§3.1): a request arriving directly from a
  // client channel must name that client. Without this, a rogue client
  // could impersonate another and poison its timestamp sequence — the
  // crash-model baseline has no signatures to catch it otherwise.
  if (IsClientPrincipal(from) && from != request.client) return;

  // Retransmission of an executed request: resend the cached reply.
  if (exec_.SeenTimestamp(request.client, request.timestamp)) {
    auto cached = exec_.CachedReply(request.client, request.timestamp);
    if (cached.has_value()) {
      Reply reply;
      reply.mode = 0;
      reply.view = view_;
      reply.timestamp = request.timestamp;
      reply.replica = id_;
      reply.result = *cached;
      reply.Sign(signer_);
      ChargeMac();
      SendTo(request.client, reply.ToMessage());
    }
    return;
  }

  if (IsLeader() && !in_view_change_) {
    LeaderEnqueue(std::move(request));
  } else if (!in_view_change_) {
    // Clients multicast to the whole receiving network, so the primary has
    // its own copy on the first transmission. Seeing the SAME timestamp
    // again means the client timed out: relay to the primary (its copy may
    // have been lost or the client cannot reach it) and arm the liveness
    // timer — if the request still never commits, a view change follows.
    if (from == request.client) {
      if (pipeline_.NoteDirectDelivery(request.client, request.timestamp)) {
        SendTo(config_.FlatPrimary(view_), request.ToMessage());
      }
    }
    ArmViewTimer();
  }
}

void PaxosReplica::LeaderEnqueue(Request request) {
  if (!pipeline_.Admit(request)) return;  // already queued or proposed
  pipeline_.Enqueue(std::move(request));
  TryPropose();
}

void PaxosReplica::TryPropose() {
  if (proposer_quiesced()) return;
  while (pipeline_.CanOpen(log_.UncommittedSlots())) {
    auto [seq, batch] = pipeline_.Open();
    SlotCore& slot = log_.Slot(seq);
    slot.batch = std::move(batch);
    slot.has_batch = true;
    const Bytes encoded = slot.batch.Encode();
    ChargeHash(encoded.size());
    slot.digest = Digest::Of(encoded);
    slot.view = view_;
    RecordVote(slot.plain_votes, slot.digest, id_);

    PaxosAcceptMsg accept{view_, seq, encoded};
    SendToMany(config_.AllReplicas(), accept.ToMessage());
  }
}

void PaxosReplica::HandleAccept(PrincipalId from, PaxosAcceptMsg msg) {
  // Crash model: a claimed higher view from its rightful leader is honest.
  if (msg.view > view_ && config_.FlatPrimary(msg.view) == from) {
    EnterView(msg.view);
  }
  if (msg.view != view_ || in_view_change_) return;
  if (from != config_.FlatPrimary(view_)) return;
  if (msg.seq <= ckpt_.stable_seq()) return;

  Result<Batch> batch_or = Batch::Decode(msg.batch);
  if (!batch_or.ok()) return;

  SlotCore& slot = log_.Slot(msg.seq);
  if (!slot.has_batch) {
    slot.batch = std::move(batch_or).value();
    slot.has_batch = true;
    ChargeHash(msg.batch.size());
    slot.digest = FrameFieldDigest(msg.batch, msg.batch_offset);
    slot.view = msg.view;
  }

  PaxosAckMsg ack{msg.view, msg.seq, slot.digest};
  SendTo(from, ack.ToMessage());
  if (slot.commit_seen && !slot.committed) {
    CommitSlot(msg.seq, slot, /*send_replies=*/false);
  } else {
    ArmViewTimer();
  }
}

void PaxosReplica::HandleAck(PrincipalId from, PaxosAckMsg msg) {
  if (msg.view != view_ || !IsLeader() || in_view_change_) return;
  SlotCore* found = log_.Find(msg.seq);
  if (found == nullptr || !found->has_batch) return;
  SlotCore& slot = *found;
  if (slot.commit_sent) return;  // COMMIT already broadcast
  // The tracker sees every ACK (a conflicting digest flags the sender);
  // only ACKs matching the proposal count toward the quorum.
  RecordVote(slot.plain_votes, msg.digest, from);
  if (msg.digest != slot.digest) return;
  if (static_cast<int>(slot.plain_votes.Count(slot.digest)) >=
      config_.CommitQuorum(config_.initial_mode)) {
    slot.commit_sent = true;
    PaxosCommitMsg commit{view_, msg.seq, slot.digest};
    SendToMany(config_.AllReplicas(), commit.ToMessage());
    if (!slot.committed) CommitSlot(msg.seq, slot, /*send_replies=*/true);
  }
}

void PaxosReplica::HandleCommit(PrincipalId from, PaxosCommitMsg msg) {
  if (msg.view > view_ && config_.FlatPrimary(msg.view) == from) {
    EnterView(msg.view);
  }
  if (from != config_.FlatPrimary(msg.view)) return;
  if (msg.seq <= ckpt_.stable_seq()) return;
  SlotCore* found = log_.Find(msg.seq);
  if (found == nullptr || !found->has_batch) {
    // COMMIT outran the ACCEPT (jitter reordering); remember it.
    log_.Slot(msg.seq).commit_seen = true;
    return;
  }
  SlotCore& slot = *found;
  if (slot.committed || msg.digest != slot.digest) return;
  CommitSlot(msg.seq, slot, /*send_replies=*/false);
}

void PaxosReplica::CommitSlot(uint64_t seq, SlotCore& slot,
                              bool send_replies) {
  std::vector<ExecutedRequest> executed = commits().Commit(seq, slot);
  for (const ExecutedRequest& ex : executed) {
    if (send_replies && !(ex.duplicate && ex.result.empty())) {
      SendReply(ex);
    }
  }
  MaybeCheckpoint();
  RestartOrDisarmViewTimer();
  if (IsLeader() && !in_view_change_) TryPropose();
}

void PaxosReplica::SendReply(const ExecutedRequest& executed) {
  Reply reply;
  reply.mode = 0;
  reply.view = view_;
  reply.timestamp = executed.request.timestamp;
  reply.replica = id_;
  reply.result = executed.result;
  reply.Sign(signer_);
  ChargeMac();  // crash model: replies carry MACs, not signatures
  SendTo(executed.request.client, reply.ToMessage());
}

// ---------------------------------------------------------------------------
// Checkpoints and state transfer
// ---------------------------------------------------------------------------

void PaxosReplica::MaybeCheckpoint() {
  const uint64_t executed = exec_.last_executed();
  if (!ckpt_.Due(executed)) return;
  ckpt_.NoteTaken(executed);
  Bytes snapshot = exec_.Snapshot();
  ChargeHash(snapshot.size());
  const Digest digest = Digest::Of(snapshot);
  durable().SaveSnapshot(executed, digest, snapshot);
  ckpt_.Buffer(executed, digest, std::move(snapshot));

  PaxosCheckpointMsg msg{executed, digest};
  SendToMany(config_.AllReplicas(), msg.ToMessage());
  CountCheckpointVote(executed, digest, id_);
}

void PaxosReplica::HandleCheckpoint(PrincipalId from, PaxosCheckpointMsg msg) {
  if (msg.seq <= ckpt_.stable_seq()) return;
  CountCheckpointVote(msg.seq, msg.digest, from);
  // Crash model: a single announcer is honest. If it is ahead of us we fell
  // behind (lost commits have no protocol-level retransmission); fetch its
  // checkpointed state directly.
  if (msg.seq > exec_.last_executed()) RequestStateFrom(from);
}

void PaxosReplica::CountCheckpointVote(uint64_t seq, const Digest& digest,
                                       PrincipalId voter) {
  // Crash model: votes travel unsigned; wrap them in the shared tracker's
  // CheckpointMsg shape with an empty signature.
  CheckpointMsg vote;
  vote.seq = seq;
  vote.state_digest = digest;
  vote.replica = voter;
  const auto& voters = ckpt_.AddVote(vote);
  if (static_cast<int>(voters.size()) >= config_.f + 1) {
    // Prefer fetching state from another voter, not ourselves.
    PrincipalId helper = id_;
    for (const auto& [v, unused] : voters) {
      if (v != id_) {
        helper = v;
        break;
      }
    }
    AdvanceStable(seq, digest, helper);
  }
}

void PaxosReplica::AdvanceStable(uint64_t seq, const Digest& digest,
                                 PrincipalId helper) {
  if (seq <= ckpt_.stable_seq()) return;
  durable().NoteStable(seq, CheckpointCert::Genesis());
  const bool installed =
      ckpt_.Advance(seq, digest, CheckpointCert::Genesis());
  if (!installed && exec_.last_executed() < seq && helper != id_) {
    // We fell behind the cluster; fetch the checkpointed state.
    RequestStateFrom(helper);
  }
  // Garbage collection (paper §5.1 "State Transfer").
  log_.Reclaim(seq);
  NoteCheckpointGc();  // scratch arena rewinds at the next message boundary
}

void PaxosReplica::RequestStateFrom(PrincipalId target) {
  if (target == id_) return;
  if (now() - last_state_request_ < Millis(20)) return;
  last_state_request_ = now();
  StateRequestMsg request{exec_.last_executed()};
  SendTo(target, request.ToMessage(kPaxStateRequest));
}

void PaxosReplica::HandleStateRequest(PrincipalId from, StateRequestMsg msg) {
  // Serve the newest snapshot we hold: a buffered (not yet stable) one beats
  // the stable one. In the crash model our own claim is trustworthy.
  uint64_t seq = ckpt_.stable_seq();
  const Digest* digest = &ckpt_.stable_digest();
  const Bytes* snapshot = &ckpt_.stable_snapshot();
  CheckpointTracker::Buffered buffered;
  if (ckpt_.LatestBuffered(&buffered) && buffered.seq > seq) {
    seq = buffered.seq;
    digest = buffered.digest;
    snapshot = buffered.snapshot;
  }
  if (snapshot->empty() || seq <= msg.last_executed) return;
  PaxosStateResponseMsg response{seq, *digest, *snapshot};
  SendTo(from, response.ToMessage());
}

void PaxosReplica::HandleStateResponse(PrincipalId from,
                                       PaxosStateResponseMsg msg) {
  (void)from;
  if (msg.seq <= exec_.last_executed()) return;
  ChargeHash(msg.snapshot.size());
  if (Digest::Of(msg.snapshot) != msg.digest) return;
  if (!exec_.Restore(msg.snapshot, msg.seq).ok()) return;
  ++stats_.state_transfers;
  // Persist the transferred checkpoint too: a restart must not come back
  // below a state the replica already executed past.
  durable().SaveSnapshot(msg.seq, msg.digest, msg.snapshot);
  durable().NoteStable(msg.seq, CheckpointCert::Genesis());
  ckpt_.InstallRestored(msg.seq, msg.digest, CheckpointCert::Genesis(),
                        std::move(msg.snapshot));
}

void PaxosReplica::OnDurableRestore(const RecoveredImage& image) {
  // Rejoin in the last durably-entered view: acking in an older view after
  // a restart could contradict the pre-crash incarnation's votes.
  if (image.has_view) view_ = image.view;
  // The newest stable checkpoint restores as stable; newer snapshots
  // re-enter the tracker as buffered, exactly as on the cutting path, so
  // the stability vote flow resumes where it stopped.
  if (const storage::RecoveredSnapshot* stable = image.LatestStable()) {
    ckpt_.InstallRestored(stable->seq, stable->digest,
                          CheckpointCert::Genesis(), stable->bytes);
    log_.Reclaim(stable->seq);
  }
  for (const auto& snap : image.snapshots) {
    if (snap.seq > ckpt_.stable_seq()) {
      ckpt_.Buffer(snap.seq, snap.digest, snap.bytes);
    }
  }
  if (const storage::RecoveredSnapshot* latest = image.Latest()) {
    if (latest->seq > ckpt_.last_checkpoint_seq()) {
      ckpt_.NoteTaken(latest->seq);
    }
  }
}

// ---------------------------------------------------------------------------
// View changes
// ---------------------------------------------------------------------------

void PaxosReplica::ArmViewTimer() {
  if (view_timer_ != 0 || in_view_change_) return;
  // Do not count our own CPU backlog against the primary (see the SeeMoRe
  // replica for the full rationale: timers that ignore post-view-change
  // re-agreement work livelock the cluster).
  view_timer_ = StartTimer(current_vc_timeout_ + CpuBacklog(), [this] {
    view_timer_ = 0;
    StartViewChange(view_ + 1);
  });
}

void PaxosReplica::RestartOrDisarmViewTimer() {
  CancelTimer(view_timer_);
  current_vc_timeout_ = config_.view_change_timeout;
  if (log_.UncommittedSlots() > 0) ArmViewTimer();
}

void PaxosReplica::StartViewChange(uint64_t new_view) {
  if (new_view <= view_ || (in_view_change_ && new_view <= vc_target_)) return;
  in_view_change_ = true;
  vc_target_ = new_view;
  ++stats_.view_changes_started;
  CancelTimer(view_timer_);

  ViewChangeRecord record;
  record.stable_seq = ckpt_.stable_seq();
  PaxosViewChangeMsg msg;
  msg.new_view = new_view;
  msg.stable_seq = ckpt_.stable_seq();
  log_.ForEachAscending([&](uint64_t seq, const SlotCore& slot) {
    if (!slot.has_batch) return;
    record.entries[seq] = {slot.view, slot.batch};
    PaxosVcEntry entry;
    entry.seq = seq;
    entry.view = slot.view;
    entry.batch = slot.batch;
    msg.entries.push_back(std::move(entry));
  });
  SendToMany(config_.AllReplicas(), msg.ToMessage());

  vc_msgs_[new_view][id_] = std::move(record);
  if (config_.FlatPrimary(new_view) == id_) MaybeFormNewView(new_view);

  // Escalate if this view change stalls (next leader may be dead too).
  current_vc_timeout_ = std::min<SimTime>(current_vc_timeout_ * 2, Seconds(2));
  view_timer_ = StartTimer(current_vc_timeout_ + CpuBacklog(), [this] {
    view_timer_ = 0;
    if (in_view_change_) StartViewChange(vc_target_ + 1);
  });
}

void PaxosReplica::HandleViewChange(PrincipalId from, PaxosViewChangeMsg msg) {
  if (msg.new_view <= view_) return;
  ViewChangeRecord record;
  record.stable_seq = msg.stable_seq;
  for (PaxosVcEntry& entry : msg.entries) {
    record.entries[entry.seq] = {entry.view, std::move(entry.batch)};
  }
  const uint64_t new_view = msg.new_view;
  vc_msgs_[new_view][from] = std::move(record);
  // Join the view change (crash model: a peer's suspicion is honest).
  StartViewChange(new_view);
  if (config_.FlatPrimary(new_view) == id_) MaybeFormNewView(new_view);
}

void PaxosReplica::MaybeFormNewView(uint64_t new_view) {
  auto it = vc_msgs_.find(new_view);
  if (it == vc_msgs_.end()) return;
  const auto& records = it->second;
  if (static_cast<int>(records.size()) < config_.f + 1) return;
  if (view_ >= new_view) return;

  // Highest stable checkpoint and re-proposal set: per seq, the batch
  // accepted in the highest view wins (Paxos invariant); holes get no-ops.
  uint64_t max_stable = 0;
  PrincipalId best_helper = id_;
  uint64_t max_seq = 0;
  for (const auto& [sender, record] : records) {
    if (record.stable_seq > max_stable) {
      max_stable = record.stable_seq;
      best_helper = sender;
    }
    if (!record.entries.empty()) {
      max_seq = std::max(max_seq, record.entries.rbegin()->first);
    }
  }

  std::map<uint64_t, std::pair<uint64_t, Batch>> chosen;
  for (const auto& [sender, record] : records) {
    for (const auto& [seq, entry] : record.entries) {
      if (seq <= max_stable) continue;
      auto existing = chosen.find(seq);
      if (existing == chosen.end() || entry.first > existing->second.first) {
        chosen[seq] = entry;
      }
    }
  }

  PaxosNewViewMsg nv;
  nv.new_view = new_view;
  nv.stable_seq = max_stable;
  for (uint64_t seq = max_stable + 1; seq <= max_seq; ++seq) {
    auto chosen_it = chosen.find(seq);
    Batch batch =
        chosen_it != chosen.end() ? chosen_it->second.second : Batch::Noop();
    PaxosNewViewEntry entry;
    entry.seq = seq;
    entry.batch = batch.Encode();
    nv.entries.push_back(std::move(entry));
  }
  SendToMany(config_.AllReplicas(), nv.ToMessage());

  // Install locally: the new leader treats every entry as freshly accepted.
  EnterView(new_view);
  if (max_stable > exec_.last_executed() && best_helper != id_) {
    RequestStateFrom(best_helper);
  }
  for (uint64_t seq = max_stable + 1; seq <= max_seq; ++seq) {
    const SlotCore* prior = log_.Find(seq);
    const bool was_committed =
        (prior != nullptr && prior->committed) || exec_.HasCommitted(seq);
    // Fresh slot: stale ACK sets must not count toward the new view.
    SlotCore& slot = log_.ResetSlot(seq);
    auto chosen_it = chosen.find(seq);
    slot.batch =
        chosen_it != chosen.end() ? chosen_it->second.second : Batch::Noop();
    slot.has_batch = true;
    slot.digest = slot.batch.ComputeDigest();
    slot.view = new_view;
    slot.committed = was_committed;
    RecordVote(slot.plain_votes, slot.digest, id_);
  }
  ckpt_.AdvanceFloor(max_stable);
  pipeline_.AdvanceNextSeq(max_seq + 1);
  pipeline_.AdvanceNextSeq(ckpt_.stable_seq() + 1);
  ++stats_.view_changes_completed;
  TryPropose();
}

void PaxosReplica::HandleNewView(PrincipalId from, PaxosNewViewMsg msg) {
  if (config_.FlatPrimary(msg.new_view) != from || msg.new_view <= view_) {
    return;
  }
  const uint64_t new_view = msg.new_view;

  EnterView(new_view);
  ++stats_.view_changes_completed;
  for (PaxosNewViewEntry& wire_entry : msg.entries) {
    if (wire_entry.seq <= ckpt_.stable_seq()) continue;
    Result<Batch> batch_or = Batch::Decode(wire_entry.batch);
    if (!batch_or.ok()) return;
    // Already-committed slots still get ACKed: the new leader needs f+1
    // ACKs even for entries some replicas committed before the view change.
    const SlotCore* prior = log_.Find(wire_entry.seq);
    const bool was_committed = (prior != nullptr && prior->committed) ||
                               exec_.HasCommitted(wire_entry.seq);
    SlotCore& slot = log_.ResetSlot(wire_entry.seq);
    slot.batch = std::move(batch_or).value();
    slot.has_batch = true;
    ChargeHash(wire_entry.batch.size());
    slot.digest = FrameFieldDigest(wire_entry.batch, wire_entry.batch_offset);
    slot.view = new_view;
    slot.committed = was_committed;

    PaxosAckMsg ack{new_view, wire_entry.seq, slot.digest};
    SendTo(from, ack.ToMessage());
  }
  if (log_.UncommittedSlots() > 0) ArmViewTimer();
}

void PaxosReplica::EnterView(uint64_t view) {
  view_ = view;
  ClearProposerQuiescence();
  durable().NoteView(view, 0);
  in_view_change_ = false;
  vc_target_ = 0;
  CancelTimer(view_timer_);
  // Grace period: the re-proposed log needs a full re-agreement round under
  // post-view-change backlog before anyone may suspect the new primary.
  current_vc_timeout_ = config_.view_change_timeout * 3;
  // A view change may have nooped requests the admission table says were
  // handled; client retransmissions must be accepted afresh (the execution
  // engine still deduplicates anything that really committed).
  pipeline_.ForgetAdmissions();
  // Uncommitted slots are superseded by the NEW-VIEW's re-proposals (which
  // the caller installs after this); keeping them would leave phantom
  // "uncommitted work" that re-arms the view timer forever.
  log_.EraseUncommitted();
  for (auto it = vc_msgs_.begin(); it != vc_msgs_.end();) {
    it = it->first <= view ? vc_msgs_.erase(it) : std::next(it);
  }
}

}  // namespace seemore
