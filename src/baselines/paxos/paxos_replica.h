// Crash fault-tolerant baseline ("CFT" in the paper's §6): a Multi-Paxos /
// Viewstamped-Replication style protocol matching Table 1's Paxos row —
// 2 communication phases, O(n) messages, network 2f+1, quorum f+1.
//
// Normal case:   client -> leader; leader ACCEPT(v,n,batch) -> all;
//                replicas ACK -> leader; on f+1 (incl. self) leader sends
//                COMMIT -> all, executes and replies to the client.
// View change:   backup timers; VIEW-CHANGE(v+1, stable seq, accepted
//                entries) broadcast; new leader collects f+1 => NEW-VIEW
//                carrying re-proposals, which backups ACK like fresh
//                ACCEPTs.
// Checkpoints:   taken when execution advances checkpoint_period past the
//                previous one; stable at f+1 matching CHECKPOINT messages;
//                the stable point garbage-collects the log.
//
// Crash model only: messages are channel-authenticated but carry no
// public-key signatures (nodes never lie), mirroring BFT-SMaRt's CFT mode;
// reply signatures stand in for client MACs and are charged at MAC cost.

#ifndef SEEMORE_BASELINES_PAXOS_PAXOS_REPLICA_H_
#define SEEMORE_BASELINES_PAXOS_PAXOS_REPLICA_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "consensus/checkpoint.h"
#include "consensus/instance_log.h"
#include "consensus/primary_pipeline.h"
#include "consensus/replica_base.h"
#include "wire/messages.h"

namespace seemore {

class PaxosReplica : public ReplicaBase {
 public:
  PaxosReplica(Transport* transport, TimerService* timers,
               const KeyStore* keystore, CryptoMemo* memo, PrincipalId id,
               const ClusterConfig& config,
               std::unique_ptr<StateMachine> state_machine,
               const CostModel& costs);

  uint64_t view() const { return view_; }
  bool IsLeader() const { return config_.FlatPrimary(view_) == id_; }
  uint64_t last_executed() const { return exec_.last_executed(); }
  uint64_t stable_checkpoint() const { return ckpt_.stable_seq(); }
  bool in_view_change() const { return in_view_change_; }
  /// Diagnostics: slots proposed but not yet committed (tests, debugging).
  int uncommitted_slots() const { return log_.UncommittedSlots(); }
  /// Diagnostics: live instance-log slots (property tests bound this).
  size_t log_occupancy() const { return log_.occupied(); }

 protected:
  void HandleMessage(PrincipalId from, const Payload& frame) override;
  void OnDurableRestore(const RecoveredImage& image) override;

 private:
  // ----- normal case -----
  void HandleRequest(PrincipalId from, Request request);
  void LeaderEnqueue(Request request);
  void TryPropose();
  void HandleAccept(PrincipalId from, PaxosAcceptMsg msg);
  void HandleAck(PrincipalId from, PaxosAckMsg msg);
  void HandleCommit(PrincipalId from, PaxosCommitMsg msg);
  void CommitSlot(uint64_t seq, SlotCore& slot, bool send_replies);
  void SendReply(const ExecutedRequest& executed);

  // ----- checkpoints / state transfer -----
  void MaybeCheckpoint();
  void HandleCheckpoint(PrincipalId from, PaxosCheckpointMsg msg);
  void CountCheckpointVote(uint64_t seq, const Digest& digest,
                           PrincipalId voter);
  void AdvanceStable(uint64_t seq, const Digest& digest, PrincipalId helper);
  void HandleStateRequest(PrincipalId from, StateRequestMsg msg);
  void HandleStateResponse(PrincipalId from, PaxosStateResponseMsg msg);
  void RequestStateFrom(PrincipalId target);

  // ----- view change -----
  void ArmViewTimer();
  void RestartOrDisarmViewTimer();
  void StartViewChange(uint64_t new_view);
  void HandleViewChange(PrincipalId from, PaxosViewChangeMsg msg);
  void MaybeFormNewView(uint64_t new_view);
  void HandleNewView(PrincipalId from, PaxosNewViewMsg msg);
  void EnterView(uint64_t view);
  /// Entry-count sanity bound shared by view-change parsing (see the wire
  /// codec): two checkpoint periods of in-flight entries plus the pipeline.
  uint64_t Window() const {
    return static_cast<uint64_t>(config_.checkpoint_period) * 2 +
           static_cast<uint64_t>(config_.pipeline_max);
  }

  uint64_t view_ = 0;
  bool in_view_change_ = false;
  uint64_t vc_target_ = 0;  // view we are trying to move to

  /// The shared consensus core (consensus/): the slot log, the leader's
  /// proposal pipeline and the checkpoint state. Checkpoint votes travel as
  /// unsigned CheckpointMsgs (the crash model has no signatures).
  InstanceLog log_;
  PrimaryPipeline pipeline_;
  CheckpointTracker ckpt_;

  struct ViewChangeRecord {
    uint64_t stable_seq = 0;
    /// seq -> (view it was accepted in, batch).
    std::map<uint64_t, std::pair<uint64_t, Batch>> entries;
  };
  std::map<uint64_t, std::map<PrincipalId, ViewChangeRecord>> vc_msgs_;

  EventId view_timer_ = 0;
  SimTime current_vc_timeout_ = 0;
  /// Last time we asked a peer for a snapshot (rate limit; a lost response
  /// must not wedge recovery).
  SimTime last_state_request_ = -Seconds(1);
};

}  // namespace seemore

#endif  // SEEMORE_BASELINES_PAXOS_PAXOS_REPLICA_H_
