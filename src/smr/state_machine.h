// Deterministic state machine interface (the replicated service).
//
// Requirements from the paper §5: operations are atomic and deterministic,
// and the initial state is identical on every replica. Snapshot/Restore and
// StateDigest support checkpointing and state transfer.

#ifndef SEEMORE_SMR_STATE_MACHINE_H_
#define SEEMORE_SMR_STATE_MACHINE_H_

#include <memory>

#include "crypto/digest.h"
#include "util/status.h"
#include "wire/wire.h"

namespace seemore {

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Apply one operation and return its result. Must be deterministic:
  /// identical op + identical prior state => identical result and new state.
  /// Malformed operations must return an encoded error result, not crash
  /// (ops may originate from Byzantine clients).
  virtual Bytes Execute(const Bytes& op) = 0;

  /// Serialize the full state.
  virtual Bytes Snapshot() const = 0;

  /// Replace the state from a snapshot.
  virtual Status Restore(const Bytes& snapshot) = 0;

  /// Digest of the current state (for checkpoint certificates). Must equal
  /// Digest::Of(Snapshot()) semantically; implementations may compute it
  /// incrementally.
  virtual Digest StateDigest() const = 0;

  /// Fresh instance with the same initial state (used to build clusters).
  virtual std::unique_ptr<StateMachine> CloneEmpty() const = 0;
};

}  // namespace seemore

#endif  // SEEMORE_SMR_STATE_MACHINE_H_
