#include "smr/ledger.h"

#include <memory>

#include "crypto/sha256.h"

namespace seemore {

namespace {

Bytes EncodeLedgerReply(bool ok, uint64_t index, const Digest& head,
                        const std::string& data) {
  Encoder enc;
  enc.PutU8(ok ? 1 : 0);
  enc.PutU64(index);
  head.EncodeTo(enc);
  enc.PutString(data);
  return enc.Take();
}

Digest ChainNext(const Digest& head, const std::string& entry) {
  Sha256 h;
  h.Update(head.data(), Digest::kSize);
  h.Update(entry);
  std::array<uint8_t, Sha256::kDigestSize> out;
  h.Final(out.data());
  return Digest(out);
}

}  // namespace

Bytes MakeLedgerAppend(const std::string& data) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(LedgerOp::kAppend));
  enc.PutString(data);
  return enc.Take();
}

Bytes MakeLedgerHead() {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(LedgerOp::kHead));
  return enc.Take();
}

Bytes MakeLedgerReadAt(uint64_t index) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(LedgerOp::kReadAt));
  enc.PutU64(index);
  return enc.Take();
}

LedgerReply ParseLedgerReply(const Bytes& result) {
  Decoder dec(result);
  LedgerReply out;
  out.ok = dec.GetU8() == 1;
  out.index = dec.GetU64();
  out.chain_head = Digest::DecodeFrom(dec);
  out.data = dec.GetString();
  if (!dec.ok()) out = LedgerReply{};
  return out;
}

Bytes LedgerStateMachine::Execute(const Bytes& op) {
  Decoder dec(op);
  const LedgerOp code = static_cast<LedgerOp>(dec.GetU8());
  switch (code) {
    case LedgerOp::kAppend: {
      std::string data = dec.GetString();
      if (!dec.ok()) break;
      chain_head_ = ChainNext(chain_head_, data);
      entries_.push_back(std::move(data));
      return EncodeLedgerReply(true, entries_.size() - 1, chain_head_, "");
    }
    case LedgerOp::kHead:
      return EncodeLedgerReply(true, entries_.size(), chain_head_, "");
    case LedgerOp::kReadAt: {
      uint64_t index = dec.GetU64();
      if (!dec.ok()) break;
      if (index >= entries_.size()) {
        return EncodeLedgerReply(false, index, chain_head_, "");
      }
      return EncodeLedgerReply(true, index, chain_head_, entries_[index]);
    }
  }
  return EncodeLedgerReply(false, 0, chain_head_, "");
}

Bytes LedgerStateMachine::Snapshot() const {
  Encoder enc;
  enc.PutVarint(entries_.size());
  for (const std::string& entry : entries_) enc.PutString(entry);
  chain_head_.EncodeTo(enc);
  return enc.Take();
}

Status LedgerStateMachine::Restore(const Bytes& snapshot) {
  Decoder dec(snapshot);
  uint64_t count = dec.GetVarint();
  std::vector<std::string> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count && dec.ok(); ++i) {
    entries.push_back(dec.GetString());
  }
  Digest head = Digest::DecodeFrom(dec);
  SEEMORE_RETURN_IF_ERROR(dec.Finish());
  entries_ = std::move(entries);
  chain_head_ = head;
  return Status::Ok();
}

Digest LedgerStateMachine::StateDigest() const { return Digest::Of(Snapshot()); }

std::unique_ptr<StateMachine> LedgerStateMachine::CloneEmpty() const {
  return std::make_unique<LedgerStateMachine>();
}

}  // namespace seemore
