// Replicated key-value store state machine, plus helpers for building and
// parsing its operations. This is the service used by the examples and by
// most integration tests; the micro-benchmarks use the ECHO operation to
// reproduce the paper's 0/0, 0/4 and 4/0 payload benchmarks (request
// padding in, reply payload out).

#ifndef SEEMORE_SMR_KV_STORE_H_
#define SEEMORE_SMR_KV_STORE_H_

#include <cstdint>
#include <map>
#include <string>

#include "smr/state_machine.h"

namespace seemore {

/// Operation opcodes (first byte of the op payload).
enum class KvOp : uint8_t {
  kNoop = 0,
  kPut = 1,     // key, value -> "OK"
  kGet = 2,     // key -> value | NOT_FOUND
  kDelete = 3,  // key -> "OK" | NOT_FOUND
  kCas = 4,     // key, expected, new -> "OK" | MISMATCH | NOT_FOUND
  kEcho = 5,    // reply_size, padding -> reply_size zero bytes
};

/// Result status byte (first byte of every result payload).
enum class KvResult : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kMismatch = 2,
  kBadRequest = 3,
};

/// Operation builders (client side).
Bytes MakeNoop();
Bytes MakePut(const std::string& key, const std::string& value);
Bytes MakeGet(const std::string& key);
Bytes MakeDelete(const std::string& key);
Bytes MakeCas(const std::string& key, const std::string& expected,
              const std::string& desired);
/// ECHO with `request_padding` bytes of request payload, asking for a
/// `reply_size`-byte result. The paper's x/y micro-benchmark is
/// MakeEcho(y_bytes, x_bytes).
Bytes MakeEcho(uint32_t reply_size, uint32_t request_padding);

/// Parsed result (server -> client).
struct KvReply {
  KvResult status = KvResult::kBadRequest;
  std::string value;
};
KvReply ParseKvReply(const Bytes& result);

class KvStateMachine : public StateMachine {
 public:
  KvStateMachine() = default;

  Bytes Execute(const Bytes& op) override;
  Bytes Snapshot() const override;
  Status Restore(const Bytes& snapshot) override;
  Digest StateDigest() const override;
  std::unique_ptr<StateMachine> CloneEmpty() const override;

  size_t size() const { return data_.size(); }
  uint64_t ops_applied() const { return ops_applied_; }

 private:
  std::map<std::string, std::string> data_;
  uint64_t ops_applied_ = 0;
};

}  // namespace seemore

#endif  // SEEMORE_SMR_KV_STORE_H_
