// Simulation client: issues signed requests, collects matching replies
// according to a per-protocol ReplyPolicy, retransmits on timeout, and
// records end-to-end latency. Runs either closed-loop (Start(): issue the
// next request as soon as the previous one completes — the paper's client
// model, §6) or one-shot (SubmitOne(), used by the examples).

#ifndef SEEMORE_SMR_CLIENT_H_
#define SEEMORE_SMR_CLIENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/transport.h"
#include "smr/command.h"
#include "util/histogram.h"

namespace seemore {

/// Protocol- and mode-specific client behaviour: where to send requests and
/// when a set of matching replies proves completion.
class ReplyPolicy {
 public:
  virtual ~ReplyPolicy() = default;

  /// Called for every valid reply, letting stateful policies track the
  /// current view / SeeMoRe mode.
  virtual void Observe(const Reply& reply) { (void)reply; }

  /// Targets for the first transmission of a request.
  virtual std::vector<PrincipalId> InitialTargets() const = 0;

  /// Targets after a client timeout (typically: broadcast).
  virtual std::vector<PrincipalId> RetransmitTargets() const = 0;

  /// True once the replicas in `senders` (all of which reported an identical
  /// result for the current timestamp) prove the request completed.
  /// `after_retransmit` selects the relaxed rule some protocols use on the
  /// retry path (paper §5.1/§5.2).
  virtual bool Accepted(const std::vector<PrincipalId>& senders,
                        bool after_retransmit) const = 0;
};

struct ClientOptions {
  PrincipalId id = kClientIdBase;
  SimTime retransmit_timeout = Millis(60);
  /// Exponential backoff cap for retransmissions.
  SimTime max_retransmit_timeout = Millis(500);
};

class SimClient : public MessageHandler {
 public:
  SimClient(Transport* transport, TimerService* timers,
            const KeyStore* keystore, ClientOptions options,
            std::unique_ptr<ReplyPolicy> policy);
  ~SimClient() override;

  SimClient(const SimClient&) = delete;
  SimClient& operator=(const SimClient&) = delete;

  /// Closed-loop mode: issue ops from `factory` back-to-back until Stop().
  using OpFactory = std::function<Bytes(uint64_t n)>;
  void Start(OpFactory factory);
  void Stop();

  /// One-shot mode: enqueue a single operation; `done` fires with the result
  /// when the reply quorum is reached.
  using DoneCallback = std::function<void(const Bytes& result)>;
  void SubmitOne(Bytes op, DoneCallback done);

  void OnMessage(PrincipalId from, Payload payload) override;

  PrincipalId id() const { return options_.id; }
  uint64_t completed() const { return completed_; }
  uint64_t retransmissions() const { return retransmissions_; }
  const Histogram& latencies() const { return latencies_; }
  void ResetStats() {
    latencies_.Clear();
    completed_ = 0;
    retransmissions_ = 0;
  }

  /// Invoked on every completion (for timeline metrics): (completion time,
  /// end-to-end latency).
  std::function<void(SimTime, SimTime)> on_complete;

 private:
  struct PendingOp {
    Bytes op;
    DoneCallback done;  // may be empty in closed-loop mode
  };

  void MaybeIssueNext();
  void Transmit(bool retransmit);
  void ArmTimer();
  void HandleTimeout();
  void Complete(const Bytes& result);

  Transport* transport_;
  TimerService* timers_;
  const KeyStore* keystore_;
  ClientOptions options_;
  std::unique_ptr<ReplyPolicy> policy_;
  Signer signer_;

  bool running_ = false;
  OpFactory factory_;
  std::deque<PendingOp> queue_;

  bool in_flight_ = false;
  bool retransmitted_ = false;
  Request current_;
  DoneCallback current_done_;
  SimTime sent_at_ = 0;
  SimTime current_timeout_ = 0;
  EventId timer_ = 0;
  uint64_t next_timestamp_ = 1;
  uint64_t issued_ = 0;

  /// Replies for the current timestamp, grouped by result digest.
  std::map<Digest, std::map<PrincipalId, Reply>> reply_groups_;

  Histogram latencies_;
  uint64_t completed_ = 0;
  uint64_t retransmissions_ = 0;
};

}  // namespace seemore

#endif  // SEEMORE_SMR_CLIENT_H_
