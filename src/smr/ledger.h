// Append-only ledger state machine with a hash chain, in the style of a
// permissioned-blockchain ordering service (the paper's §1 motivates
// SeeMoRe as a pluggable consensus module for Hyperledger Fabric).

#ifndef SEEMORE_SMR_LEDGER_H_
#define SEEMORE_SMR_LEDGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "smr/state_machine.h"

namespace seemore {

/// Ledger operations.
enum class LedgerOp : uint8_t {
  kAppend = 1,  // data -> (index, chain head)
  kHead = 2,    // -> (length, chain head)
  kReadAt = 3,  // index -> data | NOT_FOUND
};

Bytes MakeLedgerAppend(const std::string& data);
Bytes MakeLedgerHead();
Bytes MakeLedgerReadAt(uint64_t index);

struct LedgerReply {
  bool ok = false;
  uint64_t index = 0;   // for kAppend: index of the new entry; kHead: length
  Digest chain_head;    // hash chain after the operation
  std::string data;     // for kReadAt
};
LedgerReply ParseLedgerReply(const Bytes& result);

class LedgerStateMachine : public StateMachine {
 public:
  LedgerStateMachine() = default;

  Bytes Execute(const Bytes& op) override;
  Bytes Snapshot() const override;
  Status Restore(const Bytes& snapshot) override;
  Digest StateDigest() const override;
  std::unique_ptr<StateMachine> CloneEmpty() const override;

  uint64_t length() const { return entries_.size(); }
  const Digest& chain_head() const { return chain_head_; }

 private:
  std::vector<std::string> entries_;
  Digest chain_head_;  // H(head_{i-1} || entry_i), starting from zero digest
};

}  // namespace seemore

#endif  // SEEMORE_SMR_LEDGER_H_
