#include "smr/client.h"

#include "util/logging.h"

namespace seemore {

SimClient::SimClient(Transport* transport, TimerService* timers,
                     const KeyStore* keystore, ClientOptions options,
                     std::unique_ptr<ReplyPolicy> policy)
    : transport_(transport),
      timers_(timers),
      keystore_(keystore),
      options_(options),
      policy_(std::move(policy)),
      signer_(options_.id, *keystore) {
  transport_->Register(options_.id, Zone::kClient, this, /*metered=*/false);
}

SimClient::~SimClient() = default;

void SimClient::Start(OpFactory factory) {
  running_ = true;
  factory_ = std::move(factory);
  MaybeIssueNext();
}

void SimClient::Stop() {
  running_ = false;
  factory_ = nullptr;
}

void SimClient::SubmitOne(Bytes op, DoneCallback done) {
  queue_.push_back(PendingOp{std::move(op), std::move(done)});
  MaybeIssueNext();
}

void SimClient::MaybeIssueNext() {
  if (in_flight_) return;

  Bytes op;
  DoneCallback done;
  if (!queue_.empty()) {
    op = std::move(queue_.front().op);
    done = std::move(queue_.front().done);
    queue_.pop_front();
  } else if (running_ && factory_) {
    op = factory_(issued_);
  } else {
    return;
  }

  current_ = Request{};
  current_.client = options_.id;
  current_.timestamp = next_timestamp_++;
  current_.op = std::move(op);
  current_.Sign(signer_);
  current_done_ = std::move(done);
  in_flight_ = true;
  retransmitted_ = false;
  reply_groups_.clear();
  ++issued_;
  sent_at_ = timers_->Now();
  current_timeout_ = options_.retransmit_timeout;
  Transmit(/*retransmit=*/false);
  ArmTimer();
}

void SimClient::Transmit(bool retransmit) {
  const std::vector<PrincipalId> targets =
      retransmit ? policy_->RetransmitTargets() : policy_->InitialTargets();
  // Encode once; every target shares the one payload buffer.
  const Payload message(current_.ToMessage());
  for (PrincipalId target : targets) {
    transport_->Send(options_.id, target, message);
  }
}

void SimClient::ArmTimer() {
  timer_ = timers_->ScheduleAfter(current_timeout_, [this] { HandleTimeout(); });
}

void SimClient::HandleTimeout() {
  timer_ = 0;
  if (!in_flight_) return;
  retransmitted_ = true;
  ++retransmissions_;
  // Exponential backoff so a dead cluster does not flood the simulator.
  current_timeout_ *= 2;
  if (current_timeout_ > options_.max_retransmit_timeout) {
    current_timeout_ = options_.max_retransmit_timeout;
  }
  Transmit(/*retransmit=*/true);
  ArmTimer();
}

void SimClient::OnMessage(PrincipalId from, Payload payload) {
  Decoder dec = MakeDecoder(payload);
  if (dec.GetU8() != kMsgReply) return;
  Result<Reply> reply_or = Reply::DecodeFrom(dec);
  if (!reply_or.ok() || !dec.AtEnd()) return;
  const Reply& reply = reply_or.value();

  // The network layer authenticates `from`; a Byzantine replica can lie in
  // the body, so the signature must cover the replica id it claims.
  if (reply.replica != from) return;
  if (!reply.VerifySignature(*keystore_)) return;

  policy_->Observe(reply);

  if (!in_flight_ || reply.timestamp != current_.timestamp) return;

  const Digest key = Digest::Of(reply.result);
  auto& group = reply_groups_[key];
  group[from] = reply;

  std::vector<PrincipalId> senders;
  senders.reserve(group.size());
  for (const auto& [sender, r] : group) senders.push_back(sender);

  if (policy_->Accepted(senders, retransmitted_)) {
    Complete(group.begin()->second.result);
  }
}

void SimClient::Complete(const Bytes& result) {
  if (timer_ != 0) {
    timers_->CancelEvent(timer_);
    timer_ = 0;
  }
  in_flight_ = false;
  const SimTime latency = timers_->Now() - sent_at_;
  latencies_.Record(latency);
  ++completed_;
  if (on_complete) on_complete(timers_->Now(), latency);
  if (current_done_) {
    DoneCallback done = std::move(current_done_);
    current_done_ = nullptr;
    done(result);
  }
  reply_groups_.clear();
  MaybeIssueNext();
}

}  // namespace seemore
