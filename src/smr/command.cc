#include "smr/command.h"

namespace seemore {

Bytes Request::SignedPayload() const {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(client));
  enc.PutU64(timestamp);
  enc.PutBytes(op);
  return enc.Take();
}

Digest Request::ComputeDigest() const { return Digest::Of(SignedPayload()); }

void Request::Sign(const Signer& signer) { sig = signer.Sign(SignedPayload()); }

bool Request::VerifySignature(const KeyStore& keystore) const {
  return keystore.Verify(client, SignedPayload(), sig);
}

void Request::EncodeTo(Encoder& enc) const {
  enc.PutU32(static_cast<uint32_t>(client));
  enc.PutU64(timestamp);
  enc.PutBytes(op);
  sig.EncodeTo(enc);
}

size_t Request::EncodedSize() const {
  return 4 + 8 + VarintSize(op.size()) + op.size() + Signature::kSize;
}

Result<Request> Request::DecodeFrom(Decoder& dec) {
  Request req;
  req.client = static_cast<PrincipalId>(dec.GetU32());
  req.timestamp = dec.GetU64();
  req.op = dec.GetBytes();
  req.sig = Signature::DecodeFrom(dec);
  if (!dec.ok()) return dec.status();
  return req;
}

Bytes Request::ToMessage() const {
  Encoder enc;
  enc.PutU8(kMsgRequest);
  EncodeTo(enc);
  return enc.Take();
}

Bytes Reply::SignedPayload() const {
  Encoder enc;
  enc.PutU8(mode);
  enc.PutU64(view);
  enc.PutU64(timestamp);
  enc.PutU32(static_cast<uint32_t>(replica));
  enc.PutBytes(result);
  return enc.Take();
}

void Reply::Sign(const Signer& signer) { sig = signer.Sign(SignedPayload()); }

bool Reply::VerifySignature(const KeyStore& keystore) const {
  return keystore.Verify(replica, SignedPayload(), sig);
}

void Reply::EncodeTo(Encoder& enc) const {
  enc.PutU8(mode);
  enc.PutU64(view);
  enc.PutU64(timestamp);
  enc.PutU32(static_cast<uint32_t>(replica));
  enc.PutBytes(result);
  sig.EncodeTo(enc);
}

Result<Reply> Reply::DecodeFrom(Decoder& dec) {
  Reply rep;
  rep.mode = dec.GetU8();
  rep.view = dec.GetU64();
  rep.timestamp = dec.GetU64();
  rep.replica = static_cast<PrincipalId>(dec.GetU32());
  rep.result = dec.GetBytes();
  rep.sig = Signature::DecodeFrom(dec);
  if (!dec.ok()) return dec.status();
  return rep;
}

Bytes Reply::ToMessage() const {
  Encoder enc;
  enc.PutU8(kMsgReply);
  EncodeTo(enc);
  return enc.Take();
}

}  // namespace seemore
