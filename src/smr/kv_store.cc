#include "smr/kv_store.h"

#include <memory>

namespace seemore {

namespace {

Bytes MakeResult(KvResult status, const std::string& value = "") {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(status));
  enc.PutString(value);
  return enc.Take();
}

Bytes MakeEchoResult(uint32_t reply_size) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(KvResult::kOk));
  std::string payload(reply_size, '\0');
  enc.PutString(payload);
  return enc.Take();
}

}  // namespace

Bytes MakeNoop() {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(KvOp::kNoop));
  return enc.Take();
}

Bytes MakePut(const std::string& key, const std::string& value) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(KvOp::kPut));
  enc.PutString(key);
  enc.PutString(value);
  return enc.Take();
}

Bytes MakeGet(const std::string& key) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(KvOp::kGet));
  enc.PutString(key);
  return enc.Take();
}

Bytes MakeDelete(const std::string& key) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(KvOp::kDelete));
  enc.PutString(key);
  return enc.Take();
}

Bytes MakeCas(const std::string& key, const std::string& expected,
              const std::string& desired) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(KvOp::kCas));
  enc.PutString(key);
  enc.PutString(expected);
  enc.PutString(desired);
  return enc.Take();
}

Bytes MakeEcho(uint32_t reply_size, uint32_t request_padding) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(KvOp::kEcho));
  enc.PutU32(reply_size);
  std::string padding(request_padding, '\0');
  enc.PutString(padding);
  return enc.Take();
}

KvReply ParseKvReply(const Bytes& result) {
  Decoder dec(result);
  KvReply out;
  out.status = static_cast<KvResult>(dec.GetU8());
  out.value = dec.GetString();
  if (!dec.ok()) {
    out.status = KvResult::kBadRequest;
    out.value.clear();
  }
  return out;
}

Bytes KvStateMachine::Execute(const Bytes& op) {
  ++ops_applied_;
  Decoder dec(op);
  const KvOp code = static_cast<KvOp>(dec.GetU8());
  if (!dec.ok()) return MakeResult(KvResult::kBadRequest);
  switch (code) {
    case KvOp::kNoop:
      return MakeResult(KvResult::kOk);
    case KvOp::kPut: {
      std::string key = dec.GetString();
      std::string value = dec.GetString();
      if (!dec.ok()) break;
      data_[key] = std::move(value);
      return MakeResult(KvResult::kOk);
    }
    case KvOp::kGet: {
      std::string key = dec.GetString();
      if (!dec.ok()) break;
      auto it = data_.find(key);
      if (it == data_.end()) return MakeResult(KvResult::kNotFound);
      return MakeResult(KvResult::kOk, it->second);
    }
    case KvOp::kDelete: {
      std::string key = dec.GetString();
      if (!dec.ok()) break;
      auto it = data_.find(key);
      if (it == data_.end()) return MakeResult(KvResult::kNotFound);
      data_.erase(it);
      return MakeResult(KvResult::kOk);
    }
    case KvOp::kCas: {
      std::string key = dec.GetString();
      std::string expected = dec.GetString();
      std::string desired = dec.GetString();
      if (!dec.ok()) break;
      auto it = data_.find(key);
      if (it == data_.end()) return MakeResult(KvResult::kNotFound);
      if (it->second != expected) {
        return MakeResult(KvResult::kMismatch, it->second);
      }
      it->second = std::move(desired);
      return MakeResult(KvResult::kOk);
    }
    case KvOp::kEcho: {
      uint32_t reply_size = dec.GetU32();
      (void)dec.GetString();  // discard padding
      if (!dec.ok()) break;
      // Cap the reply so a Byzantine client cannot make replicas allocate
      // unbounded memory.
      constexpr uint32_t kMaxEchoReply = 16 * 1024 * 1024;
      if (reply_size > kMaxEchoReply) break;
      return MakeEchoResult(reply_size);
    }
  }
  return MakeResult(KvResult::kBadRequest);
}

Bytes KvStateMachine::Snapshot() const {
  Encoder enc;
  enc.PutU64(ops_applied_);
  enc.PutVarint(data_.size());
  for (const auto& [key, value] : data_) {
    enc.PutString(key);
    enc.PutString(value);
  }
  return enc.Take();
}

Status KvStateMachine::Restore(const Bytes& snapshot) {
  Decoder dec(snapshot);
  uint64_t ops = dec.GetU64();
  uint64_t entries = dec.GetVarint();
  std::map<std::string, std::string> data;
  for (uint64_t i = 0; i < entries && dec.ok(); ++i) {
    std::string key = dec.GetString();
    std::string value = dec.GetString();
    data.emplace(std::move(key), std::move(value));
  }
  SEEMORE_RETURN_IF_ERROR(dec.Finish());
  ops_applied_ = ops;
  data_ = std::move(data);
  return Status::Ok();
}

Digest KvStateMachine::StateDigest() const { return Digest::Of(Snapshot()); }

std::unique_ptr<StateMachine> KvStateMachine::CloneEmpty() const {
  return std::make_unique<KvStateMachine>();
}

}  // namespace seemore
