// Client-facing request/reply types shared by every protocol in the repo.
//
// Wire framing convention: the first byte of every network message is a
// message-type tag. Tags 1 (REQUEST) and 2 (REPLY) are reserved here and
// have the same meaning in all protocols; protocol-internal messages use
// tags >= 10 defined per protocol.

#ifndef SEEMORE_SMR_COMMAND_H_
#define SEEMORE_SMR_COMMAND_H_

#include <cstdint>

#include "crypto/digest.h"
#include "crypto/keystore.h"
#include "util/status.h"
#include "wire/wire.h"

namespace seemore {

/// Shared message-type tags (first byte of every message).
inline constexpr uint8_t kMsgRequest = 1;
inline constexpr uint8_t kMsgReply = 2;

/// <REQUEST, op, ts, client>_σc (paper §5.1). The timestamp totally orders
/// one client's requests and provides exactly-once semantics.
struct Request {
  PrincipalId client = 0;
  uint64_t timestamp = 0;
  Bytes op;
  Signature sig;

  /// Deterministic encoding of the signed fields (everything but sig).
  Bytes SignedPayload() const;

  /// D(µ): digest over the signed payload.
  Digest ComputeDigest() const;

  void Sign(const Signer& signer);
  bool VerifySignature(const KeyStore& keystore) const;

  void EncodeTo(Encoder& enc) const;
  static Result<Request> DecodeFrom(Decoder& dec);
  /// Exact size EncodeTo appends (Encoder::Reserve hints).
  size_t EncodedSize() const;

  /// Full framed message (kMsgRequest tag + body).
  Bytes ToMessage() const;

  bool operator==(const Request& other) const {
    return client == other.client && timestamp == other.timestamp &&
           op == other.op;
  }
};

/// <REPLY, π, v, ts, u>_σr (paper §5.1). `mode` is the SeeMoRe mode π
/// (0 for the baselines); clients use (mode, view) to track the current
/// primary across view and mode changes.
struct Reply {
  uint8_t mode = 0;
  uint64_t view = 0;
  uint64_t timestamp = 0;
  PrincipalId replica = 0;
  Bytes result;
  Signature sig;

  Bytes SignedPayload() const;
  void Sign(const Signer& signer);
  bool VerifySignature(const KeyStore& keystore) const;

  void EncodeTo(Encoder& enc) const;
  static Result<Reply> DecodeFrom(Decoder& dec);

  Bytes ToMessage() const;
};

}  // namespace seemore

#endif  // SEEMORE_SMR_COMMAND_H_
