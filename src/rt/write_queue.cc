#include "rt/write_queue.h"

#include <sys/uio.h>

namespace seemore {
namespace rt {

bool WriteQueue::Enqueue(std::shared_ptr<const FrameBuffer> frame) {
  const size_t wire = frame->size();
  if (queued_bytes_ + wire > max_bytes_) return false;
  queued_bytes_ += wire;
  frames_.push_back(std::move(frame));
  return true;
}

size_t WriteQueue::BuildIovecs(iovec* iov, size_t max_iov,
                               size_t* total) const {
  size_t n = 0;
  size_t bytes = 0;
  size_t offset = head_offset_;
  for (const auto& frame : frames_) {
    if (n == max_iov) break;
    // Header slice (offset may start inside it — partial write cursor).
    if (offset < kFrameHeaderBytes) {
      iov[n].iov_base =
          const_cast<uint8_t*>(frame->header()) + offset;
      iov[n].iov_len = kFrameHeaderBytes - offset;
      bytes += iov[n].iov_len;
      ++n;
      offset = 0;
    } else {
      offset -= kFrameHeaderBytes;
    }
    // Body slice (skipped entirely for empty bodies).
    const size_t body_len = frame->body().size();
    if (offset < body_len) {
      if (n == max_iov) break;
      iov[n].iov_base =
          const_cast<uint8_t*>(frame->body().data()) + offset;
      iov[n].iov_len = body_len - offset;
      bytes += iov[n].iov_len;
      ++n;
    }
    offset = 0;  // only the front frame has a cursor
  }
  *total = bytes;
  return n;
}

size_t WriteQueue::Advance(size_t n) {
  size_t completed = 0;
  head_offset_ += n;
  while (!frames_.empty() && head_offset_ >= frames_.front()->size()) {
    const size_t wire = frames_.front()->size();
    head_offset_ -= wire;
    queued_bytes_ -= wire;
    frames_.pop_front();
    ++completed;
  }
  return completed;
}

void WriteQueue::Clear() {
  frames_.clear();
  head_offset_ = 0;
  queued_bytes_ = 0;
}

}  // namespace rt
}  // namespace seemore
