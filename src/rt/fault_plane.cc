#include "rt/fault_plane.h"

#include <algorithm>

namespace seemore {
namespace rt {

void FaultPlane::CutLink(int from, int to) {
  cut_.insert(DirectedKey(from, to));
}

void FaultPlane::RestoreLink(int from, int to) {
  cut_.erase(DirectedKey(from, to));
}

void FaultPlane::PartitionClouds(int trusted_count, int num_replicas) {
  for (int a = 0; a < trusted_count; ++a) {
    for (int b = trusted_count; b < num_replicas; ++b) {
      cut_.insert(DirectedKey(a, b));
      cut_.insert(DirectedKey(b, a));
    }
  }
}

bool FaultPlane::Heal() {
  const bool had_faults = !cut_.empty() || !shapes_.empty();
  cut_.clear();
  shapes_.clear();
  last_release_.clear();
  return had_faults;
}

void FaultPlane::ShapeLink(int from, int to, const Shape& shape) {
  const uint64_t key = DirectedKey(from, to);
  if (shape.delay == 0 && shape.jitter == 0 && shape.drop_ppm == 0) {
    shapes_.erase(key);
    last_release_.erase(key);
    return;
  }
  shapes_[key] = shape;
}

uint64_t FaultPlane::NextRandom() {
  // splitmix64: cheap, full-period, deterministic across runs with the
  // same fingerprint (good enough for fault injection; not a crypto RNG).
  rng_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = rng_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool FaultPlane::ShouldDropOutbound(PrincipalId from, PrincipalId to) {
  const uint64_t key = DirectedKey(from, to);
  if (cut_.count(key) != 0) return true;
  auto shape = shapes_.find(key);
  if (shape == shapes_.end() || shape->second.drop_ppm == 0) return false;
  return NextRandom() % 1000000u < shape->second.drop_ppm;
}

bool FaultPlane::ShouldDropInbound(PrincipalId from, PrincipalId to) const {
  return cut_.count(DirectedKey(from, to)) != 0;
}

SimTime FaultPlane::HoldFor(PrincipalId from, PrincipalId to, SimTime now) {
  const uint64_t key = DirectedKey(from, to);
  auto shape = shapes_.find(key);
  if (shape == shapes_.end()) return 0;
  SimTime release = now + shape->second.delay;
  if (shape->second.jitter > 0) {
    release += static_cast<SimTime>(
        NextRandom() % static_cast<uint64_t>(shape->second.jitter));
  }
  SimTime& last = last_release_[key];
  release = std::max(release, last);
  last = release;
  return release - now;
}

}  // namespace rt
}  // namespace seemore
