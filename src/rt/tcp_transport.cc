#include "rt/tcp_transport.h"

#include <arpa/inet.h>
#include <limits.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace seemore {
namespace rt {
namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

int NewTcpSocket() {
  return socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

/// Iovec chain length per sendmsg. 64 entries = 32 frames per call, which
/// already amortizes the syscall thoroughly; IOV_MAX (1024 on Linux) is
/// the hard ceiling.
constexpr size_t kFlushIovs = 64 < IOV_MAX ? 64 : IOV_MAX;

}  // namespace

Json TcpCounters::ToJson() const {
  Json json = Json::Object();
  json.Set("messages_sent", messages_sent);
  json.Set("bytes_sent", bytes_sent);
  json.Set("messages_received", messages_received);
  json.Set("bytes_received", bytes_received);
  json.Set("dropped_no_connection", dropped_no_connection);
  json.Set("dropped_backpressure", dropped_backpressure);
  json.Set("dropped_node_down", dropped_node_down);
  json.Set("connections_accepted", connections_accepted);
  json.Set("connections_dialed", connections_dialed);
  json.Set("connection_failures", connection_failures);
  json.Set("frame_errors", frame_errors);
  json.Set("read_syscalls", read_syscalls);
  json.Set("writev_syscalls", writev_syscalls);
  json.Set("frames_sent", frames_sent);
  json.Set("multicast_encodes", multicast_encodes);
  json.Set("multicast_enqueues", multicast_enqueues);
  json.Set("fault_dropped_tx", fault_dropped_tx);
  json.Set("fault_dropped_rx", fault_dropped_rx);
  json.Set("fault_delayed", fault_delayed);
  json.Set("rx_frames_aliased", rx.frames_aliased);
  json.Set("rx_frames_copied", rx.frames_copied);
  json.Set("rx_bytes_aliased", rx.bytes_aliased);
  json.Set("rx_bytes_copied", rx.bytes_copied);
  return json;
}

TcpTransport::TcpTransport(EventLoop* loop, TcpTransportOptions options)
    : loop_(loop),
      options_(std::move(options)),
      fault_plane_(options_.fingerprint) {}

TcpTransport::~TcpTransport() {
  for (const std::shared_ptr<Connection>& conn : connections_) {
    if (conn->fd >= 0) {
      loop_->UnwatchFd(conn->fd);
      close(conn->fd);
      conn->fd = -1;
    }
  }
  for (const auto& [id, fd] : listeners_) {
    loop_->UnwatchFd(fd);
    close(fd);
  }
}

CpuMeter* TcpTransport::Register(PrincipalId id, Zone zone,
                                 MessageHandler* handler, bool metered) {
  (void)zone;  // zones shape the simulator's latency model, not real sockets
  LocalNode& node = locals_[id];
  node.handler = handler;
  node.up = true;
  if (metered) node.meter = std::make_unique<RtCpuMeter>(loop_);

  if (IsReplicaPrincipal(id)) {
    StartListener(id);
    // Deterministic connection ownership: dial every smaller replica id.
    for (PrincipalId peer = 0; peer < id; ++peer) DialPeer(id, peer);
  } else {
    for (PrincipalId peer = 0; peer < options_.num_replicas; ++peer) {
      DialPeer(id, peer);
    }
  }
  return node.meter.get();
}

bool TcpTransport::IsReplicaPrincipal(PrincipalId id) const {
  return id >= 0 && id < options_.num_replicas;
}

std::shared_ptr<TcpTransport::Connection> TcpTransport::NewConnection() {
  auto conn = std::make_shared<Connection>(options_.max_queued_bytes,
                                           options_.max_frame, &pool_,
                                           &counters_.rx);
  conn->index = connections_.size();
  connections_.push_back(conn);
  return conn;
}

void TcpTransport::StartListener(PrincipalId id) {
  const int fd = NewTcpSocket();
  if (fd < 0) {
    if (status_.ok()) status_ = Errno("socket(listen)");
    return;
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr =
      LoopbackAddr(static_cast<uint16_t>(options_.base_port + id));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(fd, 64) < 0) {
    if (status_.ok()) status_ = Errno("bind/listen");
    close(fd);
    return;
  }
  listeners_[id] = fd;
  // The owning replica id rides in the closure: accepting stays O(1)
  // instead of searching listeners_ for the fd that woke us.
  const Status watched =
      loop_->WatchFd(fd, EventLoop::kReadable,
                     [this, id, fd](uint32_t) { OnListenerReadable(id, fd); });
  if (!watched.ok() && status_.ok()) status_ = watched;
}

void TcpTransport::OnListenerReadable(PrincipalId local, int listen_fd) {
  // A listener whose owner was never registered locally cannot adopt
  // connections — refuse them instead of creating orphans that would
  // deliver into a null handler.
  const bool local_known = locals_.count(local) > 0;
  while (true) {
    const int fd =
        accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      ++counters_.connection_failures;
      return;
    }
    if (!local_known) {
      ++counters_.connection_failures;
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ++counters_.connections_accepted;
    auto conn = NewConnection();
    conn->fd = fd;
    conn->local = local;
    conn->owner = &locals_[local];
    const Status watched = loop_->WatchFd(
        fd, EventLoop::kReadable,
        [this, conn](uint32_t events) { OnConnectionEvent(conn, events); });
    if (!watched.ok()) {
      CloseConnection(conn, "watch failed");
      continue;
    }
    // Announce ourselves; the dialer's HELLO will identify the peer.
    EnqueueFrame(conn, FrameBuffer::Wrap(Payload(
                           EncodeHelloBody(Hello{local, options_.fingerprint}))));
  }
}

void TcpTransport::DialPeer(PrincipalId local, PrincipalId peer) {
  const int fd = NewTcpSocket();
  if (fd < 0) {
    ++counters_.connection_failures;
    ScheduleRedial(local, peer, options_.reconnect_initial);
    return;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr =
      LoopbackAddr(static_cast<uint16_t>(options_.base_port + peer));
  const int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    close(fd);
    ++counters_.connection_failures;
    auto& backoff = backoff_[{local, peer}];
    if (backoff == 0) backoff = options_.reconnect_initial;
    ScheduleRedial(local, peer, backoff);
    backoff = std::min(backoff * 2, options_.reconnect_max);
    return;
  }
  auto conn = NewConnection();
  conn->fd = fd;
  conn->local = local;
  conn->owner = &locals_[local];
  conn->peer = peer;
  conn->dialed = true;
  conn->connecting = (rc < 0);
  const uint32_t interest = conn->connecting
                                ? EventLoop::kWritable
                                : (EventLoop::kReadable | EventLoop::kWritable);
  const Status watched = loop_->WatchFd(
      fd, interest,
      [this, conn](uint32_t events) { OnConnectionEvent(conn, events); });
  if (!watched.ok()) {
    CloseConnection(conn, "watch failed");
    return;
  }
  if (!conn->connecting) FinishConnect(conn);
}

void TcpTransport::ScheduleRedial(PrincipalId local, PrincipalId peer,
                                  SimTime delay) {
  std::weak_ptr<bool> alive = alive_;
  loop_->ScheduleAfter(delay, [this, alive, local, peer] {
    if (alive.expired()) return;
    // Still no established connection (nothing beat us to it)?
    if (ConnectionFor(local, peer) != nullptr) return;
    DialPeer(local, peer);
  });
}

void TcpTransport::FinishConnect(const std::shared_ptr<Connection>& conn) {
  conn->connecting = false;
  ++counters_.connections_dialed;
  loop_->ModifyFd(conn->fd, EventLoop::kReadable);
  EnqueueFrame(conn,
               FrameBuffer::Wrap(Payload(EncodeHelloBody(
                   Hello{conn->local, options_.fingerprint}))));
}

void TcpTransport::OnConnectionEvent(const std::shared_ptr<Connection>& conn,
                                     uint32_t events) {
  if (conn->fd < 0) return;
  if (conn->connecting) {
    if (events & (EventLoop::kWritable | EventLoop::kError)) {
      int err = 0;
      socklen_t len = sizeof(err);
      getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        ++counters_.connection_failures;
        CloseConnection(conn, "connect failed");
        return;
      }
      FinishConnect(conn);
    }
    return;
  }
  if (events & EventLoop::kError) {
    CloseConnection(conn, "socket error");
    return;
  }
  if (events & EventLoop::kReadable) {
    DrainReadable(conn);
    if (conn->fd < 0) return;  // closed during the drain
  }
  if (events & EventLoop::kWritable) FlushWrites(conn);
}

bool TcpTransport::AcceptHello(const std::shared_ptr<Connection>& conn,
                               const Payload& body) {
  Result<Hello> hello = DecodeHello(body.data(), body.size());
  if (!hello.ok() || hello->fingerprint != options_.fingerprint) {
    ++counters_.frame_errors;
    CloseConnection(conn, "bad HELLO");
    return false;
  }
  if (conn->dialed) {
    // We dialed a specific replica; anyone else answering is an impostor.
    if (hello->sender != conn->peer) {
      ++counters_.frame_errors;
      CloseConnection(conn, "bad HELLO");
      return false;
    }
  } else {
    // Accepted side: the ownership rule says only higher-id replicas and
    // clients dial us. A HELLO claiming a lower replica id (or our own)
    // contradicts it — either a confused process or someone spoofing a
    // peer whose connection we already own.
    const PrincipalId sender = hello->sender;
    const bool valid_replica =
        IsReplicaPrincipal(sender) && sender > conn->local;
    const bool valid_client = sender >= kClientIdBase;
    if (!valid_replica && !valid_client) {
      ++counters_.frame_errors;
      CloseConnection(conn, "bad HELLO");
      return false;
    }
  }
  conn->hello_received = true;
  conn->peer = hello->sender;
  // Duplex channel established: route sends (local -> peer) here,
  // replacing any stale connection to the same peer. Close the stale
  // one first (which erases its map node), then insert ours.
  const auto key = std::make_pair(conn->local, conn->peer);
  auto existing = peers_.find(key);
  if (existing != peers_.end() && existing->second != conn) {
    CloseConnection(existing->second, "superseded");
  }
  peers_[key] = conn;
  if (conn->dialed) backoff_.erase({conn->local, conn->peer});
  return true;
}

void TcpTransport::DrainReadable(const std::shared_ptr<Connection>& conn) {
  // Hoisted once per drain: the handler lookup must not cost a map find
  // per message.
  LocalNode* const owner = conn->owner;
  while (true) {
    size_t cap = 0;
    uint8_t* head = conn->reader.WriteHead(&cap);
    const ssize_t n = read(conn->fd, head, cap);
    ++counters_.read_syscalls;
    if (n > 0) {
      counters_.bytes_received += static_cast<uint64_t>(n);
      const Status fed = conn->reader.Commit(static_cast<size_t>(n));
      if (!fed.ok()) {
        ++counters_.frame_errors;
        CloseConnection(conn, fed.ToString().c_str());
        return;
      }
      Payload body;
      while (conn->reader.Next(&body)) {
        if (!conn->hello_received) {
          if (!AcceptHello(conn, body)) return;
          continue;
        }
        // Every frame from the control principal is a fault command; one
        // that fails the strict decode kills the connection exactly like a
        // garbage data frame.
        if (conn->peer == options_.control_principal &&
            options_.control_principal >= 0) {
          Result<FaultCommand> command =
              DecodeFaultCommand(body.data(), body.size());
          if (!command.ok()) {
            ++counters_.frame_errors;
            CloseConnection(conn, "bad CONTROL");
            return;
          }
          ApplyControl(*command);
          continue;
        }
        ++counters_.messages_received;
        // A cut directed link is enforced at BOTH ends: frames already in
        // flight when the cut landed are refused here.
        if (fault_plane_.active() &&
            fault_plane_.ShouldDropInbound(conn->peer, conn->local)) {
          ++counters_.fault_dropped_rx;
          continue;
        }
        if (owner == nullptr || !owner->up || owner->handler == nullptr) {
          ++counters_.dropped_node_down;
          continue;
        }
        owner->handler->OnMessage(conn->peer, std::move(body));
        if (conn->fd < 0) return;  // handler-triggered teardown
      }
      // Short read: the kernel buffer is drained, skip the EAGAIN round
      // trip a full-capacity read would need to confirm it.
      if (static_cast<size_t>(n) < cap) return;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    // EOF (or hard error): a torn mid-frame close is a frame error worth
    // counting; either way the connection is gone.
    if (!conn->reader.OnPeerClose().ok()) ++counters_.frame_errors;
    CloseConnection(conn, "peer closed");
    return;
  }
}

void TcpTransport::FlushWrites(const std::shared_ptr<Connection>& conn) {
  while (!conn->write_queue.empty()) {
    iovec iov[kFlushIovs];
    size_t batch_bytes = 0;
    const size_t niov =
        conn->write_queue.BuildIovecs(iov, kFlushIovs, &batch_bytes);
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = niov;
    // MSG_NOSIGNAL: a peer that vanished (SIGKILLed node) must surface as
    // EPIPE -> CloseConnection, not kill this process with SIGPIPE.
    const ssize_t n = sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(conn, "write failed");
      return;
    }
    ++counters_.writev_syscalls;
    counters_.bytes_sent += static_cast<uint64_t>(n);
    counters_.frames_sent +=
        conn->write_queue.Advance(static_cast<size_t>(n));
    // Partial acceptance means the socket buffer is full; EPOLLOUT will
    // resume us.
    if (static_cast<size_t>(n) < batch_bytes) break;
  }
  const uint32_t interest =
      conn->write_queue.empty()
          ? EventLoop::kReadable
          : (EventLoop::kReadable | EventLoop::kWritable);
  loop_->ModifyFd(conn->fd, interest);  // no-op syscall-wise when unchanged
}

void TcpTransport::RequestFlush(const std::shared_ptr<Connection>& conn) {
  if (conn->flush_pending || conn->fd < 0 || conn->connecting) return;
  conn->flush_pending = true;
  flush_queue_.push_back(conn);
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  std::weak_ptr<bool> alive = alive_;
  // One posted drain per io batch, one flush per dirty connection: every
  // frame enqueued while handling this batch's events joins its
  // connection's single iovec chain, and the whole batch costs one
  // heap-allocated closure instead of one per connection.
  loop_->Post([this, alive] {
    if (alive.expired()) return;
    flush_scheduled_ = false;
    std::vector<std::shared_ptr<Connection>> batch;
    batch.swap(flush_queue_);
    for (const std::shared_ptr<Connection>& dirty : batch) {
      dirty->flush_pending = false;
      if (dirty->fd < 0 || dirty->connecting) continue;
      FlushWrites(dirty);
    }
  });
}

void TcpTransport::EnqueueFrame(const std::shared_ptr<Connection>& conn,
                                std::shared_ptr<const FrameBuffer> frame) {
  if (!conn->write_queue.Enqueue(std::move(frame))) {
    ++counters_.dropped_backpressure;
    return;
  }
  RequestFlush(conn);
}

void TcpTransport::CloseConnection(const std::shared_ptr<Connection>& conn,
                                   const char* why) {
  (void)why;
  if (conn->fd < 0) return;
  loop_->UnwatchFd(conn->fd);
  close(conn->fd);
  conn->fd = -1;
  conn->write_queue.Clear();
  auto it = peers_.find({conn->local, conn->peer});
  if (it != peers_.end() && it->second == conn) peers_.erase(it);
  // Swap-remove via the back-index: closes stay O(1) however many
  // connections a launcher process carries.
  const size_t index = conn->index;
  if (index < connections_.size() && connections_[index] == conn) {
    connections_[index] = std::move(connections_.back());
    connections_[index]->index = index;
    connections_.pop_back();
  }
  // The dialing side owns re-establishment; the accepting side just waits
  // for the peer to come back.
  if (conn->dialed) {
    auto& backoff = backoff_[{conn->local, conn->peer}];
    if (backoff == 0) backoff = options_.reconnect_initial;
    ScheduleRedial(conn->local, conn->peer, backoff);
    backoff = std::min(backoff * 2, options_.reconnect_max);
  }
}

std::shared_ptr<TcpTransport::Connection> TcpTransport::ConnectionFor(
    PrincipalId local, PrincipalId peer) const {
  auto it = peers_.find({local, peer});
  return it == peers_.end() ? nullptr : it->second;
}

void TcpTransport::Send(PrincipalId from, PrincipalId to, Payload payload) {
  auto local = locals_.find(from);
  if (local == locals_.end() || !local->second.up) {
    ++counters_.dropped_node_down;
    return;
  }
  if (IsLocal(to)) {
    DeliverLocally(from, to, std::move(payload));
    return;
  }
  std::shared_ptr<Connection> conn = ConnectionFor(from, to);
  if (conn == nullptr || !conn->hello_received) {
    ++counters_.dropped_no_connection;
    return;
  }
  if (fault_plane_.active() && fault_plane_.ShouldDropOutbound(from, to)) {
    ++counters_.fault_dropped_tx;
    return;
  }
  // Fan-out loops (SendToMany) pass the same immutable buffer once per
  // peer: wrap it once and share the frame, like an explicit Multicast.
  std::shared_ptr<const FrameBuffer> frame;
  const uint64_t payload_id = payload.id();
  if (payload_id != 0 && payload_id == memo_payload_id_) {
    frame = memo_frame_;
    if (!memo_reused_) {
      memo_reused_ = true;
      ++counters_.multicast_encodes;
      counters_.multicast_enqueues += 2;  // the memoized send + this one
    } else {
      ++counters_.multicast_enqueues;
    }
  } else {
    frame = FrameBuffer::Wrap(std::move(payload));
    memo_payload_id_ = payload_id;
    memo_frame_ = frame;
    memo_reused_ = false;
  }
  if (fault_plane_.active()) {
    const SimTime now = loop_->Now();
    const SimTime hold = fault_plane_.HoldFor(from, to, now);
    if (hold > 0) {
      ++counters_.fault_delayed;
      DeferFrame(from, to, std::move(frame), now + hold);
      return;
    }
  }
  ++counters_.messages_sent;
  EnqueueFrame(conn, frame);
}

void TcpTransport::DeferFrame(PrincipalId from, PrincipalId to,
                              std::shared_ptr<const FrameBuffer> frame,
                              SimTime release_at) {
  // Absolute deadline: the fault plane's release times are monotone per
  // directed link, and ScheduleAt fires equal deadlines in scheduling
  // order, so shaped frames keep FIFO. The relative form would re-read the
  // clock and smear clamped-equal releases by per-call skew, reordering.
  std::weak_ptr<bool> alive = alive_;
  loop_->ScheduleAt(
      release_at, [this, alive, from, to, frame = std::move(frame)] {
        if (alive.expired()) return;
        // The link may have been cut (or the connection died) while the
        // frame was held; either way the frame is loss, as it would be on
        // a real slow link.
        if (fault_plane_.IsCut(from, to)) {
          ++counters_.fault_dropped_tx;
          return;
        }
        std::shared_ptr<Connection> conn = ConnectionFor(from, to);
        if (conn == nullptr || !conn->hello_received) {
          ++counters_.dropped_no_connection;
          return;
        }
        ++counters_.messages_sent;
        EnqueueFrame(conn, frame);
      });
}

void TcpTransport::Multicast(PrincipalId from,
                             const std::vector<PrincipalId>& targets,
                             const Payload& payload) {
  auto local = locals_.find(from);
  if (local == locals_.end() || !local->second.up) {
    for (PrincipalId to : targets) {
      if (to != from) ++counters_.dropped_node_down;
    }
    return;
  }
  // Encode-once fan-out: one FrameBuffer (one CRC pass, zero body copies)
  // shared by every remote target's write queue. Built lazily so an
  // all-local or all-disconnected multicast builds nothing.
  std::shared_ptr<const FrameBuffer> frame;
  for (PrincipalId to : targets) {
    if (to == from) continue;
    if (IsLocal(to)) {
      DeliverLocally(from, to, payload);
      continue;
    }
    std::shared_ptr<Connection> conn = ConnectionFor(from, to);
    if (conn == nullptr || !conn->hello_received) {
      ++counters_.dropped_no_connection;
      continue;
    }
    if (fault_plane_.active() && fault_plane_.ShouldDropOutbound(from, to)) {
      ++counters_.fault_dropped_tx;
      continue;
    }
    if (frame == nullptr) {
      frame = FrameBuffer::Wrap(payload);
      ++counters_.multicast_encodes;
    }
    ++counters_.multicast_enqueues;
    if (fault_plane_.active()) {
      const SimTime now = loop_->Now();
      const SimTime hold = fault_plane_.HoldFor(from, to, now);
      if (hold > 0) {
        ++counters_.fault_delayed;
        DeferFrame(from, to, frame, now + hold);
        continue;
      }
    }
    ++counters_.messages_sent;
    EnqueueFrame(conn, frame);
  }
}

void TcpTransport::DeliverLocally(PrincipalId from, PrincipalId to,
                                  Payload payload) {
  // Defer past the current dispatch: same-process delivery must not
  // re-enter the sender's handler stack (mirrors the simulator, where
  // delivery is always a scheduled event). Post, not ScheduleAfter(0):
  // no timerfd rearm syscall on this path.
  std::weak_ptr<bool> alive = alive_;
  loop_->Post([this, alive, from, to, payload = std::move(payload)] {
    if (alive.expired()) return;
    auto it = locals_.find(to);
    if (it == locals_.end() || !it->second.up || it->second.handler == nullptr) {
      ++counters_.dropped_node_down;
      return;
    }
    ++counters_.messages_sent;
    ++counters_.messages_received;
    it->second.handler->OnMessage(from, std::move(payload));
  });
}

void TcpTransport::SetNodeUp(PrincipalId id, bool up) {
  auto it = locals_.find(id);
  if (it != locals_.end()) it->second.up = up;
}

SimTime TcpTransport::MeterBusy(PrincipalId id) const {
  auto it = locals_.find(id);
  if (it == locals_.end() || it->second.meter == nullptr) return 0;
  return it->second.meter->total_busy();
}

bool TcpTransport::ConnectedTo(PrincipalId peer) const {
  for (const auto& [key, conn] : peers_) {
    if (key.second == peer && conn->hello_received) return true;
  }
  return false;
}

void TcpTransport::ApplyControl(const FaultCommand& command) {
  switch (command.kind) {
    case ControlKind::kCutLink:
      fault_plane_.CutLink(command.from, command.to);
      return;
    case ControlKind::kRestoreLink:
      fault_plane_.RestoreLink(command.from, command.to);
      ResetDialBackoff();
      return;
    case ControlKind::kPartition:
      fault_plane_.PartitionClouds(options_.trusted_count,
                                   options_.num_replicas);
      return;
    case ControlKind::kHeal:
      if (fault_plane_.Heal()) ResetDialBackoff();
      return;
    case ControlKind::kShapeLink: {
      FaultPlane::Shape shape;
      shape.delay = Micros(static_cast<int64_t>(command.delay_us));
      shape.jitter = Micros(static_cast<int64_t>(command.jitter_us));
      shape.drop_ppm = command.drop_ppm;
      fault_plane_.ShapeLink(command.from, command.to, shape);
      return;
    }
    default:
      // Node-level commands (Byzantine flags, mode switches, primary
      // queries) belong to whoever hosts the replica.
      if (control_handler_) control_handler_(command);
      return;
  }
}

void TcpTransport::ResetDialBackoff() {
  for (auto& [key, backoff] : backoff_) {
    backoff = options_.reconnect_initial;
    // ScheduleRedial no-ops at fire time when a connection already exists,
    // so an extra round here only costs churn, never duplicates routes
    // (a superseded connection is closed by AcceptHello).
    ScheduleRedial(key.first, key.second, options_.reconnect_initial);
  }
}

}  // namespace rt
}  // namespace seemore
