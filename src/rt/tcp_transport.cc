#include "rt/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace seemore {
namespace rt {
namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

int NewTcpSocket() {
  return socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

TcpTransport::TcpTransport(EventLoop* loop, TcpTransportOptions options)
    : loop_(loop), options_(std::move(options)) {}

TcpTransport::~TcpTransport() {
  for (const std::shared_ptr<Connection>& conn : connections_) {
    if (conn->fd >= 0) {
      loop_->UnwatchFd(conn->fd);
      close(conn->fd);
      conn->fd = -1;
    }
  }
  for (const auto& [id, fd] : listeners_) {
    loop_->UnwatchFd(fd);
    close(fd);
  }
}

CpuMeter* TcpTransport::Register(PrincipalId id, Zone zone,
                                 MessageHandler* handler, bool metered) {
  (void)zone;  // zones shape the simulator's latency model, not real sockets
  LocalNode& node = locals_[id];
  node.handler = handler;
  node.up = true;
  if (metered) node.meter = std::make_unique<RtCpuMeter>(loop_);

  if (IsReplicaPrincipal(id)) {
    StartListener(id);
    // Deterministic connection ownership: dial every smaller replica id.
    for (PrincipalId peer = 0; peer < id; ++peer) DialPeer(id, peer);
  } else {
    for (PrincipalId peer = 0; peer < options_.num_replicas; ++peer) {
      DialPeer(id, peer);
    }
  }
  return node.meter.get();
}

bool TcpTransport::IsReplicaPrincipal(PrincipalId id) const {
  return id >= 0 && id < options_.num_replicas;
}

void TcpTransport::StartListener(PrincipalId id) {
  const int fd = NewTcpSocket();
  if (fd < 0) {
    if (status_.ok()) status_ = Errno("socket(listen)");
    return;
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr =
      LoopbackAddr(static_cast<uint16_t>(options_.base_port + id));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(fd, 64) < 0) {
    if (status_.ok()) status_ = Errno("bind/listen");
    close(fd);
    return;
  }
  listeners_[id] = fd;
  const Status watched =
      loop_->WatchFd(fd, EventLoop::kReadable,
                     [this, fd](uint32_t) { OnListenerReadable(fd); });
  if (!watched.ok() && status_.ok()) status_ = watched;
}

void TcpTransport::OnListenerReadable(int listen_fd) {
  // Which local replica owns this listener decides the accepted
  // connection's local end.
  PrincipalId local = -1;
  for (const auto& [id, fd] : listeners_) {
    if (fd == listen_fd) local = id;
  }
  while (true) {
    const int fd =
        accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      ++counters_.connection_failures;
      return;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ++counters_.connections_accepted;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->local = local;
    conn->reader = FrameReader(options_.max_frame);
    connections_.push_back(conn);
    const Status watched = loop_->WatchFd(
        fd, EventLoop::kReadable,
        [this, conn](uint32_t events) { OnConnectionEvent(conn, events); });
    if (!watched.ok()) {
      CloseConnection(conn, "watch failed");
      continue;
    }
    // Announce ourselves; the dialer's HELLO will identify the peer.
    EnqueueFrame(conn,
                 EncodeHello(Hello{local, options_.fingerprint}));
  }
}

void TcpTransport::DialPeer(PrincipalId local, PrincipalId peer) {
  const int fd = NewTcpSocket();
  if (fd < 0) {
    ++counters_.connection_failures;
    ScheduleRedial(local, peer, options_.reconnect_initial);
    return;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr =
      LoopbackAddr(static_cast<uint16_t>(options_.base_port + peer));
  const int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    close(fd);
    ++counters_.connection_failures;
    auto& backoff = backoff_[{local, peer}];
    if (backoff == 0) backoff = options_.reconnect_initial;
    ScheduleRedial(local, peer, backoff);
    backoff = std::min(backoff * 2, options_.reconnect_max);
    return;
  }
  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  conn->local = local;
  conn->peer = peer;
  conn->dialed = true;
  conn->connecting = (rc < 0);
  conn->reader = FrameReader(options_.max_frame);
  connections_.push_back(conn);
  const uint32_t interest = conn->connecting
                                ? EventLoop::kWritable
                                : (EventLoop::kReadable | EventLoop::kWritable);
  const Status watched = loop_->WatchFd(
      fd, interest,
      [this, conn](uint32_t events) { OnConnectionEvent(conn, events); });
  if (!watched.ok()) {
    CloseConnection(conn, "watch failed");
    return;
  }
  if (!conn->connecting) FinishConnect(conn);
}

void TcpTransport::ScheduleRedial(PrincipalId local, PrincipalId peer,
                                  SimTime delay) {
  std::weak_ptr<bool> alive = alive_;
  loop_->ScheduleAfter(delay, [this, alive, local, peer] {
    if (alive.expired()) return;
    // Still no established connection (nothing beat us to it)?
    if (ConnectionFor(local, peer) != nullptr) return;
    DialPeer(local, peer);
  });
}

void TcpTransport::FinishConnect(const std::shared_ptr<Connection>& conn) {
  conn->connecting = false;
  ++counters_.connections_dialed;
  loop_->ModifyFd(conn->fd, EventLoop::kReadable);
  EnqueueFrame(conn, EncodeHello(Hello{conn->local, options_.fingerprint}));
}

void TcpTransport::OnConnectionEvent(const std::shared_ptr<Connection>& conn,
                                     uint32_t events) {
  if (conn->fd < 0) return;
  if (conn->connecting) {
    if (events & (EventLoop::kWritable | EventLoop::kError)) {
      int err = 0;
      socklen_t len = sizeof(err);
      getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        ++counters_.connection_failures;
        CloseConnection(conn, "connect failed");
        return;
      }
      FinishConnect(conn);
    }
    return;
  }
  if (events & EventLoop::kError) {
    CloseConnection(conn, "socket error");
    return;
  }
  if (events & EventLoop::kReadable) {
    DrainReadable(conn);
    if (conn->fd < 0) return;  // closed during the drain
  }
  if (events & EventLoop::kWritable) FlushWrites(conn);
}

void TcpTransport::DrainReadable(const std::shared_ptr<Connection>& conn) {
  uint8_t buf[64 * 1024];
  while (true) {
    const ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      counters_.bytes_received += static_cast<uint64_t>(n);
      const Status fed = conn->reader.Feed(buf, static_cast<size_t>(n));
      if (!fed.ok()) {
        ++counters_.frame_errors;
        CloseConnection(conn, fed.ToString().c_str());
        return;
      }
      Bytes body;
      while (conn->reader.Next(&body)) {
        if (!conn->hello_received) {
          Result<Hello> hello = DecodeHello(body);
          if (!hello.ok() || hello->fingerprint != options_.fingerprint ||
              (conn->dialed && hello->sender != conn->peer)) {
            ++counters_.frame_errors;
            CloseConnection(conn, "bad HELLO");
            return;
          }
          conn->hello_received = true;
          conn->peer = hello->sender;
          // Duplex channel established: route sends (local -> peer) here,
          // replacing any stale connection to the same peer. Close the stale
          // one first (which erases its map node), then insert ours.
          const auto key = std::make_pair(conn->local, conn->peer);
          auto existing = peers_.find(key);
          if (existing != peers_.end() && existing->second != conn) {
            CloseConnection(existing->second, "superseded");
          }
          peers_[key] = conn;
          if (conn->dialed) backoff_.erase({conn->local, conn->peer});
          continue;
        }
        ++counters_.messages_received;
        auto it = locals_.find(conn->local);
        if (it == locals_.end() || !it->second.up ||
            it->second.handler == nullptr) {
          ++counters_.dropped_node_down;
          continue;
        }
        it->second.handler->OnMessage(conn->peer, Payload(std::move(body)));
        if (conn->fd < 0) return;  // handler-triggered teardown
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    // EOF (or hard error): a torn mid-frame close is a frame error worth
    // counting; either way the connection is gone.
    if (!conn->reader.OnPeerClose().ok()) ++counters_.frame_errors;
    CloseConnection(conn, "peer closed");
    return;
  }
}

void TcpTransport::FlushWrites(const std::shared_ptr<Connection>& conn) {
  while (!conn->write_queue.empty()) {
    const Bytes& head = conn->write_queue.front();
    // MSG_NOSIGNAL: a peer that vanished (SIGKILLed node) must surface as
    // EPIPE -> CloseConnection, not kill this process with SIGPIPE.
    const ssize_t n = send(conn->fd, head.data() + conn->head_offset,
                           head.size() - conn->head_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(conn, "write failed");
      return;
    }
    counters_.bytes_sent += static_cast<uint64_t>(n);
    conn->head_offset += static_cast<size_t>(n);
    if (conn->head_offset == head.size()) {
      conn->queued_bytes -= head.size();
      conn->write_queue.pop_front();
      conn->head_offset = 0;
    }
  }
  const uint32_t interest =
      conn->write_queue.empty()
          ? EventLoop::kReadable
          : (EventLoop::kReadable | EventLoop::kWritable);
  loop_->ModifyFd(conn->fd, interest);
}

void TcpTransport::EnqueueFrame(const std::shared_ptr<Connection>& conn,
                                Bytes frame) {
  if (conn->queued_bytes + frame.size() > options_.max_queued_bytes) {
    ++counters_.dropped_backpressure;
    return;
  }
  conn->queued_bytes += frame.size();
  conn->write_queue.push_back(std::move(frame));
  FlushWrites(conn);
}

void TcpTransport::CloseConnection(const std::shared_ptr<Connection>& conn,
                                   const char* why) {
  (void)why;
  if (conn->fd < 0) return;
  loop_->UnwatchFd(conn->fd);
  close(conn->fd);
  conn->fd = -1;
  auto it = peers_.find({conn->local, conn->peer});
  if (it != peers_.end() && it->second == conn) peers_.erase(it);
  for (size_t i = 0; i < connections_.size(); ++i) {
    if (connections_[i] == conn) {
      connections_.erase(connections_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  // The dialing side owns re-establishment; the accepting side just waits
  // for the peer to come back.
  if (conn->dialed) {
    auto& backoff = backoff_[{conn->local, conn->peer}];
    if (backoff == 0) backoff = options_.reconnect_initial;
    ScheduleRedial(conn->local, conn->peer, backoff);
    backoff = std::min(backoff * 2, options_.reconnect_max);
  }
}

std::shared_ptr<TcpTransport::Connection> TcpTransport::ConnectionFor(
    PrincipalId local, PrincipalId peer) const {
  auto it = peers_.find({local, peer});
  return it == peers_.end() ? nullptr : it->second;
}

void TcpTransport::Send(PrincipalId from, PrincipalId to, Payload payload) {
  auto local = locals_.find(from);
  if (local == locals_.end() || !local->second.up) {
    ++counters_.dropped_node_down;
    return;
  }
  if (IsLocal(to)) {
    DeliverLocally(from, to, std::move(payload));
    return;
  }
  std::shared_ptr<Connection> conn = ConnectionFor(from, to);
  if (conn == nullptr || !conn->hello_received) {
    ++counters_.dropped_no_connection;
    return;
  }
  ++counters_.messages_sent;
  EnqueueFrame(conn, EncodeFrame(payload.data(), payload.size()));
}

void TcpTransport::Multicast(PrincipalId from,
                             const std::vector<PrincipalId>& targets,
                             const Payload& payload) {
  for (PrincipalId to : targets) {
    if (to == from) continue;
    Send(from, to, payload);
  }
}

void TcpTransport::DeliverLocally(PrincipalId from, PrincipalId to,
                                  Payload payload) {
  // Defer to the next loop turn: same-process delivery must not re-enter
  // the sender's handler stack (mirrors the simulator, where delivery is
  // always a scheduled event).
  std::weak_ptr<bool> alive = alive_;
  loop_->ScheduleAfter(0, [this, alive, from, to,
                           payload = std::move(payload)] {
    if (alive.expired()) return;
    auto it = locals_.find(to);
    if (it == locals_.end() || !it->second.up || it->second.handler == nullptr) {
      ++counters_.dropped_node_down;
      return;
    }
    ++counters_.messages_sent;
    ++counters_.messages_received;
    it->second.handler->OnMessage(from, std::move(payload));
  });
}

void TcpTransport::SetNodeUp(PrincipalId id, bool up) {
  auto it = locals_.find(id);
  if (it != locals_.end()) it->second.up = up;
}

SimTime TcpTransport::MeterBusy(PrincipalId id) const {
  auto it = locals_.find(id);
  if (it == locals_.end() || it->second.meter == nullptr) return 0;
  return it->second.meter->total_busy();
}

bool TcpTransport::ConnectedTo(PrincipalId peer) const {
  for (const auto& [key, conn] : peers_) {
    if (key.second == peer && conn->hello_received) return true;
  }
  return false;
}

}  // namespace rt
}  // namespace seemore
