// StorageMedium over real files: the durability backend for node processes.
//
// Each node process points one PosixMedium at its own data directory; the
// WAL / snapshot store stack (storage/durable_store.h) runs unmodified on
// top, exactly as it does over MemMedium in the simulator. File names map
// 1:1 to directory entries (names never contain '/'), Append keeps an open
// O_APPEND descriptor per file, and Sync is a real fsync — so a SIGKILLed
// node that is respawned with the same directory recovers through the same
// FileDurableStore::Recover path the simulator's restart events exercise.
//
// Not thread-safe: one node process owns its medium on the event-loop
// thread, the same ownership MemMedium has under a scenario run.

#ifndef SEEMORE_RT_POSIX_MEDIUM_H_
#define SEEMORE_RT_POSIX_MEDIUM_H_

#include <map>
#include <string>

#include "storage/medium.h"

namespace seemore {
namespace rt {

class PosixMedium final : public storage::StorageMedium {
 public:
  /// Creates `dir` (one level) when absent. Check status() before use.
  explicit PosixMedium(std::string dir);
  ~PosixMedium() override;

  PosixMedium(const PosixMedium&) = delete;
  PosixMedium& operator=(const PosixMedium&) = delete;

  const Status& status() const { return status_; }

  Status Append(const std::string& name, const uint8_t* data,
                size_t len) override;
  Result<Bytes> ReadFile(const std::string& name) const override;
  Result<uint64_t> SizeOf(const std::string& name) const override;
  bool Exists(const std::string& name) const override;
  std::vector<std::string> List(const std::string& prefix) const override;
  Status TruncateTo(const std::string& name, uint64_t size) override;
  Status Remove(const std::string& name) override;
  Status Sync(const std::string& name) override;
  Status SyncAll() override;

 private:
  std::string PathFor(const std::string& name) const;
  /// Cached O_APPEND fd for `name`, opened (and created) on demand.
  Result<int> AppendFdFor(const std::string& name);
  void DropFd(const std::string& name);
  /// fsync of the directory itself: a created or unlinked directory entry
  /// is not durable across power loss until this runs.
  Status SyncDir();

  const std::string dir_;
  Status status_;
  std::map<std::string, int> append_fds_;
};

}  // namespace rt
}  // namespace seemore

#endif  // SEEMORE_RT_POSIX_MEDIUM_H_
