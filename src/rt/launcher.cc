#include "rt/launcher.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>

#include "harness/policies.h"
#include "rt/event_loop.h"
#include "rt/posix_medium.h"
#include "rt/tcp_transport.h"
#include "smr/client.h"

namespace seemore {
namespace rt {
namespace {

std::string SelfDir() {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  std::string path(buf);
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return Status::Internal("cannot write " + path);
  std::fwrite(text.data(), 1, text.size(), out);
  std::fclose(out);
  return Status::Ok();
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "r");
  if (in == nullptr) return Status::NotFound("cannot read " + path);
  std::string text;
  char buf[64 * 1024];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) text.append(buf, n);
  std::fclose(in);
  return text;
}

void RemoveTree(const std::string& path) {
  DIR* dir = opendir(path.c_str());
  if (dir != nullptr) {
    while (dirent* entry = readdir(dir)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      const std::string child = path + "/" + name;
      struct stat st{};
      if (lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        RemoveTree(child);
      } else {
        unlink(child.c_str());
      }
    }
    closedir(dir);
  }
  rmdir(path.c_str());
}

void SleepMillis(int ms) {
  timespec ts{ms / 1000, static_cast<long>(ms % 1000) * 1000000L};
  nanosleep(&ts, nullptr);
}

/// One node process slot (indexed by replica id across incarnations).
struct Child {
  int id = 0;
  pid_t pid = -1;
  bool alive = false;
  std::string data_dir;     // empty when durability is off
  std::string report_path;
};

class Launcher {
 public:
  Launcher(const scenario::ScenarioSpec& spec, const LauncherOptions& options)
      : spec_(spec), options_(options), config_(spec.ResolvedConfig()) {}

  ~Launcher() {
    clients_.clear();  // clients reference transport/loop
    transport_.reset();
    loop_.reset();
    KillAll(SIGKILL);
    if (!work_dir_.empty() && !options_.keep_work_dir) RemoveTree(work_dir_);
  }

  Result<TcpRunReport> Run();

 private:
  /// Receives CONTROL replies (kPrimaryReply) addressed to the launcher's
  /// fault-controller principal.
  struct ControlSink : MessageHandler {
    explicit ControlSink(Launcher* launcher) : launcher(launcher) {}
    void OnMessage(PrincipalId from, Payload payload) override {
      launcher->OnControlReply(from, std::move(payload));
    }
    Launcher* launcher;
  };

  Status Setup();
  Status SpawnChild(Child& child);
  void KillChild(Child& child);
  void KillAll(int sig);
  Status AwaitCluster();
  void ScheduleRun();
  void ApplyScheduledEvent(const scenario::ScenarioEvent& event);
  void FinishCrashPrimary();
  Status TamperWal(const scenario::ScenarioEvent& event);
  /// Send one fault command over the control channel to a single node /
  /// every live node.
  void SendControl(int replica, const FaultCommand& command);
  void BroadcastControl(const FaultCommand& command);
  void OnControlReply(PrincipalId from, Payload payload);
  void ReapAll();
  void CollectReports(TcpRunReport& report);
  void CheckInvariants(TcpRunReport& report);
  void Note(const std::string& line) {
    if (options_.verbose) std::fprintf(stderr, "[launcher] %s\n", line.c_str());
  }

  const scenario::ScenarioSpec& spec_;
  const LauncherOptions options_;
  const ClusterConfig config_;

  std::string node_binary_;
  std::string work_dir_;
  std::string spec_path_;
  std::vector<Child> children_;

  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<TcpTransport> transport_;
  std::unique_ptr<KeyStore> keystore_;
  std::vector<std::unique_ptr<SimClient>> clients_;

  std::vector<scenario::AppliedEvent> applied_;
  /// Replicas the schedule has turned Byzantine: their reports are excluded
  /// from the agreement and convergence checks (a faulty node's digests are
  /// allowed to lie), mirroring the sim engine's ScheduleState.byzantine.
  std::set<int> byzantine_;
  /// Per-replica tallies of kPrimaryReply answers for an in-flight
  /// crash-primary event (empty when none is pending).
  std::vector<int> primary_votes_;
  ControlSink control_sink_{this};
  SimTime t0_ = 0;
  SimTime measure_start_ = 0;
  SimTime measure_end_ = 0;
};

Status Launcher::Setup() {
  node_binary_ = options_.node_binary.empty() ? SelfDir() + "/seemore_node"
                                              : options_.node_binary;
  if (access(node_binary_.c_str(), X_OK) != 0) {
    return Status::NotFound("node binary not executable: " + node_binary_);
  }
  if (options_.work_dir.empty()) {
    char tmpl[] = "/tmp/seemore-rt-XXXXXX";
    if (mkdtemp(tmpl) == nullptr) {
      return Status::Internal("mkdtemp failed");
    }
    work_dir_ = tmpl;
  } else {
    work_dir_ = options_.work_dir;
    if (mkdir(work_dir_.c_str(), 0755) < 0 && errno != EEXIST) {
      return Status::Internal("cannot create work dir " + work_dir_);
    }
  }
  spec_path_ = work_dir_ + "/spec.json";
  return WriteTextFile(spec_path_, spec_.ToJsonText());
}

Status Launcher::SpawnChild(Child& child) {
  std::vector<std::string> args;
  args.push_back(node_binary_);
  args.push_back("--spec=" + spec_path_);
  args.push_back("--id=" + std::to_string(child.id));
  args.push_back("--base-port=" + std::to_string(options_.base_port));
  args.push_back("--report=" + child.report_path);
  if (!child.data_dir.empty()) args.push_back("--data-dir=" + child.data_dir);
  // Orphan protection: the whole run plus a generous margin.
  const SimTime total = spec_.plan.warmup + spec_.plan.measure +
                        spec_.plan.drain + Seconds(120);
  args.push_back("--max-run-ms=" + std::to_string(total / kNanosPerMilli));

  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) return Status::Internal("fork failed");
  if (pid == 0) {
    execv(node_binary_.c_str(), argv.data());
    _exit(127);  // exec failed; nothing sane to do in the child
  }
  child.pid = pid;
  child.alive = true;
  Note("spawned node " + std::to_string(child.id) + " pid " +
       std::to_string(pid));
  return Status::Ok();
}

void Launcher::KillChild(Child& child) {
  if (!child.alive) return;
  kill(child.pid, SIGKILL);
  waitpid(child.pid, nullptr, 0);
  child.alive = false;
}

void Launcher::KillAll(int sig) {
  for (Child& child : children_) {
    if (!child.alive) continue;
    kill(child.pid, sig);
    if (sig == SIGKILL) {
      waitpid(child.pid, nullptr, 0);
      child.alive = false;
    }
  }
}

Status Launcher::AwaitCluster() {
  const SimTime deadline = loop_->Now() + options_.connect_timeout;
  while (true) {
    bool all = true;
    for (int r = 0; r < config_.n(); ++r) {
      if (!transport_->ConnectedTo(r)) {
        all = false;
        break;
      }
    }
    if (all) return Status::Ok();
    if (loop_->Now() >= deadline) {
      return Status::Unavailable("cluster did not come up within timeout");
    }
    loop_->Run(Millis(25));
  }
}

void Launcher::ScheduleRun() {
  t0_ = loop_->Now();
  measure_start_ = t0_ + spec_.plan.warmup;

  loop_->ScheduleAfter(spec_.plan.warmup, [this] {
    for (auto& client : clients_) client->ResetStats();
    measure_start_ = loop_->Now();  // honest real-time window start
  });

  for (const scenario::ScenarioEvent& event : spec_.schedule) {
    const SimTime at = event.at < 0 ? 0 : event.at;
    loop_->ScheduleAfter(at, [this, event] { ApplyScheduledEvent(event); });
  }

  loop_->ScheduleAfter(spec_.plan.warmup + spec_.plan.measure, [this] {
    measure_end_ = loop_->Now();
    for (auto& client : clients_) client->Stop();
  });

  loop_->ScheduleAfter(spec_.plan.warmup + spec_.plan.measure +
                           spec_.plan.drain,
                       [this] { loop_->Stop(); });
}

void Launcher::SendControl(int replica, const FaultCommand& command) {
  transport_->Send(kFaultControllerId, replica,
                   Payload(EncodeFaultCommandBody(command)));
}

void Launcher::BroadcastControl(const FaultCommand& command) {
  for (const Child& child : children_) {
    if (child.alive) SendControl(child.id, command);
  }
}

void Launcher::OnControlReply(PrincipalId from, Payload payload) {
  Result<FaultCommand> command =
      DecodeFaultCommand(payload.data(), payload.size());
  if (!command.ok()) {
    Note("bad control reply from " + std::to_string(from) + ": " +
         command.status().ToString());
    return;
  }
  if (command->kind == ControlKind::kPrimaryReply && command->value > 0 &&
      !primary_votes_.empty()) {
    const int primary = static_cast<int>(command->value) - 1;
    if (primary >= 0 && primary < config_.n()) {
      primary_votes_[static_cast<size_t>(primary)] += 1;
    }
  }
}

Status Launcher::TamperWal(const scenario::ScenarioEvent& event) {
  Child& child = children_[static_cast<size_t>(event.replica)];
  if (child.alive) {
    return Status::FailedPrecondition("wal tampering target is not crashed");
  }
  if (child.data_dir.empty()) {
    return Status::FailedPrecondition("wal tampering requires durability");
  }
  // Same semantics as Cluster::TruncateWalTail / CorruptWalTail, applied to
  // the dead process's on-disk WAL through the same medium type the node
  // itself writes with.
  PosixMedium medium(child.data_dir);
  SEEMORE_RETURN_IF_ERROR(medium.status());
  const std::vector<std::string> segments = medium.List("wal-");
  if (segments.empty()) {
    return Status::FailedPrecondition("no wal segments to tamper");
  }
  const std::string& last = segments.back();
  SEEMORE_ASSIGN_OR_RETURN(uint64_t size, medium.SizeOf(last));
  if (event.kind == scenario::EventKind::kTruncateLog) {
    const uint64_t bytes_from_end = static_cast<uint64_t>(event.arg);
    const uint64_t cut = bytes_from_end >= size ? 0 : size - bytes_from_end;
    return medium.TruncateTo(last, cut);
  }
  if (size == 0) return Status::FailedPrecondition("empty wal segment");
  const uint64_t offset_from_end = static_cast<uint64_t>(event.arg);
  const uint64_t offset =
      offset_from_end >= size ? 0 : size - 1 - offset_from_end;
  // PosixMedium has no FlipBit (real disks don't corrupt on request);
  // flip the bit directly in the segment file.
  const std::string path = child.data_dir + "/" + last;
  const int fd = open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return Status::Internal("cannot open " + path);
  uint8_t byte = 0;
  if (pread(fd, &byte, 1, static_cast<off_t>(offset)) != 1) {
    close(fd);
    return Status::Internal("cannot read " + path);
  }
  byte ^= 1u;
  const bool wrote = pwrite(fd, &byte, 1, static_cast<off_t>(offset)) == 1;
  close(fd);
  if (!wrote) return Status::Internal("cannot write " + path);
  return Status::Ok();
}

void Launcher::ApplyScheduledEvent(const scenario::ScenarioEvent& event) {
  using scenario::EventKind;
  scenario::AppliedEvent applied;
  applied.at = loop_->Now() - t0_;
  switch (event.kind) {
    case EventKind::kCrash:
    case EventKind::kPowerLoss: {
      // A SIGKILL is both: the process loses its memory, the data dir keeps
      // whatever reached the filesystem.
      Child& child = children_[static_cast<size_t>(event.replica)];
      KillChild(child);
      applied.description =
          (event.kind == EventKind::kCrash
               ? "crash replica " + std::to_string(child.id)
               : "power loss at replica " + std::to_string(child.id)) +
          " (SIGKILL)";
      break;
    }
    case EventKind::kRecover:
    case EventKind::kRestart: {
      Child& child = children_[static_cast<size_t>(event.replica)];
      if (child.alive) {
        applied.description = "restart skipped: replica " +
                              std::to_string(child.id) + " is alive";
        break;
      }
      const Status spawned = SpawnChild(child);
      applied.description =
          spawned.ok()
              ? "respawn replica " + std::to_string(child.id) +
                    (child.data_dir.empty() ? " (fresh)"
                                            : " (durable data dir)")
              : "respawn failed: " + spawned.ToString();
      break;
    }
    case EventKind::kTruncateLog:
    case EventKind::kCorruptLog: {
      const Status status = TamperWal(event);
      applied.description =
          (event.kind == EventKind::kTruncateLog
               ? "truncate replica " + std::to_string(event.replica) +
                     "'s wal tail by " + std::to_string(event.arg) + " bytes"
               : "flip a bit " + std::to_string(event.arg) +
                     " bytes before the end of replica " +
                     std::to_string(event.replica) + "'s wal") +
          (status.ok() ? "" : " (" + status.ToString() + ")");
      break;
    }
    case EventKind::kByzantine: {
      FaultCommand command;
      command.kind = ControlKind::kSetByzantine;
      command.replica = event.replica;
      command.byz_flags = event.byz_flags;
      SendControl(event.replica, command);
      if (event.byz_flags != kByzNone) {
        byzantine_.insert(event.replica);
      } else {
        byzantine_.erase(event.replica);
      }
      applied.description = "replica " + std::to_string(event.replica) +
                            " turns Byzantine (" +
                            scenario::ByzFlagsToken(event.byz_flags) + ")";
      break;
    }
    case EventKind::kSwitch: {
      FaultCommand command;
      command.kind = ControlKind::kSwitchMode;
      command.mode = static_cast<uint8_t>(event.target_mode);
      // Broadcast: each node checks whether it is the switch authority.
      BroadcastControl(command);
      applied.description = std::string("switch mode to ") +
                            scenario::SeeMoReModeToken(event.target_mode);
      break;
    }
    case EventKind::kPartitionClouds: {
      FaultCommand command;
      command.kind = ControlKind::kPartition;
      BroadcastControl(command);
      applied.description =
          "partition the private cloud from the public cloud";
      break;
    }
    case EventKind::kHealClouds: {
      FaultCommand command;
      command.kind = ControlKind::kHeal;
      BroadcastControl(command);
      applied.description = "heal the cross-cloud partition";
      break;
    }
    case EventKind::kCutLink:
    case EventKind::kRestoreLink: {
      const bool cut = event.kind == EventKind::kCutLink;
      FaultCommand command;
      command.kind = cut ? ControlKind::kCutLink : ControlKind::kRestoreLink;
      command.from = event.replica;
      command.to = event.peer;
      // Both endpoints (and everyone else, harmlessly) learn of the cut, so
      // the direction is enforced at the sender and the receiver.
      BroadcastControl(command);
      applied.description = std::string(cut ? "cut" : "restore") +
                            " the directed link " +
                            std::to_string(event.replica) + " -> " +
                            std::to_string(event.peer);
      break;
    }
    case EventKind::kShapeLink: {
      FaultCommand command;
      command.kind = ControlKind::kShapeLink;
      command.from = event.replica;
      command.to = event.peer;
      command.delay_us = static_cast<uint64_t>(event.delay / kNanosPerMicro);
      command.jitter_us =
          static_cast<uint64_t>(event.jitter / kNanosPerMicro);
      command.drop_ppm = static_cast<uint32_t>(event.arg);
      BroadcastControl(command);
      applied.description =
          "shape the directed link " + std::to_string(event.replica) +
          " -> " + std::to_string(event.peer) + " (+" +
          std::to_string(event.delay / kNanosPerMicro) + "us delay, " +
          std::to_string(event.jitter / kNanosPerMicro) + "us jitter, " +
          std::to_string(event.arg) + "ppm drop)";
      break;
    }
    case EventKind::kCrashPrimary: {
      // Nobody here knows the view; ask every live node over the control
      // channel and kill the plurality answer once the replies are in.
      primary_votes_.assign(static_cast<size_t>(config_.n()), 0);
      FaultCommand query;
      query.kind = ControlKind::kQueryPrimary;
      BroadcastControl(query);
      loop_->ScheduleAfter(Millis(300), [this] { FinishCrashPrimary(); });
      return;  // the decision records the applied event
    }
  }
  Note(applied.description);
  applied_.push_back(std::move(applied));
}

void Launcher::FinishCrashPrimary() {
  scenario::AppliedEvent applied;
  applied.at = loop_->Now() - t0_;
  int best = -1;
  for (int r = 0; r < config_.n(); ++r) {
    if (primary_votes_[static_cast<size_t>(r)] == 0) continue;
    if (best < 0 || primary_votes_[static_cast<size_t>(r)] >
                        primary_votes_[static_cast<size_t>(best)]) {
      best = r;
    }
  }
  primary_votes_.clear();
  if (best < 0) {
    applied.description =
        "crash the current primary (skipped: no replica answered the "
        "primary query)";
  } else {
    KillChild(children_[static_cast<size_t>(best)]);
    applied.description = "crash the current primary (replica " +
                          std::to_string(best) + ", SIGKILL)";
  }
  Note(applied.description);
  applied_.push_back(std::move(applied));
}

void Launcher::ReapAll() {
  KillAll(SIGTERM);
  const int grace_ms =
      static_cast<int>(options_.shutdown_grace / kNanosPerMilli);
  for (int waited = 0; waited < grace_ms; waited += 20) {
    bool any = false;
    for (Child& child : children_) {
      if (!child.alive) continue;
      int wstatus = 0;
      const pid_t done = waitpid(child.pid, &wstatus, WNOHANG);
      if (done == child.pid) {
        child.alive = false;
        if (WIFSIGNALED(wstatus) && WTERMSIG(wstatus) != SIGTERM) {
          Note("node " + std::to_string(child.id) + " died on signal " +
               std::to_string(WTERMSIG(wstatus)));
        } else if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) != 0) {
          Note("node " + std::to_string(child.id) + " exited with status " +
               std::to_string(WEXITSTATUS(wstatus)));
        }
      } else {
        any = true;
      }
    }
    if (!any) return;
    SleepMillis(20);
  }
  KillAll(SIGKILL);  // report missing; CollectReports stubs them
}

void Launcher::CollectReports(TcpRunReport& report) {
  for (const Child& child : children_) {
    Result<std::string> text = ReadTextFile(child.report_path);
    if (text.ok()) {
      Result<Json> parsed = Json::Parse(*text);
      if (parsed.ok()) {
        report.nodes.push_back(std::move(*parsed));
        continue;
      }
    }
    Json stub = Json::Object();
    stub.Set("id", child.id);
    stub.Set("crashed", true);
    report.nodes.push_back(std::move(stub));
  }
}

void Launcher::CheckInvariants(TcpRunReport& report) {
  // Agreement across the sampled executed-digest logs: any two nodes that
  // both report a digest for a sequence number must report the same one.
  std::map<uint64_t, std::pair<int, std::string>> seen;
  for (const Json& node : report.nodes) {
    const Json* samples = node.Find("digest_samples");
    const Json* id = node.Find("id");
    if (samples == nullptr || !samples->is_array() || id == nullptr) continue;
    // A Byzantine replica's report is allowed to lie; only honest nodes
    // participate in the agreement check (same rule as the sim engine).
    if (byzantine_.count(static_cast<int>(id->AsInt())) > 0) continue;
    for (const Json& sample : samples->items()) {
      // A partially written report can parse as JSON yet miss fields; skip
      // malformed samples rather than crash the launcher on them.
      const Json* seq_field = sample.Find("seq");
      const Json* digest_field = sample.Find("digest");
      if (seq_field == nullptr || digest_field == nullptr) continue;
      const uint64_t seq = static_cast<uint64_t>(seq_field->AsInt());
      const std::string& digest = digest_field->AsString();
      auto [it, inserted] = seen.emplace(
          seq, std::make_pair(static_cast<int>(id->AsInt()), digest));
      if (!inserted && it->second.second != digest) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "replicas %d and %d disagree at seq %llu",
                      it->second.first, static_cast<int>(id->AsInt()),
                      static_cast<unsigned long long>(seq));
        report.agreement = Status::Internal(buf);
        return;
      }
    }
  }
  report.agreement = Status::Ok();

  if (!spec_.plan.check_convergence) return;
  report.convergence_checked = true;
  report.convergence = Status::Ok();
  uint64_t expected_seq = 0;
  std::string expected_digest;
  bool first = true;
  for (const Json& node : report.nodes) {
    const Json* crashed = node.Find("crashed");
    if (crashed != nullptr && crashed->AsBool()) continue;
    const Json* node_id = node.Find("id");
    if (node_id != nullptr &&
        byzantine_.count(static_cast<int>(node_id->AsInt())) > 0) {
      continue;
    }
    const Json* last = node.Find("last_executed");
    const Json* digest = node.Find("state_digest");
    if (last == nullptr || digest == nullptr) continue;
    if (first) {
      expected_seq = static_cast<uint64_t>(last->AsInt());
      expected_digest = digest->AsString();
      first = false;
      continue;
    }
    if (static_cast<uint64_t>(last->AsInt()) != expected_seq ||
        digest->AsString() != expected_digest) {
      const Json* id = node.Find("id");
      char buf[160];
      std::snprintf(
          buf, sizeof(buf),
          "replica %d diverged: executed %llu, expected %llu",
          id != nullptr ? static_cast<int>(id->AsInt()) : -1,
          static_cast<unsigned long long>(last->AsInt()),
          static_cast<unsigned long long>(expected_seq));
      report.convergence = Status::Internal(buf);
      return;
    }
  }
}

Result<TcpRunReport> Launcher::Run() {
  SEEMORE_RETURN_IF_ERROR(Setup());

  // Node processes first: their listeners must exist for the gate below.
  children_.resize(static_cast<size_t>(config_.n()));
  for (int i = 0; i < config_.n(); ++i) {
    Child& child = children_[static_cast<size_t>(i)];
    child.id = i;
    child.report_path = work_dir_ + "/node-" + std::to_string(i) + ".json";
    if (spec_.durability.enabled) {
      child.data_dir = work_dir_ + "/node-" + std::to_string(i) + "-data";
    }
    SEEMORE_RETURN_IF_ERROR(SpawnChild(child));
  }

  loop_ = std::make_unique<EventLoop>();
  SEEMORE_RETURN_IF_ERROR(loop_->init_status());
  TcpTransportOptions transport_options;
  transport_options.num_replicas = config_.n();
  transport_options.base_port = options_.base_port;
  transport_options.fingerprint = spec_.seed;
  transport_ = std::make_unique<TcpTransport>(loop_.get(), transport_options);
  keystore_ =
      std::make_unique<KeyStore>(spec_.seed ^ 0x5eed'c0de'5eed'c0deULL);

  // The fault controller dials every node like a client; those HELLO'd
  // connections are the control channel the schedule speaks over (and the
  // path kPrimaryReply answers come back on).
  transport_->Register(kFaultControllerId, Zone::kClient, &control_sink_,
                       /*metered=*/false);

  for (int i = 0; i < spec_.clients; ++i) {
    ClientOptions client_options;
    client_options.id = kClientIdBase + i;
    client_options.retransmit_timeout = spec_.client_retransmit_timeout;
    clients_.push_back(std::make_unique<SimClient>(
        transport_.get(), loop_.get(), keystore_.get(), client_options,
        MakeReplyPolicy(config_)));
  }

  SEEMORE_RETURN_IF_ERROR(AwaitCluster());
  Note("cluster up, starting clients");

  OpFactory workload = scenario::MakeWorkload(spec_);
  for (auto& client : clients_) client->Start(workload);
  ScheduleRun();

  // Hard cap well past the schedule: a hung cluster must not hang the tool.
  loop_->Run(spec_.plan.warmup + spec_.plan.measure + spec_.plan.drain +
             Seconds(30));
  const SimTime run_end = loop_->Now();
  if (measure_end_ == 0) measure_end_ = run_end;  // loop died early

  ReapAll();

  TcpRunReport report;
  report.scenario = spec_.name;
  report.seed = spec_.seed;
  report.cluster = config_.ToString();
  report.events = applied_;

  report.result.clients = spec_.clients;
  Histogram merged;
  for (auto& client : clients_) {
    report.result.completed += client->completed();
    report.result.retransmissions += client->retransmissions();
    merged.Merge(client->latencies());
  }
  const double measure_ms =
      static_cast<double>(measure_end_ - measure_start_) / kNanosPerMilli;
  report.result.throughput_kreqs =
      measure_ms > 0 ? static_cast<double>(report.result.completed) / measure_ms
                     : 0.0;
  report.result.mean_latency_ms = merged.Mean() / kNanosPerMilli;
  report.result.p50_latency_ms = merged.P50() / kNanosPerMilli;
  report.result.p90_latency_ms = merged.P90() / kNanosPerMilli;
  report.result.p99_latency_ms = merged.P99() / kNanosPerMilli;
  report.result.wall_time_ms =
      static_cast<double>(run_end - t0_) / kNanosPerMilli;

  CollectReports(report);
  CheckInvariants(report);

  // Whole-run transport ledger: our own counters (the client side) plus
  // every node's reported "net" object, summed field by field. Unknown
  // fields from newer/older nodes merge fine — the sum is by key.
  report.net = transport_->counters().ToJson();
  for (const Json& node : report.nodes) {
    const Json* node_net = node.Find("net");
    if (node_net == nullptr || !node_net->is_object()) continue;
    for (const auto& [key, value] : node_net->members()) {
      if (!value.is_int()) continue;
      Json* merged_field = report.net.Find(key);
      if (merged_field == nullptr) {
        report.net.Set(key, value);
      } else {
        report.net.Set(key, merged_field->AsInt() + value.AsInt());
      }
    }
  }
  return report;
}

}  // namespace

Status ValidateForTcp(const scenario::ScenarioSpec& spec) {
  SEEMORE_RETURN_IF_ERROR(spec.Validate());
  if (!spec.plan.sweep_clients.empty()) {
    return Status::InvalidArgument(
        "tcp backend runs one cluster per call (no sweep plan)");
  }
  // The fault plane + control channel cover every schedule kind the sim
  // engine does; the supported set IS the full table, and the error text is
  // derived from it so the message can never drift from scenario::names.
  const std::vector<scenario::EventKind>& supported =
      scenario::AllEventKinds();
  for (const scenario::ScenarioEvent& event : spec.schedule) {
    if (std::find(supported.begin(), supported.end(), event.kind) ==
        supported.end()) {
      return Status::InvalidArgument(
          "tcp backend supports only " +
          scenario::EventKindTokenList(supported) + " events (got " +
          event.ToString() + ")");
    }
  }
  return Status::Ok();
}

Result<TcpRunReport> RunTcpScenario(const scenario::ScenarioSpec& spec,
                                    const LauncherOptions& options) {
  SEEMORE_RETURN_IF_ERROR(ValidateForTcp(spec));
  Launcher launcher(spec, options);
  return launcher.Run();
}

Json TcpRunReport::ToJson() const {
  Json j = Json::Object();
  j.Set("backend", "tcp");
  j.Set("scenario", scenario);
  j.Set("seed", seed);
  j.Set("cluster", cluster);
  j.Set("result", result.ToJson());
  Json applied = Json::Array();
  for (const scenario::AppliedEvent& event : events) {
    Json e = Json::Object();
    e.Set("at_ms", ToMillis(event.at));
    e.Set("description", event.description);
    applied.Append(std::move(e));
  }
  j.Set("events", std::move(applied));
  Json reps = Json::Array();
  for (const Json& node : nodes) reps.Append(node);
  j.Set("replicas", std::move(reps));
  j.Set("net", net);
  j.Set("agreement", agreement.ToString());
  j.Set("convergence_checked", convergence_checked);
  j.Set("convergence", convergence.ToString());
  j.Set("ok", ok());
  return j;
}

}  // namespace rt
}  // namespace seemore
