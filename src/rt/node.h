// One SeeMoRe replica as a real process: the composition root seemore_node
// wraps. Mirrors harness/cluster.cc's wiring exactly — same keystore seed
// derivation, same replica construction per protocol, same
// recover -> reopen -> restore restart sequence — but over the rt backend
// (EventLoop + TcpTransport + PosixMedium) instead of the simulator.
//
// Protocol code is identical in both worlds; only this file and the
// launcher know which backend is underneath. A node runs until SIGTERM (the
// launcher's orderly stop), then writes a per-node report JSON whose
// digest samples let the launcher check cross-process agreement the same
// way Cluster::CheckAgreement does in-process.

#ifndef SEEMORE_RT_NODE_H_
#define SEEMORE_RT_NODE_H_

#include <memory>
#include <string>

#include "consensus/replica_base.h"
#include "harness/cluster.h"
#include "rt/event_loop.h"
#include "rt/posix_medium.h"
#include "rt/tcp_transport.h"
#include "scenario/spec.h"
#include "storage/file_store.h"

namespace seemore {
namespace rt {

struct NodeOptions {
  int replica_id = 0;
  uint16_t base_port = 18500;
  /// Durable data directory. Empty disables durability even when the spec
  /// asks for it (the launcher only passes one for --durable runs). A
  /// directory holding WAL/snapshot files triggers the restart-recovery
  /// path instead of a fresh open.
  std::string data_dir;
  /// Where the end-of-run report JSON goes ("" = stdout).
  std::string report_path;
  /// Hard runtime cap (orphan protection when the launcher dies); <= 0
  /// means none.
  SimTime max_run = 0;
};

/// What recovery reconstructed, mirrored into the node report
/// (RestartOutcome's fields, for a restarted process instead of a
/// restarted in-sim incarnation).
struct NodeRecovery {
  bool recovered = false;
  uint64_t snapshot_seq = 0;
  uint64_t replayed_commits = 0;
  uint64_t truncated_bytes = 0;
};

class Node {
 public:
  Node(scenario::ScenarioSpec spec, NodeOptions options);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Build everything (loop, transport, durable store + recovery, replica).
  /// Fails on invalid spec / port bind / corrupt durable state.
  Status Init();

  /// Serve until SIGTERM/SIGINT (or max_run), then write the report.
  Status Serve();

  /// The per-node report (valid any time after Init).
  Json Report() const;

  ReplicaBase* replica() { return replica_.get(); }
  TcpTransport* transport() { return transport_.get(); }
  EventLoop* loop() { return loop_.get(); }

 private:
  Status InitDurability();
  std::unique_ptr<ReplicaBase> MakeReplica();
  /// Node-level fault commands forwarded by the transport's control
  /// channel: Byzantine flags (the same SetByzantine path the sim engine
  /// uses), mode-switch requests, primary queries.
  void OnControl(const FaultCommand& command);
  /// This node's current belief about the primary id (per-protocol view
  /// resolution, mirroring the engine's ResolvePrimary).
  int CurrentPrimary() const;

  const scenario::ScenarioSpec spec_;
  const NodeOptions options_;
  ClusterOptions cluster_options_;

  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<TcpTransport> transport_;
  std::unique_ptr<KeyStore> keystore_;
  std::unique_ptr<CryptoMemo> memo_;
  std::unique_ptr<PosixMedium> medium_;
  std::unique_ptr<storage::FileDurableStore> store_;
  std::unique_ptr<ReplicaBase> replica_;
  NodeRecovery recovery_;
};

}  // namespace rt
}  // namespace seemore

#endif  // SEEMORE_RT_NODE_H_
