// Wall-clock implementation of the Clock interface (net/transport.h).
//
// The real-time counterpart of the simulator's virtual clock: Now() is
// nanoseconds of CLOCK_MONOTONIC elapsed since the clock was constructed,
// so a node process and the protocol code it hosts see time the same way
// they do under the simulator — a SimTime that starts near zero and only
// moves forward (immune to NTP steps and wall-time jumps).

#ifndef SEEMORE_RT_CLOCK_H_
#define SEEMORE_RT_CLOCK_H_

#include "net/transport.h"
#include "util/time.h"

namespace seemore {
namespace rt {

class MonotonicClock final : public Clock {
 public:
  /// Captures the construction instant as the epoch (Now() == 0).
  MonotonicClock();

  SimTime Now() const override;

 private:
  SimTime origin_;  // raw CLOCK_MONOTONIC nanoseconds at construction
};

}  // namespace rt
}  // namespace seemore

#endif  // SEEMORE_RT_CLOCK_H_
