// Per-connection outbound frame queue for the real transport.
//
// The queue holds refcounted FrameBuffers (never byte copies — a multicast
// enqueues the *same* FrameBuffer on every peer's queue) and flushes them
// as an iovec chain through one writev/sendmsg call: up to max_iov
// (IOV_MAX-bounded) entries per syscall, two per frame (inline header +
// body). A partial write leaves a byte cursor that may sit anywhere —
// inside the front frame's header or body — and the next BuildIovecs
// resumes exactly there.
//
// Backpressure accounting is per-queue, not per-allocation: a frame shared
// by five peers charges each peer its full wire size, because that is the
// number of bytes this connection still owes the kernel
// (tests/rt_wire_test.cc pins down both the cursor arithmetic at every
// split boundary and the shared-frame accounting).

#ifndef SEEMORE_RT_WRITE_QUEUE_H_
#define SEEMORE_RT_WRITE_QUEUE_H_

#include <cstddef>
#include <deque>
#include <memory>

#include "rt/frame.h"

struct iovec;  // <sys/uio.h>; forward-declared to keep this header light

namespace seemore {
namespace rt {

class WriteQueue {
 public:
  explicit WriteQueue(size_t max_bytes) : max_bytes_(max_bytes) {}

  /// Queue a frame for transmission. False means the queue is at its
  /// backpressure cap and the frame was NOT queued (the transport counts
  /// it as a drop — the same "slow link loses messages" behaviour the
  /// simulator models).
  bool Enqueue(std::shared_ptr<const FrameBuffer> frame);

  /// Fill `iov` with up to `max_iov` entries describing the unsent bytes,
  /// starting at the partial-write cursor. Returns the entry count;
  /// `*total` receives the byte sum of the entries.
  size_t BuildIovecs(iovec* iov, size_t max_iov, size_t* total) const;

  /// Advance the cursor past `n` bytes the kernel accepted, releasing
  /// fully-sent frames. Returns how many frames completed.
  size_t Advance(size_t n);

  bool empty() const { return frames_.empty(); }
  size_t queued_bytes() const { return queued_bytes_; }
  size_t max_bytes() const { return max_bytes_; }
  void Clear();

 private:
  const size_t max_bytes_;
  std::deque<std::shared_ptr<const FrameBuffer>> frames_;
  /// Bytes of frames_.front() already accepted by the kernel. May point
  /// into the header (< kFrameHeaderBytes) or the body.
  size_t head_offset_ = 0;
  /// Full wire size of every queued frame (the front frame counts whole
  /// until it completes): the cap guards queued *frames*, so a mid-frame
  /// partial write must not let it breathe early.
  size_t queued_bytes_ = 0;
};

}  // namespace rt
}  // namespace seemore

#endif  // SEEMORE_RT_WRITE_QUEUE_H_
