// Real Transport over non-blocking TCP on an EventLoop.
//
// One TcpTransport per process serves every principal registered in that
// process (a node process registers its one replica; the launcher process
// registers all clients). Replica r listens on base_port + r; clients have
// no listener. Connection ownership is deterministic: a replica dials every
// replica with a smaller id and accepts from larger ids and clients, so
// each principal pair shares exactly one duplex connection. Every
// established connection opens with a HELLO frame (rt/frame.h) announcing
// the dialer's principal id and the cluster fingerprint — the transport's
// pairwise-authenticated-channel guarantee on localhost.
//
// Loss semantics mirror the Transport contract exactly: Send never blocks;
// a message with no established connection, a crashed local node, or a full
// write queue is silently dropped and counted — the protocols already
// tolerate loss, and a dialer retries its connection with exponential
// backoff, so process kill + respawn looks like the message loss the
// simulator injects.
//
// Wire path (DESIGN.md §12): a send wraps the payload in one refcounted
// FrameBuffer — a multicast enqueues that same buffer on every peer's
// WriteQueue, so fan-out never re-encodes or copies. Enqueues only mark the
// connection flush-pending; the actual flush runs once per io batch
// (EventLoop::Post) as a single sendmsg over the queue's iovec chain.
// Receives land directly in pooled blocks shared by every connection and
// reach handlers as Payload views aliasing the block. TcpCounters keeps
// the syscall/copy ledger that BENCH_realnet surfaces.

#ifndef SEEMORE_RT_TCP_TRANSPORT_H_
#define SEEMORE_RT_TCP_TRANSPORT_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/transport.h"
#include "rt/event_loop.h"
#include "rt/fault_plane.h"
#include "rt/frame.h"
#include "rt/write_queue.h"
#include "util/json.h"

namespace seemore {
namespace rt {

/// Principal id the launcher's fault controller registers as: above every
/// client id (clients are kClientIdBase + i) so AcceptHello admits it via
/// the client rule, yet recognizable by every node as the one principal
/// whose frames are CONTROL commands, not protocol messages.
inline constexpr PrincipalId kFaultControllerId = kClientIdBase * 2 - 1;

/// Accounting-only CpuMeter: real nodes burn real CPU, so Charge() tracks
/// the cost-model total for report provenance but never delays delivery
/// (the contract net/transport.h reserves for real backends).
class RtCpuMeter final : public CpuMeter {
 public:
  explicit RtCpuMeter(const Clock* clock) : clock_(clock) {}

  void Charge(SimTime cost) override { total_busy_ += cost; }
  SimTime AvailableAt() const override { return clock_->Now(); }
  SimTime total_busy() const override { return total_busy_; }

 private:
  const Clock* clock_;
  SimTime total_busy_ = 0;
};

struct TcpTransportOptions {
  /// Cluster size; replica ids 0..num_replicas-1 map to listener ports.
  int num_replicas = 0;
  uint16_t base_port = 18500;
  /// Cluster-instance fingerprint carried in HELLO (launcher: the seed).
  uint64_t fingerprint = 0;
  /// Dialer retry backoff: initial doubles up to max.
  SimTime reconnect_initial = Millis(25);
  SimTime reconnect_max = Millis(800);
  /// Per-peer write-queue cap: beyond this, new frames are dropped
  /// (backpressure as loss, which the protocols tolerate by design).
  size_t max_queued_bytes = 8u << 20;
  size_t max_frame = kMaxFrameBytes;
  /// Frames from this peer are decoded as FaultCommands and applied to the
  /// fault plane instead of reaching the replica. -1 = no control channel
  /// (the launcher's own transport, tests).
  PrincipalId control_principal = -1;
  /// Private-cloud size (s): kPartition cuts every pair spanning
  /// id < trusted_count and id >= trusted_count.
  int trusted_count = 0;
};

/// Transport counters (report provenance; mirrors SimNetwork's NetCounters
/// in spirit). The syscall/copy block is the wire-path efficiency ledger:
/// frames_sent / writev_syscalls is the flush coalescing factor,
/// multicast_enqueues / multicast_encodes the fan-out reuse, and rx splits
/// received bodies into zero-copy views vs block-straddling copies.
struct TcpCounters {
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_received = 0;
  uint64_t dropped_no_connection = 0;
  uint64_t dropped_backpressure = 0;
  uint64_t dropped_node_down = 0;
  uint64_t connections_accepted = 0;
  uint64_t connections_dialed = 0;
  uint64_t connection_failures = 0;
  uint64_t frame_errors = 0;
  /// Syscall ledger.
  uint64_t read_syscalls = 0;
  uint64_t writev_syscalls = 0;
  /// Frames fully handed to the kernel (HELLOs included).
  uint64_t frames_sent = 0;
  /// Multicast reuse: encodes is FrameBuffers built for >=1 remote target,
  /// enqueues is how many per-peer queues carried one.
  uint64_t multicast_encodes = 0;
  uint64_t multicast_enqueues = 0;
  /// Fault-plane ledger: frames refused before the socket (cut link or
  /// drop_ppm draw), frames refused after arrival (the other endpoint of a
  /// cut enforcing it on in-flight traffic), frames held by link shaping.
  uint64_t fault_dropped_tx = 0;
  uint64_t fault_dropped_rx = 0;
  uint64_t fault_delayed = 0;
  /// Receive-side copy ledger (filled in by the shared FrameReaders).
  FrameReadStats rx;

  /// The "net" object of a node report; launcher-side merges sum these
  /// field by field.
  Json ToJson() const;
};

class TcpTransport final : public Transport {
 public:
  TcpTransport(EventLoop* loop, TcpTransportOptions options);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// First error from listener setup / registration (sockets that fail
  /// later retry or drop per the loss semantics; only setup is fatal).
  const Status& status() const { return status_; }
  const TcpCounters& counters() const { return counters_; }

  /// --- Transport ----------------------------------------------------------
  /// Registering a replica id binds its listener and starts dialing its
  /// lower-id peers immediately; registering a client starts dialing every
  /// replica.
  CpuMeter* Register(PrincipalId id, Zone zone, MessageHandler* handler,
                     bool metered) override;
  void Send(PrincipalId from, PrincipalId to, Payload payload) override;
  void Multicast(PrincipalId from, const std::vector<PrincipalId>& targets,
                 const Payload& payload) override;
  void SetNodeUp(PrincipalId id, bool up) override;

  /// True once a duplex connection to `peer` is established (tests and the
  /// launcher's readiness gate).
  bool ConnectedTo(PrincipalId peer) const;

  /// Accumulated cost-model busy time of a metered local node (0 when
  /// unmetered/unknown) — report provenance.
  SimTime MeterBusy(PrincipalId id) const;

  /// --- fault plane --------------------------------------------------------
  /// Apply one control command: link-level kinds mutate the fault plane
  /// here; anything else (Byzantine flags, mode switches, primary queries)
  /// is forwarded to the control handler the Node installed.
  void ApplyControl(const FaultCommand& command);
  /// Receives the node-level commands ApplyControl does not consume.
  void SetControlHandler(std::function<void(const FaultCommand&)> handler) {
    control_handler_ = std::move(handler);
  }
  /// Floor every dialer's backoff back to reconnect_initial and schedule an
  /// immediate redial round — a heal must not wait out backoff a partition
  /// (or peer death) inflated to the 800ms ceiling.
  void ResetDialBackoff();
  FaultPlane& fault_plane() { return fault_plane_; }

 private:
  struct LocalNode {
    MessageHandler* handler = nullptr;
    std::unique_ptr<RtCpuMeter> meter;
    bool up = true;
  };

  struct Connection {
    Connection(size_t max_queued_bytes, size_t max_frame, BlockPool* pool,
               FrameReadStats* stats)
        : reader(max_frame, pool, stats), write_queue(max_queued_bytes) {}

    int fd = -1;
    /// Which local principal owns this connection (a process can host many:
    /// the launcher hosts every client, each with its own connections).
    PrincipalId local = -1;
    /// Hoisted locals_ entry for `local` — the receive drain consults it
    /// per frame, so it must not pay a map lookup per message. Stable:
    /// locals_ is a std::map and entries are never erased.
    LocalNode* owner = nullptr;
    /// Peer identity: the dial target, or the HELLO announcement on an
    /// accepted connection (-1 until the HELLO arrives).
    PrincipalId peer = -1;
    /// Position in connections_ (swap-remove keeps closes O(1)).
    size_t index = 0;
    bool dialed = false;        // we own reconnect for this connection
    bool connecting = false;    // non-blocking connect in flight
    bool hello_received = false;
    /// A flush is parked on the loop's post queue for this connection —
    /// further enqueues in the same io batch ride the same flush.
    bool flush_pending = false;
    FrameReader reader;
    WriteQueue write_queue;
  };

  bool IsLocal(PrincipalId id) const { return locals_.count(id) > 0; }
  bool IsReplicaPrincipal(PrincipalId id) const;
  std::shared_ptr<Connection> NewConnection();
  void StartListener(PrincipalId id);
  void DialPeer(PrincipalId local, PrincipalId peer);
  void ScheduleRedial(PrincipalId local, PrincipalId peer, SimTime delay);
  void OnListenerReadable(PrincipalId local, int listen_fd);
  void OnConnectionEvent(const std::shared_ptr<Connection>& conn,
                         uint32_t events);
  void FinishConnect(const std::shared_ptr<Connection>& conn);
  /// Validate the opening HELLO of `conn`; false means the connection was
  /// closed (bad magic/fingerprint, or a sender that must not dial us).
  bool AcceptHello(const std::shared_ptr<Connection>& conn,
                   const Payload& body);
  void DrainReadable(const std::shared_ptr<Connection>& conn);
  void FlushWrites(const std::shared_ptr<Connection>& conn);
  /// Defer one FlushWrites to the end of the current io batch.
  void RequestFlush(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn,
                       const char* why);
  void EnqueueFrame(const std::shared_ptr<Connection>& conn,
                    std::shared_ptr<const FrameBuffer> frame);
  /// Hold a shaped frame until the absolute `release_at`, then enqueue it
  /// on whatever connection to the peer exists at release time (a vanished
  /// connection is loss — exactly what a delayed frame on a dead link
  /// would be).
  void DeferFrame(PrincipalId from, PrincipalId to,
                  std::shared_ptr<const FrameBuffer> frame,
                  SimTime release_at);
  void DeliverLocally(PrincipalId from, PrincipalId to, Payload payload);
  /// The established connection for (local, peer), nullptr when none.
  std::shared_ptr<Connection> ConnectionFor(PrincipalId local,
                                            PrincipalId peer) const;

  EventLoop* loop_;
  const TcpTransportOptions options_;
  Status status_;
  TcpCounters counters_;
  /// Per-peer-per-direction drop/delay filter between queues and sockets.
  FaultPlane fault_plane_;
  std::function<void(const FaultCommand&)> control_handler_;
  /// Receive blocks shared by every connection of this transport.
  BlockPool pool_;
  /// Encode-once memo for fan-out loops that call Send() once per peer
  /// with the same immutable payload (ReplicaBase::SendToMany): the last
  /// wrapped buffer id keeps its frame so repeats skip the CRC pass and
  /// share one buffer across write queues. Id 0 (empty payload) never
  /// memoizes.
  uint64_t memo_payload_id_ = 0;
  std::shared_ptr<const FrameBuffer> memo_frame_;
  bool memo_reused_ = false;

  std::map<PrincipalId, LocalNode> locals_;
  /// Listener fds per local replica id.
  std::map<PrincipalId, int> listeners_;
  /// Established (hello-complete) connections by (local, peer) pair: the
  /// routing table Send consults.
  std::map<std::pair<PrincipalId, PrincipalId>, std::shared_ptr<Connection>>
      peers_;
  /// All live connections (including half-open ones awaiting HELLO);
  /// unordered, swap-removed via Connection::index.
  std::vector<std::shared_ptr<Connection>> connections_;
  /// Dialer state: current backoff per (local, peer).
  std::map<std::pair<PrincipalId, PrincipalId>, SimTime> backoff_;
  /// Connections with frames enqueued this io batch, drained by one posted
  /// callback (flush_scheduled_ guards the post; Connection::flush_pending
  /// guards the per-connection entry).
  std::vector<std::shared_ptr<Connection>> flush_queue_;
  bool flush_scheduled_ = false;
  /// Lifetime token for closures parked in the event loop (redials, local
  /// deliveries, deferred flushes): expired means the transport is gone.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace rt
}  // namespace seemore

#endif  // SEEMORE_RT_TCP_TRANSPORT_H_
