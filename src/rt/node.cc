#include "rt/node.h"

#include <csignal>
#include <cstdio>

#include "scenario/engine.h"
#include "smr/kv_store.h"

namespace seemore {
namespace rt {
namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void OnStopSignal(int) { g_stop_requested = 1; }

void InstallStopHandlers() {
  struct sigaction action {};
  action.sa_handler = OnStopSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: the signal must interrupt epoll_wait
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

/// Up to `max_samples` evenly spaced entries of the executed-digest log —
/// the launcher's cross-process agreement surface.
Json DigestSamples(const ExecutedDigestLog& log, size_t max_samples = 32) {
  Json samples = Json::Array();
  if (log.empty()) return samples;
  const uint64_t floor = log.floor();
  const uint64_t ceil = log.ceil();
  const uint64_t span = ceil - floor + 1;
  const uint64_t step = span <= max_samples ? 1 : span / max_samples;
  for (uint64_t seq = floor; seq <= ceil; seq += step) {
    Json entry = Json::Object();
    entry.Set("seq", seq);
    entry.Set("digest", log.at(seq).ToHex());
    samples.Append(std::move(entry));
  }
  // Always include the frontier: the most constraining comparison point.
  if ((span - 1) % step != 0) {
    Json entry = Json::Object();
    entry.Set("seq", ceil);
    entry.Set("digest", log.at(ceil).ToHex());
    samples.Append(std::move(entry));
  }
  return samples;
}

}  // namespace

Node::Node(scenario::ScenarioSpec spec, NodeOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

Node::~Node() {
  // Replica references store references medium; drop in dependency order.
  replica_.reset();
  store_.reset();
  medium_.reset();
  transport_.reset();
}

std::unique_ptr<ReplicaBase> Node::MakeReplica() {
  Transport* transport = transport_.get();
  TimerService* timers = loop_.get();
  const ClusterConfig& config = cluster_options_.config;
  const int i = options_.replica_id;
  switch (config.kind) {
    case ProtocolKind::kCft:
      return std::make_unique<PaxosReplica>(
          transport, timers, keystore_.get(), memo_.get(), i, config,
          cluster_options_.state_machine_factory(), cluster_options_.costs);
    case ProtocolKind::kBft:
      return std::make_unique<PbftReplica>(
          transport, timers, keystore_.get(), memo_.get(), i, config,
          cluster_options_.state_machine_factory(), cluster_options_.costs);
    case ProtocolKind::kSUpRight:
      return std::make_unique<SUpRightReplica>(
          transport, timers, keystore_.get(), memo_.get(), i, config,
          cluster_options_.state_machine_factory(), cluster_options_.costs);
    case ProtocolKind::kSeeMoRe:
      return std::make_unique<SeeMoReReplica>(
          transport, timers, keystore_.get(), memo_.get(), i, config,
          cluster_options_.state_machine_factory(), cluster_options_.costs);
  }
  return nullptr;
}

Status Node::InitDurability() {
  if (!cluster_options_.durability.enabled || options_.data_dir.empty()) {
    return Status::Ok();
  }
  medium_ = std::make_unique<PosixMedium>(options_.data_dir);
  SEEMORE_RETURN_IF_ERROR(medium_->status());
  store_ = std::make_unique<storage::FileDurableStore>(
      medium_.get(), cluster_options_.durability, cluster_options_.costs);

  // A data dir with prior WAL/snapshot files means this process is a
  // restarted incarnation: run the same recover -> reopen -> restore
  // sequence Cluster::Restart uses.
  const bool has_prior_state =
      !medium_->List("wal-").empty() || !medium_->List("snap-").empty();
  if (!has_prior_state) {
    SEEMORE_RETURN_IF_ERROR(store_->OpenFresh());
    replica_->AttachDurable(store_.get());
    return Status::Ok();
  }
  SEEMORE_ASSIGN_OR_RETURN(RecoveredImage image,
                           storage::FileDurableStore::Recover(*medium_));
  SEEMORE_RETURN_IF_ERROR(store_->OpenAfterRecovery(image));
  replica_->AttachDurable(store_.get());
  replica_->RestoreFromImage(image);
  recovery_.recovered = true;
  if (const storage::RecoveredSnapshot* latest = image.Latest()) {
    recovery_.snapshot_seq = latest->seq;
  }
  recovery_.replayed_commits = image.commits.size();
  recovery_.truncated_bytes = image.truncated_bytes;
  return Status::Ok();
}

Status Node::Init() {
  SEEMORE_RETURN_IF_ERROR(spec_.Validate());
  cluster_options_ = scenario::ToClusterOptions(spec_);
  if (!cluster_options_.state_machine_factory) {
    cluster_options_.state_machine_factory = [] {
      return std::make_unique<KvStateMachine>();
    };
  }
  const ClusterConfig& config = cluster_options_.config;
  if (options_.replica_id < 0 || options_.replica_id >= config.n()) {
    return Status::InvalidArgument("replica id out of range for topology");
  }

  loop_ = std::make_unique<EventLoop>();
  SEEMORE_RETURN_IF_ERROR(loop_->init_status());

  TcpTransportOptions transport_options;
  transport_options.num_replicas = config.n();
  transport_options.base_port = options_.base_port;
  transport_options.fingerprint = spec_.seed;
  transport_options.control_principal = kFaultControllerId;
  transport_options.trusted_count = config.s;
  transport_ =
      std::make_unique<TcpTransport>(loop_.get(), transport_options);
  transport_->SetControlHandler(
      [this](const FaultCommand& command) { OnControl(command); });

  // Same keystore derivation as Cluster: every process of a run derives the
  // identical per-principal keys from the spec seed.
  keystore_ = std::make_unique<KeyStore>(cluster_options_.seed ^
                                         0x5eed'c0de'5eed'c0deULL);
  memo_ = std::make_unique<CryptoMemo>();

  replica_ = MakeReplica();
  if (replica_ == nullptr) return Status::Internal("unknown protocol kind");
  SEEMORE_RETURN_IF_ERROR(transport_->status());  // listener bind outcome
  return InitDurability();
}

int Node::CurrentPrimary() const {
  const ClusterConfig& config = cluster_options_.config;
  switch (config.kind) {
    case ProtocolKind::kSeeMoRe:
      return static_cast<const SeeMoReReplica*>(replica_.get())
          ->current_primary();
    case ProtocolKind::kCft:
      return config.FlatPrimary(
          static_cast<const PaxosReplica*>(replica_.get())->view());
    case ProtocolKind::kBft:
    case ProtocolKind::kSUpRight:
      return config.FlatPrimary(
          static_cast<const PbftReplica*>(replica_.get())->view());
  }
  return -1;
}

void Node::OnControl(const FaultCommand& command) {
  switch (command.kind) {
    case ControlKind::kSetByzantine:
      if (command.replica == options_.replica_id) {
        replica_->SetByzantine(command.byz_flags);
      }
      return;
    case ControlKind::kSwitchMode: {
      if (cluster_options_.config.kind != ProtocolKind::kSeeMoRe) return;
      auto* seemore = static_cast<SeeMoReReplica*>(replica_.get());
      const SeeMoReMode target = static_cast<SeeMoReMode>(command.mode);
      // The switch must be requested on the new view's trusted authority
      // (engine.cc RequestSwitch); the command is broadcast, so each node
      // checks whether that authority is itself.
      if (seemore->SwitchAuthority(target, seemore->view() + 1) ==
          options_.replica_id) {
        (void)seemore->RequestModeSwitch(target);
      }
      return;
    }
    case ControlKind::kQueryPrimary: {
      FaultCommand reply;
      reply.kind = ControlKind::kPrimaryReply;
      reply.replica = options_.replica_id;
      // +1 so "unknown primary" (no reply field set) stays distinct from
      // replica 0.
      reply.value = static_cast<uint32_t>(CurrentPrimary() + 1);
      transport_->Send(options_.replica_id, kFaultControllerId,
                       Payload(EncodeFaultCommandBody(reply)));
      return;
    }
    default:
      return;  // link-level kinds were consumed by the transport
  }
}

Status Node::Serve() {
  if (replica_ == nullptr) return Status::FailedPrecondition("Init first");
  InstallStopHandlers();
  loop_->set_interrupt([] { return g_stop_requested != 0; });
  loop_->Run(options_.max_run > 0 ? options_.max_run : -1);

  const Json report = Report();
  const std::string text = report.Dump(2) + "\n";
  if (options_.report_path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return Status::Ok();
  }
  std::FILE* out = std::fopen(options_.report_path.c_str(), "w");
  if (out == nullptr) {
    return Status::Internal("cannot write report: " + options_.report_path);
  }
  std::fwrite(text.data(), 1, text.size(), out);
  std::fclose(out);
  return Status::Ok();
}

Json Node::Report() const {
  Json root = Json::Object();
  root.Set("id", options_.replica_id);
  root.Set("protocol", scenario::ProtocolKindToken(spec_.protocol));

  const ReplicaStats& stats = replica_->stats();
  Json stats_json = Json::Object();
  stats_json.Set("requests_executed", stats.requests_executed);
  stats_json.Set("batches_committed", stats.batches_committed);
  stats_json.Set("view_changes_completed", stats.view_changes_completed);
  stats_json.Set("mode_changes", stats.mode_changes);
  stats_json.Set("messages_handled", stats.messages_handled);
  stats_json.Set("equivocations_detected", stats.equivocations_detected);
  root.Set("stats", std::move(stats_json));

  root.Set("last_executed", replica_->exec().last_executed());
  root.Set("state_digest", replica_->exec().StateDigest().ToHex());
  root.Set("digest_samples", DigestSamples(replica_->exec().executed_digests()));
  root.Set("cpu_busy_ms",
           static_cast<double>(transport_->MeterBusy(options_.replica_id)) /
               kNanosPerMilli);
  root.Set("run_ns", loop_->Now());

  Json recovery = Json::Object();
  recovery.Set("recovered", recovery_.recovered);
  recovery.Set("snapshot_seq", recovery_.snapshot_seq);
  recovery.Set("replayed_commits", recovery_.replayed_commits);
  recovery.Set("truncated_bytes", recovery_.truncated_bytes);
  root.Set("recovery", std::move(recovery));

  root.Set("net", transport_->counters().ToJson());
  return root;
}

}  // namespace rt
}  // namespace seemore
