// Runtime fault plane for the real TCP backend (DESIGN.md §12).
//
// A FaultPlane sits between TcpTransport's write queues / frame reader and
// the sockets: every outbound frame asks ShouldDropOutbound/HoldFor before
// it is enqueued, every inbound frame asks ShouldDropInbound before it is
// handed to the replica. Cutting a directed link (from -> to) therefore
// drops frames at BOTH endpoints — the sender refuses to enqueue them and
// the receiver refuses to deliver any that were already in flight — so a
// partition is airtight the instant the command lands, without tc/iptables
// or any OS-level tooling, and without tearing down the TCP connections
// (the fault is a network condition, not a process death; HELLOs and
// control frames are never filtered).
//
// Links are DIRECTED: cutting 4 -> 0 leaves 0 -> 4 delivering, which is
// the asymmetric one-way loss the paper never stresses. A cloud partition
// is just every private<->public pair cut in both directions.
//
// Shaping (per-link delay/jitter/drop) is deterministic: the jitter and
// drop draws come from a per-plane LCG seeded by the cluster fingerprint,
// and delayed frames keep per-link FIFO order (a frame never overtakes an
// earlier one on the same directed link — release times are monotone per
// link).
//
// Everything here is plain single-threaded state mutated on the owning
// EventLoop thread, like the rest of the transport.

#ifndef SEEMORE_RT_FAULT_PLANE_H_
#define SEEMORE_RT_FAULT_PLANE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "crypto/keystore.h"
#include "util/time.h"

namespace seemore {
namespace rt {

class FaultPlane {
 public:
  explicit FaultPlane(uint64_t seed = 0)
      : rng_(seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL) {}

  /// Per-directed-link traffic shaping.
  struct Shape {
    SimTime delay = 0;      // fixed extra latency
    SimTime jitter = 0;     // uniform extra [0, jitter)
    uint32_t drop_ppm = 0;  // drop probability, parts-per-million
  };

  /// --- command side (driven by CONTROL frames) ---------------------------
  void CutLink(int from, int to);
  void RestoreLink(int from, int to);
  /// Cut every private<->public replica pair in both directions
  /// (trusted = id < trusted_count, per the hybrid model §3.1).
  void PartitionClouds(int trusted_count, int num_replicas);
  /// Clear every cut and every shape. Returns true when anything was
  /// cleared (the transport uses this to reset dial backoff only on a real
  /// heal).
  bool Heal();
  void ShapeLink(int from, int to, const Shape& shape);

  /// --- filter side (transport hot path) ----------------------------------
  /// Anything to check at all? One branch on the hot path when idle.
  bool active() const { return !cut_.empty() || !shapes_.empty(); }

  /// Outbound: drop when the directed link is cut, or by the link's
  /// drop_ppm draw.
  bool ShouldDropOutbound(PrincipalId from, PrincipalId to);
  /// Inbound: drop only when the directed link is cut (probabilistic loss
  /// already happened on the send side; applying it twice would square the
  /// configured rate).
  bool ShouldDropInbound(PrincipalId from, PrincipalId to) const;
  /// How long an outbound frame on from -> to must be held before it may
  /// hit the socket. 0 = send now. Holds are monotone per directed link,
  /// preserving FIFO order under jitter.
  SimTime HoldFor(PrincipalId from, PrincipalId to, SimTime now);

  bool IsCut(int from, int to) const {
    return cut_.count(DirectedKey(from, to)) != 0;
  }

 private:
  static uint64_t DirectedKey(PrincipalId from, PrincipalId to) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }
  uint64_t NextRandom();

  std::unordered_set<uint64_t> cut_;
  std::unordered_map<uint64_t, Shape> shapes_;
  /// Last scheduled release per shaped link, for FIFO under jitter.
  std::unordered_map<uint64_t, SimTime> last_release_;
  uint64_t rng_;
};

}  // namespace rt
}  // namespace seemore

#endif  // SEEMORE_RT_FAULT_PLANE_H_
