#include "rt/posix_medium.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace seemore {
namespace rt {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

bool ValidName(const std::string& name) {
  return !name.empty() && name != "." && name != ".." &&
         name.find('/') == std::string::npos;
}

}  // namespace

PosixMedium::PosixMedium(std::string dir) : dir_(std::move(dir)) {
  if (mkdir(dir_.c_str(), 0755) < 0 && errno != EEXIST) {
    status_ = Errno("mkdir " + dir_);
  }
}

PosixMedium::~PosixMedium() {
  for (const auto& [name, fd] : append_fds_) close(fd);
}

std::string PosixMedium::PathFor(const std::string& name) const {
  return dir_ + "/" + name;
}

Result<int> PosixMedium::AppendFdFor(const std::string& name) {
  auto it = append_fds_.find(name);
  if (it != append_fds_.end()) return it->second;
  const int fd = open(PathFor(name).c_str(),
                      O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open " + name);
  append_fds_[name] = fd;
  return fd;
}

void PosixMedium::DropFd(const std::string& name) {
  auto it = append_fds_.find(name);
  if (it != append_fds_.end()) {
    close(it->second);
    append_fds_.erase(it);
  }
}

Status PosixMedium::Append(const std::string& name, const uint8_t* data,
                           size_t len) {
  if (!ValidName(name)) return Status::InvalidArgument("bad file name");
  SEEMORE_ASSIGN_OR_RETURN(const int fd, AppendFdFor(name));
  size_t written = 0;
  while (written < len) {
    const ssize_t n = write(fd, data + written, len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("append " + name);
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<Bytes> PosixMedium::ReadFile(const std::string& name) const {
  if (!ValidName(name)) return Status::InvalidArgument("bad file name");
  const int fd = open(PathFor(name).c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + name);
    return Errno("open " + name);
  }
  Bytes out;
  uint8_t buf[64 * 1024];
  while (true) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = Errno("read " + name);
      close(fd);
      return st;
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  close(fd);
  return out;
}

Result<uint64_t> PosixMedium::SizeOf(const std::string& name) const {
  if (!ValidName(name)) return Status::InvalidArgument("bad file name");
  struct stat st{};
  if (stat(PathFor(name).c_str(), &st) < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + name);
    return Errno("stat " + name);
  }
  return static_cast<uint64_t>(st.st_size);
}

bool PosixMedium::Exists(const std::string& name) const {
  if (!ValidName(name)) return false;
  struct stat st{};
  return stat(PathFor(name).c_str(), &st) == 0;
}

std::vector<std::string> PosixMedium::List(const std::string& prefix) const {
  std::vector<std::string> out;
  DIR* dir = opendir(dir_.c_str());
  if (dir == nullptr) return out;
  while (dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (!ValidName(name)) continue;
    if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(name);
  }
  closedir(dir);
  std::sort(out.begin(), out.end());
  return out;
}

Status PosixMedium::TruncateTo(const std::string& name, uint64_t size) {
  if (!ValidName(name)) return Status::InvalidArgument("bad file name");
  // The cached O_APPEND fd stays valid across truncate, but drop it anyway:
  // truncation is a recovery-time operation, not a hot path.
  DropFd(name);
  if (truncate(PathFor(name).c_str(), static_cast<off_t>(size)) < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + name);
    return Errno("truncate " + name);
  }
  return Status::Ok();
}

Status PosixMedium::Remove(const std::string& name) {
  if (!ValidName(name)) return Status::InvalidArgument("bad file name");
  DropFd(name);
  if (unlink(PathFor(name).c_str()) < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + name);
    return Errno("unlink " + name);
  }
  return Status::Ok();
}

Status PosixMedium::Sync(const std::string& name) {
  if (!ValidName(name)) return Status::InvalidArgument("bad file name");
  SEEMORE_ASSIGN_OR_RETURN(const int fd, AppendFdFor(name));
  if (fsync(fd) < 0) return Errno("fsync " + name);
  return Status::Ok();
}

Status PosixMedium::SyncAll() {
  for (const auto& [name, fd] : append_fds_) {
    if (fsync(fd) < 0) return Errno("fsync " + name);
  }
  return Status::Ok();
}

}  // namespace rt
}  // namespace seemore
