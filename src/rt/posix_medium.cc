#include "rt/posix_medium.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace seemore {
namespace rt {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

bool ValidName(const std::string& name) {
  return !name.empty() && name != "." && name != ".." &&
         name.find('/') == std::string::npos;
}

}  // namespace

PosixMedium::PosixMedium(std::string dir) : dir_(std::move(dir)) {
  if (mkdir(dir_.c_str(), 0755) < 0 && errno != EEXIST) {
    status_ = Errno("mkdir " + dir_);
  }
}

PosixMedium::~PosixMedium() {
  for (const auto& [name, fd] : append_fds_) close(fd);
}

std::string PosixMedium::PathFor(const std::string& name) const {
  return dir_ + "/" + name;
}

Result<int> PosixMedium::AppendFdFor(const std::string& name) {
  auto it = append_fds_.find(name);
  if (it != append_fds_.end()) return it->second;
  const std::string path = PathFor(name);
  int fd = open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0 && errno == ENOENT) {
    fd = open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    if (fd >= 0) {
      // The new directory entry must itself be durable, or the file (and
      // every fsynced byte in it) can vanish entirely on power loss.
      const Status dir_sync = SyncDir();
      if (!dir_sync.ok()) {
        close(fd);
        return dir_sync;
      }
    }
  }
  if (fd < 0) return Errno("open " + name);
  append_fds_[name] = fd;
  return fd;
}

Status PosixMedium::SyncDir() {
  const int fd = open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open " + dir_);
  const int rc = fsync(fd);
  close(fd);
  if (rc < 0) return Errno("fsync " + dir_);
  return Status::Ok();
}

void PosixMedium::DropFd(const std::string& name) {
  auto it = append_fds_.find(name);
  if (it != append_fds_.end()) {
    close(it->second);
    append_fds_.erase(it);
  }
}

Status PosixMedium::Append(const std::string& name, const uint8_t* data,
                           size_t len) {
  if (!ValidName(name)) return Status::InvalidArgument("bad file name");
  SEEMORE_ASSIGN_OR_RETURN(const int fd, AppendFdFor(name));
  size_t written = 0;
  while (written < len) {
    const ssize_t n = write(fd, data + written, len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("append " + name);
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<Bytes> PosixMedium::ReadFile(const std::string& name) const {
  if (!ValidName(name)) return Status::InvalidArgument("bad file name");
  const int fd = open(PathFor(name).c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + name);
    return Errno("open " + name);
  }
  Bytes out;
  uint8_t buf[64 * 1024];
  while (true) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = Errno("read " + name);
      close(fd);
      return st;
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  close(fd);
  return out;
}

Result<uint64_t> PosixMedium::SizeOf(const std::string& name) const {
  if (!ValidName(name)) return Status::InvalidArgument("bad file name");
  struct stat st{};
  if (stat(PathFor(name).c_str(), &st) < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + name);
    return Errno("stat " + name);
  }
  return static_cast<uint64_t>(st.st_size);
}

bool PosixMedium::Exists(const std::string& name) const {
  if (!ValidName(name)) return false;
  struct stat st{};
  return stat(PathFor(name).c_str(), &st) == 0;
}

std::vector<std::string> PosixMedium::List(const std::string& prefix) const {
  std::vector<std::string> out;
  DIR* dir = opendir(dir_.c_str());
  if (dir == nullptr) return out;
  while (dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (!ValidName(name)) continue;
    if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(name);
  }
  closedir(dir);
  std::sort(out.begin(), out.end());
  return out;
}

Status PosixMedium::TruncateTo(const std::string& name, uint64_t size) {
  if (!ValidName(name)) return Status::InvalidArgument("bad file name");
  // The cached O_APPEND fd stays valid across truncate, but drop it anyway:
  // truncation is a recovery-time operation, not a hot path.
  DropFd(name);
  const int fd = open(PathFor(name).c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + name);
    return Errno("truncate " + name);
  }
  // The shrunk size is an inode change: fsync the file so a crash cannot
  // resurrect the truncated-away suffix.
  if (ftruncate(fd, static_cast<off_t>(size)) < 0 || fsync(fd) < 0) {
    const Status st = Errno("truncate " + name);
    close(fd);
    return st;
  }
  close(fd);
  return Status::Ok();
}

Status PosixMedium::Remove(const std::string& name) {
  if (!ValidName(name)) return Status::InvalidArgument("bad file name");
  DropFd(name);
  if (unlink(PathFor(name).c_str()) < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + name);
    return Errno("unlink " + name);
  }
  // Make the removal itself durable, or a crash can bring the stale file
  // back (e.g. a superseded snapshot outliving its replacement's WAL reset).
  return SyncDir();
}

Status PosixMedium::Sync(const std::string& name) {
  if (!ValidName(name)) return Status::InvalidArgument("bad file name");
  // Never create on sync: fsync of a file that was never written must be a
  // NotFound, not a silent empty-file creation.
  auto it = append_fds_.find(name);
  int fd = it != append_fds_.end() ? it->second : -1;
  if (fd < 0) {
    fd = open(PathFor(name).c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + name);
      return Errno("open " + name);
    }
    append_fds_[name] = fd;
  }
  if (fsync(fd) < 0) return Errno("fsync " + name);
  return Status::Ok();
}

Status PosixMedium::SyncAll() {
  for (const auto& [name, fd] : append_fds_) {
    if (fsync(fd) < 0) return Errno("fsync " + name);
  }
  return Status::Ok();
}

}  // namespace rt
}  // namespace seemore
