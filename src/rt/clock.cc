#include "rt/clock.h"

#include <ctime>

namespace seemore {
namespace rt {
namespace {

SimTime RawMonotonicNanos() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<SimTime>(ts.tv_sec) * kNanosPerSecond + ts.tv_nsec;
}

}  // namespace

MonotonicClock::MonotonicClock() : origin_(RawMonotonicNanos()) {}

SimTime MonotonicClock::Now() const { return RawMonotonicNanos() - origin_; }

}  // namespace rt
}  // namespace seemore
