// Single-threaded epoll event loop + timerfd-backed TimerService.
//
// The real-time counterpart of the Simulator: one loop per process owns
// every socket and timer, and all protocol callbacks (message handlers,
// timer closures) run inline on the loop thread — the same single-threaded
// execution model replicas have under the simulator, so no protocol code
// needs locks in either backend.
//
// Time is the loop's MonotonicClock (CLOCK_MONOTONIC since construction).
// Timers live in an ordered multimap; a single timerfd is always armed for
// the earliest deadline, so the epoll wait itself is the timer wheel —
// there is no polling and no drift accumulation. ScheduleAfter/CancelEvent
// implement the TimerService contract replicas already program against.

#ifndef SEEMORE_RT_EVENT_LOOP_H_
#define SEEMORE_RT_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "rt/clock.h"
#include "util/status.h"
#include "util/time.h"

namespace seemore {
namespace rt {

class EventLoop final : public TimerService {
 public:
  /// Bitmask passed to io callbacks (mirrors EPOLLIN/EPOLLOUT without
  /// leaking <sys/epoll.h> into headers).
  static constexpr uint32_t kReadable = 1u << 0;
  static constexpr uint32_t kWritable = 1u << 1;
  static constexpr uint32_t kError = 1u << 2;

  using IoCallback = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop() override;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Construction failure (epoll/timerfd creation), checked once by the
  /// composition root.
  const Status& init_status() const { return init_status_; }

  /// --- TimerService -------------------------------------------------------
  SimTime Now() const override { return clock_.Now(); }
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn) override;
  /// Absolute-deadline form. Two timers with the same deadline fire in
  /// scheduling order — callers that precompute monotone release times
  /// (the transport's fault plane) rely on this to keep FIFO, where the
  /// relative form would smear ties by the clock skew between computing a
  /// delay and re-reading Now() here.
  EventId ScheduleAt(SimTime deadline, std::function<void()> fn);
  bool CancelEvent(EventId id) override;

  /// --- fd watching --------------------------------------------------------
  /// Watch `fd` for `events` (kReadable/kWritable). The callback runs on
  /// the loop; it may watch/unwatch any fd, including its own.
  Status WatchFd(int fd, uint32_t events, IoCallback callback);
  /// Change the interest set of a watched fd (typically toggling kWritable
  /// when a write queue drains/fills).
  Status ModifyFd(int fd, uint32_t events);
  /// Stop watching (the caller still owns and closes the fd).
  void UnwatchFd(int fd);

  /// Run `fn` after the current io dispatch batch, before the next
  /// epoll_wait. This is the flush-coalescing hook: every message enqueued
  /// while draining one readiness batch posts a single deferred flush, so
  /// the frames leave in one writev instead of one send() each — and
  /// unlike ScheduleAfter(0) it costs no timerfd_settime syscall. Posts
  /// queued by a post run in the same drain (the queue is swapped once per
  /// iteration, so a self-posting callback cannot starve io).
  void Post(std::function<void()> fn);

  /// --- running ------------------------------------------------------------
  /// Dispatch io + timers until Stop() (or `until` elapses, when >= 0).
  /// Checks `interrupt` (when set) after every wakeup — the SIGTERM hook:
  /// signal handlers may only set a flag, the loop notices it because the
  /// signal interrupts epoll_wait.
  void Run(SimTime until = -1);
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }
  void set_interrupt(std::function<bool()> interrupt) {
    interrupt_ = std::move(interrupt);
  }

 private:
  struct Watch {
    IoCallback callback;
    uint32_t events = 0;
    uint64_t generation = 0;  // guards dispatch after unwatch+rewatch
  };

  void RearmTimerFd();
  void FireDueTimers();
  /// Deadline the timerfd is currently armed for (kNeverArmed when the fd
  /// is disarmed or has already fired). Lets arming be lazy: see
  /// RearmTimerFd.
  static constexpr SimTime kNeverArmed = INT64_MAX;
  uint32_t ToEpollEvents(uint32_t events) const;

  Status init_status_;
  MonotonicClock clock_;
  int epoll_fd_ = -1;
  int timer_fd_ = -1;
  bool stopped_ = false;
  std::function<bool()> interrupt_;

  /// Timers: deadline-ordered index + id-keyed store (cancel is O(log n)).
  struct Timer {
    SimTime deadline;
    std::function<void()> fn;
  };
  std::multimap<SimTime, EventId> by_deadline_;
  std::unordered_map<EventId, Timer> timers_;
  EventId next_timer_id_ = 1;
  SimTime armed_deadline_ = kNeverArmed;

  std::unordered_map<int, Watch> watches_;
  uint64_t next_generation_ = 1;

  std::vector<std::function<void()>> posted_;
};

}  // namespace rt
}  // namespace seemore

#endif  // SEEMORE_RT_EVENT_LOOP_H_
