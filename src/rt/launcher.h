// Real-cluster launcher: runs one ScenarioSpec against actual seemore_node
// processes on localhost — the tcp backend of seemore_ctl.
//
// The launcher process is the experiment's client side and fault injector:
// it spawns one node process per replica, hosts every closed-loop SimClient
// itself on its own EventLoop/TcpTransport (so measurement happens where
// the requests originate, exactly like the simulator's client model), and
// translates the spec's schedule into real faults. Process-level kinds are
// signals and file surgery — kCrash/kPowerLoss are SIGKILLs,
// kRestart/kRecover respawn the process (reusing its durable data directory
// when the spec enables durability, so recovery runs the real WAL/snapshot
// path), kTruncateLog/kCorruptLog operate on the dead process's WAL files.
// Network- and replica-level kinds ride the control channel: the launcher
// registers the fault-controller principal (kFaultControllerId) on its own
// transport and sends typed CONTROL frames that each node's TcpTransport
// fault plane (partitions, directed cuts, link shaping) or Node (Byzantine
// flags, mode switches, primary queries for kCrashPrimary) applies. At the
// end it SIGTERMs the survivors, collects their per-node report JSONs, and
// checks cross-process agreement/convergence from the reported digest
// samples — the closest a multi-process run can get to
// Cluster::CheckAgreement. Replicas the schedule turned Byzantine are
// excluded from both checks, mirroring the sim engine.
//
// Timeline semantics match the simulator's lifecycle: t=0 is when every
// node answered the readiness gate; warmup resets client stats; the
// measure window sizes the RunResult; then clients stop, the drain elapses
// and nodes shut down. Times are real nanoseconds instead of virtual ones —
// the honest difference bench_realnet exists to show.

#ifndef SEEMORE_RT_LAUNCHER_H_
#define SEEMORE_RT_LAUNCHER_H_

#include <string>
#include <vector>

#include "harness/runner.h"
#include "scenario/engine.h"
#include "scenario/spec.h"
#include "util/json.h"
#include "util/status.h"

namespace seemore {
namespace rt {

struct LauncherOptions {
  /// Path to the seemore_node binary; empty resolves the sibling of
  /// /proc/self/exe (tools install both binaries in one directory).
  std::string node_binary;
  /// Scratch directory for spec/report/data files; empty mkdtemps under
  /// /tmp and removes it on success.
  std::string work_dir;
  uint16_t base_port = 18500;
  /// Readiness gate: how long to wait for every node to complete a HELLO.
  SimTime connect_timeout = Seconds(15);
  /// After SIGTERM, how long nodes get to write reports before SIGKILL.
  SimTime shutdown_grace = Seconds(5);
  bool keep_work_dir = false;
  bool verbose = false;
};

/// The merged outcome of one real-cluster run. Mirrors ScenarioReport's
/// verdict surface so tools can print sim and tcp runs side by side.
struct TcpRunReport {
  std::string scenario;
  uint64_t seed = 0;
  std::string cluster;

  /// Client-side measurement over the (real-time) measure window.
  RunResult result;

  /// Per-node end-of-run reports as written by the processes; a node that
  /// died crashed (and was never respawned) contributes a stub with
  /// "crashed": true.
  std::vector<Json> nodes;

  std::vector<scenario::AppliedEvent> events;

  /// Cluster-wide transport counters: the launcher's own TcpTransport (the
  /// client side) plus every node report's "net" object, summed field by
  /// field — the whole-run syscall/copy ledger bench_realnet reads.
  Json net;

  Status agreement;
  bool convergence_checked = false;
  Status convergence;

  bool ok() const {
    return agreement.ok() && (!convergence_checked || convergence.ok());
  }

  Json ToJson() const;
};

/// Spec constraints the tcp backend imposes (checked before any spawn):
/// no sweep plan (one process cluster per call). Every schedule kind the
/// sim engine supports now has a process-level or control-channel
/// implementation, so nothing else is rejected.
Status ValidateForTcp(const scenario::ScenarioSpec& spec);

/// Run the spec against a real localhost cluster. Fails on spawn/setup
/// errors; an invariant violation is NOT an error (inspect report.ok()).
Result<TcpRunReport> RunTcpScenario(const scenario::ScenarioSpec& spec,
                                    const LauncherOptions& options);

}  // namespace rt
}  // namespace seemore

#endif  // SEEMORE_RT_LAUNCHER_H_
