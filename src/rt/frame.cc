#include "rt/frame.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "storage/crc32c.h"

namespace seemore {
namespace rt {
namespace {

/// HELLO body: magic + version + sender + fingerprint. The magic doubles as
/// a cheap wrong-protocol detector (someone pointing a browser at a node
/// port fails the handshake with a typed error, not undefined behaviour).
constexpr uint32_t kHelloMagic = 0x544d5253;  // "SMRT"
constexpr uint8_t kHelloVersion = 1;

/// CONTROL body: a distinct magic so a data frame mis-routed onto the
/// control path (or vice versa) dies with a typed error at the decoder.
constexpr uint32_t kControlMagic = 0x544c5443;  // "CTLT"
constexpr uint8_t kControlVersion = 1;

uint32_t BodyCrc(const uint8_t* data, size_t len) {
  // Hardware CRC paths may prefetch; never hand them a null pointer.
  static const uint8_t kZero = 0;
  return storage::Crc32c(len != 0 ? data : &kZero, len);
}

}  // namespace

Bytes EncodeFrame(const uint8_t* body, size_t len) {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(len));
  enc.PutU32(BodyCrc(body, len));
  enc.PutRaw(body, len);
  return enc.Take();
}

FrameBuffer::FrameBuffer(Payload body) : body_(std::move(body)) {
  const uint32_t len = static_cast<uint32_t>(body_.size());
  const uint32_t crc = BodyCrc(body_.data(), body_.size());
  std::memcpy(header_.data(), &len, 4);  // little-endian hosts (x86/arm)
  std::memcpy(header_.data() + 4, &crc, 4);
}

std::shared_ptr<const FrameBuffer> FrameBuffer::Wrap(Payload body) {
  return std::shared_ptr<const FrameBuffer>(new FrameBuffer(std::move(body)));
}

Bytes EncodeHelloBody(const Hello& hello) {
  Encoder enc;
  enc.PutU32(kHelloMagic);
  enc.PutU8(kHelloVersion);
  enc.PutU32(static_cast<uint32_t>(hello.sender));
  enc.PutU64(hello.fingerprint);
  return enc.Take();
}

Bytes EncodeHello(const Hello& hello) {
  const Bytes body = EncodeHelloBody(hello);
  return EncodeFrame(body);
}

Result<Hello> DecodeHello(const uint8_t* data, size_t len) {
  Decoder dec(data, len);
  const uint32_t magic = dec.GetU32();
  const uint8_t version = dec.GetU8();
  Hello hello;
  hello.sender = static_cast<PrincipalId>(dec.GetU32());
  hello.fingerprint = dec.GetU64();
  if (!dec.ok() || !dec.AtEnd()) {
    return Status::Corruption("malformed HELLO frame");
  }
  if (magic != kHelloMagic) {
    return Status::Corruption("HELLO magic mismatch (not a seemore peer)");
  }
  if (version != kHelloVersion) {
    return Status::InvalidArgument("unsupported transport version");
  }
  return hello;
}

Bytes EncodeFaultCommandBody(const FaultCommand& command) {
  Encoder enc;
  enc.PutU32(kControlMagic);
  enc.PutU8(kControlVersion);
  enc.PutU8(static_cast<uint8_t>(command.kind));
  enc.PutU32(static_cast<uint32_t>(command.from));
  enc.PutU32(static_cast<uint32_t>(command.to));
  enc.PutU32(static_cast<uint32_t>(command.replica));
  enc.PutU32(command.byz_flags);
  enc.PutU8(command.mode);
  enc.PutU64(command.delay_us);
  enc.PutU64(command.jitter_us);
  enc.PutU32(command.drop_ppm);
  enc.PutU32(command.value);
  return enc.Take();
}

Result<FaultCommand> DecodeFaultCommand(const uint8_t* data, size_t len) {
  Decoder dec(data, len);
  const uint32_t magic = dec.GetU32();
  const uint8_t version = dec.GetU8();
  const uint8_t kind = dec.GetU8();
  FaultCommand command;
  command.from = static_cast<int32_t>(dec.GetU32());
  command.to = static_cast<int32_t>(dec.GetU32());
  command.replica = static_cast<int32_t>(dec.GetU32());
  command.byz_flags = dec.GetU32();
  command.mode = dec.GetU8();
  command.delay_us = dec.GetU64();
  command.jitter_us = dec.GetU64();
  command.drop_ppm = dec.GetU32();
  command.value = dec.GetU32();
  if (!dec.ok() || !dec.AtEnd()) {
    return Status::Corruption("malformed CONTROL frame");
  }
  if (magic != kControlMagic) {
    return Status::Corruption("CONTROL magic mismatch (not a fault command)");
  }
  if (version != kControlVersion) {
    return Status::InvalidArgument("unsupported control version");
  }
  if (kind < static_cast<uint8_t>(ControlKind::kCutLink) ||
      kind > static_cast<uint8_t>(ControlKind::kShapeLink)) {
    return Status::Corruption("unknown control command kind");
  }
  command.kind = static_cast<ControlKind>(kind);
  return command;
}

std::shared_ptr<Bytes> BlockPool::Acquire() {
  // A cached block is reusable only once every Payload view into it has
  // died — i.e. when the cache holds the sole reference.
  for (size_t i = 0; i < cache_.size(); ++i) {
    if (cache_[i].use_count() == 1) {
      std::shared_ptr<Bytes> block = std::move(cache_[i]);
      cache_[i] = std::move(cache_.back());
      cache_.pop_back();
      ++blocks_reused_;
      return block;
    }
  }
  ++blocks_allocated_;
  return std::make_shared<Bytes>(block_bytes_);
}

void BlockPool::Recycle(std::shared_ptr<Bytes> block) {
  if (block == nullptr || block->size() != block_bytes_) return;
  if (cache_.size() >= max_cached_) return;  // let it die with its views
  cache_.push_back(std::move(block));
}

Status FrameReader::Fail(Status status) {
  status_ = status;
  // Poisoned: drop all buffered state so a broken connection cannot keep
  // memory pinned while it waits to be torn down.
  block_.reset();
  write_pos_ = 0;
  parse_pos_ = 0;
  spill_active_ = false;
  spill_header_fill_ = 0;
  spill_body_len_ = 0;
  spill_body_.clear();
  spill_body_.shrink_to_fit();
  ready_.clear();
  return status_;
}

uint8_t* FrameReader::WriteHead(size_t* capacity) {
  if (block_ == nullptr || write_pos_ == block_->size()) {
    RollBlock();
  }
  *capacity = block_->size() - write_pos_;
  return block_->data() + write_pos_;
}

void FrameReader::RollBlock() {
  if (block_ != nullptr) {
    // Any unparsed tail is a partial frame *header* (< 8 bytes): a frame
    // with a decoded length that could not fit in the block was already
    // diverted to the spill by Parse(). Carry the tail into the spill so
    // the new block starts on a parse boundary.
    const size_t tail = write_pos_ - parse_pos_;
    if (tail != 0) {
      spill_active_ = true;
      const size_t consumed =
          AbsorbIntoSpill(block_->data() + parse_pos_, tail);
      (void)consumed;  // tail < 8 is always consumed whole into the header
    }
    if (pool_ != nullptr) pool_->Recycle(std::move(block_));
  }
  block_ = pool_ != nullptr ? pool_->Acquire()
                            : std::make_shared<Bytes>(block_bytes_);
  write_pos_ = 0;
  parse_pos_ = 0;
}

Status FrameReader::Commit(size_t n) {
  if (!status_.ok()) return status_;
  if (n == 0) return Status::Ok();
  write_pos_ += n;
  return Parse();
}

Status FrameReader::Feed(const uint8_t* data, size_t len) {
  if (!status_.ok()) return status_;
  size_t off = 0;
  while (off < len) {
    size_t cap = 0;
    uint8_t* head = WriteHead(&cap);
    const size_t take = std::min(cap, len - off);
    std::memcpy(head, data + off, take);
    off += take;
    const Status st = Commit(take);
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

size_t FrameReader::AbsorbIntoSpill(const uint8_t* data, size_t len) {
  size_t consumed = 0;
  while (consumed < len || (spill_header_fill_ == kFrameHeaderBytes &&
                            spill_body_.size() == spill_body_len_)) {
    if (spill_header_fill_ < kFrameHeaderBytes) {
      const size_t take =
          std::min(kFrameHeaderBytes - spill_header_fill_, len - consumed);
      std::memcpy(spill_header_.data() + spill_header_fill_, data + consumed,
                  take);
      spill_header_fill_ += take;
      consumed += take;
      if (spill_header_fill_ < kFrameHeaderBytes) break;
      uint32_t body_len = 0;
      std::memcpy(&body_len, spill_header_.data(), 4);
      std::memcpy(&spill_crc_, spill_header_.data() + 4, 4);
      if (body_len > max_frame_) {
        char msg[96];
        std::snprintf(msg, sizeof(msg),
                      "frame length %u exceeds cap %zu (garbage prefix?)",
                      body_len, max_frame_);
        Fail(Status::Corruption(msg));
        return consumed;
      }
      spill_body_len_ = body_len;
      spill_body_.clear();
      spill_body_.reserve(spill_body_len_);
      continue;
    }
    const size_t need = spill_body_len_ - spill_body_.size();
    const size_t take = std::min(need, len - consumed);
    spill_body_.insert(spill_body_.end(), data + consumed,
                       data + consumed + take);
    consumed += take;
    if (spill_body_.size() == spill_body_len_) {
      if (BodyCrc(spill_body_.data(), spill_body_.size()) != spill_crc_) {
        Fail(Status::Corruption("frame CRC mismatch"));
        return consumed;
      }
      if (stats_ != nullptr) {
        ++stats_->frames_copied;
        stats_->bytes_copied += spill_body_.size();
      }
      ready_.emplace_back(std::move(spill_body_));
      ++frames_decoded_;
      spill_body_ = Bytes();
      spill_header_fill_ = 0;
      spill_body_len_ = 0;
      spill_active_ = false;
      return consumed;
    }
  }
  return consumed;
}

Status FrameReader::Parse() {
  if (spill_active_) {
    // Finish (or keep filling) the cross-block frame before any in-block
    // parsing: its remaining bytes are the committed prefix.
    const size_t consumed =
        AbsorbIntoSpill(block_->data() + parse_pos_, write_pos_ - parse_pos_);
    if (!status_.ok()) return status_;
    parse_pos_ += consumed;
  }

  while (!spill_active_) {
    const size_t avail = write_pos_ - parse_pos_;
    if (avail < kFrameHeaderBytes) break;
    const uint8_t* head = block_->data() + parse_pos_;
    uint32_t body_len = 0;
    uint32_t crc = 0;
    std::memcpy(&body_len, head, 4);  // little-endian hosts only (x86/arm)
    std::memcpy(&crc, head + 4, 4);
    if (body_len > max_frame_) {
      char msg[96];
      std::snprintf(msg, sizeof(msg),
                    "frame length %u exceeds cap %zu (garbage prefix?)",
                    body_len, max_frame_);
      return Fail(Status::Corruption(msg));
    }
    const size_t total = kFrameHeaderBytes + body_len;
    if (parse_pos_ + total > block_->size()) {
      // The frame can never complete inside this block: reassemble it by
      // copy in the spill. Everything committed so far is part of it.
      spill_active_ = true;
      const size_t consumed = AbsorbIntoSpill(head, avail);
      if (!status_.ok()) return status_;
      parse_pos_ += consumed;
      break;
    }
    if (avail < total) break;  // fits in-block; wait for the rest
    const uint8_t* body = head + kFrameHeaderBytes;
    if (BodyCrc(body, body_len) != crc) {
      return Fail(Status::Corruption("frame CRC mismatch"));
    }
    ready_.push_back(Payload::View(block_, parse_pos_ + kFrameHeaderBytes,
                                   body_len));
    if (stats_ != nullptr) {
      ++stats_->frames_aliased;
      stats_->bytes_aliased += body_len;
    }
    ++frames_decoded_;
    parse_pos_ += total;
  }
  return Status::Ok();
}

bool FrameReader::Next(Payload* body) {
  if (ready_.empty()) return false;
  *body = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

Status FrameReader::OnPeerClose() const {
  if (!status_.ok()) return status_;
  if (buffered() != 0) {
    char msg[64];
    std::snprintf(msg, sizeof(msg),
                  "peer closed mid-frame (%zu bytes torn)", buffered());
    return Status::Corruption(msg);
  }
  return Status::Ok();
}

}  // namespace rt
}  // namespace seemore
