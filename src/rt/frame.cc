#include "rt/frame.h"

#include <cstring>

#include "storage/crc32c.h"

namespace seemore {
namespace rt {
namespace {

/// HELLO body: magic + version + sender + fingerprint. The magic doubles as
/// a cheap wrong-protocol detector (someone pointing a browser at a node
/// port fails the handshake with a typed error, not undefined behaviour).
constexpr uint32_t kHelloMagic = 0x544d5253;  // "SMRT"
constexpr uint8_t kHelloVersion = 1;

}  // namespace

Bytes EncodeFrame(const uint8_t* body, size_t len) {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(len));
  enc.PutU32(storage::Crc32c(body, len));
  enc.PutRaw(body, len);
  return enc.Take();
}

Bytes EncodeHello(const Hello& hello) {
  Encoder enc;
  enc.PutU32(kHelloMagic);
  enc.PutU8(kHelloVersion);
  enc.PutU32(static_cast<uint32_t>(hello.sender));
  enc.PutU64(hello.fingerprint);
  return EncodeFrame(enc.bytes());
}

Result<Hello> DecodeHello(const Bytes& body) {
  Decoder dec(body.data(), body.size());
  const uint32_t magic = dec.GetU32();
  const uint8_t version = dec.GetU8();
  Hello hello;
  hello.sender = static_cast<PrincipalId>(dec.GetU32());
  hello.fingerprint = dec.GetU64();
  if (!dec.ok() || !dec.AtEnd()) {
    return Status::Corruption("malformed HELLO frame");
  }
  if (magic != kHelloMagic) {
    return Status::Corruption("HELLO magic mismatch (not a seemore peer)");
  }
  if (version != kHelloVersion) {
    return Status::InvalidArgument("unsupported transport version");
  }
  return hello;
}

Status FrameReader::Fail(Status status) {
  status_ = status;
  // Poisoned: drop all buffered state so a broken connection cannot keep
  // memory pinned while it waits to be torn down.
  buffer_.clear();
  consumed_ = 0;
  ready_.clear();
  return status_;
}

Status FrameReader::Feed(const uint8_t* data, size_t len) {
  if (!status_.ok()) return status_;
  buffer_.insert(buffer_.end(), data, data + len);

  while (true) {
    const size_t available = buffer_.size() - consumed_;
    if (available < kFrameHeaderBytes) break;
    const uint8_t* head = buffer_.data() + consumed_;
    uint32_t body_len = 0;
    uint32_t crc = 0;
    std::memcpy(&body_len, head, 4);  // little-endian hosts only (x86/arm)
    std::memcpy(&crc, head + 4, 4);
    if (body_len > max_frame_) {
      char msg[96];
      std::snprintf(msg, sizeof(msg),
                    "frame length %u exceeds cap %zu (garbage prefix?)",
                    body_len, max_frame_);
      return Fail(Status::Corruption(msg));
    }
    if (available < kFrameHeaderBytes + body_len) break;
    const uint8_t* body = head + kFrameHeaderBytes;
    if (storage::Crc32c(body, body_len) != crc) {
      return Fail(Status::Corruption("frame CRC mismatch"));
    }
    ready_.emplace_back(body, body + body_len);
    ++frames_decoded_;
    consumed_ += kFrameHeaderBytes + body_len;
  }

  // Compact: drop the parsed prefix once it dominates the buffer, so the
  // erase cost amortizes to O(1) per byte instead of O(n) per frame.
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return Status::Ok();
}

bool FrameReader::Next(Bytes* body) {
  if (ready_.empty()) return false;
  *body = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

Status FrameReader::OnPeerClose() const {
  if (!status_.ok()) return status_;
  if (buffered() != 0) {
    char msg[64];
    std::snprintf(msg, sizeof(msg),
                  "peer closed mid-frame (%zu bytes torn)", buffered());
    return Status::Corruption(msg);
  }
  return Status::Ok();
}

}  // namespace rt
}  // namespace seemore
