#include "rt/event_loop.h"

#include <sys/epoll.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace seemore {
namespace rt {
namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    init_status_ = Errno("epoll_create1");
    return;
  }
  timer_fd_ = timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  if (timer_fd_ < 0) {
    init_status_ = Errno("timerfd_create");
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = timer_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev) < 0) {
    init_status_ = Errno("epoll_ctl(timerfd)");
  }
}

EventLoop::~EventLoop() {
  if (timer_fd_ >= 0) close(timer_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

EventId EventLoop::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(Now() + delay, std::move(fn));
}

EventId EventLoop::ScheduleAt(SimTime deadline, std::function<void()> fn) {
  const SimTime now = Now();
  if (deadline < now) deadline = now;
  const EventId id = next_timer_id_++;
  timers_.emplace(id, Timer{deadline, std::move(fn)});
  // multimap::insert places equal keys at the upper bound of their range,
  // so same-deadline timers fire in scheduling order.
  by_deadline_.insert(std::make_pair(deadline, id));
  RearmTimerFd();
  return id;
}

bool EventLoop::CancelEvent(EventId id) {
  auto it = timers_.find(id);
  if (it == timers_.end()) return false;
  const SimTime deadline = it->second.deadline;
  timers_.erase(it);
  for (auto range = by_deadline_.equal_range(deadline);
       range.first != range.second; ++range.first) {
    if (range.first->second == id) {
      by_deadline_.erase(range.first);
      break;
    }
  }
  return true;
}

void EventLoop::RearmTimerFd() {
  // Lazy arming: when the fd is already armed for a deadline at or before
  // the current earliest, let it fire — a spurious early wake costs one
  // empty FireDueTimers pass, far cheaper than a timerfd_settime per
  // re-scheduled timer (view timers and client timeouts re-arm on every
  // request, so exact tracking would pay a syscall each time). An armed fd
  // with no timers left is likewise left to fire once and go quiet.
  if (by_deadline_.empty()) return;
  const SimTime earliest = by_deadline_.begin()->first;
  if (armed_deadline_ <= earliest) return;
  itimerspec spec{};
  SimTime wait = earliest - Now();
  if (wait < 1) wait = 1;  // 0 would disarm; fire "immediately" instead
  spec.it_value.tv_sec = wait / kNanosPerSecond;
  spec.it_value.tv_nsec = wait % kNanosPerSecond;
  timerfd_settime(timer_fd_, 0, &spec, nullptr);
  armed_deadline_ = earliest;
}

void EventLoop::FireDueTimers() {
  uint64_t expirations = 0;
  // Drain the timerfd counter; the value itself is irrelevant, the timer
  // store below decides what is due.
  while (read(timer_fd_, &expirations, sizeof(expirations)) > 0) {
  }
  armed_deadline_ = kNeverArmed;  // one-shot: the fd has fired and is idle
  // Fire everything due at entry. Callbacks may schedule new timers; a new
  // timer due "now" waits for the next epoll wakeup (which the rearm below
  // makes imminent), so a self-rescheduling zero-delay timer cannot starve
  // io events.
  const SimTime now = Now();
  while (!by_deadline_.empty() && by_deadline_.begin()->first <= now) {
    const EventId id = by_deadline_.begin()->second;
    by_deadline_.erase(by_deadline_.begin());
    auto it = timers_.find(id);
    if (it == timers_.end()) continue;
    std::function<void()> fn = std::move(it->second.fn);
    timers_.erase(it);
    fn();
  }
  RearmTimerFd();
}

uint32_t EventLoop::ToEpollEvents(uint32_t events) const {
  uint32_t out = 0;
  if (events & kReadable) out |= EPOLLIN;
  if (events & kWritable) out |= EPOLLOUT;
  return out;
}

Status EventLoop::WatchFd(int fd, uint32_t events, IoCallback callback) {
  const uint64_t generation = next_generation_++;
  epoll_event ev{};
  ev.events = ToEpollEvents(events);
  ev.data.u64 = (generation << 32) | static_cast<uint32_t>(fd);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return Errno("epoll_ctl(add)");
  }
  Watch& watch = watches_[fd];
  watch.callback = std::move(callback);
  watch.events = events;
  watch.generation = generation;
  return Status::Ok();
}

Status EventLoop::ModifyFd(int fd, uint32_t events) {
  auto it = watches_.find(fd);
  if (it == watches_.end()) {
    return Status::NotFound("ModifyFd on unwatched fd");
  }
  if (it->second.events == events) return Status::Ok();  // interest unchanged
  epoll_event ev{};
  ev.events = ToEpollEvents(events);
  ev.data.u64 = (it->second.generation << 32) | static_cast<uint32_t>(fd);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    return Errno("epoll_ctl(mod)");
  }
  it->second.events = events;
  return Status::Ok();
}

void EventLoop::UnwatchFd(int fd) {
  if (watches_.erase(fd) > 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

void EventLoop::Post(std::function<void()> fn) {
  posted_.push_back(std::move(fn));
}

void EventLoop::Run(SimTime until) {
  stopped_ = false;
  const SimTime deadline = until >= 0 ? Now() + until : -1;
  std::vector<epoll_event> events(64);
  while (!stopped_) {
    if (interrupt_ && interrupt_()) break;
    int timeout_ms = 500;  // backstop so a missed signal wakeup can't hang us
    if (!posted_.empty()) timeout_ms = 0;  // pending posts must not sleep
    if (deadline >= 0) {
      const SimTime left = deadline - Now();
      if (left <= 0) break;
      const int left_ms = static_cast<int>(left / kNanosPerMilli) + 1;
      if (left_ms < timeout_ms) timeout_ms = left_ms;
    }
    const int n =
        epoll_wait(epoll_fd_, events.data(),
                   static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;  // signal: loop back to the interrupt check
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = static_cast<int>(events[i].data.u64 & 0xffffffffu);
      const uint64_t generation = events[i].data.u64 >> 32;
      if (fd == timer_fd_) {
        FireDueTimers();
        continue;
      }
      // A callback earlier in this batch may have unwatched (or even
      // unwatched + rewatched) this fd; the generation check drops stale
      // readiness instead of invoking a dead (or wrong) callback.
      auto it = watches_.find(fd);
      if (it == watches_.end() ||
          (it->second.generation & 0xffffffffu) != generation) {
        continue;
      }
      uint32_t mask = 0;
      if (events[i].events & EPOLLIN) mask |= kReadable;
      if (events[i].events & EPOLLOUT) mask |= kWritable;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) mask |= kError;
      // Copy: the callback may unwatch its own fd mid-invocation.
      IoCallback callback = it->second.callback;
      callback(mask);
    }
    // End-of-batch posts: everything deferred while dispatching this batch
    // (e.g. per-connection flush requests) runs now, before the loop can
    // sleep again. Swap once — a post queued by a post runs in this same
    // drain, but an unbounded self-posting chain still yields to io every
    // iteration because the swapped vector is finite.
    if (!posted_.empty()) {
      std::vector<std::function<void()>> batch;
      batch.swap(posted_);
      for (auto& fn : batch) fn();
      // Posts queued by these run next iteration (epoll timeout 0).
    }
    if (static_cast<size_t>(n) == events.size()) events.resize(events.size() * 2);
  }
}

}  // namespace rt
}  // namespace seemore
