// TCP frame codec for the real transport.
//
// A stream between two principals carries length-prefixed, checksummed
// frames; each frame body is exactly one wire message (the same encoded
// bytes SimNetwork would have delivered as a Payload). Layout, all integers
// little-endian like the rest of the wire layer:
//
//   u32 body length | u32 CRC32C(body) | body bytes
//
// The CRC (storage/crc32c.h — the same runtime-dispatched kernel the WAL
// uses) is not a security boundary (signatures inside the body are); it
// catches framing bugs and TCP-level corruption early, turning "garbage
// seeped into the protocol" into a typed kCorruption at the boundary.
//
// The first frame on every freshly-established connection must be a HELLO
// (EncodeHello) announcing the sender's principal id — the pairwise
// authentication hook the paper's model assumes (§3.1): on localhost the
// announcement is trusted; a deployment would bind it to a TLS identity.
//
// Buffer lifecycle (DESIGN.md §12): the send side never copies a body —
// FrameBuffer pairs an inline 8-byte header with a refcounted Payload, so
// a multicast builds one FrameBuffer (one CRC pass) and every peer's write
// queue shares it. The receive side reads straight into pooled refcounted
// blocks and FrameReader parses frames in place, handing each complete
// body out as a Payload view of the block; only a frame that straddles a
// block boundary is copied (FrameReadStats keeps the honest tally).
//
// FrameReader is a pure incremental parser over arbitrary byte chunks: no
// sockets, no allocation proportional to chunk count, and every malformed
// input (oversized/garbage length, CRC mismatch, mid-frame EOF) surfaces
// as a typed error — never a crash, never an unbounded buffer
// (tests/rt_frame_test.cc drives it at every byte boundary).

#ifndef SEEMORE_RT_FRAME_H_
#define SEEMORE_RT_FRAME_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "crypto/keystore.h"
#include "util/status.h"
#include "wire/payload.h"
#include "wire/wire.h"

namespace seemore {
namespace rt {

/// Frame header: body length + CRC32C, 8 bytes.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Upper bound on a frame body. Far above any real message (batches are
/// bounded by batch_max * request size); its job is rejecting garbage
/// length prefixes before they turn into a giant allocation.
inline constexpr size_t kMaxFrameBytes = 16u << 20;

/// Receive-block granularity: one kernel read lands in one pooled block.
inline constexpr size_t kReadBlockBytes = 64u * 1024;

/// Wrap one message body into a contiguous wire frame (header + body).
/// This is the copying form — tests and the HELLO codec use it; the
/// transport's hot path uses FrameBuffer, which never copies the body.
Bytes EncodeFrame(const uint8_t* body, size_t len);
inline Bytes EncodeFrame(const Bytes& body) {
  return EncodeFrame(body.data(), body.size());
}

/// A framed message ready for transmission: the 8-byte header inline, the
/// body as a refcounted Payload. Encoded once per send/multicast — every
/// peer write queue that carries this frame shares one instance (and the
/// body shares the sender's original encode), so fan-out is refcount bumps
/// and the CRC is computed exactly once.
class FrameBuffer {
 public:
  /// Builds the header (length + CRC) over `body`. The body bytes are
  /// aliased, never copied.
  static std::shared_ptr<const FrameBuffer> Wrap(Payload body);

  const uint8_t* header() const { return header_.data(); }
  const Payload& body() const { return body_; }
  /// Total on-the-wire size: header + body.
  size_t size() const { return kFrameHeaderBytes + body_.size(); }

 private:
  explicit FrameBuffer(Payload body);

  std::array<uint8_t, kFrameHeaderBytes> header_;
  Payload body_;
};

/// The connection-opening announcement. `fingerprint` ties the connection
/// to one cluster instance (the launcher uses the spec seed): a stray
/// process from another run is refused at the handshake.
struct Hello {
  PrincipalId sender = 0;
  uint64_t fingerprint = 0;
};

/// HELLO body bytes (magic/version/sender/fingerprint), unframed — the
/// transport wraps them in a FrameBuffer like any other message.
Bytes EncodeHelloBody(const Hello& hello);
/// HELLO as a ready-to-send contiguous frame (EncodeFrame applied).
Bytes EncodeHello(const Hello& hello);
/// Decode a received frame *body* as a HELLO.
Result<Hello> DecodeHello(const uint8_t* data, size_t len);
inline Result<Hello> DecodeHello(const Bytes& body) {
  return DecodeHello(body.data(), body.size());
}

/// Typed fault commands for the runtime fault plane (DESIGN.md §12). The
/// launcher registers a control principal with the cluster and sends these
/// as ordinary frames down its HELLO-authenticated connections; a node
/// recognizes the control principal and decodes every frame from it as a
/// FaultCommand instead of handing it to the replica.
enum class ControlKind : uint8_t {
  kCutLink = 1,      // drop frames on the directed link from -> to
  kRestoreLink = 2,  // undo kCutLink for from -> to
  kPartition = 3,    // cut every private<->public replica pair, both ways
  kHeal = 4,         // undo kPartition/kCutLink state and reset dial backoff
  kSetByzantine = 5, // replica applies byz_flags via ReplicaBase::SetByzantine
  kSwitchMode = 6,   // mode-switch request: the switch authority acts on it
  kQueryPrimary = 7, // ask a node who it believes is primary
  kPrimaryReply = 8, // node -> launcher answer to kQueryPrimary (value = id)
  kShapeLink = 9,    // per-link delay/jitter/drop on the directed from -> to
};

/// One control-channel command. The layout is fixed across kinds (unused
/// fields ride along as zeros) so the codec stays a single strict
/// encode/decode pair: magic, version, kind, from, to, replica, byz_flags,
/// mode, delay_us, jitter_us, drop_ppm, value.
struct FaultCommand {
  ControlKind kind = ControlKind::kHeal;
  int32_t from = -1;         // directed-link source (kCutLink/kRestoreLink/kShapeLink)
  int32_t to = -1;           // directed-link destination
  int32_t replica = -1;      // target replica (kSetByzantine)
  uint32_t byz_flags = 0;    // kSetByzantine payload
  uint8_t mode = 0;          // kSwitchMode target (SeeMoReMode numeric value)
  uint64_t delay_us = 0;     // kShapeLink: fixed extra delay
  uint64_t jitter_us = 0;    // kShapeLink: uniform extra jitter bound
  uint32_t drop_ppm = 0;     // kShapeLink: drop probability, parts-per-million
  uint32_t value = 0;        // kPrimaryReply: the primary's id (+1, 0 = unknown)
};

/// CONTROL body bytes, unframed — sent through the transport like any other
/// message body.
Bytes EncodeFaultCommandBody(const FaultCommand& command);
/// Decode a received frame *body* as a FaultCommand. Any trailing or
/// missing byte, wrong magic or unknown kind is a typed Corruption /
/// InvalidArgument — exactly the HELLO codec's contract.
Result<FaultCommand> DecodeFaultCommand(const uint8_t* data, size_t len);
inline Result<FaultCommand> DecodeFaultCommand(const Bytes& body) {
  return DecodeFaultCommand(body.data(), body.size());
}

/// Pool of fixed-size receive blocks shared by every connection of a
/// transport. A block handed out by Acquire is exclusively the reader's to
/// fill; once the reader rolls past it the block comes back via Recycle,
/// but it is only re-issued after every Payload view into it has died
/// (use_count tells us — no registry, no epochs).
class BlockPool {
 public:
  explicit BlockPool(size_t block_bytes = kReadBlockBytes,
                     size_t max_cached = 32)
      : block_bytes_(block_bytes), max_cached_(max_cached) {}

  std::shared_ptr<Bytes> Acquire();
  void Recycle(std::shared_ptr<Bytes> block);

  size_t block_bytes() const { return block_bytes_; }
  uint64_t blocks_allocated() const { return blocks_allocated_; }
  uint64_t blocks_reused() const { return blocks_reused_; }

 private:
  const size_t block_bytes_;
  const size_t max_cached_;
  std::vector<std::shared_ptr<Bytes>> cache_;
  uint64_t blocks_allocated_ = 0;
  uint64_t blocks_reused_ = 0;
};

/// Receive-path accounting: how many frame bodies were handed out as
/// zero-copy views of a read block vs copied (block-straddling frames).
struct FrameReadStats {
  uint64_t frames_aliased = 0;
  uint64_t frames_copied = 0;
  uint64_t bytes_aliased = 0;
  uint64_t bytes_copied = 0;
};

/// Incremental frame parser over pooled read blocks. The socket reads
/// straight into the reader's current block (WriteHead/Commit — no staging
/// buffer), complete in-block frames come out of Next() as Payload views
/// of that block, and only a frame that straddles a block boundary is
/// copied into owned bytes. Feed() is the copying convenience for callers
/// without an fd (tests). After any error the reader is poisoned: Feed and
/// Commit keep returning the same typed failure and Next returns nothing,
/// so a connection that produced garbage can only be torn down.
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame = kMaxFrameBytes,
                       BlockPool* pool = nullptr,
                       FrameReadStats* stats = nullptr)
      : max_frame_(max_frame),
        pool_(pool),
        block_bytes_(pool != nullptr ? pool->block_bytes() : kReadBlockBytes),
        stats_(stats) {}

  /// Writable tail of the current block (rolling to a fresh block when the
  /// current one is full); `*capacity` receives how many bytes fit. Read
  /// the socket straight into this, then Commit what arrived.
  uint8_t* WriteHead(size_t* capacity);

  /// Absorb `n` bytes just written at WriteHead, parsing as many complete
  /// frames as they finish. Typed failures: kCorruption for an oversized
  /// length prefix or a CRC mismatch.
  Status Commit(size_t n);

  /// Copying convenience: WriteHead/memcpy/Commit in a loop.
  Status Feed(const uint8_t* data, size_t len);

  /// Pop the next complete frame body. False when none is pending.
  bool Next(Payload* body);

  /// What a clean peer close means right now: Ok on a frame boundary,
  /// kCorruption when the stream died mid-frame (torn frame).
  Status OnPeerClose() const;

  /// Bytes buffered toward the next (incomplete) frame.
  size_t buffered() const {
    return spill_header_fill_ + spill_body_.size() + (write_pos_ - parse_pos_);
  }
  bool failed() const { return !status_.ok(); }
  uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  Status Fail(Status status);
  /// Parse committed bytes of the current block: emit views for complete
  /// in-block frames, divert block-straddling tails into the spill.
  Status Parse();
  /// Retire the current block (unparsed tail → spill) and start a new one.
  void RollBlock();
  /// Append stream bytes to the partial cross-block frame; emits an owned
  /// (copied) payload when the frame completes. Returns bytes consumed.
  size_t AbsorbIntoSpill(const uint8_t* data, size_t len);

  size_t max_frame_ = kMaxFrameBytes;  // assignable so readers can be reset
  BlockPool* pool_ = nullptr;
  size_t block_bytes_ = kReadBlockBytes;
  FrameReadStats* stats_ = nullptr;

  std::shared_ptr<Bytes> block_;  // current receive block
  size_t write_pos_ = 0;          // committed bytes in block_
  size_t parse_pos_ = 0;          // parsed prefix of the committed bytes

  /// A frame whose bytes straddle blocks, being reassembled by copy.
  bool spill_active_ = false;
  std::array<uint8_t, kFrameHeaderBytes> spill_header_{};
  size_t spill_header_fill_ = 0;
  size_t spill_body_len_ = 0;
  uint32_t spill_crc_ = 0;
  Bytes spill_body_;

  std::deque<Payload> ready_;
  Status status_;
  uint64_t frames_decoded_ = 0;
};

}  // namespace rt
}  // namespace seemore

#endif  // SEEMORE_RT_FRAME_H_
