// TCP frame codec for the real transport.
//
// A stream between two principals carries length-prefixed, checksummed
// frames; each frame body is exactly one wire message (the same encoded
// bytes SimNetwork would have delivered as a Payload). Layout, all integers
// little-endian like the rest of the wire layer:
//
//   u32 body length | u32 CRC32C(body) | body bytes
//
// The CRC (storage/crc32c.h — the same runtime-dispatched kernel the WAL
// uses) is not a security boundary (signatures inside the body are); it
// catches framing bugs and TCP-level corruption early, turning "garbage
// seeped into the protocol" into a typed kCorruption at the boundary.
//
// The first frame on every freshly-established connection must be a HELLO
// (EncodeHello) announcing the sender's principal id — the pairwise
// authentication hook the paper's model assumes (§3.1): on localhost the
// announcement is trusted; a deployment would bind it to a TLS identity.
//
// FrameReader is a pure incremental parser over arbitrary byte chunks: no
// sockets, no allocation proportional to chunk count, and every malformed
// input (oversized/garbage length, CRC mismatch, mid-frame EOF) surfaces
// as a typed error — never a crash, never an unbounded buffer
// (tests/rt_frame_test.cc drives it at every byte boundary).

#ifndef SEEMORE_RT_FRAME_H_
#define SEEMORE_RT_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <deque>

#include "crypto/keystore.h"
#include "util/status.h"
#include "wire/wire.h"

namespace seemore {
namespace rt {

/// Frame header: body length + CRC32C, 8 bytes.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Upper bound on a frame body. Far above any real message (batches are
/// bounded by batch_max * request size); its job is rejecting garbage
/// length prefixes before they turn into a giant allocation.
inline constexpr size_t kMaxFrameBytes = 16u << 20;

/// Wrap one message body into a wire frame (header + body).
Bytes EncodeFrame(const uint8_t* body, size_t len);
inline Bytes EncodeFrame(const Bytes& body) {
  return EncodeFrame(body.data(), body.size());
}

/// The connection-opening announcement. `fingerprint` ties the connection
/// to one cluster instance (the launcher uses the spec seed): a stray
/// process from another run is refused at the handshake.
struct Hello {
  PrincipalId sender = 0;
  uint64_t fingerprint = 0;
};

/// HELLO as a ready-to-send frame (EncodeFrame applied).
Bytes EncodeHello(const Hello& hello);
/// Decode a received frame *body* as a HELLO.
Result<Hello> DecodeHello(const Bytes& body);

/// Incremental frame parser. Feed() raw stream chunks in, Next() complete
/// frame bodies out. After any error the reader is poisoned: Feed keeps
/// returning the same typed failure and Next returns nothing, so a
/// connection that produced garbage can only be torn down.
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame = kMaxFrameBytes)
      : max_frame_(max_frame) {}

  /// Absorb `len` stream bytes, parsing as many complete frames as they
  /// finish. Typed failures: kCorruption for an oversized length prefix or
  /// a CRC mismatch.
  Status Feed(const uint8_t* data, size_t len);

  /// Pop the next complete frame body. False when none is pending.
  bool Next(Bytes* body);

  /// What a clean peer close means right now: Ok on a frame boundary,
  /// kCorruption when the stream died mid-frame (torn frame).
  Status OnPeerClose() const;

  /// Bytes buffered toward the next (incomplete) frame.
  size_t buffered() const { return buffer_.size() - consumed_; }
  bool failed() const { return !status_.ok(); }
  uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  Status Fail(Status status);

  size_t max_frame_ = kMaxFrameBytes;  // assignable so readers can be reset
  Bytes buffer_;       // unparsed stream tail (compacted as frames complete)
  size_t consumed_ = 0;  // parsed prefix of buffer_ not yet erased
  std::deque<Bytes> ready_;
  Status status_;
  uint64_t frames_decoded_ = 0;
};

}  // namespace rt
}  // namespace seemore

#endif  // SEEMORE_RT_FRAME_H_
