// Minimal JSON value type, parser and printer (no external deps), in the
// spirit of the status/flags helpers: exception-free, Result-returning.
//
// Design points that matter to callers:
//   - Objects preserve insertion order, so dumps are deterministic and
//     spec round-trips are reproducible byte-for-byte.
//   - Integers are kept as int64 (not coerced to double) so ids, seeds and
//     nanosecond times survive a round trip exactly.
//   - Parse rejects trailing garbage, duplicate keys and over-deep nesting;
//     it is meant for config/spec files, not adversarial input at scale.

#ifndef SEEMORE_UTIL_JSON_H_
#define SEEMORE_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace seemore {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}                 // NOLINT
  Json(int v) : type_(Type::kInt), int_(v) {}                    // NOLINT
  Json(int64_t v) : type_(Type::kInt), int_(v) {}                // NOLINT
  Json(uint64_t v) : type_(Type::kInt), int_(static_cast<int64_t>(v)) {}  // NOLINT
  Json(double v) : type_(Type::kDouble), double_(v) {}           // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}      // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Value accessors. Calling the wrong one is a programming error (checked
  /// in debug builds); use the is_*() predicates or the typed Get* helpers.
  bool AsBool() const;
  int64_t AsInt() const;
  /// Numeric value as double (works for both kInt and kDouble).
  double AsDouble() const;
  const std::string& AsString() const;

  /// --- array -------------------------------------------------------------
  void Append(Json value);
  size_t size() const;
  const Json& at(size_t i) const;
  const std::vector<Json>& items() const { return array_; }

  /// --- object ------------------------------------------------------------
  /// Set `key` (replacing an existing entry in place, else appending).
  void Set(const std::string& key, Json value);
  /// nullptr when absent (or not an object).
  const Json* Find(const std::string& key) const;
  Json* Find(const std::string& key) {
    return const_cast<Json*>(static_cast<const Json*>(this)->Find(key));
  }
  bool Has(const std::string& key) const { return Find(key) != nullptr; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return object_;
  }

  /// --- serialization -----------------------------------------------------
  /// Compact when indent < 0, else pretty-printed with `indent` spaces per
  /// level. Doubles render with enough digits to round-trip.
  std::string Dump(int indent = -1) const;

  /// Parse a complete JSON document (trailing non-whitespace rejected).
  static Result<Json> Parse(const std::string& text);

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Helper for strict decoding: hands out fields of one object and remembers
/// which keys were touched, so Finish() can reject unknown fields — the
/// scenario codec uses this to catch typos in hand-written spec files.
class JsonObjectReader {
 public:
  explicit JsonObjectReader(const Json& json) : json_(json) {}

  /// Was the wrapped value actually an object?
  bool valid() const { return json_.is_object(); }

  /// The field, or nullptr if absent. Marks the key as consumed.
  const Json* Get(const std::string& key);

  /// Typed field accessors: absent keys leave `out` untouched and return Ok;
  /// present-but-wrong-type fails. `where` names the object for messages.
  Status ReadInt(const std::string& key, int64_t* out);
  Status ReadInt(const std::string& key, int* out);
  Status ReadUint64(const std::string& key, uint64_t* out);
  Status ReadUint32(const std::string& key, uint32_t* out);
  Status ReadDouble(const std::string& key, double* out);
  Status ReadBool(const std::string& key, bool* out);
  Status ReadString(const std::string& key, std::string* out);

  /// Error unless every key of the object was consumed.
  Status Finish(const std::string& where) const;

 private:
  const Json& json_;
  std::vector<std::string> consumed_;
};

}  // namespace seemore

#endif  // SEEMORE_UTIL_JSON_H_
