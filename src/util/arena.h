// Bump-pointer arena for replica hot-path scratch memory.
//
// The receive path used to pay one or more heap round-trips per message for
// short-lived temporaries: span tables while batch-digesting a NEW-VIEW,
// sorted key scratch, per-checkpoint snapshot staging. An Arena turns those
// into pointer bumps: allocation is `if (fits) ptr += n`, and Reset()
// rewinds the whole arena in O(chunks) without returning memory to the OS,
// so steady state allocates nothing.
//
// Lifetime contract (DESIGN.md §10): arena memory is scratch. Nothing
// stored in an arena may outlive the owning component's reset point — for
// replica scratch that is the checkpoint boundary (ReplicaBase resets its
// arena beside InstanceLog::Reclaim, so scratch lives at most one
// checkpoint interval and the arena's high-water mark is bounded by the
// interval's traffic). Destructors are NOT run: only use the arena for
// trivially-destructible payloads, or via ArenaVector whose elements the
// caller lets go before the reset.

#ifndef SEEMORE_UTIL_ARENA_H_
#define SEEMORE_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace seemore {

class Arena {
 public:
  explicit Arena(size_t chunk_bytes = 64 * 1024)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `n` bytes aligned to `align` (a power of two). Requests
  /// larger than the chunk size get a dedicated chunk.
  uint8_t* Allocate(size_t n, size_t align = alignof(std::max_align_t)) {
    if (chunk_ < chunks_.size()) {
      Chunk& c = chunks_[chunk_];
      size_t at = (c.used + (align - 1)) & ~(align - 1);
      if (at + n <= c.size) {
        c.used = at + n;
        return c.data.get() + at;
      }
    }
    return AllocateSlow(n, align);
  }

  /// Typed allocation of `count` default-constructed Ts. T must be
  /// trivially destructible (the arena never runs destructors).
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory never runs destructors");
    T* out = reinterpret_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
    for (size_t i = 0; i < count; ++i) new (out + i) T();
    return out;
  }

  /// Rewind every chunk. All memory handed out so far is dead; capacity is
  /// retained, so the next interval's allocations are pure pointer bumps.
  void Reset() {
    for (Chunk& c : chunks_) c.used = 0;
    chunk_ = 0;
  }

  /// Bytes handed out since the last Reset().
  size_t bytes_in_use() const {
    size_t n = 0;
    for (const Chunk& c : chunks_) n += c.used;
    return n;
  }
  /// Total capacity across chunks (the high-water mark's footprint).
  size_t bytes_reserved() const {
    size_t n = 0;
    for (const Chunk& c : chunks_) n += c.size;
    return n;
  }

 private:
  struct Chunk {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  uint8_t* AllocateSlow(size_t n, size_t align) {
    // Advance to (or create) a chunk that fits. Oversized requests get an
    // exact-size chunk so one huge message can't inflate every interval.
    while (++chunk_ < chunks_.size()) {
      if (n <= chunks_[chunk_].size) return Allocate(n, align);
    }
    Chunk c;
    c.size = n > chunk_bytes_ ? n : chunk_bytes_;
    c.data = std::make_unique<uint8_t[]>(c.size);
    chunks_.push_back(std::move(c));
    chunk_ = chunks_.size() - 1;
    return Allocate(n, align);
  }

  const size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t chunk_ = 0;  // current bump chunk index
};

/// Minimal std allocator over an Arena: lets standard containers place
/// their element storage in arena memory. Deallocate is a no-op (memory
/// dies at the arena's reset point), so containers that grow repeatedly
/// leak their old capacity into the arena until the next Reset — fine for
/// scratch, wrong for anything long-lived.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return reinterpret_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) {}  // reclaimed wholesale at Reset()

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ != b.arena_;
  }

 private:
  Arena* arena_;
};

/// Scratch vector whose storage lives in an arena.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace seemore

#endif  // SEEMORE_UTIL_ARENA_H_
