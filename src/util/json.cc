#include "util/json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace seemore {
namespace {

constexpr int kMaxDepth = 64;

void AppendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Recursive-descent parser over a flat buffer.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    SkipWhitespace();
    Json value;
    Status status = ParseValue(value, 0);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    size_t len = 0;
    while (literal[len] != '\0') ++len;
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Status ParseValue(Json& out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') return ParseString(out);
    if (c == 't' || c == 'f' || c == 'n') return ParseLiteral(out);
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Fail(std::string("unexpected character '") + c + "'");
  }

  Status ParseLiteral(Json& out) {
    if (ConsumeLiteral("true")) {
      out = Json(true);
      return Status::Ok();
    }
    if (ConsumeLiteral("false")) {
      out = Json(false);
      return Status::Ok();
    }
    if (ConsumeLiteral("null")) {
      out = Json();
      return Status::Ok();
    }
    return Fail("invalid literal");
  }

  Status ParseNumber(Json& out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return Fail("malformed number");
    errno = 0;
    if (integral) {
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == ERANGE || end != token.c_str() + token.size()) {
        // Out of int64 range: fall back to double (lossy but well-defined).
        out = Json(std::strtod(token.c_str(), nullptr));
      } else {
        out = Json(static_cast<int64_t>(v));
      }
    } else {
      char* end = nullptr;
      const double v = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size() || !std::isfinite(v)) {
        return Fail("malformed number");
      }
      out = Json(v);
    }
    return Status::Ok();
  }

  Status ParseString(Json& out) {
    std::string value;
    Status status = ParseRawString(value);
    if (!status.ok()) return status;
    out = Json(std::move(value));
    return Status::Ok();
  }

  Status ParseRawString(std::string& out) {
    if (!Consume('"')) return Fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // spec files are ASCII in practice).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseArray(Json& out, int depth) {
    Consume('[');
    out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      Json element;
      Status status = ParseValue(element, depth + 1);
      if (!status.ok()) return status;
      out.Append(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseObject(Json& out, int depth) {
    Consume('{');
    out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      std::string key;
      Status status = ParseRawString(key);
      if (!status.ok()) return status;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      if (out.Has(key)) return Fail("duplicate object key \"" + key + "\"");
      Json value;
      status = ParseValue(value, depth + 1);
      if (!status.ok()) return status;
      out.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

bool Json::AsBool() const {
  assert(is_bool());
  return bool_;
}

int64_t Json::AsInt() const {
  assert(is_int());
  return int_;
}

double Json::AsDouble() const {
  assert(is_number());
  return is_int() ? static_cast<double>(int_) : double_;
}

const std::string& Json::AsString() const {
  assert(is_string());
  return string_;
}

void Json::Append(Json value) {
  assert(is_array());
  array_.push_back(std::move(value));
}

size_t Json::size() const { return is_array() ? array_.size() : object_.size(); }

const Json& Json::at(size_t i) const {
  assert(is_array() && i < array_.size());
  return array_[i];
}

void Json::Set(const std::string& key, Json value) {
  assert(is_object());
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

const Json* Json::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::DumpTo(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<size_t>(indent) * (depth + 1), ' ') : "";
  const std::string close_pad =
      pretty ? std::string(static_cast<size_t>(indent) * depth, ' ') : "";
  const char* nl = pretty ? "\n" : "";
  const char* colon = pretty ? ": " : ":";
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      out += buf;
      break;
    }
    case Type::kDouble: {
      char buf[48];
      // %.17g round-trips any double; trim to %g when lossless for brevity.
      std::snprintf(buf, sizeof(buf), "%g", double_);
      if (std::strtod(buf, nullptr) != double_) {
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
      }
      out += buf;
      // Keep a marker so the value re-parses as a double, not an int.
      bool marked = false;
      for (const char* p = buf; *p != '\0'; ++p) {
        if (*p == '.' || *p == 'e' || *p == 'E') {
          marked = true;
          break;
        }
      }
      if (!marked) out += ".0";
      break;
    }
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ",";
        out += nl;
        out += pad;
        array_[i].DumpTo(out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out += "]";
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += "{";
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ",";
        out += nl;
        out += pad;
        AppendEscaped(out, object_[i].first);
        out += colon;
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out += "}";
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Parse();
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kInt:
      return int_ == other.int_;
    case Type::kDouble:
      return double_ == other.double_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

const Json* JsonObjectReader::Get(const std::string& key) {
  consumed_.push_back(key);
  return json_.Find(key);
}

Status JsonObjectReader::ReadInt(const std::string& key, int64_t* out) {
  const Json* field = Get(key);
  if (field == nullptr) return Status::Ok();
  if (!field->is_int()) {
    return Status::InvalidArgument("field \"" + key + "\" must be an integer");
  }
  *out = field->AsInt();
  return Status::Ok();
}

Status JsonObjectReader::ReadInt(const std::string& key, int* out) {
  int64_t wide = *out;
  SEEMORE_RETURN_IF_ERROR(ReadInt(key, &wide));
  if (wide < std::numeric_limits<int>::min() ||
      wide > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument("field \"" + key +
                                   "\" out of int range: " +
                                   std::to_string(wide));
  }
  *out = static_cast<int>(wide);
  return Status::Ok();
}

Status JsonObjectReader::ReadUint64(const std::string& key, uint64_t* out) {
  const Json* field = Get(key);
  if (field == nullptr) return Status::Ok();
  if (!field->is_int() || field->AsInt() < 0) {
    return Status::InvalidArgument("field \"" + key +
                                   "\" must be a non-negative integer");
  }
  *out = static_cast<uint64_t>(field->AsInt());
  return Status::Ok();
}

Status JsonObjectReader::ReadUint32(const std::string& key, uint32_t* out) {
  int64_t wide = *out;
  SEEMORE_RETURN_IF_ERROR(ReadInt(key, &wide));
  if (wide < 0 || wide > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("field \"" + key +
                                   "\" out of uint32 range: " +
                                   std::to_string(wide));
  }
  *out = static_cast<uint32_t>(wide);
  return Status::Ok();
}

Status JsonObjectReader::ReadDouble(const std::string& key, double* out) {
  const Json* field = Get(key);
  if (field == nullptr) return Status::Ok();
  if (!field->is_number()) {
    return Status::InvalidArgument("field \"" + key + "\" must be a number");
  }
  *out = field->AsDouble();
  return Status::Ok();
}

Status JsonObjectReader::ReadBool(const std::string& key, bool* out) {
  const Json* field = Get(key);
  if (field == nullptr) return Status::Ok();
  if (!field->is_bool()) {
    return Status::InvalidArgument("field \"" + key + "\" must be a boolean");
  }
  *out = field->AsBool();
  return Status::Ok();
}

Status JsonObjectReader::ReadString(const std::string& key, std::string* out) {
  const Json* field = Get(key);
  if (field == nullptr) return Status::Ok();
  if (!field->is_string()) {
    return Status::InvalidArgument("field \"" + key + "\" must be a string");
  }
  *out = field->AsString();
  return Status::Ok();
}

Status JsonObjectReader::Finish(const std::string& where) const {
  if (!json_.is_object()) {
    return Status::InvalidArgument(where + " must be a JSON object");
  }
  for (const auto& [key, value] : json_.members()) {
    bool known = false;
    for (const std::string& c : consumed_) {
      if (c == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("unknown field \"" + key + "\" in " +
                                     where);
    }
  }
  return Status::Ok();
}

}  // namespace seemore
