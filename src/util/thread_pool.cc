#include "util/thread_pool.h"

namespace seemore {

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

int ThreadPool::DefaultJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace seemore
