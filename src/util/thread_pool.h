// Fixed-size thread pool for embarrassingly parallel host work (one
// simulated run per task). Deliberately minimal: one shared FIFO queue, no
// work stealing, no priorities — scenario runs are seconds-long and
// uniform enough that a simple queue keeps every core busy, and FIFO makes
// the dispatch order deterministic (task k is *started* in submission
// order; completion order is of course up to the scheduler).
//
// Determinism contract: the pool never touches task state — each submitted
// task must own everything it mutates (its own Cluster, Simulator,
// CryptoMemo, report slot). Under that discipline a parallel batch is
// bit-identical to running the same tasks serially, which
// tests/parallel_sweep_test.cc pins down end to end.

#ifndef SEEMORE_UTIL_THREAD_POOL_H_
#define SEEMORE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace seemore {

class ThreadPool {
 public:
  /// Starts `threads` workers (clamped to at least 1).
  explicit ThreadPool(int threads);
  /// Drains the queue (every submitted task still runs), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue `task`. Tasks are started in submission order. The returned
  /// future resolves when the task finishes; an exception thrown by the
  /// task is captured and rethrown from future::get().
  std::future<void> Submit(std::function<void()> task);

  int size() const { return static_cast<int>(workers_.size()); }

  /// Default parallelism: the hardware concurrency, at least 1 (the value
  /// `--jobs` flags fall back to).
  static int DefaultJobs();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace seemore

#endif  // SEEMORE_UTIL_THREAD_POOL_H_
