#include "util/flags.h"

#include <cstdlib>

namespace seemore {

void FlagSet::AddString(const std::string& name,
                        const std::string& default_value,
                        const std::string& help) {
  order_.push_back(name);
  flags_[name] = Flag{Type::kString, help, default_value, default_value};
}

void FlagSet::AddRepeatedString(const std::string& name,
                                const std::string& default_value,
                                const std::string& help) {
  AddString(name, default_value, help);
  flags_[name].repeated = true;
}

void FlagSet::AddInt(const std::string& name, int64_t default_value,
                     const std::string& help) {
  order_.push_back(name);
  const std::string text = std::to_string(default_value);
  flags_[name] = Flag{Type::kInt, help, text, text};
}

void FlagSet::AddDouble(const std::string& name, double default_value,
                        const std::string& help) {
  order_.push_back(name);
  const std::string text = std::to_string(default_value);
  flags_[name] = Flag{Type::kDouble, help, text, text};
}

void FlagSet::AddBool(const std::string& name, bool default_value,
                      const std::string& help) {
  order_.push_back(name);
  const std::string text = default_value ? "true" : "false";
  flags_[name] = Flag{Type::kBool, help, text, text};
}

const FlagSet::Flag* FlagSet::Find(const std::string& name) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? nullptr : &it->second;
}

Status FlagSet::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kInt: {
      char* end = nullptr;
      (void)std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      break;
    }
    case Type::kDouble: {
      char* end = nullptr;
      (void)std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      break;
    }
    case Type::kBool:
      if (value != "true" && value != "false" && value != "1" &&
          value != "0") {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      break;
    case Type::kString:
      break;
  }
  if (flag.repeated && flag.set) {
    // Accumulate; an empty occurrence adds nothing (and never clobbers).
    if (!value.empty()) {
      flag.value = flag.value.empty() ? value : flag.value + ',' + value;
    }
  } else {
    flag.value = value;
  }
  flag.set = true;
  return Status::Ok();
}

Status FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return Status::Ok();
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      SEEMORE_RETURN_IF_ERROR(SetValue(arg.substr(0, eq), arg.substr(eq + 1)));
      continue;
    }
    const Flag* flag = Find(arg);
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + arg);
    }
    if (flag->type == Type::kBool) {
      SEEMORE_RETURN_IF_ERROR(SetValue(arg, "true"));
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + arg + " needs a value");
    }
    SEEMORE_RETURN_IF_ERROR(SetValue(arg, argv[++i]));
  }
  return Status::Ok();
}

std::string FlagSet::GetString(const std::string& name) const {
  const Flag* flag = Find(name);
  return flag == nullptr ? "" : flag->value;
}

int64_t FlagSet::GetInt(const std::string& name) const {
  const Flag* flag = Find(name);
  return flag == nullptr ? 0 : std::strtoll(flag->value.c_str(), nullptr, 10);
}

double FlagSet::GetDouble(const std::string& name) const {
  const Flag* flag = Find(name);
  return flag == nullptr ? 0.0 : std::strtod(flag->value.c_str(), nullptr);
}

bool FlagSet::GetBool(const std::string& name) const {
  const Flag* flag = Find(name);
  return flag != nullptr && (flag->value == "true" || flag->value == "1");
}

bool FlagSet::WasSet(const std::string& name) const {
  const Flag* flag = Find(name);
  return flag != nullptr && flag->set;
}

std::string FlagSet::Usage() const {
  std::string out = description_ + "\n\nFlags:\n";
  for (const std::string& name : order_) {
    const Flag& flag = flags_.at(name);
    out += "  --" + name;
    out += " (default: " + flag.default_value + ")\n";
    out += "      " + flag.help + "\n";
  }
  return out;
}

std::vector<std::string> SplitString(const std::string& input, char sep) {
  std::vector<std::string> parts;
  if (input.empty()) return parts;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(input.substr(start));
      return parts;
    }
    parts.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace seemore
