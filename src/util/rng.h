// Deterministic, seedable pseudo-random number generation.
//
// Simulations must be bit-for-bit reproducible across runs and platforms, so
// we implement the generators ourselves instead of relying on
// std::mt19937/std::uniform_* (whose algorithms are specified but whose
// distribution adaptors are not).

#ifndef SEEMORE_UTIL_RNG_H_
#define SEEMORE_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

namespace seemore {

/// SplitMix64: used to expand a 64-bit seed into generator state.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna. Fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless method would be faster; plain modulo with
    // rejection keeps the implementation obviously correct.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Exponentially distributed double with the given mean.
  double NextExponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard normal via Box-Muller (one value per call; simple > fast here).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace seemore

#endif  // SEEMORE_UTIL_RNG_H_
