// Minimal command-line flag parsing for the tools (no external deps).
// Supports --name=value and --name value forms, bools as --flag /
// --flag=false, typed accessors with defaults, and generated usage text.

#ifndef SEEMORE_UTIL_FLAGS_H_
#define SEEMORE_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace seemore {

class FlagSet {
 public:
  explicit FlagSet(std::string program_description)
      : description_(std::move(program_description)) {}

  /// Register flags (order defines usage listing).
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  /// A string flag that may be passed multiple times; occurrences join with
  /// ',' (so --x=a --x=b equals --x=a,b). Used by schedule flags.
  void AddRepeatedString(const std::string& name,
                         const std::string& default_value,
                         const std::string& help);
  void AddInt(const std::string& name, int64_t default_value,
              const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);

  /// Parse argv. Unknown flags or malformed values fail. `--help` sets
  /// help_requested() and succeeds.
  Status Parse(int argc, char** argv);

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  bool WasSet(const std::string& name) const;

  bool help_requested() const { return help_requested_; }
  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string Usage() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string default_value;
    std::string value;
    bool set = false;
    /// Repeated occurrences accumulate (','-joined) instead of overwriting.
    bool repeated = false;
  };

  Status SetValue(const std::string& name, const std::string& value);
  const Flag* Find(const std::string& name) const;

  std::string description_;
  std::vector<std::string> order_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

/// Split "a,b,c" into parts (empty input -> empty vector).
std::vector<std::string> SplitString(const std::string& input, char sep);

}  // namespace seemore

#endif  // SEEMORE_UTIL_FLAGS_H_
