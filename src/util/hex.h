// Hex encoding/decoding for digests, keys, and debug output.

#ifndef SEEMORE_UTIL_HEX_H_
#define SEEMORE_UTIL_HEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace seemore {

/// Lowercase hex encoding of `data`.
std::string HexEncode(const uint8_t* data, size_t len);
std::string HexEncode(const std::vector<uint8_t>& data);

/// Decode a hex string (case-insensitive). Fails on odd length or non-hex
/// characters.
Result<std::vector<uint8_t>> HexDecode(const std::string& hex);

}  // namespace seemore

#endif  // SEEMORE_UTIL_HEX_H_
