// Exception-free error handling, in the spirit of absl::Status / rocksdb::Status.
//
// Library code in this repository never throws; fallible operations return
// Status (no payload) or Result<T> (payload or error).

#ifndef SEEMORE_UTIL_STATUS_H_
#define SEEMORE_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace seemore {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kCorruption,    // malformed wire data, bad digest/signature
  kUnavailable,   // transient: retry may succeed
  kTimeout,
  kInternal,
};

/// Human-readable name of a status code ("Ok", "Corruption", ...).
const char* StatusCodeName(StatusCode code);

/// Value-type error carrier. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Like absl::StatusOr.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate a non-OK Status from an expression.
#define SEEMORE_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::seemore::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

// Assign the value of a Result<T> expression or propagate its error.
#define SEEMORE_ASSIGN_OR_RETURN(lhs, expr)      \
  auto SEEMORE_CONCAT_(_res_, __LINE__) = (expr);                   \
  if (!SEEMORE_CONCAT_(_res_, __LINE__).ok())                       \
    return SEEMORE_CONCAT_(_res_, __LINE__).status();               \
  lhs = std::move(SEEMORE_CONCAT_(_res_, __LINE__)).value()

#define SEEMORE_CONCAT_INNER_(a, b) a##b
#define SEEMORE_CONCAT_(a, b) SEEMORE_CONCAT_INNER_(a, b)

}  // namespace seemore

#endif  // SEEMORE_UTIL_STATUS_H_
