#include "util/histogram.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace seemore {

namespace {

// Bucket limits: 1, 2, 3, 4, 6, 8, 12, 16, ... (two buckets per octave).
// Generated once; BucketLimit() reads from this table.
struct BucketTable {
  int64_t limits[160];
  int size;

  BucketTable() {
    size = 0;
    int64_t value = 1;
    limits[size++] = 0;
    while (value < std::numeric_limits<int64_t>::max() / 2 && size < 158) {
      limits[size++] = value;
      int64_t mid = value + value / 2;
      if (mid > value) limits[size++] = mid;
      value *= 2;
    }
    limits[size++] = std::numeric_limits<int64_t>::max();
  }
};

const BucketTable& Table() {
  static const BucketTable* table = new BucketTable();
  return *table;
}

}  // namespace

Histogram::Histogram() : buckets_(Table().size, 0) { Clear(); }

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<int64_t>::max();
  max_ = 0;
}

int Histogram::BucketFor(int64_t value) {
  const BucketTable& table = Table();
  // Binary search for the first limit >= value.
  int lo = 0, hi = table.size - 1;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (table.limits[mid] >= value) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

int64_t Histogram::BucketLimit(int index) { return Table().limits[index]; }

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketFor(value)] += 1;
  count_ += 1;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double Histogram::Mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min());
  if (p >= 100.0) return static_cast<double>(max_);
  const double threshold = static_cast<double>(count_) * (p / 100.0);
  double accumulated = 0.0;
  for (int i = 0; i < static_cast<int>(buckets_.size()); ++i) {
    if (buckets_[i] == 0) continue;
    double next = accumulated + static_cast<double>(buckets_[i]);
    if (next >= threshold) {
      const int64_t left = i == 0 ? 0 : BucketLimit(i - 1);
      const int64_t right = BucketLimit(i);
      const double frac =
          (threshold - accumulated) / static_cast<double>(buckets_[i]);
      double value = static_cast<double>(left) +
                     frac * static_cast<double>(right - left);
      value = std::max(value, static_cast<double>(min()));
      value = std::min(value, static_cast<double>(max_));
      return value;
    }
    accumulated = next;
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.1f p50=%.1f p99=%.1f max=%lld",
                static_cast<long long>(count_), Mean(), Percentile(50.0),
                Percentile(99.0), static_cast<long long>(max_));
  return buf;
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace seemore
