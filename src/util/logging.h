// Minimal leveled logger. Defaults to WARNING so simulations stay quiet;
// tests and debugging sessions can raise verbosity per-run.

#ifndef SEEMORE_UTIL_LOGGING_H_
#define SEEMORE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace seemore {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kFatal = 5,
};

/// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// Fatal messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

bool ShouldLog(LogLevel level);

}  // namespace internal

#define SEEMORE_LOG(level)                                               \
  if (!::seemore::internal::ShouldLog(::seemore::LogLevel::k##level)) {  \
  } else                                                                 \
    ::seemore::internal::LogMessage(::seemore::LogLevel::k##level,       \
                                    __FILE__, __LINE__)                  \
        .stream()

#define SEEMORE_CHECK(cond)                                          \
  if (cond) {                                                        \
  } else                                                             \
    ::seemore::internal::LogMessage(::seemore::LogLevel::kFatal,     \
                                    __FILE__, __LINE__)              \
        .stream()                                                    \
        << "Check failed: " #cond " "

}  // namespace seemore

#endif  // SEEMORE_UTIL_LOGGING_H_
