// Open-addressing hash containers for the consensus hot path.
//
// The replica receive path is dominated by small map operations — vote
// tables keyed by digest or principal, timestamp maps, reply caches — where
// std::map's per-node allocation and pointer chasing cost more than the
// lookup itself. FlatHashMap stores key/value pairs contiguously with
// linear probing (power-of-two capacity, byte-per-slot metadata), so a hot
// lookup is one hash, one cache line of control bytes, and usually one slot
// probe, with zero allocations after the table reaches steady-state size.
//
// Deliberate non-goals, and what call sites must do about them:
//   - Iteration order is UNSPECIFIED and changes across rehashes. Anything
//     that feeds ordered output (wire encoding, snapshots, reports) must
//     collect and sort at read time — never iterate one of these straight
//     into an Encoder. DESIGN.md §10 lists the call sites this applies to.
//   - References/iterators are invalidated by any mutating operation
//     (rehash moves slots). Don't hold them across inserts.
//   - Erase uses tombstones; the table rehashes in place once tombstones
//     outnumber live entries, keeping probe chains short.

#ifndef SEEMORE_UTIL_FLAT_HASH_MAP_H_
#define SEEMORE_UTIL_FLAT_HASH_MAP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace seemore {

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class FlatHashMap {
 public:
  using value_type = std::pair<K, V>;

  FlatHashMap() = default;

  template <bool kConst>
  class Iter {
   public:
    using Owner = std::conditional_t<kConst, const FlatHashMap, FlatHashMap>;
    using Ref = std::conditional_t<kConst, const value_type&, value_type&>;
    using Ptr = std::conditional_t<kConst, const value_type*, value_type*>;

    Iter() = default;
    Iter(Owner* owner, size_t idx) : owner_(owner), idx_(idx) { SkipDead(); }

    Ref operator*() const { return owner_->slots_[idx_]; }
    Ptr operator->() const { return &owner_->slots_[idx_]; }
    Iter& operator++() {
      ++idx_;
      SkipDead();
      return *this;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.idx_ == b.idx_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.idx_ != b.idx_;
    }
    // const_iterator from iterator (no-op self-conversion excluded).
    template <bool C = kConst, std::enable_if_t<!C, int> = 0>
    operator Iter<true>() const {
      return Iter<true>(owner_, idx_);
    }

   private:
    friend class FlatHashMap;
    void SkipDead() {
      while (owner_ != nullptr && idx_ < owner_->state_.size() &&
             owner_->state_[idx_] != kFull) {
        ++idx_;
      }
    }
    Owner* owner_ = nullptr;
    size_t idx_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, state_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, state_.size()); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    state_.assign(state_.size(), kEmpty);
    for (auto& s : slots_) s = value_type();  // release held payloads
    size_ = 0;
    tombstones_ = 0;
  }

  /// Pre-size for at least `n` entries without rehashing.
  void reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * 3 / 4 < n) cap <<= 1;
    if (cap > state_.size()) Rehash(cap);
  }

  iterator find(const K& key) {
    size_t idx = FindIndex(key);
    return idx == kNotFound ? end() : iterator(this, idx);
  }
  const_iterator find(const K& key) const {
    size_t idx = FindIndex(key);
    return idx == kNotFound ? end() : const_iterator(this, idx);
  }
  bool contains(const K& key) const { return FindIndex(key) != kNotFound; }
  size_t count(const K& key) const { return contains(key) ? 1 : 0; }

  V& operator[](const K& key) { return TryEmplace(key).first->second; }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    return TryEmplace(key, std::forward<Args>(args)...);
  }

  std::pair<iterator, bool> insert(const value_type& kv) {
    return TryEmplaceFrom(kv.first, kv.second);
  }
  std::pair<iterator, bool> insert(value_type&& kv) {
    return TryEmplaceFrom(kv.first, std::move(kv.second));
  }

  template <typename... Args>
  std::pair<iterator, bool> emplace(const K& key, Args&&... args) {
    return TryEmplace(key, std::forward<Args>(args)...);
  }

  size_t erase(const K& key) {
    size_t idx = FindIndex(key);
    if (idx == kNotFound) return 0;
    EraseSlot(idx);
    return 1;
  }

  iterator erase(iterator it) {
    EraseSlot(it.idx_);
    ++it.idx_;
    it.SkipDead();
    return it;
  }

 private:
  static constexpr uint8_t kEmpty = 0;
  static constexpr uint8_t kFull = 1;
  static constexpr uint8_t kTombstone = 2;
  static constexpr size_t kMinCapacity = 16;
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  size_t Mask() const { return state_.size() - 1; }

  size_t FindIndex(const K& key) const {
    if (state_.empty()) return kNotFound;
    size_t idx = Hash{}(key)&Mask();
    for (;;) {
      uint8_t s = state_[idx];
      if (s == kEmpty) return kNotFound;
      if (s == kFull && Eq{}(slots_[idx].first, key)) return idx;
      idx = (idx + 1) & Mask();
    }
  }

  template <typename... Args>
  std::pair<iterator, bool> TryEmplace(const K& key, Args&&... args) {
    size_t idx = PrepareInsert(key);
    if (state_[idx] == kFull) return {iterator(this, idx), false};
    if (state_[idx] == kTombstone) --tombstones_;
    state_[idx] = kFull;
    slots_[idx].first = key;
    slots_[idx].second = V(std::forward<Args>(args)...);
    ++size_;
    return {iterator(this, idx), true};
  }

  template <typename VV>
  std::pair<iterator, bool> TryEmplaceFrom(const K& key, VV&& value) {
    size_t idx = PrepareInsert(key);
    if (state_[idx] == kFull) return {iterator(this, idx), false};
    if (state_[idx] == kTombstone) --tombstones_;
    state_[idx] = kFull;
    slots_[idx].first = key;
    slots_[idx].second = std::forward<VV>(value);
    ++size_;
    return {iterator(this, idx), true};
  }

  /// Index of `key` if present (state kFull), else the slot to insert into
  /// (state kEmpty or kTombstone). Grows/cleans the table as needed first.
  size_t PrepareInsert(const K& key) {
    if (state_.empty()) {
      Rehash(kMinCapacity);
    } else if ((size_ + tombstones_ + 1) * 4 > state_.size() * 3) {
      // Grow on live load; rehash in place when tombstones are the cause.
      Rehash(size_ + 1 > state_.size() * 3 / 8 ? state_.size() * 2
                                               : state_.size());
    }
    size_t idx = Hash{}(key)&Mask();
    size_t insert_at = kNotFound;
    for (;;) {
      uint8_t s = state_[idx];
      if (s == kEmpty) {
        return insert_at == kNotFound ? idx : insert_at;
      }
      if (s == kTombstone) {
        if (insert_at == kNotFound) insert_at = idx;
      } else if (Eq{}(slots_[idx].first, key)) {
        return idx;
      }
      idx = (idx + 1) & Mask();
    }
  }

  void EraseSlot(size_t idx) {
    state_[idx] = kTombstone;
    slots_[idx] = value_type();  // drop payload eagerly (frees Bytes etc.)
    --size_;
    ++tombstones_;
  }

  void Rehash(size_t new_cap) {
    std::vector<uint8_t> old_state = std::move(state_);
    std::vector<value_type> old_slots = std::move(slots_);
    state_.assign(new_cap, kEmpty);
    slots_ = std::vector<value_type>(new_cap);  // move-only V stays legal
    size_ = 0;
    tombstones_ = 0;
    for (size_t i = 0; i < old_state.size(); ++i) {
      if (old_state[i] != kFull) continue;
      size_t idx = Hash{}(old_slots[i].first) & Mask();
      while (state_[idx] == kFull) idx = (idx + 1) & Mask();
      state_[idx] = kFull;
      slots_[idx] = std::move(old_slots[i]);
      ++size_;
    }
  }

  std::vector<uint8_t> state_;
  std::vector<value_type> slots_;
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

/// Set adapter over FlatHashMap (key-only view; same caveats).
template <typename K, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class FlatHashSet {
 public:
  struct Empty {};
  using Map = FlatHashMap<K, Empty, Hash, Eq>;

  class const_iterator {
   public:
    const_iterator() = default;
    explicit const_iterator(typename Map::const_iterator it) : it_(it) {}
    const K& operator*() const { return it_->first; }
    const K* operator->() const { return &it_->first; }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.it_ == b.it_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.it_ != b.it_;
    }

   private:
    typename Map::const_iterator it_;
  };
  using iterator = const_iterator;

  const_iterator begin() const { return const_iterator(map_.begin()); }
  const_iterator end() const { return const_iterator(map_.end()); }

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(size_t n) { map_.reserve(n); }

  std::pair<const_iterator, bool> insert(const K& key) {
    auto r = map_.try_emplace(key);
    return {const_iterator(r.first), r.second};
  }
  bool contains(const K& key) const { return map_.contains(key); }
  size_t count(const K& key) const { return map_.count(key); }
  size_t erase(const K& key) { return map_.erase(key); }

 private:
  Map map_;
};

}  // namespace seemore

#endif  // SEEMORE_UTIL_FLAT_HASH_MAP_H_
