// Virtual time base shared by the transport interfaces, the cost model and
// the discrete-event simulator.
//
// All timing in the repository is expressed in nanoseconds of *virtual* time.
// Only the composition root (harness, benchmarks) knows whether virtual time
// is driven by the simulator or by a wall clock; protocol code sees it solely
// through the Clock / TimerService interfaces in net/transport.h.

#ifndef SEEMORE_UTIL_TIME_H_
#define SEEMORE_UTIL_TIME_H_

#include <cstdint>

namespace seemore {

/// Time in nanoseconds since simulation (or process) start.
using SimTime = int64_t;

inline constexpr SimTime kNanosPerMicro = 1000;
inline constexpr SimTime kNanosPerMilli = 1000 * 1000;
inline constexpr SimTime kNanosPerSecond = 1000 * 1000 * 1000;

inline constexpr SimTime Micros(int64_t us) { return us * kNanosPerMicro; }
inline constexpr SimTime Millis(int64_t ms) { return ms * kNanosPerMilli; }
inline constexpr SimTime Seconds(int64_t s) { return s * kNanosPerSecond; }
inline double ToMillis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kNanosPerMilli);
}

/// Handle for cancelling a scheduled timer/event. 0 is never a valid id.
using EventId = uint64_t;

}  // namespace seemore

#endif  // SEEMORE_UTIL_TIME_H_
