// Fixed-memory latency histogram with power-of-two-ish buckets, in the style
// of HdrHistogram/rocksdb::HistogramImpl: constant-time record, approximate
// percentiles, exact count/sum/min/max.

#ifndef SEEMORE_UTIL_HISTOGRAM_H_
#define SEEMORE_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace seemore {

class Histogram {
 public:
  Histogram();

  /// Record a non-negative sample (e.g. latency in nanoseconds).
  void Record(int64_t value);

  void Clear();

  int64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return max_; }
  double Mean() const;

  /// Approximate value at percentile p in [0, 100]. Linear interpolation
  /// within the containing bucket.
  double Percentile(double p) const;

  double Median() const { return Percentile(50.0); }

  /// The named percentiles every report emits (RunResult, scenario reports,
  /// BENCH JSON) — one spelling so callers cannot drift.
  double P50() const { return Percentile(50.0); }
  double P90() const { return Percentile(90.0); }
  double P99() const { return Percentile(99.0); }

  /// One-line summary: count/mean/p50/p99/max.
  std::string ToString() const;

  /// Merge another histogram into this one.
  void Merge(const Histogram& other);

 private:
  static constexpr int kNumBuckets = 154;  // covers [0, ~9.2e18]

  /// Index of the bucket holding `value`.
  static int BucketFor(int64_t value);
  /// Inclusive upper bound of bucket `index`.
  static int64_t BucketLimit(int index);

  std::vector<int64_t> buckets_;
  int64_t count_;
  int64_t sum_;
  int64_t min_;
  int64_t max_;
};

}  // namespace seemore

#endif  // SEEMORE_UTIL_HISTOGRAM_H_
