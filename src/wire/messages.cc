#include "wire/messages.h"

#include <array>

#include "crypto/memo.h"
#include "crypto/sha256.h"

namespace seemore {

namespace {

/// Decodes the shared signed-vote body shape into any derived vote type.
template <typename V>
Result<V> DecodeSmVote(Decoder& dec) {
  V msg;
  msg.mode = dec.GetU8();
  msg.view = dec.GetU64();
  msg.seq = dec.GetU64();
  msg.digest = Digest::DecodeFrom(dec);
  msg.voter = static_cast<PrincipalId>(dec.GetU32());
  msg.sig = Signature::DecodeFrom(dec);
  if (!dec.ok()) return dec.status();
  return msg;
}

template <typename V>
Result<V> DecodePbftVote(Decoder& dec) {
  V msg;
  msg.view = dec.GetU64();
  msg.seq = dec.GetU64();
  msg.digest = Digest::DecodeFrom(dec);
  msg.voter = static_cast<PrincipalId>(dec.GetU32());
  msg.sig = Signature::DecodeFrom(dec);
  if (!dec.ok()) return dec.status();
  return msg;
}

/// Frame-relative offset of the field the immediately preceding GetBytes
/// decoded (the decoder's read position minus the field's length).
size_t FieldOffset(const Decoder& dec, const Bytes& field) {
  return dec.pos() - field.size();
}

}  // namespace

// ---------------------------------------------------------------------------
// SeeMoRe
// ---------------------------------------------------------------------------

void SmPrepareMsg::EncodeTo(Encoder& enc) const {
  enc.Reserve(1 + 8 + 8 + Digest::kSize + Signature::kSize +
              VarintSize(batch.size()) + batch.size());
  enc.PutU8(mode);
  enc.PutU64(view);
  enc.PutU64(seq);
  digest.EncodeTo(enc);
  sig.EncodeTo(enc);
  enc.PutBytes(batch);
}

Result<SmPrepareMsg> SmPrepareMsg::DecodeFrom(Decoder& dec) {
  SmPrepareMsg msg;
  msg.mode = dec.GetU8();
  msg.view = dec.GetU64();
  msg.seq = dec.GetU64();
  msg.digest = Digest::DecodeFrom(dec);
  msg.sig = Signature::DecodeFrom(dec);
  msg.batch = dec.GetBytes();
  if (!dec.ok()) return dec.status();
  msg.batch_offset = FieldOffset(dec, msg.batch);
  return msg;
}

void SmAcceptPlainMsg::EncodeTo(Encoder& enc) const {
  enc.PutU8(mode);
  enc.PutU64(view);
  enc.PutU64(seq);
  digest.EncodeTo(enc);
  enc.PutU32(static_cast<uint32_t>(voter));
}

Result<SmAcceptPlainMsg> SmAcceptPlainMsg::DecodeFrom(Decoder& dec) {
  SmAcceptPlainMsg msg;
  msg.mode = dec.GetU8();
  msg.view = dec.GetU64();
  msg.seq = dec.GetU64();
  msg.digest = Digest::DecodeFrom(dec);
  msg.voter = static_cast<PrincipalId>(dec.GetU32());
  if (!dec.ok()) return dec.status();
  return msg;
}

void SmSignedVoteBody::EncodeTo(Encoder& enc) const {
  enc.PutU8(mode);
  enc.PutU64(view);
  enc.PutU64(seq);
  digest.EncodeTo(enc);
  enc.PutU32(static_cast<uint32_t>(voter));
  sig.EncodeTo(enc);
}

Result<SmAcceptSignedMsg> SmAcceptSignedMsg::DecodeFrom(Decoder& dec) {
  return DecodeSmVote<SmAcceptSignedMsg>(dec);
}

Result<SmCommitVoteMsg> SmCommitVoteMsg::DecodeFrom(Decoder& dec) {
  return DecodeSmVote<SmCommitVoteMsg>(dec);
}

Result<SmInformMsg> SmInformMsg::DecodeFrom(Decoder& dec) {
  return DecodeSmVote<SmInformMsg>(dec);
}

void SmCommitPrimaryMsg::EncodeTo(Encoder& enc) const {
  enc.Reserve(1 + 8 + 8 + Digest::kSize + Signature::kSize +
              VarintSize(batch.size()) + batch.size());
  enc.PutU8(mode);
  enc.PutU64(view);
  enc.PutU64(seq);
  digest.EncodeTo(enc);
  sig.EncodeTo(enc);
  enc.PutBytes(batch);
}

Result<SmCommitPrimaryMsg> SmCommitPrimaryMsg::DecodeFrom(Decoder& dec) {
  SmCommitPrimaryMsg msg;
  msg.mode = dec.GetU8();
  msg.view = dec.GetU64();
  msg.seq = dec.GetU64();
  msg.digest = Digest::DecodeFrom(dec);
  msg.sig = Signature::DecodeFrom(dec);
  msg.batch = dec.GetBytes();
  if (!dec.ok()) return dec.status();
  msg.batch_offset = FieldOffset(dec, msg.batch);
  return msg;
}

void SmVcEntry::EncodeTo(Encoder& enc) const {
  enc.Reserve(EncodedSize());
  enc.PutU8(static_cast<uint8_t>(mode));
  enc.PutU64(view);
  enc.PutU64(seq);
  digest.EncodeTo(enc);
  // In-place batch encode under a computed length prefix — identical bytes
  // to PutBytes(batch.Encode()) without the temporary buffer.
  enc.PutVarint(batch.EncodedSize());
  batch.EncodeTo(enc);
  sig.EncodeTo(enc);
}

size_t SmVcEntry::EncodedSize() const {
  const size_t batch_size = batch.EncodedSize();
  return 1 + 8 + 8 + Digest::kSize + VarintSize(batch_size) + batch_size +
         Signature::kSize;
}

Result<SmVcEntry> SmVcEntry::DecodeFrom(Decoder& dec) {
  SmVcEntry entry;
  entry.mode = static_cast<SeeMoReMode>(dec.GetU8());
  entry.view = dec.GetU64();
  entry.seq = dec.GetU64();
  entry.digest = Digest::DecodeFrom(dec);
  Bytes batch_bytes = dec.GetBytes();
  const size_t batch_offset = dec.ok() ? FieldOffset(dec, batch_bytes) : 0;
  entry.sig = Signature::DecodeFrom(dec);
  if (!dec.ok()) return dec.status();
  // Memoized on the frame's buffer identity: each receiver of a multicast
  // view-change re-validates these embedded batches, but only the first
  // pays the real SHA-256 (the simulated cost is charged by the replica).
  // A memo-less decoder (unit tests, own-message validation) computes the
  // digest for real — same verdict, no sharing.
  const Digest batch_digest =
      dec.memo() != nullptr
          ? dec.memo()->DigestOf(dec.buffer_id(), batch_offset, batch_bytes)
          : Digest::Of(batch_bytes);
  if (batch_digest != entry.digest) {
    return Status::Corruption("view-change entry digest mismatch");
  }
  SEEMORE_ASSIGN_OR_RETURN(entry.batch, Batch::Decode(batch_bytes));
  return entry;
}

void SmViewChangeMsg::EncodeTo(Encoder& enc) const {
  enc.PutU8(mode);
  enc.PutU64(new_view);
  enc.PutU64(stable_seq);
  cert.EncodeTo(enc);
  // One allocation for all three entry sets (the bulk of a view change —
  // every in-flight batch rides along).
  size_t sets_size = VarintSize(prepares.size()) +
                     VarintSize(commits.size()) + VarintSize(proofs.size()) +
                     4;
  for (const SmVcEntry& entry : prepares) sets_size += entry.EncodedSize();
  for (const SmVcEntry& entry : commits) sets_size += entry.EncodedSize();
  for (const PreparedProof& proof : proofs) sets_size += proof.EncodedSize();
  enc.Reserve(sets_size);
  enc.PutVarint(prepares.size());
  for (const SmVcEntry& entry : prepares) entry.EncodeTo(enc);
  enc.PutVarint(commits.size());
  for (const SmVcEntry& entry : commits) entry.EncodeTo(enc);
  enc.PutVarint(proofs.size());
  for (const PreparedProof& proof : proofs) proof.EncodeTo(enc);
  enc.PutU32(static_cast<uint32_t>(sender));
}

uint64_t SmViewChangeMsg::PeekNewView(Decoder dec) {
  dec.GetU8();  // mode
  const uint64_t new_view = dec.GetU64();
  return dec.ok() ? new_view : 0;
}

Result<SmViewChangeMsg> SmViewChangeMsg::DecodeFrom(Decoder& dec,
                                                    uint64_t max_entries) {
  SmViewChangeMsg msg;
  msg.mode = dec.GetU8();
  msg.new_view = dec.GetU64();
  msg.stable_seq = dec.GetU64();
  SEEMORE_ASSIGN_OR_RETURN(msg.cert, CheckpointCert::DecodeFrom(dec));

  const uint64_t n_prepares = dec.GetVarint();
  if (!dec.ok() || n_prepares > max_entries) {
    return Status::Corruption("bad prepare count");
  }
  msg.prepares.reserve(n_prepares);
  for (uint64_t i = 0; i < n_prepares; ++i) {
    SEEMORE_ASSIGN_OR_RETURN(SmVcEntry entry, SmVcEntry::DecodeFrom(dec));
    msg.prepares.push_back(std::move(entry));
  }

  const uint64_t n_commits = dec.GetVarint();
  if (!dec.ok() || n_commits > max_entries) {
    return Status::Corruption("bad commit count");
  }
  msg.commits.reserve(n_commits);
  for (uint64_t i = 0; i < n_commits; ++i) {
    SEEMORE_ASSIGN_OR_RETURN(SmVcEntry entry, SmVcEntry::DecodeFrom(dec));
    msg.commits.push_back(std::move(entry));
  }

  const uint64_t n_proofs = dec.GetVarint();
  if (!dec.ok() || n_proofs > max_entries) {
    return Status::Corruption("bad proof count");
  }
  msg.proofs.reserve(n_proofs);
  for (uint64_t i = 0; i < n_proofs; ++i) {
    SEEMORE_ASSIGN_OR_RETURN(PreparedProof proof,
                             PreparedProof::DecodeFrom(dec));
    msg.proofs.push_back(std::move(proof));
  }

  msg.sender = static_cast<PrincipalId>(dec.GetU32());
  SEEMORE_RETURN_IF_ERROR(dec.Finish());
  return msg;
}

void SmNewViewEntry::EncodeTo(Encoder& enc) const {
  enc.Reserve(EncodedSize());
  enc.PutU64(view);
  enc.PutU64(seq);
  digest.EncodeTo(enc);
  enc.PutBytes(batch);
  sig.EncodeTo(enc);
}

size_t SmNewViewEntry::EncodedSize() const {
  return 8 + 8 + Digest::kSize + VarintSize(batch.size()) + batch.size() +
         Signature::kSize;
}

Result<SmNewViewEntry> SmNewViewEntry::DecodeFrom(Decoder& dec) {
  SmNewViewEntry entry;
  entry.view = dec.GetU64();
  entry.seq = dec.GetU64();
  entry.digest = Digest::DecodeFrom(dec);
  entry.batch = dec.GetBytes();
  const size_t batch_offset = dec.ok() ? FieldOffset(dec, entry.batch) : 0;
  entry.sig = Signature::DecodeFrom(dec);
  if (!dec.ok()) return dec.status();
  entry.batch_offset = batch_offset;
  return entry;
}

Digest SmNewViewMsg::EntrySetDigest() const {
  // Canonical encoding: set sizes, then each entry's (view, seq, digest) in
  // frame order. Batch bytes are bound transitively (receivers reject any
  // entry whose batch does not hash to entry.digest); the per-entry sigs are
  // the authority's own deterministic-domain signatures and add no binding.
  Sha256 hasher;
  const auto put_u64 = [&hasher](uint64_t v) {
    uint8_t buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<uint8_t>(v >> (8 * i));
    hasher.Update(buf, sizeof(buf));
  };
  put_u64(commits.size());
  put_u64(prepares.size());
  const auto put_entry = [&](const SmNewViewEntry& entry) {
    put_u64(entry.view);
    put_u64(entry.seq);
    hasher.Update(entry.digest.data(), Digest::kSize);
  };
  for (const SmNewViewEntry& entry : commits) put_entry(entry);
  for (const SmNewViewEntry& entry : prepares) put_entry(entry);
  std::array<uint8_t, Sha256::kDigestSize> out;
  hasher.Final(out.data());
  return Digest(out);
}

void SmNewViewMsg::EncodeTo(Encoder& enc) const {
  size_t total = 1 + 8 + 8 + Signature::kSize + VarintSize(commits.size()) +
                 VarintSize(prepares.size());
  for (const SmNewViewEntry& entry : commits) total += entry.EncodedSize();
  for (const SmNewViewEntry& entry : prepares) total += entry.EncodedSize();
  enc.Reserve(total);
  enc.PutU8(mode);
  enc.PutU64(new_view);
  enc.PutU64(low);
  header_sig.EncodeTo(enc);
  enc.PutVarint(commits.size());
  for (const SmNewViewEntry& entry : commits) entry.EncodeTo(enc);
  enc.PutVarint(prepares.size());
  for (const SmNewViewEntry& entry : prepares) entry.EncodeTo(enc);
}

Result<SmNewViewMsg> SmNewViewMsg::DecodeFrom(Decoder& dec,
                                              uint64_t max_entries) {
  SmNewViewMsg msg;
  msg.mode = dec.GetU8();
  msg.new_view = dec.GetU64();
  msg.low = dec.GetU64();
  msg.header_sig = Signature::DecodeFrom(dec);

  const uint64_t n_commits = dec.GetVarint();
  if (!dec.ok() || n_commits > max_entries) {
    return Status::Corruption("bad new-view commit count");
  }
  msg.commits.reserve(n_commits);
  for (uint64_t i = 0; i < n_commits; ++i) {
    SEEMORE_ASSIGN_OR_RETURN(SmNewViewEntry entry,
                             SmNewViewEntry::DecodeFrom(dec));
    msg.commits.push_back(std::move(entry));
  }

  const uint64_t n_prepares = dec.GetVarint();
  if (!dec.ok() || n_prepares > max_entries) {
    return Status::Corruption("bad new-view prepare count");
  }
  msg.prepares.reserve(n_prepares);
  for (uint64_t i = 0; i < n_prepares; ++i) {
    SEEMORE_ASSIGN_OR_RETURN(SmNewViewEntry entry,
                             SmNewViewEntry::DecodeFrom(dec));
    msg.prepares.push_back(std::move(entry));
  }
  return msg;
}

void SmModeChangeMsg::EncodeTo(Encoder& enc) const {
  enc.PutU8(mode);
  enc.PutU64(new_view);
  enc.PutU32(static_cast<uint32_t>(sender));
  sig.EncodeTo(enc);
}

Result<SmModeChangeMsg> SmModeChangeMsg::DecodeFrom(Decoder& dec) {
  SmModeChangeMsg msg;
  msg.mode = dec.GetU8();
  msg.new_view = dec.GetU64();
  msg.sender = static_cast<PrincipalId>(dec.GetU32());
  msg.sig = Signature::DecodeFrom(dec);
  if (!dec.ok()) return dec.status();
  return msg;
}

// ---------------------------------------------------------------------------
// State transfer
// ---------------------------------------------------------------------------

void StateRequestMsg::EncodeTo(Encoder& enc) const {
  enc.PutU64(last_executed);
}

Result<StateRequestMsg> StateRequestMsg::DecodeFrom(Decoder& dec) {
  StateRequestMsg msg;
  msg.last_executed = dec.GetU64();
  if (!dec.ok()) return dec.status();
  return msg;
}

void NewViewRequestMsg::EncodeTo(Encoder& enc) const {
  enc.PutU64(view);
}

Result<NewViewRequestMsg> NewViewRequestMsg::DecodeFrom(Decoder& dec) {
  NewViewRequestMsg msg;
  msg.view = dec.GetU64();
  if (!dec.ok()) return dec.status();
  return msg;
}

void StateResponseMsg::EncodeTo(Encoder& enc) const {
  cert.EncodeTo(enc);
  enc.Reserve(VarintSize(snapshot.size()) + snapshot.size());
  enc.PutBytes(snapshot);
}

Result<StateResponseMsg> StateResponseMsg::DecodeFrom(Decoder& dec) {
  StateResponseMsg msg;
  SEEMORE_ASSIGN_OR_RETURN(msg.cert, CheckpointCert::DecodeFrom(dec));
  msg.snapshot = dec.GetBytes();
  if (!dec.ok()) return dec.status();
  return msg;
}

// ---------------------------------------------------------------------------
// PBFT / S-UpRight
// ---------------------------------------------------------------------------

void PbftPrePrepareMsg::EncodeTo(Encoder& enc) const {
  enc.Reserve(8 + 8 + Digest::kSize + Signature::kSize +
              VarintSize(batch.size()) + batch.size());
  enc.PutU64(view);
  enc.PutU64(seq);
  digest.EncodeTo(enc);
  sig.EncodeTo(enc);
  enc.PutBytes(batch);
}

Result<PbftPrePrepareMsg> PbftPrePrepareMsg::DecodeFrom(Decoder& dec) {
  PbftPrePrepareMsg msg;
  msg.view = dec.GetU64();
  msg.seq = dec.GetU64();
  msg.digest = Digest::DecodeFrom(dec);
  msg.sig = Signature::DecodeFrom(dec);
  msg.batch = dec.GetBytes();
  if (!dec.ok()) return dec.status();
  msg.batch_offset = FieldOffset(dec, msg.batch);
  return msg;
}

void PbftVoteBody::EncodeTo(Encoder& enc) const {
  enc.PutU64(view);
  enc.PutU64(seq);
  digest.EncodeTo(enc);
  enc.PutU32(static_cast<uint32_t>(voter));
  sig.EncodeTo(enc);
}

Result<PbftPrepareMsg> PbftPrepareMsg::DecodeFrom(Decoder& dec) {
  return DecodePbftVote<PbftPrepareMsg>(dec);
}

Result<PbftCommitMsg> PbftCommitMsg::DecodeFrom(Decoder& dec) {
  return DecodePbftVote<PbftCommitMsg>(dec);
}

Bytes PbftViewChangeMsg::Build(uint64_t new_view, uint64_t stable_seq,
                               const CheckpointCert& cert,
                               const std::vector<PreparedProof>& proofs,
                               const Signer& signer) {
  Encoder enc;
  enc.PutU8(kTag);
  enc.PutU64(new_view);
  enc.PutU64(stable_seq);
  cert.EncodeTo(enc);
  enc.PutVarint(proofs.size());
  for (const PreparedProof& proof : proofs) proof.EncodeTo(enc);
  enc.PutU32(static_cast<uint32_t>(signer.id()));
  const Signature sig = signer.Sign(enc.bytes());
  sig.EncodeTo(enc);
  return enc.Take();
}

Result<PbftViewChangeMsg> PbftViewChangeMsg::DecodeFrom(const Bytes& raw,
                                                        uint64_t max_proofs) {
  Decoder dec(raw);
  if (dec.GetU8() != kTag || !dec.ok()) {
    return Status::Corruption("not a PBFT view-change");
  }
  PbftViewChangeMsg msg;
  msg.new_view = dec.GetU64();
  msg.stable_seq = dec.GetU64();
  SEEMORE_ASSIGN_OR_RETURN(msg.cert, CheckpointCert::DecodeFrom(dec));
  const uint64_t proof_count = dec.GetVarint();
  if (!dec.ok() || proof_count > max_proofs) {
    return Status::Corruption("too many proofs");
  }
  msg.proofs.reserve(proof_count);
  for (uint64_t i = 0; i < proof_count; ++i) {
    SEEMORE_ASSIGN_OR_RETURN(PreparedProof proof,
                             PreparedProof::DecodeFrom(dec));
    msg.proofs.push_back(std::move(proof));
  }
  msg.sender = static_cast<PrincipalId>(dec.GetU32());
  if (!dec.ok()) return dec.status();
  msg.signed_len = raw.size() - dec.remaining();
  msg.sig = Signature::DecodeFrom(dec);
  SEEMORE_RETURN_IF_ERROR(dec.Finish());
  return msg;
}

uint64_t PbftViewChangeMsg::PeekNewView(const Bytes& raw) {
  Decoder dec(raw);
  if (dec.GetU8() != kTag) return 0;
  const uint64_t new_view = dec.GetU64();
  return dec.ok() ? new_view : 0;
}

void PbftNewViewEntry::EncodeTo(Encoder& enc) const {
  enc.PutU64(seq);
  digest.EncodeTo(enc);
  sig.EncodeTo(enc);
}

Result<PbftNewViewEntry> PbftNewViewEntry::DecodeFrom(Decoder& dec) {
  PbftNewViewEntry entry;
  entry.seq = dec.GetU64();
  entry.digest = Digest::DecodeFrom(dec);
  entry.sig = Signature::DecodeFrom(dec);
  if (!dec.ok()) return dec.status();
  return entry;
}

void PbftNewViewMsg::EncodeTo(Encoder& enc) const {
  // A NEW-VIEW carries a whole view-change quorum verbatim; reserve for it
  // in one step.
  size_t total = 8 + VarintSize(view_changes.size()) +
                 VarintSize(entries.size()) +
                 entries.size() * (8 + Digest::kSize + Signature::kSize);
  for (const Bytes& raw : view_changes) {
    total += VarintSize(raw.size()) + raw.size();
  }
  enc.Reserve(total);
  enc.PutU64(new_view);
  enc.PutVarint(view_changes.size());
  for (const Bytes& raw : view_changes) enc.PutBytes(raw);
  enc.PutVarint(entries.size());
  for (const PbftNewViewEntry& entry : entries) entry.EncodeTo(enc);
}

Result<PbftNewViewMsg> PbftNewViewMsg::DecodeFrom(Decoder& dec,
                                                  uint64_t max_vcs,
                                                  uint64_t max_entries) {
  PbftNewViewMsg msg;
  msg.new_view = dec.GetU64();
  const uint64_t vc_count = dec.GetVarint();
  if (!dec.ok() || vc_count > max_vcs) {
    return Status::Corruption("bad view-change count");
  }
  msg.view_changes.reserve(vc_count);
  for (uint64_t i = 0; i < vc_count; ++i) {
    msg.view_changes.push_back(dec.GetBytes());
    if (!dec.ok()) return dec.status();
  }
  const uint64_t entry_count = dec.GetVarint();
  if (!dec.ok() || entry_count > max_entries) {
    return Status::Corruption("bad new-view entry count");
  }
  msg.entries.reserve(entry_count);
  for (uint64_t i = 0; i < entry_count; ++i) {
    SEEMORE_ASSIGN_OR_RETURN(PbftNewViewEntry entry,
                             PbftNewViewEntry::DecodeFrom(dec));
    msg.entries.push_back(std::move(entry));
  }
  return msg;
}

// ---------------------------------------------------------------------------
// Paxos
// ---------------------------------------------------------------------------

void PaxosAcceptMsg::EncodeTo(Encoder& enc) const {
  enc.Reserve(8 + 8 + VarintSize(batch.size()) + batch.size());
  enc.PutU64(view);
  enc.PutU64(seq);
  enc.PutBytes(batch);
}

Result<PaxosAcceptMsg> PaxosAcceptMsg::DecodeFrom(Decoder& dec) {
  PaxosAcceptMsg msg;
  msg.view = dec.GetU64();
  msg.seq = dec.GetU64();
  msg.batch = dec.GetBytes();
  if (!dec.ok()) return dec.status();
  msg.batch_offset = FieldOffset(dec, msg.batch);
  return msg;
}

void PaxosAckMsg::EncodeTo(Encoder& enc) const {
  enc.PutU64(view);
  enc.PutU64(seq);
  digest.EncodeTo(enc);
}

Result<PaxosAckMsg> PaxosAckMsg::DecodeFrom(Decoder& dec) {
  PaxosAckMsg msg;
  msg.view = dec.GetU64();
  msg.seq = dec.GetU64();
  msg.digest = Digest::DecodeFrom(dec);
  if (!dec.ok()) return dec.status();
  return msg;
}

void PaxosCommitMsg::EncodeTo(Encoder& enc) const {
  enc.PutU64(view);
  enc.PutU64(seq);
  digest.EncodeTo(enc);
}

Result<PaxosCommitMsg> PaxosCommitMsg::DecodeFrom(Decoder& dec) {
  PaxosCommitMsg msg;
  msg.view = dec.GetU64();
  msg.seq = dec.GetU64();
  msg.digest = Digest::DecodeFrom(dec);
  if (!dec.ok()) return dec.status();
  return msg;
}

void PaxosCheckpointMsg::EncodeTo(Encoder& enc) const {
  enc.PutU64(seq);
  digest.EncodeTo(enc);
}

Result<PaxosCheckpointMsg> PaxosCheckpointMsg::DecodeFrom(Decoder& dec) {
  PaxosCheckpointMsg msg;
  msg.seq = dec.GetU64();
  msg.digest = Digest::DecodeFrom(dec);
  if (!dec.ok()) return dec.status();
  return msg;
}

void PaxosVcEntry::EncodeTo(Encoder& enc) const {
  const size_t batch_size = batch.EncodedSize();
  enc.Reserve(8 + 8 + VarintSize(batch_size) + batch_size);
  enc.PutU64(seq);
  enc.PutU64(view);
  enc.PutVarint(batch_size);
  batch.EncodeTo(enc);
}

void PaxosViewChangeMsg::EncodeTo(Encoder& enc) const {
  enc.PutU64(new_view);
  enc.PutU64(stable_seq);
  enc.PutVarint(entries.size());
  for (const PaxosVcEntry& entry : entries) entry.EncodeTo(enc);
}

Result<PaxosViewChangeMsg> PaxosViewChangeMsg::DecodeFrom(Decoder& dec,
                                                          uint64_t window) {
  PaxosViewChangeMsg msg;
  msg.new_view = dec.GetU64();
  msg.stable_seq = dec.GetU64();
  const uint64_t count = dec.GetVarint();
  if (!dec.ok() || count > window + 1) {
    return Status::Corruption("bad view-change entry count");
  }
  msg.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PaxosVcEntry entry;
    entry.seq = dec.GetU64();
    entry.view = dec.GetU64();
    Bytes batch_bytes = dec.GetBytes();
    if (!dec.ok()) return dec.status();
    if (entry.seq <= msg.stable_seq || entry.seq > msg.stable_seq + window) {
      return Status::Corruption("view-change entry outside sanity window");
    }
    SEEMORE_ASSIGN_OR_RETURN(entry.batch, Batch::Decode(batch_bytes));
    msg.entries.push_back(std::move(entry));
  }
  return msg;
}

void PaxosNewViewEntry::EncodeTo(Encoder& enc) const {
  enc.Reserve(8 + VarintSize(batch.size()) + batch.size());
  enc.PutU64(seq);
  enc.PutBytes(batch);
}

Result<PaxosNewViewEntry> PaxosNewViewEntry::DecodeFrom(Decoder& dec) {
  PaxosNewViewEntry entry;
  entry.seq = dec.GetU64();
  entry.batch = dec.GetBytes();
  if (!dec.ok()) return dec.status();
  entry.batch_offset = FieldOffset(dec, entry.batch);
  return entry;
}

void PaxosNewViewMsg::EncodeTo(Encoder& enc) const {
  enc.PutU64(new_view);
  enc.PutU64(stable_seq);
  enc.PutVarint(entries.size());
  for (const PaxosNewViewEntry& entry : entries) entry.EncodeTo(enc);
}

Result<PaxosNewViewMsg> PaxosNewViewMsg::DecodeFrom(Decoder& dec,
                                                    uint64_t max_entries) {
  PaxosNewViewMsg msg;
  msg.new_view = dec.GetU64();
  msg.stable_seq = dec.GetU64();
  const uint64_t count = dec.GetVarint();
  if (!dec.ok() || count > max_entries) {
    return Status::Corruption("bad new-view entry count");
  }
  msg.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SEEMORE_ASSIGN_OR_RETURN(PaxosNewViewEntry entry,
                             PaxosNewViewEntry::DecodeFrom(dec));
    msg.entries.push_back(std::move(entry));
  }
  return msg;
}

void PaxosStateResponseMsg::EncodeTo(Encoder& enc) const {
  enc.Reserve(8 + Digest::kSize + VarintSize(snapshot.size()) +
              snapshot.size());
  enc.PutU64(seq);
  digest.EncodeTo(enc);
  enc.PutBytes(snapshot);
}

Result<PaxosStateResponseMsg> PaxosStateResponseMsg::DecodeFrom(Decoder& dec) {
  PaxosStateResponseMsg msg;
  msg.seq = dec.GetU64();
  msg.digest = Digest::DecodeFrom(dec);
  msg.snapshot = dec.GetBytes();
  if (!dec.ok()) return dec.status();
  return msg;
}

}  // namespace seemore
