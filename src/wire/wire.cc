#include "wire/wire.h"

namespace seemore {

void Encoder::PutU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void Encoder::PutBytes(const uint8_t* data, size_t len) {
  PutVarint(len);
  buf_.insert(buf_.end(), data, data + len);
}

bool Decoder::Require(size_t n) {
  if (!status_.ok()) return false;
  if (len_ - pos_ < n) {
    Fail("truncated input");
    return false;
  }
  return true;
}

void Decoder::Fail(const char* what) {
  if (status_.ok()) status_ = Status::Corruption(what);
}

uint8_t Decoder::GetU8() {
  if (!Require(1)) return 0;
  return data_[pos_++];
}

uint16_t Decoder::GetU16() {
  if (!Require(2)) return 0;
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

uint32_t Decoder::GetU32() {
  if (!Require(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

uint64_t Decoder::GetU64() {
  if (!Require(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

uint64_t Decoder::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (!Require(1)) return 0;
    uint8_t byte = data_[pos_++];
    if (shift == 63 && (byte & 0xfe) != 0) {
      Fail("varint overflow");
      return 0;
    }
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) {
      Fail("varint too long");
      return 0;
    }
  }
}

Bytes Decoder::GetBytes() {
  uint64_t len = GetVarint();
  if (!status_.ok()) return {};
  if (len > remaining()) {
    Fail("bytes length exceeds input");
    return {};
  }
  Bytes out(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return out;
}

std::string Decoder::GetString() {
  Bytes b = GetBytes();
  return std::string(b.begin(), b.end());
}

Bytes Decoder::GetRaw(size_t len) {
  if (!Require(len)) return {};
  Bytes out(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return out;
}

bool Decoder::GetRawInto(uint8_t* out, size_t len) {
  if (!Require(len)) return false;
  std::memcpy(out, data_ + pos_, len);
  pos_ += len;
  return true;
}

Status Decoder::Finish() {
  if (!status_.ok()) return status_;
  if (pos_ != len_) {
    status_ = Status::Corruption("trailing bytes after message");
  }
  return status_;
}

}  // namespace seemore
