// Refcounted immutable message payload.
//
// A Payload wraps an encoded frame in shared, write-protected storage so a
// multicast of one message to n receivers costs one encode and one
// allocation: every copy of the Payload (per-receiver delivery closures,
// CPU-queue entries, duplicated deliveries) is a refcount bump, never a byte
// copy. Immutability is what makes the sharing safe — a Byzantine receiver
// that wants to mutate "its" message must copy the bytes out first
// (ToBytes), so it can never corrupt the other receivers' view of the frame
// (tests/payload_test.cc pins this down).
//
// A Payload either owns its bytes outright or is a *view* into a shared
// immutable block (Payload::View): the rt receive path parses frames in
// place inside pooled read blocks and hands each body to the handler as a
// view, so a received message costs zero copies. The aliased range
// [offset, offset+len) is never mutated for the life of the block; bytes
// of the block outside the view's range carry no such promise.
//
// Every distinct buffer gets a process-unique id; (id, offset, length)
// names an immutable byte range for the lifetime of the process, which is
// what lets the digest/verify memo (crypto/memo.h) skip recomputing real
// SHA-256/HMAC work that another receiver of the same frame already paid
// for. Id 0 is reserved for the empty payload and means "not memoizable".

#ifndef SEEMORE_WIRE_PAYLOAD_H_
#define SEEMORE_WIRE_PAYLOAD_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "wire/wire.h"

namespace seemore {

class Payload {
 public:
  Payload() = default;

  /// Wraps `bytes` into shared immutable storage (the one allocation a
  /// send/multicast pays). Implicit so existing `Send(..., encoder.Take())`
  /// call sites keep reading naturally.
  Payload(Bytes bytes);  // NOLINT(google-explicit-constructor)

  /// A payload aliasing [offset, offset+len) of a shared immutable block —
  /// the block stays alive (and that range stays unmodified) for as long
  /// as any view of it does. Gets its own fresh buffer id: views into the
  /// same block are distinct identities, because the surrounding block
  /// bytes differ even when the ranges happen to coincide.
  static Payload View(std::shared_ptr<const Bytes> block, size_t offset,
                      size_t len);

  /// The underlying bytes (nullptr/0 for a default Payload).
  const uint8_t* data() const { return rep_ ? rep_->data : nullptr; }
  size_t size() const { return rep_ ? rep_->size : 0; }
  bool empty() const { return size() == 0; }

  /// An owned, mutable copy of the bytes — the only mutable view a
  /// receiver can ever get.
  Bytes ToBytes() const { return Bytes(data(), data() + size()); }

  /// Process-unique identity of the underlying buffer; equal ids imply
  /// identical bytes forever. 0 for the empty payload.
  uint64_t id() const { return rep_ ? rep_->id : 0; }

  /// True if both payloads share one storage rep (not a content
  /// comparison).
  bool SharesBufferWith(const Payload& other) const {
    return rep_ != nullptr && rep_ == other.rep_;
  }

 private:
  struct Rep {
    explicit Rep(Bytes b);
    Rep(std::shared_ptr<const Bytes> block_in, size_t offset, size_t len);
    const Bytes storage;  // owned bytes (empty for views)
    const std::shared_ptr<const Bytes> block;  // view backing (null if owned)
    const uint8_t* const data;
    const size_t size;
    const uint64_t id;
  };

  explicit Payload(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

  std::shared_ptr<const Rep> rep_;
};

/// Decoder over a payload, carrying the buffer identity (and, when the
/// caller runs inside a cluster, the run's CryptoMemo) so decode-time
/// digest checks (e.g. view-change entries) can reuse another receiver's
/// work. With `memo` null the checks compute for real — same answer, same
/// simulated cost, just no host-CPU sharing.
inline Decoder MakeDecoder(const Payload& payload, CryptoMemo* memo = nullptr) {
  return Decoder(payload.data(), payload.size(), payload.id(), memo);
}

}  // namespace seemore

#endif  // SEEMORE_WIRE_PAYLOAD_H_
