#include "wire/payload.h"

#include <atomic>

namespace seemore {

namespace {
std::atomic<uint64_t> g_next_payload_id{1};

uint64_t NextPayloadId() {
  return g_next_payload_id.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

Payload::Rep::Rep(Bytes b)
    : storage(std::move(b)),
      block(nullptr),
      data(storage.data()),
      size(storage.size()),
      id(NextPayloadId()) {}

Payload::Rep::Rep(std::shared_ptr<const Bytes> block_in, size_t offset,
                  size_t len)
    : storage(),
      block(std::move(block_in)),
      data(block->data() + offset),
      size(len),
      id(NextPayloadId()) {}

Payload::Payload(Bytes bytes)
    : rep_(std::make_shared<const Rep>(std::move(bytes))) {}

Payload Payload::View(std::shared_ptr<const Bytes> block, size_t offset,
                      size_t len) {
  return Payload(std::make_shared<const Rep>(std::move(block), offset, len));
}

}  // namespace seemore
