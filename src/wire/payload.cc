#include "wire/payload.h"

#include <atomic>

namespace seemore {

namespace {
std::atomic<uint64_t> g_next_payload_id{1};
}  // namespace

Payload::Rep::Rep(Bytes b)
    : bytes(std::move(b)),
      id(g_next_payload_id.fetch_add(1, std::memory_order_relaxed)) {}

Payload::Payload(Bytes bytes)
    : rep_(std::make_shared<const Rep>(std::move(bytes))) {}

const Bytes& Payload::EmptyBytes() {
  static const Bytes* empty = new Bytes();
  return *empty;
}

}  // namespace seemore
