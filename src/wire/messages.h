// Typed wire messages for every protocol in the repository.
//
// One struct per protocol message, with centralized Encode/Decode and (for
// signed messages) signature-domain helpers. Replicas never hand-parse a
// Decoder: HandleMessage reads the tag byte and routes the body through
// DispatchTyped / the per-message DecodeFrom, so well-formedness is checked
// once, here, instead of ad hoc in every handler.
//
// Framing: the first byte of every network message is a tag. Tags 1/2 are
// the shared REQUEST/REPLY (smr/command.h); protocol-internal messages use
// tags >= 10, scoped per protocol (clusters are homogeneous, so the spaces
// may overlap).
//
// Decode rules: decoders are bounds-checked and sticky (wire/wire.h); every
// DecodeFrom returns Corruption on truncated or malformed input. Messages
// whose size is attacker-controlled (view changes, new views) take explicit
// entry-count bounds so a Byzantine sender cannot force huge allocations.

#ifndef SEEMORE_WIRE_MESSAGES_H_
#define SEEMORE_WIRE_MESSAGES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "consensus/batch.h"
#include "consensus/checkpoint.h"
#include "consensus/config.h"
#include "consensus/proofs.h"
#include "crypto/digest.h"
#include "crypto/keystore.h"
#include "util/status.h"
#include "wire/wire.h"

namespace seemore {

// ---------------------------------------------------------------------------
// Tags
// ---------------------------------------------------------------------------

/// SeeMoRe protocol tags (§5).
enum SeeMoReMsgType : uint8_t {
  kSmPrepare = 10,        // Lion/Dog proposal; Peacock pre-prepare
  kSmAcceptPlain = 11,    // Lion accept (unsigned, replica -> primary)
  kSmAcceptSigned = 12,   // Dog accept / Peacock prepare echo (proxy n-to-n)
  kSmCommitPrimary = 13,  // Lion commit (signed by primary, carries batch)
  kSmCommitVote = 14,     // Dog/Peacock commit vote (proxy n-to-n)
  kSmInform = 15,         // proxies -> passive nodes
  kSmCheckpoint = 16,
  kSmViewChange = 17,
  kSmNewView = 18,
  kSmModeChange = 19,
  kSmStateRequest = 20,
  kSmStateResponse = 21,
  kSmNewViewRequest = 22,  // laggard -> any replica: relay the NEW-VIEW
};

/// PBFT / S-UpRight tags (Castro & Liskov message flow).
enum PbftMsgType : uint8_t {
  kPbftPrePrepare = 10,
  kPbftPrepare = 11,
  kPbftCommit = 12,
  kPbftCheckpoint = 13,
  kPbftViewChange = 14,
  kPbftNewView = 15,
  kPbftStateRequest = 16,
  kPbftStateResponse = 17,
};

/// Paxos / VR (crash model) tags.
enum PaxosMsgType : uint8_t {
  kPaxAccept = 10,
  kPaxAck = 11,
  kPaxCommit = 12,
  kPaxViewChange = 13,
  kPaxNewView = 14,
  kPaxCheckpoint = 15,
  kPaxStateRequest = 16,
  kPaxStateResponse = 17,
};

// ---------------------------------------------------------------------------
// Framing and dispatch helpers
// ---------------------------------------------------------------------------

/// Frame a typed message body under `tag` (tag byte + encoded body).
template <typename M>
Bytes FrameMessage(uint8_t tag, const M& body) {
  Encoder enc;
  enc.PutU8(tag);
  body.EncodeTo(enc);
  return enc.Take();
}

/// The single decode-and-dispatch helper behind every replica's
/// HandleMessage switch: decodes M's body from `dec` (tag already consumed)
/// and invokes `handler` on success. Malformed bodies are dropped — a
/// Byzantine peer may send arbitrary bytes and must never crash a replica.
template <typename M, typename R>
void DispatchTyped(R* replica, PrincipalId from, Decoder& dec,
                   void (R::*handler)(PrincipalId, M)) {
  Result<M> msg = M::DecodeFrom(dec);
  if (!msg.ok()) return;
  (replica->*handler)(from, std::move(msg).value());
}

// ---------------------------------------------------------------------------
// SeeMoRe messages (§5.1-§5.4)
// ---------------------------------------------------------------------------

/// <PREPARE, π, v, n, d, σp, µ>: Lion/Dog proposal, Peacock pre-prepare.
/// `batch` stays raw: d is the digest over exactly these bytes, and the
/// receiver charges the hash before checking.
struct SmPrepareMsg {
  static constexpr uint8_t kTag = kSmPrepare;

  uint8_t mode = 0;
  uint64_t view = 0;
  uint64_t seq = 0;
  Digest digest;
  Signature sig;  // proposer's signature over Header()
  Bytes batch;    // encoded Batch
  /// Offset of `batch` within the decoded frame (set by DecodeFrom; not
  /// encoded). Keys the per-process digest memo on the frame's identity.
  size_t batch_offset = 0;

  void EncodeTo(Encoder& enc) const;
  static Result<SmPrepareMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }

  Bytes Header() const {
    return ProposalHeader(kDomainPrePrepare, mode, view, seq, digest);
  }
  bool VerifySignature(const KeyStore& keystore, PrincipalId signer) const {
    return keystore.Verify(signer, Header(), sig);
  }
};

/// <ACCEPT, π, v, n, d, r>: Lion's unsigned accept (flows only to the
/// trusted primary, §5.1 — the paper's headline saving over PBFT).
struct SmAcceptPlainMsg {
  static constexpr uint8_t kTag = kSmAcceptPlain;

  uint8_t mode = 0;
  uint64_t view = 0;
  uint64_t seq = 0;
  Digest digest;
  PrincipalId voter = 0;

  void EncodeTo(Encoder& enc) const;
  static Result<SmAcceptPlainMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }
};

/// Shape shared by the three signed SeeMoRe votes:
/// <tag, π, v, n, d, i, σi> with a per-type signature domain.
struct SmSignedVoteBody {
  uint8_t mode = 0;
  uint64_t view = 0;
  uint64_t seq = 0;
  Digest digest;
  PrincipalId voter = 0;
  Signature sig;

  void EncodeTo(Encoder& enc) const;

  Bytes Header(SigDomain domain) const {
    return VoteHeader(domain, mode, view, seq, digest, voter);
  }
  bool VerifyAs(SigDomain domain, const KeyStore& keystore) const {
    return keystore.Verify(voter, Header(domain), sig);
  }
};

/// Dog signed accept / Peacock prepare echo (kDomainPrepare).
struct SmAcceptSignedMsg : SmSignedVoteBody {
  static constexpr uint8_t kTag = kSmAcceptSigned;
  static constexpr SigDomain kDomain = kDomainPrepare;

  static Result<SmAcceptSignedMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }
  bool Verify(const KeyStore& keystore) const {
    return VerifyAs(kDomain, keystore);
  }
};

/// Dog/Peacock commit vote (kDomainCommit).
struct SmCommitVoteMsg : SmSignedVoteBody {
  static constexpr uint8_t kTag = kSmCommitVote;
  static constexpr SigDomain kDomain = kDomainCommit;

  static Result<SmCommitVoteMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }
  bool Verify(const KeyStore& keystore) const {
    return VerifyAs(kDomain, keystore);
  }
};

/// Proxy -> passive node INFORM (kDomainInform).
struct SmInformMsg : SmSignedVoteBody {
  static constexpr uint8_t kTag = kSmInform;
  static constexpr SigDomain kDomain = kDomainInform;

  static Result<SmInformMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }
  bool Verify(const KeyStore& keystore) const {
    return VerifyAs(kDomain, keystore);
  }
};

/// <<COMMIT, π, v, n, d>_σp, µ>: Lion's primary-signed commit (§5.1).
struct SmCommitPrimaryMsg {
  static constexpr uint8_t kTag = kSmCommitPrimary;

  uint8_t mode = 0;
  uint64_t view = 0;
  uint64_t seq = 0;
  Digest digest;
  Signature sig;
  Bytes batch;  // encoded Batch (carried so laggards can commit directly)
  size_t batch_offset = 0;  // see SmPrepareMsg::batch_offset

  void EncodeTo(Encoder& enc) const;
  static Result<SmCommitPrimaryMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }

  Bytes Header() const {
    return ProposalHeader(kDomainCommit, mode, view, seq, digest);
  }
  bool VerifySignature(const KeyStore& keystore, PrincipalId signer) const {
    return keystore.Verify(signer, Header(), sig);
  }
};

/// One re-proposable entry carried in a SeeMoRe view-change message.
/// Decode verifies the digest against the embedded batch bytes and decodes
/// the batch (structural well-formedness); signature validity is semantic
/// and stays with the replica.
struct SmVcEntry {
  SeeMoReMode mode = SeeMoReMode::kLion;  // signature domain of `sig`
  uint64_t view = 0;
  uint64_t seq = 0;
  Digest digest;
  Batch batch;
  Signature sig;  // primary's prepare sig (P set) or commit sig (C set)

  void EncodeTo(Encoder& enc) const;
  /// Exact size EncodeTo appends (Encoder::Reserve hints).
  size_t EncodedSize() const;
  static Result<SmVcEntry> DecodeFrom(Decoder& dec);
};

/// <VIEW-CHANGE, π, v', n_stable, ξ, P, C, proofs, i> (§5.1-§5.3).
struct SmViewChangeMsg {
  static constexpr uint8_t kTag = kSmViewChange;

  uint8_t mode = 0;  // mode the sender is currently running
  uint64_t new_view = 0;
  uint64_t stable_seq = 0;
  CheckpointCert cert;
  std::vector<SmVcEntry> prepares;      // Lion/Dog P set
  std::vector<SmVcEntry> commits;       // Lion C set
  std::vector<PreparedProof> proofs;    // Peacock prepared certificates
  PrincipalId sender = 0;

  void EncodeTo(Encoder& enc) const;
  /// `max_entries` bounds each of the three sets (the receiver's window);
  /// requires the input to be fully consumed.
  static Result<SmViewChangeMsg> DecodeFrom(Decoder& dec,
                                            uint64_t max_entries);
  /// Cheap peek at the target view of a body decoder positioned after the
  /// tag (0 on malformed input), so receivers can drop stale frames before
  /// paying the full structural decode. Takes a copy; `dec` is untouched.
  static uint64_t PeekNewView(Decoder dec);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }
};

/// One re-proposed entry in a NEW-VIEW (signed by the new-view authority).
struct SmNewViewEntry {
  uint64_t view = 0;  // must equal the enclosing message's new_view
  uint64_t seq = 0;
  Digest digest;
  Bytes batch;  // raw: the receiver charges + checks the digest itself
  size_t batch_offset = 0;  // see SmPrepareMsg::batch_offset
  Signature sig;

  void EncodeTo(Encoder& enc) const;
  /// Exact size EncodeTo appends (Encoder::Reserve hints).
  size_t EncodedSize() const;
  static Result<SmNewViewEntry> DecodeFrom(Decoder& dec);
};

/// <NEW-VIEW, π, v', l, σ, C', P'> (§5.1 step 4; C' only under Lion).
struct SmNewViewMsg {
  static constexpr uint8_t kTag = kSmNewView;

  uint8_t mode = 0;  // target mode of the new view
  uint64_t new_view = 0;
  uint64_t low = 0;  // l: latest stable checkpoint across the quorum
  Signature header_sig;
  std::vector<SmNewViewEntry> commits;
  std::vector<SmNewViewEntry> prepares;

  void EncodeTo(Encoder& enc) const;
  static Result<SmNewViewMsg> DecodeFrom(Decoder& dec, uint64_t max_entries);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }

  /// Binds the full C'/P' entry sets (set sizes and each entry's view, seq,
  /// digest — batches are in turn bound by their digests) so one header
  /// signature covers the whole frame. NEW-VIEW may be relayed by untrusted
  /// peers, so a frame whose entry sets were pruned or reordered by the
  /// relayer must not verify.
  Digest EntrySetDigest() const;

  Bytes Header() const {
    return ProposalHeader(kDomainNewView, mode, new_view, low,
                          EntrySetDigest());
  }
  bool VerifySignature(const KeyStore& keystore, PrincipalId signer) const {
    return keystore.Verify(signer, Header(), header_sig);
  }
};

/// <MODE-CHANGE, π', v+1, i, σi> (§5.4), signed by a trusted replica.
struct SmModeChangeMsg {
  static constexpr uint8_t kTag = kSmModeChange;

  uint8_t mode = 0;  // requested new mode π'
  uint64_t new_view = 0;
  PrincipalId sender = 0;
  Signature sig;

  void EncodeTo(Encoder& enc) const;
  static Result<SmModeChangeMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }

  Bytes Header() const {
    return ProposalHeader(kDomainModeChange, mode, new_view, 0, Digest());
  }
  bool VerifySignature(const KeyStore& keystore) const {
    return keystore.Verify(sender, Header(), sig);
  }
};

// ---------------------------------------------------------------------------
// State transfer (shared by SeeMoRe and PBFT/S-UpRight; Paxos has its own
// certificate-free response)
// ---------------------------------------------------------------------------

/// <STATE-REQUEST, last_executed>. Tag differs per protocol.
struct StateRequestMsg {
  uint64_t last_executed = 0;

  void EncodeTo(Encoder& enc) const;
  static Result<StateRequestMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage(uint8_t tag) const { return FrameMessage(tag, *this); }
};

/// <STATE-RESPONSE, ξ, snapshot>: a checkpoint certificate plus the state.
struct StateResponseMsg {
  CheckpointCert cert;
  Bytes snapshot;

  void EncodeTo(Encoder& enc) const;
  static Result<StateResponseMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage(uint8_t tag) const { return FrameMessage(tag, *this); }
};

/// <NEW-VIEW-REQUEST, v>: "my current view is v — if yours is higher, relay
/// the NEW-VIEW that activated it." Sent by a replica that sees protocol
/// traffic for a view above its own that it cannot self-certify (a recovered
/// Peacock replica that slept through a view change: the untrusted primary's
/// prepares prove nothing, and the transferer's NEW-VIEW was delivered while
/// it was down). Unsigned: it only solicits a relay of a message that is
/// itself signed by the trusted authority, so a forged request can at worst
/// cost the responder one send.
struct NewViewRequestMsg {
  static constexpr uint8_t kTag = kSmNewViewRequest;

  uint64_t view = 0;

  void EncodeTo(Encoder& enc) const;
  static Result<NewViewRequestMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }
};

// ---------------------------------------------------------------------------
// PBFT / S-UpRight messages
// ---------------------------------------------------------------------------

/// <PRE-PREPARE, v, n, d, σp, µ>.
struct PbftPrePrepareMsg {
  static constexpr uint8_t kTag = kPbftPrePrepare;

  uint64_t view = 0;
  uint64_t seq = 0;
  Digest digest;
  Signature sig;
  Bytes batch;  // encoded Batch
  size_t batch_offset = 0;  // see SmPrepareMsg::batch_offset

  void EncodeTo(Encoder& enc) const;
  static Result<PbftPrePrepareMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }

  Bytes Header() const {
    return ProposalHeader(kDomainPrePrepare, 0, view, seq, digest);
  }
  bool VerifySignature(const KeyStore& keystore, PrincipalId signer) const {
    return keystore.Verify(signer, Header(), sig);
  }
};

/// Vote shape shared by PBFT PREPARE and COMMIT: <tag, v, n, d, i, σi>.
struct PbftVoteBody {
  uint64_t view = 0;
  uint64_t seq = 0;
  Digest digest;
  PrincipalId voter = 0;
  Signature sig;

  void EncodeTo(Encoder& enc) const;

  Bytes Header(SigDomain domain) const {
    return VoteHeader(domain, 0, view, seq, digest, voter);
  }
  bool VerifyAs(SigDomain domain, const KeyStore& keystore) const {
    return keystore.Verify(voter, Header(domain), sig);
  }
};

struct PbftPrepareMsg : PbftVoteBody {
  static constexpr uint8_t kTag = kPbftPrepare;
  static constexpr SigDomain kDomain = kDomainPrepare;

  static Result<PbftPrepareMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }
  bool Verify(const KeyStore& keystore) const {
    return VerifyAs(kDomain, keystore);
  }
};

struct PbftCommitMsg : PbftVoteBody {
  static constexpr uint8_t kTag = kPbftCommit;
  static constexpr SigDomain kDomain = kDomainCommit;

  static Result<PbftCommitMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }
  bool Verify(const KeyStore& keystore) const {
    return VerifyAs(kDomain, keystore);
  }
};

/// <VIEW-CHANGE, v', n_stable, ξ, proofs, i>_σi. The signature covers the
/// whole frame prefix (tag included), so decoding records `signed_len`.
struct PbftViewChangeMsg {
  static constexpr uint8_t kTag = kPbftViewChange;

  uint64_t new_view = 0;
  uint64_t stable_seq = 0;
  CheckpointCert cert;
  std::vector<PreparedProof> proofs;
  PrincipalId sender = 0;
  Signature sig;
  /// Length of the raw-frame prefix covered by `sig` (set by DecodeFrom).
  size_t signed_len = 0;

  /// Build and sign a complete frame (the only way to produce one, so the
  /// body-prefix signature can never be assembled inconsistently).
  static Bytes Build(uint64_t new_view, uint64_t stable_seq,
                     const CheckpointCert& cert,
                     const std::vector<PreparedProof>& proofs,
                     const Signer& signer);

  /// Decodes a whole frame (including the tag byte) and requires it to be
  /// fully consumed. `max_proofs` bounds the proof set.
  static Result<PbftViewChangeMsg> DecodeFrom(const Bytes& raw,
                                              uint64_t max_proofs);

  /// Cheap peek at the target view of a raw frame (0 on malformed input),
  /// so receivers can skip stale view-changes before paying validation.
  static uint64_t PeekNewView(const Bytes& raw);
  bool VerifySignature(const KeyStore& keystore, const Bytes& raw) const {
    return signed_len <= raw.size() &&
           keystore.Verify(sender, raw.data(), signed_len, sig);
  }
};

/// One re-proposed (seq, digest) pair signed by the new primary.
struct PbftNewViewEntry {
  uint64_t seq = 0;
  Digest digest;
  Signature sig;

  void EncodeTo(Encoder& enc) const;
  static Result<PbftNewViewEntry> DecodeFrom(Decoder& dec);
};

/// <NEW-VIEW, v', V, O>: the view-change quorum V travels as the raw signed
/// VIEW-CHANGE frames (re-validated by every backup), O as signed entries.
struct PbftNewViewMsg {
  static constexpr uint8_t kTag = kPbftNewView;

  uint64_t new_view = 0;
  std::vector<Bytes> view_changes;  // raw PbftViewChangeMsg frames
  std::vector<PbftNewViewEntry> entries;

  void EncodeTo(Encoder& enc) const;
  static Result<PbftNewViewMsg> DecodeFrom(Decoder& dec, uint64_t max_vcs,
                                           uint64_t max_entries);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }
};

// ---------------------------------------------------------------------------
// Paxos (crash model: channel-authenticated, no signatures)
// ---------------------------------------------------------------------------

/// <ACCEPT, v, n, µ>.
struct PaxosAcceptMsg {
  static constexpr uint8_t kTag = kPaxAccept;

  uint64_t view = 0;
  uint64_t seq = 0;
  Bytes batch;  // encoded Batch
  size_t batch_offset = 0;  // see SmPrepareMsg::batch_offset

  void EncodeTo(Encoder& enc) const;
  static Result<PaxosAcceptMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }
};

/// <ACK, v, n, d> (replica -> leader).
struct PaxosAckMsg {
  static constexpr uint8_t kTag = kPaxAck;

  uint64_t view = 0;
  uint64_t seq = 0;
  Digest digest;

  void EncodeTo(Encoder& enc) const;
  static Result<PaxosAckMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }
};

/// <COMMIT, v, n, d> (leader -> all).
struct PaxosCommitMsg {
  static constexpr uint8_t kTag = kPaxCommit;

  uint64_t view = 0;
  uint64_t seq = 0;
  Digest digest;

  void EncodeTo(Encoder& enc) const;
  static Result<PaxosCommitMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }
};

/// <CHECKPOINT, n, d> (crash model: no signature).
struct PaxosCheckpointMsg {
  static constexpr uint8_t kTag = kPaxCheckpoint;

  uint64_t seq = 0;
  Digest digest;

  void EncodeTo(Encoder& enc) const;
  static Result<PaxosCheckpointMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }
};

/// One accepted entry reported in a Paxos VIEW-CHANGE.
struct PaxosVcEntry {
  uint64_t seq = 0;
  uint64_t view = 0;  // view the batch was accepted in
  Batch batch;

  void EncodeTo(Encoder& enc) const;
};

/// <VIEW-CHANGE, v', n_stable, entries>. Decode enforces the sanity window:
/// no honest replica holds entries at or below its stable point nor more
/// than `window` above it.
struct PaxosViewChangeMsg {
  static constexpr uint8_t kTag = kPaxViewChange;

  uint64_t new_view = 0;
  uint64_t stable_seq = 0;
  std::vector<PaxosVcEntry> entries;

  void EncodeTo(Encoder& enc) const;
  static Result<PaxosViewChangeMsg> DecodeFrom(Decoder& dec, uint64_t window);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }
};

/// One re-proposed entry in a Paxos NEW-VIEW.
struct PaxosNewViewEntry {
  uint64_t seq = 0;
  Bytes batch;  // raw: receiver decodes + hashes (and charges) itself
  size_t batch_offset = 0;  // see SmPrepareMsg::batch_offset

  void EncodeTo(Encoder& enc) const;
  static Result<PaxosNewViewEntry> DecodeFrom(Decoder& dec);
};

/// <NEW-VIEW, v', n_stable, entries>.
struct PaxosNewViewMsg {
  static constexpr uint8_t kTag = kPaxNewView;

  uint64_t new_view = 0;
  uint64_t stable_seq = 0;
  std::vector<PaxosNewViewEntry> entries;

  void EncodeTo(Encoder& enc) const;
  static Result<PaxosNewViewMsg> DecodeFrom(Decoder& dec,
                                            uint64_t max_entries);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }
};

/// <STATE-RESPONSE, n, d, snapshot> (crash model: the sender is honest, a
/// digest suffices — no certificate).
struct PaxosStateResponseMsg {
  static constexpr uint8_t kTag = kPaxStateResponse;

  uint64_t seq = 0;
  Digest digest;
  Bytes snapshot;

  void EncodeTo(Encoder& enc) const;
  static Result<PaxosStateResponseMsg> DecodeFrom(Decoder& dec);
  Bytes ToMessage() const { return FrameMessage(kTag, *this); }
};

}  // namespace seemore

#endif  // SEEMORE_WIRE_MESSAGES_H_
