// Binary wire format for all protocol messages.
//
// Encoding rules (little-endian throughout):
//   - u8 / u16 / u32 / u64: fixed width
//   - varint: LEB128, for sequence numbers and lengths
//   - bytes:  varint length prefix + raw bytes
//   - string: same as bytes
// The Decoder is bounds-checked and returns Status on any truncated or
// malformed input: Byzantine replicas may send arbitrary bytes, so a decode
// failure must never crash a correct replica.

#ifndef SEEMORE_WIRE_WIRE_H_
#define SEEMORE_WIRE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace seemore {

class CryptoMemo;

using Bytes = std::vector<uint8_t>;

/// Encoded length of PutVarint(v), for exact Encoder::Reserve hints.
constexpr size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Appends primitive values to a growing byte buffer.
class Encoder {
 public:
  Encoder() = default;

  /// Pre-size the buffer for `n` further bytes. Large messages (batches,
  /// view changes) pass an exact or near-exact hint so one allocation
  /// replaces the doubling-growth churn of byte-at-a-time appends.
  void Reserve(size_t n) { buf_.reserve(buf_.size() + n); }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutVarint(uint64_t v);
  void PutBytes(const uint8_t* data, size_t len);
  void PutBytes(const Bytes& data) { PutBytes(data.data(), data.size()); }
  void PutString(const std::string& s) {
    PutBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }
  /// Raw append with no length prefix (for fixed-size fields like digests).
  void PutRaw(const uint8_t* data, size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }
  void PutRaw(const Bytes& data) { PutRaw(data.data(), data.size()); }

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Bounds-checked reader over a byte span. All getters fail with
/// kCorruption once the input is exhausted or malformed; after a failure
/// every subsequent getter also fails (sticky error), so callers may batch
/// reads and check `status()` once.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit Decoder(const Bytes& data) : Decoder(data.data(), data.size()) {}
  /// Decoder over a shared immutable buffer (wire/payload.h): `buffer_id`
  /// is the buffer's process-unique identity and `memo` the run's digest
  /// memo (crypto/memo.h), letting decode-time digest checks reuse work
  /// another receiver of the same frame already paid for. `memo` may be
  /// null (and must be when buffer_id is 0): digests then compute for real,
  /// which is observationally identical — the memo elides host CPU only.
  Decoder(const uint8_t* data, size_t len, uint64_t buffer_id,
          CryptoMemo* memo = nullptr)
      : data_(data), len_(len), buffer_id_(buffer_id), memo_(memo) {}

  uint8_t GetU8();
  uint16_t GetU16();
  uint32_t GetU32();
  uint64_t GetU64();
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  uint64_t GetVarint();
  Bytes GetBytes();
  std::string GetString();
  /// Read exactly `len` raw bytes (no length prefix).
  Bytes GetRaw(size_t len);
  /// Copy exactly `len` raw bytes into `out`.
  bool GetRawInto(uint8_t* out, size_t len);

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  size_t remaining() const { return len_ - pos_; }
  /// Current read offset from the start of the input. A field decoded by
  /// the immediately preceding getter occupies [pos() - field_size, pos()).
  size_t pos() const { return pos_; }
  /// Identity of the underlying shared buffer, or 0 when decoding plain
  /// bytes (see the buffer_id constructor).
  uint64_t buffer_id() const { return buffer_id_; }
  /// The run's digest/verify memo, or null when decoding outside a run (or
  /// plain bytes); see the buffer_id constructor.
  CryptoMemo* memo() const { return memo_; }
  /// True if the whole input has been consumed and no error occurred.
  bool AtEnd() const { return ok() && pos_ == len_; }
  /// Fails the decoder unless the input was fully consumed.
  Status Finish();

 private:
  bool Require(size_t n);
  void Fail(const char* what);

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
  uint64_t buffer_id_ = 0;
  CryptoMemo* memo_ = nullptr;
  Status status_;
};

}  // namespace seemore

#endif  // SEEMORE_WIRE_WIRE_H_
