// Normal-case agreement (Algorithms 1 & 2, §5.3), checkpointing and state
// transfer. View changes and mode switching live in seemore_view_change.cc.

#include "seemore/seemore_replica.h"

#include <algorithm>

#include "util/logging.h"

namespace seemore {

SeeMoReReplica::SeeMoReReplica(Simulator* sim, SimNetwork* net,
                               const KeyStore* keystore, PrincipalId id,
                               const ClusterConfig& config,
                               std::unique_ptr<StateMachine> state_machine,
                               const CostModel& costs)
    : ReplicaBase(sim, net, keystore, id, config, std::move(state_machine),
                  costs),
      mode_(config.initial_mode) {
  current_vc_timeout_ = config_.view_change_timeout;
  window_ = static_cast<uint64_t>(config_.checkpoint_period) * 2 +
            static_cast<uint64_t>(config_.pipeline_max);
}

std::vector<PrincipalId> SeeMoReReplica::PassiveNodes() const {
  std::vector<PrincipalId> out;
  for (PrincipalId r = 0; r < config_.n(); ++r) {
    if (!config_.IsProxy(r, view_)) out.push_back(r);
  }
  return out;
}

bool SeeMoReReplica::ParticipatesInAgreement() const {
  switch (mode_) {
    case SeeMoReMode::kLion:
      return true;
    case SeeMoReMode::kDog:
      return IsPrimary() || IsProxyNow();
    case SeeMoReMode::kPeacock:
      return IsProxyNow();
  }
  return false;
}

bool SeeMoReReplica::VerifyVcPrepareEntry(const VcEntry& entry) const {
  if (entry.mode == SeeMoReMode::kPeacock) {
    // A bare Peacock pre-prepare is signed by an UNTRUSTED primary and is
    // not self-certifying (it must travel as a PreparedProof). Only the
    // trusted transferer's NEW-VIEW re-proposals are acceptable here.
    const PrincipalId authority =
        SwitchAuthority(SeeMoReMode::kPeacock, entry.view);
    const Bytes header =
        ProposalHeader(kDomainPrePrepare, static_cast<uint8_t>(entry.mode),
                       entry.view, entry.seq, entry.digest);
    return keystore_->Verify(authority, header, entry.sig);
  }
  return VerifyProposalSig(entry.mode, entry.view, entry.seq, entry.digest,
                           entry.sig);
}

bool SeeMoReReplica::VerifyProposalSig(SeeMoReMode mode, uint64_t view,
                                       uint64_t seq, const Digest& digest,
                                       const Signature& sig) const {
  const PrincipalId proposer = config_.PrimaryOf(mode, view);
  const Bytes header = ProposalHeader(
      kDomainPrePrepare, static_cast<uint8_t>(mode), view, seq, digest);
  if (keystore_->Verify(proposer, header, sig)) return true;
  // Entries re-proposed by a NEW-VIEW are signed by the trusted authority of
  // that view (Peacock: the transferer) instead of the primary.
  const PrincipalId authority = SwitchAuthority(mode, view);
  return authority != proposer && keystore_->Verify(authority, header, sig);
}

void SeeMoReReplica::HandleMessage(PrincipalId from, const Bytes& bytes) {
  Decoder dec(bytes);
  const uint8_t tag = dec.GetU8();
  if (!dec.ok()) return;
  ChargeMac();  // pairwise channel authentication (§3.1)
  // Protocol-internal messages are only legitimate on replica channels.
  if (tag != kMsgRequest && (from < 0 || from >= config_.n())) return;
  switch (tag) {
    case kMsgRequest:
      HandleRequest(from, dec);
      break;
    case kPrepare:
      HandlePrepare(from, dec);
      break;
    case kAcceptPlain:
      HandleAcceptPlain(from, dec);
      break;
    case kAcceptSigned:
      HandleAcceptSigned(from, dec);
      break;
    case kCommitPrimary:
      HandleCommitPrimary(from, dec);
      break;
    case kCommitVote:
      HandleCommitVote(from, dec);
      break;
    case kInform:
      HandleInform(from, dec);
      break;
    case kCheckpoint:
      HandleCheckpoint(from, dec);
      break;
    case kViewChange:
      HandleViewChange(from, dec);
      break;
    case kNewView:
      HandleNewView(from, dec);
      break;
    case kModeChange:
      HandleModeChange(from, dec);
      break;
    case kStateRequest:
      HandleStateRequest(from, dec);
      break;
    case kStateResponse:
      HandleStateResponse(from, dec);
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Normal case
// ---------------------------------------------------------------------------

void SeeMoReReplica::HandleRequest(PrincipalId from, Decoder& dec) {
  Result<Request> request_or = Request::DecodeFrom(dec);
  if (!request_or.ok()) return;
  Request request = std::move(request_or).value();

  // Channel authentication (§3.1): a request arriving directly from a
  // client channel must name that client. Without this, a rogue client
  // could impersonate another and poison its timestamp sequence — the
  // crash-model baseline has no signatures to catch it otherwise.
  if (IsClientPrincipal(from) && from != request.client) return;

  // Retransmission of an executed request: any replica resends the cached
  // reply (§5.1); the client's reply policy decides how many it needs.
  if (exec_.SeenTimestamp(request.client, request.timestamp)) {
    auto cached = exec_.CachedReply(request.client, request.timestamp);
    if (cached.has_value()) {
      Reply reply;
      reply.mode = static_cast<uint8_t>(mode_);
      reply.view = view_;
      reply.timestamp = request.timestamp;
      reply.replica = id_;
      reply.result = *cached;
      if (HasByz(kByzLieToClients) && !reply.result.empty()) {
        reply.result[0] ^= 0xff;
      }
      reply.Sign(signer_);
      ChargeSign();
      SendTo(request.client, reply.ToMessage());
    }
    return;
  }

  if (IsPrimary() && !in_view_change_) {
    // The (trusted or Peacock) primary validates the client signature and
    // timestamp before ordering (Algorithm 1 lines 5-8).
    ChargeVerify();
    if (!request.VerifySignature(*keystore_)) return;
    PrimaryEnqueue(std::move(request));
    return;
  }
  if (in_view_change_) return;
  // Clients multicast to the mode's receiving network (Table 1), so the
  // primary has its own copy on the first transmission. A repeated
  // timestamp is a client retransmission: relay it to the primary (the
  // paper's liveness path, §5.1) and let participants arm the timer that
  // eventually suspects a dead primary.
  if (from == request.client) {
    auto seen = relay_seen_ts_.find(request.client);
    const bool retransmission =
        seen != relay_seen_ts_.end() && seen->second >= request.timestamp;
    relay_seen_ts_[request.client] = request.timestamp;
    if (retransmission) {
      SendTo(current_primary(), request.ToMessage());
    }
  }
  if (ParticipatesInAgreement()) ArmViewTimer();
}

void SeeMoReReplica::PrimaryEnqueue(Request request) {
  auto it = primary_seen_ts_.find(request.client);
  if (it != primary_seen_ts_.end() && request.timestamp <= it->second) return;
  primary_seen_ts_[request.client] = request.timestamp;
  pending_.push_back(std::move(request));
  TryPropose();
}

int SeeMoReReplica::UncommittedSlots() const {
  int count = 0;
  for (const auto& [seq, slot] : slots_) {
    if (slot.has_batch && !slot.committed) ++count;
  }
  return count;
}

void SeeMoReReplica::TryPropose() {
  while (!pending_.empty() && UncommittedSlots() < config_.pipeline_max &&
         next_seq_ <= stable_seq_ + window_) {
    Batch batch;
    while (!pending_.empty() &&
           batch.size() < static_cast<size_t>(config_.batch_max)) {
      batch.requests.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    const uint64_t seq = next_seq_++;
    const Bytes encoded = batch.Encode();
    ChargeHash(encoded.size());
    Digest digest = Digest::Of(encoded);

    // A Byzantine Peacock primary may equivocate; trusted primaries cannot
    // be flagged (tests assert this invariant).
    if (HasByz(kByzEquivocate) && mode_ == SeeMoReMode::kPeacock) {
      Batch alt = Batch::Noop();
      const Bytes alt_encoded = alt.Encode();
      const Digest alt_digest = Digest::Of(alt_encoded);
      const uint8_t mode8 = static_cast<uint8_t>(mode_);
      const Signature sig_a = signer_.Sign(
          ProposalHeader(kDomainPrePrepare, mode8, view_, seq, digest));
      const Signature sig_b = signer_.Sign(
          ProposalHeader(kDomainPrePrepare, mode8, view_, seq, alt_digest));
      ChargeSign(2);
      const std::vector<PrincipalId> all = config_.AllReplicas();
      for (size_t i = 0; i < all.size(); ++i) {
        if (all[i] == id_) continue;
        const bool first_half = i % 2 == 0;
        Encoder enc;
        enc.PutU8(kPrepare);
        enc.PutU8(mode8);
        enc.PutU64(view_);
        enc.PutU64(seq);
        (first_half ? digest : alt_digest).EncodeTo(enc);
        (first_half ? sig_a : sig_b).EncodeTo(enc);
        enc.PutBytes(first_half ? encoded : alt_encoded);
        SendTo(all[i], enc.bytes());
      }
      continue;
    }

    ChargeSign();
    const Signature sig = signer_.Sign(ProposalHeader(
        kDomainPrePrepare, static_cast<uint8_t>(mode_), view_, seq, digest));

    Slot& slot = slots_[seq];
    slot.batch = std::move(batch);
    slot.has_batch = true;
    slot.digest = digest;
    slot.view = view_;
    slot.mode = mode_;
    slot.primary_sig = sig;

    Encoder enc;
    enc.PutU8(kPrepare);
    enc.PutU8(static_cast<uint8_t>(mode_));
    enc.PutU64(view_);
    enc.PutU64(seq);
    digest.EncodeTo(enc);
    sig.EncodeTo(enc);
    enc.PutBytes(encoded);
    // In every mode the proposal is multicast to ALL replicas (Algorithm 1
    // line 8, Algorithm 2 line 9, §5.3 change #1).
    SendToMany(config_.AllReplicas(), enc.bytes());

    if (mode_ == SeeMoReMode::kLion) {
      slot.plain_accepts.insert(id_);  // the primary counts itself
    } else if (mode_ == SeeMoReMode::kPeacock) {
      // Peacock primary's pre-prepare does not count as a prepare echo;
      // it waits for 2m echoes from the other proxies.
    }
  }
}

void SeeMoReReplica::HandlePrepare(PrincipalId from, Decoder& dec) {
  const SeeMoReMode msg_mode = static_cast<SeeMoReMode>(dec.GetU8());
  const uint64_t view = dec.GetU64();
  const uint64_t seq = dec.GetU64();
  const Digest digest = Digest::DecodeFrom(dec);
  const Signature sig = Signature::DecodeFrom(dec);
  Bytes batch_bytes = dec.GetBytes();
  if (!dec.ok()) return;
  if (from != config_.PrimaryOf(msg_mode, view)) return;
  if (seq <= stable_seq_ || seq > stable_seq_ + window_) return;

  // Fast-forward: a valid prepare signed by the TRUSTED primary of a higher
  // view proves that view became active (Lion/Dog only; a Peacock primary is
  // untrusted, so backups wait for the transferer's NEW-VIEW instead).
  if (msg_mode != SeeMoReMode::kPeacock && view > view_ &&
      ModeForView(view) == msg_mode) {
    ChargeVerify();
    if (!VerifyProposalSig(msg_mode, view, seq, digest, sig)) return;
    EnterView(view, msg_mode);
  } else if (msg_mode != mode_ || view != view_ || in_view_change_) {
    return;
  } else {
    ChargeVerify();
    if (!VerifyProposalSig(msg_mode, view, seq, digest, sig)) return;
  }

  ChargeHash(batch_bytes.size());
  if (Digest::Of(batch_bytes) != digest) return;
  Result<Batch> batch_or = Batch::Decode(batch_bytes);
  if (!batch_or.ok()) return;
  Batch batch = std::move(batch_or).value();

  // Peacock proxies re-validate client requests (the primary is untrusted).
  // Lion/Dog backups trust the primary's validation (§5.1) — one of
  // SeeMoRe's savings over PBFT.
  if (mode_ == SeeMoReMode::kPeacock && IsProxyNow()) {
    ChargeVerify(static_cast<int>(batch.size()));
    for (const Request& request : batch.requests) {
      if (!request.VerifySignature(*keystore_)) return;
    }
  }

  Slot& slot = slots_[seq];
  if (slot.has_batch) {
    // At most one proposal per (view, seq): equivocation defense.
    if (slot.view == view && slot.digest != digest) return;
    if (slot.view == view && slot.digest == digest) return;  // duplicate
  }
  slot.batch = std::move(batch);
  slot.has_batch = true;
  slot.digest = digest;
  slot.view = view;
  slot.mode = mode_;
  slot.primary_sig = sig;

  switch (mode_) {
    case SeeMoReMode::kLion: {
      // <ACCEPT, v, n, d, r>: unsigned, to the trusted primary only
      // (Algorithm 1 line 11).
      Digest vote = slot.digest;
      if (HasByz(kByzWrongVotes)) vote.data()[0] ^= 0xff;
      if (config_.lion_sign_accepts) {
        ChargeSign();  // ablation: what unsigned accepts save (§5.1)
      } else {
        ChargeMac();
      }
      Encoder enc;
      enc.PutU8(kAcceptPlain);
      enc.PutU8(static_cast<uint8_t>(mode_));
      enc.PutU64(view_);
      enc.PutU64(seq);
      vote.EncodeTo(enc);
      enc.PutU32(static_cast<uint32_t>(id_));
      SendTo(current_primary(), enc.bytes());
      ArmViewTimer();
      break;
    }
    case SeeMoReMode::kDog:
    case SeeMoReMode::kPeacock: {
      if (IsProxyNow()) {
        SendSignedAccept(seq, slot);
        ArmViewTimer();
        CheckProxyCommit(seq, slot);
      }
      // Passive nodes just keep the batch; they execute on INFORMs.
      break;
    }
  }
}

void SeeMoReReplica::SendSignedAccept(uint64_t seq, Slot& slot) {
  if (slot.accept_sent) return;
  slot.accept_sent = true;
  Digest vote = slot.digest;
  if (HasByz(kByzWrongVotes)) vote.data()[0] ^= 0xff;
  ChargeSign();
  const Signature sig = signer_.Sign(VoteHeader(
      kDomainPrepare, static_cast<uint8_t>(mode_), view_, seq, vote, id_));
  Encoder enc;
  enc.PutU8(kAcceptSigned);
  enc.PutU8(static_cast<uint8_t>(mode_));
  enc.PutU64(view_);
  enc.PutU64(seq);
  vote.EncodeTo(enc);
  enc.PutU32(static_cast<uint32_t>(id_));
  sig.EncodeTo(enc);
  SendToMany(Proxies(), enc.bytes());
  slot.accept_votes.Add(vote, id_, sig);
}

void SeeMoReReplica::HandleAcceptPlain(PrincipalId from, Decoder& dec) {
  const SeeMoReMode msg_mode = static_cast<SeeMoReMode>(dec.GetU8());
  const uint64_t view = dec.GetU64();
  const uint64_t seq = dec.GetU64();
  const Digest digest = Digest::DecodeFrom(dec);
  const PrincipalId voter = static_cast<PrincipalId>(dec.GetU32());
  if (!dec.ok()) return;
  if (msg_mode != SeeMoReMode::kLion || mode_ != SeeMoReMode::kLion) return;
  if (view != view_ || !IsPrimary() || in_view_change_) return;
  if (voter != from || !IsReplicaId(voter)) return;
  auto it = slots_.find(seq);
  if (it == slots_.end() || !it->second.has_batch) return;
  Slot& slot = it->second;
  if (digest != slot.digest) return;
  if (config_.lion_sign_accepts) ChargeVerify();  // ablation (§5.1)
  slot.plain_accepts.insert(voter);
  if (static_cast<int>(slot.plain_accepts.size()) < CommitQuorum()) return;
  if (slot.has_commit_sig) return;  // commit already broadcast in this view

  // <<COMMIT, v, n, d>_σp, µ> to all replicas (Algorithm 1 lines 13-15).
  ChargeSign();
  const Signature commit_sig = signer_.Sign(ProposalHeader(
      kDomainCommit, static_cast<uint8_t>(mode_), view_, seq, slot.digest));
  slot.commit_sig = commit_sig;
  slot.has_commit_sig = true;
  Encoder enc;
  enc.PutU8(kCommitPrimary);
  enc.PutU8(static_cast<uint8_t>(mode_));
  enc.PutU64(view_);
  enc.PutU64(seq);
  slot.digest.EncodeTo(enc);
  commit_sig.EncodeTo(enc);
  enc.PutBytes(slot.batch.Encode());
  SendToMany(config_.AllReplicas(), enc.bytes());
  CommitSlot(seq, slot, /*replies=*/true, /*informs=*/false);
}

void SeeMoReReplica::HandleCommitPrimary(PrincipalId from, Decoder& dec) {
  const SeeMoReMode msg_mode = static_cast<SeeMoReMode>(dec.GetU8());
  const uint64_t view = dec.GetU64();
  const uint64_t seq = dec.GetU64();
  const Digest digest = Digest::DecodeFrom(dec);
  const Signature sig = Signature::DecodeFrom(dec);
  Bytes batch_bytes = dec.GetBytes();
  if (!dec.ok()) return;
  if (msg_mode != SeeMoReMode::kLion) return;
  if (from != config_.TrustedPrimary(view)) return;
  if (seq <= stable_seq_) return;

  ChargeVerify();
  const Bytes header = ProposalHeader(
      kDomainCommit, static_cast<uint8_t>(msg_mode), view, seq, digest);
  if (!keystore_->Verify(from, header, sig)) return;

  // A signed commit from the trusted primary of a higher view also proves
  // that view is active.
  if (view > view_ && ModeForView(view) == msg_mode) {
    EnterView(view, msg_mode);
  } else if (mode_ != SeeMoReMode::kLion || view != view_) {
    return;
  }

  Slot& slot = slots_[seq];
  if (slot.committed) return;
  // "Even if the replica has not received a prepare message ... it considers
  // the request as committed" — the commit carries µ (§5.1).
  if (!slot.has_batch || slot.digest != digest) {
    ChargeHash(batch_bytes.size());
    if (Digest::Of(batch_bytes) != digest) return;
    Result<Batch> batch_or = Batch::Decode(batch_bytes);
    if (!batch_or.ok()) return;
    slot.batch = std::move(batch_or).value();
    slot.has_batch = true;
    slot.digest = digest;
    slot.view = view;
    slot.mode = msg_mode;
  }
  slot.commit_sig = sig;
  slot.has_commit_sig = true;
  CommitSlot(seq, slot, /*replies=*/false, /*informs=*/false);
}

void SeeMoReReplica::HandleAcceptSigned(PrincipalId from, Decoder& dec) {
  const SeeMoReMode msg_mode = static_cast<SeeMoReMode>(dec.GetU8());
  const uint64_t view = dec.GetU64();
  const uint64_t seq = dec.GetU64();
  const Digest digest = Digest::DecodeFrom(dec);
  const PrincipalId voter = static_cast<PrincipalId>(dec.GetU32());
  const Signature sig = Signature::DecodeFrom(dec);
  if (!dec.ok()) return;
  if (msg_mode != mode_ || view != view_ || in_view_change_) return;
  if (mode_ == SeeMoReMode::kLion) return;
  if (voter != from || !config_.IsProxy(voter, view)) return;
  if (!IsProxyNow() && !(mode_ == SeeMoReMode::kDog && IsPrimary())) return;
  if (seq <= stable_seq_ || seq > stable_seq_ + window_) return;
  ChargeVerify();
  if (!keystore_->Verify(voter,
                         VoteHeader(kDomainPrepare,
                                    static_cast<uint8_t>(msg_mode), view, seq,
                                    digest, voter),
                         sig)) {
    return;
  }
  Slot& slot = slots_[seq];
  slot.accept_votes.Add(digest, voter, sig);
  CheckProxyCommit(seq, slot);
}

void SeeMoReReplica::CheckProxyCommit(uint64_t seq, Slot& slot) {
  if (!slot.has_batch) return;
  const int quorum = CommitQuorum();  // 2m+1

  if (mode_ == SeeMoReMode::kDog) {
    // Dog commits directly at 2m+1 signed accepts (2 phases; the commit
    // message only helps lagging proxies catch up, Algorithm 2 lines 13-17).
    if (static_cast<int>(slot.accept_votes.Count(slot.digest)) < quorum) {
      return;
    }
    // NOTE: fall through even when slot.committed — the commit vote below
    // must still go out for peers running the catch-up path.
    if (!slot.commit_sent) {
      slot.commit_sent = true;
      ChargeSign();
      const Signature sig = signer_.Sign(
          VoteHeader(kDomainCommit, static_cast<uint8_t>(mode_), view_, seq,
                     slot.digest, id_));
      Encoder enc;
      enc.PutU8(kCommitVote);
      enc.PutU8(static_cast<uint8_t>(mode_));
      enc.PutU64(view_);
      enc.PutU64(seq);
      slot.digest.EncodeTo(enc);
      enc.PutU32(static_cast<uint32_t>(id_));
      sig.EncodeTo(enc);
      SendToMany(Proxies(), enc.bytes());
    }
    CommitSlot(seq, slot, /*replies=*/true, /*informs=*/true);
    return;
  }

  // Peacock: PBFT phases among the proxies.
  if (!slot.prepared) {
    // pre-prepare + 2m matching prepare echoes => prepared.
    if (static_cast<int>(slot.accept_votes.Count(slot.digest)) <
        2 * config_.m) {
      return;
    }
    slot.prepared = true;
    if (!slot.commit_sent) {
      slot.commit_sent = true;
      Digest vote = slot.digest;
      if (HasByz(kByzWrongVotes)) vote.data()[0] ^= 0xff;
      ChargeSign();
      const Signature sig = signer_.Sign(VoteHeader(
          kDomainCommit, static_cast<uint8_t>(mode_), view_, seq, vote, id_));
      Encoder enc;
      enc.PutU8(kCommitVote);
      enc.PutU8(static_cast<uint8_t>(mode_));
      enc.PutU64(view_);
      enc.PutU64(seq);
      vote.EncodeTo(enc);
      enc.PutU32(static_cast<uint32_t>(id_));
      sig.EncodeTo(enc);
      SendToMany(Proxies(), enc.bytes());
      slot.commit_votes.Add(vote, id_, sig);
    }
  }
  if (slot.prepared &&
      static_cast<int>(slot.commit_votes.Count(slot.digest)) >= quorum) {
    CommitSlot(seq, slot, /*replies=*/true, /*informs=*/true);
  }
}

void SeeMoReReplica::HandleCommitVote(PrincipalId from, Decoder& dec) {
  const SeeMoReMode msg_mode = static_cast<SeeMoReMode>(dec.GetU8());
  const uint64_t view = dec.GetU64();
  const uint64_t seq = dec.GetU64();
  const Digest digest = Digest::DecodeFrom(dec);
  const PrincipalId voter = static_cast<PrincipalId>(dec.GetU32());
  const Signature sig = Signature::DecodeFrom(dec);
  if (!dec.ok()) return;
  if (msg_mode != mode_ || view != view_ || in_view_change_) return;
  if (mode_ == SeeMoReMode::kLion) return;
  if (voter != from || !config_.IsProxy(voter, view)) return;
  if (!IsProxyNow()) return;
  if (seq <= stable_seq_ || seq > stable_seq_ + window_) return;
  ChargeVerify();
  if (!keystore_->Verify(voter,
                         VoteHeader(kDomainCommit,
                                    static_cast<uint8_t>(msg_mode), view, seq,
                                    digest, voter),
                         sig)) {
    return;
  }
  Slot& slot = slots_[seq];
  slot.commit_votes.Add(digest, voter, sig);

  if (mode_ == SeeMoReMode::kDog) {
    // Catch-up: m+1 matching commits prove at least one non-faulty proxy
    // committed (§5.2).
    if (!slot.committed && slot.has_batch && slot.digest == digest &&
        static_cast<int>(slot.commit_votes.Count(digest)) >= config_.m + 1) {
      CommitSlot(seq, slot, /*replies=*/true, /*informs=*/true);
    }
    return;
  }
  CheckProxyCommit(seq, slot);
}

void SeeMoReReplica::HandleInform(PrincipalId from, Decoder& dec) {
  const SeeMoReMode msg_mode = static_cast<SeeMoReMode>(dec.GetU8());
  const uint64_t view = dec.GetU64();
  const uint64_t seq = dec.GetU64();
  const Digest digest = Digest::DecodeFrom(dec);
  const PrincipalId voter = static_cast<PrincipalId>(dec.GetU32());
  const Signature sig = Signature::DecodeFrom(dec);
  if (!dec.ok()) return;
  if (msg_mode != mode_ || mode_ == SeeMoReMode::kLion) return;
  if (view != view_) return;
  if (voter != from || !config_.IsProxy(voter, view)) return;
  if (seq <= stable_seq_) return;
  ChargeVerify();
  if (!keystore_->Verify(voter,
                         VoteHeader(kDomainInform,
                                    static_cast<uint8_t>(msg_mode), view, seq,
                                    digest, voter),
                         sig)) {
    return;
  }
  Slot& slot = slots_[seq];
  slot.inform_votes.Add(digest, voter);
  // Dog: 2m+1 matching INFORMs; Peacock: m+1 (§5.2 / §5.3).
  const int needed =
      mode_ == SeeMoReMode::kDog ? 2 * config_.m + 1 : config_.m + 1;
  if (!slot.committed && slot.has_batch && slot.digest == digest &&
      static_cast<int>(slot.inform_votes.Count(digest)) >= needed) {
    CommitSlot(seq, slot, /*replies=*/false, /*informs=*/false);
  }
}

void SeeMoReReplica::CommitSlot(uint64_t seq, Slot& slot, bool replies,
                                bool informs) {
  if (slot.committed) return;
  slot.committed = true;
  ++stats_.batches_committed;
  if (informs) SendInform(seq, slot);
  std::vector<ExecutedRequest> executed = exec_.Commit(seq, slot.batch);
  ChargeExecute(static_cast<int>(executed.size()));
  for (const ExecutedRequest& ex : executed) {
    ++stats_.requests_executed;
    if (replies && !(ex.duplicate && ex.result.empty())) SendReply(ex);
  }
  MaybeCheckpoint();
  RestartOrDisarmViewTimer();
  if (IsPrimary() && !in_view_change_) TryPropose();
}

void SeeMoReReplica::SendReply(const ExecutedRequest& executed) {
  Reply reply;
  reply.mode = static_cast<uint8_t>(mode_);
  reply.view = view_;
  reply.timestamp = executed.request.timestamp;
  reply.replica = id_;
  reply.result = executed.result;
  if (HasByz(kByzLieToClients) && !reply.result.empty()) {
    reply.result[0] ^= 0xff;
  }
  reply.Sign(signer_);
  ChargeSign();  // replies are signed in every SeeMoRe mode (§5.1)
  SendTo(executed.request.client, reply.ToMessage());
}

void SeeMoReReplica::SendInform(uint64_t seq, const Slot& slot) {
  ChargeSign();
  const Signature sig = signer_.Sign(VoteHeader(
      kDomainInform, static_cast<uint8_t>(mode_), view_, seq, slot.digest,
      id_));
  Encoder enc;
  enc.PutU8(kInform);
  enc.PutU8(static_cast<uint8_t>(mode_));
  enc.PutU64(view_);
  enc.PutU64(seq);
  slot.digest.EncodeTo(enc);
  enc.PutU32(static_cast<uint32_t>(id_));
  sig.EncodeTo(enc);
  SendToMany(PassiveNodes(), enc.bytes());
}

// ---------------------------------------------------------------------------
// Checkpoints / state transfer
// ---------------------------------------------------------------------------

void SeeMoReReplica::MaybeCheckpoint() {
  const uint64_t executed = exec_.last_executed();
  if (executed < last_checkpoint_seq_ +
                     static_cast<uint64_t>(config_.checkpoint_period)) {
    return;
  }
  last_checkpoint_seq_ = executed;
  Bytes snapshot = exec_.Snapshot();
  ChargeHash(snapshot.size());
  const Digest digest = Digest::Of(snapshot);
  snapshot_buffer_[executed] = {digest, std::move(snapshot)};

  // Lion/Dog: only the trusted primary's signed checkpoint certifies
  // (§5.1 "State Transfer"). Peacock: proxies run quorum checkpoints.
  const bool emitter = mode_ == SeeMoReMode::kPeacock
                           ? IsProxyNow()
                           : IsPrimary();
  if (!emitter) return;
  CheckpointMsg msg;
  msg.seq = executed;
  msg.state_digest = digest;
  msg.replica = id_;
  ChargeSign();
  msg.Sign(signer_);
  Encoder enc;
  enc.PutU8(kCheckpoint);
  msg.EncodeTo(enc);
  SendToMany(config_.AllReplicas(), enc.bytes());
  CountCheckpointVote(msg);
}

void SeeMoReReplica::HandleCheckpoint(PrincipalId from, Decoder& dec) {
  Result<CheckpointMsg> msg_or = CheckpointMsg::DecodeFrom(dec);
  if (!msg_or.ok()) return;
  const CheckpointMsg& msg = msg_or.value();
  if (msg.replica != from || !IsReplicaId(from)) return;
  if (msg.seq <= stable_seq_) return;
  ChargeVerify();
  if (!msg.Verify(*keystore_)) return;
  CountCheckpointVote(msg);
  // A trusted signer's checkpoint ahead of us is authoritative evidence we
  // fell behind; untrusted signers only trigger a fetch when the stability
  // quorum path (CountCheckpointVote -> AdvanceStable) already ran.
  if (config_.IsTrusted(msg.replica) && msg.seq > exec_.last_executed()) {
    RequestStateFrom(msg.replica);
  }
}

void SeeMoReReplica::CountCheckpointVote(const CheckpointMsg& msg) {
  auto& signers = checkpoint_votes_[msg.seq][msg.state_digest];
  signers[msg.replica] = msg;

  // Stability rule: one trusted signer suffices (it cannot lie), else a
  // 2m+1 quorum of public signers (at least m+1 honest).
  bool stable = false;
  for (const auto& [signer, m] : signers) {
    if (config_.IsTrusted(signer)) {
      stable = true;
      break;
    }
  }
  if (!stable && static_cast<int>(signers.size()) >= 2 * config_.m + 1) {
    stable = true;
  }
  if (!stable) return;

  CheckpointCert cert;
  PrincipalId helper = id_;
  for (const auto& [signer, m] : signers) {
    cert.Add(m);
    if (signer != id_) helper = signer;
  }
  AdvanceStable(msg.seq, msg.state_digest, std::move(cert), helper);
}

bool SeeMoReReplica::VerifyCheckpointCert(const CheckpointCert& cert) const {
  if (cert.IsGenesis()) return true;
  if (!cert.Verify(*keystore_, 1,
                   [this](PrincipalId r) { return IsReplicaId(r); })) {
    return false;
  }
  int trusted = 0;
  int untrusted = 0;
  std::set<PrincipalId> seen;
  for (const CheckpointMsg& msg : cert.msgs()) {
    if (!seen.insert(msg.replica).second) continue;
    if (config_.IsTrusted(msg.replica)) {
      ++trusted;
    } else {
      ++untrusted;
    }
  }
  return trusted >= 1 || untrusted >= 2 * config_.m + 1;
}

void SeeMoReReplica::AdvanceStable(uint64_t seq, const Digest& digest,
                                   CheckpointCert cert, PrincipalId helper) {
  if (seq <= stable_seq_) return;
  stable_seq_ = seq;
  stable_cert_ = std::move(cert);
  auto it = snapshot_buffer_.find(seq);
  if (it != snapshot_buffer_.end() && it->second.first == digest) {
    stable_snapshot_ = std::move(it->second.second);
  } else if (exec_.last_executed() < seq && helper != id_) {
    RequestStateFrom(helper);
  }
  for (auto s = slots_.begin(); s != slots_.end();) {
    s = s->first <= seq ? slots_.erase(s) : std::next(s);
  }
  for (auto s = snapshot_buffer_.begin(); s != snapshot_buffer_.end();) {
    s = s->first <= seq ? snapshot_buffer_.erase(s) : std::next(s);
  }
  for (auto s = checkpoint_votes_.begin(); s != checkpoint_votes_.end();) {
    s = s->first <= seq ? checkpoint_votes_.erase(s) : std::next(s);
  }
  if (IsPrimary() && !in_view_change_) TryPropose();
}

void SeeMoReReplica::RequestStateFrom(PrincipalId target) {
  if (target == id_) return;
  if (sim_->now() - last_state_request_ < Millis(20)) return;
  last_state_request_ = sim_->now();
  ++stats_.state_transfers;
  Encoder enc;
  enc.PutU8(kStateRequest);
  enc.PutU64(exec_.last_executed());
  SendTo(target, enc.bytes());
}

void SeeMoReReplica::HandleStateRequest(PrincipalId from, Decoder& dec) {
  const uint64_t their_executed = dec.GetU64();
  if (!dec.ok()) return;
  if (stable_snapshot_.empty() || stable_seq_ <= their_executed) return;
  Encoder enc;
  enc.PutU8(kStateResponse);
  stable_cert_.EncodeTo(enc);
  enc.PutBytes(stable_snapshot_);
  SendTo(from, enc.bytes());
}

void SeeMoReReplica::HandleStateResponse(PrincipalId from, Decoder& dec) {
  (void)from;
  Result<CheckpointCert> cert_or = CheckpointCert::DecodeFrom(dec);
  if (!cert_or.ok()) return;
  Bytes snapshot = dec.GetBytes();
  if (!dec.ok()) return;
  CheckpointCert cert = std::move(cert_or).value();
  if (cert.IsGenesis() || cert.seq() <= exec_.last_executed()) return;
  ChargeVerify(static_cast<int>(cert.msgs().size()));
  if (!VerifyCheckpointCert(cert)) return;
  ChargeHash(snapshot.size());
  if (Digest::Of(snapshot) != cert.state_digest()) return;
  const uint64_t seq = cert.seq();
  if (!exec_.Restore(snapshot, seq).ok()) return;
  stable_seq_ = std::max(stable_seq_, seq);
  stable_cert_ = std::move(cert);
  stable_snapshot_ = std::move(snapshot);
  last_checkpoint_seq_ = std::max(last_checkpoint_seq_, seq);
  for (auto s = slots_.begin(); s != slots_.end();) {
    s = s->first <= seq ? slots_.erase(s) : std::next(s);
  }
}

}  // namespace seemore
