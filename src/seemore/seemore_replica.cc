// Normal-case agreement (Algorithms 1 & 2, §5.3), checkpointing and state
// transfer. View changes and mode switching live in seemore_view_change.cc.

#include "seemore/seemore_replica.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/logging.h"

namespace seemore {

SeeMoReReplica::SeeMoReReplica(Transport* transport, TimerService* timers,
                               const KeyStore* keystore, CryptoMemo* memo,
                               PrincipalId id, const ClusterConfig& config,
                               std::unique_ptr<StateMachine> state_machine,
                               const CostModel& costs)
    : ReplicaBase(transport, timers, keystore, memo, id, config,
                  std::move(state_machine), costs),
      mode_(config.initial_mode),
      window_(static_cast<uint64_t>(config.checkpoint_period) * 2 +
              static_cast<uint64_t>(config.pipeline_max)),
      log_(window_),
      pipeline_(config.batch_max, config.pipeline_max),
      ckpt_(config.checkpoint_period) {
  current_vc_timeout_ = config_.view_change_timeout;
}

std::vector<PrincipalId> SeeMoReReplica::PassiveNodes() const {
  std::vector<PrincipalId> out;
  for (PrincipalId r = 0; r < config_.n(); ++r) {
    if (!config_.IsProxy(r, view_)) out.push_back(r);
  }
  return out;
}

bool SeeMoReReplica::ParticipatesInAgreement() const {
  switch (mode_) {
    case SeeMoReMode::kLion:
      return true;
    case SeeMoReMode::kDog:
      return IsPrimary() || IsProxyNow();
    case SeeMoReMode::kPeacock:
      return IsProxyNow();
  }
  return false;
}

bool SeeMoReReplica::VerifyVcPrepareEntry(const SmVcEntry& entry) const {
  if (entry.mode == SeeMoReMode::kPeacock) {
    // A bare Peacock pre-prepare is signed by an UNTRUSTED primary and is
    // not self-certifying (it must travel as a PreparedProof). Only the
    // trusted transferer's NEW-VIEW re-proposals are acceptable here.
    const PrincipalId authority =
        SwitchAuthority(SeeMoReMode::kPeacock, entry.view);
    const Bytes header =
        ProposalHeader(kDomainPrePrepare, static_cast<uint8_t>(entry.mode),
                       entry.view, entry.seq, entry.digest);
    return keystore_->Verify(authority, header, entry.sig);
  }
  return VerifyProposalSig(entry.mode, entry.view, entry.seq, entry.digest,
                           entry.sig);
}

bool SeeMoReReplica::VerifyProposalSig(SeeMoReMode mode, uint64_t view,
                                       uint64_t seq, const Digest& digest,
                                       const Signature& sig) const {
  const PrincipalId proposer = config_.PrimaryOf(mode, view);
  const Bytes header = ProposalHeader(
      kDomainPrePrepare, static_cast<uint8_t>(mode), view, seq, digest);
  if (keystore_->Verify(proposer, header, sig)) return true;
  // Entries re-proposed by a NEW-VIEW are signed by the trusted authority of
  // that view (Peacock: the transferer) instead of the primary.
  const PrincipalId authority = SwitchAuthority(mode, view);
  return authority != proposer && keystore_->Verify(authority, header, sig);
}

void SeeMoReReplica::HandleMessage(PrincipalId from, const Payload& frame) {
  Decoder dec = FrameDecoder(frame);
  const uint8_t tag = dec.GetU8();
  if (!dec.ok()) return;
  ChargeMac();  // pairwise channel authentication (§3.1)
  // Protocol-internal messages are only legitimate on replica channels.
  if (tag != kMsgRequest && !IsReplicaId(from)) return;
  switch (tag) {
    case kMsgRequest:
      DispatchTyped(this, from, dec, &SeeMoReReplica::HandleRequest);
      break;
    case kSmPrepare:
      DispatchTyped(this, from, dec, &SeeMoReReplica::HandlePrepare);
      break;
    case kSmAcceptPlain:
      DispatchTyped(this, from, dec, &SeeMoReReplica::HandleAcceptPlain);
      break;
    case kSmAcceptSigned:
      DispatchTyped(this, from, dec, &SeeMoReReplica::HandleAcceptSigned);
      break;
    case kSmCommitPrimary:
      DispatchTyped(this, from, dec, &SeeMoReReplica::HandleCommitPrimary);
      break;
    case kSmCommitVote:
      DispatchTyped(this, from, dec, &SeeMoReReplica::HandleCommitVote);
      break;
    case kSmInform:
      DispatchTyped(this, from, dec, &SeeMoReReplica::HandleInform);
      break;
    case kSmCheckpoint:
      DispatchTyped(this, from, dec, &SeeMoReReplica::HandleCheckpoint);
      break;
    case kSmViewChange: {
      // Drop stale view-changes before paying the full structural decode
      // (embedded batches are hashed during decode).
      if (SmViewChangeMsg::PeekNewView(dec) <= view_) break;
      Result<SmViewChangeMsg> msg =
          SmViewChangeMsg::DecodeFrom(dec, window_ + 1);
      if (msg.ok()) HandleViewChange(from, std::move(msg).value());
      break;
    }
    case kSmNewView: {
      Result<SmNewViewMsg> msg = SmNewViewMsg::DecodeFrom(dec, window_ + 1);
      if (msg.ok()) HandleNewView(from, std::move(msg).value());
      break;
    }
    case kSmModeChange:
      DispatchTyped(this, from, dec, &SeeMoReReplica::HandleModeChange);
      break;
    case kSmStateRequest:
      DispatchTyped(this, from, dec, &SeeMoReReplica::HandleStateRequest);
      break;
    case kSmStateResponse:
      DispatchTyped(this, from, dec, &SeeMoReReplica::HandleStateResponse);
      break;
    case kSmNewViewRequest:
      DispatchTyped(this, from, dec, &SeeMoReReplica::HandleNewViewRequest);
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Normal case
// ---------------------------------------------------------------------------

void SeeMoReReplica::HandleRequest(PrincipalId from, Request request) {
  // Channel authentication (§3.1): a request arriving directly from a
  // client channel must name that client. Without this, a rogue client
  // could impersonate another and poison its timestamp sequence — the
  // crash-model baseline has no signatures to catch it otherwise.
  if (IsClientPrincipal(from) && from != request.client) return;

  // Retransmission of an executed request: any replica resends the cached
  // reply (§5.1); the client's reply policy decides how many it needs.
  if (exec_.SeenTimestamp(request.client, request.timestamp)) {
    auto cached = exec_.CachedReply(request.client, request.timestamp);
    if (cached.has_value()) {
      Reply reply;
      reply.mode = static_cast<uint8_t>(mode_);
      reply.view = view_;
      reply.timestamp = request.timestamp;
      reply.replica = id_;
      reply.result = *cached;
      if (HasByz(kByzLieToClients) && !reply.result.empty()) {
        reply.result[0] ^= 0xff;
      }
      reply.Sign(signer_);
      ChargeSign();
      SendTo(request.client, reply.ToMessage());
    }
    return;
  }

  if (IsPrimary() && !in_view_change_) {
    // The (trusted or Peacock) primary validates the client signature and
    // timestamp before ordering (Algorithm 1 lines 5-8).
    ChargeVerify();
    if (!request.VerifySignature(*keystore_)) return;
    PrimaryEnqueue(std::move(request));
    return;
  }
  if (in_view_change_) return;
  // Clients multicast to the mode's receiving network (Table 1), so the
  // primary has its own copy on the first transmission. A repeated
  // timestamp is a client retransmission: relay it to the primary (the
  // paper's liveness path, §5.1) and let participants arm the timer that
  // eventually suspects a dead primary.
  if (from == request.client) {
    if (pipeline_.NoteDirectDelivery(request.client, request.timestamp)) {
      SendTo(current_primary(), request.ToMessage());
    }
  }
  if (ParticipatesInAgreement()) ArmViewTimer();
}

void SeeMoReReplica::PrimaryEnqueue(Request request) {
  if (!pipeline_.Admit(request)) return;
  pipeline_.Enqueue(std::move(request));
  TryPropose();
}

void SeeMoReReplica::TryPropose() {
  if (proposer_quiesced()) return;
  while (pipeline_.CanOpen(log_.UncommittedSlots()) &&
         pipeline_.next_seq() <= ckpt_.stable_seq() + window_) {
    auto [seq, batch] = pipeline_.Open();
    const Bytes encoded = batch.Encode();
    ChargeHash(encoded.size());
    Digest digest = Digest::Of(encoded);
    const uint8_t mode8 = static_cast<uint8_t>(mode_);

    // A Byzantine Peacock primary may equivocate; trusted primaries cannot
    // be flagged (tests assert this invariant).
    if (HasByz(kByzEquivocate) && mode_ == SeeMoReMode::kPeacock) {
      Batch alt = Batch::Noop();
      const Bytes alt_encoded = alt.Encode();
      const Digest alt_digest = Digest::Of(alt_encoded);
      SmPrepareMsg prep_a{mode8, view_, seq, digest, Signature(), encoded};
      SmPrepareMsg prep_b{mode8, view_, seq, alt_digest, Signature(),
                          alt_encoded};
      prep_a.sig = signer_.Sign(prep_a.Header());
      prep_b.sig = signer_.Sign(prep_b.Header());
      ChargeSign(2);
      const Bytes msg_a = prep_a.ToMessage();
      const Bytes msg_b = prep_b.ToMessage();
      const std::vector<PrincipalId> all = config_.AllReplicas();
      for (size_t i = 0; i < all.size(); ++i) {
        if (all[i] == id_) continue;
        SendTo(all[i], i % 2 == 0 ? msg_a : msg_b);
      }
      continue;
    }

    ChargeSign();
    SmPrepareMsg prepare{mode8, view_, seq, digest, Signature(), encoded};
    prepare.sig = signer_.Sign(prepare.Header());

    SlotCore& slot = log_.Slot(seq);
    slot.batch = std::move(batch);
    slot.has_batch = true;
    slot.digest = digest;
    slot.view = view_;
    slot.mode = mode_;
    slot.primary_sig = prepare.sig;

    // In every mode the proposal is multicast to ALL replicas (Algorithm 1
    // line 8, Algorithm 2 line 9, §5.3 change #1).
    SendToMany(config_.AllReplicas(), prepare.ToMessage());

    if (mode_ == SeeMoReMode::kLion) {
      RecordVote(slot.plain_votes, digest, id_);  // the primary counts itself
    } else if (mode_ == SeeMoReMode::kPeacock) {
      // Peacock primary's pre-prepare does not count as a prepare echo;
      // it waits for 2m echoes from the other proxies.
    }
  }
}

void SeeMoReReplica::HandlePrepare(PrincipalId from, SmPrepareMsg msg) {
  const SeeMoReMode msg_mode = static_cast<SeeMoReMode>(msg.mode);
  if (from != config_.PrimaryOf(msg_mode, msg.view)) return;
  if (msg.seq <= ckpt_.stable_seq() || msg.seq > ckpt_.stable_seq() + window_) {
    return;
  }

  // Fast-forward: a valid prepare signed by the TRUSTED primary of a higher
  // view proves that view became active (Lion/Dog only; a Peacock primary is
  // untrusted, so backups wait for the transferer's NEW-VIEW instead).
  // Proposal signature, batch digest and per-request client signatures are
  // all pure functions of the multicast frame: verify/hash for real once
  // per process, memoized on the frame's buffer identity. The simulated
  // cost is charged by every receiver regardless (charge-vs-compute).
  const auto verify_proposal = [&] {
    return VerifyProposalSig(msg_mode, msg.view, msg.seq, msg.digest, msg.sig);
  };
  if (msg_mode != SeeMoReMode::kPeacock && msg.view > view_ &&
      ModeForView(msg.view) == msg_mode) {
    ChargeVerify();
    if (!FrameVerifyMemoized(from, kSmPrepare, verify_proposal)) return;
    EnterView(msg.view, msg_mode);
  } else if (msg_mode != mode_ || msg.view != view_ || in_view_change_) {
    // A Peacock prepare for a higher view is not self-certifying, but it is
    // a hint that a view change happened while we were away (crash/recover):
    // ask the sender to relay the transferer's NEW-VIEW.
    if (msg.view > view_) RequestNewViewFrom(from);
    return;
  } else {
    ChargeVerify();
    if (!FrameVerifyMemoized(from, kSmPrepare, verify_proposal)) return;
  }

  ChargeHash(msg.batch.size());
  if (FrameFieldDigest(msg.batch, msg.batch_offset) != msg.digest) return;
  Result<Batch> batch_or = Batch::Decode(msg.batch);
  if (!batch_or.ok()) return;
  Batch batch = std::move(batch_or).value();

  // Peacock proxies re-validate client requests (the primary is untrusted).
  // Lion/Dog backups trust the primary's validation (§5.1) — one of
  // SeeMoRe's savings over PBFT.
  if (mode_ == SeeMoReMode::kPeacock && IsProxyNow()) {
    ChargeVerify(static_cast<int>(batch.size()));
    for (size_t i = 0; i < batch.requests.size(); ++i) {
      const Request& request = batch.requests[i];
      if (!FrameVerifyMemoized(
              request.client,
              (static_cast<uint32_t>(kSmPrepare) << 16) |
                  static_cast<uint32_t>(i),
              [&] { return request.VerifySignature(*keystore_); })) {
        return;
      }
    }
  }

  SlotCore& slot = log_.Slot(msg.seq);
  if (slot.has_batch) {
    // At most one proposal per (view, seq): equivocation defense.
    if (slot.view == msg.view && slot.digest != msg.digest) return;
    if (slot.view == msg.view && slot.digest == msg.digest) return;  // dup
  }
  slot.batch = std::move(batch);
  slot.has_batch = true;
  slot.digest = msg.digest;
  slot.view = msg.view;
  slot.mode = mode_;
  slot.primary_sig = msg.sig;

  switch (mode_) {
    case SeeMoReMode::kLion: {
      // <ACCEPT, v, n, d, r>: unsigned, to the trusted primary only
      // (Algorithm 1 line 11).
      Digest vote = slot.digest;
      if (HasByz(kByzWrongVotes)) vote.data()[0] ^= 0xff;
      if (config_.lion_sign_accepts) {
        ChargeSign();  // ablation: what unsigned accepts save (§5.1)
      } else {
        ChargeMac();
      }
      SmAcceptPlainMsg accept{static_cast<uint8_t>(mode_), view_, msg.seq,
                              vote, id_};
      SendTo(current_primary(), accept.ToMessage());
      ArmViewTimer();
      break;
    }
    case SeeMoReMode::kDog:
    case SeeMoReMode::kPeacock: {
      if (IsProxyNow()) {
        SendSignedAccept(msg.seq, slot);
        ArmViewTimer();
        CheckProxyCommit(msg.seq, slot);
      }
      // Passive nodes just keep the batch; they execute on INFORMs.
      break;
    }
  }
}

void SeeMoReReplica::SendSignedAccept(uint64_t seq, SlotCore& slot) {
  if (slot.accept_sent) return;
  slot.accept_sent = true;
  Digest vote = slot.digest;
  if (HasByz(kByzWrongVotes)) vote.data()[0] ^= 0xff;
  ChargeSign();
  SmAcceptSignedMsg accept;
  accept.mode = static_cast<uint8_t>(mode_);
  accept.view = view_;
  accept.seq = seq;
  accept.digest = vote;
  accept.voter = id_;
  accept.sig = signer_.Sign(accept.Header(SmAcceptSignedMsg::kDomain));
  SendToMany(Proxies(), accept.ToMessage());
  RecordVote(slot.accept_votes, vote, id_, accept.sig);
}

void SeeMoReReplica::HandleAcceptPlain(PrincipalId from, SmAcceptPlainMsg msg) {
  const SeeMoReMode msg_mode = static_cast<SeeMoReMode>(msg.mode);
  if (msg_mode != SeeMoReMode::kLion || mode_ != SeeMoReMode::kLion) return;
  if (msg.view != view_ || !IsPrimary() || in_view_change_) return;
  if (msg.voter != from || !IsReplicaId(msg.voter)) return;
  SlotCore* found = log_.Find(msg.seq);
  if (found == nullptr || !found->has_batch) return;
  SlotCore& slot = *found;
  // The tracker sees every vote (conflicting ones flag the equivocator);
  // only votes matching the proposal count toward the quorum.
  RecordVote(slot.plain_votes, msg.digest, msg.voter);
  if (msg.digest != slot.digest) return;
  if (config_.lion_sign_accepts) ChargeVerify();  // ablation (§5.1)
  if (static_cast<int>(slot.plain_votes.Count(slot.digest)) < CommitQuorum()) {
    return;
  }
  if (slot.has_commit_sig) return;  // commit already broadcast in this view

  // <<COMMIT, v, n, d>_σp, µ> to all replicas (Algorithm 1 lines 13-15).
  ChargeSign();
  SmCommitPrimaryMsg commit;
  commit.mode = static_cast<uint8_t>(mode_);
  commit.view = view_;
  commit.seq = msg.seq;
  commit.digest = slot.digest;
  commit.sig = signer_.Sign(commit.Header());
  commit.batch = slot.batch.Encode();
  slot.commit_sig = commit.sig;
  slot.has_commit_sig = true;
  SendToMany(config_.AllReplicas(), commit.ToMessage());
  CommitSlot(msg.seq, slot, /*replies=*/true, /*informs=*/false);
}

void SeeMoReReplica::HandleCommitPrimary(PrincipalId from,
                                         SmCommitPrimaryMsg msg) {
  const SeeMoReMode msg_mode = static_cast<SeeMoReMode>(msg.mode);
  if (msg_mode != SeeMoReMode::kLion) return;
  if (from != config_.TrustedPrimary(msg.view)) return;
  if (msg.seq <= ckpt_.stable_seq()) return;

  ChargeVerify();
  if (!FrameVerifyMemoized(from, kSmCommitPrimary, [&] {
        return msg.VerifySignature(*keystore_, from);
      })) {
    return;
  }

  // A signed commit from the trusted primary of a higher view also proves
  // that view is active.
  if (msg.view > view_ && ModeForView(msg.view) == msg_mode) {
    EnterView(msg.view, msg_mode);
  } else if (mode_ != SeeMoReMode::kLion || msg.view != view_) {
    return;
  }

  SlotCore& slot = log_.Slot(msg.seq);
  if (slot.committed) return;
  // "Even if the replica has not received a prepare message ... it considers
  // the request as committed" — the commit carries µ (§5.1).
  if (!slot.has_batch || slot.digest != msg.digest) {
    ChargeHash(msg.batch.size());
    if (FrameFieldDigest(msg.batch, msg.batch_offset) != msg.digest) return;
    Result<Batch> batch_or = Batch::Decode(msg.batch);
    if (!batch_or.ok()) return;
    slot.batch = std::move(batch_or).value();
    slot.has_batch = true;
    slot.digest = msg.digest;
    slot.view = msg.view;
    slot.mode = msg_mode;
  }
  slot.commit_sig = msg.sig;
  slot.has_commit_sig = true;
  CommitSlot(msg.seq, slot, /*replies=*/false, /*informs=*/false);
}

void SeeMoReReplica::HandleAcceptSigned(PrincipalId from,
                                        SmAcceptSignedMsg msg) {
  const SeeMoReMode msg_mode = static_cast<SeeMoReMode>(msg.mode);
  if (msg.view > view_) RequestNewViewFrom(from);
  if (msg_mode != mode_ || msg.view != view_ || in_view_change_) return;
  if (mode_ == SeeMoReMode::kLion) return;
  if (msg.voter != from || !config_.IsProxy(msg.voter, msg.view)) return;
  if (!IsProxyNow() && !(mode_ == SeeMoReMode::kDog && IsPrimary())) return;
  if (msg.seq <= ckpt_.stable_seq() || msg.seq > ckpt_.stable_seq() + window_) {
    return;
  }
  ChargeVerify();
  if (!FrameVerifyMemoized(msg.voter, kSmAcceptSigned,
                           [&] { return msg.Verify(*keystore_); })) {
    return;
  }
  SlotCore& slot = log_.Slot(msg.seq);
  RecordVote(slot.accept_votes, msg.digest, msg.voter, msg.sig);
  CheckProxyCommit(msg.seq, slot);
}

void SeeMoReReplica::CheckProxyCommit(uint64_t seq, SlotCore& slot) {
  if (!slot.has_batch) return;
  const int quorum = CommitQuorum();  // 2m+1

  if (mode_ == SeeMoReMode::kDog) {
    // Dog commits directly at 2m+1 signed accepts (2 phases; the commit
    // message only helps lagging proxies catch up, Algorithm 2 lines 13-17).
    if (static_cast<int>(slot.accept_votes.Count(slot.digest)) < quorum) {
      return;
    }
    // NOTE: fall through even when slot.committed — the commit vote below
    // must still go out for peers running the catch-up path.
    if (!slot.commit_sent) {
      slot.commit_sent = true;
      ChargeSign();
      SmCommitVoteMsg commit;
      commit.mode = static_cast<uint8_t>(mode_);
      commit.view = view_;
      commit.seq = seq;
      commit.digest = slot.digest;
      commit.voter = id_;
      commit.sig = signer_.Sign(commit.Header(SmCommitVoteMsg::kDomain));
      SendToMany(Proxies(), commit.ToMessage());
    }
    CommitSlot(seq, slot, /*replies=*/true, /*informs=*/true);
    return;
  }

  // Peacock: PBFT phases among the proxies.
  if (!slot.prepared) {
    // pre-prepare + 2m matching prepare echoes => prepared.
    if (static_cast<int>(slot.accept_votes.Count(slot.digest)) <
        2 * config_.m) {
      return;
    }
    slot.prepared = true;
    if (!slot.commit_sent) {
      slot.commit_sent = true;
      Digest vote = slot.digest;
      if (HasByz(kByzWrongVotes)) vote.data()[0] ^= 0xff;
      ChargeSign();
      SmCommitVoteMsg commit;
      commit.mode = static_cast<uint8_t>(mode_);
      commit.view = view_;
      commit.seq = seq;
      commit.digest = vote;
      commit.voter = id_;
      commit.sig = signer_.Sign(commit.Header(SmCommitVoteMsg::kDomain));
      SendToMany(Proxies(), commit.ToMessage());
      RecordVote(slot.commit_votes, vote, id_, commit.sig);
    }
  }
  if (slot.prepared &&
      static_cast<int>(slot.commit_votes.Count(slot.digest)) >= quorum) {
    CommitSlot(seq, slot, /*replies=*/true, /*informs=*/true);
  }
}

void SeeMoReReplica::HandleCommitVote(PrincipalId from, SmCommitVoteMsg msg) {
  const SeeMoReMode msg_mode = static_cast<SeeMoReMode>(msg.mode);
  if (msg.view > view_) RequestNewViewFrom(from);
  if (msg_mode != mode_ || msg.view != view_ || in_view_change_) return;
  if (mode_ == SeeMoReMode::kLion) return;
  if (msg.voter != from || !config_.IsProxy(msg.voter, msg.view)) return;
  if (!IsProxyNow()) return;
  if (msg.seq <= ckpt_.stable_seq() || msg.seq > ckpt_.stable_seq() + window_) {
    return;
  }
  ChargeVerify();
  if (!FrameVerifyMemoized(msg.voter, kSmCommitVote,
                           [&] { return msg.Verify(*keystore_); })) {
    return;
  }
  SlotCore& slot = log_.Slot(msg.seq);
  RecordVote(slot.commit_votes, msg.digest, msg.voter, msg.sig);

  if (mode_ == SeeMoReMode::kDog) {
    // Catch-up: m+1 matching commits prove at least one non-faulty proxy
    // committed (§5.2).
    if (!slot.committed && slot.has_batch && slot.digest == msg.digest &&
        static_cast<int>(slot.commit_votes.Count(msg.digest)) >=
            config_.m + 1) {
      CommitSlot(msg.seq, slot, /*replies=*/true, /*informs=*/true);
    }
    return;
  }
  CheckProxyCommit(msg.seq, slot);
}

void SeeMoReReplica::HandleInform(PrincipalId from, SmInformMsg msg) {
  const SeeMoReMode msg_mode = static_cast<SeeMoReMode>(msg.mode);
  if (msg_mode != mode_ || mode_ == SeeMoReMode::kLion) return;
  if (msg.view > view_) RequestNewViewFrom(from);
  if (msg.view != view_) return;
  if (msg.voter != from || !config_.IsProxy(msg.voter, msg.view)) return;
  if (msg.seq <= ckpt_.stable_seq()) return;
  ChargeVerify();
  if (!FrameVerifyMemoized(msg.voter, kSmInform,
                           [&] { return msg.Verify(*keystore_); })) {
    return;
  }
  SlotCore& slot = log_.Slot(msg.seq);
  RecordVote(slot.inform_votes, msg.digest, msg.voter);
  // Dog: 2m+1 matching INFORMs; Peacock: m+1 (§5.2 / §5.3).
  const int needed =
      mode_ == SeeMoReMode::kDog ? 2 * config_.m + 1 : config_.m + 1;
  if (!slot.committed && slot.has_batch && slot.digest == msg.digest &&
      static_cast<int>(slot.inform_votes.Count(msg.digest)) >= needed) {
    CommitSlot(msg.seq, slot, /*replies=*/false, /*informs=*/false);
  }
}

void SeeMoReReplica::CommitSlot(uint64_t seq, SlotCore& slot, bool replies,
                                bool informs) {
  if (slot.committed) return;
  commits().MarkCommitted(slot);
  if (informs) SendInform(seq, slot);
  std::vector<ExecutedRequest> executed = commits().Execute(seq, slot.batch);
  for (const ExecutedRequest& ex : executed) {
    if (replies && !(ex.duplicate && ex.result.empty())) SendReply(ex);
  }
  MaybeCheckpoint();
  RestartOrDisarmViewTimer();
  if (IsPrimary() && !in_view_change_) TryPropose();
}

void SeeMoReReplica::SendReply(const ExecutedRequest& executed) {
  Reply reply;
  reply.mode = static_cast<uint8_t>(mode_);
  reply.view = view_;
  reply.timestamp = executed.request.timestamp;
  reply.replica = id_;
  reply.result = executed.result;
  if (HasByz(kByzLieToClients) && !reply.result.empty()) {
    reply.result[0] ^= 0xff;
  }
  reply.Sign(signer_);
  ChargeSign();  // replies are signed in every SeeMoRe mode (§5.1)
  SendTo(executed.request.client, reply.ToMessage());
}

void SeeMoReReplica::SendInform(uint64_t seq, const SlotCore& slot) {
  ChargeSign();
  SmInformMsg inform;
  inform.mode = static_cast<uint8_t>(mode_);
  inform.view = view_;
  inform.seq = seq;
  inform.digest = slot.digest;
  inform.voter = id_;
  inform.sig = signer_.Sign(inform.Header(SmInformMsg::kDomain));
  SendToMany(PassiveNodes(), inform.ToMessage());
}

// ---------------------------------------------------------------------------
// Checkpoints / state transfer
// ---------------------------------------------------------------------------

void SeeMoReReplica::MaybeCheckpoint() {
  const uint64_t executed = exec_.last_executed();
  if (!ckpt_.Due(executed)) return;
  ckpt_.NoteTaken(executed);
  Bytes snapshot = exec_.Snapshot();
  ChargeHash(snapshot.size());
  const Digest digest = Digest::Of(snapshot);
  durable().SaveSnapshot(executed, digest, snapshot);
  ckpt_.Buffer(executed, digest, std::move(snapshot));

  // Lion/Dog: only the trusted primary's signed checkpoint certifies
  // (§5.1 "State Transfer"). Peacock: proxies run quorum checkpoints.
  const bool emitter = mode_ == SeeMoReMode::kPeacock
                           ? IsProxyNow()
                           : IsPrimary();
  if (!emitter) return;
  CheckpointMsg msg;
  msg.seq = executed;
  msg.state_digest = digest;
  msg.replica = id_;
  ChargeSign();
  msg.Sign(signer_);
  SendToMany(config_.AllReplicas(), FrameMessage(kSmCheckpoint, msg));
  CountCheckpointVote(msg);
}

void SeeMoReReplica::HandleCheckpoint(PrincipalId from, CheckpointMsg msg) {
  if (msg.replica != from || !IsReplicaId(from)) return;
  if (msg.seq <= ckpt_.stable_seq()) return;
  ChargeVerify();
  if (!FrameVerifyMemoized(msg.replica, kSmCheckpoint,
                           [&] { return msg.Verify(*keystore_); })) {
    return;
  }
  CountCheckpointVote(msg);
  // A trusted signer's checkpoint ahead of us is authoritative evidence we
  // fell behind; untrusted signers only trigger a fetch when the stability
  // quorum path (CountCheckpointVote -> AdvanceStable) already ran.
  if (config_.IsTrusted(msg.replica) && msg.seq > exec_.last_executed()) {
    RequestStateFrom(msg.replica);
  }
}

void SeeMoReReplica::CountCheckpointVote(const CheckpointMsg& msg) {
  const auto& signers = ckpt_.AddVote(msg);

  // Stability rule: one trusted signer suffices (it cannot lie), else a
  // 2m+1 quorum of public signers (at least m+1 honest).
  bool stable = false;
  for (const auto& [signer, m] : signers) {
    if (config_.IsTrusted(signer)) {
      stable = true;
      break;
    }
  }
  if (!stable && static_cast<int>(signers.size()) >= 2 * config_.m + 1) {
    stable = true;
  }
  if (!stable) return;

  CheckpointCert cert;
  PrincipalId helper = id_;
  for (const auto& [signer, m] : signers) {
    cert.Add(m);
    if (signer != id_) helper = signer;
  }
  AdvanceStable(msg.seq, msg.state_digest, std::move(cert), helper);
}

bool SeeMoReReplica::VerifyCheckpointCert(const CheckpointCert& cert) const {
  if (cert.IsGenesis()) return true;
  if (!cert.Verify(*keystore_, 1,
                   [this](PrincipalId r) { return IsReplicaId(r); })) {
    return false;
  }
  int trusted = 0;
  int untrusted = 0;
  std::set<PrincipalId> seen;
  for (const CheckpointMsg& msg : cert.msgs()) {
    if (!seen.insert(msg.replica).second) continue;
    if (config_.IsTrusted(msg.replica)) {
      ++trusted;
    } else {
      ++untrusted;
    }
  }
  return trusted >= 1 || untrusted >= 2 * config_.m + 1;
}

void SeeMoReReplica::AdvanceStable(uint64_t seq, const Digest& digest,
                                   CheckpointCert cert, PrincipalId helper) {
  if (seq <= ckpt_.stable_seq()) return;
  durable().NoteStable(seq, cert);
  const bool installed = ckpt_.Advance(seq, digest, std::move(cert));
  if (!installed && exec_.last_executed() < seq && helper != id_) {
    RequestStateFrom(helper);
  }
  log_.Reclaim(seq);
  NoteCheckpointGc();  // scratch arena rewinds at the next message boundary
  if (IsPrimary() && !in_view_change_) TryPropose();
}

void SeeMoReReplica::RequestStateFrom(PrincipalId target) {
  if (target == id_) return;
  if (now() - last_state_request_ < Millis(20)) return;
  last_state_request_ = now();
  ++stats_.state_transfers;
  StateRequestMsg request{exec_.last_executed()};
  SendTo(target, request.ToMessage(kSmStateRequest));
}

void SeeMoReReplica::RequestNewViewFrom(PrincipalId target) {
  if (target == id_ || !IsReplicaId(target)) return;
  if (now() - last_nv_request_ < Millis(20)) return;
  last_nv_request_ = now();
  NewViewRequestMsg request{view_};
  SendTo(target, request.ToMessage());
}

void SeeMoReReplica::HandleNewViewRequest(PrincipalId from,
                                          NewViewRequestMsg msg) {
  // Only useful when we actually hold a NEW-VIEW newer than the requester's
  // view. The relayed frame is verified end-to-end by the receiver
  // (HandleNewView), so no further validation is needed here. The request is
  // unsigned and the stored frame can be large, so rate-limit per peer: an
  // honest laggard self-limits to one request per 20ms anyway, while a
  // Byzantine spammer gets at most one relay per window instead of
  // per-request bandwidth amplification.
  if (msg.view >= view_ || last_new_view_frame_.size() == 0) return;
  auto [it, first_request] = last_nv_relay_.emplace(from, -Seconds(1));
  if (!first_request && now() - it->second < Millis(20)) return;
  it->second = now();
  SendTo(from, last_new_view_frame_);
}

void SeeMoReReplica::HandleStateRequest(PrincipalId from, StateRequestMsg msg) {
  if (!ckpt_.has_stable_snapshot() ||
      ckpt_.stable_seq() <= msg.last_executed) {
    return;
  }
  StateResponseMsg response;
  response.cert = ckpt_.stable_cert();
  response.snapshot = ckpt_.stable_snapshot();
  SendTo(from, response.ToMessage(kSmStateResponse));
}

void SeeMoReReplica::HandleStateResponse(PrincipalId from,
                                         StateResponseMsg msg) {
  (void)from;
  CheckpointCert cert = std::move(msg.cert);
  Bytes snapshot = std::move(msg.snapshot);
  if (cert.IsGenesis() || cert.seq() <= exec_.last_executed()) return;
  ChargeVerify(static_cast<int>(cert.msgs().size()));
  if (!VerifyCheckpointCert(cert)) return;
  ChargeHash(snapshot.size());
  if (Digest::Of(snapshot) != cert.state_digest()) return;
  const uint64_t seq = cert.seq();
  if (!exec_.Restore(snapshot, seq).ok()) return;
  const Digest digest = cert.state_digest();
  // A state transfer is also a durability event: without persisting the
  // received checkpoint, a later restart would replay a log with a hole
  // below it and come back needlessly far behind.
  durable().SaveSnapshot(seq, digest, snapshot);
  durable().NoteStable(seq, cert);
  ckpt_.InstallRestored(seq, digest, std::move(cert), std::move(snapshot));
  log_.Reclaim(seq);
  NoteCheckpointGc();  // scratch arena rewinds at the next message boundary
}

void SeeMoReReplica::OnDurableRestore(const RecoveredImage& image) {
  // Rejoin in the last durably-entered view: voting in an older view after
  // a restart could double-vote against the pre-crash incarnation.
  if (image.has_view) {
    view_ = image.view;
    mode_ = static_cast<SeeMoReMode>(image.mode);
  }
  // The newest CERTIFIED checkpoint restores as stable; newer certless
  // snapshots re-enter the tracker as buffered, exactly as on the cutting
  // path, so the stability vote flow resumes where it stopped.
  if (const storage::RecoveredSnapshot* stable = image.LatestStable()) {
    ckpt_.InstallRestored(stable->seq, stable->digest, stable->cert,
                          stable->bytes);
    log_.Reclaim(stable->seq);
  }
  for (const auto& snap : image.snapshots) {
    if (snap.seq > ckpt_.stable_seq()) {
      ckpt_.Buffer(snap.seq, snap.digest, snap.bytes);
    }
  }
  if (const storage::RecoveredSnapshot* latest = image.Latest()) {
    if (latest->seq > ckpt_.last_checkpoint_seq()) {
      ckpt_.NoteTaken(latest->seq);
    }
  }
}

}  // namespace seemore
