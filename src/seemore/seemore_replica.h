// SeeMoRe replica: the paper's hybrid fault-tolerant protocol (§5) in all
// three operating modes, with dynamic mode switching (§5.4).
//
//   Lion (§5.1)    trusted primary, all N = 3m+2c+1 replicas participate,
//                  2 phases, O(n) messages, quorum 2m+c+1. Accepts are
//                  UNSIGNED (they flow only to the trusted primary);
//                  prepares/commits are signed by the primary.
//   Dog (§5.2)     trusted primary assigns sequence numbers, then 3m+1
//                  public proxies agree among themselves (signed accepts,
//                  quorum 2m+1, 2 phases, O(n²) in the proxy set). Other
//                  nodes execute after 2m+1 matching INFORMs.
//   Peacock (§5.3) PBFT among the 3m+1 proxies (untrusted primary,
//                  3 phases, quorum 2m+1), pre-prepare broadcast to all
//                  nodes, m+1 matching INFORMs at passive nodes, and a
//                  trusted *transferer* running view changes.
//
// View changes follow §5.1-§5.3: trusted new primaries (Lion/Dog) and the
// trusted transferer (Peacock) do not embed view-change proof sets in
// NEW-VIEW messages — the paper's headline saving — because their own
// signature on each re-proposed entry is sufficient authority.
//
// Mode switching (§5.4): a trusted replica multicasts a signed
// <MODE-CHANGE, v+1, π'> and the protocol performs a view change whose
// NEW-VIEW is issued under the new mode by the new mode's authority.
//
// All wire parsing goes through the typed codecs in wire/messages.h; all
// network/timer access goes through the interfaces in net/transport.h.

#ifndef SEEMORE_SEEMORE_SEEMORE_REPLICA_H_
#define SEEMORE_SEEMORE_SEEMORE_REPLICA_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "consensus/checkpoint.h"
#include "consensus/instance_log.h"
#include "consensus/primary_pipeline.h"
#include "consensus/proofs.h"
#include "consensus/replica_base.h"
#include "wire/messages.h"

namespace seemore {

class SeeMoReReplica : public ReplicaBase {
 public:
  SeeMoReReplica(Transport* transport, TimerService* timers,
                 const KeyStore* keystore, CryptoMemo* memo, PrincipalId id,
                 const ClusterConfig& config,
                 std::unique_ptr<StateMachine> state_machine,
                 const CostModel& costs);

  SeeMoReMode mode() const { return mode_; }
  uint64_t view() const { return view_; }
  bool in_view_change() const { return in_view_change_; }
  uint64_t last_executed() const { return exec_.last_executed(); }
  uint64_t stable_checkpoint() const { return ckpt_.stable_seq(); }
  PrincipalId current_primary() const {
    return config_.PrimaryOf(mode_, view_);
  }
  /// Diagnostics: slots proposed but not yet committed (tests, debugging).
  int uncommitted_slots() const { return log_.UncommittedSlots(); }
  /// Diagnostics: live instance-log slots (property tests bound this).
  size_t log_occupancy() const { return log_.occupied(); }
  bool IsPrimary() const { return current_primary() == id_; }

  /// Dynamic mode switching (§5.4). Must be invoked on the trusted replica
  /// that is the authority for view v+1 under `new_mode` (the new primary
  /// for Lion/Dog, the transferer for Peacock); returns
  /// FailedPrecondition otherwise. The switch multicasts a signed
  /// MODE-CHANGE and drives a view change into the new mode.
  Status RequestModeSwitch(SeeMoReMode new_mode);

  /// The trusted authority for view `v` under `mode` (primary or transferer).
  PrincipalId SwitchAuthority(SeeMoReMode mode, uint64_t v) const {
    return mode == SeeMoReMode::kPeacock ? config_.Transferer(v)
                                         : config_.TrustedPrimary(v);
  }

 protected:
  void HandleMessage(PrincipalId from, const Payload& frame) override;
  void OnDurableRestore(const RecoveredImage& image) override;

 private:
  /// A validated VIEW-CHANGE message, indexed for new-view computation.
  /// Entries are the typed wire entries (wire/messages.h SmVcEntry).
  struct VcRecord {
    SeeMoReMode mode = SeeMoReMode::kLion;
    uint64_t stable_seq = 0;
    CheckpointCert cert;
    std::map<uint64_t, SmVcEntry> prepares;      // Lion/Dog P set
    std::map<uint64_t, SmVcEntry> commits;       // Lion C set
    std::map<uint64_t, PreparedProof> proofs;    // Peacock prepared certs
    /// Highest view with evidence created under `mode` (for "last active
    /// view" determination within the current mode epoch).
    uint64_t LastActiveView(SeeMoReMode mode) const;
  };

  // ----- role helpers ----------------------------------------------------
  bool IsProxyNow() const {
    return config_.IsProxy(id_, view_);
  }
  std::vector<PrincipalId> Proxies() const { return config_.ProxySet(view_); }
  std::vector<PrincipalId> PassiveNodes() const;
  bool ParticipatesInAgreement() const;
  int CommitQuorum() const { return config_.CommitQuorum(mode_); }
  bool VerifyProposalSig(SeeMoReMode mode, uint64_t view, uint64_t seq,
                         const Digest& digest, const Signature& sig) const;
  /// Validity of a P-set entry: Lion/Dog entries are signed by that view's
  /// trusted primary (or new-view authority); Peacock entries are only
  /// self-certifying when signed by the trusted transferer — an untrusted
  /// Peacock primary's bare pre-prepare must come as a PreparedProof.
  bool VerifyVcPrepareEntry(const SmVcEntry& entry) const;

  // ----- normal case -----
  void HandleRequest(PrincipalId from, Request request);
  void PrimaryEnqueue(Request request);
  void TryPropose();
  void HandlePrepare(PrincipalId from, SmPrepareMsg msg);
  void HandleAcceptPlain(PrincipalId from, SmAcceptPlainMsg msg);
  void HandleAcceptSigned(PrincipalId from, SmAcceptSignedMsg msg);
  void HandleCommitPrimary(PrincipalId from, SmCommitPrimaryMsg msg);
  void HandleCommitVote(PrincipalId from, SmCommitVoteMsg msg);
  void HandleInform(PrincipalId from, SmInformMsg msg);
  void SendSignedAccept(uint64_t seq, SlotCore& slot);
  void CheckProxyCommit(uint64_t seq, SlotCore& slot);
  void CommitSlot(uint64_t seq, SlotCore& slot, bool replies, bool informs);
  void SendReply(const ExecutedRequest& executed);
  void SendInform(uint64_t seq, const SlotCore& slot);

  // ----- checkpoints / state transfer -----
  void MaybeCheckpoint();
  void HandleCheckpoint(PrincipalId from, CheckpointMsg msg);
  void CountCheckpointVote(const CheckpointMsg& msg);
  bool VerifyCheckpointCert(const CheckpointCert& cert) const;
  void AdvanceStable(uint64_t seq, const Digest& digest, CheckpointCert cert,
                     PrincipalId helper);
  void HandleStateRequest(PrincipalId from, StateRequestMsg msg);
  void HandleStateResponse(PrincipalId from, StateResponseMsg msg);
  void RequestStateFrom(PrincipalId target);

  // ----- view catch-up ----------------------------------------------------
  /// Called on protocol traffic for a view above ours that is not
  /// self-certifying (Peacock, where the primary is untrusted): ask the
  /// sender to relay the stored NEW-VIEW that activated its view.
  void RequestNewViewFrom(PrincipalId target);
  void HandleNewViewRequest(PrincipalId from, NewViewRequestMsg msg);

  // ----- view change / mode switch -----
  void ArmViewTimer();
  void RestartOrDisarmViewTimer();
  void StartViewChange(uint64_t new_view);
  SmViewChangeMsg BuildViewChangeMessage(uint64_t new_view) const;
  /// Semantic validation of a structurally-decoded VIEW-CHANGE (signatures,
  /// certificates, sender binding); returns the indexed record. `frame_id`
  /// is the delivered frame's buffer identity, keying the verify memo so n
  /// receivers of one multicast pay the real crypto once; pass 0 when the
  /// message did not arrive as a shared frame (own-message validation).
  Result<VcRecord> ValidateViewChange(SmViewChangeMsg msg, PrincipalId from,
                                      uint64_t frame_id) const;
  void HandleViewChange(PrincipalId from, SmViewChangeMsg msg);
  void MaybeJoinViewChange();
  /// Mode the protocol will run in view `v` (honours pending MODE-CHANGE).
  SeeMoReMode ModeForView(uint64_t v) const;
  /// Whether this replica issues the NEW-VIEW for `new_view`.
  bool IsNewViewAuthority(uint64_t new_view) const;
  bool ViewChangeQuorumReached(uint64_t new_view) const;
  void MaybeFormNewView(uint64_t new_view);
  void HandleNewView(PrincipalId from, SmNewViewMsg msg);
  void HandleModeChange(PrincipalId from, SmModeChangeMsg msg);
  void EnterView(uint64_t view, SeeMoReMode mode);
  bool IsReplicaId(PrincipalId r) const { return r >= 0 && r < config_.n(); }

  SeeMoReMode mode_;
  uint64_t view_ = 0;
  bool in_view_change_ = false;
  uint64_t vc_target_ = 0;
  uint64_t window_;

  /// The shared consensus core (consensus/): the slot log, the primary's
  /// proposal pipeline and the checkpoint state.
  InstanceLog log_;
  PrimaryPipeline pipeline_;
  CheckpointTracker ckpt_;

  std::map<uint64_t, std::map<PrincipalId, VcRecord>> vc_msgs_;
  /// view -> mode requested by a signed MODE-CHANGE for that view.
  std::map<uint64_t, SeeMoReMode> pending_mode_;

  EventId view_timer_ = 0;
  SimTime current_vc_timeout_ = 0;
  /// Last time we asked a peer for a snapshot (rate limit; a lost response
  /// must not wedge recovery).
  SimTime last_state_request_ = -Seconds(1);
  /// Last time we asked a peer to relay a NEW-VIEW (same rate-limit idea).
  SimTime last_nv_request_ = -Seconds(1);
  /// Per-peer rate limit on ANSWERING relay requests: NEW-VIEW-REQUEST is
  /// unsigned and the stored frame can be large, so without this a Byzantine
  /// peer could spam requests for bandwidth amplification.
  std::map<PrincipalId, SimTime> last_nv_relay_;
  /// The NEW-VIEW frame that activated the current view (empty when the view
  /// was entered some other way: genesis, trusted-primary fast-forward, or a
  /// durable restart). Kept verbatim so it can be relayed to replicas that
  /// slept through the view change — it is self-certifying (signed by the
  /// trusted authority), so relaying through untrusted peers is safe.
  Payload last_new_view_frame_;
};

}  // namespace seemore

#endif  // SEEMORE_SEEMORE_SEEMORE_REPLICA_H_
