// View changes (§5.1-§5.3) and dynamic mode switching (§5.4).
//
// Who sends VIEW-CHANGE messages depends on the current mode:
//   Lion:    every replica; the new trusted primary collects 2m+c+1
//            (including its own) and issues NEW-VIEW.
//   Dog:     every public-cloud node; the new trusted primary collects 2m+1
//            from the proxies of the last active view.
//   Peacock: the proxies; the trusted *transferer* t = v' mod S collects
//            2m+1 from the proxies of the last active view and issues the
//            NEW-VIEW itself (minimising new-view size and primary-shuffle
//            latency, §5.3).
//
// "Last active view" is derived from evidence: prepares/proofs are signed by
// the (trusted or quorum-backed) proposer of their view, so the highest view
// appearing in any collected entry is a sound lower bound that Byzantine
// senders cannot inflate.

#include "seemore/seemore_replica.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/logging.h"

namespace seemore {

uint64_t SeeMoReReplica::VcRecord::LastActiveView(SeeMoReMode mode) const {
  uint64_t last = 0;
  for (const auto& [seq, entry] : prepares) {
    if (entry.mode == mode) last = std::max(last, entry.view);
  }
  for (const auto& [seq, entry] : commits) {
    if (entry.mode == mode) last = std::max(last, entry.view);
  }
  for (const auto& [seq, proof] : proofs) {
    if (static_cast<SeeMoReMode>(proof.mode) == mode) {
      last = std::max(last, proof.view);
    }
  }
  return last;
}

SeeMoReMode SeeMoReReplica::ModeForView(uint64_t v) const {
  auto it = pending_mode_.find(v);
  return it != pending_mode_.end() ? it->second : mode_;
}

bool SeeMoReReplica::IsNewViewAuthority(uint64_t new_view) const {
  return SwitchAuthority(ModeForView(new_view), new_view) == id_;
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

void SeeMoReReplica::ArmViewTimer() {
  if (view_timer_ != 0 || in_view_change_) return;
  if (!ParticipatesInAgreement() || IsPrimary()) return;
  // Failure detection must not count our own CPU backlog against the
  // primary: right after a view change every node burns milliseconds
  // re-running agreement on the re-proposed log, and a timer that ignores
  // that work self-destructs the new view (view-change livelock).
  view_timer_ = StartTimer(current_vc_timeout_ + CpuBacklog(), [this] {
    view_timer_ = 0;
    StartViewChange(view_ + 1);
  });
}

void SeeMoReReplica::RestartOrDisarmViewTimer() {
  CancelTimer(view_timer_);
  // Progress observed: drop back from the post-view-change grace timeout.
  current_vc_timeout_ = config_.view_change_timeout;
  if (log_.UncommittedSlots() > 0) ArmViewTimer();
}

// ---------------------------------------------------------------------------
// VIEW-CHANGE emission and validation
// ---------------------------------------------------------------------------

SmViewChangeMsg SeeMoReReplica::BuildViewChangeMessage(
    uint64_t new_view) const {
  SmViewChangeMsg msg;
  msg.mode = static_cast<uint8_t>(mode_);
  msg.new_view = new_view;
  msg.stable_seq = ckpt_.stable_seq();
  msg.cert = ckpt_.stable_cert();

  // Classify every live slot by the mode it was created under. Slots can
  // outlive a mode switch (committed entries kept as evidence), so the sets
  // may mix modes; each entry is verified against its own signature domain.
  //   P set: trusted-primary/transferer-signed proposals (Lion, Dog, and
  //          transferer-re-proposed Peacock entries). The paper transmits
  //          them "without the request message µ"; we carry µ so the new
  //          primary can always re-propose without a fetch round (the same
  //          pragmatic choice BFT-SMaRt makes).
  //   C set: Lion primary-signed commits (§5.1).
  //   Proofs: Peacock prepared certificates (§5.3).
  const uint64_t stable = ckpt_.stable_seq();
  log_.ForEachAscending([&](uint64_t seq, const SlotCore& slot) {
    if (!slot.has_batch || seq <= stable) return;
    if (slot.mode == SeeMoReMode::kPeacock) return;
    SmVcEntry entry;
    entry.mode = slot.mode;
    entry.view = slot.view;
    entry.seq = seq;
    entry.digest = slot.digest;
    entry.batch = slot.batch;
    entry.sig = slot.primary_sig;
    msg.prepares.push_back(std::move(entry));
  });
  log_.ForEachAscending([&](uint64_t seq, const SlotCore& slot) {
    if (!slot.has_batch || seq <= stable ||
        slot.mode != SeeMoReMode::kLion || !slot.has_commit_sig) {
      return;
    }
    SmVcEntry entry;
    entry.mode = slot.mode;
    entry.view = slot.view;
    entry.seq = seq;
    entry.digest = slot.digest;
    entry.batch = slot.batch;
    entry.sig = slot.commit_sig;
    msg.commits.push_back(std::move(entry));
  });
  log_.ForEachAscending([&](uint64_t seq, const SlotCore& slot) {
    if (!slot.has_batch || seq <= stable ||
        slot.mode != SeeMoReMode::kPeacock || !slot.prepared) {
      return;
    }
    PreparedProof proof;
    proof.mode = static_cast<uint8_t>(slot.mode);
    proof.view = slot.view;
    proof.seq = seq;
    proof.digest = slot.digest;
    proof.batch = slot.batch;
    proof.primary_sig = slot.primary_sig;
    proof.prepares =
        slot.accept_votes.SignaturesFor(slot.digest).SortedEntries();
    msg.proofs.push_back(std::move(proof));
  });
  msg.sender = id_;
  return msg;
}

Result<SeeMoReReplica::VcRecord> SeeMoReReplica::ValidateViewChange(
    SmViewChangeMsg msg, PrincipalId from, uint64_t frame_id) const {
  if (msg.sender != from) {
    return Status::Corruption("view-change sender mismatch");
  }
  // Every verdict below is a pure function of the frame contents and the
  // cluster config, so n receivers of one multicast VIEW-CHANGE share the
  // real crypto through the memo. Slots index the frame's sets; the
  // charged simulated cost (HandleViewChange) is unaffected. frame_id 0
  // (own-message validation) computes everything for real.
  CryptoMemo& memo = *memo_;
  constexpr uint32_t kCertSlot = static_cast<uint32_t>(kSmViewChange) << 24;
  constexpr uint32_t kPrepareSlots = kCertSlot | (1u << 20);
  constexpr uint32_t kCommitSlots = kCertSlot | (2u << 20);
  constexpr uint32_t kProofSlots = kCertSlot | (3u << 20);

  VcRecord record;
  record.mode = static_cast<SeeMoReMode>(msg.mode);
  record.stable_seq = msg.stable_seq;
  if (!memo.Verify(frame_id, from, kCertSlot,
                   [&] { return VerifyCheckpointCert(msg.cert); })) {
    return Status::Corruption("invalid checkpoint cert in view-change");
  }
  if (!msg.cert.IsGenesis() && msg.cert.seq() < msg.stable_seq) {
    return Status::Corruption("checkpoint cert below claimed stable seq");
  }
  record.cert = std::move(msg.cert);

  for (size_t i = 0; i < msg.prepares.size(); ++i) {
    SmVcEntry& entry = msg.prepares[i];
    if (!memo.Verify(frame_id, from,
                     kPrepareSlots | static_cast<uint32_t>(i),
                     [&] { return VerifyVcPrepareEntry(entry); })) {
      return Status::Corruption("invalid prepare entry signature");
    }
    const uint64_t seq = entry.seq;
    record.prepares.emplace(seq, std::move(entry));
  }

  for (size_t i = 0; i < msg.commits.size(); ++i) {
    SmVcEntry& entry = msg.commits[i];
    if (entry.mode != SeeMoReMode::kLion) {
      return Status::Corruption("commit entries only exist in Lion");
    }
    const auto verify_commit_entry = [&] {
      const Bytes header =
          ProposalHeader(kDomainCommit, static_cast<uint8_t>(entry.mode),
                         entry.view, entry.seq, entry.digest);
      return keystore_->Verify(config_.TrustedPrimary(entry.view), header,
                               entry.sig);
    };
    if (!memo.Verify(frame_id, from, kCommitSlots | static_cast<uint32_t>(i),
                     verify_commit_entry)) {
      return Status::Corruption("invalid commit entry signature");
    }
    const uint64_t seq = entry.seq;
    record.commits.emplace(seq, std::move(entry));
  }

  for (size_t i = 0; i < msg.proofs.size(); ++i) {
    PreparedProof& proof = msg.proofs[i];
    const auto verify_proof = [&] {
      const SeeMoReMode proof_mode = static_cast<SeeMoReMode>(proof.mode);
      const PrincipalId proposer = config_.PrimaryOf(proof_mode, proof.view);
      const PrincipalId authority = SwitchAuthority(proof_mode, proof.view);
      const auto authorized = [this, &proof](PrincipalId r) {
        return config_.IsProxy(r, proof.view);
      };
      // Re-proposed entries are signed by the transferer, fresh ones by the
      // primary; accept either (see VerifyProposalSig).
      return proof.Verify(*keystore_, proposer, 2 * config_.m, authorized) ||
             (authority != proposer &&
              proof.Verify(*keystore_, authority, 2 * config_.m, authorized));
    };
    if (!memo.Verify(frame_id, from, kProofSlots | static_cast<uint32_t>(i),
                     verify_proof)) {
      return Status::Corruption("invalid prepared proof");
    }
    const uint64_t seq = proof.seq;
    record.proofs.emplace(seq, std::move(proof));
  }
  return record;
}

// ---------------------------------------------------------------------------
// View-change protocol
// ---------------------------------------------------------------------------

void SeeMoReReplica::StartViewChange(uint64_t new_view) {
  if (new_view <= view_ || (in_view_change_ && new_view <= vc_target_)) return;
  in_view_change_ = true;
  vc_target_ = new_view;
  ++stats_.view_changes_started;
  CancelTimer(view_timer_);

  // Who multicasts VIEW-CHANGE depends on the current mode (header comment).
  const bool sender_role =
      mode_ == SeeMoReMode::kLion
          ? true
          : (mode_ == SeeMoReMode::kDog ? !config_.IsTrusted(id_)
                                        : IsProxyNow());
  if (sender_role) {
    SmViewChangeMsg msg = BuildViewChangeMessage(new_view);
    SendToMany(config_.AllReplicas(), msg.ToMessage());
    // Own message, never a delivered frame: frame_id 0 skips the memo.
    Result<VcRecord> own = ValidateViewChange(std::move(msg), id_, 0);
    if (own.ok()) vc_msgs_[new_view][id_] = std::move(own).value();
  }
  if (IsNewViewAuthority(new_view)) MaybeFormNewView(new_view);

  current_vc_timeout_ = std::min<SimTime>(current_vc_timeout_ * 2, Seconds(2));
  view_timer_ = StartTimer(current_vc_timeout_ + CpuBacklog(), [this] {
    view_timer_ = 0;
    if (in_view_change_) StartViewChange(vc_target_ + 1);
  });
}

void SeeMoReReplica::HandleViewChange(PrincipalId from, SmViewChangeMsg msg) {
  // Check the target view before paying full validation.
  const uint64_t new_view = msg.new_view;
  if (new_view <= view_) return;

  ChargeVerify(2);  // cert + entry validation (amortized)
  Result<VcRecord> record_or =
      ValidateViewChange(std::move(msg), from, current_frame().id());
  if (!record_or.ok()) {
    SEEMORE_LOG(Debug) << "replica " << id_ << ": rejecting view-change from "
                       << from << ": " << record_or.status().ToString();
    return;
  }
  vc_msgs_[new_view][from] = std::move(record_or).value();
  MaybeJoinViewChange();
  if (IsNewViewAuthority(new_view)) MaybeFormNewView(new_view);
}

void SeeMoReReplica::MaybeJoinViewChange() {
  for (const auto& [target, records] : vc_msgs_) {
    if (target <= view_) continue;
    if (in_view_change_ && target <= vc_target_) continue;
    // One trusted suspicion suffices (trusted nodes never lie); otherwise
    // m+1 public senders guarantee at least one honest suspicion.
    int trusted = 0;
    int untrusted = 0;
    for (const auto& [sender, record] : records) {
      if (config_.IsTrusted(sender)) {
        ++trusted;
      } else {
        ++untrusted;
      }
    }
    if (trusted >= 1 || untrusted >= config_.m + 1) {
      if (ParticipatesInAgreement() || config_.IsTrusted(id_)) {
        StartViewChange(target);
      }
      return;
    }
  }
}

bool SeeMoReReplica::ViewChangeQuorumReached(uint64_t new_view) const {
  auto it = vc_msgs_.find(new_view);
  if (it == vc_msgs_.end()) return false;
  const auto& records = it->second;

  if (mode_ == SeeMoReMode::kLion) {
    return static_cast<int>(records.size()) >= 2 * config_.m + config_.c + 1;
  }

  // Dog/Peacock: 2m+1 view-changes from the proxies of the last active view
  // (§5.2). Evidence views cannot be inflated by Byzantine nodes, so the
  // maximum across records is a sound choice of "last active view".
  uint64_t last_active = 0;
  for (const auto& [sender, record] : records) {
    last_active = std::max(last_active, record.LastActiveView(mode_));
  }
  int count = 0;
  for (const auto& [sender, record] : records) {
    const bool eligible = last_active > 0
                              ? config_.IsProxy(sender, last_active)
                              : !config_.IsTrusted(sender);
    if (eligible) ++count;
  }
  return count >= 2 * config_.m + 1;
}

void SeeMoReReplica::MaybeFormNewView(uint64_t new_view) {
  if (view_ >= new_view || !IsNewViewAuthority(new_view)) return;
  if (!ViewChangeQuorumReached(new_view)) {
    SEEMORE_LOG(Debug) << "replica " << id_ << ": view-change quorum for "
                       << new_view << " not yet reached ("
                       << (vc_msgs_.count(new_view)
                               ? vc_msgs_[new_view].size()
                               : 0)
                       << " records)";
    return;
  }
  const SeeMoReMode target_mode = ModeForView(new_view);
  const auto& records = vc_msgs_[new_view];

  // l: latest stable checkpoint across the quorum; h: highest evidenced seq.
  uint64_t low = 0;
  PrincipalId helper = id_;
  uint64_t high = 0;
  for (const auto& [sender, record] : records) {
    const uint64_t cert_seq = record.cert.seq();
    if (cert_seq > low) {
      low = cert_seq;
      helper = sender;
    }
    if (!record.prepares.empty()) {
      high = std::max(high, record.prepares.rbegin()->first);
    }
    if (!record.commits.empty()) {
      high = std::max(high, record.commits.rbegin()->first);
    }
    if (!record.proofs.empty()) {
      high = std::max(high, record.proofs.rbegin()->first);
    }
  }
  low = std::max(low, ckpt_.stable_seq());

  // Candidate selection per sequence number (§5.1 steps 1-3, generalized
  // across modes). Priority: commit evidence > quorum of prepares > highest-
  // view prepare/proof > no-op.
  struct Candidate {
    bool committed = false;
    uint64_t view = 0;
    Digest digest;
    Batch batch;
    bool present = false;
  };
  std::map<uint64_t, Candidate> candidates;
  std::map<uint64_t, std::map<Digest, std::set<PrincipalId>>> prepare_support;

  for (const auto& [sender, record] : records) {
    for (const auto& [seq, entry] : record.commits) {
      if (seq <= low) continue;
      Candidate& cand = candidates[seq];
      if (!cand.committed || entry.view > cand.view) {
        cand.committed = true;
        cand.view = entry.view;
        cand.digest = entry.digest;
        cand.batch = entry.batch;
        cand.present = true;
      }
    }
    for (const auto& [seq, entry] : record.prepares) {
      if (seq <= low) continue;
      prepare_support[seq][entry.digest].insert(sender);
      Candidate& cand = candidates[seq];
      if (!cand.committed && (!cand.present || entry.view > cand.view)) {
        cand.view = entry.view;
        cand.digest = entry.digest;
        cand.batch = entry.batch;
        cand.present = true;
      }
    }
    for (const auto& [seq, proof] : record.proofs) {
      if (seq <= low) continue;
      Candidate& cand = candidates[seq];
      if (!cand.committed && (!cand.present || proof.view > cand.view)) {
        cand.view = proof.view;
        cand.digest = proof.digest;
        cand.batch = proof.batch;
        cand.present = true;
      }
    }
  }
  // Lion step 2: 2m+c+1 matching prepares imply the old primary may have
  // committed — promote to commit evidence.
  if (mode_ == SeeMoReMode::kLion) {
    for (auto& [seq, cand] : candidates) {
      if (cand.committed) continue;
      auto sup = prepare_support.find(seq);
      if (sup == prepare_support.end()) continue;
      for (const auto& [digest, senders] : sup->second) {
        if (static_cast<int>(senders.size()) >= 2 * config_.m + config_.c + 1 &&
            digest == cand.digest) {
          cand.committed = true;
        }
      }
    }
  }

  // Build the NEW-VIEW. C' only exists when the target mode is Lion; in
  // Dog/Peacock every entry is re-agreed by the proxies.
  const uint8_t mode8 = static_cast<uint8_t>(target_mode);
  std::vector<std::pair<uint64_t, Candidate>> commit_entries;
  std::vector<std::pair<uint64_t, Candidate>> prepare_entries;
  for (uint64_t seq = low + 1; seq <= high; ++seq) {
    auto it2 = candidates.find(seq);
    Candidate cand;
    if (it2 != candidates.end() && it2->second.present) {
      cand = it2->second;
    } else {
      cand.batch = Batch::Noop();
      cand.digest = cand.batch.ComputeDigest();
      cand.present = true;
    }
    if (target_mode == SeeMoReMode::kLion && cand.committed) {
      commit_entries.emplace_back(seq, std::move(cand));
    } else {
      prepare_entries.emplace_back(seq, std::move(cand));
    }
  }

  SmNewViewMsg nv;
  nv.mode = mode8;
  nv.new_view = new_view;
  nv.low = low;
  for (auto& [seq, cand] : commit_entries) {
    ChargeSign();
    SmNewViewEntry entry;
    entry.view = new_view;
    entry.seq = seq;
    entry.digest = cand.digest;
    entry.batch = cand.batch.Encode();
    entry.sig = signer_.Sign(
        ProposalHeader(kDomainCommit, mode8, new_view, seq, cand.digest));
    nv.commits.push_back(std::move(entry));
  }
  for (auto& [seq, cand] : prepare_entries) {
    ChargeSign();
    SmNewViewEntry entry;
    entry.view = new_view;
    entry.seq = seq;
    entry.digest = cand.digest;
    entry.batch = cand.batch.Encode();
    entry.sig = signer_.Sign(
        ProposalHeader(kDomainPrePrepare, mode8, new_view, seq, cand.digest));
    nv.prepares.push_back(std::move(entry));
  }
  // Sign last: the header binds the complete C'/P' sets (EntrySetDigest), so
  // an untrusted relayer cannot prune entries from the frame.
  ChargeSign();
  ChargeHash((nv.commits.size() + nv.prepares.size()) *
             (16 + Digest::kSize));
  nv.header_sig = signer_.Sign(nv.Header());
  const Payload nv_frame(nv.ToMessage());
  SendToMany(config_.AllReplicas(), nv_frame);

  // Install locally.
  EnterView(new_view, target_mode);
  last_new_view_frame_ = nv_frame;  // kept for relay to sleeping replicas
  ++stats_.view_changes_completed;
  if (target_mode != mode_) ++stats_.mode_changes;
  if (low > exec_.last_executed() && helper != id_) RequestStateFrom(helper);

  for (auto& [seq, cand] : commit_entries) {
    if (seq <= ckpt_.stable_seq() || exec_.HasCommitted(seq)) continue;
    // Re-proposed slots start from a clean sheet: votes from earlier views
    // or modes were signed under different headers and must never count
    // toward (or leak into proofs of) the new view.
    SlotCore& slot = log_.ResetSlot(seq);
    slot.batch = std::move(cand.batch);
    slot.has_batch = true;
    slot.digest = cand.digest;
    slot.view = new_view;
    slot.mode = target_mode;
    slot.commit_sig = signer_.Sign(
        ProposalHeader(kDomainCommit, mode8, new_view, seq, cand.digest));
    slot.has_commit_sig = true;
    CommitSlot(seq, slot, /*replies=*/IsPrimary(), /*informs=*/false);
  }
  for (auto& [seq, cand] : prepare_entries) {
    if (seq <= ckpt_.stable_seq()) continue;
    const SlotCore* prior = log_.Find(seq);
    const bool was_committed =
        (prior != nullptr && prior->committed) || exec_.HasCommitted(seq);
    SlotCore& slot = log_.ResetSlot(seq);
    slot.batch = std::move(cand.batch);
    slot.has_batch = true;
    slot.digest = cand.digest;
    slot.view = new_view;
    slot.mode = target_mode;
    slot.primary_sig = signer_.Sign(
        ProposalHeader(kDomainPrePrepare, mode8, new_view, seq, cand.digest));
    slot.committed = was_committed;
    if (target_mode == SeeMoReMode::kLion) {
      RecordVote(slot.plain_votes, slot.digest, id_);
    }
    if (target_mode != SeeMoReMode::kLion && IsProxyNow()) {
      SendSignedAccept(seq, slot);
    }
  }
  pipeline_.OverrideNextSeq(
      std::max<uint64_t>(high + 1, ckpt_.stable_seq() + 1));
  if (log_.UncommittedSlots() > 0) ArmViewTimer();
  if (IsPrimary()) TryPropose();
}

void SeeMoReReplica::HandleNewView(PrincipalId from, SmNewViewMsg msg) {
  const SeeMoReMode new_mode = static_cast<SeeMoReMode>(msg.mode);
  const uint64_t new_view = msg.new_view;
  if (new_view <= view_) return;
  // Only the trusted authority of the new (view, mode) may ISSUE a NEW-VIEW,
  // but any replica may RELAY one (view catch-up for replicas that slept
  // through the view change): the header signature covers the complete
  // C'/P' entry sets (SmNewViewMsg::EntrySetDigest), so a relayed frame is
  // exactly as trustworthy as a direct one — a relayer that prunes or
  // reorders entries breaks the signature.
  const PrincipalId authority = SwitchAuthority(new_mode, new_view);
  if (!config_.IsTrusted(authority)) return;
  const uint8_t mode8 = msg.mode;
  ChargeHash((msg.commits.size() + msg.prepares.size()) *
             (16 + Digest::kSize));  // EntrySetDigest recomputation
  ChargeVerify();
  if (!FrameVerifyMemoized(authority, kSmNewView, [&] {
        return msg.VerifySignature(*keystore_, authority);
      })) {
    return;
  }

  struct Entry {
    uint64_t seq;
    Digest digest;
    Batch batch;
    Signature sig;
  };
  // Batch-resolve every embedded batch digest in one memo pass: the first
  // receiver of this NEW-VIEW hashes them all, the rest reuse the answers.
  // Simulated charges stay per-entry inside the loops below, so a malformed
  // certificate still costs exactly what it did when digests were computed
  // one at a time.
  // Span table and digest results live in the replica's scratch arena
  // (reset at checkpoint boundaries): zero heap traffic per NEW-VIEW.
  const size_t n_spans = msg.commits.size() + msg.prepares.size();
  CryptoMemo::DigestSpan* spans =
      scratch_arena().AllocateArray<CryptoMemo::DigestSpan>(n_spans);
  size_t si = 0;
  for (const SmNewViewEntry& e : msg.commits) {
    spans[si++] = {e.batch_offset, e.batch.data(), e.batch.size()};
  }
  for (const SmNewViewEntry& e : msg.prepares) {
    spans[si++] = {e.batch_offset, e.batch.data(), e.batch.size()};
  }
  Digest* batch_digests = scratch_arena().AllocateArray<Digest>(n_spans);
  if (n_spans > 0) FrameFieldDigests(spans, n_spans, batch_digests);
  size_t span_idx = 0;

  std::vector<Entry> commit_entries;
  for (SmNewViewEntry& wire_entry : msg.commits) {
    Entry entry;
    entry.seq = wire_entry.seq;
    entry.digest = wire_entry.digest;
    entry.sig = wire_entry.sig;
    if (wire_entry.view != new_view) return;
    ChargeHash(wire_entry.batch.size());
    if (batch_digests[span_idx++] != entry.digest) return;
    Result<Batch> batch_or = Batch::Decode(wire_entry.batch);
    if (!batch_or.ok()) return;
    entry.batch = std::move(batch_or).value();
    ChargeVerify();
    if (!keystore_->Verify(authority,
                           ProposalHeader(kDomainCommit, mode8, new_view,
                                          entry.seq, entry.digest),
                           entry.sig)) {
      return;
    }
    commit_entries.push_back(std::move(entry));
  }
  std::vector<Entry> prepare_entries;
  for (SmNewViewEntry& wire_entry : msg.prepares) {
    Entry entry;
    entry.seq = wire_entry.seq;
    entry.digest = wire_entry.digest;
    entry.sig = wire_entry.sig;
    if (wire_entry.view != new_view) return;
    ChargeHash(wire_entry.batch.size());
    if (batch_digests[span_idx++] != entry.digest) return;
    Result<Batch> batch_or = Batch::Decode(wire_entry.batch);
    if (!batch_or.ok()) return;
    entry.batch = std::move(batch_or).value();
    ChargeVerify();
    if (!keystore_->Verify(authority,
                           ProposalHeader(kDomainPrePrepare, mode8, new_view,
                                          entry.seq, entry.digest),
                           entry.sig)) {
      return;
    }
    prepare_entries.push_back(std::move(entry));
  }

  EnterView(new_view, new_mode);
  last_new_view_frame_ = current_frame();  // kept for relay to laggards
  ++stats_.view_changes_completed;
  if (msg.low > exec_.last_executed()) RequestStateFrom(from);

  uint64_t high = msg.low;
  for (Entry& entry : commit_entries) {
    high = std::max(high, entry.seq);
    if (entry.seq <= ckpt_.stable_seq() || exec_.HasCommitted(entry.seq)) {
      continue;
    }
    SlotCore& slot = log_.ResetSlot(entry.seq);
    slot.batch = std::move(entry.batch);
    slot.has_batch = true;
    slot.digest = entry.digest;
    slot.view = new_view;
    slot.mode = new_mode;
    slot.commit_sig = entry.sig;
    slot.has_commit_sig = true;
    CommitSlot(entry.seq, slot, /*replies=*/false, /*informs=*/false);
  }
  for (Entry& entry : prepare_entries) {
    high = std::max(high, entry.seq);
    if (entry.seq <= ckpt_.stable_seq()) continue;
    // Already-committed sequence numbers still take part in the new view's
    // agreement (echoes/accepts/informs): peers that had NOT committed them
    // before the view change can only assemble their quorums if committed
    // nodes keep voting. The committed flag prevents re-execution.
    const bool already_committed = exec_.HasCommitted(entry.seq);
    const SlotCore* prior = log_.Find(entry.seq);
    const bool was_committed =
        (prior != nullptr && prior->committed) || already_committed;
    SlotCore& slot = log_.ResetSlot(entry.seq);
    slot.batch = std::move(entry.batch);
    slot.has_batch = true;
    slot.digest = entry.digest;
    slot.view = new_view;
    slot.mode = new_mode;
    slot.primary_sig = entry.sig;
    slot.committed = was_committed;
    if (already_committed && IsProxyNow() && mode_ != SeeMoReMode::kLion) {
      SendInform(entry.seq, slot);  // passive nodes may have missed them
    }
    switch (mode_) {
      case SeeMoReMode::kLion: {
        if (!IsPrimary()) {
          ChargeMac();
          SmAcceptPlainMsg accept{mode8, view_, entry.seq, slot.digest, id_};
          SendTo(current_primary(), accept.ToMessage());
        }
        break;
      }
      case SeeMoReMode::kDog:
      case SeeMoReMode::kPeacock:
        if (IsProxyNow()) {
          SendSignedAccept(entry.seq, slot);
          CheckProxyCommit(entry.seq, slot);
        }
        break;
    }
  }
  if (IsPrimary()) pipeline_.AdvanceNextSeq(high + 1);
  if (log_.UncommittedSlots() > 0 && !IsPrimary()) ArmViewTimer();
  if (IsPrimary()) TryPropose();
}

// ---------------------------------------------------------------------------
// Mode switching (§5.4)
// ---------------------------------------------------------------------------

Status SeeMoReReplica::RequestModeSwitch(SeeMoReMode new_mode) {
  if (crashed()) return Status::FailedPrecondition("replica crashed");
  if (new_mode == mode_) return Status::InvalidArgument("already in mode");
  const uint64_t new_view = view_ + 1;
  if (SwitchAuthority(new_mode, new_view) != id_) {
    return Status::FailedPrecondition(
        "mode switch must be requested on the new view's trusted authority");
  }
  ChargeSign();
  SmModeChangeMsg msg;
  msg.mode = static_cast<uint8_t>(new_mode);
  msg.new_view = new_view;
  msg.sender = id_;
  msg.sig = signer_.Sign(msg.Header());
  SendToMany(config_.AllReplicas(), msg.ToMessage());

  pending_mode_[new_view] = new_mode;
  StartViewChange(new_view);
  return Status::Ok();
}

void SeeMoReReplica::HandleModeChange(PrincipalId from, SmModeChangeMsg msg) {
  const SeeMoReMode new_mode = static_cast<SeeMoReMode>(msg.mode);
  if (msg.new_view <= view_) return;
  if (msg.sender != from || !config_.IsTrusted(msg.sender)) return;
  if (SwitchAuthority(new_mode, msg.new_view) != msg.sender) return;
  if (new_mode != SeeMoReMode::kLion && new_mode != SeeMoReMode::kDog &&
      new_mode != SeeMoReMode::kPeacock) {
    return;
  }
  ChargeVerify();
  if (!FrameVerifyMemoized(msg.sender, kSmModeChange,
                           [&] { return msg.VerifySignature(*keystore_); })) {
    return;
  }
  pending_mode_[msg.new_view] = new_mode;
  // A trusted replica ordered the switch: join the view change immediately.
  StartViewChange(msg.new_view);
}

void SeeMoReReplica::EnterView(uint64_t view, SeeMoReMode mode) {
  view_ = view;
  mode_ = mode;
  ClearProposerQuiescence();
  durable().NoteView(view, static_cast<uint8_t>(mode));
  in_view_change_ = false;
  vc_target_ = 0;
  CancelTimer(view_timer_);
  // Grace period: the re-proposed log needs a full re-agreement round under
  // post-view-change backlog before anyone may suspect the new primary.
  current_vc_timeout_ = config_.view_change_timeout * 3;
  // A view change may have nooped requests the admission table says were
  // handled; client retransmissions must be accepted afresh (the execution
  // engine still deduplicates anything that really committed).
  pipeline_.ForgetAdmissions();
  // Uncommitted slots from older views are superseded by the NEW-VIEW's
  // entries (or were re-proposed); drop them.
  log_.EraseUncommitted();
  for (auto it = vc_msgs_.begin(); it != vc_msgs_.end();) {
    it = it->first <= view ? vc_msgs_.erase(it) : std::next(it);
  }
  for (auto it = pending_mode_.begin(); it != pending_mode_.end();) {
    it = it->first <= view ? pending_mode_.erase(it) : std::next(it);
  }
}

}  // namespace seemore
