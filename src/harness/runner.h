// Closed-loop experiment runner reproducing the paper's methodology (§6):
// a population of clients, each waiting for its reply before issuing the
// next request; measured end-to-end throughput and latency after a warmup.

#ifndef SEEMORE_HARNESS_RUNNER_H_
#define SEEMORE_HARNESS_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "util/json.h"

namespace seemore {

struct RunResult {
  int clients = 0;
  uint64_t completed = 0;
  double throughput_kreqs = 0.0;  // thousands of requests per second
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p90_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  uint64_t retransmissions = 0;
  /// Host wall-clock time the run took (real elapsed milliseconds, NOT
  /// simulated time) — what parallel sweeps shrink. The only
  /// non-deterministic field; excluded from bit-identical comparisons via
  /// ScenarioReport::DeterministicJson.
  double wall_time_ms = 0.0;

  std::string ToString() const;
  /// Machine-readable image; the single emission path for bench JSON
  /// (bench_common.h BenchResultsJson) and scenario reports.
  Json ToJson() const;
};

/// Operation factory: n-th op issued by a client.
using OpFactory = std::function<Bytes(uint64_t)>;

/// The paper's x/y micro-benchmark: x-KB requests, y-KB replies (0/0, 0/4,
/// 4/0 in §6). Implemented as an ECHO op against the KV state machine.
OpFactory EchoWorkload(uint32_t request_kb, uint32_t reply_kb);

/// A mixed KV workload (PUT/GET over a keyspace) for the examples and
/// integration tests.
OpFactory KvWorkload(uint64_t seed, int key_space, double put_fraction);

/// Run `num_clients` closed-loop clients for warmup + measure, then report.
/// Creates the clients on the cluster (reusing any already added).
RunResult RunClosedLoop(Cluster& cluster, int num_clients, OpFactory ops,
                        SimTime warmup, SimTime measure);

/// Sweep the client count and collect one RunResult per population size,
/// producing one throughput/latency curve (one line of Figure 2/3). A fresh
/// cluster is built per point via `make_cluster`.
std::vector<RunResult> SweepClients(
    const std::function<std::unique_ptr<Cluster>()>& make_cluster,
    const std::vector<int>& client_counts, const OpFactory& ops,
    SimTime warmup, SimTime measure);

/// Timeline of completions in fixed buckets (Figure 4).
struct ThroughputTimeline {
  SimTime bucket_width = Millis(1);
  std::vector<uint64_t> buckets;

  void Record(SimTime when);
  /// Throughput in Kreq/s for bucket i.
  double KreqsAt(size_t i) const;
};

}  // namespace seemore

#endif  // SEEMORE_HARNESS_RUNNER_H_
