// Cluster builder: wires a simulator, network, keystore, one replica process
// per node (of the configured protocol), and any number of clients. Also the
// fault-injection surface used by tests and the Figure 4 benchmark.

#ifndef SEEMORE_HARNESS_CLUSTER_H_
#define SEEMORE_HARNESS_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/paxos/paxos_replica.h"
#include "baselines/pbft/pbft_replica.h"
#include "baselines/supright/supright_replica.h"
#include "consensus/config.h"
#include "harness/policies.h"
#include "net/network.h"
#include "seemore/seemore_replica.h"
#include "sim/simulator.h"
#include "smr/client.h"
#include "smr/kv_store.h"
#include "storage/file_store.h"
#include "storage/medium.h"

namespace seemore {

struct ClusterOptions {
  ClusterConfig config;
  NetworkConfig net;
  CostModel costs;
  uint64_t seed = 1;
  SimTime client_retransmit_timeout = Millis(60);
  /// Factory for each replica's state machine (defaults to the KV store).
  std::function<std::unique_ptr<StateMachine>()> state_machine_factory;
  /// Durable storage knobs. Disabled by default: every replica then runs on
  /// the no-op store and behaves bit-identically to the pre-durability code.
  DurabilityOptions durability;
};

/// What a successful Restart() reconstructed (scenario/report provenance).
struct RestartOutcome {
  uint64_t snapshot_seq = 0;     // newest snapshot restored from (0 = none)
  uint64_t replayed_commits = 0; // WAL commit records replayed
  uint64_t truncated_bytes = 0;  // torn tail discarded during recovery
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Simulator& sim() { return *sim_; }
  SimNetwork& net() { return *net_; }
  const KeyStore& keystore() const { return *keystore_; }
  /// The run's digest/verify memo (crypto/memo.h): shared by this cluster's
  /// replicas, private to this run — concurrent clusters on other threads
  /// each have their own, which is what makes scenario::RunMany safe.
  CryptoMemo& memo() { return *memo_; }
  const ClusterConfig& config() const { return options_.config; }

  int n() const { return options_.config.n(); }
  ReplicaBase* replica(int i) { return replicas_[i].get(); }

  /// Typed accessors (check the protocol kind).
  SeeMoReReplica* seemore(int i);
  PaxosReplica* paxos(int i);
  PbftCoreReplica* pbft(int i);

  /// Create a client wired with the protocol's reply policy.
  SimClient* AddClient();
  SimClient* client(int i) { return clients_[i].get(); }
  int num_clients() const { return static_cast<int>(clients_.size()); }

  /// --- fault injection ---------------------------------------------------
  void Crash(int i) { replicas_[i]->Crash(); }
  void Recover(int i) { replicas_[i]->Recover(); }
  void SetByzantine(int i, uint32_t flags);

  /// --- durability / restart ----------------------------------------------
  bool durability_enabled() const { return options_.durability.enabled; }
  /// Per-replica disk and store (null when durability is disabled).
  storage::MemMedium* medium(int i) { return media_[i].get(); }
  storage::FileDurableStore* durable_store(int i) { return stores_[i].get(); }

  /// Replace a crashed replica with a new incarnation rebuilt from its
  /// durable state (kill-and-restart, as opposed to Recover()'s
  /// kill-and-rejoin which keeps the in-memory state). Refuses with a typed
  /// error — leaving the old incarnation crashed and the disk untouched —
  /// when durability is off, the target is not crashed, or recovery finds
  /// mid-log corruption (kCorruption).
  Result<RestartOutcome> Restart(int i);

  /// Crash `i` AND roll its disk back to what the hardware durably holds
  /// (unsynced tails are cut at sector granularity: torn writes).
  void PowerLoss(int i);

  /// Corruption injection on a crashed replica's newest WAL segment (models
  /// latent media damage discovered at the next restart). Offsets count
  /// from the end of the segment; out-of-range values clamp to the segment
  /// head (deterministic header damage).
  Status TruncateWalTail(int i, uint64_t bytes_from_end);
  Status CorruptWalTail(int i, uint64_t offset_from_end);

  /// --- invariants ---------------------------------------------------------
  /// Agreement: every pair of replicas executed identical batches at every
  /// sequence number both executed. Returns an explanation on violation.
  Status CheckAgreement() const;
  /// All non-crashed replicas converged to the same state digest (call after
  /// quiescence).
  Status CheckConvergence(const std::vector<int>& replicas) const;

  /// Sum of requests_executed across replicas (progress diagnostics).
  uint64_t TotalExecuted() const;

 private:
  std::unique_ptr<ReplicaBase> MakeReplica(int i);
  /// Crashed + durability guard shared by the WAL tamper entry points.
  Status CheckTamperable(int i) const;

  ClusterOptions options_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<KeyStore> keystore_;
  std::unique_ptr<CryptoMemo> memo_;
  std::unique_ptr<SimNetwork> net_;
  std::vector<std::unique_ptr<ReplicaBase>> replicas_;
  /// Parallel to replicas_; empty slots (nullptr) when durability is off.
  /// Media outlive stores outlive replicas — destruction order matters on
  /// restart, so Restart() resets the replica before touching its store.
  std::vector<std::unique_ptr<storage::MemMedium>> media_;
  std::vector<std::unique_ptr<storage::FileDurableStore>> stores_;
  std::vector<std::unique_ptr<SimClient>> clients_;
  PrincipalId next_client_id_ = kClientIdBase;
};

}  // namespace seemore

#endif  // SEEMORE_HARNESS_CLUSTER_H_
