#include "harness/policies.h"

namespace seemore {

// ---------------------------------------------------------------------------
// CFT
// ---------------------------------------------------------------------------

void CftReplyPolicy::Observe(const Reply& reply) {
  view_ = std::max(view_, reply.view);
}

std::vector<PrincipalId> CftReplyPolicy::InitialTargets() const {
  // BFT-SMaRt clients multicast to the receiving network (all 2f+1).
  return config_.AllReplicas();
}

std::vector<PrincipalId> CftReplyPolicy::RetransmitTargets() const {
  return config_.AllReplicas();
}

bool CftReplyPolicy::Accepted(const std::vector<PrincipalId>& senders,
                              bool after_retransmit) const {
  (void)after_retransmit;
  return !senders.empty();  // nobody lies in the crash model
}

// ---------------------------------------------------------------------------
// BFT (PBFT)
// ---------------------------------------------------------------------------

void BftReplyPolicy::Observe(const Reply& reply) {
  view_ = std::max(view_, reply.view);
}

std::vector<PrincipalId> BftReplyPolicy::InitialTargets() const {
  // Receiving network: all 3f+1 replicas (Table 1).
  return config_.AllReplicas();
}

std::vector<PrincipalId> BftReplyPolicy::RetransmitTargets() const {
  return config_.AllReplicas();
}

bool BftReplyPolicy::Accepted(const std::vector<PrincipalId>& senders,
                              bool after_retransmit) const {
  (void)after_retransmit;
  return static_cast<int>(senders.size()) >= config_.f + 1;
}

// ---------------------------------------------------------------------------
// S-UpRight
// ---------------------------------------------------------------------------

void SUpRightReplyPolicy::Observe(const Reply& reply) {
  view_ = std::max(view_, reply.view);
}

std::vector<PrincipalId> SUpRightReplyPolicy::InitialTargets() const {
  // Receiving network: all 3m+2c+1 replicas (Table 1).
  return config_.AllReplicas();
}

std::vector<PrincipalId> SUpRightReplyPolicy::RetransmitTargets() const {
  return config_.AllReplicas();
}

bool SUpRightReplyPolicy::Accepted(const std::vector<PrincipalId>& senders,
                                   bool after_retransmit) const {
  (void)after_retransmit;
  return static_cast<int>(senders.size()) >= config_.m + 1;
}

// ---------------------------------------------------------------------------
// SeeMoRe
// ---------------------------------------------------------------------------

void SeeMoReReplyPolicy::Observe(const Reply& reply) {
  // Track the newest (view, mode) the cluster reports. Byzantine replicas
  // can inflate these, costing at worst one retransmission round before an
  // honest reply corrects the estimate.
  if (reply.view > view_) {
    view_ = reply.view;
    const SeeMoReMode m = static_cast<SeeMoReMode>(reply.mode);
    if (m == SeeMoReMode::kLion || m == SeeMoReMode::kDog ||
        m == SeeMoReMode::kPeacock) {
      mode_ = m;
    }
  }
}

std::vector<PrincipalId> SeeMoReReplyPolicy::InitialTargets() const {
  // Receiving networks per Table 1: Lion all 3m+2c+1 nodes; Dog the trusted
  // primary + the 3m+1 proxies; Peacock the 3m+1 proxies (the primary is
  // one of them).
  switch (mode_) {
    case SeeMoReMode::kLion:
      return config_.AllReplicas();
    case SeeMoReMode::kDog: {
      std::vector<PrincipalId> targets = config_.ProxySet(view_);
      targets.push_back(config_.TrustedPrimary(view_));
      return targets;
    }
    case SeeMoReMode::kPeacock:
      return config_.ProxySet(view_);
  }
  return config_.AllReplicas();
}

std::vector<PrincipalId> SeeMoReReplyPolicy::RetransmitTargets() const {
  return config_.AllReplicas();
}

bool SeeMoReReplyPolicy::Accepted(const std::vector<PrincipalId>& senders,
                                  bool after_retransmit) const {
  int trusted = 0;
  int untrusted = 0;
  for (PrincipalId sender : senders) {
    if (config_.IsTrusted(sender)) {
      ++trusted;
    } else {
      ++untrusted;
    }
  }
  switch (mode_) {
    case SeeMoReMode::kLion:
      // Normal case: the signed reply comes from the trusted primary.
      // Retransmission: any private reply, or m+1 matching public replies.
      return trusted >= 1 || untrusted >= config_.m + 1;
    case SeeMoReMode::kDog:
      if (after_retransmit) return untrusted >= config_.m + 1;
      return untrusted >= 2 * config_.m + 1;
    case SeeMoReMode::kPeacock:
      return untrusted >= config_.m + 1;
  }
  return false;
}

std::unique_ptr<ReplyPolicy> MakeReplyPolicy(const ClusterConfig& config) {
  switch (config.kind) {
    case ProtocolKind::kCft:
      return std::make_unique<CftReplyPolicy>(config);
    case ProtocolKind::kBft:
      return std::make_unique<BftReplyPolicy>(config);
    case ProtocolKind::kSUpRight:
      return std::make_unique<SUpRightReplyPolicy>(config);
    case ProtocolKind::kSeeMoRe:
      return std::make_unique<SeeMoReReplyPolicy>(config);
  }
  return nullptr;
}

}  // namespace seemore
