#include "harness/cluster.h"

#include <cstdio>

#include "util/logging.h"

namespace seemore {

Cluster::Cluster(ClusterOptions options) : options_(std::move(options)) {
  SEEMORE_CHECK(options_.config.Validate().ok())
      << "invalid cluster config: " << options_.config.Validate().ToString();
  if (!options_.state_machine_factory) {
    options_.state_machine_factory = [] {
      return std::make_unique<KvStateMachine>();
    };
  }
  sim_ = std::make_unique<Simulator>(options_.seed);
  keystore_ = std::make_unique<KeyStore>(options_.seed ^ 0x5eed'c0de'5eed'c0deULL);
  memo_ = std::make_unique<CryptoMemo>();
  net_ = std::make_unique<SimNetwork>(sim_.get(), options_.net);

  // The cluster is the composition root: it owns the concrete simulator and
  // simulated network, and hands replicas/clients only the Transport and
  // TimerService interfaces they are written against.
  const ClusterConfig& config = options_.config;
  media_.resize(config.n());
  stores_.resize(config.n());
  for (int i = 0; i < config.n(); ++i) {
    replicas_.push_back(MakeReplica(i));
    if (options_.durability.enabled) {
      media_[i] = std::make_unique<storage::MemMedium>();
      stores_[i] = std::make_unique<storage::FileDurableStore>(
          media_[i].get(), options_.durability, options_.costs);
      const Status st = stores_[i]->OpenFresh();
      SEEMORE_CHECK(st.ok()) << "open durable store: " << st.ToString();
      replicas_[i]->AttachDurable(stores_[i].get());
    }
  }
}

Cluster::~Cluster() {
  // Replicas reference their stores (and those the media); drop them first.
  replicas_.clear();
  clients_.clear();
}

std::unique_ptr<ReplicaBase> Cluster::MakeReplica(int i) {
  Transport* transport = net_.get();
  TimerService* timers = sim_.get();
  const ClusterConfig& config = options_.config;
  switch (config.kind) {
    case ProtocolKind::kCft:
      return std::make_unique<PaxosReplica>(
          transport, timers, keystore_.get(), memo_.get(), i, config,
          options_.state_machine_factory(), options_.costs);
    case ProtocolKind::kBft:
      return std::make_unique<PbftReplica>(
          transport, timers, keystore_.get(), memo_.get(), i, config,
          options_.state_machine_factory(), options_.costs);
    case ProtocolKind::kSUpRight:
      return std::make_unique<SUpRightReplica>(
          transport, timers, keystore_.get(), memo_.get(), i, config,
          options_.state_machine_factory(), options_.costs);
    case ProtocolKind::kSeeMoRe:
      return std::make_unique<SeeMoReReplica>(
          transport, timers, keystore_.get(), memo_.get(), i, config,
          options_.state_machine_factory(), options_.costs);
  }
  SEEMORE_CHECK(false) << "unknown protocol kind";
  return nullptr;
}

Result<RestartOutcome> Cluster::Restart(int i) {
  SEEMORE_CHECK(i >= 0 && i < n()) << "restart replica " << i;
  if (!options_.durability.enabled) {
    return Status::FailedPrecondition(
        "restart requires durability (enable ClusterOptions::durability)");
  }
  if (!replicas_[i]->crashed()) {
    return Status::FailedPrecondition("restart target is not crashed");
  }
  // Read-only recovery first: a corrupt log refuses the restart and leaves
  // the crashed incarnation and its disk untouched.
  SEEMORE_ASSIGN_OR_RETURN(RecoveredImage image,
                           storage::FileDurableStore::Recover(*media_[i]));

  // Tear down the old incarnation before its replacement registers under
  // the same principal id. Timers and in-flight deliveries hold no dangling
  // references (alive tokens / delivery-time re-resolution).
  replicas_[i].reset();
  stores_[i].reset();
  net_->Unregister(i);

  auto store = std::make_unique<storage::FileDurableStore>(
      media_[i].get(), options_.durability, options_.costs);
  const Status opened = store->OpenAfterRecovery(image);
  // The medium cannot fail IO and recovery validated the inputs; failure
  // here is a storage-layer bug, not an injectable fault.
  SEEMORE_CHECK(opened.ok()) << "reopen after recovery: " << opened.ToString();

  replicas_[i] = MakeReplica(i);
  replicas_[i]->AttachDurable(store.get());
  replicas_[i]->RestoreFromImage(image);
  stores_[i] = std::move(store);

  RestartOutcome outcome;
  if (const storage::RecoveredSnapshot* latest = image.Latest()) {
    outcome.snapshot_seq = latest->seq;
  }
  outcome.replayed_commits = image.commits.size();
  outcome.truncated_bytes = image.truncated_bytes;
  return outcome;
}

void Cluster::PowerLoss(int i) {
  SEEMORE_CHECK(options_.durability.enabled)
      << "power loss requires durability";
  replicas_[i]->Crash();
  media_[i]->PowerLoss();
}

Status Cluster::CheckTamperable(int i) const {
  if (!options_.durability.enabled) {
    return Status::FailedPrecondition("wal tampering requires durability");
  }
  if (!replicas_[i]->crashed()) {
    return Status::FailedPrecondition("wal tampering target is not crashed");
  }
  return Status::Ok();
}

Status Cluster::TruncateWalTail(int i, uint64_t bytes_from_end) {
  SEEMORE_RETURN_IF_ERROR(CheckTamperable(i));
  const std::vector<std::string> segments = media_[i]->List("wal-");
  if (segments.empty()) {
    return Status::FailedPrecondition("no wal segments to truncate");
  }
  const std::string& last = segments.back();
  SEEMORE_ASSIGN_OR_RETURN(uint64_t size, media_[i]->SizeOf(last));
  const uint64_t cut = bytes_from_end >= size ? 0 : size - bytes_from_end;
  return media_[i]->TruncateTo(last, cut);
}

Status Cluster::CorruptWalTail(int i, uint64_t offset_from_end) {
  SEEMORE_RETURN_IF_ERROR(CheckTamperable(i));
  const std::vector<std::string> segments = media_[i]->List("wal-");
  if (segments.empty()) {
    return Status::FailedPrecondition("no wal segments to corrupt");
  }
  const std::string& last = segments.back();
  SEEMORE_ASSIGN_OR_RETURN(uint64_t size, media_[i]->SizeOf(last));
  if (size == 0) return Status::FailedPrecondition("empty wal segment");
  const uint64_t offset =
      offset_from_end >= size ? 0 : size - 1 - offset_from_end;
  return media_[i]->FlipBit(last, offset, /*bit=*/0);
}

SeeMoReReplica* Cluster::seemore(int i) {
  SEEMORE_CHECK(options_.config.kind == ProtocolKind::kSeeMoRe);
  return static_cast<SeeMoReReplica*>(replicas_[i].get());
}

PaxosReplica* Cluster::paxos(int i) {
  SEEMORE_CHECK(options_.config.kind == ProtocolKind::kCft);
  return static_cast<PaxosReplica*>(replicas_[i].get());
}

PbftCoreReplica* Cluster::pbft(int i) {
  SEEMORE_CHECK(options_.config.kind == ProtocolKind::kBft ||
                options_.config.kind == ProtocolKind::kSUpRight);
  return static_cast<PbftCoreReplica*>(replicas_[i].get());
}

SimClient* Cluster::AddClient() {
  ClientOptions client_options;
  client_options.id = next_client_id_++;
  client_options.retransmit_timeout = options_.client_retransmit_timeout;
  clients_.push_back(std::make_unique<SimClient>(
      net_.get(), sim_.get(), keystore_.get(), client_options,
      MakeReplyPolicy(options_.config)));
  return clients_.back().get();
}

void Cluster::SetByzantine(int i, uint32_t flags) {
  if (options_.config.kind == ProtocolKind::kSeeMoRe) {
    // The model only admits Byzantine behaviour in the public cloud (§3.1).
    SEEMORE_CHECK(!options_.config.IsTrusted(i) || flags == kByzNone)
        << "cannot make trusted replica " << i << " Byzantine";
  }
  replicas_[i]->SetByzantine(flags);
}

Status Cluster::CheckAgreement() const {
  for (size_t a = 0; a < replicas_.size(); ++a) {
    const auto& da = replicas_[a]->exec().executed_digests();
    for (size_t b = a + 1; b < replicas_.size(); ++b) {
      const auto& db = replicas_[b]->exec().executed_digests();
      for (uint64_t seq = da.floor(); !da.empty() && seq <= da.ceil(); ++seq) {
        const Digest* other = db.Find(seq);
        if (other != nullptr && *other != da.at(seq)) {
          char buf[128];
          std::snprintf(buf, sizeof(buf),
                        "replicas %zu and %zu disagree at seq %llu", a, b,
                        static_cast<unsigned long long>(seq));
          return Status::Internal(buf);
        }
      }
    }
  }
  return Status::Ok();
}

Status Cluster::CheckConvergence(const std::vector<int>& replicas) const {
  if (replicas.empty()) return Status::Ok();
  const Digest expected =
      replicas_[replicas.front()]->exec().StateDigest();
  const uint64_t expected_seq =
      replicas_[replicas.front()]->exec().last_executed();
  for (int i : replicas) {
    if (replicas_[i]->exec().last_executed() != expected_seq) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "replica %d executed %llu, expected %llu", i,
                    static_cast<unsigned long long>(
                        replicas_[i]->exec().last_executed()),
                    static_cast<unsigned long long>(expected_seq));
      return Status::Internal(buf);
    }
    if (!(replicas_[i]->exec().StateDigest() == expected)) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "replica %d state digest diverged", i);
      return Status::Internal(buf);
    }
  }
  return Status::Ok();
}

uint64_t Cluster::TotalExecuted() const {
  uint64_t total = 0;
  for (const auto& replica : replicas_) {
    total += replica->stats().requests_executed;
  }
  return total;
}

}  // namespace seemore
