#include "harness/cluster.h"

#include <cstdio>

#include "util/logging.h"

namespace seemore {

Cluster::Cluster(ClusterOptions options) : options_(std::move(options)) {
  SEEMORE_CHECK(options_.config.Validate().ok())
      << "invalid cluster config: " << options_.config.Validate().ToString();
  if (!options_.state_machine_factory) {
    options_.state_machine_factory = [] {
      return std::make_unique<KvStateMachine>();
    };
  }
  sim_ = std::make_unique<Simulator>(options_.seed);
  keystore_ = std::make_unique<KeyStore>(options_.seed ^ 0x5eed'c0de'5eed'c0deULL);
  memo_ = std::make_unique<CryptoMemo>();
  net_ = std::make_unique<SimNetwork>(sim_.get(), options_.net);

  // The cluster is the composition root: it owns the concrete simulator and
  // simulated network, and hands replicas/clients only the Transport and
  // TimerService interfaces they are written against.
  Transport* transport = net_.get();
  TimerService* timers = sim_.get();
  const ClusterConfig& config = options_.config;
  for (int i = 0; i < config.n(); ++i) {
    switch (config.kind) {
      case ProtocolKind::kCft:
        replicas_.push_back(std::make_unique<PaxosReplica>(
            transport, timers, keystore_.get(), memo_.get(), i, config,
            options_.state_machine_factory(), options_.costs));
        break;
      case ProtocolKind::kBft:
        replicas_.push_back(std::make_unique<PbftReplica>(
            transport, timers, keystore_.get(), memo_.get(), i, config,
            options_.state_machine_factory(), options_.costs));
        break;
      case ProtocolKind::kSUpRight:
        replicas_.push_back(std::make_unique<SUpRightReplica>(
            transport, timers, keystore_.get(), memo_.get(), i, config,
            options_.state_machine_factory(), options_.costs));
        break;
      case ProtocolKind::kSeeMoRe:
        replicas_.push_back(std::make_unique<SeeMoReReplica>(
            transport, timers, keystore_.get(), memo_.get(), i, config,
            options_.state_machine_factory(), options_.costs));
        break;
    }
  }
}

Cluster::~Cluster() = default;

SeeMoReReplica* Cluster::seemore(int i) {
  SEEMORE_CHECK(options_.config.kind == ProtocolKind::kSeeMoRe);
  return static_cast<SeeMoReReplica*>(replicas_[i].get());
}

PaxosReplica* Cluster::paxos(int i) {
  SEEMORE_CHECK(options_.config.kind == ProtocolKind::kCft);
  return static_cast<PaxosReplica*>(replicas_[i].get());
}

PbftCoreReplica* Cluster::pbft(int i) {
  SEEMORE_CHECK(options_.config.kind == ProtocolKind::kBft ||
                options_.config.kind == ProtocolKind::kSUpRight);
  return static_cast<PbftCoreReplica*>(replicas_[i].get());
}

SimClient* Cluster::AddClient() {
  ClientOptions client_options;
  client_options.id = next_client_id_++;
  client_options.retransmit_timeout = options_.client_retransmit_timeout;
  clients_.push_back(std::make_unique<SimClient>(
      net_.get(), sim_.get(), keystore_.get(), client_options,
      MakeReplyPolicy(options_.config)));
  return clients_.back().get();
}

void Cluster::SetByzantine(int i, uint32_t flags) {
  if (options_.config.kind == ProtocolKind::kSeeMoRe) {
    // The model only admits Byzantine behaviour in the public cloud (§3.1).
    SEEMORE_CHECK(!options_.config.IsTrusted(i) || flags == kByzNone)
        << "cannot make trusted replica " << i << " Byzantine";
  }
  replicas_[i]->SetByzantine(flags);
}

Status Cluster::CheckAgreement() const {
  for (size_t a = 0; a < replicas_.size(); ++a) {
    const auto& da = replicas_[a]->exec().executed_digests();
    for (size_t b = a + 1; b < replicas_.size(); ++b) {
      const auto& db = replicas_[b]->exec().executed_digests();
      for (uint64_t seq = da.floor(); !da.empty() && seq <= da.ceil(); ++seq) {
        const Digest* other = db.Find(seq);
        if (other != nullptr && *other != da.at(seq)) {
          char buf[128];
          std::snprintf(buf, sizeof(buf),
                        "replicas %zu and %zu disagree at seq %llu", a, b,
                        static_cast<unsigned long long>(seq));
          return Status::Internal(buf);
        }
      }
    }
  }
  return Status::Ok();
}

Status Cluster::CheckConvergence(const std::vector<int>& replicas) const {
  if (replicas.empty()) return Status::Ok();
  const Digest expected =
      replicas_[replicas.front()]->exec().StateDigest();
  const uint64_t expected_seq =
      replicas_[replicas.front()]->exec().last_executed();
  for (int i : replicas) {
    if (replicas_[i]->exec().last_executed() != expected_seq) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "replica %d executed %llu, expected %llu", i,
                    static_cast<unsigned long long>(
                        replicas_[i]->exec().last_executed()),
                    static_cast<unsigned long long>(expected_seq));
      return Status::Internal(buf);
    }
    if (!(replicas_[i]->exec().StateDigest() == expected)) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "replica %d state digest diverged", i);
      return Status::Internal(buf);
    }
  }
  return Status::Ok();
}

uint64_t Cluster::TotalExecuted() const {
  uint64_t total = 0;
  for (const auto& replica : replicas_) {
    total += replica->stats().requests_executed;
  }
  return total;
}

}  // namespace seemore
