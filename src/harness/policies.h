// Per-protocol client reply policies (where requests go, how many matching
// replies prove completion). Rules follow §5.1-§5.3 and the baselines'
// standard client behaviour; policies learn the current view (and SeeMoRe
// mode) by observing valid replies.

#ifndef SEEMORE_HARNESS_POLICIES_H_
#define SEEMORE_HARNESS_POLICIES_H_

#include <memory>
#include <vector>

#include "consensus/config.h"
#include "smr/client.h"

namespace seemore {

/// CFT (Paxos): send to the leader; a single reply is trusted (crash model).
class CftReplyPolicy : public ReplyPolicy {
 public:
  explicit CftReplyPolicy(const ClusterConfig& config) : config_(config) {}

  void Observe(const Reply& reply) override;
  std::vector<PrincipalId> InitialTargets() const override;
  std::vector<PrincipalId> RetransmitTargets() const override;
  bool Accepted(const std::vector<PrincipalId>& senders,
                bool after_retransmit) const override;

 private:
  ClusterConfig config_;
  uint64_t view_ = 0;
};

/// PBFT: send to the primary; f+1 matching replies.
class BftReplyPolicy : public ReplyPolicy {
 public:
  explicit BftReplyPolicy(const ClusterConfig& config) : config_(config) {}

  void Observe(const Reply& reply) override;
  std::vector<PrincipalId> InitialTargets() const override;
  std::vector<PrincipalId> RetransmitTargets() const override;
  bool Accepted(const std::vector<PrincipalId>& senders,
                bool after_retransmit) const override;

 private:
  ClusterConfig config_;
  uint64_t view_ = 0;
};

/// S-UpRight: send to the primary; m+1 matching replies (the hybrid model's
/// "at least one honest" bound — crash nodes cannot lie).
class SUpRightReplyPolicy : public ReplyPolicy {
 public:
  explicit SUpRightReplyPolicy(const ClusterConfig& config) : config_(config) {}

  void Observe(const Reply& reply) override;
  std::vector<PrincipalId> InitialTargets() const override;
  std::vector<PrincipalId> RetransmitTargets() const override;
  bool Accepted(const std::vector<PrincipalId>& senders,
                bool after_retransmit) const override;

 private:
  ClusterConfig config_;
  uint64_t view_ = 0;
};

/// SeeMoRe: mode-aware.
///   Lion    — send to the trusted primary; its signed reply completes the
///             request; after a retransmission, any private-cloud reply or
///             m+1 matching public replies (§5.1).
///   Dog     — 2m+1 matching proxy replies; m+1 after retransmission (§5.2).
///   Peacock — m+1 matching proxy replies (§5.3, PBFT rule with m).
class SeeMoReReplyPolicy : public ReplyPolicy {
 public:
  explicit SeeMoReReplyPolicy(const ClusterConfig& config)
      : config_(config), mode_(config.initial_mode) {}

  void Observe(const Reply& reply) override;
  std::vector<PrincipalId> InitialTargets() const override;
  std::vector<PrincipalId> RetransmitTargets() const override;
  bool Accepted(const std::vector<PrincipalId>& senders,
                bool after_retransmit) const override;

  SeeMoReMode mode() const { return mode_; }
  uint64_t view() const { return view_; }

 private:
  ClusterConfig config_;
  SeeMoReMode mode_;
  uint64_t view_ = 0;
};

/// Factory used by the cluster builder.
std::unique_ptr<ReplyPolicy> MakeReplyPolicy(const ClusterConfig& config);

}  // namespace seemore

#endif  // SEEMORE_HARNESS_POLICIES_H_
