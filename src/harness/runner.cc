#include "harness/runner.h"

#include <cstdio>

#include "util/rng.h"

namespace seemore {

std::string RunResult::ToString() const {
  char buf[220];
  std::snprintf(buf, sizeof(buf),
                "clients=%-4d thrpt=%7.2f kreq/s  lat(mean/p50/p90/p99)="
                "%6.2f/%6.2f/%6.2f/%6.2f ms  completed=%llu retx=%llu",
                clients, throughput_kreqs, mean_latency_ms, p50_latency_ms,
                p90_latency_ms, p99_latency_ms,
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(retransmissions));
  return buf;
}

Json RunResult::ToJson() const {
  Json j = Json::Object();
  j.Set("clients", clients);
  j.Set("throughput_kreqs", throughput_kreqs);
  j.Set("mean_latency_ms", mean_latency_ms);
  j.Set("p50_latency_ms", p50_latency_ms);
  j.Set("p90_latency_ms", p90_latency_ms);
  j.Set("p99_latency_ms", p99_latency_ms);
  j.Set("completed", completed);
  j.Set("retransmissions", retransmissions);
  j.Set("wall_time_ms", wall_time_ms);
  return j;
}

OpFactory EchoWorkload(uint32_t request_kb, uint32_t reply_kb) {
  const uint32_t request_bytes = request_kb * 1024;
  const uint32_t reply_bytes = reply_kb * 1024;
  return [request_bytes, reply_bytes](uint64_t) {
    return MakeEcho(reply_bytes, request_bytes);
  };
}

OpFactory KvWorkload(uint64_t seed, int key_space, double put_fraction) {
  auto rng = std::make_shared<Rng>(seed);
  return [rng, key_space, put_fraction](uint64_t n) {
    char key[32];
    std::snprintf(key, sizeof(key), "key-%llu",
                  static_cast<unsigned long long>(
                      rng->NextBounded(static_cast<uint64_t>(key_space))));
    if (rng->NextBool(put_fraction)) {
      char value[48];
      std::snprintf(value, sizeof(value), "value-%llu",
                    static_cast<unsigned long long>(n));
      return MakePut(key, value);
    }
    return MakeGet(key);
  };
}

RunResult RunClosedLoop(Cluster& cluster, int num_clients, OpFactory ops,
                        SimTime warmup, SimTime measure) {
  while (cluster.num_clients() < num_clients) cluster.AddClient();
  for (int i = 0; i < num_clients; ++i) {
    cluster.client(i)->Start(ops);
  }
  const SimTime start = cluster.sim().now();
  cluster.sim().RunUntil(start + warmup);
  for (int i = 0; i < num_clients; ++i) cluster.client(i)->ResetStats();

  cluster.sim().RunUntil(start + warmup + measure);

  RunResult result;
  result.clients = num_clients;
  Histogram merged;
  for (int i = 0; i < num_clients; ++i) {
    const SimClient& client = *cluster.client(i);
    result.completed += client.completed();
    result.retransmissions += client.retransmissions();
    merged.Merge(client.latencies());
    cluster.client(i)->Stop();
  }
  const double seconds =
      static_cast<double>(measure) / static_cast<double>(kNanosPerSecond);
  result.throughput_kreqs =
      static_cast<double>(result.completed) / seconds / 1000.0;
  result.mean_latency_ms = merged.Mean() / static_cast<double>(kNanosPerMilli);
  result.p50_latency_ms =
      merged.Percentile(50.0) / static_cast<double>(kNanosPerMilli);
  result.p90_latency_ms =
      merged.Percentile(90.0) / static_cast<double>(kNanosPerMilli);
  result.p99_latency_ms =
      merged.Percentile(99.0) / static_cast<double>(kNanosPerMilli);
  return result;
}

std::vector<RunResult> SweepClients(
    const std::function<std::unique_ptr<Cluster>()>& make_cluster,
    const std::vector<int>& client_counts, const OpFactory& ops,
    SimTime warmup, SimTime measure) {
  std::vector<RunResult> results;
  results.reserve(client_counts.size());
  for (int count : client_counts) {
    std::unique_ptr<Cluster> cluster = make_cluster();
    results.push_back(RunClosedLoop(*cluster, count, ops, warmup, measure));
  }
  return results;
}

void ThroughputTimeline::Record(SimTime when) {
  const size_t bucket = static_cast<size_t>(when / bucket_width);
  if (buckets.size() <= bucket) buckets.resize(bucket + 1, 0);
  buckets[bucket] += 1;
}

double ThroughputTimeline::KreqsAt(size_t i) const {
  if (i >= buckets.size()) return 0.0;
  const double seconds =
      static_cast<double>(bucket_width) / static_cast<double>(kNanosPerSecond);
  return static_cast<double>(buckets[i]) / seconds / 1000.0;
}

}  // namespace seemore
