// The byte-level persistence substrate under the WAL and snapshot store.
//
// StorageMedium is a deliberately small flat-file interface (append, read,
// truncate, sync, list) — exactly what an append-only log needs and nothing
// a POSIX backend couldn't provide. The simulator uses MemMedium, which is
// deterministic, cloneable (recovery tests replay the same disk image many
// times) and models the two failure semantics the scenario layer injects:
//
//   - Process kill: nothing happens to the medium. Appended bytes survive
//     whether or not they were synced (the page cache outlives the process).
//   - Power loss: PowerLoss() rolls every file back to what the hardware
//     durably holds — everything up to the last Sync(), plus any later
//     fully-written sectors (kTornSector granularity). A record straddling
//     the cut survives only partially: a torn write.
//
// Corruption injection (FlipBit / TruncateTo) drives the recovery
// fuzz/property tests; it models latent media errors, not crash semantics.

#ifndef SEEMORE_STORAGE_MEDIUM_H_
#define SEEMORE_STORAGE_MEDIUM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "wire/wire.h"

namespace seemore {
namespace storage {

class StorageMedium {
 public:
  virtual ~StorageMedium() = default;

  /// Append `len` bytes to `name`, creating the file when absent. Appended
  /// bytes are visible to Read immediately but durable only after Sync.
  virtual Status Append(const std::string& name, const uint8_t* data,
                        size_t len) = 0;
  Status Append(const std::string& name, const Bytes& data) {
    return Append(name, data.data(), data.size());
  }

  /// Whole-file read (files here are bounded: one WAL segment or snapshot).
  virtual Result<Bytes> ReadFile(const std::string& name) const = 0;
  virtual Result<uint64_t> SizeOf(const std::string& name) const = 0;
  virtual bool Exists(const std::string& name) const = 0;
  /// All file names with the given prefix, lexicographically sorted (segment
  /// and snapshot names are zero-padded so this is also creation order).
  virtual std::vector<std::string> List(const std::string& prefix) const = 0;

  /// Chop the file to `size` bytes (recovery discards a torn tail with this).
  virtual Status TruncateTo(const std::string& name, uint64_t size) = 0;
  virtual Status Remove(const std::string& name) = 0;

  /// Make all bytes of `name` durable (fsync).
  virtual Status Sync(const std::string& name) = 0;
  /// Sync every file (fsync the lot at a batch boundary).
  virtual Status SyncAll() = 0;
};

/// Deterministic in-memory medium. One instance per replica; not thread-safe
/// (a scenario run owns its media the same way it owns its simulator).
class MemMedium final : public StorageMedium {
 public:
  /// Power-loss persistence granularity: a lost unsynced tail is cut at this
  /// alignment, leaving partially-written records behind.
  static constexpr uint64_t kTornSector = 512;

  Status Append(const std::string& name, const uint8_t* data,
                size_t len) override;
  Result<Bytes> ReadFile(const std::string& name) const override;
  Result<uint64_t> SizeOf(const std::string& name) const override;
  bool Exists(const std::string& name) const override;
  std::vector<std::string> List(const std::string& prefix) const override;
  Status TruncateTo(const std::string& name, uint64_t size) override;
  Status Remove(const std::string& name) override;
  Status Sync(const std::string& name) override;
  Status SyncAll() override;

  /// --- fault injection ---------------------------------------------------
  /// Roll every file back to its durable prefix extended to the last fully
  /// written sector: max(durable_size, size rounded down to kTornSector).
  void PowerLoss();
  /// Flip one bit (latent corruption). `bit` in [0, 8).
  Status FlipBit(const std::string& name, uint64_t offset, int bit);

  /// Deep copy, including durable watermarks — recovery property tests
  /// mutate clones so every probe starts from the identical disk image.
  std::unique_ptr<MemMedium> Clone() const;

  /// Durable watermark of `name` (0 when absent) — test introspection.
  uint64_t DurableSize(const std::string& name) const;

  /// --- accounting (bench provenance) -------------------------------------
  uint64_t bytes_appended() const { return bytes_appended_; }
  uint64_t sync_calls() const { return sync_calls_; }

 private:
  struct File {
    Bytes data;
    uint64_t durable_size = 0;  // prefix guaranteed to survive power loss
  };

  std::map<std::string, File> files_;  // ordered: List() is a range scan
  uint64_t bytes_appended_ = 0;
  uint64_t sync_calls_ = 0;
};

}  // namespace storage
}  // namespace seemore

#endif  // SEEMORE_STORAGE_MEDIUM_H_
