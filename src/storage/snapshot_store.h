// Durable checkpoint snapshots keyed by sequence number.
//
// Two file kinds, both single-write and CRC32C-guarded:
//
//   "snap-<seq:016x>"  magic u32 | crc u32 | body
//                      body = seq varint | state digest (32B) | bytes
//   "cert-<seq:016x>"  magic u32 | crc u32 | body
//                      body = seq varint | CheckpointCert wire encoding
//
// A snap file is written whenever a protocol cuts a checkpoint (it may still
// be buffering votes); the cert file lands when that checkpoint becomes
// stable. Recovery treats them asymmetrically: the WAL refuses mid-log
// corruption with a typed error, but a damaged snapshot merely falls out of
// the candidate list — an older valid snapshot plus log replay (or, at
// worst, live state transfer) covers for it. A half-written snapshot after
// power loss is therefore expected, not fatal.

#ifndef SEEMORE_STORAGE_SNAPSHOT_STORE_H_
#define SEEMORE_STORAGE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "consensus/checkpoint.h"
#include "crypto/digest.h"
#include "storage/medium.h"
#include "util/status.h"

namespace seemore {
namespace storage {

inline constexpr uint32_t kSnapMagic = 0x4E53'4D53;  // "SMSN"
inline constexpr uint32_t kCertMagic = 0x4B43'4D53;  // "SMCK"

std::string SnapshotFileName(uint64_t seq);
std::string CertFileName(uint64_t seq);

/// One durable checkpoint as reconstructed at recovery time.
struct RecoveredSnapshot {
  uint64_t seq = 0;
  Digest digest;
  Bytes bytes;
  /// The checkpoint had become stable before the crash (cert file present
  /// and valid). A certless snapshot restores as buffered, not stable.
  bool has_cert = false;
  CheckpointCert cert;
};

class SnapshotStore {
 public:
  explicit SnapshotStore(StorageMedium* medium) : medium_(medium) {}

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Write the snap file for `seq` (unsynced; see SyncAt).
  Status Save(uint64_t seq, const Digest& digest, const Bytes& snapshot);
  /// Write the cert file marking `seq` stable (unsynced).
  Status SaveCert(uint64_t seq, const CheckpointCert& cert);
  /// fsync the snap (and cert, when present) files of `seq`.
  Status SyncAt(uint64_t seq);

  /// Delete snap/cert files strictly below `seq`.
  Status GcBelow(uint64_t seq);

  /// Every valid snapshot on the medium, ascending by seq, certs attached.
  /// Damaged or torn files are skipped (see the header comment); `skipped`
  /// (optional) counts them for recovery reporting. Static because recovery
  /// runs read-only, before any store exists.
  static std::vector<RecoveredSnapshot> LoadAll(const StorageMedium& medium,
                                                uint64_t* skipped = nullptr);

 private:
  StorageMedium* medium_;
};

}  // namespace storage
}  // namespace seemore

#endif  // SEEMORE_STORAGE_SNAPSHOT_STORE_H_
