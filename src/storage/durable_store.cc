#include "storage/durable_store.h"

namespace seemore {

namespace {
/// All hooks inherited as no-ops; enabled() stays false.
class NullDurableStore final : public DurableStore {};
}  // namespace

DurableStore* DurableStore::Null() {
  static NullDurableStore null_store;
  return &null_store;
}

}  // namespace seemore
