// CRC32C (Castagnoli) — the frame checksum for both durability (WAL,
// snapshot store) and the real TCP transport's wire frames.
//
// Chosen over plain CRC32 for the same reason LevelDB/RocksDB and the ext4
// journal use it: the polynomial has better error-detection properties for
// short records and x86 has carried a dedicated instruction for it since
// SSE4.2. Runtime dispatch mirrors crypto/sha256.h: a portable table
// implementation always exists, the hardware kernel is selected once per
// process, and tests can pin either kernel via Crc32cForceImpl to
// cross-check them. Both produce identical values, so recovery decisions
// and frame accept/reject never depend on the host CPU.

#ifndef SEEMORE_STORAGE_CRC32C_H_
#define SEEMORE_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace seemore {
namespace storage {

/// CRC of `len` bytes starting from the all-ones seed (the conventional
/// one-shot form; output is post-inverted).
uint32_t Crc32c(const uint8_t* data, size_t len);

/// Streaming form: extend a previous Crc32c() value with more bytes, as if
/// the two buffers had been hashed in one call.
uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t len);

/// Which kernel computes the CRC (see file comment).
enum class Crc32cImpl : uint8_t { kPortable = 0, kSse42 = 1 };

/// The kernel currently selected (auto-detected at first use, or the one
/// last forced via Crc32cForceImpl).
Crc32cImpl Crc32cActiveImpl();

/// True if this build + CPU can run the given kernel.
bool Crc32cImplSupported(Crc32cImpl impl);

/// Test hook: pin the dispatcher to one kernel so tests can cross-check the
/// hardware path against the portable one. Returns false (and changes
/// nothing) if the kernel is unsupported here. Not synchronized — call only
/// from single-threaded test setup, and Crc32cResetImpl() when done.
bool Crc32cForceImpl(Crc32cImpl impl);

/// Undo Crc32cForceImpl: back to the best auto-detected kernel.
void Crc32cResetImpl();

/// True when the hardware (SSE4.2) path is in use — surfaced for tests and
/// bench provenance, never for behaviour.
bool Crc32cUsesHardware();

}  // namespace storage
}  // namespace seemore

#endif  // SEEMORE_STORAGE_CRC32C_H_
