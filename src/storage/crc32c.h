// CRC32C (Castagnoli) — the storage layer's frame checksum.
//
// Chosen over plain CRC32 for the same reason LevelDB/RocksDB and the ext4
// journal use it: the polynomial has better error-detection properties for
// short records and x86 has carried a dedicated instruction for it since
// SSE4.2. Runtime dispatch follows crypto/sha256_simd.cc: a portable table
// implementation always exists, the hardware path is selected once per
// process. Both produce identical values, so recovery decisions never depend
// on the host CPU.

#ifndef SEEMORE_STORAGE_CRC32C_H_
#define SEEMORE_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace seemore {
namespace storage {

/// CRC of `len` bytes starting from the all-ones seed (the conventional
/// one-shot form; output is post-inverted).
uint32_t Crc32c(const uint8_t* data, size_t len);

/// Streaming form: extend a previous Crc32c() value with more bytes, as if
/// the two buffers had been hashed in one call.
uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t len);

/// True when the hardware (SSE4.2) path is in use — surfaced for tests and
/// bench provenance, never for behaviour.
bool Crc32cUsesHardware();

}  // namespace storage
}  // namespace seemore

#endif  // SEEMORE_STORAGE_CRC32C_H_
