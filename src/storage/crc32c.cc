// CRC32C front end: kernel dispatch plus the conventional seed/result
// inversions. The kernels themselves live in crc32c_kernels.cc.

#include "storage/crc32c.h"

#include "storage/crc32c_kernels.h"

namespace seemore {
namespace storage {
namespace {

using crc32c_internal::ExtendFn;

ExtendFn KernelFor(Crc32cImpl impl) {
  switch (impl) {
    case Crc32cImpl::kSse42:
      return crc32c_internal::Sse42ExtendFn();
    case Crc32cImpl::kPortable:
      return &crc32c_internal::ExtendPortable;
  }
  return nullptr;
}

Crc32cImpl DetectBestImpl() {
  if (crc32c_internal::Sse42ExtendFn() != nullptr) return Crc32cImpl::kSse42;
  return Crc32cImpl::kPortable;
}

// The selected kernel. Resolved once on first use (thread-safe magic
// static); Crc32cForceImpl/Crc32cResetImpl rebind it from single-threaded
// tests only.
struct Dispatch {
  Crc32cImpl impl;
  ExtendFn fn;
};

Dispatch& ActiveDispatch() {
  static Dispatch d = {DetectBestImpl(), KernelFor(DetectBestImpl())};
  return d;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t len) {
  return ~ActiveDispatch().fn(~crc, data, len);
}

uint32_t Crc32c(const uint8_t* data, size_t len) {
  return Crc32cExtend(0, data, len);
}

Crc32cImpl Crc32cActiveImpl() { return ActiveDispatch().impl; }

bool Crc32cImplSupported(Crc32cImpl impl) { return KernelFor(impl) != nullptr; }

bool Crc32cForceImpl(Crc32cImpl impl) {
  ExtendFn fn = KernelFor(impl);
  if (fn == nullptr) return false;
  ActiveDispatch() = {impl, fn};
  return true;
}

void Crc32cResetImpl() {
  ActiveDispatch() = {DetectBestImpl(), KernelFor(DetectBestImpl())};
}

bool Crc32cUsesHardware() {
  return Crc32cActiveImpl() == Crc32cImpl::kSse42;
}

}  // namespace storage
}  // namespace seemore
