#include "storage/crc32c.h"

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define SEEMORE_CRC32C_X86 1
#endif

namespace seemore {
namespace storage {
namespace {

// Table for the reflected Castagnoli polynomial 0x82F63B78, generated once
// at startup (256 entries; the generation loop is the textbook one).
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

uint32_t ExtendPortable(uint32_t crc, const uint8_t* data, size_t len) {
  const uint32_t* table = Table().entries;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFF];
  }
  return crc;
}

#if defined(SEEMORE_CRC32C_X86)
__attribute__((target("sse4.2"))) uint32_t ExtendHardware(uint32_t crc,
                                                          const uint8_t* data,
                                                          size_t len) {
  // Head: bytes until 8-byte alignment, then 64-bit strides, then the tail.
  while (len > 0 && (reinterpret_cast<uintptr_t>(data) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *data++);
    --len;
  }
#if defined(__x86_64__)
  uint64_t crc64 = crc;
  while (len >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, data, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    data += 8;
    len -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
#endif
  while (len > 0) {
    crc = _mm_crc32_u8(crc, *data++);
    --len;
  }
  return crc;
}
#endif  // SEEMORE_CRC32C_X86

using ExtendFn = uint32_t (*)(uint32_t, const uint8_t*, size_t);

ExtendFn PickExtend() {
#if defined(SEEMORE_CRC32C_X86)
  if (__builtin_cpu_supports("sse4.2")) return &ExtendHardware;
#endif
  return &ExtendPortable;
}

ExtendFn ActiveExtend() {
  static const ExtendFn fn = PickExtend();
  return fn;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t len) {
  return ~ActiveExtend()(~crc, data, len);
}

uint32_t Crc32c(const uint8_t* data, size_t len) {
  return Crc32cExtend(0, data, len);
}

bool Crc32cUsesHardware() {
#if defined(SEEMORE_CRC32C_X86)
  return ActiveExtend() == &ExtendHardware;
#else
  return false;
#endif
}

}  // namespace storage
}  // namespace seemore
