#include "storage/file_store.h"

#include <algorithm>

#include "util/logging.h"

namespace seemore {
namespace storage {
namespace {

Bytes EncodeCommitRecord(uint64_t seq, const Batch& batch) {
  Encoder enc;
  enc.Reserve(1 + VarintSize(seq) + batch.EncodedSize());
  enc.PutU8(kWalCommit);
  enc.PutVarint(seq);
  batch.EncodeTo(enc);
  return enc.Take();
}

}  // namespace

FileDurableStore::FileDurableStore(StorageMedium* medium,
                                   const DurabilityOptions& options,
                                   const CostModel& costs)
    : medium_(medium),
      options_(options),
      costs_(costs),
      wal_(medium, WalOptions{options.segment_bytes, options.fsync_interval}),
      snapshots_(medium) {
  SEEMORE_CHECK(options_.enabled) << "FileDurableStore needs enabled options";
}

Result<RecoveredImage> FileDurableStore::Recover(const StorageMedium& medium) {
  RecoveredImage image;
  Result<WalRecovery> wal = RecoverWal(medium);
  SEEMORE_RETURN_IF_ERROR(wal.status());
  image.truncated_bytes = wal->truncated_bytes;
  image.wal_records = wal->payloads.size();
  image.snapshots = SnapshotStore::LoadAll(medium, &image.snapshots_skipped);

  for (const Bytes& payload : wal->payloads) {
    Decoder dec(payload);
    switch (dec.GetU8()) {
      case kWalCommit: {
        const uint64_t seq = dec.GetVarint();
        Result<Batch> batch = Batch::DecodeFrom(dec);
        // The frame CRC already matched, so an undecodable payload means a
        // writer bug or in-place tampering stronger than a bit flip: refuse
        // rather than guess.
        if (!batch.ok() || !dec.AtEnd()) {
          return Status::Corruption("wal commit record undecodable");
        }
        image.commits.emplace_back(seq, *std::move(batch));
        break;
      }
      case kWalView: {
        const uint64_t view = dec.GetVarint();
        const uint8_t mode = dec.GetU8();
        if (!dec.AtEnd()) {
          return Status::Corruption("wal view record undecodable");
        }
        // Later records win: the log is append-ordered.
        image.has_view = true;
        image.view = view;
        image.mode = mode;
        break;
      }
      default:
        return Status::Corruption("unknown wal record type");
    }
  }
  return image;
}

Status FileDurableStore::OpenFresh() { return wal_.Create(); }

Status FileDurableStore::OpenAfterRecovery(const RecoveredImage& image) {
  // Compact: the recovered image IS the log now. Old segments (including
  // any torn tail) and damaged snapshot/cert files are removed, then a
  // fresh WAL is seeded with the state a future recovery must see.
  for (const std::string& name : medium_->List("wal-")) {
    SEEMORE_RETURN_IF_ERROR(medium_->Remove(name));
  }
  for (const std::string& name : medium_->List("snap-")) {
    const bool valid = std::any_of(
        image.snapshots.begin(), image.snapshots.end(),
        [&](const RecoveredSnapshot& s) {
          return SnapshotFileName(s.seq) == name;
        });
    if (!valid) SEEMORE_RETURN_IF_ERROR(medium_->Remove(name));
  }
  for (const std::string& name : medium_->List("cert-")) {
    const bool valid = std::any_of(
        image.snapshots.begin(), image.snapshots.end(),
        [&](const RecoveredSnapshot& s) {
          return s.has_cert && CertFileName(s.seq) == name;
        });
    if (!valid) SEEMORE_RETURN_IF_ERROR(medium_->Remove(name));
  }

  SEEMORE_RETURN_IF_ERROR(wal_.Create());
  if (image.has_view) {
    has_view_ = true;
    view_ = image.view;
    mode_ = image.mode;
    SEEMORE_RETURN_IF_ERROR(wal_.Append(EncodeViewRecord(), 0));
  }
  const RecoveredSnapshot* latest = image.Latest();
  const uint64_t base = latest != nullptr ? latest->seq : 0;
  for (const auto& [seq, batch] : image.commits) {
    if (seq <= base) continue;  // covered by the snapshot
    SEEMORE_RETURN_IF_ERROR(wal_.Append(EncodeCommitRecord(seq, batch), seq));
    last_commit_seq_ = std::max(last_commit_seq_, seq);
  }
  SEEMORE_RETURN_IF_ERROR(wal_.Sync());
  // No CPU is bound yet, so nothing above was charged: recovery work
  // happens while the replica is down (its wall-clock cost is the outage).
  charged_syncs_ = wal_.sync_count();
  charged_segments_ = wal_.segments_created();
  return Status::Ok();
}

void FileDurableStore::ChargeSyncDelta() {
  const uint64_t syncs = wal_.sync_count();
  if (syncs > charged_syncs_) {
    Charge(costs_.fsync * static_cast<SimTime>(syncs - charged_syncs_));
    charged_syncs_ = syncs;
  }
}

Bytes FileDurableStore::EncodeViewRecord() const {
  Encoder enc;
  enc.PutU8(kWalView);
  enc.PutVarint(view_);
  enc.PutU8(mode_);
  return enc.Take();
}

void FileDurableStore::Append(const Bytes& payload, uint64_t watermark) {
  Charge(costs_.StorageWriteCost(payload.size() + kWalFrameHeaderBytes));
  Status st = wal_.Append(payload, watermark);
  SEEMORE_CHECK(st.ok()) << "wal append failed: " << st.ToString();
  // A roll just sealed a segment: restate the current view at the head of
  // the new one so segment GC can never orphan the latest view record.
  if (wal_.segments_created() > charged_segments_) {
    charged_segments_ = wal_.segments_created();
    if (has_view_) {
      st = wal_.Append(EncodeViewRecord(), 0);
      SEEMORE_CHECK(st.ok()) << "wal view restate failed: " << st.ToString();
    }
  }
  ChargeSyncDelta();
}

void FileDurableStore::AppendCommit(uint64_t seq, const Batch& batch) {
  last_commit_seq_ = std::max(last_commit_seq_, seq);
  Append(EncodeCommitRecord(seq, batch), seq);
}

void FileDurableStore::NoteView(uint64_t view, uint8_t mode) {
  has_view_ = true;
  view_ = view;
  mode_ = mode;
  Append(EncodeViewRecord(), 0);
  // View durability is unconditional: a restarted replica that forgot its
  // view could accept a stale primary's proposals.
  Status st = wal_.Sync();
  SEEMORE_CHECK(st.ok()) << st.ToString();
  ChargeSyncDelta();
}

void FileDurableStore::SaveSnapshot(uint64_t seq, const Digest& digest,
                                    const Bytes& snapshot) {
  Charge(costs_.StorageWriteCost(snapshot.size()));
  Status st = snapshots_.Save(seq, digest, snapshot);
  SEEMORE_CHECK(st.ok()) << st.ToString();
  if (options_.fsync_interval == 1) {
    // Strict durability: the snapshot is flushed at the cut. With batching
    // the flush is deferred to NoteStable, leaving the half-written-snapshot
    // window the power-loss scenarios probe.
    st = snapshots_.SyncAt(seq);
    SEEMORE_CHECK(st.ok()) << st.ToString();
    Charge(costs_.fsync);
  }
}

void FileDurableStore::NoteStable(uint64_t seq, const CheckpointCert& cert) {
  Status st = snapshots_.SaveCert(seq, cert);
  SEEMORE_CHECK(st.ok()) << st.ToString();
  st = snapshots_.SyncAt(seq);
  SEEMORE_CHECK(st.ok()) << st.ToString();
  Charge(costs_.fsync);
  // GC is gated on the stable snapshot actually being durable here: a
  // replica that advanced its stable point via a cert alone (still fetching
  // the state) must keep its log until the snapshot lands.
  if (medium_->Exists(SnapshotFileName(seq))) {
    st = snapshots_.GcBelow(seq);
    SEEMORE_CHECK(st.ok()) << st.ToString();
    st = wal_.GcBelow(seq);
    SEEMORE_CHECK(st.ok()) << st.ToString();
  }
}

}  // namespace storage
}  // namespace seemore
