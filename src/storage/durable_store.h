// The seam between protocol code and durable storage.
//
// Protocols stay storage-agnostic: ReplicaBase holds a DurableStore* that
// defaults to the shared no-op Null() store, and the hooks below are invoked
// from exactly four places — the commit funnel (CommitQueue::Execute), the
// checkpoint cut (MaybeCheckpoint), the stable advance, and EnterView. With
// the null store every hook is an empty virtual call guarded by enabled(),
// so all existing goldens stay bit-identical; with a FileDurableStore
// (storage/file_store.h) the same hooks feed a segmented WAL + snapshot
// store and charge the simulated fsync/write costs to the replica's CPU.
//
// RecoveredImage is what a restart hands back to the replica stack: the
// newest valid snapshots (stable + still-buffered), the commit records above
// them, and the last view the replica had durably entered.

#ifndef SEEMORE_STORAGE_DURABLE_STORE_H_
#define SEEMORE_STORAGE_DURABLE_STORE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "consensus/batch.h"
#include "net/transport.h"
#include "storage/snapshot_store.h"

namespace seemore {

/// Knobs for the durable path; `enabled == false` (the default) keeps every
/// run purely in-memory and bit-identical to the historical behaviour.
struct DurabilityOptions {
  bool enabled = false;
  /// WAL appends per fsync (1 = sync every record; larger values model
  /// group commit and open the power-loss window the scenarios probe).
  int fsync_interval = 1;
  /// WAL segment roll size in bytes.
  uint32_t segment_bytes = 64 * 1024;
};

class DurableStore {
 public:
  virtual ~DurableStore() = default;

  /// The process-wide no-op store (never null; safe default target).
  static DurableStore* Null();

  virtual bool enabled() const { return false; }

  /// Bind the replica's CPU meter so storage work is charged to it; called
  /// by ReplicaBase::AttachDurable (and again after a restart, since the
  /// new incarnation gets a fresh CPU).
  virtual void BindCpu(CpuMeter* /*cpu*/) {}

  /// A batch committed at `seq` — append a commit record.
  virtual void AppendCommit(uint64_t /*seq*/, const Batch& /*batch*/) {}
  /// The replica entered (view, mode) — append a view record, synced
  /// immediately (view durability is what makes restart vote-safe).
  virtual void NoteView(uint64_t /*view*/, uint8_t /*mode*/) {}
  /// A checkpoint was cut at `seq` — persist the snapshot bytes.
  virtual void SaveSnapshot(uint64_t /*seq*/, const Digest& /*digest*/,
                            const Bytes& /*snapshot*/) {}
  /// Checkpoint `seq` became stable — persist the cert, make the snapshot
  /// durable and garbage-collect everything below it.
  virtual void NoteStable(uint64_t /*seq*/,
                          const CheckpointCert& /*cert*/) {}
};

/// Everything a replica needs to rebuild after a restart.
struct RecoveredImage {
  /// Last durably-entered view (absent when the replica never left view 0).
  bool has_view = false;
  uint64_t view = 0;
  uint8_t mode = 0;

  /// Valid snapshots, ascending by seq.
  std::vector<storage::RecoveredSnapshot> snapshots;
  /// Commit records in WAL append order (replay dedups, so overlap with the
  /// snapshots is harmless).
  std::vector<std::pair<uint64_t, Batch>> commits;

  /// Recovery provenance, surfaced in scenario event descriptions.
  uint64_t wal_records = 0;
  uint64_t truncated_bytes = 0;
  uint64_t snapshots_skipped = 0;

  /// Newest snapshot (execution restore point), or null when none survived.
  const storage::RecoveredSnapshot* Latest() const {
    return snapshots.empty() ? nullptr : &snapshots.back();
  }
  /// Newest STABLE snapshot (checkpoint floor restore point), or null.
  const storage::RecoveredSnapshot* LatestStable() const {
    for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
      if (it->has_cert) return &*it;
    }
    return nullptr;
  }
  uint64_t MaxCommitSeq() const {
    uint64_t max_seq = 0;
    for (const auto& [seq, batch] : commits) {
      if (seq > max_seq) max_seq = seq;
    }
    return max_seq;
  }
};

}  // namespace seemore

#endif  // SEEMORE_STORAGE_DURABLE_STORE_H_
