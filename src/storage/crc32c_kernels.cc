// CRC32C kernels: portable table loop plus the SSE4.2 hardware path.
// Both operate on raw (pre-inverted) CRC state; the front end in crc32c.cc
// applies the conventional inversions and picks a kernel once per process.

#include "storage/crc32c_kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define SEEMORE_CRC32C_X86 1
#endif

namespace seemore {
namespace storage {
namespace crc32c_internal {
namespace {

// Table for the reflected Castagnoli polynomial 0x82F63B78, generated once
// at startup (256 entries; the generation loop is the textbook one).
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

#if defined(SEEMORE_CRC32C_X86)
__attribute__((target("sse4.2"))) uint32_t ExtendSse42(uint32_t crc,
                                                       const uint8_t* data,
                                                       size_t len) {
  // Head: bytes until 8-byte alignment, then 64-bit strides, then the tail.
  while (len > 0 && (reinterpret_cast<uintptr_t>(data) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *data++);
    --len;
  }
#if defined(__x86_64__)
  uint64_t crc64 = crc;
  while (len >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, data, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    data += 8;
    len -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
#endif
  while (len > 0) {
    crc = _mm_crc32_u8(crc, *data++);
    --len;
  }
  return crc;
}
#endif  // SEEMORE_CRC32C_X86

}  // namespace

uint32_t ExtendPortable(uint32_t crc, const uint8_t* data, size_t len) {
  const uint32_t* table = Table().entries;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFF];
  }
  return crc;
}

ExtendFn Sse42ExtendFn() {
#if defined(SEEMORE_CRC32C_X86)
  if (__builtin_cpu_supports("sse4.2")) return &ExtendSse42;
#endif
  return nullptr;
}

}  // namespace crc32c_internal
}  // namespace storage
}  // namespace seemore
