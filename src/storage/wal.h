// Append-only segmented write-ahead log with CRC32C-framed records.
//
// Layout (all integers little-endian, via the wire Encoder):
//
//   segment file "wal-<index:016x>"
//   +--------------------------------------------------+
//   | header: magic u32 | version u32 | index u64      |  16 bytes
//   +--------------------------------------------------+
//   | frame:  crc u32 | len u32 | payload[len]         |  repeated
//   | ...                                              |
//   +--------------------------------------------------+
//
// The crc covers len || payload, so a corrupted length field is detected
// before it can send the scanner off a cliff. Payloads are opaque here; the
// DurableStore layer defines record types (commit / view-change).
//
// Durability contract (modeled on the Aeron Archive recovery shape,
// SNIPPETS.md §3):
//   - Append() buffers; every `fsync_interval` appends the open segment is
//     synced. Sync() forces it.
//   - A segment is synced when sealed (before its successor is created), so
//     torn writes can only live in the LAST segment.
//
// Recovery policy (scan → validate → truncate):
//   - Records are scanned segment by segment, frame by frame.
//   - Any invalid frame in a non-last segment is mid-log corruption: a
//     typed kCorruption error, never a silent truncation — sealed segments
//     were synced, so their bytes cannot have been lost legitimately.
//   - The first invalid frame in the last segment is either a torn tail
//     (crash mid-append: everything after it is garbage) or corruption
//     (a valid record still parses further on — bytes were damaged, not
//     lost). A forward resync scan distinguishes the two: finding any later
//     valid frame refuses with kCorruption; finding none truncates the tail
//     and recovery proceeds. Recovery therefore never un-commits a record
//     the medium durably holds.

#ifndef SEEMORE_STORAGE_WAL_H_
#define SEEMORE_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/medium.h"
#include "util/status.h"
#include "wire/wire.h"

namespace seemore {
namespace storage {

inline constexpr uint32_t kWalMagic = 0x4C57'4D53;  // "SMWL"
inline constexpr uint32_t kWalVersion = 1;
inline constexpr size_t kWalSegmentHeaderBytes = 16;
inline constexpr size_t kWalFrameHeaderBytes = 8;
/// Upper bound on one record; anything larger fails frame validation
/// immediately (a snapshot never travels through the WAL).
inline constexpr uint32_t kWalMaxRecordBytes = 1u << 24;

/// "wal-<index:016x>" — zero-padded so lexicographic order is log order.
std::string WalSegmentName(uint64_t index);

struct WalOptions {
  /// Roll to a new segment once the current one reaches this size.
  uint32_t segment_bytes = 64 * 1024;
  /// Appends per fsync; 1 = sync every record (group commit off).
  int fsync_interval = 1;
};

/// Result of scanning a medium's WAL at recovery time.
struct WalRecovery {
  /// Every valid record payload, in append order.
  std::vector<Bytes> payloads;
  uint64_t segments_scanned = 0;
  /// Torn bytes discarded from the last segment (0 for a clean shutdown).
  uint64_t truncated_bytes = 0;
};

/// Scan and validate the log. Read-only: the torn tail (if any) is reported,
/// not yet removed — callers decide whether to repair the medium.
/// kCorruption is the one typed failure; a missing log recovers empty.
Result<WalRecovery> RecoverWal(const StorageMedium& medium);

class WriteAheadLog {
 public:
  WriteAheadLog(StorageMedium* medium, WalOptions options);

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Start a fresh log (first segment header written). The medium must hold
  /// no WAL segments — restart recovery compacts the old log away first.
  Status Create();

  /// Frame and append one record; syncs when the batch interval is reached
  /// or rolls (seal + sync) when the segment is full.
  Status Append(const Bytes& payload, uint64_t watermark);

  /// Force the open segment durable regardless of the batch interval.
  Status Sync();

  /// Delete sealed segments whose every record has watermark <= `floor`
  /// (the stable-checkpoint GC; the open segment is never deleted).
  Status GcBelow(uint64_t floor);

  /// Syncs performed so far (each one costs CostModel::fsync).
  uint64_t sync_count() const { return sync_count_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t segments_created() const { return segments_created_; }

 private:
  struct Segment {
    uint64_t index = 0;
    uint64_t size = 0;           // bytes written including header
    uint64_t max_watermark = 0;  // highest watermark appended
    bool any_records = false;
  };

  Status OpenSegment(uint64_t index);

  StorageMedium* medium_;
  const WalOptions options_;
  std::vector<Segment> sealed_;
  Segment open_;
  bool created_ = false;
  int unsynced_records_ = 0;
  uint64_t sync_count_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t segments_created_ = 0;
};

}  // namespace storage
}  // namespace seemore

#endif  // SEEMORE_STORAGE_WAL_H_
