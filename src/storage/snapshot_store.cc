#include "storage/snapshot_store.h"

#include <cstdio>
#include <cstring>

#include "storage/crc32c.h"

namespace seemore {
namespace storage {
namespace {

std::string SeqFileName(const char* prefix, uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s-%016llx", prefix,
                static_cast<unsigned long long>(seq));
  return buf;
}

/// Frame `body` as magic | crc | body and write it as `name`.
Status WriteGuarded(StorageMedium* medium, const std::string& name,
                    uint32_t magic, const Bytes& body) {
  Encoder enc;
  enc.Reserve(8 + body.size());
  enc.PutU32(magic);
  enc.PutU32(Crc32c(body.data(), body.size()));
  enc.PutRaw(body);
  return medium->Append(name, enc.Take());
}

/// Validate magic + CRC and return the body, or nothing (damaged files are
/// skipped, never fatal — see the header comment).
bool ReadGuarded(const StorageMedium& medium, const std::string& name,
                 uint32_t magic, Bytes* body) {
  Result<Bytes> read = medium.ReadFile(name);
  if (!read.ok() || read->size() < 8) return false;
  Decoder dec(read->data(), 8);
  if (dec.GetU32() != magic) return false;
  const uint32_t stored_crc = dec.GetU32();
  if (!dec.ok()) return false;
  if (Crc32c(read->data() + 8, read->size() - 8) != stored_crc) return false;
  body->assign(read->begin() + 8, read->end());
  return true;
}

}  // namespace

std::string SnapshotFileName(uint64_t seq) { return SeqFileName("snap", seq); }
std::string CertFileName(uint64_t seq) { return SeqFileName("cert", seq); }

Status SnapshotStore::Save(uint64_t seq, const Digest& digest,
                           const Bytes& snapshot) {
  const std::string name = SnapshotFileName(seq);
  if (medium_->Exists(name)) return Status::Ok();  // cuts are idempotent
  Encoder body;
  body.Reserve(VarintSize(seq) + Digest::kSize + snapshot.size());
  body.PutVarint(seq);
  digest.EncodeTo(body);
  body.PutRaw(snapshot);
  return WriteGuarded(medium_, name, kSnapMagic, body.bytes());
}

Status SnapshotStore::SaveCert(uint64_t seq, const CheckpointCert& cert) {
  const std::string name = CertFileName(seq);
  if (medium_->Exists(name)) return Status::Ok();
  Encoder body;
  body.PutVarint(seq);
  cert.EncodeTo(body);
  return WriteGuarded(medium_, name, kCertMagic, body.bytes());
}

Status SnapshotStore::SyncAt(uint64_t seq) {
  const std::string snap = SnapshotFileName(seq);
  if (medium_->Exists(snap)) {
    SEEMORE_RETURN_IF_ERROR(medium_->Sync(snap));
  }
  const std::string cert = CertFileName(seq);
  if (medium_->Exists(cert)) {
    SEEMORE_RETURN_IF_ERROR(medium_->Sync(cert));
  }
  return Status::Ok();
}

Status SnapshotStore::GcBelow(uint64_t seq) {
  for (const char* prefix : {"snap-", "cert-"}) {
    for (const std::string& name : medium_->List(prefix)) {
      const uint64_t file_seq =
          std::strtoull(name.c_str() + 5, nullptr, 16);
      if (file_seq < seq) {
        SEEMORE_RETURN_IF_ERROR(medium_->Remove(name));
      }
    }
  }
  return Status::Ok();
}

std::vector<RecoveredSnapshot> SnapshotStore::LoadAll(
    const StorageMedium& medium, uint64_t* skipped) {
  std::vector<RecoveredSnapshot> out;
  uint64_t damaged = 0;
  for (const std::string& name : medium.List("snap-")) {
    Bytes body;
    if (!ReadGuarded(medium, name, kSnapMagic, &body)) {
      ++damaged;
      continue;
    }
    RecoveredSnapshot snap;
    Decoder dec(body);
    snap.seq = dec.GetVarint();
    snap.digest = Digest::DecodeFrom(dec);
    snap.bytes.assign(body.begin() + dec.pos(), body.end());
    if (!dec.ok() || SnapshotFileName(snap.seq) != name) {
      ++damaged;
      continue;
    }
    Bytes cert_body;
    if (ReadGuarded(medium, CertFileName(snap.seq), kCertMagic,
                    &cert_body)) {
      Decoder cert_dec(cert_body);
      const uint64_t cert_seq = cert_dec.GetVarint();
      Result<CheckpointCert> cert = CheckpointCert::DecodeFrom(cert_dec);
      if (cert.ok() && cert_dec.AtEnd() && cert_seq == snap.seq) {
        snap.cert = *std::move(cert);
        snap.has_cert = true;
      }
    }
    out.push_back(std::move(snap));
  }
  // List() returns names sorted, and seq-in-name order IS seq order.
  if (skipped != nullptr) *skipped = damaged;
  return out;
}

}  // namespace storage
}  // namespace seemore
