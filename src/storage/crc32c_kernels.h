// Internal interface between the CRC32C front end (crc32c.cc) and the
// kernels (crc32c_kernels.cc). Not for use outside src/storage/ — the
// public surface is Crc32c/Crc32cExtend in crc32c.h. Mirrors the
// crypto/sha256_kernels.h split so both runtime-dispatched primitives
// follow one pattern.

#ifndef SEEMORE_STORAGE_CRC32C_KERNELS_H_
#define SEEMORE_STORAGE_CRC32C_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace seemore {
namespace storage {
namespace crc32c_internal {

/// Extend a raw (pre-inverted) CRC over `len` bytes. Kernels are pure
/// functions of (crc, data): no allocation, no globals, so every
/// implementation is interchangeable mid-stream — the front end owns the
/// conventional ~seed/~result inversion.
using ExtendFn = uint32_t (*)(uint32_t crc, const uint8_t* data, size_t len);

/// The portable table-driven kernel (reflected Castagnoli polynomial
/// 0x82F63B78) — always available.
uint32_t ExtendPortable(uint32_t crc, const uint8_t* data, size_t len);

/// SSE4.2 kernel (_mm_crc32_u64 strides), or nullptr when the build target
/// or running CPU lacks the instruction.
ExtendFn Sse42ExtendFn();

}  // namespace crc32c_internal
}  // namespace storage
}  // namespace seemore

#endif  // SEEMORE_STORAGE_CRC32C_KERNELS_H_
