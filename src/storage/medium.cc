#include "storage/medium.h"

#include <algorithm>

namespace seemore {
namespace storage {

Status MemMedium::Append(const std::string& name, const uint8_t* data,
                         size_t len) {
  File& file = files_[name];
  file.data.insert(file.data.end(), data, data + len);
  bytes_appended_ += len;
  return Status::Ok();
}

Result<Bytes> MemMedium::ReadFile(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  return it->second.data;
}

Result<uint64_t> MemMedium::SizeOf(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  return static_cast<uint64_t>(it->second.data.size());
}

bool MemMedium::Exists(const std::string& name) const {
  return files_.count(name) > 0;
}

std::vector<std::string> MemMedium::List(const std::string& prefix) const {
  std::vector<std::string> names;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    names.push_back(it->first);
  }
  return names;
}

Status MemMedium::TruncateTo(const std::string& name, uint64_t size) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  File& file = it->second;
  if (size < file.data.size()) {
    file.data.resize(size);
    file.durable_size = std::min(file.durable_size, size);
  }
  return Status::Ok();
}

Status MemMedium::Remove(const std::string& name) {
  if (files_.erase(name) == 0) {
    return Status::NotFound("no such file: " + name);
  }
  return Status::Ok();
}

Status MemMedium::Sync(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  it->second.durable_size = it->second.data.size();
  ++sync_calls_;
  return Status::Ok();
}

Status MemMedium::SyncAll() {
  for (auto& [name, file] : files_) {
    file.durable_size = file.data.size();
  }
  ++sync_calls_;
  return Status::Ok();
}

void MemMedium::PowerLoss() {
  for (auto& [name, file] : files_) {
    const uint64_t sector_floor =
        (file.data.size() / kTornSector) * kTornSector;
    const uint64_t kept = std::max(file.durable_size, sector_floor);
    file.data.resize(std::min<uint64_t>(kept, file.data.size()));
  }
}

Status MemMedium::FlipBit(const std::string& name, uint64_t offset, int bit) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  if (offset >= it->second.data.size() || bit < 0 || bit >= 8) {
    return Status::OutOfRange("flip-bit outside " + name);
  }
  it->second.data[offset] ^= static_cast<uint8_t>(1u << bit);
  return Status::Ok();
}

std::unique_ptr<MemMedium> MemMedium::Clone() const {
  auto copy = std::make_unique<MemMedium>();
  copy->files_ = files_;
  copy->bytes_appended_ = bytes_appended_;
  copy->sync_calls_ = sync_calls_;
  return copy;
}

uint64_t MemMedium::DurableSize(const std::string& name) const {
  auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.durable_size;
}

}  // namespace storage
}  // namespace seemore
