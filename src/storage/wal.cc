#include "storage/wal.h"

#include <algorithm>
#include <cstdio>

#include "storage/crc32c.h"
#include "util/logging.h"

namespace seemore {
namespace storage {
namespace {

uint32_t ReadU32At(const Bytes& data, size_t offset) {
  uint32_t v;
  std::memcpy(&v, data.data() + offset, 4);
  return v;  // little-endian host assumption, same as the wire Encoder
}

/// Validate the frame starting at `offset`. On success stores the payload
/// length; any failure (short header, insane length, frame past EOF, CRC
/// mismatch) is "invalid" — the recovery policy decides what that means.
bool FrameValidAt(const Bytes& data, size_t offset, uint32_t* payload_len) {
  if (offset + kWalFrameHeaderBytes > data.size()) return false;
  const uint32_t stored_crc = ReadU32At(data, offset);
  const uint32_t len = ReadU32At(data, offset + 4);
  if (len > kWalMaxRecordBytes) return false;
  if (offset + kWalFrameHeaderBytes + len > data.size()) return false;
  // CRC covers len || payload so a damaged length cannot masquerade.
  const uint32_t actual =
      Crc32c(data.data() + offset + 4, 4 + static_cast<size_t>(len));
  if (actual != stored_crc) return false;
  *payload_len = len;
  return true;
}

/// Does ANY valid frame start at or after `offset`? Distinguishes a torn
/// tail (no: everything after the cut is unwritten garbage) from mid-log
/// corruption (yes: intact records exist beyond the damage, so bytes were
/// altered, not lost). Only runs on the already-failed path.
bool AnyValidFrameAfter(const Bytes& data, size_t offset) {
  for (size_t probe = offset; probe + kWalFrameHeaderBytes <= data.size();
       ++probe) {
    uint32_t len = 0;
    if (FrameValidAt(data, probe, &len)) return true;
  }
  return false;
}

Status CorruptionAt(const std::string& segment, size_t offset,
                    const char* what) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "wal segment %s: %s at offset %zu",
                segment.c_str(), what, offset);
  return Status::Corruption(buf);
}

}  // namespace

std::string WalSegmentName(uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%016llx",
                static_cast<unsigned long long>(index));
  return buf;
}

Result<WalRecovery> RecoverWal(const StorageMedium& medium) {
  WalRecovery out;
  const std::vector<std::string> segments = medium.List("wal-");
  for (size_t seg = 0; seg < segments.size(); ++seg) {
    const std::string& name = segments[seg];
    const bool last = seg + 1 == segments.size();
    Result<Bytes> read = medium.ReadFile(name);
    SEEMORE_RETURN_IF_ERROR(read.status());
    const Bytes& data = *read;
    ++out.segments_scanned;

    // Header. A short or damaged header in the last segment follows the
    // same torn-vs-corrupt rule as a damaged frame; in a sealed segment it
    // is corruption outright.
    bool header_ok = data.size() >= kWalSegmentHeaderBytes;
    if (header_ok) {
      Decoder dec(data.data(), kWalSegmentHeaderBytes);
      const uint32_t magic = dec.GetU32();
      const uint32_t version = dec.GetU32();
      const uint64_t index = dec.GetU64();
      header_ok = dec.ok() && magic == kWalMagic && version == kWalVersion &&
                  WalSegmentName(index) == name;
    }
    if (!header_ok) {
      if (!last || AnyValidFrameAfter(data, 0)) {
        return CorruptionAt(name, 0, "bad segment header");
      }
      out.truncated_bytes += data.size();
      continue;  // torn at roll: the whole segment is a dead tail
    }

    size_t offset = kWalSegmentHeaderBytes;
    while (offset < data.size()) {
      uint32_t payload_len = 0;
      if (FrameValidAt(data, offset, &payload_len)) {
        const uint8_t* payload = data.data() + offset + kWalFrameHeaderBytes;
        out.payloads.emplace_back(payload, payload + payload_len);
        offset += kWalFrameHeaderBytes + payload_len;
        continue;
      }
      if (!last || AnyValidFrameAfter(data, offset + 1)) {
        return CorruptionAt(name, offset, "invalid record");
      }
      out.truncated_bytes += data.size() - offset;
      break;  // clean torn tail: keep the valid prefix
    }
  }
  return out;
}

WriteAheadLog::WriteAheadLog(StorageMedium* medium, WalOptions options)
    : medium_(medium), options_(options) {
  SEEMORE_CHECK(options_.fsync_interval >= 1) << "fsync_interval must be >= 1";
  SEEMORE_CHECK(options_.segment_bytes > kWalSegmentHeaderBytes);
}

Status WriteAheadLog::Create() {
  SEEMORE_CHECK(!created_) << "wal already created";
  if (!medium_->List("wal-").empty()) {
    return Status::FailedPrecondition(
        "medium already holds wal segments; recover and compact first");
  }
  created_ = true;
  return OpenSegment(0);
}

Status WriteAheadLog::OpenSegment(uint64_t index) {
  Encoder enc;
  enc.PutU32(kWalMagic);
  enc.PutU32(kWalVersion);
  enc.PutU64(index);
  const Bytes header = enc.Take();
  SEEMORE_RETURN_IF_ERROR(medium_->Append(WalSegmentName(index), header));
  open_ = Segment{};
  open_.index = index;
  open_.size = header.size();
  bytes_written_ += header.size();
  ++segments_created_;
  return Status::Ok();
}

Status WriteAheadLog::Append(const Bytes& payload, uint64_t watermark) {
  SEEMORE_CHECK(created_) << "wal not created";
  SEEMORE_CHECK(payload.size() <= kWalMaxRecordBytes);
  const std::string name = WalSegmentName(open_.index);
  Encoder enc;
  enc.Reserve(kWalFrameHeaderBytes + payload.size());
  enc.PutU32(0);  // crc, patched below
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  enc.PutRaw(payload);
  Bytes frame = enc.Take();
  const uint32_t crc = Crc32c(frame.data() + 4, frame.size() - 4);
  std::memcpy(frame.data(), &crc, 4);

  SEEMORE_RETURN_IF_ERROR(medium_->Append(name, frame));
  open_.size += frame.size();
  open_.max_watermark = std::max(open_.max_watermark, watermark);
  open_.any_records = true;
  bytes_written_ += frame.size();
  ++unsynced_records_;

  if (open_.size >= options_.segment_bytes) {
    // Seal: sync before the successor exists, so torn writes can never hide
    // behind a newer segment (the recovery policy depends on this).
    SEEMORE_RETURN_IF_ERROR(Sync());
    sealed_.push_back(open_);
    return OpenSegment(open_.index + 1);
  }
  if (unsynced_records_ >= options_.fsync_interval) {
    return Sync();
  }
  return Status::Ok();
}

Status WriteAheadLog::Sync() {
  SEEMORE_CHECK(created_) << "wal not created";
  if (unsynced_records_ == 0) return Status::Ok();
  SEEMORE_RETURN_IF_ERROR(medium_->Sync(WalSegmentName(open_.index)));
  unsynced_records_ = 0;
  ++sync_count_;
  return Status::Ok();
}

Status WriteAheadLog::GcBelow(uint64_t floor) {
  size_t kept = 0;
  for (const Segment& segment : sealed_) {
    if (segment.any_records && segment.max_watermark <= floor) {
      SEEMORE_RETURN_IF_ERROR(medium_->Remove(WalSegmentName(segment.index)));
    } else {
      sealed_[kept++] = segment;
    }
  }
  sealed_.resize(kept);
  return Status::Ok();
}

}  // namespace storage
}  // namespace seemore
