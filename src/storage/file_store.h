// DurableStore backed by a StorageMedium: WAL + snapshot store + recovery.
//
// WAL record payloads (u8 type tag first):
//   kWalCommit: tag | seq varint | batch wire encoding
//   kWalView:   tag | view varint | mode u8
//
// Every segment opened after the first NoteView begins with a view record
// restating the current (view, mode), so stable-checkpoint GC of older
// segments can never lose the last view entered (the open segment always
// carries a copy).
//
// Restart sequence (Cluster::Restart):
//   1. Recover(medium)      — read-only scan; kCorruption refuses restart.
//   2. OpenAfterRecovery()  — compact: damaged snapshots and the old
//      segments are deleted, a fresh WAL is seeded with the current view
//      and the commits above the newest snapshot, then synced. Replay
//      input lives entirely in the image, so this rewrite never
//      un-commits anything recovery reported.
//   3. ReplicaBase::RestoreFromImage(image) rebuilds the in-memory state.

#ifndef SEEMORE_STORAGE_FILE_STORE_H_
#define SEEMORE_STORAGE_FILE_STORE_H_

#include "net/cost_model.h"
#include "storage/durable_store.h"
#include "storage/medium.h"
#include "storage/snapshot_store.h"
#include "storage/wal.h"

namespace seemore {
namespace storage {

enum WalRecordType : uint8_t {
  kWalCommit = 1,
  kWalView = 2,
};

class FileDurableStore final : public DurableStore {
 public:
  /// `medium` outlives the store; `options.enabled` must be true.
  FileDurableStore(StorageMedium* medium, const DurabilityOptions& options,
                   const CostModel& costs);

  /// Read-only recovery: scan WAL + snapshots into an image. The single
  /// typed failure is kCorruption (mid-log damage); torn tails and damaged
  /// snapshots degrade gracefully and are counted in the image.
  static Result<RecoveredImage> Recover(const StorageMedium& medium);

  /// Start with an empty medium (a brand-new replica).
  Status OpenFresh();
  /// Start over a recovered medium (see the restart sequence above).
  Status OpenAfterRecovery(const RecoveredImage& image);

  bool enabled() const override { return true; }
  void BindCpu(CpuMeter* cpu) override { cpu_ = cpu; }

  void AppendCommit(uint64_t seq, const Batch& batch) override;
  void NoteView(uint64_t view, uint8_t mode) override;
  void SaveSnapshot(uint64_t seq, const Digest& digest,
                    const Bytes& snapshot) override;
  void NoteStable(uint64_t seq, const CheckpointCert& cert) override;

  const WriteAheadLog& wal() const { return wal_; }

 private:
  /// Frame-and-append plus cost accounting (write cost per KiB now, fsync
  /// cost whenever the append crossed a sync boundary).
  void Append(const Bytes& payload, uint64_t watermark);
  void Charge(SimTime cost) {
    if (cpu_ != nullptr) cpu_->Charge(cost);
  }
  void ChargeSyncDelta();
  Bytes EncodeViewRecord() const;

  StorageMedium* medium_;
  const DurabilityOptions options_;
  const CostModel costs_;
  WriteAheadLog wal_;
  SnapshotStore snapshots_;
  CpuMeter* cpu_ = nullptr;  // bound by AttachDurable; null during recovery
  uint64_t charged_syncs_ = 0;
  uint64_t charged_segments_ = 0;
  bool has_view_ = false;
  uint64_t view_ = 0;
  uint8_t mode_ = 0;
  uint64_t last_commit_seq_ = 0;
};

}  // namespace storage
}  // namespace seemore

#endif  // SEEMORE_STORAGE_FILE_STORE_H_
