#include "scenario/registry.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <functional>

#include "consensus/replica_base.h"
#include "scenario/builder.h"
#include "util/logging.h"

namespace seemore {
namespace scenario {

CostModel PaperCostModel() {
  CostModel costs;
  costs.recv_fixed = Micros(14);
  costs.send_fixed = Micros(6);
  costs.per_kib = Micros(2);
  // BFT-SMaRt authenticates with HMAC vectors rather than public-key
  // signatures; "sign"/"verify" here price one MAC-vector operation.
  costs.sign = Micros(4);
  costs.verify = Micros(4);
  costs.mac = Micros(1);
  costs.hash_per_kib = Micros(2);
  costs.hash_fixed = Micros(1);
  costs.execute = Micros(2);
  return costs;
}

NetworkConfig PaperNetwork() {
  NetworkConfig net;
  net.intra_private = {Micros(80), Micros(25)};
  net.intra_public = {Micros(80), Micros(25)};
  net.cross_cloud = {Micros(90), Micros(25)};
  net.client_link = {Micros(90), Micros(25)};
  return net;
}

ScenarioSpec PaperBaseSpec(uint64_t seed) {
  ScenarioSpec spec;
  spec.net = PaperNetwork();
  spec.costs = PaperCostModel();
  spec.seed = seed;
  spec.client_retransmit_timeout = Millis(100);
  spec.tuning.checkpoint_period = 1024;
  // BFT-SMaRt style: essentially one consensus instance in flight at a time
  // with everything pending folded into the next batch. This is what makes
  // closed-loop throughput scale with the client population (§6).
  spec.tuning.batch_max = 512;
  spec.tuning.pipeline_max = 2;
  spec.tuning.view_change_timeout = Millis(40);
  return spec;
}

const std::vector<std::string>& PaperSystemNames() {
  static const std::vector<std::string> kNames = {
      "BFT", "S-UpRight", "Peacock", "Dog", "Lion", "CFT"};
  return kNames;
}

Result<ScenarioSpec> PaperSystemSpec(const std::string& system, int c, int m,
                                     uint64_t seed) {
  ScenarioBuilder builder(PaperBaseSpec(seed));
  const int f = c + m;
  if (system == "BFT") {
    builder.Bft(f);
  } else if (system == "CFT") {
    builder.Cft(f);
  } else if (system == "S-UpRight") {
    builder.SUpRight(c, m);
  } else if (system == "Lion") {
    builder.SeeMoRe(SeeMoReMode::kLion, c, m);
  } else if (system == "Dog") {
    builder.SeeMoRe(SeeMoReMode::kDog, c, m);
  } else if (system == "Peacock") {
    builder.SeeMoRe(SeeMoReMode::kPeacock, c, m);
  } else {
    return Status::InvalidArgument("unknown §6 system: \"" + system + "\"");
  }
  return builder.spec();
}

Result<ScenarioSpec> Fig4SystemSpec(const std::string& system, int clients) {
  SEEMORE_ASSIGN_OR_RETURN(
      ScenarioSpec base, PaperSystemSpec(system, /*c=*/1, /*m=*/1,
                                         /*seed=*/23));
  ScenarioBuilder builder(std::move(base));
  builder.Echo(0, 0)
      .Clients(clients)
      .CheckpointPeriod(10000)  // §6.3
      // The paper's outages are 15-24 ms, implying an aggressive failure
      // detector; match that regime.
      .ViewChangeTimeout(Millis(8))
      .RetransmitTimeout(Millis(12))
      .CrashPrimaryAt(Millis(30))
      .Warmup(0)
      .Measure(Millis(100))
      .Timeline(Millis(2));
  return builder.spec();
}

namespace {

struct NamedScenario {
  RegistryEntry entry;
  std::function<ScenarioSpec()> make;
};

std::string LowerCase(const std::string& text) {
  std::string lower = text;
  for (char& ch : lower) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  return lower;
}

ScenarioSpec Fig2aSystem(const std::string& system) {
  Result<ScenarioSpec> spec =
      PaperSystemSpec(system, /*c=*/1, /*m=*/1, /*seed=*/17);
  SEEMORE_CHECK(spec.ok()) << spec.status().ToString();
  ScenarioBuilder builder(*std::move(spec));
  builder.Name("fig2a-" + LowerCase(system))
      .Description("Figure 2(a) point: " + system +
                   " at f=2 (c=1, m=1), 0/0 payload, 32 closed-loop clients")
      .Clients(32)
      .Echo(0, 0)
      .Warmup(Millis(150))
      .Measure(Millis(500));
  return builder.spec();
}

ScenarioSpec Fig3Payload(uint32_t request_kb, uint32_t reply_kb) {
  ScenarioBuilder builder(PaperBaseSpec(/*seed=*/17));
  char name[48];
  std::snprintf(name, sizeof(name), "fig3-%u-%u", request_kb, reply_kb);
  builder.Name(name)
      .Description("Figure 3 point: Lion, c=m=1, " +
                   std::to_string(request_kb) + " KB requests / " +
                   std::to_string(reply_kb) +
                   " KB replies (bench_fig3 sweeps all six systems)")
      .SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Clients(32)
      .Echo(request_kb, reply_kb)
      .Warmup(Millis(150))
      .Measure(Millis(500));
  return builder.spec();
}

ScenarioSpec Fig4PrimaryCrash() {
  Result<ScenarioSpec> base = Fig4SystemSpec("Lion", /*clients=*/48);
  SEEMORE_CHECK(base.ok()) << base.status().ToString();
  ScenarioBuilder builder(*std::move(base));
  builder.Name("fig4-primary-crash")
      .Description(
          "Figure 4 (§6.3): Lion, c=m=1, checkpoint period 10000, primary "
          "crashed at t=30ms on a 0-100ms timeline; the throughput dip is "
          "the view-change outage");
  return builder.spec();
}

ScenarioSpec ViewChangeStress() {
  ScenarioBuilder builder(PaperBaseSpec(/*seed=*/41));
  builder.Name("view-change-stress")
      .Description(
          "The Lion primary crashes mid-load (forcing a view change onto "
          "the other trusted replica) and later recovers as a backup, while "
          "a public proxy crash/recovers too; the books must still agree "
          "and every live replica must converge")
      .SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Clients(24)
      .Kv(128, 0.5)
      // Frequent checkpoints so recovered replicas can catch up via
      // snapshot even in a --quick smoke run.
      .CheckpointPeriod(128)
      .CrashAt(Millis(50), 0)
      .RecoverAt(Millis(150), 0)
      .CrashAt(Millis(180), 5)
      .RecoverAt(Millis(260), 5)
      .Warmup(Millis(100))
      .Measure(Millis(500))
      .Drain(Millis(400))
      .CheckConvergence();
  return builder.spec();
}

ScenarioSpec ModeSwitchStorm() {
  ScenarioBuilder builder(PaperBaseSpec(/*seed=*/53));
  builder.Name("mode-switch-storm")
      .Description(
          "§5.4 stress: the live cluster is switched Lion -> Dog -> Peacock "
          "-> Lion -> Dog under load, each switch riding an ordinary view "
          "change; agreement and convergence must survive the churn")
      .SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Clients(24)
      .Kv(128, 0.5)
      .SwitchAt(Millis(120), SeeMoReMode::kDog)
      .SwitchAt(Millis(240), SeeMoReMode::kPeacock)
      .SwitchAt(Millis(360), SeeMoReMode::kLion)
      .SwitchAt(Millis(480), SeeMoReMode::kDog)
      .Warmup(Millis(100))
      .Measure(Millis(500))
      .Drain(Millis(400))
      .CheckConvergence();
  return builder.spec();
}

ScenarioSpec CrossCloudPartition() {
  ScenarioBuilder builder(PaperBaseSpec(/*seed=*/67));
  builder.Name("cross-cloud-partition")
      .Description(
          "The private cloud loses connectivity to the rented public cloud "
          "for 150ms (every Lion quorum spans both clouds, so commits "
          "stall), then the link heals; progress must resume with no "
          "divergence")
      .SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Clients(16)
      .Echo(0, 0)
      .PartitionCloudsAt(Millis(150))
      .HealCloudsAt(Millis(300))
      .Warmup(Millis(100))
      .Measure(Millis(500))
      .Drain(Millis(500))
      .CheckConvergence();
  return builder.spec();
}

/// The two tcp-first robustness scenarios: both default to the process
/// backend (BackendKind::kTcp) so `seemore_ctl --scenario=...` exercises the
/// launcher's control channel, but they remain plain specs — `--smoke` and
/// the sim backend run them through SimNetwork's equivalent fault hooks.
ScenarioSpec ByzBackupTcp() {
  ScenarioBuilder builder(PaperBaseSpec(/*seed=*/97));
  builder.Name("byz-backup-tcp")
      .Description(
          "A public backup turns Byzantine (wrong votes + lying to clients) "
          "mid-load on the real-process backend: the launcher flips the "
          "replica's behaviour flags over the control channel, and the "
          "honest majority must keep committing and converge without it")
      .SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Backend(BackendKind::kTcp)
      .Clients(16)
      .Kv(128, 0.5)
      .ByzantineAt(Millis(150), 3, kByzWrongVotes | kByzLieToClients)
      .Warmup(Millis(100))
      .Measure(Millis(500))
      .Drain(Millis(500))
      .CheckConvergence();
  return builder.spec();
}

ScenarioSpec OneWayLink() {
  ScenarioBuilder builder(PaperBaseSpec(/*seed=*/101));
  builder.Name("one-way-link")
      .Description(
          "Asymmetric failure: replica 3 can hear replica 0 but frames "
          "3 -> 0 vanish for 150ms (the classic half-open link TCP alone "
          "cannot model), then the direction is restored; the protocol must "
          "ride out the asymmetry and converge")
      .SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Backend(BackendKind::kTcp)
      .Clients(16)
      .Echo(0, 0)
      .CutLinkAt(Millis(150), 3, 0)
      .RestoreLinkAt(Millis(300), 3, 0)
      .Warmup(Millis(100))
      .Measure(Millis(500))
      .Drain(Millis(500))
      .CheckConvergence();
  return builder.spec();
}

/// The kill-restart / kill-rejoin twins differ in exactly one schedule
/// event: the comeback replica is either a FRESH process rebuilt from its
/// durable WAL + snapshot store (restart) or the crashed process resuming
/// with its memory intact (rejoin). With fsync_interval 1 and a process
/// kill (which loses no appended bytes), the restored state must be
/// behaviorally identical to the retained one — tests/recovery_test.cc
/// asserts the pair agrees on verdicts and final state digests.
ScenarioSpec KillComeback(bool durable_restart, int replica,
                          const std::string& role, uint64_t seed) {
  ScenarioBuilder builder(PaperBaseSpec(seed));
  const std::string kind = durable_restart ? "kill-restart-" : "kill-rejoin-";
  const std::string comeback =
      durable_restart
          ? "a fresh process restores it from the durable WAL + snapshots"
          : "the same process rejoins with its memory intact";
  builder.Name(kind + role)
      .Description("Lion " + role + " (replica " + std::to_string(replica) +
                   ") is killed mid-load and " + comeback +
                   "; agreement and convergence must hold, and the twin "
                   "scenario (kill-" +
                   std::string(durable_restart ? "rejoin" : "restart") + "-" +
                   role + ") must end in the same state")
      .SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Clients(16)
      .Kv(128, 0.5)
      .CheckpointPeriod(64)
      // One oversized segment: the run never rolls the log, so the compacted
      // WAL a restart leaves behind and the longer WAL a rejoin keeps charge
      // identical append costs from the comeback on.
      .Durability(/*fsync_interval=*/1, /*segment_bytes=*/1 << 20)
      .CrashAt(Millis(60), replica);
  if (durable_restart) {
    builder.RestartAt(Millis(280), replica);
  } else {
    builder.RecoverAt(Millis(280), replica);
  }
  builder.Warmup(Millis(100))
      .Measure(Millis(500))
      .Drain(Millis(400))
      .CheckConvergence();
  return builder.spec();
}

/// Regression pin for the laggard catch-up bug: a public replica crashes
/// mid-load and comes back far behind the frontier. In Lion/Dog the trusted
/// primary's next signed checkpoint triggers the state fetch; in Peacock the
/// crash of replica 2 (the untrusted primary of view 0) additionally forces
/// a view change the sleeper never hears about, so the comeback replica must
/// first re-learn the view via a relayed NEW-VIEW (kSmNewViewRequest) and
/// only then catch up through the quorum-stable checkpoint. The restart twin
/// replays the same schedule against a fresh process restored from the
/// durable store (which re-enters the pre-crash view from disk and must take
/// the identical catch-up path).
ScenarioSpec LaggardCatchup(SeeMoReMode mode, bool durable_restart) {
  const std::string role = mode == SeeMoReMode::kLion
                               ? "lion"
                               : (mode == SeeMoReMode::kDog ? "dog"
                                                            : "peacock");
  ScenarioBuilder builder(PaperBaseSpec(/*seed=*/89));
  const std::string comeback = durable_restart
                                   ? "a fresh process restores it from disk"
                                   : "it rejoins with its memory intact";
  builder.Name("catchup-" + role + (durable_restart ? "-restart" : ""))
      .Description("Laggard catch-up in " + role +
                   " mode: public replica 2 is crashed mid-load and " +
                   comeback + " far behind the frontier (in Peacock it also "
                   "slept through the view change its own crash forced); by "
                   "the post-drain check it must have re-joined the view, "
                   "state-transferred through a stable checkpoint and "
                   "executed the full prefix")
      .SeeMoRe(mode, 1, 1)
      .Clients(16)
      .Kv(128, 0.5)
      .CheckpointPeriod(128)
      .CrashAt(Millis(80), 2);
  if (durable_restart) {
    builder.Durability(/*fsync_interval=*/1, /*segment_bytes=*/1 << 20)
        .RestartAt(Millis(250), 2);
  } else {
    builder.RecoverAt(Millis(250), 2);
  }
  builder.Warmup(Millis(100))
      .Measure(Millis(500))
      .Drain(Millis(400))
      .CheckConvergence();
  return builder.spec();
}

ScenarioSpec PowerLossCheckpoint() {
  ScenarioBuilder builder(PaperBaseSpec(/*seed=*/79));
  builder.Name("power-loss-checkpoint")
      .Description(
          "Replica 1 loses power mid-run with batched fsyncs (interval 64), "
          "so its disk rolls back to the durable frontier and the log tail "
          "is torn; the restart must truncate the torn tail, restore the "
          "newest intact snapshot, replay what survived and rejoin without "
          "divergence")
      .SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Clients(16)
      .Kv(128, 0.5)
      .CheckpointPeriod(32)
      .Durability(/*fsync_interval=*/64)
      .PowerLossAt(Millis(150), 1)
      .RestartAt(Millis(300), 1)
      .Warmup(Millis(100))
      .Measure(Millis(500))
      .Drain(Millis(400))
      .CheckConvergence();
  return builder.spec();
}

ScenarioSpec WalCorruptionRefusal() {
  ScenarioBuilder builder(PaperBaseSpec(/*seed=*/83));
  builder.Name("wal-corruption-refusal")
      .Description(
          "A public proxy is killed and a bit deep in its WAL is flipped "
          "while it is down; the restart must be REFUSED with a typed "
          "corruption error (valid records past the damage prove bytes were "
          "altered, not torn), the replica stays dead, and the cluster "
          "finishes without it")
      .SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Clients(16)
      .Kv(128, 0.5)
      .CheckpointPeriod(64)
      .Durability(/*fsync_interval=*/1)
      .CrashAt(Millis(80), 2)
      .CorruptLogAt(Millis(120), 2, /*offset_from_end=*/2048)
      .RestartAt(Millis(200), 2)
      .Warmup(Millis(100))
      .Measure(Millis(500))
      .Drain(Millis(400))
      .CheckConvergence();
  return builder.spec();
}

const std::vector<NamedScenario>& AllScenarios() {
  static const std::vector<NamedScenario> kScenarios = [] {
    std::vector<std::function<ScenarioSpec()>> factories;
    for (const std::string& system : PaperSystemNames()) {
      factories.push_back([system] { return Fig2aSystem(system); });
    }
    factories.push_back([] { return Fig3Payload(4, 0); });
    factories.push_back([] { return Fig3Payload(0, 4); });
    factories.push_back(Fig4PrimaryCrash);
    factories.push_back(ViewChangeStress);
    factories.push_back(ModeSwitchStorm);
    factories.push_back(CrossCloudPartition);
    factories.push_back(ByzBackupTcp);
    factories.push_back(OneWayLink);
    factories.push_back([] {
      return KillComeback(/*durable_restart=*/true, /*replica=*/0, "primary",
                          /*seed=*/71);
    });
    factories.push_back([] {
      return KillComeback(/*durable_restart=*/false, /*replica=*/0, "primary",
                          /*seed=*/71);
    });
    factories.push_back([] {
      return KillComeback(/*durable_restart=*/true, /*replica=*/1, "backup",
                          /*seed=*/73);
    });
    factories.push_back([] {
      return KillComeback(/*durable_restart=*/false, /*replica=*/1, "backup",
                          /*seed=*/73);
    });
    for (SeeMoReMode mode : {SeeMoReMode::kLion, SeeMoReMode::kDog,
                             SeeMoReMode::kPeacock}) {
      factories.push_back(
          [mode] { return LaggardCatchup(mode, /*durable_restart=*/false); });
      factories.push_back(
          [mode] { return LaggardCatchup(mode, /*durable_restart=*/true); });
    }
    factories.push_back(PowerLossCheckpoint);
    factories.push_back(WalCorruptionRefusal);
    // The registry entry is derived from the spec each factory actually
    // produces, so the listed name/description can never drift from what
    // FindScenario returns (and what reports record).
    std::vector<NamedScenario> scenarios;
    for (auto& factory : factories) {
      const ScenarioSpec spec = factory();
      scenarios.push_back(
          {{spec.name, spec.description}, std::move(factory)});
    }
    return scenarios;
  }();
  return kScenarios;
}

}  // namespace

const std::vector<RegistryEntry>& Registry() {
  static const std::vector<RegistryEntry> kEntries = [] {
    std::vector<RegistryEntry> entries;
    for (const NamedScenario& scenario : AllScenarios()) {
      entries.push_back(scenario.entry);
    }
    return entries;
  }();
  return kEntries;
}

Result<ScenarioSpec> FindScenario(const std::string& name) {
  for (const NamedScenario& scenario : AllScenarios()) {
    if (scenario.entry.name == name) return scenario.make();
  }
  return Status::NotFound("no scenario named \"" + name +
                          "\" (seemore_ctl --list-scenarios)");
}

void ApplyQuickBudgets(ScenarioSpec& spec) {
  spec.plan.warmup = std::min<SimTime>(spec.plan.warmup, Millis(100));
  spec.plan.measure = std::min<SimTime>(spec.plan.measure, Millis(250));
  spec.plan.drain = std::min<SimTime>(spec.plan.drain, Millis(250));
  spec.plan.sweep_clients.clear();
}

}  // namespace scenario
}  // namespace seemore
