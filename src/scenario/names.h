// One shared home for every name <-> enum mapping the experiment surface
// speaks: protocol kinds, SeeMoRe modes, Byzantine behaviour flags, workload
// and state-machine kinds, scheduled-event kinds. Both the seemore_ctl flag
// parser and the ScenarioSpec JSON codec go through these, so a scenario
// written as CLI flags and the same scenario written as JSON can never
// drift apart. (ProtocolKindName / SeeMoReModeName in consensus/config.h
// print display names — "SeeMoRe", "Lion"; the identifiers here are the
// lowercase wire/CLI tokens — "seemore", "lion".)

#ifndef SEEMORE_SCENARIO_NAMES_H_
#define SEEMORE_SCENARIO_NAMES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "consensus/config.h"
#include "util/status.h"

namespace seemore {
namespace scenario {

/// Which runtime executes the scenario: the deterministic discrete-event
/// simulator, or real processes over TCP on localhost (src/rt/).
enum class BackendKind : uint8_t {
  kSim = 1,
  kTcp = 2,
};

/// What the clients issue.
enum class WorkloadKind : uint8_t {
  kEcho = 1,  // x-KB request / y-KB reply micro-benchmark (§6)
  kKv = 2,    // mixed PUT/GET over a keyspace
};

/// Which replicated state machine each replica runs.
enum class StateMachineKind : uint8_t {
  kKvStore = 1,
  kLedger = 2,  // hash-chained append-only ledger
};

/// One step of a scenario's fault / switch / partition schedule.
enum class EventKind : uint8_t {
  kCrash = 1,            // crash replica `replica`
  kRecover = 2,          // recover replica `replica`
  kByzantine = 3,        // set `byz_flags` on replica `replica`
  kSwitch = 4,           // SeeMoRe mode switch to `target_mode`
  kCrashPrimary = 5,     // crash whoever is primary at event time
  kPartitionClouds = 6,  // cut every private<->public replica link
  kHealClouds = 7,       // restore the links cut by kPartitionClouds
  /// The durability events (storage/; require spec.durability.enabled):
  kRestart = 8,      // rebuild crashed replica `replica` from its disk
  kPowerLoss = 9,    // crash `replica` AND roll its disk to durable state
  kTruncateLog = 10, // chop `arg` bytes off the crashed replica's WAL tail
  kCorruptLog = 11,  // flip a bit `arg` bytes before the WAL tail end
  /// Directed-link events (the fault plane; `replica` -> `peer`):
  kCutLink = 12,     // drop all frames replica -> peer (one direction!)
  kRestoreLink = 13, // undo kCutLink for replica -> peer
  kShapeLink = 14,   // extra delay/jitter (+ drop ppm in `arg`) on replica -> peer
};

/// --- protocol kind ("seemore" | "cft" | "bft" | "supright") --------------
const char* ProtocolKindToken(ProtocolKind kind);
Result<ProtocolKind> ProtocolKindFromToken(const std::string& token);
const std::vector<ProtocolKind>& AllProtocolKinds();

/// --- SeeMoRe mode ("lion" | "dog" | "peacock") ---------------------------
const char* SeeMoReModeToken(SeeMoReMode mode);
Result<SeeMoReMode> SeeMoReModeFromToken(const std::string& token);
const std::vector<SeeMoReMode>& AllSeeMoReModes();

/// --- Byzantine behaviours ("silent" | "equivocate" | "wrongvotes" |
/// "lie", '+'-combinable: "wrongvotes+lie") --------------------------------
std::string ByzFlagsToken(uint32_t flags);
Result<uint32_t> ByzFlagsFromToken(const std::string& token);
const std::vector<uint32_t>& AllByzFlagBits();

/// --- backend ("sim" | "tcp") ---------------------------------------------
const char* BackendKindToken(BackendKind kind);
Result<BackendKind> BackendKindFromToken(const std::string& token);
const std::vector<BackendKind>& AllBackendKinds();

/// --- workload kind ("echo" | "kv") ---------------------------------------
const char* WorkloadKindToken(WorkloadKind kind);
Result<WorkloadKind> WorkloadKindFromToken(const std::string& token);
const std::vector<WorkloadKind>& AllWorkloadKinds();

/// --- state machine ("kv" | "ledger") -------------------------------------
const char* StateMachineKindToken(StateMachineKind kind);
Result<StateMachineKind> StateMachineKindFromToken(const std::string& token);
const std::vector<StateMachineKind>& AllStateMachineKinds();

/// --- schedule event ("crash" | "recover" | "byzantine" | "switch" |
/// "crash-primary" | "partition-clouds" | "heal-clouds" | "restart" |
/// "power-loss" | "truncate-log" | "corrupt-log" | "cut-link" |
/// "restore-link" | "shape-link") ------------------------------------------
const char* EventKindToken(EventKind kind);
Result<EventKind> EventKindFromToken(const std::string& token);
const std::vector<EventKind>& AllEventKinds();
/// " | "-joined tokens of `kinds` — shared by every "supported events are
/// ..." error message, so the text can't drift from the actual table.
std::string EventKindTokenList(const std::vector<EventKind>& kinds);

}  // namespace scenario
}  // namespace seemore

#endif  // SEEMORE_SCENARIO_NAMES_H_
