#include "scenario/builder.h"

namespace seemore {
namespace scenario {

ScenarioBuilder& ScenarioBuilder::Name(std::string name) {
  spec_.name = std::move(name);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Description(std::string description) {
  spec_.description = std::move(description);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::SeeMoRe(SeeMoReMode mode, int c, int m) {
  spec_.protocol = ProtocolKind::kSeeMoRe;
  spec_.mode = mode;
  spec_.topology.c = c;
  spec_.topology.m = m;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Cft(int f) {
  spec_.protocol = ProtocolKind::kCft;
  spec_.topology.f = f;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Bft(int f) {
  spec_.protocol = ProtocolKind::kBft;
  spec_.topology.f = f;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::SUpRight(int c, int m) {
  spec_.protocol = ProtocolKind::kSUpRight;
  spec_.topology.c = c;
  spec_.topology.m = m;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::CloudSizes(int s, int p) {
  spec_.topology.s = s;
  spec_.topology.p = p;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Backend(BackendKind backend) {
  spec_.backend = backend;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Batching(int batch_max, int pipeline_max) {
  spec_.tuning.batch_max = batch_max;
  spec_.tuning.pipeline_max = pipeline_max;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::CheckpointPeriod(int period) {
  spec_.tuning.checkpoint_period = period;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::ViewChangeTimeout(SimTime timeout) {
  spec_.tuning.view_change_timeout = timeout;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::LionSignAccepts(bool signed_accepts) {
  spec_.tuning.lion_sign_accepts = signed_accepts;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Network(const NetworkConfig& net) {
  spec_.net = net;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Costs(const CostModel& costs) {
  spec_.costs = costs;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Drop(double probability) {
  spec_.net.drop_probability = probability;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Duplicate(double probability) {
  spec_.net.duplicate_probability = probability;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::CrossCloudLink(SimTime base,
                                                 SimTime jitter) {
  spec_.net.cross_cloud = {base, jitter};
  return *this;
}

ScenarioBuilder& ScenarioBuilder::ClientLink(SimTime base, SimTime jitter) {
  spec_.net.client_link = {base, jitter};
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Seed(uint64_t seed) {
  spec_.seed = seed;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Clients(int count) {
  spec_.clients = count;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::RetransmitTimeout(SimTime timeout) {
  spec_.client_retransmit_timeout = timeout;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Echo(uint32_t request_kb, uint32_t reply_kb) {
  spec_.workload.kind = WorkloadKind::kEcho;
  spec_.workload.request_kb = request_kb;
  spec_.workload.reply_kb = reply_kb;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Kv(int keys, double put_fraction) {
  spec_.workload.kind = WorkloadKind::kKv;
  spec_.workload.keys = keys;
  spec_.workload.put_fraction = put_fraction;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Ledger() {
  spec_.state_machine = StateMachineKind::kLedger;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Warmup(SimTime warmup) {
  spec_.plan.warmup = warmup;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Measure(SimTime measure) {
  spec_.plan.measure = measure;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Drain(SimTime drain) {
  spec_.plan.drain = drain;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Timeline(SimTime bucket) {
  spec_.plan.timeline = true;
  spec_.plan.timeline_bucket = bucket;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::CheckConvergence() {
  spec_.plan.check_convergence = true;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Sweep(std::vector<int> client_counts) {
  spec_.plan.sweep_clients = std::move(client_counts);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Durability(int fsync_interval,
                                             int64_t segment_bytes) {
  spec_.durability.enabled = true;
  spec_.durability.fsync_interval = fsync_interval;
  spec_.durability.segment_bytes = segment_bytes;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::CrashAt(SimTime at, int replica) {
  ScenarioEvent event;
  event.at = at;
  event.kind = EventKind::kCrash;
  event.replica = replica;
  spec_.schedule.push_back(event);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::RecoverAt(SimTime at, int replica) {
  ScenarioEvent event;
  event.at = at;
  event.kind = EventKind::kRecover;
  event.replica = replica;
  spec_.schedule.push_back(event);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::ByzantineAt(SimTime at, int replica,
                                              uint32_t byz_flags) {
  ScenarioEvent event;
  event.at = at;
  event.kind = EventKind::kByzantine;
  event.replica = replica;
  event.byz_flags = byz_flags;
  spec_.schedule.push_back(event);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::SwitchAt(SimTime at, SeeMoReMode mode) {
  ScenarioEvent event;
  event.at = at;
  event.kind = EventKind::kSwitch;
  event.target_mode = mode;
  spec_.schedule.push_back(event);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::CrashPrimaryAt(SimTime at) {
  ScenarioEvent event;
  event.at = at;
  event.kind = EventKind::kCrashPrimary;
  spec_.schedule.push_back(event);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::PartitionCloudsAt(SimTime at) {
  ScenarioEvent event;
  event.at = at;
  event.kind = EventKind::kPartitionClouds;
  spec_.schedule.push_back(event);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::HealCloudsAt(SimTime at) {
  ScenarioEvent event;
  event.at = at;
  event.kind = EventKind::kHealClouds;
  spec_.schedule.push_back(event);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::RestartAt(SimTime at, int replica) {
  ScenarioEvent event;
  event.at = at;
  event.kind = EventKind::kRestart;
  event.replica = replica;
  spec_.schedule.push_back(event);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::PowerLossAt(SimTime at, int replica) {
  ScenarioEvent event;
  event.at = at;
  event.kind = EventKind::kPowerLoss;
  event.replica = replica;
  spec_.schedule.push_back(event);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::TruncateLogAt(SimTime at, int replica,
                                                int64_t bytes_from_end) {
  ScenarioEvent event;
  event.at = at;
  event.kind = EventKind::kTruncateLog;
  event.replica = replica;
  event.arg = bytes_from_end;
  spec_.schedule.push_back(event);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::CorruptLogAt(SimTime at, int replica,
                                               int64_t offset_from_end) {
  ScenarioEvent event;
  event.at = at;
  event.kind = EventKind::kCorruptLog;
  event.replica = replica;
  event.arg = offset_from_end;
  spec_.schedule.push_back(event);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::CutLinkAt(SimTime at, int from, int to) {
  ScenarioEvent event;
  event.at = at;
  event.kind = EventKind::kCutLink;
  event.replica = from;
  event.peer = to;
  spec_.schedule.push_back(event);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::RestoreLinkAt(SimTime at, int from, int to) {
  ScenarioEvent event;
  event.at = at;
  event.kind = EventKind::kRestoreLink;
  event.replica = from;
  event.peer = to;
  spec_.schedule.push_back(event);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::ShapeLinkAt(SimTime at, int from, int to,
                                              SimTime delay, SimTime jitter,
                                              int64_t drop_ppm) {
  ScenarioEvent event;
  event.at = at;
  event.kind = EventKind::kShapeLink;
  event.replica = from;
  event.peer = to;
  event.delay = delay;
  event.jitter = jitter;
  event.arg = drop_ppm;
  spec_.schedule.push_back(event);
  return *this;
}

Result<ScenarioSpec> ScenarioBuilder::Build() const {
  SEEMORE_RETURN_IF_ERROR(spec_.Validate());
  return spec_;
}

}  // namespace scenario
}  // namespace seemore
