// Fluent construction of ScenarioSpecs. Every method mutates the spec under
// construction and returns the builder, so an experiment reads as one
// sentence:
//
//   ScenarioSpec spec = ScenarioBuilder()
//                           .Name("primary-crash")
//                           .SeeMoRe(SeeMoReMode::kLion, /*c=*/1, /*m=*/1)
//                           .Clients(32)
//                           .CrashPrimaryAt(Millis(30))
//                           .Warmup(Millis(0))
//                           .Measure(Millis(100))
//                           .Timeline(Millis(2))
//                           .Build()
//                           .value();
//
// Build() validates; spec() hands out the raw spec for callers that want to
// keep editing it (benches overriding one knob in a loop).

#ifndef SEEMORE_SCENARIO_BUILDER_H_
#define SEEMORE_SCENARIO_BUILDER_H_

#include <string>
#include <vector>

#include "scenario/spec.h"

namespace seemore {
namespace scenario {

class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;
  /// Start from an existing spec (e.g. a registry entry) and override.
  explicit ScenarioBuilder(ScenarioSpec base) : spec_(std::move(base)) {}

  ScenarioBuilder& Name(std::string name);
  ScenarioBuilder& Description(std::string description);

  /// --- protocol / topology ----------------------------------------------
  ScenarioBuilder& SeeMoRe(SeeMoReMode mode, int c, int m);
  ScenarioBuilder& Cft(int f);
  ScenarioBuilder& Bft(int f);
  ScenarioBuilder& SUpRight(int c, int m);
  /// Explicit cloud sizes (otherwise derived; see TopologySpec).
  ScenarioBuilder& CloudSizes(int s, int p);
  /// Which runtime the spec targets (sim is the default; see BackendKind).
  ScenarioBuilder& Backend(BackendKind backend);

  /// --- tuning --------------------------------------------------------------
  ScenarioBuilder& Batching(int batch_max, int pipeline_max);
  ScenarioBuilder& CheckpointPeriod(int period);
  ScenarioBuilder& ViewChangeTimeout(SimTime timeout);
  ScenarioBuilder& LionSignAccepts(bool signed_accepts);

  /// --- environment ---------------------------------------------------------
  ScenarioBuilder& Network(const NetworkConfig& net);
  ScenarioBuilder& Costs(const CostModel& costs);
  ScenarioBuilder& Drop(double probability);
  ScenarioBuilder& Duplicate(double probability);
  ScenarioBuilder& CrossCloudLink(SimTime base, SimTime jitter);
  ScenarioBuilder& ClientLink(SimTime base, SimTime jitter);

  /// --- clients / workload --------------------------------------------------
  ScenarioBuilder& Seed(uint64_t seed);
  ScenarioBuilder& Clients(int count);
  ScenarioBuilder& RetransmitTimeout(SimTime timeout);
  ScenarioBuilder& Echo(uint32_t request_kb, uint32_t reply_kb);
  ScenarioBuilder& Kv(int keys, double put_fraction);
  ScenarioBuilder& Ledger();

  /// --- measurement plan ----------------------------------------------------
  ScenarioBuilder& Warmup(SimTime warmup);
  ScenarioBuilder& Measure(SimTime measure);
  ScenarioBuilder& Drain(SimTime drain);
  ScenarioBuilder& Timeline(SimTime bucket);
  ScenarioBuilder& CheckConvergence();
  ScenarioBuilder& Sweep(std::vector<int> client_counts);

  /// --- durability ----------------------------------------------------------
  /// Enable the durable WAL + snapshot store on every replica.
  ScenarioBuilder& Durability(int fsync_interval = 1,
                              int64_t segment_bytes = 64 * 1024);

  /// --- schedule ------------------------------------------------------------
  ScenarioBuilder& CrashAt(SimTime at, int replica);
  ScenarioBuilder& RecoverAt(SimTime at, int replica);
  ScenarioBuilder& ByzantineAt(SimTime at, int replica, uint32_t byz_flags);
  ScenarioBuilder& SwitchAt(SimTime at, SeeMoReMode mode);
  ScenarioBuilder& CrashPrimaryAt(SimTime at);
  ScenarioBuilder& PartitionCloudsAt(SimTime at);
  ScenarioBuilder& HealCloudsAt(SimTime at);
  ScenarioBuilder& RestartAt(SimTime at, int replica);
  ScenarioBuilder& PowerLossAt(SimTime at, int replica);
  ScenarioBuilder& TruncateLogAt(SimTime at, int replica,
                                 int64_t bytes_from_end);
  ScenarioBuilder& CorruptLogAt(SimTime at, int replica,
                                int64_t offset_from_end);
  /// Directed-link faults: the link `from -> to`, that one direction only.
  ScenarioBuilder& CutLinkAt(SimTime at, int from, int to);
  ScenarioBuilder& RestoreLinkAt(SimTime at, int from, int to);
  ScenarioBuilder& ShapeLinkAt(SimTime at, int from, int to, SimTime delay,
                               SimTime jitter, int64_t drop_ppm);

  /// The spec so far, unvalidated (callers may keep editing).
  const ScenarioSpec& spec() const { return spec_; }
  ScenarioSpec& mutable_spec() { return spec_; }

  /// Validate()d spec, or the first validation error.
  Result<ScenarioSpec> Build() const;

 private:
  ScenarioSpec spec_;
};

}  // namespace scenario
}  // namespace seemore

#endif  // SEEMORE_SCENARIO_BUILDER_H_
