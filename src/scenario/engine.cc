#include "scenario/engine.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>

#include "smr/ledger.h"
#include "util/thread_pool.h"

namespace seemore {
namespace scenario {
namespace {

/// The primary at this moment, from the first live replica's point of view
/// (replicas can disagree mid view change; any live vantage is fine for
/// fault injection). -1 when everything is down.
int ResolvePrimary(Cluster& cluster) {
  const ClusterConfig& config = cluster.config();
  for (int i = 0; i < cluster.n(); ++i) {
    if (cluster.replica(i)->crashed()) continue;
    switch (config.kind) {
      case ProtocolKind::kSeeMoRe:
        return cluster.seemore(i)->current_primary();
      case ProtocolKind::kCft:
        return config.FlatPrimary(cluster.paxos(i)->view());
      case ProtocolKind::kBft:
      case ProtocolKind::kSUpRight:
        return config.FlatPrimary(cluster.pbft(i)->view());
    }
  }
  return -1;
}

/// Mutable state the schedule executor threads through event application.
struct ScheduleState {
  /// Links cut by kPartitionClouds, so kHealClouds restores exactly those
  /// (and not e.g. links detached by crashes).
  std::vector<std::pair<PrincipalId, PrincipalId>> cut_links;
  /// Replicas given non-zero Byzantine flags (excluded from convergence).
  std::set<int> byzantine;
};

/// Apply one schedule event. Returns the event outcome (the switch request
/// status for kSwitch; Ok otherwise) and a human-readable description.
Status ApplyEvent(Cluster& cluster, const ScenarioEvent& event,
                  ScheduleState& state, std::string& description) {
  description = event.ToString();
  switch (event.kind) {
    case EventKind::kCrash:
      cluster.Crash(event.replica);
      return Status::Ok();
    case EventKind::kRecover:
      cluster.Recover(event.replica);
      return Status::Ok();
    case EventKind::kByzantine:
      cluster.SetByzantine(event.replica, event.byz_flags);
      if (event.byz_flags != kByzNone) state.byzantine.insert(event.replica);
      return Status::Ok();
    case EventKind::kCrashPrimary: {
      const int primary = ResolvePrimary(cluster);
      if (primary < 0) {
        description += " (skipped: no live replica)";
        return Status::Ok();
      }
      description += " (replica " + std::to_string(primary) + ")";
      cluster.Crash(primary);
      return Status::Ok();
    }
    case EventKind::kSwitch: {
      Status status = RequestSwitch(cluster, event.target_mode);
      description += ": " + status.ToString();
      return status;
    }
    case EventKind::kPartitionClouds: {
      for (PrincipalId a : cluster.config().PrivateReplicas()) {
        for (PrincipalId b : cluster.config().PublicReplicas()) {
          cluster.net().SetLinkUp(a, b, false);
          state.cut_links.emplace_back(a, b);
        }
      }
      return Status::Ok();
    }
    case EventKind::kHealClouds: {
      for (const auto& [a, b] : state.cut_links) {
        cluster.net().SetLinkUp(a, b, true);
      }
      state.cut_links.clear();
      return Status::Ok();
    }
    case EventKind::kRestart: {
      if (!cluster.replica(event.replica)->crashed()) {
        // A runtime skip, not a spec error: crash-primary may have hit a
        // different replica than the schedule's author expected.
        description += " (skipped: replica not crashed)";
        return Status::Ok();
      }
      Result<RestartOutcome> outcome = cluster.Restart(event.replica);
      if (!outcome.ok()) {
        // The refusal is the scenario's observable (corrupt-log runs assert
        // on it); the replica stays crashed, its disk untouched.
        description += " (refused: " + outcome.status().ToString() + ")";
        return outcome.status();
      }
      description += " (restored from snapshot " +
                     std::to_string(outcome->snapshot_seq) + ", replayed " +
                     std::to_string(outcome->replayed_commits) +
                     " commits, discarded " +
                     std::to_string(outcome->truncated_bytes) +
                     " torn bytes)";
      return Status::Ok();
    }
    case EventKind::kPowerLoss:
      cluster.PowerLoss(event.replica);
      return Status::Ok();
    case EventKind::kTruncateLog: {
      const Status status = cluster.TruncateWalTail(
          event.replica, static_cast<uint64_t>(event.arg));
      if (!status.ok()) description += " (" + status.ToString() + ")";
      return status;
    }
    case EventKind::kCorruptLog: {
      const Status status = cluster.CorruptWalTail(
          event.replica, static_cast<uint64_t>(event.arg));
      if (!status.ok()) description += " (" + status.ToString() + ")";
      return status;
    }
    case EventKind::kCutLink:
      cluster.net().SetDirectedLinkUp(event.replica, event.peer, false);
      return Status::Ok();
    case EventKind::kRestoreLink:
      cluster.net().SetDirectedLinkUp(event.replica, event.peer, true);
      return Status::Ok();
    case EventKind::kShapeLink:
      cluster.net().ShapeDirectedLink(event.replica, event.peer, event.delay,
                                      event.jitter,
                                      static_cast<uint32_t>(event.arg));
      return Status::Ok();
  }
  return Status::Ok();
}

}  // namespace

Json ReplicaReport::ToJson() const {
  Json j = Json::Object();
  j.Set("id", id);
  j.Set("trusted", trusted);
  j.Set("crashed", crashed);
  j.Set("requests_executed", requests_executed);
  j.Set("batches_committed", batches_committed);
  j.Set("view_changes_completed", view_changes_completed);
  j.Set("messages_handled", messages_handled);
  j.Set("equivocations_detected", equivocations_detected);
  j.Set("cpu_busy_ms", cpu_busy_ms);
  j.Set("last_executed", last_executed);
  j.Set("state_digest", state_digest);
  return j;
}

Json ScenarioReport::DeterministicJson() const {
  ScenarioReport stripped = *this;
  stripped.result.wall_time_ms = 0.0;
  return stripped.ToJson();
}

Json ScenarioReport::ToJson() const {
  Json j = Json::Object();
  j.Set("scenario", scenario);
  j.Set("seed", seed);
  j.Set("cluster", cluster);
  j.Set("result", result.ToJson());
  Json applied = Json::Array();
  for (const AppliedEvent& event : events) {
    Json e = Json::Object();
    e.Set("at_ms", ToMillis(event.at));
    e.Set("description", event.description);
    applied.Append(std::move(e));
  }
  j.Set("events", std::move(applied));
  Json reps = Json::Array();
  for (const ReplicaReport& replica : replicas) {
    reps.Append(replica.ToJson());
  }
  j.Set("replicas", std::move(reps));
  Json network = Json::Object();
  network.Set("messages", net.messages);
  network.Set("bytes", net.bytes);
  network.Set("wire_bytes", net.wire_bytes);
  network.Set("replica_to_replica_messages", net.replica_to_replica_messages);
  network.Set("replica_to_replica_bytes", net.replica_to_replica_bytes);
  network.Set("replica_to_replica_wire_bytes",
              net.replica_to_replica_wire_bytes);
  network.Set("dropped", net.dropped);
  j.Set("network", std::move(network));
  j.Set("total_cpu_busy_ms", total_cpu_busy_ms);
  j.Set("total_executed", total_executed);
  j.Set("end_time_ms", ToMillis(end_time));
  if (!timeline.buckets.empty()) {
    Json t = Json::Object();
    t.Set("bucket_ms", ToMillis(timeline.bucket_width));
    Json kreqs = Json::Array();
    for (size_t b = 0; b < timeline.buckets.size(); ++b) {
      kreqs.Append(timeline.KreqsAt(b));
    }
    t.Set("kreqs", std::move(kreqs));
    j.Set("timeline", std::move(t));
  }
  j.Set("agreement", agreement.ToString());
  j.Set("convergence_checked", convergence_checked);
  j.Set("convergence", convergence.ToString());
  j.Set("ok", ok());
  return j;
}

ClusterOptions ToClusterOptions(const ScenarioSpec& spec) {
  ClusterOptions options;
  options.config = spec.ResolvedConfig();
  options.net = spec.net;
  options.costs = spec.costs;
  options.seed = spec.seed;
  options.client_retransmit_timeout = spec.client_retransmit_timeout;
  options.durability.enabled = spec.durability.enabled;
  options.durability.fsync_interval = spec.durability.fsync_interval;
  options.durability.segment_bytes =
      static_cast<uint32_t>(spec.durability.segment_bytes);
  if (spec.state_machine == StateMachineKind::kLedger) {
    options.state_machine_factory = [] {
      return std::make_unique<LedgerStateMachine>();
    };
  }
  return options;
}

OpFactory MakeWorkload(const ScenarioSpec& spec) {
  if (spec.workload.kind == WorkloadKind::kKv) {
    return KvWorkload(spec.seed * 13 + 7, spec.workload.keys,
                      spec.workload.put_fraction);
  }
  return EchoWorkload(spec.workload.request_kb, spec.workload.reply_kb);
}

Result<std::unique_ptr<Cluster>> MakeCluster(const ScenarioSpec& spec) {
  SEEMORE_RETURN_IF_ERROR(spec.Validate());
  return std::make_unique<Cluster>(ToClusterOptions(spec));
}

Status RequestSwitch(Cluster& cluster, SeeMoReMode target) {
  SeeMoReReplica* any = nullptr;
  for (int i = 0; i < cluster.n(); ++i) {
    if (!cluster.replica(i)->crashed()) {
      any = cluster.seemore(i);
      break;
    }
  }
  if (any == nullptr) return Status::Unavailable("all replicas crashed");
  // The switch must be requested on the new view's trusted authority; if
  // that node is crashed, aim one view further (the view change would skip
  // the dead primary anyway).
  for (uint64_t ahead = 1;
       ahead <= static_cast<uint64_t>(cluster.config().s); ++ahead) {
    const PrincipalId authority =
        any->SwitchAuthority(target, any->view() + ahead);
    if (cluster.replica(authority)->crashed()) continue;
    return cluster.seemore(authority)->RequestModeSwitch(target);
  }
  return Status::Unavailable("no live switch authority");
}

Result<ScenarioReport> RunScenario(const ScenarioSpec& spec) {
  return RunScenario(spec, ScenarioHooks{});
}

Result<ScenarioReport> RunScenario(const ScenarioSpec& spec,
                                   const ScenarioHooks& hooks) {
  SEEMORE_RETURN_IF_ERROR(spec.Validate());
  const auto wall_start = std::chrono::steady_clock::now();
  Cluster cluster(ToClusterOptions(spec));

  ScenarioReport report;
  report.scenario = spec.name;
  report.seed = spec.seed;
  report.cluster = cluster.config().ToString();
  report.timeline.bucket_width = spec.plan.timeline_bucket;

  if (hooks.on_start) hooks.on_start(cluster);

  const bool record_completions = spec.plan.timeline || hooks.on_complete;
  const OpFactory ops = spec.clients > 0 ? MakeWorkload(spec) : OpFactory();
  for (int i = 0; i < spec.clients; ++i) {
    SimClient* client = cluster.AddClient();
    if (record_completions) {
      ThroughputTimeline* timeline =
          spec.plan.timeline ? &report.timeline : nullptr;
      client->on_complete = [timeline, on_complete = hooks.on_complete](
                                SimTime when, SimTime latency) {
        if (timeline != nullptr) timeline->Record(when);
        if (on_complete) on_complete(when, latency);
      };
    }
    client->Start(ops);
  }

  // One sorted agenda: schedule events plus the two measurement boundaries.
  // Boundaries sort before events at the same instant; events keep their
  // spec order among themselves (stable sort).
  constexpr int kWarmupEnd = -1;
  constexpr int kMeasureEnd = -2;
  struct Step {
    SimTime at;
    int what;  // kWarmupEnd, kMeasureEnd, or an index into spec.schedule
  };
  std::vector<Step> agenda;
  agenda.push_back({spec.plan.warmup, kWarmupEnd});
  agenda.push_back({spec.plan.warmup + spec.plan.measure, kMeasureEnd});
  for (size_t i = 0; i < spec.schedule.size(); ++i) {
    agenda.push_back({spec.schedule[i].at, static_cast<int>(i)});
  }
  std::stable_sort(agenda.begin(), agenda.end(),
                   [](const Step& a, const Step& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.what < b.what;  // boundaries (negative) first
                   });

  ScheduleState state;
  for (const Step& step : agenda) {
    if (step.at > cluster.sim().now()) cluster.sim().RunUntil(step.at);
    if (step.what == kWarmupEnd) {
      for (int i = 0; i < cluster.num_clients(); ++i) {
        cluster.client(i)->ResetStats();
      }
      cluster.net().ResetCounters();
      continue;
    }
    if (step.what == kMeasureEnd) {
      // Hook-added clients (example tellers etc.) are part of the measured
      // population, so count what actually exists.
      report.result.clients = cluster.num_clients();
      Histogram merged;
      for (int i = 0; i < cluster.num_clients(); ++i) {
        SimClient* client = cluster.client(i);
        report.result.completed += client->completed();
        report.result.retransmissions += client->retransmissions();
        merged.Merge(client->latencies());
        client->Stop();
      }
      const double seconds = static_cast<double>(spec.plan.measure) /
                             static_cast<double>(kNanosPerSecond);
      report.result.throughput_kreqs =
          static_cast<double>(report.result.completed) / seconds / 1000.0;
      const double to_ms = static_cast<double>(kNanosPerMilli);
      report.result.mean_latency_ms = merged.Mean() / to_ms;
      report.result.p50_latency_ms = merged.P50() / to_ms;
      report.result.p90_latency_ms = merged.P90() / to_ms;
      report.result.p99_latency_ms = merged.P99() / to_ms;
      continue;
    }
    const ScenarioEvent& event = spec.schedule[static_cast<size_t>(step.what)];
    std::string description;
    Status outcome = ApplyEvent(cluster, event, state, description);
    report.events.push_back({event.at, std::move(description)});
    if (hooks.on_event) hooks.on_event(cluster, event, outcome);
  }

  if (hooks.on_finish) hooks.on_finish(cluster);
  if (spec.plan.drain > 0) {
    cluster.sim().RunUntil(cluster.sim().now() + spec.plan.drain);
  }

  report.net = cluster.net().counters();
  for (int i = 0; i < cluster.n(); ++i) {
    const ReplicaBase* replica = cluster.replica(i);
    ReplicaReport r;
    r.id = i;
    r.trusted = cluster.config().IsTrusted(i);
    r.crashed = replica->crashed();
    r.requests_executed = replica->stats().requests_executed;
    r.batches_committed = replica->stats().batches_committed;
    r.view_changes_completed = replica->stats().view_changes_completed;
    r.messages_handled = replica->stats().messages_handled;
    r.equivocations_detected = replica->stats().equivocations_detected;
    r.cpu_busy_ms = ToMillis(cluster.replica(i)->cpu()->total_busy());
    r.last_executed = replica->exec().last_executed();
    r.state_digest = replica->exec().StateDigest().ToHex();
    report.total_cpu_busy_ms += r.cpu_busy_ms;
    report.replicas.push_back(r);
  }
  report.total_executed = cluster.TotalExecuted();
  report.end_time = cluster.sim().now();

  report.agreement = cluster.CheckAgreement();
  if (spec.plan.check_convergence) {
    report.convergence_checked = true;
    std::vector<int> honest_live;
    for (int i = 0; i < cluster.n(); ++i) {
      if (cluster.replica(i)->crashed()) continue;
      if (state.byzantine.count(i) > 0) continue;
      honest_live.push_back(i);
    }
    report.convergence = cluster.CheckConvergence(honest_live);
  }
  report.result.wall_time_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  return report;
}

uint64_t SweepPointSeed(uint64_t base_seed, size_t index) {
  // Plain addition suffices: every consumer (Simulator, KeyStore, KvWorkload)
  // pushes its seed through SplitMix64 before use, which decorrelates
  // adjacent values. Index 0 keeps the base seed so a one-point sweep is
  // the same run as RunScenario(spec).
  return base_seed + static_cast<uint64_t>(index);
}

std::vector<ScenarioSpec> MakeSweepPoints(const ScenarioSpec& spec) {
  std::vector<int> counts = spec.plan.sweep_clients;
  if (counts.empty()) counts.push_back(spec.clients);
  std::vector<ScenarioSpec> points;
  points.reserve(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    ScenarioSpec point = spec;
    point.clients = counts[i];
    point.plan.sweep_clients.clear();
    point.seed = SweepPointSeed(spec.seed, i);
    points.push_back(std::move(point));
  }
  return points;
}

Result<std::vector<ScenarioReport>> RunMany(
    const std::vector<ScenarioSpec>& specs, int jobs) {
  return RunMany(specs, jobs, std::function<ScenarioHooks(size_t)>());
}

Result<std::vector<ScenarioReport>> RunMany(
    const std::vector<ScenarioSpec>& specs, int jobs,
    const std::function<ScenarioHooks(size_t)>& hooks_for) {
  // Validate everything up front so a bad spec fails before any thread (or
  // any earlier point's work) is spent.
  for (const ScenarioSpec& spec : specs) {
    SEEMORE_RETURN_IF_ERROR(spec.Validate());
  }

  // Hooks are built here, on the caller's thread, before any worker starts
  // (the documented contract: a hooks_for factory may touch caller state
  // without locking). Only the built hooks run on workers, and those must
  // touch per-index state only.
  std::vector<ScenarioHooks> hooks(specs.size());
  if (hooks_for) {
    for (size_t i = 0; i < specs.size(); ++i) hooks[i] = hooks_for(i);
  }

  std::vector<std::optional<Result<ScenarioReport>>> slots(specs.size());
  const auto run_point = [&](size_t i) {
    slots[i] = RunScenario(specs[i], hooks[i]);
  };

  if (jobs <= 1 || specs.size() <= 1) {
    // Degenerate case: plain serial execution, no threads at all.
    for (size_t i = 0; i < specs.size(); ++i) run_point(i);
  } else {
    if (static_cast<size_t>(jobs) > specs.size()) {
      jobs = static_cast<int>(specs.size());
    }
    ThreadPool pool(jobs);
    std::vector<std::future<void>> done;
    done.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      // Each task touches only its own slot (and its hooks touch only
      // per-index state), so no locking is needed.
      done.push_back(pool.Submit([&run_point, i] { run_point(i); }));
    }
    for (std::future<void>& f : done) f.get();  // rethrows task exceptions
  }

  std::vector<ScenarioReport> reports;
  reports.reserve(specs.size());
  for (std::optional<Result<ScenarioReport>>& slot : slots) {
    if (!slot->ok()) return slot->status();
    reports.push_back(*std::move(*slot));
  }
  return reports;
}

Result<std::vector<ScenarioReport>> RunSweep(const ScenarioSpec& spec,
                                             int jobs) {
  return RunMany(MakeSweepPoints(spec), jobs);
}

}  // namespace scenario
}  // namespace seemore
