#include "scenario/spec.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "consensus/replica_base.h"

namespace seemore {
namespace scenario {
namespace {

/// All defined Byzantine behaviour bits OR'd together.
uint32_t ValidByzMask() {
  uint32_t mask = 0;
  for (uint32_t bit : AllByzFlagBits()) mask |= bit;
  return mask;
}

int64_t ToWholeMicros(SimTime t) { return t / kNanosPerMicro; }

Status ReadTime(JsonObjectReader& reader, const std::string& key,
                SimTime* out) {
  int64_t us = ToWholeMicros(*out);
  SEEMORE_RETURN_IF_ERROR(reader.ReadInt(key, &us));
  *out = Micros(us);
  return Status::Ok();
}

Json LinkToJson(const LinkProfile& link) {
  Json j = Json::Object();
  j.Set("base_us", ToWholeMicros(link.base));
  j.Set("jitter_us", ToWholeMicros(link.jitter));
  return j;
}

Status LinkFromJson(const Json* json, const std::string& where,
                    LinkProfile* out) {
  if (json == nullptr) return Status::Ok();
  JsonObjectReader reader(*json);
  SEEMORE_RETURN_IF_ERROR(ReadTime(reader, "base_us", &out->base));
  SEEMORE_RETURN_IF_ERROR(ReadTime(reader, "jitter_us", &out->jitter));
  return reader.Finish(where);
}

}  // namespace

std::string ScenarioEvent::ToString() const {
  char prefix[48];
  std::snprintf(prefix, sizeof(prefix), "t=%.1fms ", ToMillis(at));
  std::string text(prefix);
  switch (kind) {
    case EventKind::kCrash:
      text += "crash replica " + std::to_string(replica);
      break;
    case EventKind::kRecover:
      text += "recover replica " + std::to_string(replica);
      break;
    case EventKind::kByzantine:
      text += "replica " + std::to_string(replica) + " turns Byzantine (" +
              ByzFlagsToken(byz_flags) + ")";
      break;
    case EventKind::kSwitch:
      text += std::string("switch mode to ") + SeeMoReModeToken(target_mode);
      break;
    case EventKind::kCrashPrimary:
      text += "crash the current primary";
      break;
    case EventKind::kPartitionClouds:
      text += "partition the private cloud from the public cloud";
      break;
    case EventKind::kHealClouds:
      text += "heal the cross-cloud partition";
      break;
    case EventKind::kRestart:
      text += "restart replica " + std::to_string(replica) +
              " from durable storage";
      break;
    case EventKind::kPowerLoss:
      text += "power loss at replica " + std::to_string(replica) +
              " (disk rolls back to its durable state)";
      break;
    case EventKind::kTruncateLog:
      text += "truncate replica " + std::to_string(replica) +
              "'s wal tail by " + std::to_string(arg) + " bytes";
      break;
    case EventKind::kCorruptLog:
      text += "flip a bit " + std::to_string(arg) +
              " bytes before the end of replica " + std::to_string(replica) +
              "'s wal";
      break;
    case EventKind::kCutLink:
      text += "cut the directed link " + std::to_string(replica) + " -> " +
              std::to_string(peer);
      break;
    case EventKind::kRestoreLink:
      text += "restore the directed link " + std::to_string(replica) +
              " -> " + std::to_string(peer);
      break;
    case EventKind::kShapeLink:
      text += "shape the directed link " + std::to_string(replica) + " -> " +
              std::to_string(peer) + " (+" +
              std::to_string(ToWholeMicros(delay)) + "us delay, " +
              std::to_string(ToWholeMicros(jitter)) + "us jitter, " +
              std::to_string(arg) + "ppm drop)";
      break;
  }
  return text;
}

ClusterConfig ScenarioSpec::ResolvedConfig() const {
  ClusterConfig config;
  config.kind = protocol;
  config.c = topology.c;
  config.m = topology.m;
  config.f = topology.f;
  config.s = topology.s >= 0 ? topology.s : 2 * topology.c;
  if (topology.p >= 0) {
    config.p = topology.p;
  } else if (protocol == ProtocolKind::kSUpRight) {
    config.p = HybridNetworkSize(topology.m, topology.c) - config.s;
  } else {
    config.p = 3 * topology.m + 1;
  }
  config.initial_mode = mode;
  config.batch_max = tuning.batch_max;
  config.pipeline_max = tuning.pipeline_max;
  config.checkpoint_period = tuning.checkpoint_period;
  config.view_change_timeout = tuning.view_change_timeout;
  config.lion_sign_accepts = tuning.lion_sign_accepts;
  return config;
}

Status ScenarioSpec::Validate() const {
  const ClusterConfig config = ResolvedConfig();
  SEEMORE_RETURN_IF_ERROR(config.Validate());

  if (clients < 0) {
    return Status::InvalidArgument("clients must be >= 0");
  }
  if (seed > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    // JSON integers are int64; a larger seed would not survive the
    // dump-spec -> --scenario round trip.
    return Status::InvalidArgument("seed must fit in 63 bits");
  }
  if (client_retransmit_timeout <= 0) {
    return Status::InvalidArgument("client_retransmit_timeout must be > 0");
  }
  if (net.drop_probability < 0.0 || net.drop_probability >= 1.0) {
    return Status::InvalidArgument("drop_probability must be in [0, 1)");
  }
  if (net.duplicate_probability < 0.0 || net.duplicate_probability >= 1.0) {
    return Status::InvalidArgument("duplicate_probability must be in [0, 1)");
  }
  if (net.bandwidth_bytes_per_sec <= 0) {
    return Status::InvalidArgument("bandwidth_bytes_per_sec must be > 0");
  }
  if (workload.kind == WorkloadKind::kKv && workload.keys <= 0) {
    return Status::InvalidArgument("kv workload needs keys > 0");
  }
  if (workload.put_fraction < 0.0 || workload.put_fraction > 1.0) {
    return Status::InvalidArgument("put_fraction must be in [0, 1]");
  }
  if (workload.request_kb > 1024 || workload.reply_kb > 1024) {
    return Status::InvalidArgument("echo payloads are capped at 1024 KiB");
  }
  if (plan.warmup < 0 || plan.measure <= 0 || plan.drain < 0) {
    return Status::InvalidArgument(
        "measurement plan needs warmup >= 0, measure > 0, drain >= 0");
  }
  if (plan.timeline && plan.timeline_bucket <= 0) {
    return Status::InvalidArgument("timeline_bucket must be > 0");
  }
  for (int count : plan.sweep_clients) {
    if (count <= 0) {
      return Status::InvalidArgument("sweep_clients entries must be > 0");
    }
  }

  if (durability.fsync_interval < 1) {
    return Status::InvalidArgument("durability.fsync_interval must be >= 1");
  }
  if (durability.segment_bytes < 4096) {
    return Status::InvalidArgument(
        "durability.segment_bytes must be >= 4096");
  }

  const int n = config.n();
  const bool hybrid = protocol == ProtocolKind::kSeeMoRe ||
                      protocol == ProtocolKind::kSUpRight;
  // Restart/tamper events only make sense against a crashed target; track
  // which replicas the schedule has down at each point. A crash-primary
  // crashes a replica only the run can name, so it satisfies the "something
  // is crashed" requirement for any target.
  std::vector<bool> down(static_cast<size_t>(n), false);
  bool crash_primary_seen = false;
  // Events fire in time order (ties keep schedule order — the engine
  // schedules them that way), so the crash tracking walks that order too.
  std::vector<size_t> order(schedule.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return schedule[a].at < schedule[b].at;
  });
  for (const size_t i : order) {
    const ScenarioEvent& event = schedule[i];
    const std::string where = "schedule[" + std::to_string(i) + "]";
    if (event.at < 0) {
      return Status::InvalidArgument(where + ": event time must be >= 0");
    }
    switch (event.kind) {
      case EventKind::kCrash:
      case EventKind::kRecover:
      case EventKind::kByzantine:
      case EventKind::kRestart:
      case EventKind::kPowerLoss:
      case EventKind::kTruncateLog:
      case EventKind::kCorruptLog:
        if (event.replica < 0 || event.replica >= n) {
          return Status::InvalidArgument(
              where + ": replica " + std::to_string(event.replica) +
              " out of range [0, " + std::to_string(n) + ")");
        }
        break;
      case EventKind::kCutLink:
      case EventKind::kRestoreLink:
      case EventKind::kShapeLink:
        if (event.replica < 0 || event.replica >= n) {
          return Status::InvalidArgument(
              where + ": replica " + std::to_string(event.replica) +
              " out of range [0, " + std::to_string(n) + ")");
        }
        if (event.peer < 0 || event.peer >= n) {
          return Status::InvalidArgument(
              where + ": peer " + std::to_string(event.peer) +
              " out of range [0, " + std::to_string(n) + ")");
        }
        if (event.peer == event.replica) {
          return Status::InvalidArgument(
              where + ": a directed link needs two distinct replicas");
        }
        if (event.delay < 0 || event.jitter < 0) {
          return Status::InvalidArgument(
              where + ": delay and jitter must be >= 0");
        }
        if (event.kind == EventKind::kShapeLink &&
            (event.arg < 0 || event.arg > 1000000)) {
          return Status::InvalidArgument(
              where + ": drop ppm (arg) must be in [0, 1000000]");
        }
        break;
      case EventKind::kSwitch:
      case EventKind::kCrashPrimary:
      case EventKind::kPartitionClouds:
      case EventKind::kHealClouds:
        break;
    }
    switch (event.kind) {
      case EventKind::kCrash:
      case EventKind::kPowerLoss:
        down[static_cast<size_t>(event.replica)] = true;
        break;
      case EventKind::kCrashPrimary:
        crash_primary_seen = true;
        break;
      case EventKind::kRecover:
      case EventKind::kRestart:
        if (event.kind == EventKind::kRestart &&
            !down[static_cast<size_t>(event.replica)] &&
            !crash_primary_seen) {
          return Status::InvalidArgument(
              where + ": restart of replica " +
              std::to_string(event.replica) +
              " without a preceding crash or power-loss (a restart replaces "
              "a crashed process)");
        }
        down[static_cast<size_t>(event.replica)] = false;
        break;
      case EventKind::kTruncateLog:
      case EventKind::kCorruptLog:
        if (!down[static_cast<size_t>(event.replica)] &&
            !crash_primary_seen) {
          return Status::InvalidArgument(
              where + ": wal tampering of replica " +
              std::to_string(event.replica) +
              " without a preceding crash or power-loss (the log is only "
              "tamperable while its replica is down)");
        }
        if (event.arg < 0) {
          return Status::InvalidArgument(where + ": arg must be >= 0");
        }
        break;
      default:
        break;
    }
    if ((event.kind == EventKind::kRestart ||
         event.kind == EventKind::kPowerLoss ||
         event.kind == EventKind::kTruncateLog ||
         event.kind == EventKind::kCorruptLog) &&
        !durability.enabled) {
      return Status::InvalidArgument(
          where + ": " + std::string(EventKindToken(event.kind)) +
          " requires durability.enabled");
    }
    if (event.kind == EventKind::kByzantine) {
      if ((event.byz_flags & ~ValidByzMask()) != 0) {
        return Status::InvalidArgument(where +
                                       ": unknown byzantine behaviour bits");
      }
      if (protocol == ProtocolKind::kSeeMoRe &&
          config.IsTrusted(event.replica) && event.byz_flags != kByzNone) {
        return Status::InvalidArgument(
            where + ": replica " + std::to_string(event.replica) +
            " is in the trusted private cloud; the model (§3.1) only admits "
            "Byzantine behaviour in the public cloud");
      }
    }
    if (event.kind == EventKind::kSwitch &&
        protocol != ProtocolKind::kSeeMoRe) {
      return Status::InvalidArgument(
          where + ": mode switches require protocol \"seemore\"");
    }
    if ((event.kind == EventKind::kPartitionClouds ||
         event.kind == EventKind::kHealClouds) &&
        !hybrid) {
      return Status::InvalidArgument(
          where + ": cloud partitions require a hybrid deployment "
                  "(seemore or supright)");
    }
  }
  return Status::Ok();
}

Json ScenarioSpec::ToJson() const {
  Json root = Json::Object();
  root.Set("name", name);
  root.Set("description", description);
  root.Set("backend", BackendKindToken(backend));
  root.Set("protocol", ProtocolKindToken(protocol));
  root.Set("mode", SeeMoReModeToken(mode));
  root.Set("seed", seed);
  root.Set("clients", clients);
  root.Set("client_retransmit_timeout_us",
           ToWholeMicros(client_retransmit_timeout));
  root.Set("state_machine", StateMachineKindToken(state_machine));

  Json topo = Json::Object();
  topo.Set("c", topology.c);
  topo.Set("m", topology.m);
  topo.Set("f", topology.f);
  topo.Set("s", topology.s);
  topo.Set("p", topology.p);
  root.Set("topology", std::move(topo));

  Json tune = Json::Object();
  tune.Set("batch_max", tuning.batch_max);
  tune.Set("pipeline_max", tuning.pipeline_max);
  tune.Set("checkpoint_period", tuning.checkpoint_period);
  tune.Set("view_change_timeout_us", ToWholeMicros(tuning.view_change_timeout));
  tune.Set("lion_sign_accepts", tuning.lion_sign_accepts);
  root.Set("tuning", std::move(tune));

  Json network = Json::Object();
  network.Set("intra_private", LinkToJson(net.intra_private));
  network.Set("intra_public", LinkToJson(net.intra_public));
  network.Set("cross_cloud", LinkToJson(net.cross_cloud));
  network.Set("client_link", LinkToJson(net.client_link));
  network.Set("drop_probability", net.drop_probability);
  network.Set("duplicate_probability", net.duplicate_probability);
  network.Set("bandwidth_bytes_per_sec", net.bandwidth_bytes_per_sec);
  network.Set("per_message_overhead_bytes", net.per_message_overhead_bytes);
  root.Set("network", std::move(network));

  Json cost = Json::Object();
  cost.Set("recv_fixed_us", ToWholeMicros(costs.recv_fixed));
  cost.Set("send_fixed_us", ToWholeMicros(costs.send_fixed));
  cost.Set("per_kib_us", ToWholeMicros(costs.per_kib));
  cost.Set("sign_us", ToWholeMicros(costs.sign));
  cost.Set("verify_us", ToWholeMicros(costs.verify));
  cost.Set("mac_us", ToWholeMicros(costs.mac));
  cost.Set("hash_per_kib_us", ToWholeMicros(costs.hash_per_kib));
  cost.Set("hash_fixed_us", ToWholeMicros(costs.hash_fixed));
  cost.Set("execute_us", ToWholeMicros(costs.execute));
  cost.Set("fsync_us", ToWholeMicros(costs.fsync));
  cost.Set("storage_write_per_kib_us",
           ToWholeMicros(costs.storage_write_per_kib));
  root.Set("costs", std::move(cost));

  Json work = Json::Object();
  work.Set("kind", WorkloadKindToken(workload.kind));
  work.Set("request_kb", static_cast<int64_t>(workload.request_kb));
  work.Set("reply_kb", static_cast<int64_t>(workload.reply_kb));
  work.Set("keys", workload.keys);
  work.Set("put_fraction", workload.put_fraction);
  root.Set("workload", std::move(work));

  Json measurement = Json::Object();
  measurement.Set("warmup_us", ToWholeMicros(plan.warmup));
  measurement.Set("measure_us", ToWholeMicros(plan.measure));
  measurement.Set("drain_us", ToWholeMicros(plan.drain));
  measurement.Set("timeline", plan.timeline);
  measurement.Set("timeline_bucket_us", ToWholeMicros(plan.timeline_bucket));
  measurement.Set("check_convergence", plan.check_convergence);
  Json sweep = Json::Array();
  for (int count : plan.sweep_clients) sweep.Append(count);
  measurement.Set("sweep_clients", std::move(sweep));
  root.Set("measurement", std::move(measurement));

  Json durable = Json::Object();
  durable.Set("enabled", durability.enabled);
  durable.Set("fsync_interval", durability.fsync_interval);
  durable.Set("segment_bytes", durability.segment_bytes);
  root.Set("durability", std::move(durable));

  Json events = Json::Array();
  for (const ScenarioEvent& event : schedule) {
    Json e = Json::Object();
    e.Set("at_us", ToWholeMicros(event.at));
    e.Set("kind", EventKindToken(event.kind));
    switch (event.kind) {
      case EventKind::kCrash:
      case EventKind::kRecover:
        e.Set("replica", event.replica);
        break;
      case EventKind::kByzantine:
        e.Set("replica", event.replica);
        e.Set("behaviours", ByzFlagsToken(event.byz_flags));
        break;
      case EventKind::kSwitch:
        e.Set("mode", SeeMoReModeToken(event.target_mode));
        break;
      case EventKind::kCrashPrimary:
      case EventKind::kPartitionClouds:
      case EventKind::kHealClouds:
        break;
      case EventKind::kRestart:
      case EventKind::kPowerLoss:
        e.Set("replica", event.replica);
        break;
      case EventKind::kTruncateLog:
      case EventKind::kCorruptLog:
        e.Set("replica", event.replica);
        e.Set("arg", event.arg);
        break;
      case EventKind::kCutLink:
      case EventKind::kRestoreLink:
        e.Set("replica", event.replica);
        e.Set("peer", event.peer);
        break;
      case EventKind::kShapeLink:
        e.Set("replica", event.replica);
        e.Set("peer", event.peer);
        e.Set("delay_us", ToWholeMicros(event.delay));
        e.Set("jitter_us", ToWholeMicros(event.jitter));
        e.Set("arg", event.arg);
        break;
    }
    events.Append(std::move(e));
  }
  root.Set("schedule", std::move(events));
  return root;
}

Result<ScenarioSpec> ScenarioSpec::FromJson(const Json& json) {
  ScenarioSpec spec;
  JsonObjectReader root(json);
  if (!root.valid()) {
    return Status::InvalidArgument("scenario spec must be a JSON object");
  }

  SEEMORE_RETURN_IF_ERROR(root.ReadString("name", &spec.name));
  SEEMORE_RETURN_IF_ERROR(root.ReadString("description", &spec.description));
  std::string token = BackendKindToken(spec.backend);
  SEEMORE_RETURN_IF_ERROR(root.ReadString("backend", &token));
  SEEMORE_ASSIGN_OR_RETURN(spec.backend, BackendKindFromToken(token));
  token = ProtocolKindToken(spec.protocol);
  SEEMORE_RETURN_IF_ERROR(root.ReadString("protocol", &token));
  SEEMORE_ASSIGN_OR_RETURN(spec.protocol, ProtocolKindFromToken(token));
  token = SeeMoReModeToken(spec.mode);
  SEEMORE_RETURN_IF_ERROR(root.ReadString("mode", &token));
  SEEMORE_ASSIGN_OR_RETURN(spec.mode, SeeMoReModeFromToken(token));
  SEEMORE_RETURN_IF_ERROR(root.ReadUint64("seed", &spec.seed));
  SEEMORE_RETURN_IF_ERROR(root.ReadInt("clients", &spec.clients));
  SEEMORE_RETURN_IF_ERROR(ReadTime(root, "client_retransmit_timeout_us",
                                   &spec.client_retransmit_timeout));
  token = StateMachineKindToken(spec.state_machine);
  SEEMORE_RETURN_IF_ERROR(root.ReadString("state_machine", &token));
  SEEMORE_ASSIGN_OR_RETURN(spec.state_machine,
                           StateMachineKindFromToken(token));

  if (const Json* topo = root.Get("topology")) {
    JsonObjectReader reader(*topo);
    SEEMORE_RETURN_IF_ERROR(reader.ReadInt("c", &spec.topology.c));
    SEEMORE_RETURN_IF_ERROR(reader.ReadInt("m", &spec.topology.m));
    SEEMORE_RETURN_IF_ERROR(reader.ReadInt("f", &spec.topology.f));
    SEEMORE_RETURN_IF_ERROR(reader.ReadInt("s", &spec.topology.s));
    SEEMORE_RETURN_IF_ERROR(reader.ReadInt("p", &spec.topology.p));
    SEEMORE_RETURN_IF_ERROR(reader.Finish("topology"));
  }

  if (const Json* tune = root.Get("tuning")) {
    JsonObjectReader reader(*tune);
    SEEMORE_RETURN_IF_ERROR(reader.ReadInt("batch_max",
                                           &spec.tuning.batch_max));
    SEEMORE_RETURN_IF_ERROR(
        reader.ReadInt("pipeline_max", &spec.tuning.pipeline_max));
    SEEMORE_RETURN_IF_ERROR(
        reader.ReadInt("checkpoint_period", &spec.tuning.checkpoint_period));
    SEEMORE_RETURN_IF_ERROR(ReadTime(reader, "view_change_timeout_us",
                                     &spec.tuning.view_change_timeout));
    SEEMORE_RETURN_IF_ERROR(
        reader.ReadBool("lion_sign_accepts", &spec.tuning.lion_sign_accepts));
    SEEMORE_RETURN_IF_ERROR(reader.Finish("tuning"));
  }

  if (const Json* network = root.Get("network")) {
    JsonObjectReader reader(*network);
    SEEMORE_RETURN_IF_ERROR(LinkFromJson(reader.Get("intra_private"),
                                         "network.intra_private",
                                         &spec.net.intra_private));
    SEEMORE_RETURN_IF_ERROR(LinkFromJson(reader.Get("intra_public"),
                                         "network.intra_public",
                                         &spec.net.intra_public));
    SEEMORE_RETURN_IF_ERROR(LinkFromJson(
        reader.Get("cross_cloud"), "network.cross_cloud",
        &spec.net.cross_cloud));
    SEEMORE_RETURN_IF_ERROR(LinkFromJson(
        reader.Get("client_link"), "network.client_link",
        &spec.net.client_link));
    SEEMORE_RETURN_IF_ERROR(
        reader.ReadDouble("drop_probability", &spec.net.drop_probability));
    SEEMORE_RETURN_IF_ERROR(reader.ReadDouble(
        "duplicate_probability", &spec.net.duplicate_probability));
    SEEMORE_RETURN_IF_ERROR(reader.ReadInt("bandwidth_bytes_per_sec",
                                           &spec.net.bandwidth_bytes_per_sec));
    SEEMORE_RETURN_IF_ERROR(reader.ReadInt(
        "per_message_overhead_bytes", &spec.net.per_message_overhead_bytes));
    SEEMORE_RETURN_IF_ERROR(reader.Finish("network"));
  }

  if (const Json* cost = root.Get("costs")) {
    JsonObjectReader reader(*cost);
    SEEMORE_RETURN_IF_ERROR(
        ReadTime(reader, "recv_fixed_us", &spec.costs.recv_fixed));
    SEEMORE_RETURN_IF_ERROR(
        ReadTime(reader, "send_fixed_us", &spec.costs.send_fixed));
    SEEMORE_RETURN_IF_ERROR(ReadTime(reader, "per_kib_us",
                                     &spec.costs.per_kib));
    SEEMORE_RETURN_IF_ERROR(ReadTime(reader, "sign_us", &spec.costs.sign));
    SEEMORE_RETURN_IF_ERROR(ReadTime(reader, "verify_us", &spec.costs.verify));
    SEEMORE_RETURN_IF_ERROR(ReadTime(reader, "mac_us", &spec.costs.mac));
    SEEMORE_RETURN_IF_ERROR(
        ReadTime(reader, "hash_per_kib_us", &spec.costs.hash_per_kib));
    SEEMORE_RETURN_IF_ERROR(
        ReadTime(reader, "hash_fixed_us", &spec.costs.hash_fixed));
    SEEMORE_RETURN_IF_ERROR(ReadTime(reader, "execute_us",
                                     &spec.costs.execute));
    SEEMORE_RETURN_IF_ERROR(ReadTime(reader, "fsync_us", &spec.costs.fsync));
    SEEMORE_RETURN_IF_ERROR(ReadTime(reader, "storage_write_per_kib_us",
                                     &spec.costs.storage_write_per_kib));
    SEEMORE_RETURN_IF_ERROR(reader.Finish("costs"));
  }

  if (const Json* work = root.Get("workload")) {
    JsonObjectReader reader(*work);
    token = WorkloadKindToken(spec.workload.kind);
    SEEMORE_RETURN_IF_ERROR(reader.ReadString("kind", &token));
    SEEMORE_ASSIGN_OR_RETURN(spec.workload.kind, WorkloadKindFromToken(token));
    SEEMORE_RETURN_IF_ERROR(
        reader.ReadUint32("request_kb", &spec.workload.request_kb));
    SEEMORE_RETURN_IF_ERROR(
        reader.ReadUint32("reply_kb", &spec.workload.reply_kb));
    SEEMORE_RETURN_IF_ERROR(reader.ReadInt("keys", &spec.workload.keys));
    SEEMORE_RETURN_IF_ERROR(
        reader.ReadDouble("put_fraction", &spec.workload.put_fraction));
    SEEMORE_RETURN_IF_ERROR(reader.Finish("workload"));
  }

  if (const Json* measurement = root.Get("measurement")) {
    JsonObjectReader reader(*measurement);
    SEEMORE_RETURN_IF_ERROR(ReadTime(reader, "warmup_us", &spec.plan.warmup));
    SEEMORE_RETURN_IF_ERROR(ReadTime(reader, "measure_us",
                                     &spec.plan.measure));
    SEEMORE_RETURN_IF_ERROR(ReadTime(reader, "drain_us", &spec.plan.drain));
    SEEMORE_RETURN_IF_ERROR(reader.ReadBool("timeline", &spec.plan.timeline));
    SEEMORE_RETURN_IF_ERROR(
        ReadTime(reader, "timeline_bucket_us", &spec.plan.timeline_bucket));
    SEEMORE_RETURN_IF_ERROR(reader.ReadBool("check_convergence",
                                            &spec.plan.check_convergence));
    if (const Json* sweep = reader.Get("sweep_clients")) {
      if (!sweep->is_array()) {
        return Status::InvalidArgument("sweep_clients must be an array");
      }
      for (const Json& entry : sweep->items()) {
        if (!entry.is_int()) {
          return Status::InvalidArgument(
              "sweep_clients entries must be integers");
        }
        spec.plan.sweep_clients.push_back(static_cast<int>(entry.AsInt()));
      }
    }
    SEEMORE_RETURN_IF_ERROR(reader.Finish("measurement"));
  }

  if (const Json* durable = root.Get("durability")) {
    JsonObjectReader reader(*durable);
    SEEMORE_RETURN_IF_ERROR(
        reader.ReadBool("enabled", &spec.durability.enabled));
    SEEMORE_RETURN_IF_ERROR(
        reader.ReadInt("fsync_interval", &spec.durability.fsync_interval));
    SEEMORE_RETURN_IF_ERROR(
        reader.ReadInt("segment_bytes", &spec.durability.segment_bytes));
    SEEMORE_RETURN_IF_ERROR(reader.Finish("durability"));
  }

  if (const Json* events = root.Get("schedule")) {
    if (!events->is_array()) {
      return Status::InvalidArgument("schedule must be an array");
    }
    for (size_t i = 0; i < events->size(); ++i) {
      const std::string where = "schedule[" + std::to_string(i) + "]";
      JsonObjectReader reader(events->at(i));
      if (!reader.valid()) {
        return Status::InvalidArgument(where + " must be an object");
      }
      ScenarioEvent event;
      SEEMORE_RETURN_IF_ERROR(ReadTime(reader, "at_us", &event.at));
      std::string kind_token;
      SEEMORE_RETURN_IF_ERROR(reader.ReadString("kind", &kind_token));
      if (kind_token.empty()) {
        return Status::InvalidArgument(where + " needs a \"kind\"");
      }
      SEEMORE_ASSIGN_OR_RETURN(event.kind, EventKindFromToken(kind_token));
      SEEMORE_RETURN_IF_ERROR(reader.ReadInt("replica", &event.replica));
      std::string behaviours;
      SEEMORE_RETURN_IF_ERROR(reader.ReadString("behaviours", &behaviours));
      if (!behaviours.empty()) {
        SEEMORE_ASSIGN_OR_RETURN(event.byz_flags,
                                 ByzFlagsFromToken(behaviours));
      }
      std::string mode_token;
      SEEMORE_RETURN_IF_ERROR(reader.ReadString("mode", &mode_token));
      if (!mode_token.empty()) {
        SEEMORE_ASSIGN_OR_RETURN(event.target_mode,
                                 SeeMoReModeFromToken(mode_token));
      }
      SEEMORE_RETURN_IF_ERROR(reader.ReadInt("arg", &event.arg));
      SEEMORE_RETURN_IF_ERROR(reader.ReadInt("peer", &event.peer));
      SEEMORE_RETURN_IF_ERROR(ReadTime(reader, "delay_us", &event.delay));
      SEEMORE_RETURN_IF_ERROR(ReadTime(reader, "jitter_us", &event.jitter));
      SEEMORE_RETURN_IF_ERROR(reader.Finish(where));
      spec.schedule.push_back(event);
    }
  }

  SEEMORE_RETURN_IF_ERROR(root.Finish("scenario spec"));
  return spec;
}

Result<ScenarioSpec> ScenarioSpec::FromJsonText(const std::string& text) {
  SEEMORE_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return FromJson(json);
}

}  // namespace scenario
}  // namespace seemore
