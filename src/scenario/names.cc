#include "scenario/names.h"

#include "consensus/replica_base.h"
#include "util/flags.h"

namespace seemore {
namespace scenario {

const char* ProtocolKindToken(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kSeeMoRe:
      return "seemore";
    case ProtocolKind::kCft:
      return "cft";
    case ProtocolKind::kBft:
      return "bft";
    case ProtocolKind::kSUpRight:
      return "supright";
  }
  return "?";
}

Result<ProtocolKind> ProtocolKindFromToken(const std::string& token) {
  for (ProtocolKind kind : AllProtocolKinds()) {
    if (token == ProtocolKindToken(kind)) return kind;
  }
  return Status::InvalidArgument(
      "unknown protocol: \"" + token +
      "\" (expected seemore | cft | bft | supright)");
}

const std::vector<ProtocolKind>& AllProtocolKinds() {
  static const std::vector<ProtocolKind> kAll = {
      ProtocolKind::kSeeMoRe, ProtocolKind::kCft, ProtocolKind::kBft,
      ProtocolKind::kSUpRight};
  return kAll;
}

const char* SeeMoReModeToken(SeeMoReMode mode) {
  switch (mode) {
    case SeeMoReMode::kLion:
      return "lion";
    case SeeMoReMode::kDog:
      return "dog";
    case SeeMoReMode::kPeacock:
      return "peacock";
  }
  return "?";
}

Result<SeeMoReMode> SeeMoReModeFromToken(const std::string& token) {
  for (SeeMoReMode mode : AllSeeMoReModes()) {
    if (token == SeeMoReModeToken(mode)) return mode;
  }
  return Status::InvalidArgument("unknown mode: \"" + token +
                                 "\" (expected lion | dog | peacock)");
}

const std::vector<SeeMoReMode>& AllSeeMoReModes() {
  static const std::vector<SeeMoReMode> kAll = {
      SeeMoReMode::kLion, SeeMoReMode::kDog, SeeMoReMode::kPeacock};
  return kAll;
}

const char* BackendKindToken(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSim:
      return "sim";
    case BackendKind::kTcp:
      return "tcp";
  }
  return "?";
}

Result<BackendKind> BackendKindFromToken(const std::string& token) {
  for (BackendKind kind : AllBackendKinds()) {
    if (token == BackendKindToken(kind)) return kind;
  }
  return Status::InvalidArgument("unknown backend: \"" + token +
                                 "\" (expected sim | tcp)");
}

const std::vector<BackendKind>& AllBackendKinds() {
  static const std::vector<BackendKind> kAll = {BackendKind::kSim,
                                                BackendKind::kTcp};
  return kAll;
}

namespace {

const char* ByzBitToken(uint32_t bit) {
  switch (bit) {
    case kByzSilent:
      return "silent";
    case kByzEquivocate:
      return "equivocate";
    case kByzWrongVotes:
      return "wrongvotes";
    case kByzLieToClients:
      return "lie";
  }
  return "?";
}

}  // namespace

std::string ByzFlagsToken(uint32_t flags) {
  if (flags == kByzNone) return "none";
  std::string token;
  for (uint32_t bit : AllByzFlagBits()) {
    if ((flags & bit) == 0) continue;
    if (!token.empty()) token += '+';
    token += ByzBitToken(bit);
  }
  return token;
}

Result<uint32_t> ByzFlagsFromToken(const std::string& token) {
  if (token == "none" || token.empty()) return kByzNone;
  uint32_t flags = 0;
  for (const std::string& part : SplitString(token, '+')) {
    bool matched = false;
    for (uint32_t bit : AllByzFlagBits()) {
      if (part == ByzBitToken(bit)) {
        flags |= bit;
        matched = true;
        break;
      }
    }
    if (!matched) {
      return Status::InvalidArgument(
          "unknown byzantine behaviour: \"" + part +
          "\" (expected silent | equivocate | wrongvotes | lie)");
    }
  }
  return flags;
}

const std::vector<uint32_t>& AllByzFlagBits() {
  static const std::vector<uint32_t> kAll = {kByzSilent, kByzEquivocate,
                                             kByzWrongVotes, kByzLieToClients};
  return kAll;
}

const char* WorkloadKindToken(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kEcho:
      return "echo";
    case WorkloadKind::kKv:
      return "kv";
  }
  return "?";
}

Result<WorkloadKind> WorkloadKindFromToken(const std::string& token) {
  for (WorkloadKind kind : AllWorkloadKinds()) {
    if (token == WorkloadKindToken(kind)) return kind;
  }
  return Status::InvalidArgument("unknown workload: \"" + token +
                                 "\" (expected echo | kv)");
}

const std::vector<WorkloadKind>& AllWorkloadKinds() {
  static const std::vector<WorkloadKind> kAll = {WorkloadKind::kEcho,
                                                 WorkloadKind::kKv};
  return kAll;
}

const char* StateMachineKindToken(StateMachineKind kind) {
  switch (kind) {
    case StateMachineKind::kKvStore:
      return "kv";
    case StateMachineKind::kLedger:
      return "ledger";
  }
  return "?";
}

Result<StateMachineKind> StateMachineKindFromToken(const std::string& token) {
  for (StateMachineKind kind : AllStateMachineKinds()) {
    if (token == StateMachineKindToken(kind)) return kind;
  }
  return Status::InvalidArgument("unknown state machine: \"" + token +
                                 "\" (expected kv | ledger)");
}

const std::vector<StateMachineKind>& AllStateMachineKinds() {
  static const std::vector<StateMachineKind> kAll = {StateMachineKind::kKvStore,
                                                     StateMachineKind::kLedger};
  return kAll;
}

const char* EventKindToken(EventKind kind) {
  switch (kind) {
    case EventKind::kCrash:
      return "crash";
    case EventKind::kRecover:
      return "recover";
    case EventKind::kByzantine:
      return "byzantine";
    case EventKind::kSwitch:
      return "switch";
    case EventKind::kCrashPrimary:
      return "crash-primary";
    case EventKind::kPartitionClouds:
      return "partition-clouds";
    case EventKind::kHealClouds:
      return "heal-clouds";
    case EventKind::kRestart:
      return "restart";
    case EventKind::kPowerLoss:
      return "power-loss";
    case EventKind::kTruncateLog:
      return "truncate-log";
    case EventKind::kCorruptLog:
      return "corrupt-log";
    case EventKind::kCutLink:
      return "cut-link";
    case EventKind::kRestoreLink:
      return "restore-link";
    case EventKind::kShapeLink:
      return "shape-link";
  }
  return "?";
}

Result<EventKind> EventKindFromToken(const std::string& token) {
  for (EventKind kind : AllEventKinds()) {
    if (token == EventKindToken(kind)) return kind;
  }
  return Status::InvalidArgument("unknown event kind: \"" + token +
                                 "\" (expected " +
                                 EventKindTokenList(AllEventKinds()) + ")");
}

const std::vector<EventKind>& AllEventKinds() {
  static const std::vector<EventKind> kAll = {
      EventKind::kCrash,        EventKind::kRecover,
      EventKind::kByzantine,    EventKind::kSwitch,
      EventKind::kCrashPrimary, EventKind::kPartitionClouds,
      EventKind::kHealClouds,   EventKind::kRestart,
      EventKind::kPowerLoss,    EventKind::kTruncateLog,
      EventKind::kCorruptLog,   EventKind::kCutLink,
      EventKind::kRestoreLink,  EventKind::kShapeLink};
  return kAll;
}

std::string EventKindTokenList(const std::vector<EventKind>& kinds) {
  std::string list;
  for (EventKind kind : kinds) {
    if (!list.empty()) list += " | ";
    list += EventKindToken(kind);
  }
  return list;
}

}  // namespace scenario
}  // namespace seemore
