// The one place that turns a declarative ScenarioSpec into a running
// cluster: builds the simulator/network/replicas/clients, executes the
// fault/switch/partition schedule interleaved with the measurement plan,
// and returns a structured ScenarioReport (RunResult + timeline + network
// counters + CPU totals + agreement/convergence verdicts).
//
// Lifecycle of RunScenario (all in virtual time):
//   build cluster -> hooks.on_start -> start closed-loop clients ->
//   [schedule events + warmup boundary + measure boundary, in time order]
//   -> stop clients -> hooks.on_finish -> drain -> invariant checks.
// Client stats and network counters reset at the warmup boundary, so the
// report covers exactly the measure window.

#ifndef SEEMORE_SCENARIO_ENGINE_H_
#define SEEMORE_SCENARIO_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "harness/runner.h"
#include "scenario/spec.h"

namespace seemore {
namespace scenario {

/// Per-replica end-of-run counters.
struct ReplicaReport {
  int id = 0;
  bool trusted = false;
  bool crashed = false;
  uint64_t requests_executed = 0;
  uint64_t batches_committed = 0;
  uint64_t view_changes_completed = 0;
  uint64_t messages_handled = 0;
  /// Conflicting votes flagged by the slot vote trackers (one per faulty
  /// voter per slot/phase).
  uint64_t equivocations_detected = 0;
  double cpu_busy_ms = 0.0;
  /// Final execution frontier and state digest (hex) — what the restart
  /// scenarios compare between a kill-and-restart replica and its
  /// kill-and-rejoin twin.
  uint64_t last_executed = 0;
  std::string state_digest;

  Json ToJson() const;
};

/// One schedule step as actually applied (switches record the authority's
/// answer; "skipped" events — e.g. a switch with no live authority — say so).
struct AppliedEvent {
  SimTime at = 0;
  std::string description;
};

struct ScenarioReport {
  std::string scenario;
  uint64_t seed = 0;
  std::string cluster;  // resolved ClusterConfig::ToString()

  /// Measurement over the measure window, aggregated across every client
  /// on the cluster — the spec's closed-loop clients plus any added by
  /// hooks. All-zero when no client existed.
  RunResult result;
  /// Filled when plan.timeline; covers the whole run, not just the measure
  /// window (Figure 4 wants the dip visible from t=0).
  ThroughputTimeline timeline;

  std::vector<ReplicaReport> replicas;
  /// Network counters over the measure window (reset at warmup end).
  NetCounters net;
  double total_cpu_busy_ms = 0.0;
  uint64_t total_executed = 0;
  SimTime end_time = 0;

  std::vector<AppliedEvent> events;

  Status agreement;
  bool convergence_checked = false;
  Status convergence;

  /// All requested invariants hold.
  bool ok() const {
    return agreement.ok() && (!convergence_checked || convergence.ok());
  }

  Json ToJson() const;
  /// ToJson with the host-time fields (result.wall_time_ms) zeroed: the
  /// bit-identical comparison surface. Everything virtual-time — counters,
  /// latencies, per-replica stats, events — must reproduce exactly under a
  /// fixed seed whether the run executed serially or on a RunMany worker;
  /// how long the host took may not.
  Json DeterministicJson() const;
};

/// Optional embedder callbacks for consumers (examples, benches) that
/// interleave custom logic with the standard lifecycle. All run inline on
/// simulator time; hooks may submit client ops, read stats, or schedule
/// their own simulator events.
struct ScenarioHooks {
  /// After the cluster is built, before the spec's clients start.
  std::function<void(Cluster&)> on_start;
  /// After each schedule event is applied (status is the switch outcome for
  /// kSwitch, Ok otherwise).
  std::function<void(Cluster&, const ScenarioEvent&, const Status&)> on_event;
  /// Every client completion: (completion time, end-to-end latency).
  std::function<void(SimTime, SimTime)> on_complete;
  /// After clients stop, before the drain and the invariant checks.
  std::function<void(Cluster&)> on_finish;
};

/// Translate a (valid) spec into ClusterOptions — the only ClusterOptions
/// assembly point outside unit tests.
ClusterOptions ToClusterOptions(const ScenarioSpec& spec);

/// The spec's client op factory.
OpFactory MakeWorkload(const ScenarioSpec& spec);

/// Validate the spec and build an idle cluster from it, for embedders that
/// drive everything themselves (e.g. the Table 1 message-count bench).
Result<std::unique_ptr<Cluster>> MakeCluster(const ScenarioSpec& spec);

/// Run the full scenario lifecycle. Fails fast on an invalid spec; an
/// invariant violation is NOT an error (inspect report.ok()).
Result<ScenarioReport> RunScenario(const ScenarioSpec& spec);
Result<ScenarioReport> RunScenario(const ScenarioSpec& spec,
                                   const ScenarioHooks& hooks);

/// Deterministic seed for sweep/batch point `index` of a spec seeded with
/// `base_seed`: a pure function of the spec, independent of execution
/// order, thread assignment or wall time — the reason a parallel sweep's
/// reports are bit-identical to a serial one's. Point 0 keeps the base
/// seed; later points are decorrelated through the generators' SplitMix64
/// seed expansion (util/rng.h).
uint64_t SweepPointSeed(uint64_t base_seed, size_t index);

/// The sweep as explicit per-point specs (clients + seed resolved, sweep
/// plan cleared): what RunSweep feeds RunMany, exposed so benches and tests
/// can inspect or re-batch the exact same points.
std::vector<ScenarioSpec> MakeSweepPoints(const ScenarioSpec& spec);

/// Run independent scenarios across `jobs` worker threads (jobs <= 1 runs
/// them inline, in order, with no threads — the degenerate case is plain
/// serial execution). Reports come back in spec order. Each run owns its
/// whole world (simulator, network, keystore, CryptoMemo), so reports are
/// bit-identical to serial execution; see DESIGN.md §"Concurrency model".
/// Validation fails fast (every spec is checked before any run starts); a
/// run that fails mid-batch does not cancel the others — the batch
/// completes and the first failure (in spec order) is returned.
Result<std::vector<ScenarioReport>> RunMany(
    const std::vector<ScenarioSpec>& specs, int jobs);
/// RunMany with per-spec hooks: `hooks_for(i)` builds the hooks for
/// specs[i]; every factory call happens on the caller's thread before any
/// run starts, so the factory may touch caller state freely. The *built*
/// hooks for point i run on whichever worker executes it and must only
/// touch state owned by that point (e.g. a per-index result slot).
Result<std::vector<ScenarioReport>> RunMany(
    const std::vector<ScenarioSpec>& specs, int jobs,
    const std::function<ScenarioHooks(size_t)>& hooks_for);

/// One report per plan.sweep_clients entry (or a single report at
/// spec.clients when the sweep is empty), each from a fresh cluster — one
/// throughput/latency curve of Figure 2/3. `jobs` > 1 fans the points out
/// across a thread pool; the reports are bit-identical to jobs = 1.
Result<std::vector<ScenarioReport>> RunSweep(const ScenarioSpec& spec,
                                             int jobs = 1);

/// Request a live mode switch the way the paper does (§5.4): on the trusted
/// authority of the next view, skipping crashed authorities up to S views
/// ahead. Shared by the engine and embedders that switch outside a schedule.
Status RequestSwitch(Cluster& cluster, SeeMoReMode target);

}  // namespace scenario
}  // namespace seemore

#endif  // SEEMORE_SCENARIO_ENGINE_H_
