// Named canonical scenarios: the paper's evaluation points (§6, Figures
// 2-4) plus the repository's stress scenarios (view-change stress,
// mode-switch storm, cross-cloud partition), all expressed as ScenarioSpecs
// so `seemore_ctl --scenario=<name>`, the benches and CI smoke runs share
// one definition. Also the home of the paper-calibrated cost/network models
// (formerly bench/bench_common.h).

#ifndef SEEMORE_SCENARIO_REGISTRY_H_
#define SEEMORE_SCENARIO_REGISTRY_H_

#include <string>
#include <vector>

#include "scenario/spec.h"

namespace seemore {
namespace scenario {

/// CPU cost model calibrated so peak throughputs land in the paper's range
/// (tens of Kreq/s) with BFT-SMaRt-like MAC-vector message authentication;
/// see DESIGN.md §1 for the substitution argument.
CostModel PaperCostModel();

/// One-datacenter network (§6.1: both clouds in a single AWS region):
/// ~80us one-way with jitter, 10 Gbit/s NICs.
NetworkConfig PaperNetwork();

/// Paper-methodology defaults shared by every §6 experiment: cost/network
/// models above, BFT-SMaRt-style batching (one consensus instance in flight
/// at a time, everything pending folded into the next batch), 100ms client
/// retransmit, checkpoint period 1024.
ScenarioSpec PaperBaseSpec(uint64_t seed);

/// The six systems compared throughout §6: "BFT", "S-UpRight", "Peacock",
/// "Dog", "Lion", "CFT". For failure budget (c, m) the hybrid systems
/// deploy 2c private + 3m+1 public nodes and the flat ones use f = c+m.
const std::vector<std::string>& PaperSystemNames();

/// PaperBaseSpec configured as one named §6 system under budget (c, m).
/// Fails on an unknown system name.
Result<ScenarioSpec> PaperSystemSpec(const std::string& system, int c, int m,
                                     uint64_t seed);

/// The Figure 4 (§6.3) regime for one §6 system at c=m=1: 0/0 payload,
/// checkpoint period 10000, an aggressive failure detector (8ms suspicion,
/// 12ms client retransmit), the primary crashed at t=30ms on a 0-100ms
/// horizon, and a 2ms-bucket completion timeline. Single source for both
/// bench_fig4 and the registry's "fig4-primary-crash" entry.
Result<ScenarioSpec> Fig4SystemSpec(const std::string& system, int clients);

/// --- the named-scenario registry -----------------------------------------

struct RegistryEntry {
  std::string name;
  std::string description;
};

/// All registered scenarios, in a stable order.
const std::vector<RegistryEntry>& Registry();

/// Look a canonical scenario up by name.
Result<ScenarioSpec> FindScenario(const std::string& name);

/// Shrink a spec to the smoke-run budgets (the regime `seemore_ctl
/// --quick`/`--smoke` and CI use, and that the parallel determinism tests
/// replicate): warmup <= 100ms, measure <= 250ms, drain <= 250ms, sweep
/// cleared. One definition so tool, CI and tests can never drift.
void ApplyQuickBudgets(ScenarioSpec& spec);

}  // namespace scenario
}  // namespace seemore

#endif  // SEEMORE_SCENARIO_REGISTRY_H_
