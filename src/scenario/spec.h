// ScenarioSpec: the declarative description of one experiment on the
// simulated hybrid cloud — topology + protocol/mode, network and cost
// model, workload, a typed fault/switch/partition schedule, and a
// measurement plan. Every composition root in the repository (seemore_ctl,
// the Figure benches, the examples, integration tests) expresses its
// experiment as one of these and hands it to scenario::RunScenario
// (engine.h); specs serialize to JSON (ToJson/FromJson) so scenarios are
// files that can be committed, diffed and replayed bit-identically under a
// fixed seed.

#ifndef SEEMORE_SCENARIO_SPEC_H_
#define SEEMORE_SCENARIO_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/cost_model.h"
#include "net/network.h"
#include "scenario/names.h"
#include "util/json.h"
#include "util/status.h"
#include "util/time.h"

namespace seemore {
namespace scenario {

/// Failure bounds and cloud sizes. `s` / `p` may be left at -1 to derive
/// the paper's defaults: S = 2c, and P = 3m+1 for SeeMoRe or
/// P = (3m+2c+1) - S for S-UpRight. CFT/BFT ignore s/p and size off `f`.
struct TopologySpec {
  int c = 1;
  int m = 1;
  int f = 2;
  int s = -1;
  int p = -1;
};

/// Consensus tuning knobs (ClusterConfig's non-topology fields).
struct TuningSpec {
  int batch_max = 256;
  int pipeline_max = 2;
  int checkpoint_period = 512;
  SimTime view_change_timeout = Millis(30);
  bool lion_sign_accepts = false;
};

/// What the closed-loop clients issue.
struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kEcho;
  /// Echo (§6 micro-benchmark): x-KB requests / y-KB replies.
  uint32_t request_kb = 0;
  uint32_t reply_kb = 0;
  /// KV: PUT/GET mix over `keys` keys.
  int keys = 128;
  double put_fraction = 0.5;
};

/// One step of the fault / switch / partition schedule. Which auxiliary
/// fields matter depends on `kind` (see names.h EventKind).
struct ScenarioEvent {
  SimTime at = 0;
  EventKind kind = EventKind::kCrash;
  int replica = 0;                             // crash / recover / byzantine
  uint32_t byz_flags = 0;                      // byzantine
  SeeMoReMode target_mode = SeeMoReMode::kLion;  // switch
  /// truncate-log: bytes chopped off the WAL tail; corrupt-log: bit-flip
  /// offset counted back from the WAL tail end; shape-link: drop
  /// probability in parts-per-million.
  int64_t arg = 0;
  /// Directed-link events (cut-link / restore-link / shape-link): the link
  /// is `replica` -> `peer`, that one direction only.
  int peer = -1;
  /// shape-link: extra fixed latency and uniform jitter bound on the link.
  SimTime delay = 0;
  SimTime jitter = 0;

  /// "t=30ms crash replica 2" — used by reports and seemore_ctl.
  std::string ToString() const;
};

/// The durable-storage knobs a scenario runs with. Mirrors
/// DurabilityOptions (storage/durable_store.h); off by default so every
/// pre-durability spec behaves bit-identically.
struct DurabilitySpec {
  bool enabled = false;
  int fsync_interval = 1;
  int64_t segment_bytes = 64 * 1024;
};

/// When to measure and what to record. The run is warmup + measure (client
/// stats and network counters reset at the warmup boundary), then clients
/// stop and the simulation drains for `drain` before invariant checks.
struct MeasurementPlan {
  SimTime warmup = Millis(150);
  SimTime measure = Millis(500);
  SimTime drain = 0;
  /// Record a per-bucket completion timeline (Figure 4 style).
  bool timeline = false;
  SimTime timeline_bucket = Millis(10);
  /// After the drain, require all live honest replicas to have converged to
  /// one state digest (only meaningful when the drain reaches quiescence).
  bool check_convergence = false;
  /// Client populations for RunSweep; empty means single run at `clients`.
  std::vector<int> sweep_clients;
};

struct ScenarioSpec {
  std::string name = "unnamed";
  std::string description;

  /// Which runtime executes the spec. The simulator is the default; "tcp"
  /// asks seemore_ctl to launch real node processes on localhost (src/rt/)
  /// and drive them with this same spec. The engine's RunScenario always
  /// runs the simulator — the backend field routes at the tool layer, so a
  /// spec file is one experiment with two interchangeable runtimes.
  BackendKind backend = BackendKind::kSim;

  ProtocolKind protocol = ProtocolKind::kSeeMoRe;
  /// Initial SeeMoRe mode (ignored by the flat protocols).
  SeeMoReMode mode = SeeMoReMode::kLion;
  TopologySpec topology;
  TuningSpec tuning;
  NetworkConfig net;
  CostModel costs;

  uint64_t seed = 42;
  int clients = 16;
  SimTime client_retransmit_timeout = Millis(60);
  StateMachineKind state_machine = StateMachineKind::kKvStore;
  WorkloadSpec workload;
  MeasurementPlan plan;
  DurabilitySpec durability;
  std::vector<ScenarioEvent> schedule;

  /// ClusterConfig with the -1 topology defaults resolved (see TopologySpec).
  ClusterConfig ResolvedConfig() const;

  /// Full consistency check: topology (via ClusterConfig::Validate),
  /// probabilities, workload parameters, measurement plan, and — the check
  /// seemore_ctl historically skipped — every scheduled event: replica ids
  /// must be valid for the resolved topology, Byzantine behaviour must not
  /// target a trusted SeeMoRe replica, mode switches require SeeMoRe, and
  /// cloud partitions require a hybrid (two-cloud) deployment.
  Status Validate() const;

  /// Lossless JSON image (all fields, defaults included, deterministic
  /// field order). Times serialize as integer microseconds.
  Json ToJson() const;
  std::string ToJsonText() const { return ToJson().Dump(2) + "\n"; }

  /// Strict decode: unknown fields anywhere are rejected, as are wrong
  /// types and unknown enum tokens. Absent fields keep their defaults.
  /// The result is NOT Validate()d — callers decide when to check.
  static Result<ScenarioSpec> FromJson(const Json& json);
  static Result<ScenarioSpec> FromJsonText(const std::string& text);
};

}  // namespace scenario
}  // namespace seemore

#endif  // SEEMORE_SCENARIO_SPEC_H_
