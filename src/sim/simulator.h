// Deterministic discrete-event simulator.
//
// All protocol experiments run on virtual time: events fire in (time,
// insertion-order) order, so a given seed reproduces the exact same
// interleaving on every run and platform. This is the substitution for the
// paper's AWS testbed (see DESIGN.md §1).

#ifndef SEEMORE_SIM_SIMULATOR_H_
#define SEEMORE_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "util/rng.h"
#include "util/time.h"

namespace seemore {

/// The simulator is the TimerService implementation for simulated runs:
/// Now() is virtual time and timers are simulation events.
class Simulator : public TimerService {
 public:
  explicit Simulator(uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  /// --- TimerService ------------------------------------------------------
  SimTime Now() const override { return now_; }
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn) override {
    return Schedule(delay, std::move(fn));
  }
  bool CancelEvent(EventId id) override { return Cancel(id); }

  /// Schedule `fn` to run `delay` from now (delay < 0 is clamped to 0).
  EventId Schedule(SimTime delay, std::function<void()> fn);

  /// Schedule `fn` at an absolute virtual time (>= now).
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled.
  bool Cancel(EventId id);

  /// Run events until the queue is empty.
  void Run();

  /// Run events with time <= deadline; afterwards now() == deadline if any
  /// event advanced that far (now() never exceeds deadline).
  void RunUntil(SimTime deadline);

  /// Run exactly one event. Returns false if the queue is empty.
  bool Step();

  bool Idle() const { return live_events_ == 0; }
  size_t pending_events() const { return live_events_; }
  uint64_t executed_events() const { return executed_events_; }

 private:
  struct QueueEntry {
    SimTime when;
    uint64_t seq;  // insertion order; breaks ties deterministically
    EventId id;

    bool operator>(const QueueEntry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  void Fire(const QueueEntry& entry);

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  size_t live_events_ = 0;
  uint64_t executed_events_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  // Callbacks for still-live events; Cancel() erases, Fire() skips missing.
  std::unordered_map<EventId, std::function<void()>> callbacks_;
  Rng rng_;
};

}  // namespace seemore

#endif  // SEEMORE_SIM_SIMULATOR_H_
