// Deterministic discrete-event simulator.
//
// All protocol experiments run on virtual time: events fire in (time,
// insertion-order) order, so a given seed reproduces the exact same
// interleaving on every run and platform. This is the substitution for the
// paper's AWS testbed (see DESIGN.md §1).
//
// Engine internals (DESIGN.md §"Engine internals"): events live in a
// slab of pooled slots addressed by a handle that packs (slot index,
// generation); the ready queue is a plain binary heap of POD entries over
// that slab. Scheduling costs one heap push and at most one slot
// (re)initialization — no hash lookups, no per-event map nodes.
// Cancellation is O(1): it frees the slot (releasing the callback
// immediately) and leaves a lazily-deleted tombstone in the heap, which is
// compacted away once tombstones outnumber live entries, so schedule/cancel
// churn (view-change timers) cannot grow the queue unboundedly.

#ifndef SEEMORE_SIM_SIMULATOR_H_
#define SEEMORE_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "net/transport.h"
#include "util/rng.h"
#include "util/time.h"

namespace seemore {

/// The simulator is the TimerService implementation for simulated runs:
/// Now() is virtual time and timers are simulation events.
class Simulator : public TimerService {
 public:
  explicit Simulator(uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  /// --- TimerService ------------------------------------------------------
  SimTime Now() const override { return now_; }
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn) override {
    return Schedule(delay, std::move(fn));
  }
  bool CancelEvent(EventId id) override { return Cancel(id); }

  /// Schedule `fn` to run `delay` from now (delay < 0 is clamped to 0).
  EventId Schedule(SimTime delay, std::function<void()> fn);

  /// Schedule `fn` at an absolute virtual time (>= now).
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled. O(1): the callback is released immediately; the heap keeps
  /// a tombstone until the next pop or compaction.
  bool Cancel(EventId id);

  /// Run events until the queue is empty.
  void Run();

  /// Run events with time <= deadline; afterwards now() == deadline if any
  /// event advanced that far (now() never exceeds deadline).
  void RunUntil(SimTime deadline);

  /// Run exactly one event. Returns false if the queue is empty.
  bool Step();

  bool Idle() const { return live_events_ == 0; }
  /// Number of scheduled, not-yet-fired, not-cancelled events.
  size_t pending_events() const { return live_events_; }
  /// Heap entries currently allocated, including cancelled tombstones not
  /// yet reclaimed. Bounded by O(pending_events) thanks to compaction —
  /// tests/sim_test.cc pins this down.
  size_t queued_entries() const { return heap_.size(); }
  /// Slots in the pool (high-water mark of concurrently pending events).
  size_t slab_size() const { return slots_.size(); }
  uint64_t executed_events() const { return executed_events_; }

 private:
  struct Slot {
    std::function<void()> fn;
    uint32_t gen = 1;   // bumped on release; stale heap entries miss
    bool live = false;  // armed and not cancelled
  };

  /// POD heap entry; ordering is (when, seq) exactly as the seed engine's
  /// priority_queue, so event interleavings are bit-identical.
  struct HeapEntry {
    SimTime when;
    uint64_t seq;  // insertion order; breaks ties deterministically
    uint32_t slot;
    uint32_t gen;
  };
  /// std::push_heap/pop_heap build a max-heap; "later fires last" makes the
  /// front the earliest event.
  static bool Later(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  static EventId MakeId(uint32_t slot, uint32_t gen) {
    // gen >= 1, so ids are never 0 (the TimerService contract).
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  bool EntryLive(const HeapEntry& e) const {
    const Slot& s = slots_[e.slot];
    return s.gen == e.gen && s.live;
  }

  /// Return the slot to the pool and invalidate outstanding handles.
  void ReleaseSlot(uint32_t index);
  /// Pop tombstones off the heap top until it is live or empty.
  void PruneTop();
  /// Sweep all tombstones once they outnumber live entries.
  void MaybeCompact();
  /// Pop and execute the (live) top entry.
  void FireTop();

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  size_t live_events_ = 0;
  uint64_t executed_events_ = 0;

  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;
  size_t tombstones_ = 0;  // cancelled entries still in heap_

  Rng rng_;
};

}  // namespace seemore

#endif  // SEEMORE_SIM_SIMULATOR_H_
