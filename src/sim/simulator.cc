#include "sim/simulator.h"

#include <algorithm>

#include "util/logging.h"

namespace seemore {

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

EventId Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  SEEMORE_CHECK(when >= now_) << "event scheduled in the past";
  uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.live = true;
  heap_.push_back(HeapEntry{when, next_seq_++, index, slot.gen});
  std::push_heap(heap_.begin(), heap_.end(), Later);
  ++live_events_;
  return MakeId(index, slot.gen);
}

void Simulator::ReleaseSlot(uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn = nullptr;  // release captured state (payload refs) immediately
  slot.live = false;
  ++slot.gen;  // invalidates the EventId and any heap tombstone
  free_slots_.push_back(index);
}

bool Simulator::Cancel(EventId id) {
  const uint32_t index = static_cast<uint32_t>(id & 0xffffffffu);
  const uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (!slot.live || slot.gen != gen) return false;
  ReleaseSlot(index);
  --live_events_;
  ++tombstones_;
  MaybeCompact();
  return true;
}

void Simulator::MaybeCompact() {
  if (tombstones_ < 64 || tombstones_ * 2 <= heap_.size()) return;
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const HeapEntry& e) {
                               return !EntryLive(e);
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later);
  tombstones_ = 0;
}

void Simulator::PruneTop() {
  while (!heap_.empty() && !EntryLive(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    heap_.pop_back();
    --tombstones_;
  }
}

void Simulator::FireTop() {
  const HeapEntry entry = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  heap_.pop_back();
  std::function<void()> fn = std::move(slots_[entry.slot].fn);
  ReleaseSlot(entry.slot);
  --live_events_;
  now_ = entry.when;
  ++executed_events_;
  fn();  // may schedule (growing the slab) — entry/slot refs are dead here
}

void Simulator::Run() {
  for (;;) {
    PruneTop();
    if (heap_.empty()) return;
    FireTop();
  }
}

void Simulator::RunUntil(SimTime deadline) {
  for (;;) {
    PruneTop();
    if (heap_.empty() || heap_.front().when > deadline) break;
    FireTop();
  }
  if (now_ < deadline) now_ = deadline;
}

bool Simulator::Step() {
  PruneTop();
  if (heap_.empty()) return false;
  FireTop();
  return true;
}

}  // namespace seemore
