#include "sim/simulator.h"

#include "util/logging.h"

namespace seemore {

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

EventId Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  SEEMORE_CHECK(when >= now_) << "event scheduled in the past";
  EventId id = next_id_++;
  queue_.push(QueueEntry{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_events_;
  return id;
}

bool Simulator::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_events_;
  return true;
}

void Simulator::Fire(const QueueEntry& entry) {
  auto it = callbacks_.find(entry.id);
  if (it == callbacks_.end()) return;  // cancelled
  std::function<void()> fn = std::move(it->second);
  callbacks_.erase(it);
  --live_events_;
  now_ = entry.when;
  ++executed_events_;
  fn();
}

void Simulator::Run() {
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    Fire(entry);
  }
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    Fire(entry);
  }
  if (now_ < deadline) now_ = deadline;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    if (callbacks_.find(entry.id) == callbacks_.end()) continue;  // cancelled
    Fire(entry);
    return true;
  }
  return false;
}

}  // namespace seemore
