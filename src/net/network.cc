#include "net/network.h"

#include <algorithm>

#include "util/logging.h"

namespace seemore {

const LinkProfile& NetworkConfig::ProfileFor(Zone from, Zone to) const {
  if (from == Zone::kClient || to == Zone::kClient) return client_link;
  if (from == Zone::kPrivate && to == Zone::kPrivate) return intra_private;
  if (from == Zone::kPublic && to == Zone::kPublic) return intra_public;
  return cross_cloud;
}

void NodeCpu::Submit(std::function<void()> task) {
  Task t;
  t.fn = std::move(task);
  Enqueue(std::move(t));
}

void NodeCpu::SubmitMessage(MessageHandler* handler, PrincipalId from,
                            Payload payload) {
  Task t;
  t.handler = handler;
  t.from = from;
  t.payload = std::move(payload);
  Enqueue(std::move(t));
}

void NodeCpu::Enqueue(Task task) {
  queue_.push_back(std::move(task));
  if (!drain_scheduled_) {
    drain_scheduled_ = true;
    SimTime start = AvailableAt();
    sim_->ScheduleAt(start, [this] { DrainOne(); });
  }
}

void NodeCpu::DrainOne() {
  drain_scheduled_ = false;
  if (queue_.empty()) return;
  Task task = std::move(queue_.front());
  queue_.pop_front();
  // The task starts now; Charge() calls during the task extend busy_until_.
  SimTime start = sim_->now();
  if (busy_until_ < start) busy_until_ = start;
  if (task.handler != nullptr) {
    task.handler->OnMessage(task.from, std::move(task.payload));
  } else {
    task.fn();
  }
  total_busy_ += busy_until_ - start;
  if (!queue_.empty()) {
    drain_scheduled_ = true;
    sim_->ScheduleAt(AvailableAt(), [this] { DrainOne(); });
  }
}

uint64_t SimNetwork::LinkKey(PrincipalId a, PrincipalId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

uint64_t SimNetwork::DirectedKey(PrincipalId from, PrincipalId to) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
         static_cast<uint32_t>(to);
}

void SimNetwork::AddNode(PrincipalId id, Zone zone, MessageHandler* handler,
                         NodeCpu* cpu) {
  SEEMORE_CHECK(nodes_.count(id) == 0) << "duplicate node id " << id;
  nodes_[id] = NodeEntry{zone, handler, cpu, /*up=*/true};
}

CpuMeter* SimNetwork::Register(PrincipalId id, Zone zone,
                               MessageHandler* handler, bool metered) {
  NodeCpu* cpu = nullptr;
  if (metered) {
    owned_cpus_.push_back(std::make_unique<NodeCpu>(sim_));
    cpu = owned_cpus_.back().get();
  }
  AddNode(id, zone, handler, cpu);
  return cpu;
}

void SimNetwork::Unregister(PrincipalId id) {
  auto it = nodes_.find(id);
  SEEMORE_CHECK(it != nodes_.end()) << "unregister unknown node " << id;
  if (it->second.cpu != nullptr) it->second.cpu->Clear();
  nodes_.erase(it);
}

Zone SimNetwork::ZoneOf(PrincipalId id) const {
  auto it = nodes_.find(id);
  SEEMORE_CHECK(it != nodes_.end()) << "unknown node " << id;
  return it->second.zone;
}

void SimNetwork::SetLinkUp(PrincipalId a, PrincipalId b, bool up) {
  if (up) {
    cut_links_.erase(LinkKey(a, b));
  } else {
    cut_links_.insert(LinkKey(a, b));
  }
}

void SimNetwork::SetDirectedLinkUp(PrincipalId from, PrincipalId to,
                                   bool up) {
  if (up) {
    directed_cuts_.erase(DirectedKey(from, to));
  } else {
    directed_cuts_.insert(DirectedKey(from, to));
  }
}

void SimNetwork::ShapeDirectedLink(PrincipalId from, PrincipalId to,
                                   SimTime delay, SimTime jitter,
                                   uint32_t drop_ppm) {
  const uint64_t key = DirectedKey(from, to);
  if (delay == 0 && jitter == 0 && drop_ppm == 0) {
    directed_shapes_.erase(key);
  } else {
    directed_shapes_[key] = DirectedShape{delay, jitter, drop_ppm};
  }
}

void SimNetwork::SetNodeUp(PrincipalId id, bool up) {
  auto it = nodes_.find(id);
  SEEMORE_CHECK(it != nodes_.end()) << "unknown node " << id;
  it->second.up = up;
}

void SimNetwork::HealAll() {
  cut_links_.clear();
  directed_cuts_.clear();
  directed_shapes_.clear();
  for (auto& [id, entry] : nodes_) entry.up = true;
}

void SimNetwork::Send(PrincipalId from, PrincipalId to, Payload payload) {
  auto from_it = nodes_.find(from);
  auto to_it = nodes_.find(to);
  SEEMORE_CHECK(from_it != nodes_.end()) << "send from unknown node " << from;
  if (to_it == nodes_.end()) return;  // receiver never registered: drop
  const NodeEntry& src = from_it->second;
  const NodeEntry& dst = to_it->second;

  const int64_t wire_bytes = static_cast<int64_t>(payload.size()) +
                             config_.per_message_overhead_bytes;

  counters_.messages += 1;
  counters_.bytes += payload.size();
  counters_.wire_bytes += static_cast<uint64_t>(wire_bytes);
  const bool inter_replica =
      !IsClientPrincipal(from) && !IsClientPrincipal(to);
  if (inter_replica) {
    counters_.replica_to_replica_messages += 1;
    counters_.replica_to_replica_bytes += payload.size();
    counters_.replica_to_replica_wire_bytes += static_cast<uint64_t>(wire_bytes);
  }

  if (!src.up || !dst.up || cut_links_.count(LinkKey(from, to)) > 0 ||
      (!directed_cuts_.empty() &&
       directed_cuts_.count(DirectedKey(from, to)) > 0)) {
    counters_.dropped += 1;
    return;
  }
  if (config_.drop_probability > 0.0 &&
      sim_->rng().NextBool(config_.drop_probability)) {
    counters_.dropped += 1;
    return;
  }
  // Directed-link shaping: only shaped links draw extra randomness, so
  // unshaped runs consume the exact pre-shaping RNG stream.
  const DirectedShape* shape = nullptr;
  if (!directed_shapes_.empty()) {
    auto shape_it = directed_shapes_.find(DirectedKey(from, to));
    if (shape_it != directed_shapes_.end()) shape = &shape_it->second;
  }
  if (shape != nullptr && shape->drop_ppm > 0 &&
      sim_->rng().NextBounded(1000000) < shape->drop_ppm) {
    counters_.dropped += 1;
    return;
  }

  const LinkProfile& link = config_.ProfileFor(src.zone, dst.zone);
  const SimTime transmission =
      wire_bytes * kNanosPerSecond / config_.bandwidth_bytes_per_sec;

  int copies = 1;
  if (config_.duplicate_probability > 0.0 &&
      sim_->rng().NextBool(config_.duplicate_probability)) {
    copies = 2;
  }

  // Departure waits for the sender's CPU to finish the work charged so far.
  const SimTime departure =
      src.cpu != nullptr ? src.cpu->AvailableAt() : sim_->now();

  for (int i = 0; i < copies; ++i) {
    SimTime jitter = link.jitter > 0
                         ? static_cast<SimTime>(sim_->rng().NextBounded(
                               static_cast<uint64_t>(link.jitter) + 1))
                         : 0;
    SimTime arrival = departure + link.base + jitter + transmission;
    if (shape != nullptr) {
      arrival += shape->delay;
      if (shape->jitter > 0) {
        arrival += static_cast<SimTime>(sim_->rng().NextBounded(
            static_cast<uint64_t>(shape->jitter) + 1));
      }
    }
    // The closure shares the payload buffer (refcount bump, no byte copy) —
    // a duplicated delivery aliases the same immutable frame.
    sim_->ScheduleAt(arrival, [this, from, to, payload]() mutable {
      // Re-resolve the node at delivery time: the receiver may have crashed
      // while the message was in flight, or been replaced by a restart (the
      // entry captured at send time would dangle).
      auto it = nodes_.find(to);
      if (it == nodes_.end() || !it->second.up) return;
      if (it->second.cpu != nullptr) {
        it->second.cpu->SubmitMessage(it->second.handler, from,
                                      std::move(payload));
      } else {
        it->second.handler->OnMessage(from, std::move(payload));
      }
    });
  }
}

void SimNetwork::Multicast(PrincipalId from,
                           const std::vector<PrincipalId>& targets,
                           const Payload& payload) {
  for (PrincipalId to : targets) {
    if (to == from) continue;
    Send(from, to, payload);  // refcount bump per receiver, one buffer
  }
}

}  // namespace seemore
