// Transport / Clock abstraction layer.
//
// Protocol code (consensus, seemore, baselines, smr) talks to the network
// and to time exclusively through these interfaces; it never names a
// concrete backend. The first implementation is the deterministic
// discrete-event pair {SimNetwork, Simulator} (net/network.h,
// sim/simulator.h); the seam exists so a real socket backend, message
// pipelining, or parallel signature verification can slot in without
// touching a single replica (see DESIGN.md §2).

#ifndef SEEMORE_NET_TRANSPORT_H_
#define SEEMORE_NET_TRANSPORT_H_

#include <functional>
#include <vector>

#include "crypto/keystore.h"
#include "util/time.h"
#include "wire/payload.h"
#include "wire/wire.h"

namespace seemore {

/// Where a node lives; decides link latency and trust class.
enum class Zone {
  kPrivate,  // enterprise-owned, crash-only
  kPublic,   // rented, possibly Byzantine
  kClient,
};

const char* ZoneName(Zone zone);

/// Receives messages delivered by the transport. The transport authenticates
/// the sender: `from` is always the true origin of the message (pairwise
/// authenticated channels, paper §3.1). The payload is shared immutable
/// storage — a multicast hands every receiver the same buffer — so a
/// handler that wants a mutable view must copy the bytes out.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void OnMessage(PrincipalId from, Payload payload) = 0;
};

/// Read-only virtual (or wall) clock.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual SimTime Now() const = 0;
};

/// Clock plus one-shot timers. Timer callbacks run on the owning node's
/// event loop; Cancel is best-effort (returns false if already fired).
class TimerService : public Clock {
 public:
  /// Schedule `fn` to run `delay` from now (delay < 0 is clamped to 0).
  /// The returned id is never 0.
  virtual EventId ScheduleAfter(SimTime delay, std::function<void()> fn) = 0;

  /// Cancel a pending timer. Returns false if it already fired or was
  /// cancelled.
  virtual bool CancelEvent(EventId id) = 0;
};

/// Per-node processing-time account. In the simulator this is the node's
/// single-threaded virtual CPU: charged work delays subsequent message
/// handling and departures. A real backend may account but not delay.
class CpuMeter {
 public:
  virtual ~CpuMeter() = default;

  /// Account `cost` of CPU time to the work currently being processed.
  virtual void Charge(SimTime cost) = 0;

  /// Earliest time new work (or an outgoing message) can leave this node.
  /// Failure detectors subtract Now() from this to ignore their own backlog.
  virtual SimTime AvailableAt() const = 0;

  /// Total busy time accumulated so far (utilization metrics).
  virtual SimTime total_busy() const = 0;
};

/// Point-to-point message transport between registered principals.
///
/// Guarantees mirrored from the paper's model (§3.1): channels are pairwise
/// authenticated (delivery reports the true sender; identities cannot be
/// forged), but messages may be dropped, delayed, duplicated or reordered.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Attach `handler` as node `id` in `zone`. `handler` must outlive the
  /// transport. When `metered` is true, the returned meter (owned by the
  /// transport, never null) accounts the node's processing time and message
  /// delivery queues behind it; unmetered nodes (clients, test stubs)
  /// process instantly and get nullptr.
  virtual CpuMeter* Register(PrincipalId id, Zone zone,
                             MessageHandler* handler, bool metered) = 0;

  /// Send `payload` from `from` to `to`. Never blocks; undeliverable
  /// messages are silently dropped (the protocols tolerate loss by design).
  /// Copying a Payload is a refcount bump, so queuing/delivery never copies
  /// the bytes.
  virtual void Send(PrincipalId from, PrincipalId to, Payload payload) = 0;

  /// Send the same payload to every id in `targets` except `from` itself.
  /// Point-to-point delivery semantics, but zero-copy: every receiver
  /// shares the one underlying buffer.
  virtual void Multicast(PrincipalId from,
                         const std::vector<PrincipalId>& targets,
                         const Payload& payload) = 0;

  /// Detach / reattach a node entirely (crash fault injection: models a
  /// crashed machine's NIC). Messages to/from a down node are dropped.
  virtual void SetNodeUp(PrincipalId id, bool up) = 0;
};

}  // namespace seemore

#endif  // SEEMORE_NET_TRANSPORT_H_
