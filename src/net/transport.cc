#include "net/transport.h"

namespace seemore {

const char* ZoneName(Zone zone) {
  switch (zone) {
    case Zone::kPrivate:
      return "private";
    case Zone::kPublic:
      return "public";
    case Zone::kClient:
      return "client";
  }
  return "?";
}

}  // namespace seemore
