// Simulated cloud network: zone-aware latency, bandwidth, loss, duplication,
// partitions, plus a single-threaded CPU queue per node.
//
// Properties mirrored from the paper's model (§3.1):
//   - Point-to-point, pairwise-authenticated channels: delivery always
//     reports the true sender id; a Byzantine node cannot forge another
//     node's identity (it *can* send different payloads to different peers).
//   - Asynchrony: messages may be dropped, delayed, duplicated or reordered
//     (jitter + drops + dups are all seedable knobs).
//   - Liveness experiments use bounded jitter, i.e. partial synchrony.

#ifndef SEEMORE_NET_NETWORK_H_
#define SEEMORE_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/keystore.h"
#include "net/cost_model.h"
#include "net/transport.h"
#include "sim/simulator.h"
#include "wire/wire.h"

namespace seemore {

/// Latency profile of one link class: base + uniform jitter in [0, jitter].
struct LinkProfile {
  SimTime base = Micros(100);
  SimTime jitter = Micros(30);
};

struct NetworkConfig {
  LinkProfile intra_private{Micros(80), Micros(20)};
  LinkProfile intra_public{Micros(80), Micros(20)};
  /// Private <-> public. The paper's evaluation places both clouds in one
  /// AWS region, so the default is close to intra-cloud; the Peacock
  /// motivation experiments raise it.
  LinkProfile cross_cloud{Micros(120), Micros(30)};
  LinkProfile client_link{Micros(120), Micros(30)};

  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  /// NIC bandwidth per node (10 Gbit/s default).
  int64_t bandwidth_bytes_per_sec = 1250LL * 1000 * 1000;
  /// Framing overhead added to every message for transmission-time purposes.
  int64_t per_message_overhead_bytes = 64;

  const LinkProfile& ProfileFor(Zone from, Zone to) const;
};

/// Single-threaded CPU of one node: tasks submitted while busy queue up.
/// Protocol handlers call Charge() to account for the work they perform;
/// subsequent tasks (and outgoing messages) see the accumulated delay.
class NodeCpu : public CpuMeter {
 public:
  explicit NodeCpu(Simulator* sim) : sim_(sim) {}

  NodeCpu(const NodeCpu&) = delete;
  NodeCpu& operator=(const NodeCpu&) = delete;

  /// Enqueue a task that arrived now; it runs when the CPU frees up.
  void Submit(std::function<void()> task);

  /// Enqueue delivery of `payload` to `handler` — the common message path,
  /// stored as a flat queue entry (no closure allocation, the payload is a
  /// refcount bump).
  void SubmitMessage(MessageHandler* handler, PrincipalId from,
                     Payload payload);

  /// Drop all queued work. Used when a node is unregistered: queued tasks
  /// hold raw handler pointers that die with the node's replica.
  void Clear() { queue_.clear(); }

  /// Account CPU time to the currently running task.
  void Charge(SimTime cost) override {
    if (cost > 0) busy_until_ += cost;
  }

  /// Earliest time new work (or an outgoing message) can leave this node.
  SimTime AvailableAt() const override {
    return busy_until_ > sim_->now() ? busy_until_ : sim_->now();
  }

  SimTime total_busy() const override { return total_busy_; }

 private:
  /// One queued unit of work: either a message delivery (handler set) or a
  /// generic task.
  struct Task {
    std::function<void()> fn;
    MessageHandler* handler = nullptr;
    PrincipalId from = 0;
    Payload payload;
  };

  void Enqueue(Task task);
  void DrainOne();

  Simulator* sim_;
  SimTime busy_until_ = 0;
  SimTime total_busy_ = 0;
  bool drain_scheduled_ = false;
  std::deque<Task> queue_;
};

/// Message/byte counters, separable by replica vs. client traffic so the
/// Table 1 experiment can count only inter-replica protocol messages.
/// `bytes` counts payload only; `wire_bytes` additionally includes the
/// per-message framing overhead the transmission-time model charges
/// (NetworkConfig::per_message_overhead_bytes), so bench JSON can report
/// bytes in the cost model's own unit. Like `messages` and `bytes`, the
/// wire counters tally *offered* traffic — messages dropped by partitions,
/// crashes or loss are included (and separately counted in `dropped`).
struct NetCounters {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t wire_bytes = 0;
  uint64_t replica_to_replica_messages = 0;
  uint64_t replica_to_replica_bytes = 0;
  uint64_t replica_to_replica_wire_bytes = 0;
  uint64_t dropped = 0;

  void Reset() { *this = NetCounters{}; }
};

class SimNetwork : public Transport {
 public:
  SimNetwork(Simulator* sim, NetworkConfig config)
      : sim_(sim), config_(config) {}

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Register a node. `cpu` may be null (zero-cost node, used in unit
  /// tests); `handler` must outlive the network.
  void AddNode(PrincipalId id, Zone zone, MessageHandler* handler,
               NodeCpu* cpu);

  /// Transport: AddNode with a network-owned NodeCpu when `metered`.
  CpuMeter* Register(PrincipalId id, Zone zone, MessageHandler* handler,
                     bool metered) override;

  /// Forget a node so its id can be registered again (a replica restart
  /// replaces the process behind the same principal). The node's CPU queue
  /// is cleared; its CPU object stays alive so already-scheduled drain
  /// events are harmless no-ops, and in-flight messages re-resolve the
  /// node entry at delivery time (reaching the new incarnation, exactly as
  /// a rebooted machine's NIC would).
  void Unregister(PrincipalId id);

  /// Send `payload` from `from` to `to`. Departure waits for the sender's
  /// CPU; delivery is submitted to the receiver's CPU queue. The payload is
  /// shared, never copied, however many hops or duplicates it takes.
  void Send(PrincipalId from, PrincipalId to, Payload payload) override;

  /// Send the same payload to every id in `targets` (point-to-point
  /// delivery semantics; one shared buffer regardless of fan-out).
  void Multicast(PrincipalId from, const std::vector<PrincipalId>& targets,
                 const Payload& payload) override;

  /// Administratively cut / restore both directions of a link.
  void SetLinkUp(PrincipalId a, PrincipalId b, bool up);
  /// Cut / restore ONE direction of a link (asymmetric loss: from -> to
  /// drops while to -> from still delivers).
  void SetDirectedLinkUp(PrincipalId from, PrincipalId to, bool up);
  /// Impose extra fixed delay + uniform jitter + probabilistic loss (ppm)
  /// on one direction of a link. All-zero removes the shaping. Unshaped
  /// links draw no extra randomness, so runs without shaping stay
  /// bit-identical to pre-shaping builds.
  void ShapeDirectedLink(PrincipalId from, PrincipalId to, SimTime delay,
                         SimTime jitter, uint32_t drop_ppm);
  /// Detach / reattach a node entirely (models a crashed machine's NIC).
  void SetNodeUp(PrincipalId id, bool up) override;
  /// Restore all links and nodes (directed cuts and shaping included).
  void HealAll();

  Zone ZoneOf(PrincipalId id) const;
  bool HasNode(PrincipalId id) const { return nodes_.count(id) > 0; }

  const NetCounters& counters() const { return counters_; }
  void ResetCounters() { counters_.Reset(); }

  const NetworkConfig& config() const { return config_; }
  NetworkConfig& mutable_config() { return config_; }

 private:
  struct NodeEntry {
    Zone zone;
    MessageHandler* handler;
    NodeCpu* cpu;
    bool up = true;
  };

  /// Per-direction shaping installed by ShapeDirectedLink.
  struct DirectedShape {
    SimTime delay = 0;
    SimTime jitter = 0;
    uint32_t drop_ppm = 0;
  };

  static uint64_t LinkKey(PrincipalId a, PrincipalId b);
  /// Unswapped key: (from, to) and (to, from) are distinct links.
  static uint64_t DirectedKey(PrincipalId from, PrincipalId to);

  Simulator* sim_;
  NetworkConfig config_;
  std::unordered_map<PrincipalId, NodeEntry> nodes_;
  std::unordered_set<uint64_t> cut_links_;
  std::unordered_set<uint64_t> directed_cuts_;
  std::unordered_map<uint64_t, DirectedShape> directed_shapes_;
  /// CPUs created by Register(); AddNode callers own theirs externally.
  std::vector<std::unique_ptr<NodeCpu>> owned_cpus_;
  NetCounters counters_;
};

}  // namespace seemore

#endif  // SEEMORE_NET_NETWORK_H_
