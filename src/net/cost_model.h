// CPU cost model charged by replicas for message handling and cryptography.
//
// The simulator replaces the paper's c4.2xlarge VMs; these constants are the
// knobs that make one virtual node behave like one such VM. Defaults are
// calibrated so the baseline protocols reach peak throughputs of the same
// order as the paper's Figure 2 (tens of Kreq/s) with the same relative
// ordering. Benchmarks may override any field.

#ifndef SEEMORE_NET_COST_MODEL_H_
#define SEEMORE_NET_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

#include "util/time.h"

namespace seemore {

struct CostModel {
  /// Fixed CPU time to receive + dispatch any message.
  SimTime recv_fixed = Micros(2);
  /// Fixed CPU time to construct + enqueue any outgoing message.
  SimTime send_fixed = Micros(1);
  /// Marginal CPU per KiB of payload handled (serialize/copy).
  SimTime per_kib = Micros(1);
  /// Public-key signature generation (paper's σ_r); priced like a fast
  /// Ed25519 sign on a 3.5 GHz core.
  SimTime sign = Micros(18);
  /// Public-key signature verification.
  SimTime verify = Micros(45);
  /// Pairwise channel MAC (generate or check).
  SimTime mac = Micros(1);
  /// SHA-256 digest per KiB.
  SimTime hash_per_kib = Micros(3);
  /// Fixed digest cost (short messages).
  SimTime hash_fixed = Micros(1);
  /// Executing one state-machine operation.
  SimTime execute = Micros(2);
  /// Flushing the write-ahead log / snapshot store to stable media (one
  /// fsync). Charged only when a replica runs with a durable store
  /// attached; the default models a datacenter NVMe flush. The durability
  /// ablation axis sweeps the WAL batch interval against this price.
  SimTime fsync = Micros(120);
  /// Marginal CPU per KiB serialized into the durable store (buffered
  /// write path, no flush included).
  SimTime storage_write_per_kib = Micros(1);

  SimTime PayloadCost(size_t bytes) const {
    return per_kib * static_cast<SimTime>((bytes + 1023) / 1024);
  }
  SimTime StorageWriteCost(size_t bytes) const {
    return storage_write_per_kib * static_cast<SimTime>((bytes + 1023) / 1024);
  }
  SimTime HashCost(size_t bytes) const {
    return hash_fixed + hash_per_kib * static_cast<SimTime>(bytes / 1024);
  }
};

}  // namespace seemore

#endif  // SEEMORE_NET_COST_MODEL_H_
