// Parallel scenario engine benchmark: the Figure 2(a) sweep (six §6
// systems x a closed-loop client sweep, the workhorse experiment of the
// paper reproduction) executed through scenario::RunMany at jobs=1 and at
// higher job counts, measuring wall-clock speedup and verifying that every
// report is bit-identical across job counts (the determinism contract of
// DESIGN.md §"Concurrency model").
//
// Emits BENCH_parallel.json with the wall times, the speedups, the
// machine's hardware concurrency and the identical-reports verdict. On a
// single-core machine the speedup is ~1.0 by construction — the JSON
// records hardware_concurrency so the trajectory is interpretable.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace seemore {
namespace bench {
namespace {

/// The fig2(a) experiment as one flat spec list: every §6 system's sweep
/// points at budget c=1, m=1.
std::vector<ScenarioSpec> Fig2aPoints(const std::vector<int>& clients,
                                      SimTime warmup, SimTime measure) {
  std::vector<ScenarioSpec> points;
  for (const std::string& system : scenario::PaperSystemNames()) {
    ScenarioSpec spec = SystemSpec(system, /*c=*/1, /*m=*/1);
    spec.workload.kind = scenario::WorkloadKind::kEcho;
    spec.workload.request_kb = 0;
    spec.workload.reply_kb = 0;
    spec.plan.warmup = warmup;
    spec.plan.measure = measure;
    spec.plan.sweep_clients = clients;
    for (ScenarioSpec& point : scenario::MakeSweepPoints(spec)) {
      points.push_back(std::move(point));
    }
  }
  return points;
}

double WallSeconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Dump every report's deterministic image into one string for comparison.
std::string Fingerprint(const std::vector<scenario::ScenarioReport>& reports) {
  std::string all;
  for (const scenario::ScenarioReport& report : reports) {
    all += report.DeterministicJson().Dump();
    all += '\n';
  }
  return all;
}

}  // namespace
}  // namespace bench
}  // namespace seemore

int main(int argc, char** argv) {
  using namespace seemore;
  using namespace seemore::bench;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const std::vector<int> clients =
      quick ? std::vector<int>{4, 32}
            : std::vector<int>{1, 2, 4, 8, 16, 32, 64, 96};
  const SimTime warmup = quick ? Millis(100) : Millis(150);
  const SimTime measure = quick ? Millis(300) : Millis(500);

  const int hw = ThreadPool::DefaultJobs();
  std::printf("parallel scenario engine bench (%s mode, hardware "
              "concurrency %d)\n",
              quick ? "quick" : "full", hw);

  const std::vector<ScenarioSpec> points =
      Fig2aPoints(clients, warmup, measure);
  std::printf("fig2(a) sweep: %zu independent scenario runs\n",
              points.size());

  // jobs=1 baseline (plain serial execution, no threads).
  std::vector<scenario::ScenarioReport> serial;
  const double serial_s =
      WallSeconds([&] { serial = RunAll(points, /*jobs=*/1); });
  std::printf("  jobs=1   %7.2f s\n", serial_s);

  BenchResultsJson json("parallel");
  json.AddScalar("fig2a_sweep", "runs", static_cast<double>(points.size()));
  json.AddScalar("fig2a_sweep", "hardware_concurrency",
                 static_cast<double>(hw));
  json.AddScalar("fig2a_sweep", "jobs1_wall_s", serial_s);

  bool all_identical = true;
  const std::string want = Fingerprint(serial);
  std::vector<int> job_counts = {2, 4};
  if (hw > 4) job_counts.push_back(hw);
  for (int jobs : job_counts) {
    std::vector<scenario::ScenarioReport> parallel;
    const double wall_s =
        WallSeconds([&] { parallel = RunAll(points, jobs); });
    const bool identical = Fingerprint(parallel) == want;
    all_identical = all_identical && identical;
    std::printf("  jobs=%-3d %7.2f s  speedup %.2fx  reports %s\n", jobs,
                wall_s, serial_s / wall_s,
                identical ? "bit-identical" : "DIVERGED");
    json.AddScalar("fig2a_sweep",
                   "jobs" + std::to_string(jobs) + "_wall_s", wall_s);
    json.AddScalar("fig2a_sweep",
                   "jobs" + std::to_string(jobs) + "_speedup",
                   serial_s / wall_s);
  }
  json.AddScalar("fig2a_sweep", "reports_bit_identical",
                 all_identical ? 1.0 : 0.0);
  json.Write();

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: parallel reports diverged from serial reports\n");
    return 1;
  }
  return 0;
}
