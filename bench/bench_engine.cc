// Engine microbenchmark: host-side events/sec of the discrete-event engine
// on its three hot shapes, with the numbers the zero-copy/pooled-heap/memo
// rework is accountable for.
//
//   timer_churn       - self-rescheduling timers plus schedule/cancel pairs
//                       (the view-change timer pattern); stresses the slab
//                       heap and O(1) cancellation.
//   multicast_fanout  - one sender multicasts 8 KiB frames to 48 metered
//                       receivers, each of which digests the frame
//                       (receiver-side verification); stresses payload
//                       sharing and the digest memo.
//   cluster           - a full SeeMoRe Lion cluster under closed-loop load;
//                       end-to-end engine throughput with all layers on.
//
// The "seed" numbers baked in below were measured with the exact same
// workloads against the pre-rework engine (commit e32ed6a: per-receiver
// payload copies, unordered_map + priority_queue scheduler, no memo) on the
// reference dev machine; the emitted BENCH_engine.json reports both series
// and the resulting speedups. Absolute numbers vary by host — the speedup
// ratio is only meaningful when the full workload (not --quick) runs on a
// machine comparable to the one that produced the baseline.
//
// Usage: bench_engine [--quick] [--guard=<baseline.json>]
//   --quick  shrinks workloads ~10x for CI
//   --guard  after measuring, compare against a checked-in BENCH_engine.json
//            (bench/baselines/engine.json) and exit non-zero if any
//            events_per_sec metric regressed more than 10%. Refresh the
//            baseline by copying a fresh BENCH_engine.json over it whenever
//            the reference machine or an intentional perf change lands.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "crypto/memo.h"
#include "crypto/sha256.h"
#include "util/json.h"

namespace seemore {
namespace bench {
namespace {

/// Seed-engine (pre-rework) results for the full workloads, reference dev
/// machine. Recorded before the rework landed; see file comment.
constexpr double kSeedTimerChurnEventsPerSec = 1752695.0;
constexpr double kSeedMulticastDeliveriesPerSec = 23402.0;
constexpr double kSeedClusterEventsPerSec = 151910.0;

double Secs(std::chrono::steady_clock::time_point a,
            std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// --- Workload 1: timer churn -----------------------------------------------
double TimerChurn(int chains, uint64_t events_per_chain) {
  Simulator sim(7);
  std::vector<uint64_t> left(chains, events_per_chain);
  std::vector<std::function<void()>> tick(chains);
  for (int i = 0; i < chains; ++i) {
    tick[i] = [&, i] {
      EventId decoy = sim.Schedule(Millis(1000), [] {});
      sim.Cancel(decoy);
      if (--left[i] > 0) {
        sim.Schedule(static_cast<SimTime>(sim.rng().NextBounded(1000) + 1),
                     tick[i]);
      }
    };
    sim.Schedule(static_cast<SimTime>(i + 1), tick[i]);
  }
  auto t0 = std::chrono::steady_clock::now();
  sim.Run();
  auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(sim.executed_events()) / Secs(t0, t1);
}

// --- Workload 2: multicast fanout ------------------------------------------
/// This bench's run-scoped memo (production runs get theirs from the
/// Cluster; there is no process-wide instance anymore).
CryptoMemo& BenchMemo() {
  static CryptoMemo memo;
  return memo;
}

/// Models receiver-side batch verification: digest the delivered frame,
/// memoized on the shared buffer's identity.
struct HashingHandler : MessageHandler {
  uint64_t received = 0;
  Digest last;
  void OnMessage(PrincipalId, Payload payload) override {
    ++received;
    last = BenchMemo().DigestOf(payload.id(), 0, payload.data(),
                                payload.size());
  }
};

double MulticastFanout(int receivers, int rounds, size_t payload_bytes,
                       uint64_t* delivered_out) {
  Simulator sim(11);
  NetworkConfig config;
  config.intra_private = {Micros(80), Micros(20)};
  SimNetwork net(&sim, config);
  std::vector<HashingHandler> handlers(receivers + 1);
  std::vector<PrincipalId> targets;
  for (int i = 0; i <= receivers; ++i) {
    net.Register(i, Zone::kPrivate, &handlers[i], /*metered=*/true);
    if (i > 0) targets.push_back(i);
  }
  Bytes payload(payload_bytes);
  for (size_t i = 0; i < payload_bytes; ++i) {
    payload[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  for (int r = 0; r < rounds; ++r) {
    sim.ScheduleAt(Micros(100) * r, [&, r] {
      payload[0] = static_cast<uint8_t>(r);  // new frame each round
      net.Multicast(0, targets, payload);
    });
  }
  auto t0 = std::chrono::steady_clock::now();
  sim.Run();
  auto t1 = std::chrono::steady_clock::now();
  uint64_t delivered = 0;
  for (const auto& h : handlers) delivered += h.received;
  if (delivered_out) *delivered_out = delivered;
  return static_cast<double>(delivered) / Secs(t0, t1);
}

// --- Workload 3: full protocol stack ---------------------------------------
double ClusterEventsPerSec(SimTime measure, uint64_t* executed_out) {
  scenario::ScenarioBuilder builder;
  builder.Name("engine-cluster")
      .SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .CloudSizes(2, 4)
      .Batching(64, 2)
      // Match the seed engine bench's ClusterConfig defaults so the
      // measured rate stays comparable across PRs.
      .CheckpointPeriod(128)
      .ViewChangeTimeout(Millis(20))
      .Seed(5);
  Cluster cluster(scenario::ToClusterOptions(builder.spec()));
  auto t0 = std::chrono::steady_clock::now();
  RunClosedLoop(cluster, 16, EchoWorkload(1, 0), Millis(100), measure);
  auto t1 = std::chrono::steady_clock::now();
  if (executed_out) *executed_out = cluster.sim().executed_events();
  return static_cast<double>(cluster.sim().executed_events()) / Secs(t0, t1);
}

// --- regression guard -------------------------------------------------------
/// Pull the events_per_sec scalars (and quick_mode flag) out of a
/// BENCH_engine.json document. Returns false on any shape mismatch.
bool ReadBaseline(const Json& root,
                  std::vector<std::pair<std::string, double>>* metrics,
                  bool* baseline_quick) {
  const Json* sections = root.Find("sections");
  if (sections == nullptr || !sections->is_array()) return false;
  for (const Json& section : sections->items()) {
    const Json* label = section.Find("label");
    const Json* scalars = section.Find("scalars");
    if (label == nullptr || scalars == nullptr || !scalars->is_array()) {
      continue;
    }
    for (const Json& scalar : scalars->items()) {
      const Json* name = scalar.Find("name");
      const Json* value = scalar.Find("value");
      if (name == nullptr || value == nullptr || !value->is_number()) {
        continue;
      }
      if (label->AsString() == "events_per_sec") {
        metrics->emplace_back(name->AsString(), value->AsDouble());
      } else if (label->AsString() == "config" &&
                 name->AsString() == "quick_mode") {
        *baseline_quick = value->AsDouble() != 0.0;
      }
    }
  }
  return !metrics->empty();
}

/// Compare this run's numbers against the checked-in baseline; >10% drop on
/// any metric fails. Exit code is the CI contract — keep it 0/1.
int GuardAgainstBaseline(const char* path, bool quick,
                         const std::vector<std::pair<std::string, double>>&
                             current) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "guard: cannot read baseline %s\n", path);
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  Result<Json> parsed = Json::Parse(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "guard: baseline %s is not valid JSON: %s\n", path,
                 parsed.status().ToString().c_str());
    return 1;
  }
  std::vector<std::pair<std::string, double>> baseline;
  bool baseline_quick = false;
  if (!ReadBaseline(*parsed, &baseline, &baseline_quick)) {
    std::fprintf(stderr, "guard: baseline %s has no events_per_sec scalars\n",
                 path);
    return 1;
  }
  if (baseline_quick != quick) {
    std::fprintf(stderr,
                 "guard: baseline was recorded in %s mode but this run is %s "
                 "mode; refusing to compare\n",
                 baseline_quick ? "quick" : "full", quick ? "quick" : "full");
    return 1;
  }
  // Only the end-to-end cluster number gates the build: it is what the PR's
  // acceptance target is stated in, and the micro workloads (timer churn
  // especially) are too small in --quick mode to hold a 10% band on a noisy
  // runner. The rest still print for the log.
  constexpr double kTolerance = 0.10;
  constexpr const char* kGuarded = "cluster";
  int failures = 0;
  bool saw_guarded = false;
  for (const auto& [name, ref] : baseline) {
    double now = -1.0;
    for (const auto& [cur_name, cur] : current) {
      if (cur_name == name) now = cur;
    }
    const bool enforced = name == kGuarded;
    if (now < 0.0) {
      std::fprintf(stderr, "guard: metric %s missing from this run\n",
                   name.c_str());
      if (enforced) ++failures;
      continue;
    }
    const double floor = ref * (1.0 - kTolerance);
    const bool ok = now >= floor;
    std::printf("guard: %-28s %12.0f vs baseline %12.0f (floor %12.0f) %s%s\n",
                name.c_str(), now, ref, floor,
                ok ? "ok" : "below floor",
                enforced ? "" : " [informational]");
    if (enforced) {
      saw_guarded = true;
      if (!ok) ++failures;
    }
  }
  if (!saw_guarded) {
    std::fprintf(stderr, "guard: baseline %s lacks the %s metric\n", path,
                 kGuarded);
    return 1;
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "guard: %s events/sec regressed >%.0f%% vs %s — if the "
                 "slowdown is intentional, refresh the baseline from a fresh "
                 "BENCH_engine.json\n",
                 kGuarded, kTolerance * 100, path);
    return 1;
  }
  std::printf("guard: %s within %.0f%% of baseline\n", kGuarded,
              kTolerance * 100);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seemore

int main(int argc, char** argv) {
  using namespace seemore;
  using namespace seemore::bench;
  bool quick = false;
  const char* guard_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--guard=", 8) == 0) guard_path = argv[i] + 8;
  }

  const int churn_chains = 64;
  const uint64_t churn_events = quick ? 2000 : 20000;
  const int fanout_receivers = 48;
  const int fanout_rounds = quick ? 400 : 4000;
  const size_t fanout_payload = 8192;
  const SimTime cluster_measure = quick ? Millis(100) : Millis(1000);

  std::printf("bench_engine (%s mode)\n", quick ? "quick" : "full");

  CryptoMemo& memo = BenchMemo();

  const double churn = TimerChurn(churn_chains, churn_events);
  std::printf("timer_churn:      %12.0f events/s   (seed engine: %.0f)\n",
              churn, kSeedTimerChurnEventsPerSec);

  const uint64_t digest_misses_before = memo.digest_misses();
  const uint64_t digest_hits_before = memo.digest_hits();
  uint64_t delivered = 0;
  const double fanout =
      MulticastFanout(fanout_receivers, fanout_rounds, fanout_payload,
                      &delivered);
  std::printf(
      "multicast_fanout: %12.0f deliveries/s (seed engine: %.0f); "
      "%llu delivered, digest memo %llu misses / %llu hits\n",
      fanout, kSeedMulticastDeliveriesPerSec,
      static_cast<unsigned long long>(delivered),
      static_cast<unsigned long long>(memo.digest_misses() -
                                      digest_misses_before),
      static_cast<unsigned long long>(memo.digest_hits() -
                                      digest_hits_before));

  const char* impl_name =
      Sha256::ActiveImpl() == Sha256::Impl::kShaNi    ? "sha-ni"
      : Sha256::ActiveImpl() == Sha256::Impl::kAvx2   ? "avx2"
                                                      : "portable";
  uint64_t executed = 0;
  const double cluster = ClusterEventsPerSec(cluster_measure, &executed);
  std::printf("cluster:          %12.0f events/s   (seed engine: %.0f, "
              "sha kernel: %s)\n",
              cluster, kSeedClusterEventsPerSec, impl_name);

  // The acceptance target is measured with the best kernel the host has,
  // but the portable-fallback number matters too: it is what a machine
  // without SHA-NI/AVX2 gets, and the gap isolates how much of the cluster
  // speedup is crypto vs allocation/containers. Kernel choice cannot
  // perturb the run itself (identical digests, identical simulated cost) —
  // only host wall-clock differs.
  double cluster_portable = cluster;
  if (Sha256::ActiveImpl() != Sha256::Impl::kPortable) {
    Sha256::ForceImpl(Sha256::Impl::kPortable);
    cluster_portable = ClusterEventsPerSec(cluster_measure, nullptr);
    Sha256::ResetImpl();
    std::printf("cluster/portable: %12.0f events/s   (forced portable "
                "sha-256 fallback)\n",
                cluster_portable);
  }

  BenchResultsJson json("engine");
  json.AddScalar("events_per_sec", "timer_churn", churn);
  json.AddScalar("events_per_sec", "multicast_fanout_deliveries", fanout);
  json.AddScalar("events_per_sec", "cluster", cluster);
  json.AddScalar("seed_engine_baseline", "timer_churn",
                 kSeedTimerChurnEventsPerSec);
  json.AddScalar("seed_engine_baseline", "multicast_fanout_deliveries",
                 kSeedMulticastDeliveriesPerSec);
  json.AddScalar("seed_engine_baseline", "cluster",
                 kSeedClusterEventsPerSec);
  json.AddScalar("speedup_vs_seed", "timer_churn",
                 churn / kSeedTimerChurnEventsPerSec);
  json.AddScalar("speedup_vs_seed", "multicast_fanout",
                 fanout / kSeedMulticastDeliveriesPerSec);
  json.AddScalar("speedup_vs_seed", "cluster",
                 cluster / kSeedClusterEventsPerSec);
  json.AddScalar("portable_sha_fallback", "cluster", cluster_portable);
  json.AddScalar("portable_sha_fallback", "cluster_speedup_vs_seed",
                 cluster_portable / kSeedClusterEventsPerSec);
  json.AddScalar("config", "quick_mode", quick ? 1.0 : 0.0);
  json.AddScalar("config", "sha_kernel",
                 static_cast<double>(Sha256::ActiveImpl()));
  json.Write();

  std::printf(
      "speedup vs seed engine: timer_churn %.2fx, multicast_fanout %.2fx, "
      "cluster %.2fx%s\n",
      churn / kSeedTimerChurnEventsPerSec,
      fanout / kSeedMulticastDeliveriesPerSec,
      cluster / kSeedClusterEventsPerSec,
      quick ? " (quick mode: ratios approximate)" : "");

  if (guard_path != nullptr) {
    return GuardAgainstBaseline(
        guard_path, quick,
        {{"timer_churn", churn},
         {"multicast_fanout_deliveries", fanout},
         {"cluster", cluster}});
  }
  return 0;
}
