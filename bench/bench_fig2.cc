// Figure 2 (§6.1, fault-tolerance scalability): throughput/latency curves
// for the 0/0 micro-benchmark under four failure budgets:
//   (a) f=2: c=1, m=1   N: SeeMoRe/S-UpRight 6, CFT 5, BFT 7
//   (b) f=4: c=2, m=2   N: 11, 9, 13
//   (c) f=4: c=1, m=3   N: 12, 9, 13
//   (d) f=4: c=3, m=1   N: 10, 9, 13
// Each curve point is one closed-loop client population; x = throughput
// (Kreq/s), y = mean latency (ms), exactly the paper's axes. Every point is
// a scenario::ScenarioSpec run through scenario::RunSweep.

#include <cstdio>

#include "bench/bench_common.h"

namespace seemore {
namespace bench {
namespace {

struct Budget {
  const char* label;
  int c;
  int m;
};

void RunBudget(const Budget& budget, const std::vector<int>& clients,
               SimTime warmup, SimTime measure, int jobs,
               BenchResultsJson& json) {
  std::printf("\n=== Fig 2(%s): f=%d (c=%d, m=%d) ===\n", budget.label,
              budget.c + budget.m, budget.c, budget.m);
  std::printf("%-10s %s\n", "system", "curve points (0/0 payload)");
  struct Peak {
    std::string name;
    double kreqs;
  };
  std::vector<Peak> peaks;
  for (const std::string& system : scenario::PaperSystemNames()) {
    ScenarioSpec spec = SystemSpec(system, budget.c, budget.m);
    spec.workload.kind = scenario::WorkloadKind::kEcho;
    spec.workload.request_kb = 0;
    spec.workload.reply_kb = 0;
    std::vector<RunResult> curve =
        RunCurve(spec, clients, warmup, measure, jobs);
    PrintCurve(system, curve);
    json.AddCurve(budget.label, system, curve);
    json.AddScalar(budget.label, system + "_peak_kreqs",
                   PeakThroughput(curve));
    json.AddScalar(budget.label, system + "_p99_ms_at_peak", P99AtPeak(curve));
    peaks.push_back({system, PeakThroughput(curve)});
  }
  std::printf("--- peak throughput (Kreq/s): ");
  for (const Peak& peak : peaks) {
    std::printf("%s=%.1f ", peak.name.c_str(), peak.kreqs);
  }
  std::printf("---\n");
}

}  // namespace
}  // namespace bench
}  // namespace seemore

int main(int argc, char** argv) {
  using namespace seemore;
  using namespace seemore::bench;
  // --quick shrinks the sweep for smoke runs; --jobs=N sets sweep
  // parallelism (default: hardware concurrency).
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const int jobs = ParseJobs(argc, argv);
  const std::vector<int> clients =
      quick ? std::vector<int>{4, 32}
            : std::vector<int>{1, 2, 4, 8, 16, 32, 64, 96};
  const SimTime warmup = quick ? Millis(100) : Millis(150);
  const SimTime measure = quick ? Millis(300) : Millis(500);

  std::printf("Figure 2 reproduction: throughput vs latency, 0/0 payload "
              "(%d jobs)\n", jobs);
  BenchResultsJson json("fig2");
  const Budget budgets[] = {{"a", 1, 1}, {"b", 2, 2}, {"c", 1, 3}, {"d", 3, 1}};
  for (const Budget& budget : budgets) {
    RunBudget(budget, clients, warmup, measure, jobs, json);
  }
  json.Write();
  return 0;
}
