// §4 reproduction: the public-cloud sizing methods, including the paper's
// worked example (S=2, c=1, alpha=0.3 => rent 10 nodes, N=12) and tables
// over the feasible parameter band c < S < 2c+1, alpha < 1/3.

#include <cstdio>

#include "consensus/config.h"

int main() {
  using namespace seemore;

  std::printf("Public-cloud sizing (paper §4)\n\n");

  std::printf("Worked example: S=2, c=1, alpha=0.3\n");
  SizingResult example = PublicCloudSizeByRatio(2, 1, 0.3);
  std::printf("  -> rent P=%d public nodes, network N=%d (%s)\n\n",
              example.public_nodes, example.network_size,
              example.explanation.c_str());

  std::printf("Method 1 (Eq. 2): P = ceil((S-(2c+1))/(3a-1))\n");
  std::printf("%-4s %-4s", "S", "c");
  const double alphas[] = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  for (double alpha : alphas) std::printf("  a=%.2f", alpha);
  std::printf("\n");
  for (int c = 1; c <= 3; ++c) {
    for (int s = c + 1; s <= 2 * c; ++s) {
      std::printf("%-4d %-4d", s, c);
      for (double alpha : alphas) {
        SizingResult r = PublicCloudSizeByRatio(s, c, alpha);
        if (r.feasible) {
          std::printf("  %6d", r.public_nodes);
        } else {
          std::printf("  %6s", "-");
        }
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\nMethod 1 extended (Eq. 3) with crash ratio beta, S=2, c=1:\n");
  std::printf("%-8s", "alpha");
  const double betas[] = {0.0, 0.05, 0.10, 0.15};
  for (double beta : betas) std::printf("  b=%.2f", beta);
  std::printf("\n");
  for (double alpha : {0.10, 0.15, 0.20, 0.25}) {
    std::printf("%-8.2f", alpha);
    for (double beta : betas) {
      SizingResult r = PublicCloudSizeByRatios(2, 1, alpha, beta);
      if (r.feasible) {
        std::printf("  %6d", r.public_nodes);
      } else {
        std::printf("  %6s", "-");
      }
    }
    std::printf("\n");
  }

  std::printf(
      "\nMethod 2 (explicit concurrent-failure bound): P = (3M+2c+1)-S\n");
  std::printf("%-4s %-4s %-4s %-8s %-8s\n", "S", "c", "M", "P", "N");
  for (int c = 1; c <= 2; ++c) {
    for (int s = c + 1; s <= 2 * c; ++s) {
      for (int M = 1; M <= 3; ++M) {
        SizingResult r = PublicCloudSizeByBound(s, c, M);
        std::printf("%-4d %-4d %-4d %-8d %-8d\n", s, c, M, r.public_nodes,
                    r.network_size);
      }
    }
  }

  std::printf(
      "\nMethod 2 extended (public crash bound C): P = (3M+2C+2c+1)-S, "
      "S=2, c=1\n");
  std::printf("%-4s %-4s %-8s %-8s\n", "M", "C", "P", "N");
  for (int M = 1; M <= 2; ++M) {
    for (int C = 0; C <= 2; ++C) {
      SizingResult r = PublicCloudSizeByBounds(2, 1, M, C);
      std::printf("%-4d %-4d %-8d %-8d\n", M, C, r.public_nodes,
                  r.network_size);
    }
  }

  std::printf(
      "\nBoundary behaviour:\n"
      "  S >= 2c+1          -> %s\n"
      "  S <= c             -> %s\n"
      "  alpha >= 1/3       -> %s\n",
      PublicCloudSizeByRatio(3, 1, 0.3).explanation.c_str(),
      PublicCloudSizeByRatio(1, 1, 0.3).explanation.c_str(),
      PublicCloudSizeByRatio(2, 1, 0.4).explanation.c_str());
  return 0;
}
