// Pipeline depth × batch size sweep over the unified consensus core: every
// protocol's primary now paces proposals through the shared PrimaryPipeline
// (consensus/primary_pipeline.h), so pipelining + batching are one
// benchmarkable hot path across the paper's systems instead of a
// SeeMoRe-only knob. For each §6 system this sweeps
// tuning.pipeline_max × tuning.batch_max at a fixed closed-loop population
// and reports committed-request throughput, emitting BENCH_pipeline.json.
//
// The headline check (ISSUE 4 acceptance): throughput increases with
// pipeline depth for at least SeeMoRe-Lion and PBFT at batch_max >= 4.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace seemore {
namespace bench {
namespace {

struct SweepPoint {
  int batch_max;
  int pipeline_max;
  RunResult result;
};

std::vector<SweepPoint> SweepSystem(const std::string& system,
                                    const std::vector<int>& batches,
                                    const std::vector<int>& depths,
                                    int clients, SimTime warmup,
                                    SimTime measure, int jobs,
                                    BenchResultsJson& json) {
  // Build the whole batch x depth grid up front and submit it through one
  // RunMany pass (batch-major, depth-minor order).
  std::vector<ScenarioSpec> specs;
  for (int batch : batches) {
    for (int depth : depths) {
      ScenarioSpec spec = SystemSpec(system, /*c=*/1, /*m=*/1);
      spec.workload.kind = scenario::WorkloadKind::kEcho;
      spec.workload.request_kb = 0;
      spec.workload.reply_kb = 0;
      spec.tuning.batch_max = batch;
      spec.tuning.pipeline_max = depth;
      spec.clients = clients;
      spec.plan.warmup = warmup;
      spec.plan.measure = measure;
      specs.push_back(std::move(spec));
    }
  }
  const std::vector<scenario::ScenarioReport> reports = RunAll(specs, jobs);

  std::vector<SweepPoint> points;
  size_t next = 0;
  for (int batch : batches) {
    std::vector<RunResult> curve;  // one curve per batch size, x = depth
    for (int depth : depths) {
      const RunResult& result = reports[next++].result;
      points.push_back({batch, depth, result});
      curve.push_back(result);
      json.AddScalar(system,
                     "batch" + std::to_string(batch) + "_depth" +
                         std::to_string(depth) + "_kreqs",
                     result.throughput_kreqs);
      std::printf("%-10s batch=%-3d depth=%-2d  %7.2f kreq/s  "
                  "lat(mean/p50/p99)=%6.2f/%6.2f/%6.2f ms\n",
                  system.c_str(), batch, depth, result.throughput_kreqs,
                  result.mean_latency_ms, result.p50_latency_ms,
                  result.p99_latency_ms);
    }
    json.AddCurve(system, "batch" + std::to_string(batch), curve);
  }
  return points;
}

/// Did throughput rise with depth (max depth beats depth 1) at this batch?
bool DepthHelped(const std::vector<SweepPoint>& points, int batch) {
  double at_depth1 = 0.0, at_max = 0.0;
  int max_depth = 0;
  for (const SweepPoint& p : points) {
    if (p.batch_max != batch) continue;
    if (p.pipeline_max == 1) at_depth1 = p.result.throughput_kreqs;
    if (p.pipeline_max >= max_depth) {
      max_depth = p.pipeline_max;
      at_max = p.result.throughput_kreqs;
    }
  }
  return at_max > at_depth1;
}

}  // namespace
}  // namespace bench
}  // namespace seemore

int main(int argc, char** argv) {
  using namespace seemore;
  using namespace seemore::bench;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const int jobs = ParseJobs(argc, argv);
  const std::vector<int> depths = quick ? std::vector<int>{1, 8}
                                        : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> batches =
      quick ? std::vector<int>{4} : std::vector<int>{1, 4, 16};
  const int clients = 64;
  const SimTime warmup = quick ? Millis(60) : Millis(100);
  const SimTime measure = quick ? Millis(200) : Millis(400);

  std::printf("Pipeline depth x batch size sweep (unified consensus core, "
              "%d jobs)\n", jobs);
  BenchResultsJson json("pipeline");
  const std::vector<std::string> systems = {"Lion", "Dog", "Peacock", "BFT",
                                           "S-UpRight", "CFT"};
  int failures = 0;
  for (const std::string& system : systems) {
    std::vector<SweepPoint> points = SweepSystem(system, batches, depths,
                                                 clients, warmup, measure,
                                                 jobs, json);
    bool helped_at_4plus = false;
    for (int batch : batches) {
      const bool helped = DepthHelped(points, batch);
      json.AddScalar(system,
                     "batch" + std::to_string(batch) + "_depth_helps",
                     helped ? 1.0 : 0.0);
      if (batch >= 4 && helped) helped_at_4plus = true;
    }
    // The acceptance bar: for Lion and BFT, committed throughput must rise
    // with pipeline depth at some batch_max >= 4. (It need not rise at
    // EVERY batch size: with a fixed closed-loop population, a deep
    // pipeline drains the queue into partial batches — at batch 16 and 64
    // clients that overhead outweighs the overlap, visible in the JSON.)
    if (!helped_at_4plus && (system == "Lion" || system == "BFT")) {
      std::fprintf(stderr,
                   "FAIL: %s: pipeline depth did not increase committed "
                   "throughput at any batch_max >= 4\n",
                   system.c_str());
      ++failures;
    }
  }
  json.Write();
  return failures == 0 ? 0 : 1;
}
