// Shared configuration for the paper-reproduction benchmarks (§6).
//
// Topologies follow §6.1 exactly: for a failure budget (c, m), SeeMoRe and
// S-UpRight deploy 2c private + 3m+1 public nodes (N = 3m+2c+1), CFT uses
// 2f+1 and BFT 3f+1 with f = c+m. Both clouds sit in one datacenter (the
// paper uses a single AWS region), so all link classes share one profile.
//
// The cost model is calibrated so peak throughputs land in the paper's
// range (tens of Kreq/s) with BFT-SMaRt-like MAC-vector message
// authentication; see DESIGN.md §1 for the substitution argument.

#ifndef SEEMORE_BENCH_BENCH_COMMON_H_
#define SEEMORE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "harness/runner.h"

namespace seemore {
namespace bench {

inline CostModel PaperCostModel() {
  CostModel costs;
  costs.recv_fixed = Micros(14);
  costs.send_fixed = Micros(6);
  costs.per_kib = Micros(2);
  // BFT-SMaRt authenticates with HMAC vectors rather than public-key
  // signatures; "sign"/"verify" here price one MAC-vector operation.
  costs.sign = Micros(4);
  costs.verify = Micros(4);
  costs.mac = Micros(1);
  costs.hash_per_kib = Micros(2);
  costs.hash_fixed = Micros(1);
  costs.execute = Micros(2);
  return costs;
}

inline NetworkConfig PaperNetwork() {
  NetworkConfig net;
  // One datacenter: ~80us one-way with jitter, 10 Gbit/s NICs.
  net.intra_private = {Micros(80), Micros(25)};
  net.intra_public = {Micros(80), Micros(25)};
  net.cross_cloud = {Micros(90), Micros(25)};
  net.client_link = {Micros(90), Micros(25)};
  return net;
}

/// One line of Figure 2/3: a system under test.
struct SystemUnderTest {
  std::string name;
  std::function<ClusterOptions(uint64_t seed)> make_options;
};

inline ClusterOptions BaseOptions(uint64_t seed) {
  ClusterOptions options;
  options.net = PaperNetwork();
  options.costs = PaperCostModel();
  options.seed = seed;
  options.client_retransmit_timeout = Millis(100);
  options.config.checkpoint_period = 1024;
  // BFT-SMaRt style: essentially one consensus instance in flight at a time
  // with everything pending folded into the next batch. This is what makes
  // closed-loop throughput scale with the client population (§6).
  options.config.batch_max = 512;
  options.config.pipeline_max = 2;
  options.config.view_change_timeout = Millis(40);
  return options;
}

inline ClusterOptions CftOptions(int f, uint64_t seed) {
  ClusterOptions options = BaseOptions(seed);
  options.config.kind = ProtocolKind::kCft;
  options.config.f = f;
  return options;
}

inline ClusterOptions BftOptions(int f, uint64_t seed) {
  ClusterOptions options = BaseOptions(seed);
  options.config.kind = ProtocolKind::kBft;
  options.config.f = f;
  return options;
}

inline ClusterOptions SUpRightOptions(int c, int m, uint64_t seed) {
  ClusterOptions options = BaseOptions(seed);
  options.config.kind = ProtocolKind::kSUpRight;
  options.config.c = c;
  options.config.m = m;
  options.config.s = 2 * c;
  options.config.p = HybridNetworkSize(m, c) - options.config.s;
  return options;
}

inline ClusterOptions SeeMoReOptions(SeeMoReMode mode, int c, int m,
                                     uint64_t seed) {
  ClusterOptions options = BaseOptions(seed);
  options.config.kind = ProtocolKind::kSeeMoRe;
  options.config.c = c;
  options.config.m = m;
  options.config.s = 2 * c;  // §6.1: 2c private + 3m+1 public
  options.config.p = 3 * m + 1;
  options.config.initial_mode = mode;
  return options;
}

/// The six systems compared throughout §6 for failure budget (c, m).
inline std::vector<SystemUnderTest> PaperSystems(int c, int m) {
  const int f = c + m;
  return {
      {"BFT", [f](uint64_t seed) { return BftOptions(f, seed); }},
      {"S-UpRight",
       [c, m](uint64_t seed) { return SUpRightOptions(c, m, seed); }},
      {"Peacock",
       [c, m](uint64_t seed) {
         return SeeMoReOptions(SeeMoReMode::kPeacock, c, m, seed);
       }},
      {"Dog",
       [c, m](uint64_t seed) {
         return SeeMoReOptions(SeeMoReMode::kDog, c, m, seed);
       }},
      {"Lion",
       [c, m](uint64_t seed) {
         return SeeMoReOptions(SeeMoReMode::kLion, c, m, seed);
       }},
      {"CFT", [f](uint64_t seed) { return CftOptions(f, seed); }},
  };
}

/// Sweep client counts and print one throughput/latency series.
inline std::vector<RunResult> RunCurve(const SystemUnderTest& sut,
                                       const OpFactory& ops,
                                       const std::vector<int>& client_counts,
                                       SimTime warmup, SimTime measure,
                                       uint64_t seed = 17) {
  std::vector<RunResult> curve;
  for (int clients : client_counts) {
    Cluster cluster(sut.make_options(seed));
    curve.push_back(RunClosedLoop(cluster, clients, ops, warmup, measure));
  }
  return curve;
}

inline void PrintCurve(const std::string& label,
                       const std::vector<RunResult>& curve) {
  for (const RunResult& point : curve) {
    std::printf("%-10s %s\n", label.c_str(), point.ToString().c_str());
  }
}

inline double PeakThroughput(const std::vector<RunResult>& curve) {
  double best = 0.0;
  for (const RunResult& point : curve) {
    if (point.throughput_kreqs > best) best = point.throughput_kreqs;
  }
  return best;
}

/// Accumulates results and writes a machine-readable BENCH_<name>.json so
/// the performance trajectory is tracked across PRs. Labels must be plain
/// ASCII without quotes/backslashes (all callers use fixed literals).
class BenchResultsJson {
 public:
  explicit BenchResultsJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Record one curve (one system's client sweep) under a section label.
  void AddCurve(const std::string& section, const std::string& system,
                const std::vector<RunResult>& curve) {
    Section& s = SectionFor(section);
    s.curves.push_back({system, curve});
  }

  /// Record a single named scalar (a peak, one ablation point, ...).
  void AddScalar(const std::string& section, const std::string& name,
                 double value) {
    Section& s = SectionFor(section);
    s.scalars.push_back({name, value});
  }

  /// Write BENCH_<bench_name>.json in the working directory. Returns the
  /// path ("" on I/O failure, which is reported but not fatal — benchmarks
  /// still print their human-readable tables).
  std::string Write() const {
    const std::string path = "BENCH_" + bench_name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return "";
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"sections\": [\n",
                 bench_name_.c_str());
    for (size_t si = 0; si < sections_.size(); ++si) {
      const Section& s = sections_[si];
      std::fprintf(f, "    {\"label\": \"%s\",\n     \"curves\": [\n",
                   s.label.c_str());
      for (size_t ci = 0; ci < s.curves.size(); ++ci) {
        const Curve& curve = s.curves[ci];
        std::fprintf(f, "      {\"system\": \"%s\", \"points\": [",
                     curve.system.c_str());
        for (size_t pi = 0; pi < curve.points.size(); ++pi) {
          const RunResult& p = curve.points[pi];
          std::fprintf(
              f,
              "%s\n        {\"clients\": %d, \"throughput_kreqs\": %.4f, "
              "\"mean_latency_ms\": %.4f, \"p50_latency_ms\": %.4f, "
              "\"p99_latency_ms\": %.4f, \"completed\": %llu, "
              "\"retransmissions\": %llu}",
              pi == 0 ? "" : ",", p.clients, p.throughput_kreqs,
              p.mean_latency_ms, p.p50_latency_ms, p.p99_latency_ms,
              static_cast<unsigned long long>(p.completed),
              static_cast<unsigned long long>(p.retransmissions));
        }
        std::fprintf(f, "]}%s\n", ci + 1 < s.curves.size() ? "," : "");
      }
      std::fprintf(f, "     ],\n     \"scalars\": [");
      for (size_t vi = 0; vi < s.scalars.size(); ++vi) {
        std::fprintf(f, "%s\n      {\"name\": \"%s\", \"value\": %.4f}",
                     vi == 0 ? "" : ",", s.scalars[vi].name.c_str(),
                     s.scalars[vi].value);
      }
      std::fprintf(f, "]}%s\n", si + 1 < sections_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return path;
  }

 private:
  struct Curve {
    std::string system;
    std::vector<RunResult> points;
  };
  struct Scalar {
    std::string name;
    double value;
  };
  struct Section {
    std::string label;
    std::vector<Curve> curves;
    std::vector<Scalar> scalars;
  };

  Section& SectionFor(const std::string& label) {
    for (Section& s : sections_) {
      if (s.label == label) return s;
    }
    sections_.push_back(Section{label, {}, {}});
    return sections_.back();
  }

  std::string bench_name_;
  std::vector<Section> sections_;
};

}  // namespace bench
}  // namespace seemore

#endif  // SEEMORE_BENCH_BENCH_COMMON_H_
