// Shared plumbing for the paper-reproduction benchmarks (§6). Every bench
// expresses its experiments as scenario::ScenarioSpecs (the paper
// calibration lives in scenario/registry.h: PaperCostModel / PaperNetwork /
// PaperBaseSpec / PaperSystemSpec) and runs them through
// scenario::RunScenario — no bench assembles ClusterOptions directly.
//
// Topologies follow §6.1 exactly: for a failure budget (c, m), SeeMoRe and
// S-UpRight deploy 2c private + 3m+1 public nodes (N = 3m+2c+1), CFT uses
// 2f+1 and BFT 3f+1 with f = c+m. Both clouds sit in one datacenter (the
// paper uses a single AWS region), so all link classes share one profile.

#ifndef SEEMORE_BENCH_BENCH_COMMON_H_
#define SEEMORE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "scenario/builder.h"
#include "scenario/engine.h"
#include "scenario/registry.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace seemore {
namespace bench {

using scenario::ScenarioSpec;

/// Shared bench CLI conventions: --quick is argv[1] by tradition, --jobs=N
/// may appear anywhere (default: hardware concurrency). Every sweep bench
/// submits its points through scenario::RunMany with this many workers;
/// the results are bit-identical to --jobs=1.
inline int ParseJobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      const int jobs = std::atoi(argv[i] + 7);
      if (jobs > 0) return jobs;
    }
  }
  return ThreadPool::DefaultJobs();
}

/// RunMany or die — benches abort on engine errors (a bench's specs are
/// hard-coded, so a failure is a bug, not an input problem).
inline std::vector<scenario::ScenarioReport> RunAll(
    const std::vector<ScenarioSpec>& specs, int jobs) {
  Result<std::vector<scenario::ScenarioReport>> reports =
      scenario::RunMany(specs, jobs);
  if (!reports.ok()) {
    std::fprintf(stderr, "%s\n", reports.status().ToString().c_str());
    std::abort();
  }
  return *std::move(reports);
}

/// One line of Figure 2/3: a §6 system under test at failure budget (c, m).
/// Dies on an unknown system name (callers enumerate PaperSystemNames()).
inline ScenarioSpec SystemSpec(const std::string& system, int c, int m,
                               uint64_t seed = 17) {
  Result<ScenarioSpec> spec = scenario::PaperSystemSpec(system, c, m, seed);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    std::abort();
  }
  return *std::move(spec);
}

/// Sweep client counts for one system and return the RunResult curve. The
/// points are submitted through scenario::RunMany across `jobs` workers
/// (one fresh cluster per point either way; curves are identical for any
/// jobs value).
inline std::vector<RunResult> RunCurve(ScenarioSpec spec,
                                       const std::vector<int>& client_counts,
                                       SimTime warmup, SimTime measure,
                                       int jobs = 1) {
  spec.plan.warmup = warmup;
  spec.plan.measure = measure;
  spec.plan.sweep_clients = client_counts;
  std::vector<scenario::ScenarioReport> reports =
      RunAll(scenario::MakeSweepPoints(spec), jobs);
  std::vector<RunResult> curve;
  curve.reserve(reports.size());
  for (const scenario::ScenarioReport& report : reports) {
    curve.push_back(report.result);
  }
  return curve;
}

inline void PrintCurve(const std::string& label,
                       const std::vector<RunResult>& curve) {
  for (const RunResult& point : curve) {
    std::printf("%-10s %s\n", label.c_str(), point.ToString().c_str());
  }
}

inline double PeakThroughput(const std::vector<RunResult>& curve) {
  double best = 0.0;
  for (const RunResult& point : curve) {
    if (point.throughput_kreqs > best) best = point.throughput_kreqs;
  }
  return best;
}

/// p99 latency at the curve's peak-throughput point (tail latency where the
/// system is actually operated; 0 for an empty curve). Ties resolve to the
/// first point, matching PeakThroughput.
inline double P99AtPeak(const std::vector<RunResult>& curve) {
  double best = 0.0;
  double p99 = 0.0;
  for (const RunResult& point : curve) {
    if (point.throughput_kreqs > best) {
      best = point.throughput_kreqs;
      p99 = point.p99_latency_ms;
    }
  }
  return p99;
}

/// Accumulates results and writes a machine-readable BENCH_<name>.json so
/// the performance trajectory is tracked across PRs. All emission goes
/// through RunResult::ToJson — benches never hand-format result fields.
class BenchResultsJson {
 public:
  explicit BenchResultsJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Record one curve (one system's client sweep) under a section label.
  void AddCurve(const std::string& section, const std::string& system,
                const std::vector<RunResult>& curve) {
    Json points = Json::Array();
    for (const RunResult& point : curve) {
      points.Append(point.ToJson());
    }
    Json entry = Json::Object();
    entry.Set("system", system);
    entry.Set("points", std::move(points));
    SectionFor(section).Find("curves")->Append(std::move(entry));
  }

  /// Record a single named scalar (a peak, one ablation point, ...).
  void AddScalar(const std::string& section, const std::string& name,
                 double value) {
    Json entry = Json::Object();
    entry.Set("name", name);
    entry.Set("value", value);
    SectionFor(section).Find("scalars")->Append(std::move(entry));
  }

  /// Write BENCH_<bench_name>.json in the working directory. Returns the
  /// path ("" on I/O failure, which is reported but not fatal — benchmarks
  /// still print their human-readable tables).
  std::string Write() const {
    const std::string path = "BENCH_" + bench_name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return "";
    }
    Json root = Json::Object();
    root.Set("bench", bench_name_);
    Json section_array = Json::Array();
    for (const Json& section : sections_) {
      section_array.Append(section);
    }
    root.Set("sections", std::move(section_array));
    const std::string text = root.Dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return path;
  }

 private:
  Json& SectionFor(const std::string& label) {
    for (Json& section : sections_) {
      const Json* existing = section.Find("label");
      if (existing != nullptr && existing->AsString() == label) {
        return section;
      }
    }
    Json section = Json::Object();
    section.Set("label", label);
    section.Set("curves", Json::Array());
    section.Set("scalars", Json::Array());
    sections_.push_back(std::move(section));
    return sections_.back();
  }

  std::string bench_name_;
  std::vector<Json> sections_;
};

}  // namespace bench
}  // namespace seemore

#endif  // SEEMORE_BENCH_BENCH_COMMON_H_
