// Table 1 (§5.5): comparison of fault-tolerant protocols on four axes —
// communication phases, message complexity, receiving-network size and
// quorum size. The analytic columns come straight from the protocol
// definitions; the measured column counts actual inter-replica messages per
// consensus instance in an unbatched run (batch_max = 1), which should track
// the paper's per-request message counts:
//   Lion: 3N total (prepare N-1, accept N-1, commit N-1)
//   Dog:  N + (3m+1)^2 + (3m+1)N   (prepare, proxy n-to-n, commit+inform)
//   Peacock: N + 2(3m+1)^2 + (1+S)(3m+1)
//   Paxos: 3N; PBFT: N + 2N^2 (pre-prepare, prepare, commit)

#include <cstdio>
#include <string>

#include "bench/bench_common.h"

namespace seemore {
namespace bench {
namespace {

struct Row {
  std::string protocol;
  int phases;
  std::string messages;
  std::string receiving;
  std::string quorum;
  double measured_msgs_per_instance;
  double measured_bytes_per_instance;
  /// Payload + framing overhead (NetCounters::wire_bytes): offered traffic
  /// in the transmission-time model's own unit, so the JSON matches the
  /// cost model's accounting.
  double measured_wire_bytes_per_instance;
};

/// The §5.5 measurement regime as a declarative spec: one closed-loop
/// client, one request per consensus instance, checkpoints out of the way.
/// RunScenario's standard lifecycle (counters reset at the warmup boundary,
/// measured over the measure window) replaces the hand-driven
/// RunUntil/ResetCounters sequence this bench used to carry.
ScenarioSpec RowSpec(const std::string& system) {
  ScenarioSpec spec = SystemSpec(system, /*c=*/1, /*m=*/1, /*seed=*/5);
  spec.tuning.batch_max = 1;  // one request per instance, like §5.5
  spec.tuning.pipeline_max = 1;
  spec.tuning.checkpoint_period = 1 << 20;  // keep checkpoints out
  spec.clients = 1;
  spec.workload.kind = scenario::WorkloadKind::kEcho;
  spec.workload.request_kb = 0;
  spec.workload.reply_kb = 0;
  // Warm up (leader election noise, first instance), then measure.
  spec.plan.warmup = Millis(100);
  spec.plan.measure = Millis(500);
  return spec;
}

Row MakeRow(const std::string& system, int phases,
            const std::string& messages, const std::string& receiving,
            const std::string& quorum,
            const scenario::ScenarioReport& report) {
  const uint64_t instances = report.result.completed;
  Row row;
  row.protocol = system;
  row.phases = phases;
  row.messages = messages;
  row.receiving = receiving;
  row.quorum = quorum;
  row.measured_msgs_per_instance =
      instances == 0
          ? 0.0
          : static_cast<double>(report.net.replica_to_replica_messages) /
                static_cast<double>(instances);
  row.measured_bytes_per_instance =
      instances == 0
          ? 0.0
          : static_cast<double>(report.net.replica_to_replica_bytes) /
                static_cast<double>(instances);
  row.measured_wire_bytes_per_instance =
      instances == 0
          ? 0.0
          : static_cast<double>(report.net.replica_to_replica_wire_bytes) /
                static_cast<double>(instances);
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace seemore

int main(int argc, char** argv) {
  using namespace seemore;
  using namespace seemore::bench;
  const int c = 1, m = 1, f = c + m;
  const int jobs = ParseJobs(argc, argv);
  std::printf(
      "Table 1 reproduction (c=%d, m=%d, f=%d): analytic columns + measured "
      "inter-replica messages per consensus instance (%d jobs)\n\n",
      c, m, f, jobs);

  // Analytic columns per system; measured columns from one RunMany batch.
  struct Analytic {
    int phases;
    const char* messages;
    const char* receiving;
    const char* quorum;
  };
  const auto analytic = [&](const std::string& system) -> Analytic {
    if (system == "Lion") return {2, "O(n)", "3m+2c+1", "2m+c+1"};
    if (system == "Dog") return {2, "O(n^2)", "3m+1", "2m+1"};
    if (system == "Peacock") return {3, "O(n^2)", "3m+1", "2m+1"};
    if (system == "CFT") return {2, "O(n)", "2f+1", "f+1"};
    if (system == "BFT") return {3, "O(n^2)", "3f+1", "2f+1"};
    return {3, "O(n^2)", "3m+2c+1", "2m+c+1"};  // S-UpRight
  };

  std::vector<ScenarioSpec> specs;
  for (const std::string& system : scenario::PaperSystemNames()) {
    specs.push_back(RowSpec(system));
  }
  const std::vector<scenario::ScenarioReport> reports = RunAll(specs, jobs);

  std::vector<Row> rows;
  for (size_t i = 0; i < reports.size(); ++i) {
    const std::string& system = scenario::PaperSystemNames()[i];
    const Analytic a = analytic(system);
    rows.push_back(MakeRow(system, a.phases, a.messages, a.receiving,
                           a.quorum, reports[i]));
  }

  std::printf("%-10s %-7s %-9s %-12s %-9s %-12s %-12s %-12s\n", "Protocol",
              "phases", "messages", "recv. netw.", "quorum",
              "msgs/inst", "bytes/inst", "wire B/inst");
  BenchResultsJson json("table1");
  for (const Row& row : rows) {
    std::printf("%-10s %-7d %-9s %-12s %-9s %-12.1f %-12.0f %-12.0f\n",
                row.protocol.c_str(), row.phases, row.messages.c_str(),
                row.receiving.c_str(), row.quorum.c_str(),
                row.measured_msgs_per_instance,
                row.measured_bytes_per_instance,
                row.measured_wire_bytes_per_instance);
    json.AddScalar("msgs_per_instance", row.protocol,
                   row.measured_msgs_per_instance);
    json.AddScalar("bytes_per_instance", row.protocol,
                   row.measured_bytes_per_instance);
    json.AddScalar("wire_bytes_per_instance", row.protocol,
                   row.measured_wire_bytes_per_instance);
  }
  json.Write();
  std::printf(
      "\nPaper Table 1: Lion {2, O(n), 3m+2c+1, 2m+c+1}; Dog {2, O(n^2), "
      "3m+1, 2m+1}; Peacock {3, O(n^2), 3m+1, 2m+1}; Paxos {2, O(n), 2f+1, "
      "f+1}; PBFT {3, O(n^2), 3f+1, 2f+1}; UpRight {2*, O(n^2), 3m+2c+1, "
      "2m+c+1}  (*speculative; our S-UpRight runs the pessimistic 3-phase "
      "variant the paper actually benchmarks).\n");
  return 0;
}
