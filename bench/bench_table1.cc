// Table 1 (§5.5): comparison of fault-tolerant protocols on four axes —
// communication phases, message complexity, receiving-network size and
// quorum size. The analytic columns come straight from the protocol
// definitions; the measured column counts actual inter-replica messages per
// consensus instance in an unbatched run (batch_max = 1), which should track
// the paper's per-request message counts:
//   Lion: 3N total (prepare N-1, accept N-1, commit N-1)
//   Dog:  N + (3m+1)^2 + (3m+1)N   (prepare, proxy n-to-n, commit+inform)
//   Peacock: N + 2(3m+1)^2 + (1+S)(3m+1)
//   Paxos: 3N; PBFT: N + 2N^2 (pre-prepare, prepare, commit)

#include <cstdio>
#include <string>

#include "bench/bench_common.h"

namespace seemore {
namespace bench {
namespace {

struct Row {
  std::string protocol;
  int phases;
  std::string messages;
  std::string receiving;
  std::string quorum;
  double measured_msgs_per_instance;
  double measured_bytes_per_instance;
  /// Payload + framing overhead (NetCounters::wire_bytes): offered traffic
  /// in the transmission-time model's own unit, so the JSON matches the
  /// cost model's accounting.
  double measured_wire_bytes_per_instance;
};

Row MeasureRow(const std::string& system, int phases,
               const std::string& messages, const std::string& receiving,
               const std::string& quorum) {
  ScenarioSpec spec = SystemSpec(system, /*c=*/1, /*m=*/1, /*seed=*/5);
  spec.tuning.batch_max = 1;  // one request per instance, like §5.5
  spec.tuning.pipeline_max = 1;
  spec.tuning.checkpoint_period = 1 << 20;  // keep checkpoints out
  Result<std::unique_ptr<Cluster>> made = scenario::MakeCluster(spec);
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    std::abort();
  }
  Cluster& cluster = **made;
  SimClient* client = cluster.AddClient();
  client->Start(EchoWorkload(0, 0));

  // Warm up (leader election noise, first instance), then measure.
  cluster.sim().RunUntil(Millis(100));
  const uint64_t completed_before = client->completed();
  cluster.net().ResetCounters();
  cluster.sim().RunUntil(Millis(600));
  const uint64_t instances = client->completed() - completed_before;
  const NetCounters& counters = cluster.net().counters();

  Row row;
  row.protocol = system;
  row.phases = phases;
  row.messages = messages;
  row.receiving = receiving;
  row.quorum = quorum;
  row.measured_msgs_per_instance =
      instances == 0 ? 0.0
                     : static_cast<double>(counters.replica_to_replica_messages) /
                           static_cast<double>(instances);
  row.measured_bytes_per_instance =
      instances == 0 ? 0.0
                     : static_cast<double>(counters.replica_to_replica_bytes) /
                           static_cast<double>(instances);
  row.measured_wire_bytes_per_instance =
      instances == 0
          ? 0.0
          : static_cast<double>(counters.replica_to_replica_wire_bytes) /
                static_cast<double>(instances);
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace seemore

int main() {
  using namespace seemore;
  using namespace seemore::bench;
  const int c = 1, m = 1, f = c + m;
  std::printf(
      "Table 1 reproduction (c=%d, m=%d, f=%d): analytic columns + measured "
      "inter-replica messages per consensus instance\n\n",
      c, m, f);

  std::vector<Row> rows;
  for (const std::string& system : scenario::PaperSystemNames()) {
    if (system == "Lion") {
      rows.push_back(MeasureRow(system, 2, "O(n)", "3m+2c+1", "2m+c+1"));
    } else if (system == "Dog") {
      rows.push_back(MeasureRow(system, 2, "O(n^2)", "3m+1", "2m+1"));
    } else if (system == "Peacock") {
      rows.push_back(MeasureRow(system, 3, "O(n^2)", "3m+1", "2m+1"));
    } else if (system == "CFT") {
      rows.push_back(MeasureRow(system, 2, "O(n)", "2f+1", "f+1"));
    } else if (system == "BFT") {
      rows.push_back(MeasureRow(system, 3, "O(n^2)", "3f+1", "2f+1"));
    } else if (system == "S-UpRight") {
      rows.push_back(MeasureRow(system, 3, "O(n^2)", "3m+2c+1", "2m+c+1"));
    }
  }

  std::printf("%-10s %-7s %-9s %-12s %-9s %-12s %-12s %-12s\n", "Protocol",
              "phases", "messages", "recv. netw.", "quorum",
              "msgs/inst", "bytes/inst", "wire B/inst");
  BenchResultsJson json("table1");
  for (const Row& row : rows) {
    std::printf("%-10s %-7d %-9s %-12s %-9s %-12.1f %-12.0f %-12.0f\n",
                row.protocol.c_str(), row.phases, row.messages.c_str(),
                row.receiving.c_str(), row.quorum.c_str(),
                row.measured_msgs_per_instance,
                row.measured_bytes_per_instance,
                row.measured_wire_bytes_per_instance);
    json.AddScalar("msgs_per_instance", row.protocol,
                   row.measured_msgs_per_instance);
    json.AddScalar("bytes_per_instance", row.protocol,
                   row.measured_bytes_per_instance);
    json.AddScalar("wire_bytes_per_instance", row.protocol,
                   row.measured_wire_bytes_per_instance);
  }
  json.Write();
  std::printf(
      "\nPaper Table 1: Lion {2, O(n), 3m+2c+1, 2m+c+1}; Dog {2, O(n^2), "
      "3m+1, 2m+1}; Peacock {3, O(n^2), 3m+1, 2m+1}; Paxos {2, O(n), 2f+1, "
      "f+1}; PBFT {3, O(n^2), 3f+1, 2f+1}; UpRight {2*, O(n^2), 3m+2c+1, "
      "2m+c+1}  (*speculative; our S-UpRight runs the pessimistic 3-phase "
      "variant the paper actually benchmarks).\n");
  return 0;
}
