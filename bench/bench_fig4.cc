// Figure 4 (§6.3, performance during view change): throughput timeline with
// the primary crashed mid-run. Paper setup: c=m=1, N=6 for SeeMoRe,
// checkpoint period 10000, 0/0 benchmark, failure injected around t=30 on a
// 0-100 ms timeline. Expected shape: every protocol dips to zero for the
// duration of its view change and then recovers to its previous level, with
// outage ordering Lion < Dog < Peacock < S-UpRight/BFT (BFT taking about
// twice the Lion outage).

#include <cstdio>
#include <string>

#include "bench/bench_common.h"

namespace seemore {
namespace bench {
namespace {

struct TimelineResult {
  std::string name;
  ThroughputTimeline timeline;
  std::vector<SimTime> completions;
  SimTime outage = 0;
};

TimelineResult RunTimeline(const SystemUnderTest& sut, SimTime crash_at,
                           SimTime horizon, int clients) {
  ClusterOptions options = sut.make_options(/*seed=*/23);
  options.config.checkpoint_period = 10000;  // §6.3
  // The paper's outages are 15-24 ms, implying an aggressive failure
  // detector; match that regime.
  options.config.view_change_timeout = Millis(8);
  options.client_retransmit_timeout = Millis(12);
  Cluster cluster(options);

  TimelineResult result;
  result.name = sut.name;
  result.timeline.bucket_width = Millis(2);

  for (int i = 0; i < clients; ++i) cluster.AddClient();
  for (int i = 0; i < clients; ++i) {
    cluster.client(i)->on_complete = [&result](SimTime when, SimTime) {
      result.timeline.Record(when);
      result.completions.push_back(when);
    };
    cluster.client(i)->Start(EchoWorkload(0, 0));
  }

  // Crash the current primary at crash_at.
  cluster.sim().RunUntil(crash_at);
  int primary = 0;
  if (options.config.kind == ProtocolKind::kSeeMoRe) {
    primary = cluster.seemore(0)->current_primary();
  }
  cluster.Crash(primary);
  cluster.sim().RunUntil(horizon);

  // Outage: the longest completion-free gap in the window after the crash
  // (completions are recorded in virtual-time order).
  SimTime previous = crash_at;
  SimTime best_gap = 0;
  for (SimTime when : result.completions) {
    if (when < crash_at) continue;
    if (when > crash_at + Millis(50)) break;
    best_gap = std::max(best_gap, when - previous);
    previous = when;
  }
  result.outage = best_gap;
  return result;
}

}  // namespace
}  // namespace bench
}  // namespace seemore

int main(int argc, char** argv) {
  using namespace seemore;
  using namespace seemore::bench;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const SimTime crash_at = Millis(30);
  const SimTime horizon = Millis(100);
  const int clients = quick ? 16 : 48;

  std::printf(
      "Figure 4 reproduction: throughput timeline across a primary crash\n"
      "(c=1, m=1, checkpoint period 10000, crash at t=30ms)\n\n");

  std::vector<TimelineResult> results;
  for (const SystemUnderTest& sut : PaperSystems(1, 1)) {
    results.push_back(RunTimeline(sut, crash_at, horizon, clients));
  }

  // Timeline table: Kreq/s per 2ms bucket.
  std::printf("%-6s", "t[ms]");
  for (const TimelineResult& r : results) {
    std::printf(" %10s", r.name.c_str());
  }
  std::printf("\n");
  const size_t buckets = static_cast<size_t>(horizon / Millis(2));
  for (size_t b = 0; b < buckets; ++b) {
    std::printf("%-6zu", b * 2);
    for (const TimelineResult& r : results) {
      std::printf(" %10.1f", r.timeline.KreqsAt(b));
    }
    std::printf("\n");
  }

  std::printf("\nMeasured out-of-service window after the crash:\n");
  for (const TimelineResult& r : results) {
    std::printf("  %-10s %5.1f ms\n", r.name.c_str(), ToMillis(r.outage));
  }
  std::printf(
      "\nPaper reference (§6.3): Lion 15 ms, Dog 20 ms, Peacock 24 ms; BFT "
      "about twice the Lion outage.\n");
  return 0;
}
